// Quickstart: run a small coupled DSMC/PIC plasma-plume simulation on 4
// simulated MPI ranks and print what happened.
package main

import (
	"fmt"
	"log"

	dsmcpic "github.com/plasma-hpc/dsmcpic"
)

func main() {
	// Dual nested grids for a 5 cm x 20 cm cylindrical nozzle: the coarse
	// grid carries DSMC, its 1-to-8 refinement carries PIC.
	grids, err := dsmcpic.BuildNozzleGrids(3, 8, 0.05, 0.2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("grids: %d coarse / %d fine cells\n",
		grids.Coarse.NumCells(), grids.Fine.NumCells())

	cfg := dsmcpic.Config{
		Ref:              grids,
		Steps:            15,      // DSMC timesteps
		PICSubsteps:      2,       // PIC substeps per DSMC step (paper's R)
		DtDSMC:           1.25e-6, // seconds
		InjectHPerStep:   1200,    // neutral H injected at the inlet per step
		InjectIonPerStep: 240,     // H+ ions per step
		WeightH:          1e12,    // real particles per simulation particle
		WeightIon:        6000,
		Wall:             dsmcpic.WallModel{Kind: dsmcpic.DiffuseWall, Temperature: 300},
		Strategy:         dsmcpic.Distributed,
		Reactions:        dsmcpic.DefaultReactions(),
		LB:               dsmcpic.DefaultLoadBalance(),
		Seed:             1,
	}
	cfg.LB.T = 5 // check imbalance every 5 steps for this short run

	stats, err := dsmcpic.Run(dsmcpic.NewWorld(4), cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("final particles: %d, rebalances: %d\n",
		stats.TotalParticles(), stats.Rebalances())
	fmt.Printf("modeled simulation time: %.4f s\n", stats.TotalTime())
	for r := range stats.Ranks {
		fmt.Printf("  rank %d holds %d particles\n", r, stats.Ranks[r].FinalParticles)
	}
	fmt.Println("slowest components (modeled):")
	for _, comp := range []string{dsmcpic.CompPoisson, dsmcpic.CompDSMCMove, dsmcpic.CompInject} {
		fmt.Printf("  %-14s %.4f s\n", comp, stats.ComponentTime(comp))
	}
}
