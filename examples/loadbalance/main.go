// Loadbalance: reproduce the paper's Fig. 5 pathology — without dynamic
// load balancing the rank owning the inlet accumulates nearly all
// particles — then enable the balancer and watch the distribution even
// out and the modeled step time drop.
package main

import (
	"fmt"
	"log"

	dsmcpic "github.com/plasma-hpc/dsmcpic"
)

const (
	ranks = 4
	steps = 30
)

func run(lb *dsmcpic.LoadBalance) (*dsmcpic.RunStats, error) {
	grids, err := dsmcpic.BuildNozzleGrids(3, 8, 0.05, 0.2)
	if err != nil {
		return nil, err
	}
	// Axial block decomposition: rank 0 owns the inlet region, so without
	// balancing it accumulates nearly every particle (the paper's Fig. 5
	// pathology). The short timestep keeps the plume near the inlet.
	owner := make([]int32, grids.Coarse.NumCells())
	for c := range owner {
		owner[c] = int32(c * ranks / len(owner))
	}
	cfg := dsmcpic.Config{
		Ref:              grids,
		InitialOwner:     owner,
		Steps:            steps,
		DtDSMC:           2e-7,
		InjectHPerStep:   2000,
		InjectIonPerStep: 400,
		WeightH:          1e12,
		WeightIon:        6000,
		Wall:             dsmcpic.WallModel{Kind: dsmcpic.DiffuseWall, Temperature: 300},
		Strategy:         dsmcpic.Distributed,
		Reactions:        dsmcpic.DefaultReactions(),
		LB:               lb,
		Seed:             3,
	}
	return dsmcpic.Run(dsmcpic.NewWorld(ranks), cfg)
}

func distribution(stats *dsmcpic.RunStats, step int) []float64 {
	total := 0
	counts := make([]float64, ranks)
	for r := 0; r < ranks; r++ {
		c := stats.Ranks[r].ParticleHistory[step]
		counts[r] = float64(c)
		total += c
	}
	for r := range counts {
		counts[r] *= 100 / float64(total)
	}
	return counts
}

func main() {
	noLB, err := run(nil)
	if err != nil {
		log.Fatal(err)
	}
	lbCfg := dsmcpic.DefaultLoadBalance()
	lbCfg.T = 5
	withLB, err := run(lbCfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("particle share per rank (%), WITHOUT load balancing:")
	printShares(noLB)
	fmt.Println("\nparticle share per rank (%), WITH load balancing:")
	printShares(withLB)

	fmt.Printf("\nrebalances performed: %d\n", withLB.Rebalances())
	fmt.Printf("modeled total time: %.4fs without LB, %.4fs with LB (%.0f%% faster)\n",
		noLB.TotalTime(), withLB.TotalTime(),
		100*(noLB.TotalTime()-withLB.TotalTime())/noLB.TotalTime())
}

func printShares(stats *dsmcpic.RunStats) {
	fmt.Printf("%6s", "step")
	for r := 0; r < ranks; r++ {
		fmt.Printf("  rank%-2d", r)
	}
	fmt.Println()
	for _, step := range []int{4, 9, 14, 19, 24, 29} {
		fmt.Printf("%6d", step+1)
		for _, p := range distribution(stats, step) {
			fmt.Printf("  %5.1f%%", p)
		}
		fmt.Println()
	}
}
