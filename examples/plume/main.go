// Plume: simulate the diffusion of a pulsed-vacuum-arc plasma plume
// (hydrogen atoms and ions) through a cylindrical nozzle and print the
// evolving number-density profile along the nozzle axis — the physics of
// the paper's validation study (Figs. 8-9).
package main

import (
	"fmt"
	"log"
	"strings"

	dsmcpic "github.com/plasma-hpc/dsmcpic"
)

const (
	radius = 0.05 // m
	length = 0.2  // m
	steps  = 24
	bins   = 8
)

func main() {
	grids, err := dsmcpic.BuildNozzleGrids(3, 8, radius, length)
	if err != nil {
		log.Fatal(err)
	}

	// Collect the H number density along the axis every few steps via the
	// per-step probe. The probe runs on every rank; rank 0 aggregates.
	profiles := map[int][]float64{}
	var peakWallPressure float64
	cfg := dsmcpic.Config{
		Ref:              grids,
		SampleSurfaces:   true,
		Steps:            steps,
		DtDSMC:           1.25e-6,
		InjectHPerStep:   2000,
		InjectIonPerStep: 300,
		WeightH:          1e12,
		WeightIon:        6000,
		Drift:            10000, // m/s, the paper's plume speed
		Wall:             dsmcpic.WallModel{Kind: dsmcpic.DiffuseWall, Temperature: 300},
		Strategy:         dsmcpic.Distributed,
		Reactions:        dsmcpic.DefaultReactions(),
		LB:               dsmcpic.DefaultLoadBalance(),
		Seed:             7,
		OnStep: func(step int, s *dsmcpic.Solver) {
			if (step+1)%6 != 0 {
				return
			}
			local := s.LocalCellCounts(func(sp dsmcpic.Species) bool { return sp == dsmcpic.H })
			global := s.Comm.AllreduceInt64(local)
			// Wall loads at the final step: collective, so every rank must
			// participate before rank 0 filters the results.
			var wallLoads []float64
			var surf = s.Surface()
			if step == steps-1 {
				imp := make([]float64, surf.NumFaces())
				for i := range imp {
					imp[i] = surf.Impulse[i].Dot(surf.Normal[i])
				}
				wallLoads = s.Comm.AllreduceFloat64(imp, dsmcpic.OpSum)
			}
			if s.Comm.Rank() != 0 {
				return
			}
			if wallLoads != nil {
				for i, v := range wallLoads {
					// Impulses already carry the species weights.
					p := v / (surf.Area[i] * surf.SampledTime)
					if p > peakWallPressure {
						peakWallPressure = p
					}
				}
			}
			prof := make([]float64, bins)
			vol := make([]float64, bins)
			for c, cnt := range global {
				ctr := s.Ref.Coarse.Centroids[c]
				if ctr.X*ctr.X+ctr.Y*ctr.Y > (radius/2)*(radius/2) {
					continue
				}
				b := int(ctr.Z / length * bins)
				if b >= bins {
					b = bins - 1
				}
				prof[b] += float64(cnt) * 1e12
				vol[b] += s.Ref.Coarse.Volumes[c]
			}
			for b := range prof {
				if vol[b] > 0 {
					prof[b] /= vol[b]
				}
			}
			profiles[step+1] = prof
		},
	}
	cfg.LB.T = 8

	stats, err := dsmcpic.Run(dsmcpic.NewWorld(4), cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("plume simulation: %d particles after %d steps (%.1f us physical time)\n\n",
		stats.TotalParticles(), steps, float64(steps)*1.25)
	fmt.Println("H number density along the nozzle axis (1/m^3):")
	fmt.Printf("%8s", "z (cm)")
	for t := 6; t <= steps; t += 6 {
		fmt.Printf("  t=%4.1fus", float64(t)*1.25)
	}
	fmt.Println()
	for b := 0; b < bins; b++ {
		fmt.Printf("%8.2f", (float64(b)+0.5)*length/bins*100)
		for t := 6; t <= steps; t += 6 {
			fmt.Printf("  %8.2e", profiles[t][b])
		}
		fmt.Println()
	}

	// ASCII visualization of the plume front advancing.
	fmt.Printf("\npeak wall pressure: %.3g Pa\n", peakWallPressure)
	fmt.Println("\nplume front (each row one checkpoint, # = density above 10% of max):")
	for t := 6; t <= steps; t += 6 {
		prof := profiles[t]
		maxD := 0.0
		for _, d := range prof {
			if d > maxD {
				maxD = d
			}
		}
		var row strings.Builder
		for _, d := range prof {
			if d > 0.1*maxD {
				row.WriteByte('#')
			} else {
				row.WriteByte('.')
			}
		}
		fmt.Printf("  t=%4.1fus |%s|\n", float64(t)*1.25, row.String())
	}
}
