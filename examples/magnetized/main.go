// Magnetized: run the plume with a constant axial magnetic field (the
// paper's "B is a constant number given by the user" case, §III-C) and
// show that ions gyrate — their transverse spread is confined relative to
// the unmagnetized run while neutrals are unaffected.
package main

import (
	"fmt"
	"log"
	"math"

	dsmcpic "github.com/plasma-hpc/dsmcpic"
)

const steps = 25

// run executes the plume with the given axial field and returns the RMS
// transverse radius of ions and neutrals at the end.
func run(bz float64) (ionRMS, neutralRMS float64, err error) {
	grids, err := dsmcpic.BuildNozzleGrids(3, 8, 0.05, 0.2)
	if err != nil {
		return 0, 0, err
	}
	var sumIon, sumNeu float64
	var nIon, nNeu int
	cfg := dsmcpic.Config{
		Ref:              grids,
		Steps:            steps,
		DtDSMC:           1.25e-6,
		InjectHPerStep:   1000,
		InjectIonPerStep: 1000,
		WeightH:          1e12,
		WeightIon:        6000,
		Wall:             dsmcpic.WallModel{Kind: dsmcpic.DiffuseWall, Temperature: 300},
		Strategy:         dsmcpic.Distributed,
		BField:           dsmcpic.V(0, 0, bz),
		Seed:             9,
		OnStep: func(step int, s *dsmcpic.Solver) {
			if step != steps-1 {
				return
			}
			// Transverse radius^2 per species, reduced over ranks.
			local := make([]int64, 4) // sumIon*1e9, nIon, sumNeu*1e9, nNeu
			for i := 0; i < s.St.Len(); i++ {
				p := s.St.Pos[i]
				r2 := p.X*p.X + p.Y*p.Y
				if s.St.Sp[i] == dsmcpic.HPlus {
					local[0] += int64(r2 * 1e9)
					local[1]++
				} else {
					local[2] += int64(r2 * 1e9)
					local[3]++
				}
			}
			global := s.Comm.AllreduceInt64(local)
			if s.Comm.Rank() == 0 {
				sumIon = float64(global[0]) / 1e9
				nIon = int(global[1])
				sumNeu = float64(global[2]) / 1e9
				nNeu = int(global[3])
			}
		},
	}
	if _, err := dsmcpic.Run(dsmcpic.NewWorld(4), cfg); err != nil {
		return 0, 0, err
	}
	return math.Sqrt(sumIon / float64(nIon)), math.Sqrt(sumNeu / float64(nNeu)), nil
}

func main() {
	fmt.Println("axial magnetic confinement of the ion plume (Boris pusher):")
	fmt.Printf("%10s %14s %14s\n", "Bz (T)", "ion RMS r (mm)", "H RMS r (mm)")
	for _, bz := range []float64{0, 0.02, 0.1} {
		ion, neu, err := run(bz)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%10.2f %14.2f %14.2f\n", bz, ion*1e3, neu*1e3)
	}
	fmt.Println("\nStronger Bz shrinks the ion Larmor radius (r_L = m v_perp / qB),")
	fmt.Println("confining ions toward the axis; neutral H is unaffected.")
}
