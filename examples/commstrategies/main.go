// Commstrategies: compare the centralized (gather/classify/scatter) and
// distributed (two-round ordered pairwise) particle-migration strategies
// head-to-head on one workload, printing migration volumes and modeled
// communication times — the trade-off of paper §IV-B3 and Fig. 11.
package main

import (
	"fmt"
	"log"

	dsmcpic "github.com/plasma-hpc/dsmcpic"
)

func run(strategy dsmcpic.Strategy, ranks int) (*dsmcpic.RunStats, error) {
	grids, err := dsmcpic.BuildNozzleGrids(3, 8, 0.05, 0.2)
	if err != nil {
		return nil, err
	}
	lb := dsmcpic.DefaultLoadBalance()
	lb.T = 5
	lb.Strategy = strategy
	cfg := dsmcpic.Config{
		Ref:              grids,
		Steps:            20,
		DtDSMC:           1.25e-6,
		InjectHPerStep:   1500,
		InjectIonPerStep: 150,
		WeightH:          1e12,
		WeightIon:        6000,
		Wall:             dsmcpic.WallModel{Kind: dsmcpic.DiffuseWall, Temperature: 300},
		Strategy:         strategy,
		Reactions:        dsmcpic.DefaultReactions(),
		LB:               lb,
		Cost:             dsmcpic.DefaultCostModel(dsmcpic.BSCC, dsmcpic.InnerFrame),
		Seed:             5,
	}
	return dsmcpic.Run(dsmcpic.NewWorld(ranks), cfg)
}

func main() {
	for _, ranks := range []int{8, 32} {
		fmt.Printf("=== %d ranks ===\n", ranks)
		for _, strategy := range []dsmcpic.Strategy{dsmcpic.Distributed, dsmcpic.Centralized} {
			stats, err := run(strategy, ranks)
			if err != nil {
				log.Fatal(err)
			}
			var migrated int64
			for r := range stats.Ranks {
				migrated += stats.Ranks[r].MigratedDSMC + stats.Ranks[r].MigratedPIC
			}
			exchange := stats.ComponentTime(dsmcpic.CompDSMCExchange) +
				stats.ComponentTime(dsmcpic.CompPICExchange)
			fmt.Printf("%-3s migrated %6d particles  exchange %8.5fs  total %8.5fs (modeled)\n",
				strategy, migrated, exchange, stats.TotalTime())
		}
	}
	fmt.Println("\nCentralized: 2N transactions, ~2M data through the root.")
	fmt.Println("Distributed: N(N-1) transactions, ~M data spread over all pairs.")
	fmt.Println("Fewer particles and more ranks favor the centralized strategy;")
	fmt.Println("heavy migration volumes favor the distributed one (paper §IV-B3).")
}
