// Chemistry: run the plume with the extended neutral chemistry — H2
// formation (H + H -> H2) and collision-induced dissociation
// (H2 + M -> 2H + M) on top of the ionization/recombination channels —
// the combination and dissociation reactions of the papers behind the
// reproduced solver (refs [24, 25]). Prints the species populations over
// time.
package main

import (
	"fmt"
	"log"

	dsmcpic "github.com/plasma-hpc/dsmcpic"
)

const steps = 30

func main() {
	grids, err := dsmcpic.BuildNozzleGrids(3, 8, 0.05, 0.2)
	if err != nil {
		log.Fatal(err)
	}
	history := map[int][3]int64{}
	cfg := dsmcpic.Config{
		Ref:              grids,
		Steps:            steps,
		DtDSMC:           1.25e-6,
		InjectHPerStep:   3000,
		InjectIonPerStep: 150,
		WeightH:          1e14, // denser gas: more collisions, more chemistry
		WeightIon:        6000,
		Wall:             dsmcpic.WallModel{Kind: dsmcpic.DiffuseWall, Temperature: 200},
		Strategy:         dsmcpic.Distributed,
		Reactions:        dsmcpic.FullChemistry(),
		LB:               dsmcpic.DefaultLoadBalance(),
		Seed:             21,
		OnStep: func(step int, s *dsmcpic.Solver) {
			if (step+1)%5 != 0 {
				return
			}
			local := make([]int64, 3)
			for i := 0; i < s.St.Len(); i++ {
				switch s.St.Sp[i] {
				case dsmcpic.H:
					local[0]++
				case dsmcpic.HPlus:
					local[1]++
				case dsmcpic.H2:
					local[2]++
				}
			}
			global := s.Comm.AllreduceInt64(local)
			if s.Comm.Rank() == 0 {
				history[step+1] = [3]int64{global[0], global[1], global[2]}
			}
		},
	}
	cfg.LB.T = 8

	stats, err := dsmcpic.Run(dsmcpic.NewWorld(4), cfg)
	if err != nil {
		log.Fatal(err)
	}
	var reactions int64
	for r := range stats.Ranks {
		reactions += stats.Ranks[r].Reactions
	}
	fmt.Printf("species populations over time (%d reactions total):\n", reactions)
	fmt.Printf("%6s %10s %10s %10s\n", "step", "H", "H+", "H2")
	for s := 5; s <= steps; s += 5 {
		pops := history[s]
		fmt.Printf("%6d %10d %10d %10d\n", s, pops[0], pops[1], pops[2])
	}
	fmt.Println("\nH2 forms in the cold dense regions near the wall; hot collisions")
	fmt.Println("near the beam dissociate it back into atoms and ionize H.")
}
