package dsmcpic_test

import (
	"bytes"
	"testing"

	dsmcpic "github.com/plasma-hpc/dsmcpic"
)

// TestPublicAPIEndToEnd exercises the exported façade the examples use:
// build grids, configure, run, inspect results — without touching any
// internal package directly.
func TestPublicAPIEndToEnd(t *testing.T) {
	grids, err := dsmcpic.BuildNozzleGrids(3, 6, 0.05, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if grids.Fine.NumCells() != 8*grids.Coarse.NumCells() {
		t.Fatal("grid nesting broken")
	}
	lb := dsmcpic.DefaultLoadBalance()
	lb.T = 3
	cfg := dsmcpic.Config{
		Ref:              grids,
		Steps:            5,
		DtDSMC:           1.5e-6,
		InjectHPerStep:   800,
		InjectIonPerStep: 160,
		WeightH:          1e12,
		WeightIon:        6000,
		Wall:             dsmcpic.WallModel{Kind: dsmcpic.DiffuseWall, Temperature: 300},
		Strategy:         dsmcpic.Centralized,
		LB:               lb,
		Reactions:        dsmcpic.DefaultReactions(),
		Cost:             dsmcpic.DefaultCostModel(dsmcpic.BSCC, dsmcpic.InnerRack),
		BField:           dsmcpic.V(0, 0, 0.01),
		Seed:             2,
	}
	probed := false
	cfg.OnStep = func(step int, s *dsmcpic.Solver) {
		if step == 0 && s.Comm.Rank() == 0 {
			probed = true
		}
	}
	stats, err := dsmcpic.Run(dsmcpic.NewWorld(3), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !probed {
		t.Error("OnStep probe did not run")
	}
	if stats.TotalParticles() == 0 {
		t.Error("no particles simulated")
	}
	if stats.TotalTime() <= 0 {
		t.Error("no modeled time")
	}
	for _, comp := range []string{dsmcpic.CompInject, dsmcpic.CompDSMCMove,
		dsmcpic.CompPoisson, dsmcpic.CompRebalance} {
		if stats.ComponentTime(comp) < 0 {
			t.Errorf("negative %s", comp)
		}
	}
}

func TestPublicBoxGrids(t *testing.T) {
	grids, err := dsmcpic.BuildBoxGrids(2, 2, 2, 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if grids.Coarse.NumCells() != 48 {
		t.Errorf("box cells = %d", grids.Coarse.NumCells())
	}
}

func TestSpeciesConstants(t *testing.T) {
	if dsmcpic.H.IsCharged() || !dsmcpic.HPlus.IsCharged() {
		t.Error("species charge flags wrong")
	}
	if dsmcpic.Distributed.String() != "DC" || dsmcpic.Centralized.String() != "CC" {
		t.Error("strategy names wrong")
	}
}

func TestPublicConicalNozzle(t *testing.T) {
	grids, err := dsmcpic.BuildConicalNozzleGrids(3, 6, 0.02, 0.05, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if grids.Coarse.NumCells() == 0 {
		t.Fatal("empty conical grid")
	}
	if _, err := dsmcpic.BuildConicalNozzleGrids(0, 6, 0.02, 0.05, 0.2); err == nil {
		t.Error("bad resolution accepted")
	}
}

func TestPublicChemistryAndSurfaces(t *testing.T) {
	grids, err := dsmcpic.BuildNozzleGrids(3, 6, 0.05, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	var wallHits int64
	cfg := dsmcpic.Config{
		Ref:              grids,
		Steps:            4,
		DtDSMC:           1.5e-6,
		InjectHPerStep:   600,
		InjectIonPerStep: 60,
		WeightH:          1e14,
		WeightIon:        6000,
		Wall:             dsmcpic.WallModel{Kind: dsmcpic.DiffuseWall, Temperature: 300},
		Strategy:         dsmcpic.Distributed,
		Reactions:        dsmcpic.FullChemistry(),
		SampleSurfaces:   true,
		Seed:             13,
		OnStep: func(step int, s *dsmcpic.Solver) {
			if step != 3 {
				return
			}
			var h int64
			for i := 0; i < s.Surface().NumFaces(); i++ {
				h += s.Surface().Hits[i]
			}
			total := s.Comm.AllreduceInt64([]int64{h})
			if s.Comm.Rank() == 0 {
				wallHits = total[0]
			}
		},
	}
	stats, err := dsmcpic.Run(dsmcpic.NewWorld(2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TotalParticles() == 0 {
		t.Error("no particles")
	}
	if wallHits == 0 {
		t.Error("no wall hits sampled")
	}
}

func TestPublicCheckpointRoundTrip(t *testing.T) {
	grids, err := dsmcpic.BuildNozzleGrids(3, 6, 0.05, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	var cp *dsmcpic.Checkpoint
	cfg := dsmcpic.Config{
		Ref: grids, Steps: 3, DtDSMC: 1.5e-6,
		InjectHPerStep: 500, WeightH: 1e12, WeightIon: 1,
		Strategy: dsmcpic.Distributed, Seed: 4,
		OnStep: func(step int, s *dsmcpic.Solver) {
			if step == 2 {
				if got := dsmcpic.CaptureCheckpoint(s, step); got != nil {
					cp = got
				}
			}
		},
	}
	if _, err := dsmcpic.Run(dsmcpic.NewWorld(2), cfg); err != nil {
		t.Fatal(err)
	}
	if cp == nil || cp.Particles.Len() == 0 {
		t.Fatal("no checkpoint")
	}
	var buf bytes.Buffer
	if err := cp.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := dsmcpic.LoadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Particles.Len() != cp.Particles.Len() {
		t.Error("checkpoint round trip lost particles")
	}
}

// TestPublicMetrics wires a MetricsCollector through the façade: run with
// Config.Metrics attached, then export both formats.
func TestPublicMetrics(t *testing.T) {
	grids, err := dsmcpic.BuildNozzleGrids(3, 6, 0.05, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	mc := dsmcpic.NewMetricsCollector(2)
	cfg := dsmcpic.Config{
		Ref:            grids,
		Steps:          3,
		DtDSMC:         1.5e-6,
		InjectHPerStep: 400,
		WeightH:        1e12,
		WeightIon:      6000,
		Wall:           dsmcpic.WallModel{Kind: dsmcpic.DiffuseWall, Temperature: 300},
		Strategy:       dsmcpic.Distributed,
		Reactions:      dsmcpic.DefaultReactions(),
		Cost:           dsmcpic.DefaultCostModel(dsmcpic.Tianhe2, dsmcpic.InnerFrame),
		Seed:           7,
		Metrics:        mc,
	}
	if _, err := dsmcpic.Run(dsmcpic.NewWorld(2), cfg); err != nil {
		t.Fatal(err)
	}
	if durs := mc.PhaseDurations(); len(durs) == 0 {
		t.Fatal("no phase samples recorded")
	}
	var jsonl, trace bytes.Buffer
	if err := mc.WriteJSONL(&jsonl); err != nil || jsonl.Len() == 0 {
		t.Fatalf("JSONL export: %v (%d bytes)", err, jsonl.Len())
	}
	if err := mc.WriteChromeTrace(&trace); err != nil || trace.Len() == 0 {
		t.Fatalf("trace export: %v (%d bytes)", err, trace.Len())
	}
}
