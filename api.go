// Package dsmcpic is a parallel coupled DSMC/PIC particle-simulation
// library with dynamic load balancing, reproducing "Parallelizing and
// Balancing Coupled DSMC/PIC for Large-scale Particle Simulations"
// (IPDPS 2022).
//
// The library simulates rarefied plasma plumes (hydrogen atoms H and ions
// H+) on dual nested unstructured tetrahedral grids: a coarse grid sized by
// the particle mean free path carries the DSMC computation (movement, Bird
// NTC collisions with the VHS model, chemical reactions), and a fine grid —
// every coarse tetrahedron split into eight — sized by the Debye length
// carries the PIC computation (charge deposition, a finite-element Poisson
// solve, and the Boris pusher).
//
// Parallel execution runs over a simulated MPI runtime (goroutine ranks
// with MPI point-to-point and collective semantics). Two particle-migration
// strategies are provided — centralized (gather/classify/scatter through a
// root) and distributed (two-round ordered pairwise exchange) — plus the
// paper's dynamic load balancer: a load-imbalance indicator over component
// times, a weighted load model driving graph re-partitioning, and
// Kuhn-Munkres remapping of new partitions onto ranks to minimize migrated
// data.
//
// Quick start:
//
//	grids, err := dsmcpic.BuildNozzleGrids(4, 10, 0.05, 0.2)
//	cfg := dsmcpic.Config{
//		Ref:            grids,
//		Steps:          25,
//		DtDSMC:         1.25e-6,
//		InjectHPerStep: 4000,
//		Strategy:       dsmcpic.Distributed,
//		LB:             dsmcpic.DefaultLoadBalance(),
//	}
//	stats, err := dsmcpic.Run(dsmcpic.NewWorld(16), cfg)
//
// See examples/ for complete programs and DESIGN.md for the architecture.
package dsmcpic

import (
	"github.com/plasma-hpc/dsmcpic/internal/balance"
	"github.com/plasma-hpc/dsmcpic/internal/commcost"
	"github.com/plasma-hpc/dsmcpic/internal/core"
	"github.com/plasma-hpc/dsmcpic/internal/dsmc"
	"github.com/plasma-hpc/dsmcpic/internal/exchange"
	"github.com/plasma-hpc/dsmcpic/internal/geom"
	"github.com/plasma-hpc/dsmcpic/internal/mesh"
	"github.com/plasma-hpc/dsmcpic/internal/metrics"
	"github.com/plasma-hpc/dsmcpic/internal/particle"
	"github.com/plasma-hpc/dsmcpic/internal/pic"
	"github.com/plasma-hpc/dsmcpic/internal/simmpi"
)

// Geometry and grids.
type (
	// Vec3 is a 3D point or vector.
	Vec3 = geom.Vec3
	// Mesh is an unstructured tetrahedral grid.
	Mesh = mesh.Mesh
	// Grids couples the coarse DSMC grid with its nested fine PIC grid.
	Grids = mesh.Refinement
)

// V constructs a Vec3.
func V(x, y, z float64) Vec3 { return geom.V(x, y, z) }

// BuildNozzleGrids generates the 3D cylindrical-nozzle case-study grids:
// a coarse tetrahedral grid with transversal cell size radius/n and nz
// axial cells, uniformly refined 1-to-8 into the fine PIC grid. The inlet
// disk is at z = 0, the outlet at z = length, the lateral surface is a
// wall.
func BuildNozzleGrids(n, nz int, radius, length float64) (*Grids, error) {
	coarse, err := mesh.Nozzle(n, nz, radius, length)
	if err != nil {
		return nil, err
	}
	return mesh.RefineUniform(coarse)
}

// BuildConicalNozzleGrids generates grids for a diverging (or converging)
// nozzle whose radius varies linearly from rInlet at z = 0 to rOutlet at
// z = length.
func BuildConicalNozzleGrids(n, nz int, rInlet, rOutlet, length float64) (*Grids, error) {
	coarse, err := mesh.ConicalNozzle(n, nz, rInlet, rOutlet, length)
	if err != nil {
		return nil, err
	}
	return mesh.RefineUniform(coarse)
}

// BuildBoxGrids generates grids for an axis-aligned box domain (all
// boundaries walls); useful for tests and custom setups.
func BuildBoxGrids(nx, ny, nz int, lx, ly, lz float64) (*Grids, error) {
	coarse, err := mesh.Box(nx, ny, nz, lx, ly, lz)
	if err != nil {
		return nil, err
	}
	return mesh.RefineUniform(coarse)
}

// Simulation configuration and execution.
type (
	// Config describes one coupled simulation; see the field docs in
	// internal/core.
	Config = core.Config
	// Solver is one rank's live simulation state (exposed to OnStep
	// probes).
	Solver = core.Solver
	// RunStats aggregates a finished run.
	RunStats = core.RunStats
	// RankStats is one rank's share of RunStats.
	RankStats = core.RankStats
	// CostModel converts work counts into modeled seconds.
	CostModel = core.CostModel
	// World is a set of simulated MPI ranks.
	World = simmpi.World
	// Comm is one rank's communicator.
	Comm = simmpi.Comm
)

// Per-phase observability (Config.Metrics).
type (
	// MetricsCollector holds one Registry per rank, recording measured
	// wall time per solver phase and per-step counters. Attach one to
	// Config.Metrics; export with WriteJSONL or WriteChromeTrace.
	MetricsCollector = metrics.Collector
	// MetricsRegistry is one rank's step-scoped phase timers.
	MetricsRegistry = metrics.Registry
)

// NewMetricsCollector returns a collector for an n-rank world using the
// default monotonic clock. Observe-only: attaching one to Config.Metrics
// never changes simulation behavior (Config.MeasuredLB opts into feeding
// the measured times to the load balancer).
func NewMetricsCollector(n int) *MetricsCollector {
	return metrics.NewCollector(n, nil)
}

// Species and particles.
type (
	// Species identifies a particle species (H or HPlus).
	Species = particle.Species
	// Particle is one simulation particle.
	Particle = particle.Particle
	// WallModel configures wall reflection.
	WallModel = dsmc.WallModel
)

// Species and wall-model constants.
const (
	H     = particle.H
	HPlus = particle.HPlus
	H2    = particle.H2

	SpecularWall = dsmc.SpecularWall
	DiffuseWall  = dsmc.DiffuseWall
)

// Exchange strategies (paper §IV-B).
type Strategy = exchange.Strategy

// Strategy values.
const (
	Centralized = exchange.Centralized
	Distributed = exchange.Distributed
)

// PoissonExchange selects how the distributed Poisson CG refreshes ghost
// entries each iteration (Config.PoissonExchange).
type PoissonExchange = pic.ExchangeMode

// PoissonExchange values: PoissonHalo (the default) ships only
// partition-boundary nodes point-to-point between neighbouring row blocks;
// PoissonReplicated re-assembles the full vector through rank 0 every
// iteration (the paper's scalability-wall structure, for comparison);
// PoissonOwnerLocal additionally keeps only owned CSR rows plus a ghost
// layer resident per rank and makes the once-per-solve charge reduction
// and phi assembly boundary-proportional (DESIGN.md §6j) — the full
// potential is then replicated only on demand (checkpoints, diagnostics).
const (
	PoissonHalo       = pic.ExchangeHalo
	PoissonReplicated = pic.ExchangeReplicated
	PoissonOwnerLocal = pic.ExchangeOwnerLocal
)

// LoadBalance configures the dynamic load balancer (paper §V).
type LoadBalance = balance.Config

// DefaultLoadBalance returns the paper's tuned balancer parameters
// (T=20, Threshold=2.0, R=2, WCell=1, Kuhn-Munkres remapping on).
func DefaultLoadBalance() *LoadBalance {
	cfg := balance.DefaultConfig()
	return &cfg
}

// Platforms for the communication cost model (paper §VI-A).
type Platform = commcost.Platform

// Platform presets.
var (
	Tianhe2 = commcost.Tianhe2
	BSCC    = commcost.BSCC
	Tianhe3 = commcost.Tianhe3
)

// Placement selects the fat-tree MPI rank placement (paper §VII-D2).
type Placement = commcost.Placement

// Placement values.
const (
	InnerFrame = commcost.InnerFrame
	InnerRack  = commcost.InnerRack
	InterRack  = commcost.InterRack
)

// Component names of the modeled time breakdown (paper Table IV rows).
const (
	CompInject       = core.CompInject
	CompDSMCMove     = core.CompDSMCMove
	CompDSMCExchange = core.CompDSMCExchange
	CompReindex      = core.CompReindex
	CompColliReact   = core.CompColliReact
	CompPICMove      = core.CompPICMove
	CompPICExchange  = core.CompPICExchange
	CompPoisson      = core.CompPoisson
	CompRebalance    = core.CompRebalance
)

// NewWorld creates a world of n simulated MPI ranks.
func NewWorld(n int) *World { return simmpi.NewWorld(n, simmpi.Options{}) }

// Reduction operators for Comm.AllreduceFloat64.
var (
	OpSum = simmpi.OpSum
	OpMax = simmpi.OpMax
	OpMin = simmpi.OpMin
)

// DefaultCostModel builds the work-to-seconds cost model for a platform
// and placement.
func DefaultCostModel(p Platform, pl Placement) CostModel {
	return core.DefaultCostModel(p, pl)
}

// CalibrationProfile holds measured per-unit compute costs fitted from a
// benchmark's phase timers (cmd/bench -calibrate); Apply substitutes them
// into a CostModel.
type CalibrationProfile = core.CalibrationProfile

// LoadCalibration reads and validates a calibration profile JSON file.
var LoadCalibration = core.LoadCalibrationFile

// ErrCanceled is the sentinel a canceled run's error matches (errors.Is)
// when Config.Cancel fires; see Config.Cancel.
var ErrCanceled = simmpi.ErrCanceled

// Run executes the coupled simulation on the world and returns aggregated
// statistics.
func Run(world *World, cfg Config) (*RunStats, error) {
	return core.Run(world, cfg)
}

// Checkpoint captures a running simulation's world state for later resume.
type Checkpoint = core.Checkpoint

// CaptureCheckpoint gathers the world state at rank 0 from inside an
// OnStep probe (collective; returns nil on other ranks).
func CaptureCheckpoint(s *Solver, step int) *Checkpoint {
	return core.CaptureCheckpoint(s, step)
}

// LoadCheckpoint reads a checkpoint written by Checkpoint.Save.
var LoadCheckpoint = core.LoadCheckpoint

// DefaultReactions returns the hydrogen plume chemistry (ionization of H,
// recombination of H+).
func DefaultReactions() dsmc.ReactionModel {
	return dsmc.DefaultHydrogenReactions()
}

// FullChemistry returns the extended neutral chemistry: the DefaultReactions
// channels plus H2 formation (H + H -> H2) and collision-induced
// dissociation (H2 + M -> 2H + M), which change the particle count.
func FullChemistry() dsmc.ReactionModel {
	return dsmc.DefaultNeutralChemistry()
}
