// Benchmarks regenerating every table and figure of the paper's evaluation
// (one benchmark per artifact; see DESIGN.md experiment index). Benchmarks
// run the quick preset by default; set DSMCPIC_FULL=1 for the paper-scale
// 24..1536-rank sweep (tens of minutes in total).
//
// Results are cached within the process, so benchmarks sharing runs (e.g.
// Table II / III / IV all read the DS2 sweep) pay for them once; -benchtime
// beyond the first iteration measures cache reads, not simulations.
package dsmcpic

import (
	"os"
	"testing"

	"github.com/plasma-hpc/dsmcpic/internal/experiments"
)

func benchPreset() experiments.Preset {
	if os.Getenv("DSMCPIC_FULL") == "1" {
		return experiments.FullPreset()
	}
	return experiments.QuickPreset()
}

func BenchmarkFig5NoBalanceDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig5(5 * benchPreset().Steps)
		if err != nil {
			b.Fatal(err)
		}
		if res.MaxShare() < 50 {
			b.Fatalf("concentration pathology not reproduced: %.1f%%", res.MaxShare())
		}
	}
}

func BenchmarkFig8ValidationContours(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Validation(8, 2*benchPreset().Steps, 4)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.SerialCells) == 0 || len(res.ParallelCells) == 0 {
			b.Fatal("missing density contours")
		}
	}
}

func BenchmarkFig9AxisProfiles(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Validation(8, 2*benchPreset().Steps, 4)
		if err != nil {
			b.Fatal(err)
		}
		for _, e := range res.MeanRelError {
			if e > 0.3 {
				b.Fatalf("axis profile error %.1f%% too high", 100*e)
			}
		}
	}
}

func BenchmarkTable2StrongScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table2(benchPreset())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Times) != 4 {
			b.Fatal("missing variants")
		}
	}
}

func BenchmarkTable3MoveTimes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table3(benchPreset()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11CommStrategies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig11(benchPreset()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4Breakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table4(benchPreset())
		if err != nil {
			b.Fatal(err)
		}
		if !res.PoissonScalesWorst() {
			b.Fatal("Poisson bottleneck not reproduced")
		}
	}
}

func BenchmarkTable5KMOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table5(benchPreset()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12IntervalT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig12(benchPreset()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable6WCell(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table6(benchPreset()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13Threshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig13(benchPreset()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig14RankPlacement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig14(benchPreset())
		if err != nil {
			b.Fatal(err)
		}
		if !res.InnerFrameFastest() {
			b.Fatal("placement ordering not reproduced")
		}
	}
}

func BenchmarkFig15Portability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := benchPreset()
		if len(p.Ranks) > 2 {
			p.Ranks = p.Ranks[:2] // 2 platforms x 4 datasets x 2 strategies
		}
		if _, err := experiments.Fig15(p); err != nil {
			b.Fatal(err)
		}
	}
}
