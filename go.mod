module github.com/plasma-hpc/dsmcpic

go 1.22
