// Package rng provides a small, fast, deterministic random number generator
// with stream splitting, plus the velocity-distribution samplers DSMC/PIC
// simulations need (Maxwell-Boltzmann and inlet flux sampling).
//
// Reproducibility across serial and parallel runs is a validation
// requirement of the paper (Fig. 8/9), so every rank — and when needed every
// cell — derives an independent stream from a (seed, stream id) pair rather
// than sharing one global source.
package rng

import "math"

// splitmix64 advances the given state and returns the next output. It is
// used both as a seeding hash and as the stream-splitting function.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Rand is a xoshiro256** generator. The zero value is not usable; construct
// with New or Split.
type Rand struct {
	s [4]uint64
	// cached spare normal deviate for NormFloat64
	spare    float64
	hasSpare bool
}

// New returns a generator seeded from (seed, stream). Distinct stream ids
// give statistically independent sequences for the same seed.
func New(seed, stream uint64) *Rand {
	var r Rand
	r.Reseed(seed, stream)
	return &r
}

// Reseed reinitializes r in place from (seed, stream), exactly as New
// would, discarding any cached normal deviate. The worker-pool kernels
// use it to derive per-chunk and per-cell streams each sweep without
// allocating a generator per chunk.
func (r *Rand) Reseed(seed, stream uint64) {
	st := seed ^ (stream * 0x9e3779b97f4a7c15)
	for i := range r.s {
		r.s[i] = splitmix64(&st)
	}
	// xoshiro must not start at the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x853c49e6748fea9b
	}
	r.spare = 0
	r.hasSpare = false
}

// Split derives a new independent generator from r without disturbing r's
// own future output beyond a single draw.
func (r *Rand) Split() *Rand {
	return New(r.Uint64(), 0x5851f42d4c957f2d)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform deviate in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// NormFloat64 returns a standard normal deviate using Marsaglia's polar
// method (allocation-free, deterministic).
func (r *Rand) NormFloat64() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.spare = v * f
		r.hasSpare = true
		return u * f
	}
}

// Exp returns an exponential deviate with unit mean.
func (r *Rand) Exp() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}
