package rng

import "math"

// Boltzmann constant in J/K.
const KBoltzmann = 1.380649e-23

// ThermalSpeed returns the most probable thermal speed sqrt(2 k T / m) for a
// species of mass m (kg) at temperature T (K). DSMC conventionally scales
// Maxwell sampling by this speed.
func ThermalSpeed(temperature, mass float64) float64 {
	return math.Sqrt(2 * KBoltzmann * temperature / mass)
}

// Maxwell samples the three velocity components of a Maxwell-Boltzmann
// distribution at temperature T for mass m, centred on the drift velocity
// (dx, dy, dz). Each component is normal with standard deviation
// sqrt(kT/m).
func (r *Rand) Maxwell(temperature, mass float64, dx, dy, dz float64) (vx, vy, vz float64) {
	sigma := math.Sqrt(KBoltzmann * temperature / mass)
	return dx + sigma*r.NormFloat64(),
		dy + sigma*r.NormFloat64(),
		dz + sigma*r.NormFloat64()
}

// FluxMaxwellInward samples the velocity component normal to an inflow
// boundary for a particle crossing into the domain, for a drifting Maxwell
// gas with drift speed u (along the inward normal) and thermal speed
// scale beta = sqrt(2kT/m). The inward flux distribution is
// f(v) ∝ v * exp(-((v-u)/beta)^2) for v > 0; we sample it by
// acceptance-rejection against a shifted Rayleigh/normal envelope
// (Garcia & Wagner 2006 style, simplified).
func (r *Rand) FluxMaxwellInward(u, beta float64) float64 {
	if beta <= 0 {
		if u > 0 {
			return u
		}
		return 0
	}
	s := u / beta // speed ratio
	// Envelope: for strongly drifting inflow (s large) the distribution is
	// close to a normal around u; for s ~ 0 it is close to Rayleigh. Use
	// acceptance-rejection with the exact density and a per-call bound.
	// Mode of v*exp(-((v-u)/beta)^2): v* = (u + sqrt(u^2 + 2 beta^2)) / 2.
	vMode := (u + math.Sqrt(u*u+2*beta*beta)) / 2
	fMode := vMode * math.Exp(-sq((vMode-u)/beta))
	// Proposal: normal centred at vMode with std beta (truncated to v>0).
	for i := 0; i < 10000; i++ {
		v := vMode + beta*r.NormFloat64()
		if v <= 0 {
			continue
		}
		f := v * math.Exp(-sq((v-u)/beta))
		g := fMode * math.Exp(-sq((v-vMode)/beta)/2) * 1.3 // envelope with safety margin
		if f > g {
			// Envelope violated (rare, extreme tails): accept directly,
			// bias is negligible for the speed ratios used here.
			return v
		}
		if r.Float64()*g < f {
			return v
		}
	}
	// Pathological parameters: fall back to the mode.
	_ = s
	return vMode
}

func sq(x float64) float64 { return x * x }

// UnitSphere samples a uniformly distributed direction on the unit sphere.
// DSMC post-collision velocities for VHS molecules scatter isotropically.
func (r *Rand) UnitSphere() (x, y, z float64) {
	z = 2*r.Float64() - 1
	phi := 2 * math.Pi * r.Float64()
	s := math.Sqrt(1 - z*z)
	return s * math.Cos(phi), s * math.Sin(phi), z
}

// CosineHemisphere samples a direction from a cosine-weighted hemisphere
// around the +normal axis; used for diffuse wall reflection. The returned
// components are expressed in a frame where n is the z axis: the caller maps
// them into world space with an orthonormal basis.
func (r *Rand) CosineHemisphere() (x, y, z float64) {
	u1 := r.Float64()
	u2 := r.Float64()
	rad := math.Sqrt(u1)
	phi := 2 * math.Pi * u2
	return rad * math.Cos(phi), rad * math.Sin(phi), math.Sqrt(1 - u1)
}
