package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42, 7)
	b := New(42, 7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same (seed, stream) diverged at draw %d", i)
		}
	}
}

// TestReseedMatchesNew pins Reseed as the in-place equivalent of New: a
// reseeded generator must replay New's stream exactly, and reseeding must
// discard the cached normal deviate (the kernels reseed per sweep; a spare
// leaking across sweeps would break replay).
func TestReseedMatchesNew(t *testing.T) {
	var r Rand
	r.Reseed(99, 3)
	fresh := New(99, 3)
	for i := 0; i < 1000; i++ {
		if r.Uint64() != fresh.Uint64() {
			t.Fatalf("Reseed diverged from New at draw %d", i)
		}
	}
	// Load a spare, reseed, and check the first normal matches a fresh
	// generator's (i.e. the spare did not survive the reseed).
	r.NormFloat64()
	r.Reseed(7, 1)
	if got, want := r.NormFloat64(), New(7, 1).NormFloat64(); got != want {
		t.Fatalf("first normal after Reseed = %v, want %v (stale spare leaked)", got, want)
	}
}

func TestStreamsIndependent(t *testing.T) {
	a := New(42, 1)
	b := New(42, 2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("streams 1 and 2 collided %d/1000 times", same)
	}
}

func TestSplitIndependent(t *testing.T) {
	a := New(1, 0)
	b := a.Split()
	c := a.Split()
	if b.Uint64() == c.Uint64() {
		t.Error("two splits produced identical first draws")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3, 0)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Moments(t *testing.T) {
	r := New(5, 0)
	n := 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		f := r.Float64()
		sum += f
		sum2 += f * f
	}
	mean := sum / float64(n)
	variance := sum2/float64(n) - mean*mean
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("uniform mean = %v", mean)
	}
	if math.Abs(variance-1.0/12) > 0.01 {
		t.Errorf("uniform variance = %v", variance)
	}
}

func TestIntn(t *testing.T) {
	r := New(9, 0)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		counts[r.Intn(10)]++
	}
	for v, c := range counts {
		if c < 9000 || c > 11000 {
			t.Errorf("Intn(10) value %d count %d outside [9000, 11000]", v, c)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1, 0).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(11, 0)
	n := 200000
	var sum, sum2, sum4 float64
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sum2 += x * x
		sum4 += x * x * x * x
	}
	mean := sum / float64(n)
	variance := sum2 / float64(n)
	kurt := sum4 / float64(n)
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v", variance)
	}
	if math.Abs(kurt-3) > 0.15 {
		t.Errorf("normal 4th moment = %v, want ~3", kurt)
	}
}

func TestExpMean(t *testing.T) {
	r := New(13, 0)
	n := 200000
	var sum float64
	for i := 0; i < n; i++ {
		x := r.Exp()
		if x < 0 {
			t.Fatalf("negative exponential deviate %v", x)
		}
		sum += x
	}
	if mean := sum / float64(n); math.Abs(mean-1) > 0.02 {
		t.Errorf("exp mean = %v", mean)
	}
}

func TestMaxwellMoments(t *testing.T) {
	r := New(17, 0)
	const (
		temp = 300.0
		mass = 1.6735575e-27 // hydrogen atom
	)
	sigma := math.Sqrt(KBoltzmann * temp / mass)
	n := 100000
	var sx, sx2 float64
	for i := 0; i < n; i++ {
		vx, _, _ := r.Maxwell(temp, mass, 100, 0, 0)
		sx += vx
		sx2 += vx * vx
	}
	mean := sx / float64(n)
	std := math.Sqrt(sx2/float64(n) - mean*mean)
	if math.Abs(mean-100) > 0.02*sigma {
		t.Errorf("Maxwell drift mean = %v, want ~100", mean)
	}
	if math.Abs(std-sigma)/sigma > 0.02 {
		t.Errorf("Maxwell std = %v, want %v", std, sigma)
	}
}

func TestThermalSpeed(t *testing.T) {
	got := ThermalSpeed(273, 1.6735575e-27)
	want := math.Sqrt(2 * KBoltzmann * 273 / 1.6735575e-27)
	if math.Abs(got-want) > 1e-9*want {
		t.Errorf("ThermalSpeed = %v, want %v", got, want)
	}
}

func TestFluxMaxwellInwardPositive(t *testing.T) {
	r := New(19, 0)
	for _, u := range []float64{0, 100, 1000, 10000} {
		for i := 0; i < 2000; i++ {
			v := r.FluxMaxwellInward(u, 1500)
			if v <= 0 {
				t.Fatalf("u=%v: non-positive inward velocity %v", u, v)
			}
		}
	}
}

func TestFluxMaxwellInwardMeanIncreasesWithDrift(t *testing.T) {
	r := New(23, 0)
	mean := func(u float64) float64 {
		var s float64
		n := 20000
		for i := 0; i < n; i++ {
			s += r.FluxMaxwellInward(u, 1500)
		}
		return s / float64(n)
	}
	m0, m1, m2 := mean(0), mean(3000), mean(10000)
	if !(m0 < m1 && m1 < m2) {
		t.Errorf("flux means not monotone in drift: %v, %v, %v", m0, m1, m2)
	}
	// Strong drift limit: mean -> u (+ small thermal correction).
	if math.Abs(m2-10000) > 500 {
		t.Errorf("strong-drift mean = %v, want ~10000", m2)
	}
}

func TestUnitSphereIsotropy(t *testing.T) {
	r := New(29, 0)
	n := 100000
	var sx, sy, sz float64
	for i := 0; i < n; i++ {
		x, y, z := r.UnitSphere()
		if math.Abs(x*x+y*y+z*z-1) > 1e-9 {
			t.Fatalf("not unit: %v %v %v", x, y, z)
		}
		sx += x
		sy += y
		sz += z
	}
	for _, s := range []float64{sx, sy, sz} {
		if math.Abs(s)/float64(n) > 0.01 {
			t.Errorf("mean component %v not ~0", s/float64(n))
		}
	}
}

func TestCosineHemisphere(t *testing.T) {
	r := New(31, 0)
	n := 100000
	var sz float64
	for i := 0; i < n; i++ {
		x, y, z := r.CosineHemisphere()
		if z < 0 {
			t.Fatalf("below hemisphere: z=%v", z)
		}
		if math.Abs(x*x+y*y+z*z-1) > 1e-9 {
			t.Fatalf("not unit length")
		}
		sz += z
	}
	// E[cos(theta)] for cosine-weighted hemisphere = 2/3.
	if mean := sz / float64(n); math.Abs(mean-2.0/3) > 0.01 {
		t.Errorf("mean z = %v, want 2/3", mean)
	}
}

// Property: Float64 of two different streams never produces long identical
// runs (statistical independence smoke test via quick).
func TestQuickStreams(t *testing.T) {
	f := func(seed uint64, s1, s2 uint8) bool {
		if s1 == s2 {
			return true
		}
		a := New(seed, uint64(s1))
		b := New(seed, uint64(s2))
		matches := 0
		for i := 0; i < 64; i++ {
			if a.Uint64() == b.Uint64() {
				matches++
			}
		}
		return matches < 3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1, 0)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkNormFloat64(b *testing.B) {
	r := New(1, 0)
	for i := 0; i < b.N; i++ {
		_ = r.NormFloat64()
	}
}

func BenchmarkFluxMaxwellInward(b *testing.B) {
	r := New(1, 0)
	for i := 0; i < b.N; i++ {
		_ = r.FluxMaxwellInward(10000, 1500)
	}
}
