package commcost

import (
	"math"
	"testing"
	"testing/quick"
)

func mixSum(m DistanceMix) float64 {
	return m.SameNode + m.SameFrame + m.SameRack + m.CrossRack
}

func TestMixSumsToOne(t *testing.T) {
	for _, p := range []Platform{Tianhe2, BSCC, Tianhe3} {
		for _, pl := range []Placement{InnerFrame, InnerRack, InterRack} {
			for _, n := range []int{1, 2, 24, 96, 384, 1536} {
				m := p.Mix(n, pl)
				if math.Abs(mixSum(m)-1) > 1e-12 {
					t.Errorf("%s/%v n=%d: mix sums to %v", p.Name, pl, n, mixSum(m))
				}
				for _, f := range []float64{m.SameNode, m.SameFrame, m.SameRack, m.CrossRack} {
					if f < -1e-12 || f > 1+1e-12 {
						t.Errorf("%s/%v n=%d: fraction %v out of range", p.Name, pl, n, f)
					}
				}
			}
		}
	}
}

func TestSingleRankAllLocal(t *testing.T) {
	m := Tianhe2.Mix(1, InnerFrame)
	if m.SameNode != 1 {
		t.Errorf("single rank mix: %+v", m)
	}
}

func TestSmallWorldFitsOneNode(t *testing.T) {
	// 24 ranks fill exactly one Tianhe-2 node: all pairs same node.
	m := Tianhe2.Mix(24, InnerFrame)
	if m.SameNode != 1 {
		t.Errorf("24 ranks on one node: %+v", m)
	}
}

func TestInnerFrameCheaperThanInterRack(t *testing.T) {
	for _, n := range []int{96, 384, 1536} {
		aFrame := Tianhe2.EffectiveAlpha(n, InnerFrame)
		aRack := Tianhe2.EffectiveAlpha(n, InnerRack)
		aXRack := Tianhe2.EffectiveAlpha(n, InterRack)
		if !(aFrame <= aRack+1e-15 && aRack <= aXRack+1e-15) {
			t.Errorf("n=%d: alpha ordering violated: %v %v %v", n, aFrame, aRack, aXRack)
		}
	}
}

func TestPlacementEffectModest(t *testing.T) {
	// The paper reports only 1-2% total-time differences between
	// placements; the pure-latency difference should stay bounded (< 50%).
	n := 96
	f := Tianhe2.EffectiveAlpha(n, InnerFrame)
	x := Tianhe2.EffectiveAlpha(n, InterRack)
	if x > 1.5*f {
		t.Errorf("placement latency spread too large: %v vs %v", f, x)
	}
}

func TestEffectiveBetaLoss(t *testing.T) {
	n := 1536
	bFrame := Tianhe2.EffectiveBeta(n, InnerFrame)
	bXRack := Tianhe2.EffectiveBeta(n, InterRack)
	if bXRack > bFrame {
		t.Errorf("inter-rack bandwidth %v should not exceed inner-frame %v", bXRack, bFrame)
	}
	if bXRack < 0.8*Tianhe2.Beta {
		t.Errorf("bandwidth loss too aggressive: %v of %v", bXRack, Tianhe2.Beta)
	}
}

func TestCommTimeScalesWithTraffic(t *testing.T) {
	t1 := Tianhe2.CommTime(100, 1<<20, 96, InnerFrame)
	t2 := Tianhe2.CommTime(200, 2<<20, 96, InnerFrame)
	if math.Abs(t2-2*t1) > 1e-12*t2 {
		t.Errorf("CommTime not linear: %v vs 2*%v", t2, t1)
	}
	if Tianhe2.CommTime(0, 0, 96, InnerFrame) != 0 {
		t.Error("zero traffic should cost zero")
	}
}

func TestPlatformOrdering(t *testing.T) {
	// Latency-dominated workloads: BSCC (lowest alpha) beats Tianhe-3
	// (highest alpha).
	msgs, bytes := int64(10000), int64(1000)
	n := 384
	tBSCC := BSCC.CommTime(msgs, bytes, n, InnerFrame)
	tTH3 := Tianhe3.CommTime(msgs, bytes, n, InnerFrame)
	if tBSCC >= tTH3 {
		t.Errorf("latency-bound: BSCC %v should beat TH3 %v", tBSCC, tTH3)
	}
	// Bandwidth-dominated workloads: Tianhe-3 (200 Gb/s) beats BSCC.
	msgs, bytes = 10, 1<<30
	tBSCC = BSCC.CommTime(msgs, bytes, n, InnerFrame)
	tTH3 = Tianhe3.CommTime(msgs, bytes, n, InnerFrame)
	if tTH3 >= tBSCC {
		t.Errorf("bandwidth-bound: TH3 %v should beat BSCC %v", tTH3, tBSCC)
	}
}

// Property: CommTime is non-negative and monotone in both arguments.
func TestQuickCommTimeMonotone(t *testing.T) {
	f := func(m1, m2, b1, b2 uint32) bool {
		msgsLo, msgsHi := int64(m1%10000), int64(m1%10000)+int64(m2%10000)
		bytesLo, bytesHi := int64(b1%1000000), int64(b1%1000000)+int64(b2%1000000)
		lo := Tianhe2.CommTime(msgsLo, bytesLo, 96, InnerRack)
		hi := Tianhe2.CommTime(msgsHi, bytesHi, 96, InnerRack)
		return lo >= 0 && hi >= lo
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPlacementString(t *testing.T) {
	if InnerFrame.String() != "inner-frame" || InnerRack.String() != "inner-rack" ||
		InterRack.String() != "inter-rack" || Placement(9).String() != "placement(?)" {
		t.Error("Placement.String values wrong")
	}
}

func TestComputeFactors(t *testing.T) {
	if !(BSCC.ComputeFactor < Tianhe2.ComputeFactor && Tianhe2.ComputeFactor < Tianhe3.ComputeFactor) {
		t.Error("compute factor ordering: BSCC fastest, TH3 prototype slowest")
	}
}

func TestPoissonOncePerSolveBytes(t *testing.T) {
	// Single rank sends nothing; the owner-local cost with no boundary is
	// likewise zero.
	if got := PoissonOncePerSolveBytesFull(2601, 1); got != 0 {
		t.Errorf("n=1 full model = %d, want 0", got)
	}
	if got := PoissonOncePerSolveBytesOwnerLocal(0); got != 0 {
		t.Errorf("no-boundary owner model = %d, want 0", got)
	}
	// The legacy cost scales with the global node count and the rank
	// count; the owner-local cost depends only on the boundary overlap.
	full4 := PoissonOncePerSolveBytesFull(2601, 4)
	if full8 := PoissonOncePerSolveBytesFull(2601, 8); full8 <= full4 {
		t.Errorf("full model not growing with ranks: n=8 %d <= n=4 %d", full8, full4)
	}
	if fullBig := PoissonOncePerSolveBytesFull(4*2601, 4); fullBig != 4*full4 {
		t.Errorf("full model not linear in nodes: %d != 4*%d", fullBig, full4)
	}
	if got := PoissonOncePerSolveBytesOwnerLocal(153); got != 2*8*153 {
		t.Errorf("owner model = %d, want %d", got, 2*8*153)
	}
	// The contrast the tentpole claims: on the bench mesh (2601 nodes, 4
	// ranks, ~150 boundary-overlap entries per direction) the model puts
	// the legacy once-per-solve traffic far more than 4x above owner-local.
	owner := PoissonOncePerSolveBytesOwnerLocal(153)
	if full4 < 4*owner {
		t.Errorf("modeled legacy/owner ratio below 4x: %d vs %d", full4, owner)
	}
}
