// Package commcost models communication time on the paper's three HPC
// platforms with a latency–bandwidth (alpha–beta) model refined by a
// fat-tree placement hierarchy. The reproduction runs the real solver over
// simulated-MPI goroutine ranks and measures computation directly; the
// network does not exist here, so communication seconds are *modeled* from
// the exact per-rank message and byte counts recorded by simmpi:
//
//	T_comm = msgs * alpha_eff + bytes / beta_eff
//
// where alpha_eff and beta_eff depend on the platform constants and on the
// mix of peer distances (same node / inner frame / inner rack / inter rack)
// implied by the MPI rank placement (paper §VII-D2).
package commcost

// Placement is an MPI rank placement strategy on a fat-tree machine
// (paper Fig. 14).
type Placement int

const (
	// InnerFrame packs ranks onto the nodes of as few frames as possible.
	InnerFrame Placement = iota
	// InnerRack spreads nodes round-robin over the frames of one rack.
	InnerRack
	// InterRack spreads nodes round-robin over racks.
	InterRack
)

func (p Placement) String() string {
	switch p {
	case InnerFrame:
		return "inner-frame"
	case InnerRack:
		return "inner-rack"
	case InterRack:
		return "inter-rack"
	default:
		return "placement(?)"
	}
}

// Platform holds the machine constants of one evaluation system.
type Platform struct {
	Name string

	// CoresPerNode is how many MPI ranks share one compute node.
	CoresPerNode int
	// NodesPerFrame and FramesPerRack describe the fat-tree packaging
	// (paper §VII-D2: 32 nodes per frame, 4 frames per rack on Tianhe-2).
	NodesPerFrame int
	FramesPerRack int

	// Alpha is the base per-message latency in seconds for inner-frame
	// peers; Beta is the point-to-point bandwidth in bytes/second.
	Alpha float64
	Beta  float64

	// Latency multipliers by peer distance. Same-node messages go through
	// shared memory (cheap); farther hops traverse more switch stages.
	SameNodeFactor  float64
	InnerFrameLat   float64
	InnerRackLat    float64
	InterRackLat    float64
	InterRackBWLoss float64 // fractional bandwidth loss for inter-rack traffic

	// Contention scales the network-congestion term: a bulk-synchronous
	// phase in which ALL ranks inject traffic concurrently is limited by
	// aggregate network capacity (~one link per node), so each rank pays
	// an extra Contention * (total traffic / n) on top of its own direct
	// cost. This is what separates the distributed strategy's N(N-1)
	// total transactions from the centralized strategy's 2N (paper
	// §IV-B3): per-rank maxima alone tie at 2(N-1).
	Contention float64

	// ComputeFactor scales measured single-core compute time relative to
	// the reference platform (Tianhe-2 = 1.0): lower is faster hardware.
	ComputeFactor float64
}

// The three evaluation platforms (paper §VI-A). Alpha/Beta derive from the
// published point-to-point bandwidths (160 Gb/s TH-2, 100 Gb/s IB BSCC,
// 200 Gb/s TH-3 prototype) and typical measured small-message latencies for
// those interconnect generations; they set the *shape* of the time tables,
// not absolute agreement.
var (
	Tianhe2 = Platform{
		Name:            "Tianhe-2",
		CoresPerNode:    24, // 2 x 12-core Xeon E5-2692 v2
		NodesPerFrame:   32,
		FramesPerRack:   4,
		Alpha:           1.5e-6,
		Beta:            20e9, // 160 Gb/s
		SameNodeFactor:  0.4,
		InnerFrameLat:   1.0,
		InnerRackLat:    1.06,
		InterRackLat:    1.12,
		InterRackBWLoss: 0.04,
		Contention:      1.0,
		ComputeFactor:   1.0,
	}
	BSCC = Platform{
		Name:            "BSCC",
		CoresPerNode:    96, // 2 x 48-core Xeon Platinum 9242
		NodesPerFrame:   18, // one InfiniBand leaf switch
		FramesPerRack:   4,
		Alpha:           1.2e-6,
		Beta:            12.5e9, // 100 Gb/s EDR-class InfiniBand
		SameNodeFactor:  0.4,
		InnerFrameLat:   1.0,
		InnerRackLat:    1.08,
		InterRackLat:    1.16,
		InterRackBWLoss: 0.06,
		Contention:      1.0,
		ComputeFactor:   0.80, // newer cores, higher per-core throughput
	}
	Tianhe3 = Platform{
		Name:            "Tianhe-3 prototype",
		CoresPerNode:    64, // Phytium 2000+ ARMv8
		NodesPerFrame:   32,
		FramesPerRack:   4,
		Alpha:           1.8e-6,
		Beta:            25e9, // 200 Gb/s
		SameNodeFactor:  0.4,
		InnerFrameLat:   1.0,
		InnerRackLat:    1.06,
		InterRackLat:    1.12,
		InterRackBWLoss: 0.04,
		Contention:      1.0,
		ComputeFactor:   1.45, // weaker single-core ARM prototype
	}
)

// DistanceMix is the fraction of peer pairs at each distance class for a
// given placement; the four fields sum to 1 (single-rank worlds are all
// SameNode by convention).
type DistanceMix struct {
	SameNode  float64
	SameFrame float64
	SameRack  float64
	CrossRack float64
}

// Mix computes the peer-distance distribution for n ranks placed with
// strategy pl, assuming a uniformly random communication peer (the coupled
// solver's migrations connect arbitrary rank pairs — paper §IV-B).
func (p Platform) Mix(n int, pl Placement) DistanceMix {
	if n <= 1 {
		return DistanceMix{SameNode: 1}
	}
	// Assign each rank a (node, frame, rack) coordinate per the strategy.
	type coord struct{ node, frame, rack int }
	coords := make([]coord, n)
	nodesNeeded := (n + p.CoresPerNode - 1) / p.CoresPerNode
	for r := 0; r < n; r++ {
		nodeSlot := r / p.CoresPerNode // which allocated node, 0..nodesNeeded-1
		var node, frame, rack int
		switch pl {
		case InnerFrame:
			// Fill frames sequentially.
			node = nodeSlot
			frame = node / p.NodesPerFrame
			rack = frame / p.FramesPerRack
		case InnerRack:
			// Round-robin nodes over the frames of consecutive racks.
			framesAvail := p.FramesPerRack
			frame = nodeSlot % framesAvail
			rack = 0
			node = nodeSlot
			// If one rack's capacity is exceeded, overflow to next rack.
			cap := framesAvail * p.NodesPerFrame
			rack = nodeSlot / cap
			frame = rack*p.FramesPerRack + nodeSlot%framesAvail
		case InterRack:
			// Round-robin nodes over a pool of racks (as many racks as
			// needed if each rack contributed one frame).
			racks := nodesNeeded/p.NodesPerFrame + 1
			if racks < 2 {
				racks = 2
			}
			rack = nodeSlot % racks
			frame = rack * p.FramesPerRack
			node = nodeSlot
		}
		coords[r] = coord{node: node, frame: frame, rack: rack}
	}
	// Count pairs per class via group sizes.
	countPairs := func(key func(coord) int) float64 {
		sizes := map[int]int{}
		for _, c := range coords {
			sizes[key(c)]++
		}
		// Integer accumulation: exact under any map iteration order (float
		// += here would make the mix bits depend on randomized map order).
		var pairs int64
		for _, s := range sizes {
			pairs += int64(s) * int64(s-1)
		}
		return float64(pairs)
	}
	total := float64(n) * float64(n-1)
	sameNode := countPairs(func(c coord) int { return c.node })
	sameFrame := countPairs(func(c coord) int { return c.frame })
	sameRack := countPairs(func(c coord) int { return c.rack })
	m := DistanceMix{
		SameNode:  sameNode / total,
		SameFrame: (sameFrame - sameNode) / total,
		SameRack:  (sameRack - sameFrame) / total,
		CrossRack: (total - sameRack) / total,
	}
	return m
}

// EffectiveAlpha returns the expected per-message latency under the given
// placement mix.
func (p Platform) EffectiveAlpha(n int, pl Placement) float64 {
	m := p.Mix(n, pl)
	return p.Alpha * (m.SameNode*p.SameNodeFactor +
		m.SameFrame*p.InnerFrameLat +
		m.SameRack*p.InnerRackLat +
		m.CrossRack*p.InterRackLat)
}

// EffectiveBeta returns the expected bandwidth under the given placement
// mix (only inter-rack traffic loses bandwidth).
func (p Platform) EffectiveBeta(n int, pl Placement) float64 {
	m := p.Mix(n, pl)
	loss := m.CrossRack * p.InterRackBWLoss
	return p.Beta * (1 - loss)
}

// CommTime converts a phase's bottleneck traffic (the maximum messages and
// bytes sent by any single rank — bulk-synchronous phases complete when the
// busiest rank does) into modeled seconds, without a congestion term.
func (p Platform) CommTime(maxMsgs, maxBytes int64, n int, pl Placement) float64 {
	return float64(maxMsgs)*p.EffectiveAlpha(n, pl) +
		float64(maxBytes)/p.EffectiveBeta(n, pl)
}

// CommTimeCongested adds the network-congestion share to a rank's direct
// cost: each of the n concurrently communicating ranks also pays
// Contention * (total phase traffic / n).
func (p Platform) CommTimeCongested(ownMsgs, ownBytes, totalMsgs, totalBytes int64, n int, pl Placement) float64 {
	direct := p.CommTime(ownMsgs, ownBytes, n, pl)
	if n <= 1 {
		return direct
	}
	share := p.CommTime(totalMsgs, totalBytes, n, pl) / float64(n)
	return direct + p.Contention*share
}

// Once-per-solve Poisson traffic models (DESIGN.md §6j). Each Poisson
// solve moves data outside the CG iterations twice: the charge reduction
// on the way in and the phi assembly on the way out. The legacy exchange
// modes ship the full nodal vector through collectives — the O(nodes)
// wall of the paper's Table IV — while the owner-local mode ships only
// the partition-boundary overlap entries point-to-point. These helpers
// give the analytic world-total sent bytes for both shapes, mirroring
// simmpi's collective implementations, so bench results can be
// cross-checked against the model without running a world.

// PoissonOncePerSolveBytesFull is the legacy (halo and replicated) model:
// a binomial-tree AllreduceFloat64 over the full nodes-length vector
// (every rank but the root sends its 8·nodes partial up, then the result
// travels back down: 2(n-1)·8·nodes) plus the owned-segment Allgatherv
// phi assembly (a linear gather of the (n-1) unowned shares into rank 0,
// then a binomial bcast of the full vector: ≈ (n-1)·8·nodes·(1 + (n-1)/n)
// — modeled here without the per-part framing bytes).
func PoissonOncePerSolveBytesFull(nodes, n int) int64 {
	if n <= 1 {
		return 0
	}
	vec := 8 * int64(nodes)
	charge := 2 * int64(n-1) * vec
	// Gather leg: all segments except rank 0's own, ≈ (n-1)/n of the
	// vector for an even split. Bcast leg: (n-1) full copies.
	assembly := vec*int64(n-1)/int64(n) + int64(n-1)*vec
	return charge + assembly
}

// PoissonOncePerSolveBytesOwnerLocal is the owner-local model: charge
// contributions and consumer phi values traverse the same boundary index
// lists in opposite directions, so both legs together move 16 bytes per
// boundary-overlap entry (one float64 each way), independent of the
// global mesh size. boundaryEntries is Σ over ranks and neighbour pairs
// of the shared consumer-node list lengths (pic.DistSolver's
// ChargeSendNodes totals).
func PoissonOncePerSolveBytesOwnerLocal(boundaryEntries int) int64 {
	return 2 * 8 * int64(boundaryEntries)
}
