package cluster

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/plasma-hpc/dsmcpic/internal/serve"
	"github.com/plasma-hpc/dsmcpic/internal/store"
)

// TestSpecKeyCanonicalBytesPinned pins the canonical cache key the router
// and every shard must agree on. If this hash moves, routing and caching
// still agree with each other (both call serve.SpecKey), but every
// persisted result in every deployed cluster silently misses — so moving
// it must be a deliberate, migration-aware decision, not a drive-by field
// reorder. The pinned value covers the defaulting rules too: a JobSpec
// field added without omitempty, a changed default, or a reordered field
// all change this hash.
func TestSpecKeyCanonicalBytesPinned(t *testing.T) {
	const pinnedEmpty = "3fcdeefaeec35d127a6504f8a433e0590d717248b95d728f4e9fea3c0059c1c8"
	key, err := serve.SpecKey(serve.JobSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if key != pinnedEmpty {
		t.Fatalf("canonical key of the empty spec moved:\n got %s\nwant %s\n"+
			"(a JobSpec field, default, or ordering changed — this invalidates every deployed result cache)", key, pinnedEmpty)
	}

	// Spelling the defaults explicitly must not change the key: the
	// normalization, not the submitted JSON, is canonical.
	explicit := serve.JobSpec{
		Case: "nozzle", MeshN: 3, MeshNZ: 8, Radius: 0.05, Length: 0.2,
		Ranks: 2, Steps: 8, SimWorkers: 1, PICSubsteps: 2, DtDSMC: 1.2586e-6,
		InjectHPerStep: 1500, InjectIonPerStep: 150, Temperature: 300,
		Drift: 10000, WeightH: 1e12, WeightIon: 6000,
		Strategy: "dc", PoissonExchange: "halo", PoissonTol: 1e-6,
		LBT: 5, LBThreshold: 2.0,
	}
	if k, _ := serve.SpecKey(explicit); k != pinnedEmpty {
		t.Fatalf("explicit defaults produced a different key: %s", k)
	}
	// Priority cannot affect the result, so it cannot affect the key.
	if k, _ := serve.SpecKey(serve.JobSpec{Priority: 9}); k != pinnedEmpty {
		t.Fatal("priority leaked into the canonical key")
	}
	// Any result-relevant field must move the key.
	if k, _ := serve.SpecKey(serve.JobSpec{Seed: 1}); k == pinnedEmpty {
		t.Fatal("seed did not move the canonical key")
	}
	if k, _ := serve.SpecKey(serve.JobSpec{SnapshotEvery: 1}); k == pinnedEmpty {
		t.Fatal("snapshot_every did not move the canonical key")
	}
}

// TestRendezvousOwnership pins the routing properties the cluster cache
// depends on: determinism, full coverage, and minimal movement when a
// shard leaves (only the departed shard's keys are reassigned).
func TestRendezvousOwnership(t *testing.T) {
	mk := func(names ...string) *Router {
		shards := make([]Shard, len(names))
		for i, n := range names {
			shards[i] = Shard{Name: n, URL: "http://" + n}
		}
		r, err := New(Options{Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	three := mk("s0", "s1", "s2")
	two := mk("s0", "s1")

	counts := make([]int, 3)
	moved, kept := 0, 0
	for i := 0; i < 300; i++ {
		key := fmt.Sprintf("key-%d", i)
		owner := three.ownerOf(key)
		if owner != three.ownerOf(key) {
			t.Fatal("ownership not deterministic")
		}
		counts[owner]++
		if owner != 2 { // s2 left the two-shard cluster
			if two.ownerOf(key) != owner {
				moved++
			} else {
				kept++
			}
		}
	}
	for i, c := range counts {
		if c == 0 {
			t.Fatalf("shard %d owns no keys out of 300", i)
		}
	}
	if moved != 0 {
		t.Fatalf("removing s2 moved %d keys owned by surviving shards (kept %d); rendezvous must move only the departed shard's keys", moved, kept)
	}
}

// TestShardForID: longest-prefix match keeps s1- and s10- apart.
func TestShardForID(t *testing.T) {
	r, err := New(Options{Shards: []Shard{
		{Name: "s1", URL: "http://a"},
		{Name: "s10", URL: "http://b"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if i := r.shardForID("s10-j-3"); i != 1 {
		t.Fatalf("s10-j-3 mapped to shard %d", i)
	}
	if i := r.shardForID("s1-j-3"); i != 0 {
		t.Fatalf("s1-j-3 mapped to shard %d", i)
	}
	if i := r.shardForID("j-3"); i != -1 {
		t.Fatalf("unprefixed ID mapped to shard %d", i)
	}
}

// swapHandler lets the e2e swap a shard's handler at a stable URL —
// nil simulates a SIGKILLed process by hijacking and closing the
// connection (the client sees a transport error, as with a dead port).
type swapHandler struct {
	mu sync.Mutex
	h  http.Handler
}

func (s *swapHandler) set(h http.Handler) {
	s.mu.Lock()
	s.h = h
	s.mu.Unlock()
}

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	h := s.h
	s.mu.Unlock()
	if h == nil {
		if hj, ok := w.(http.Hijacker); ok {
			if conn, _, err := hj.Hijack(); err == nil {
				conn.Close()
				return
			}
		}
		w.WriteHeader(http.StatusBadGateway)
		return
	}
	h.ServeHTTP(w, r)
}

// e2eSpec is a small job capturing one frame per step.
func e2eSpec() serve.JobSpec {
	return serve.JobSpec{
		MeshNZ:         6,
		Ranks:          2,
		Steps:          3,
		Seed:           11,
		InjectHPerStep: 400,
		SnapshotEvery:  1,
	}
}

func postSpec(t *testing.T, url string, spec serve.JobSpec) (*http.Response, map[string]interface{}) {
	t.Helper()
	blob, _ := json.Marshal(spec)
	resp, err := http.Post(url+"/jobs", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("submit reply undecodable: %v", err)
	}
	return resp, body
}

func getBody(t *testing.T, url string) (int, []byte, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, blob, resp.Header
}

// readFrameLines splits a frames NDJSON payload into its frame lines
// (the final summary line excluded).
func readFrameLines(t *testing.T, blob []byte) []string {
	t.Helper()
	var frames []string
	sc := bufio.NewScanner(bytes.NewReader(blob))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if !strings.Contains(sc.Text(), `"final":true`) {
			frames = append(frames, sc.Text())
		}
	}
	return frames
}

// TestClusterE2E drives two shards and a router end to end:
//
//  1. identical submissions through the router and direct to the
//     non-owning shard yield exactly one world cluster-wide,
//  2. killing the owning shard turns submissions into 503 + Retry-After
//     while result reads fail over to the surviving shard,
//  3. a restart over the same data recovers, and every result and frame
//     byte matches the pre-kill stream.
func TestClusterE2E(t *testing.T) {
	fs := store.NewMemFS()
	stOpts := store.Options{FS: fs, SharedDir: "shared"}
	stA, _, err := store.Open("shard-s0", stOpts)
	if err != nil {
		t.Fatal(err)
	}
	stB, _, err := store.Open("shard-s1", stOpts)
	if err != nil {
		t.Fatal(err)
	}
	srvA := serve.NewServer(serve.Options{Workers: 1, Store: stA, IDPrefix: "s0-"})
	srvB := serve.NewServer(serve.Options{Workers: 1, Store: stB, IDPrefix: "s1-"})
	swapA := &swapHandler{h: srvA.Handler()}
	swapB := &swapHandler{h: srvB.Handler()}
	tsA := httptest.NewServer(swapA)
	defer tsA.Close()
	tsB := httptest.NewServer(swapB)
	defer tsB.Close()

	router, err := New(Options{Shards: []Shard{
		{Name: "s0", URL: tsA.URL},
		{Name: "s1", URL: tsB.URL},
	}})
	if err != nil {
		t.Fatal(err)
	}
	router.PollHealth()
	rts := httptest.NewServer(router.Handler())
	defer rts.Close()

	// 1. Submit through the router; the owner runs it once.
	resp, body := postSpec(t, rts.URL, e2eSpec())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	jobID, _ := body["id"].(string)
	key, _ := body["key"].(string)
	if jobID == "" || key == "" {
		t.Fatalf("submit reply missing id/key: %v", body)
	}
	owner := router.shardForID(jobID)
	if owner < 0 {
		t.Fatalf("router cannot map its own job ID %q", jobID)
	}
	ownerSrv, ownerStore, ownerSwap := srvA, stA, swapA
	otherSrv, otherTS := srvB, tsB
	ownerDir := "shard-s0"
	if router.opts.Shards[owner].Name == "s1" {
		ownerSrv, ownerStore, ownerSwap = srvB, stB, swapB
		otherSrv, otherTS = srvA, tsA
		ownerDir = "shard-s1"
	}

	// Wait terminal via the router, then durable in the owner's store.
	deadline := time.Now().Add(60 * time.Second)
	for {
		code, blob, _ := getBody(t, rts.URL+"/jobs/"+jobID)
		if code != http.StatusOK {
			t.Fatalf("status read %d", code)
		}
		var st struct {
			State string `json:"state"`
		}
		json.Unmarshal(blob, &st)
		if st.State == "done" {
			break
		}
		if st.State == "failed" || st.State == "canceled" || time.Now().After(deadline) {
			t.Fatalf("job state %q", st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	for {
		if _, ok := ownerStore.GetResult(key); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("result never became durable")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// 2. Identical submission through the router: coalesced/cache hit on
	// the same shard. Identical submission direct to the NON-owning
	// shard: a shared-directory hit. Either way: still one world.
	_, again := postSpec(t, rts.URL, e2eSpec())
	if hit, _ := again["cache_hit"].(bool); !hit {
		t.Fatalf("router resubmission was not a cache hit: %v", again)
	}
	_, direct := postSpec(t, otherTS.URL, e2eSpec())
	if shared, _ := direct["shared_hit"].(bool); !shared {
		t.Fatalf("direct submission to the non-owner was not a shared hit: %v", direct)
	}
	if worlds := ownerSrv.WorldsBuilt() + otherSrv.WorldsBuilt(); worlds != 1 {
		t.Fatalf("cluster built %d worlds for one spec, want 1", worlds)
	}

	// Aggregated observability while both shards are up: the router
	// carries its own counters, both health gauges, and the summed
	// shard-side counters (one world cluster-wide).
	codeM, metricsBytes, _ := getBody(t, rts.URL+"/metrics")
	if codeM != http.StatusOK {
		t.Fatalf("metrics read %d", codeM)
	}
	for _, want := range []string{
		"Router_Routed 2",
		`Router_Shard_Up{shard="s0"} 1`,
		`Router_Shard_Up{shard="s1"} 1`,
		"cluster_jobs_submitted",
		"cluster_worlds_built 1",
	} {
		if !strings.Contains(string(metricsBytes), want) {
			t.Fatalf("router metrics missing %q:\n%s", want, metricsBytes)
		}
	}

	// Baseline bytes before the kill.
	codeR, resultBytes, _ := getBody(t, rts.URL+"/jobs/"+jobID+"/result")
	if codeR != http.StatusOK {
		t.Fatalf("result read %d", codeR)
	}
	codeF, framesBytes, _ := getBody(t, rts.URL+"/jobs/"+jobID+"/frames")
	if codeF != http.StatusOK {
		t.Fatalf("frames read %d", codeF)
	}
	preFrames := readFrameLines(t, framesBytes)
	if len(preFrames) != 3 {
		t.Fatalf("got %d frames, want 3", len(preFrames))
	}

	// 3. SIGKILL the owner (connections die mid-handshake).
	ownerSwap.set(nil)
	router.PollHealth()
	if router.shardUp(owner) {
		t.Fatal("dead shard still reported up")
	}
	respDown, err := http.Post(rts.URL+"/jobs", "application/json",
		bytes.NewReader(mustJSON(t, e2eSpec())))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, respDown.Body)
	respDown.Body.Close()
	if respDown.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit with dead owner answered %d, want 503", respDown.StatusCode)
	}
	if respDown.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}

	// Result reads fail over to the survivor, byte-identically.
	codeFo, failoverBytes, _ := getBody(t, rts.URL+"/jobs/"+jobID+"/result")
	if codeFo != http.StatusOK {
		t.Fatalf("failover result read %d", codeFo)
	}
	if !bytes.Equal(failoverBytes, resultBytes) {
		t.Fatal("failover result bytes differ from the owner's")
	}

	// 4. Restart the owner over its surviving data dir; everything —
	// result and frame stream — replays byte-identically from disk.
	stA2, rep, err := store.Open(ownerDir, stOpts)
	if err != nil {
		t.Fatal(err)
	}
	restarted := serve.NewServer(serve.Options{
		Workers: 1, Store: stA2, Recovered: rep,
		IDPrefix: router.opts.Shards[owner].IDPrefix,
	})
	defer restarted.Drain(5 * time.Second)
	ownerSwap.set(restarted.Handler())
	router.PollHealth()
	if !router.shardUp(owner) {
		t.Fatal("restarted shard still reported down")
	}
	codeR2, resultBytes2, _ := getBody(t, rts.URL+"/jobs/"+jobID+"/result")
	if codeR2 != http.StatusOK || !bytes.Equal(resultBytes2, resultBytes) {
		t.Fatalf("post-restart result differs (status %d)", codeR2)
	}
	codeF2, framesBytes2, _ := getBody(t, rts.URL+"/jobs/"+jobID+"/frames")
	if codeF2 != http.StatusOK {
		t.Fatalf("post-restart frames read %d", codeF2)
	}
	postFrames := readFrameLines(t, framesBytes2)
	if len(postFrames) != len(preFrames) {
		t.Fatalf("recovered %d frames, had %d", len(postFrames), len(preFrames))
	}
	for i := range preFrames {
		if preFrames[i] != postFrames[i] {
			t.Fatalf("recovered frame %d not byte-identical", i)
		}
	}
	if restarted.WorldsBuilt() != 0 {
		t.Fatal("recovery rebuilt a world")
	}

	// The failover read and the refused submission left their marks.
	codeM2, metricsBytes2, _ := getBody(t, rts.URL+"/metrics")
	if codeM2 != http.StatusOK {
		t.Fatalf("metrics read %d", codeM2)
	}
	for _, want := range []string{"Router_Failover 1", "Router_Unrouted 1"} {
		if !strings.Contains(string(metricsBytes2), want) {
			t.Fatalf("router metrics missing %q:\n%s", want, metricsBytes2)
		}
	}
	// Router health aggregates per shard.
	codeH, healthBytes, _ := getBody(t, rts.URL+"/healthz")
	if codeH != http.StatusOK || !strings.Contains(string(healthBytes), `"status":"ok"`) {
		t.Fatalf("healthz %d: %s", codeH, healthBytes)
	}

	srvA.Drain(5 * time.Second)
	srvB.Drain(5 * time.Second)
}

func mustJSON(t *testing.T, v interface{}) []byte {
	t.Helper()
	blob, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}
