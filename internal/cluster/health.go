package cluster

import (
	"net/http"
	"time"
)

// PollHealth probes every shard's /healthz once, synchronously and in
// fixed configuration order, and updates the health view. A shard is up
// when its probe answers 200; anything else — transport error, 503
// during drain, 500 — marks it down until a later probe succeeds.
// Deterministic given the shards' responses, so tests call it directly
// instead of racing the background loop.
func (r *Router) PollHealth() {
	now := r.clock()
	for i := range r.opts.Shards {
		up := r.probeShard(i)
		r.mu.Lock()
		r.up[i] = up
		r.lastProbe[i] = now
		r.mu.Unlock()
	}
}

// probeShard performs one /healthz request against shard i.
func (r *Router) probeShard(i int) bool {
	resp, err := r.client.Get(r.opts.Shards[i].URL + "/healthz")
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// HealthLoop polls every ProbeInterval until stop closes. Run it in its
// own goroutine; the ticker paces the probes but never timestamps them —
// probe times come off the injected clock.
func (r *Router) HealthLoop(stop <-chan struct{}) {
	ticker := time.NewTicker(r.opts.ProbeInterval)
	defer ticker.Stop()
	r.PollHealth()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			r.PollHealth()
		}
	}
}

// shardHealth is one row of the aggregated /healthz payload.
type shardHealth struct {
	Name string `json:"name"`
	URL  string `json:"url"`
	Up   bool   `json:"up"`
}

// healthView snapshots the cluster health: overall status ("ok" while
// every shard is up, "degraded" with some down, "down" with none up)
// plus the per-shard rows.
func (r *Router) healthView() (status string, shards []shardHealth) {
	r.mu.Lock()
	defer r.mu.Unlock()
	upCount := 0
	shards = make([]shardHealth, len(r.opts.Shards))
	for i := range r.opts.Shards {
		shards[i] = shardHealth{Name: r.opts.Shards[i].Name, URL: r.opts.Shards[i].URL, Up: r.up[i]}
		if r.up[i] {
			upCount++
		}
	}
	switch {
	case upCount == len(shards):
		return "ok", shards
	case upCount > 0:
		return "degraded", shards
	default:
		return "down", shards
	}
}
