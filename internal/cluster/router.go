package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"github.com/plasma-hpc/dsmcpic/internal/serve"
)

// maxSpecBytes bounds a submission body: a JobSpec is a flat struct of
// scalars, so anything past this is not a spec.
const maxSpecBytes = 1 << 20

// Handler builds the router's HTTP API — the same surface as a single
// plasmad, so clients need not know whether they talk to a daemon or a
// cluster:
//
//	POST /jobs             route a JobSpec to its owning shard (by spec key)
//	GET  /jobs             merged job listing across healthy shards
//	GET  /jobs/{id}        proxied to the owning shard (by ID prefix)
//	GET  /jobs/{id}/result same, with key-addressed failover when the owner is down
//	POST /jobs/{id}/cancel proxied to the owning shard
//	GET  /jobs/{id}/events proxied, streamed with per-chunk flush
//	GET  /jobs/{id}/frames proxied, streamed with per-chunk flush
//	GET  /metrics          router counters + per-shard health + summed shard metrics
//	GET  /healthz          aggregated readiness (503 only when every shard is down)
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", r.handleSubmit)
	mux.HandleFunc("GET /jobs", r.handleList)
	mux.HandleFunc("GET /jobs/{id}", r.handleJob)
	mux.HandleFunc("GET /jobs/{id}/result", r.handleResult)
	mux.HandleFunc("POST /jobs/{id}/cancel", r.handleJob)
	mux.HandleFunc("GET /jobs/{id}/events", r.handleJob)
	mux.HandleFunc("GET /jobs/{id}/frames", r.handleJob)
	mux.HandleFunc("GET /metrics", r.handleMetrics)
	mux.HandleFunc("GET /healthz", r.handleHealthz)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

// ownerUnavailable answers for a request whose owning shard is down:
// 503 with a Retry-After, the signal a client needs to back off while
// the shard restarts (its journal and the shared results directory make
// the restart lossless).
func (r *Router) ownerUnavailable(w http.ResponseWriter, shard string) {
	r.nUnrouted.Add(1)
	w.Header().Set("Retry-After", strconv.Itoa(r.opts.RetryAfterSeconds))
	writeError(w, http.StatusServiceUnavailable,
		fmt.Sprintf("cluster: owning shard %s is down; retry shortly", shard))
}

// handleSubmit routes a submission to the shard that owns its canonical
// spec key. The router computes the key with the exported serve.SpecKey —
// the identical normalization and bytes the shard itself hashes — which
// is what makes routing consistent with caching: every entry point sends
// a given spec to the same shard, so identical submissions coalesce
// cluster-wide into one world.
func (r *Router) handleSubmit(w http.ResponseWriter, req *http.Request) {
	body, err := io.ReadAll(io.LimitReader(req.Body, maxSpecBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, "read body: "+err.Error())
		return
	}
	if len(body) > maxSpecBytes {
		writeError(w, http.StatusRequestEntityTooLarge, "job spec too large")
		return
	}
	var spec serve.JobSpec
	dec := json.NewDecoder(strings.NewReader(string(body)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad job spec: "+err.Error())
		return
	}
	key, err := serve.SpecKey(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	owner := r.ownerOf(key)
	if !r.shardUp(owner) {
		r.ownerUnavailable(w, r.opts.Shards[owner].Name)
		return
	}
	shard := r.opts.Shards[owner]
	outReq, err := http.NewRequestWithContext(req.Context(), http.MethodPost,
		shard.URL+"/jobs", strings.NewReader(string(body)))
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	outReq.Header.Set("Content-Type", "application/json")
	resp, err := r.client.Do(outReq)
	if err != nil {
		r.nProxyErr.Add(1)
		r.markDown(owner)
		r.ownerUnavailable(w, shard.Name)
		return
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, maxSpecBytes))
	if err != nil {
		r.nProxyErr.Add(1)
		writeError(w, http.StatusBadGateway, "shard reply unreadable: "+err.Error())
		return
	}
	// Learn the id→key mapping for failover reads, and count shared hits
	// (submissions any shard answered from the cluster-shared cache).
	var sr struct {
		ID        string `json:"id"`
		Key       string `json:"key"`
		SharedHit bool   `json:"shared_hit"`
	}
	if json.Unmarshal(respBody, &sr) == nil {
		r.rememberKey(sr.ID, sr.Key)
		if sr.SharedHit {
			r.nSharedHit.Add(1)
		}
	}
	r.nRouted.Add(1)
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(resp.StatusCode)
	w.Write(respBody)
}

// handleJob proxies a job-addressed request to the shard that minted the
// ID, streaming the response (the events and frames endpoints are
// NDJSON streams; per-chunk flushing keeps them live through the proxy).
func (r *Router) handleJob(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	i := r.shardForID(id)
	if i < 0 {
		writeError(w, http.StatusNotFound, "no shard claims job ID "+id)
		return
	}
	if !r.shardUp(i) {
		r.ownerUnavailable(w, r.opts.Shards[i].Name)
		return
	}
	if !r.proxyShard(w, req, i) {
		r.ownerUnavailable(w, r.opts.Shards[i].Name)
	}
}

// handleResult is handleJob plus the failover read: when the owning
// shard is down but the router knows the job's canonical key, any
// healthy shard can serve the bytes — from its local cache or straight
// from the shared results directory — byte-identically.
func (r *Router) handleResult(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	i := r.shardForID(id)
	if i < 0 {
		writeError(w, http.StatusNotFound, "no shard claims job ID "+id)
		return
	}
	if r.shardUp(i) && r.proxyShard(w, req, i) {
		return
	}
	if r.failoverResult(w, req, id, i) {
		return
	}
	r.ownerUnavailable(w, r.opts.Shards[i].Name)
}

// failoverResult attempts a key-addressed read on the healthy shards, in
// fixed configuration order. Reports whether a response was written.
func (r *Router) failoverResult(w http.ResponseWriter, req *http.Request, id string, owner int) bool {
	key, ok := r.keyForID(id)
	if !ok {
		return false
	}
	for i := range r.opts.Shards {
		if i == owner || !r.shardUp(i) {
			continue
		}
		resp, err := r.client.Get(r.opts.Shards[i].URL + "/results/" + key)
		if err != nil {
			r.nProxyErr.Add(1)
			r.markDown(i)
			continue
		}
		blob, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil || resp.StatusCode != http.StatusOK {
			continue
		}
		r.nFailover.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.Write(blob)
		return true
	}
	return false
}

// proxyShard forwards one request to shard i and streams the response
// back with per-chunk flushing. Returns false when the shard could not
// be reached (caller decides how to answer); once any response bytes
// have flowed it always returns true.
func (r *Router) proxyShard(w http.ResponseWriter, req *http.Request, i int) bool {
	shard := r.opts.Shards[i]
	outReq, err := http.NewRequestWithContext(req.Context(), req.Method,
		shard.URL+req.URL.RequestURI(), req.Body)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return true
	}
	if ct := req.Header.Get("Content-Type"); ct != "" {
		outReq.Header.Set("Content-Type", ct)
	}
	resp, err := r.client.Do(outReq)
	if err != nil {
		r.nProxyErr.Add(1)
		r.markDown(i)
		return false
	}
	defer resp.Body.Close()
	for _, h := range []string{"Content-Type", "Retry-After"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 32<<10)
	for {
		n, rerr := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return true // client went away
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if rerr != nil {
			return true
		}
	}
}

// handleList merges the job listings of every healthy shard, in fixed
// configuration order.
func (r *Router) handleList(w http.ResponseWriter, req *http.Request) {
	merged := make([]json.RawMessage, 0)
	for i := range r.opts.Shards {
		if !r.shardUp(i) {
			continue
		}
		resp, err := r.client.Get(r.opts.Shards[i].URL + "/jobs")
		if err != nil {
			r.nProxyErr.Add(1)
			r.markDown(i)
			continue
		}
		var page struct {
			Jobs []json.RawMessage `json:"jobs"`
		}
		derr := json.NewDecoder(resp.Body).Decode(&page)
		resp.Body.Close()
		if derr != nil {
			continue
		}
		merged = append(merged, page.Jobs...)
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"jobs": merged})
}

func (r *Router) handleHealthz(w http.ResponseWriter, req *http.Request) {
	status, shards := r.healthView()
	code := http.StatusOK
	if status == "down" {
		code = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", strconv.Itoa(r.opts.RetryAfterSeconds))
	}
	writeJSON(w, code, map[string]interface{}{"status": status, "shards": shards})
}

// handleMetrics renders the router's own counters, a per-shard health
// gauge, and the sum of every unlabeled plasmad_* counter across the
// healthy shards — one scrape sees the whole cluster.
func (r *Router) handleMetrics(w http.ResponseWriter, req *http.Request) {
	lines := []string{
		fmt.Sprintf("Router_Routed %d", r.nRouted.Load()),
		fmt.Sprintf("Router_CacheHit_Shared %d", r.nSharedHit.Load()),
		fmt.Sprintf("Router_Failover %d", r.nFailover.Load()),
		fmt.Sprintf("Router_ProxyErrors %d", r.nProxyErr.Load()),
		fmt.Sprintf("Router_Unrouted %d", r.nUnrouted.Load()),
	}
	_, shards := r.healthView()
	for _, sh := range shards {
		up := 0
		if sh.Up {
			up = 1
		}
		lines = append(lines, fmt.Sprintf("Router_Shard_Up{shard=%q} %d", sh.Name, up))
	}
	sums := make(map[string]float64)
	for i := range r.opts.Shards {
		if !r.shardUp(i) {
			continue
		}
		resp, err := r.client.Get(r.opts.Shards[i].URL + "/metrics")
		if err != nil {
			r.nProxyErr.Add(1)
			r.markDown(i)
			continue
		}
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			continue
		}
		for _, line := range strings.Split(string(body), "\n") {
			name, val, found := strings.Cut(line, " ")
			if !found || !strings.HasPrefix(name, "plasmad_") || strings.Contains(name, "{") {
				continue
			}
			v, perr := strconv.ParseFloat(val, 64)
			if perr != nil {
				continue
			}
			sums[name] += v
		}
	}
	names := make([]string, 0, len(sums))
	for name := range sums {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		v := sums[name]
		if v == math.Trunc(v) {
			lines = append(lines, fmt.Sprintf("cluster_%s %d", strings.TrimPrefix(name, "plasmad_"), int64(v)))
		} else {
			lines = append(lines, fmt.Sprintf("cluster_%s %g", strings.TrimPrefix(name, "plasmad_"), v))
		}
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	for _, l := range lines {
		fmt.Fprintln(w, l)
	}
}
