// Package cluster is the shard-routing layer that turns N independent
// plasmad daemons into one cluster with a single cache: a stateless HTTP
// router fronting the shards, routing every submission to the shard that
// owns its canonical spec key.
//
// Ownership is rendezvous (highest-random-weight) hashing over the shard
// names: every router instance — there can be many, the router holds no
// job state — maps a key to the same shard, so identical submissions
// entering through any router coalesce on one shard into one world. The
// shards additionally share a content-addressed results directory
// (store.Options.SharedDir), which covers the remaining seams: membership
// changes, failover reads, and warm starts all serve byte-identical
// results from the shared cache instead of recomputing.
//
// The package is in the commvet nondeterminism analyzer's deterministic
// set: the wall clock is injected (Options.Clock, the balance.Balancer
// pattern), shard iteration is in fixed slice order, and the id→key
// cache is FIFO over a slice — no map-iteration-order dependence
// anywhere.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Shard is one plasmad backend of the cluster.
type Shard struct {
	// Name is the stable shard identity the rendezvous hash scores —
	// renaming a shard reassigns its keyspace; changing only its URL does
	// not.
	Name string
	// URL is the shard's base URL ("http://host:port", no trailing slash).
	URL string
	// IDPrefix is the prefix the shard stamps on its job IDs (plasmad
	// -id-prefix). The router maps /jobs/{id} requests back to their
	// owning shard by this prefix. Conventionally Name + "-".
	IDPrefix string
}

// Options configures a Router. Zero values select the defaults.
type Options struct {
	// Shards is the fixed cluster membership, in configuration order.
	Shards []Shard
	// Client performs shard requests (default http.DefaultClient). Tests
	// inject an httptest client; production sets timeouts here.
	Client *http.Client
	// Clock stamps health probes. Defaults to time.Now, assigned as a
	// function value at construction so the package itself stays
	// wall-clock-free for the nondeterminism analyzer.
	Clock func() time.Time
	// ProbeInterval paces HealthLoop (default 2s).
	ProbeInterval time.Duration
	// IDKeyCacheCap bounds the id→key cache that powers failover reads
	// (FIFO beyond it, default 4096 entries).
	IDKeyCacheCap int
	// RetryAfterSeconds is the Retry-After hint when the owning shard is
	// down (default 5).
	RetryAfterSeconds int
}

func (o Options) withDefaults() Options {
	if o.Client == nil {
		o.Client = http.DefaultClient
	}
	if o.Clock == nil {
		o.Clock = time.Now
	}
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = 2 * time.Second
	}
	if o.IDKeyCacheCap <= 0 {
		o.IDKeyCacheCap = 4096
	}
	if o.RetryAfterSeconds <= 0 {
		o.RetryAfterSeconds = 5
	}
	return o
}

// Router proxies the plasmad API across the shards. Stateless with
// respect to jobs: everything it remembers (health, id→key hints) is
// reconstructible, so routers can be replicated or restarted freely.
type Router struct {
	opts   Options
	client *http.Client
	clock  func() time.Time

	mu        sync.Mutex
	up        []bool
	lastProbe []time.Time
	// idKey caches job-ID → canonical-key learned from submit responses,
	// enabling key-addressed failover reads when the owning shard dies.
	// FIFO eviction over idOrder keeps it bounded and deterministic.
	idKey   map[string]string
	idOrder []string

	// counters (atomic: read lock-free by /metrics).
	nRouted    atomic.Int64 // submissions proxied to their owning shard
	nSharedHit atomic.Int64 // routed submissions the shard answered from the shared cache
	nFailover  atomic.Int64 // key-addressed reads served around a dead owner
	nProxyErr  atomic.Int64 // transport failures talking to shards
	nUnrouted  atomic.Int64 // requests refused because the owner was down
}

// New builds a router over the given shards. Every shard starts assumed
// healthy; call PollHealth (or start HealthLoop) to ground the view.
func New(opts Options) (*Router, error) {
	o := opts.withDefaults()
	if len(o.Shards) == 0 {
		return nil, fmt.Errorf("cluster: no shards configured")
	}
	seen := make(map[string]bool, len(o.Shards))
	for i := range o.Shards {
		sh := &o.Shards[i]
		if sh.Name == "" || sh.URL == "" {
			return nil, fmt.Errorf("cluster: shard %d needs a name and a URL", i)
		}
		if seen[sh.Name] {
			return nil, fmt.Errorf("cluster: duplicate shard name %q", sh.Name)
		}
		seen[sh.Name] = true
		sh.URL = strings.TrimSuffix(sh.URL, "/")
		if sh.IDPrefix == "" {
			sh.IDPrefix = sh.Name + "-"
		}
	}
	r := &Router{
		opts:      o,
		client:    o.Client,
		clock:     o.Clock,
		up:        make([]bool, len(o.Shards)),
		lastProbe: make([]time.Time, len(o.Shards)),
		idKey:     make(map[string]string),
	}
	for i := range r.up {
		r.up[i] = true
	}
	return r, nil
}

// ownerOf returns the index of the shard that owns key: the rendezvous
// winner, scoring each (key, shard-name) pair with SHA-256 and taking
// the highest. Removing a shard moves only the keys it owned; every
// other key keeps its shard — the property that keeps the cluster-wide
// cache warm through membership changes.
func (r *Router) ownerOf(key string) int {
	best, bestScore := 0, uint64(0)
	for i := range r.opts.Shards {
		sum := sha256.Sum256([]byte(key + "|" + r.opts.Shards[i].Name))
		score := binary.BigEndian.Uint64(sum[:8])
		if i == 0 || score > bestScore || (score == bestScore && r.opts.Shards[i].Name < r.opts.Shards[best].Name) {
			best, bestScore = i, score
		}
	}
	return best
}

// shardForID maps a job ID back to its shard by ID prefix (longest
// prefix wins, so "s1-" and "s10-" cannot be confused). Returns -1 when
// no shard claims the ID.
func (r *Router) shardForID(id string) int {
	best, bestLen := -1, 0
	for i := range r.opts.Shards {
		p := r.opts.Shards[i].IDPrefix
		if strings.HasPrefix(id, p) && len(p) > bestLen {
			best, bestLen = i, len(p)
		}
	}
	return best
}

// shardUp reports the health view of shard i.
func (r *Router) shardUp(i int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.up[i]
}

// markDown records a transport-level failure against a shard — the
// proxy's fast path for discovering a death between probes.
func (r *Router) markDown(i int) {
	r.mu.Lock()
	r.up[i] = false
	r.mu.Unlock()
}

// rememberKey caches a job-ID → canonical-key hint, FIFO-bounded.
func (r *Router) rememberKey(id, key string) {
	if id == "" || key == "" {
		return
	}
	r.mu.Lock()
	if _, ok := r.idKey[id]; !ok {
		r.idOrder = append(r.idOrder, id)
		if len(r.idOrder) > r.opts.IDKeyCacheCap {
			evict := r.idOrder[0]
			r.idOrder = r.idOrder[1:]
			delete(r.idKey, evict)
		}
	}
	r.idKey[id] = key
	r.mu.Unlock()
}

// keyForID returns the cached canonical key for a job ID, if known.
func (r *Router) keyForID(id string) (string, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	key, ok := r.idKey[id]
	return key, ok
}
