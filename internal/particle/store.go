package particle

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/plasma-hpc/dsmcpic/internal/geom"
)

// Particle is the AoS view of one simulation particle, used at API
// boundaries; bulk storage is the SoA Store.
type Particle struct {
	Pos  geom.Vec3
	Vel  geom.Vec3
	Sp   Species
	Cell int32 // global coarse-grid cell containing the particle
	ID   int64 // globally unique index assigned by Reindex
}

// Store holds particles in structure-of-arrays layout for cache-friendly
// sweeps over positions and velocities.
type Store struct {
	Pos  []geom.Vec3
	Vel  []geom.Vec3
	Sp   []Species
	Cell []int32
	ID   []int64
}

// NewStore returns a store with the given capacity hint.
func NewStore(capacity int) *Store {
	return &Store{
		Pos:  make([]geom.Vec3, 0, capacity),
		Vel:  make([]geom.Vec3, 0, capacity),
		Sp:   make([]Species, 0, capacity),
		Cell: make([]int32, 0, capacity),
		ID:   make([]int64, 0, capacity),
	}
}

// Len returns the number of particles.
func (s *Store) Len() int { return len(s.Pos) }

// Append adds a particle and returns its index.
func (s *Store) Append(p Particle) int {
	s.Pos = append(s.Pos, p.Pos)
	s.Vel = append(s.Vel, p.Vel)
	s.Sp = append(s.Sp, p.Sp)
	s.Cell = append(s.Cell, p.Cell)
	s.ID = append(s.ID, p.ID)
	return len(s.Pos) - 1
}

// Get returns particle i as an AoS value.
func (s *Store) Get(i int) Particle {
	return Particle{Pos: s.Pos[i], Vel: s.Vel[i], Sp: s.Sp[i], Cell: s.Cell[i], ID: s.ID[i]}
}

// Set overwrites particle i.
func (s *Store) Set(i int, p Particle) {
	s.Pos[i] = p.Pos
	s.Vel[i] = p.Vel
	s.Sp[i] = p.Sp
	s.Cell[i] = p.Cell
	s.ID[i] = p.ID
}

// SwapRemove removes particle i by swapping in the last particle. Order is
// not preserved; index i afterwards holds what was the last particle.
func (s *Store) SwapRemove(i int) {
	last := len(s.Pos) - 1
	s.Pos[i] = s.Pos[last]
	s.Vel[i] = s.Vel[last]
	s.Sp[i] = s.Sp[last]
	s.Cell[i] = s.Cell[last]
	s.ID[i] = s.ID[last]
	s.Truncate(last)
}

// Truncate shortens the store to n particles.
func (s *Store) Truncate(n int) {
	s.Pos = s.Pos[:n]
	s.Vel = s.Vel[:n]
	s.Sp = s.Sp[:n]
	s.Cell = s.Cell[:n]
	s.ID = s.ID[:n]
}

// Clear removes all particles, keeping capacity.
func (s *Store) Clear() { s.Truncate(0) }

// Filter removes every particle for which keep returns false, preserving
// the relative order of survivors, and returns the number removed.
func (s *Store) Filter(keep func(i int) bool) int {
	w := 0
	n := len(s.Pos)
	for i := 0; i < n; i++ {
		if keep(i) {
			if w != i {
				s.Pos[w] = s.Pos[i]
				s.Vel[w] = s.Vel[i]
				s.Sp[w] = s.Sp[i]
				s.Cell[w] = s.Cell[i]
				s.ID[w] = s.ID[i]
			}
			w++
		}
	}
	s.Truncate(w)
	return n - w
}

// CountBySpecies returns the particle count per species.
func (s *Store) CountBySpecies() [NumSpecies]int {
	var c [NumSpecies]int
	for _, sp := range s.Sp {
		c[sp]++
	}
	return c
}

// CountCharged returns the number of charged particles.
func (s *Store) CountCharged() int {
	n := 0
	for _, sp := range s.Sp {
		if sp.IsCharged() {
			n++
		}
	}
	return n
}

// recordSize is the wire size of one particle: 6 float64 + species byte +
// cell int32 + id int64.
const recordSize = 6*8 + 1 + 4 + 8

// EncodedSize returns the wire size of n particles.
func EncodedSize(n int) int { return n * recordSize }

// Encode serializes the particles at the given indices into a compact
// little-endian byte slice for migration.
func (s *Store) Encode(indices []int) []byte {
	out := make([]byte, 0, len(indices)*recordSize)
	var buf [recordSize]byte
	for _, i := range indices {
		encodeInto(buf[:], s.Get(i))
		out = append(out, buf[:]...)
	}
	return out
}

// EncodeAll serializes every particle in the store.
func (s *Store) EncodeAll() []byte {
	idx := make([]int, s.Len())
	for i := range idx {
		idx[i] = i
	}
	return s.Encode(idx)
}

func encodeInto(buf []byte, p Particle) {
	le := binary.LittleEndian
	le.PutUint64(buf[0:], math.Float64bits(p.Pos.X))
	le.PutUint64(buf[8:], math.Float64bits(p.Pos.Y))
	le.PutUint64(buf[16:], math.Float64bits(p.Pos.Z))
	le.PutUint64(buf[24:], math.Float64bits(p.Vel.X))
	le.PutUint64(buf[32:], math.Float64bits(p.Vel.Y))
	le.PutUint64(buf[40:], math.Float64bits(p.Vel.Z))
	buf[48] = byte(p.Sp)
	le.PutUint32(buf[49:], uint32(p.Cell))
	le.PutUint64(buf[53:], uint64(p.ID))
}

// DecodeAppend deserializes particles from b (produced by Encode) and
// appends them to the store, returning the number appended.
//
// Every record is validated before it is appended: an undefined species
// byte or a negative cell index is rejected with an error naming the
// record, instead of landing silently and blowing up later in a
// speciesTable lookup or a cell-indexed sweep far from the corruption.
// On error, the records preceding the bad one (all individually valid)
// have already been appended and are counted in the returned total.
func (s *Store) DecodeAppend(b []byte) (int, error) {
	if len(b)%recordSize != 0 {
		return 0, fmt.Errorf("particle: payload length %d not a multiple of record size %d", len(b), recordSize)
	}
	n := len(b) / recordSize
	le := binary.LittleEndian
	for k := 0; k < n; k++ {
		buf := b[k*recordSize:]
		sp := Species(buf[48])
		cell := int32(le.Uint32(buf[49:]))
		if sp >= NumSpecies {
			return k, fmt.Errorf("particle: record %d of %d has undefined species %d (have %d species)",
				k, n, sp, NumSpecies)
		}
		if cell < 0 {
			return k, fmt.Errorf("particle: record %d of %d has negative cell index %d", k, n, cell)
		}
		p := Particle{
			Pos: geom.V(
				math.Float64frombits(le.Uint64(buf[0:])),
				math.Float64frombits(le.Uint64(buf[8:])),
				math.Float64frombits(le.Uint64(buf[16:])),
			),
			Vel: geom.V(
				math.Float64frombits(le.Uint64(buf[24:])),
				math.Float64frombits(le.Uint64(buf[32:])),
				math.Float64frombits(le.Uint64(buf[40:])),
			),
			Sp:   sp,
			Cell: cell,
			ID:   int64(le.Uint64(buf[53:])),
		}
		s.Append(p)
	}
	return n, nil
}

// AssignIDs renumbers all particles sequentially starting at start. This is
// the per-rank half of the paper's Reindex component: the solver computes
// each rank's exclusive prefix of the global particle count and calls
// AssignIDs with it, giving every particle in the world a unique index.
func (s *Store) AssignIDs(start int64) {
	for i := range s.ID {
		s.ID[i] = start + int64(i)
	}
}
