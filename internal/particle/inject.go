package particle

import (
	"math"

	"github.com/plasma-hpc/dsmcpic/internal/geom"
	"github.com/plasma-hpc/dsmcpic/internal/mesh"
	"github.com/plasma-hpc/dsmcpic/internal/rng"
)

// InjectorFace is one inlet face with its precomputed sampling data.
type InjectorFace struct {
	Cell   int32     // cell owning the face
	P0     geom.Vec3 // triangle vertices
	P1, P2 geom.Vec3
	Normal geom.Vec3 // inward unit normal (into the domain)
	Area   float64
}

// Injector creates new particles at the inlet each DSMC step (paper's
// Inject component): positions uniform over the inlet faces, inward
// velocity component from the flux-Maxwellian at the drift speed, and
// tangential components thermal. Velocities are "perpendicular to the
// inlet" on average, complying with the Maxwell distribution (paper
// §III-B).
type Injector struct {
	Faces     []InjectorFace
	TotalArea float64
	cumArea   []float64
}

// NewInjector gathers the Inlet faces of m belonging to the given cell set
// (nil = all cells) and prepares area-weighted sampling.
func NewInjector(m *mesh.Mesh, ownedCells func(c int32) bool) *Injector {
	inj := &Injector{}
	for _, cf := range m.BoundaryFaces(mesh.Inlet) {
		c, f := cf[0], int(cf[1])
		if ownedCells != nil && !ownedCells(c) {
			continue
		}
		t := m.Tet(int(c))
		fv := geom.FaceVerts[f]
		face := InjectorFace{
			Cell:   c,
			P0:     t.Vertex(fv[0]),
			P1:     t.Vertex(fv[1]),
			P2:     t.Vertex(fv[2]),
			Normal: t.FaceNormal(f).Scale(-1), // inward
			Area:   t.FaceArea(f),
		}
		inj.Faces = append(inj.Faces, face)
		inj.TotalArea += face.Area
		inj.cumArea = append(inj.cumArea, inj.TotalArea)
	}
	return inj
}

// SampleSpec describes one species' injection for a step.
type SampleSpec struct {
	Sp          Species
	Count       int     // simulation particles to inject this step
	Temperature float64 // K
	Drift       float64 // m/s along the inward normal
}

// Inject appends spec.Count particles to dst, sampled over the inlet
// faces. Particles start epsilon inside the domain to avoid boundary
// ambiguity. Returns the number injected (0 when the injector owns no
// inlet faces).
func (inj *Injector) Inject(dst *Store, spec SampleSpec, r *rng.Rand) int {
	if len(inj.Faces) == 0 || spec.Count <= 0 {
		return 0
	}
	info := InfoOf(spec.Sp)
	beta := rng.ThermalSpeed(spec.Temperature, info.Mass) // sqrt(2kT/m)
	sigma := beta / math.Sqrt2                            // sqrt(kT/m)
	for k := 0; k < spec.Count; k++ {
		face := inj.pickFace(r)
		pos := samplePointInTriangle(face.P0, face.P1, face.P2, r)
		// Build an orthonormal frame (t1, t2, n) with n the inward normal.
		n := face.Normal
		t1 := perpendicular(n)
		t2 := n.Cross(t1)
		vn := r.FluxMaxwellInward(spec.Drift, beta)
		v := n.Scale(vn).
			Add(t1.Scale(sigma * r.NormFloat64())).
			Add(t2.Scale(sigma * r.NormFloat64()))
		// Nudge inside the cell to keep point location unambiguous.
		pos = pos.Add(n.Scale(1e-9 * math.Sqrt(face.Area)))
		dst.Append(Particle{Pos: pos, Vel: v, Sp: spec.Sp, Cell: face.Cell, ID: -1})
	}
	return spec.Count
}

// pickFace samples a face with probability proportional to its area.
func (inj *Injector) pickFace(r *rng.Rand) *InjectorFace {
	x := r.Float64() * inj.TotalArea
	lo, hi := 0, len(inj.cumArea)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if inj.cumArea[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return &inj.Faces[lo]
}

// samplePointInTriangle returns a uniform point in the triangle (p0,p1,p2).
func samplePointInTriangle(p0, p1, p2 geom.Vec3, r *rng.Rand) geom.Vec3 {
	u := r.Float64()
	v := r.Float64()
	if u+v > 1 {
		u = 1 - u
		v = 1 - v
	}
	return p0.Add(p1.Sub(p0).Scale(u)).Add(p2.Sub(p0).Scale(v))
}

// perpendicular returns a unit vector perpendicular to n.
func perpendicular(n geom.Vec3) geom.Vec3 {
	if math.Abs(n.X) < 0.9 {
		return n.Cross(geom.V(1, 0, 0)).Normalize()
	}
	return n.Cross(geom.V(0, 1, 0)).Normalize()
}
