package particle

import (
	"encoding/binary"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"github.com/plasma-hpc/dsmcpic/internal/geom"
	"github.com/plasma-hpc/dsmcpic/internal/mesh"
	"github.com/plasma-hpc/dsmcpic/internal/rng"
)

func TestSpeciesInfo(t *testing.T) {
	if InfoOf(H).Charge != 0 || H.IsCharged() {
		t.Error("H should be neutral")
	}
	if InfoOf(HPlus).Charge != ElectronCharge || !HPlus.IsCharged() {
		t.Error("H+ should carry +e")
	}
	if InfoOf(H).Mass != HydrogenMass {
		t.Error("H mass wrong")
	}
	if H.String() != "H" || HPlus.String() != "H+" {
		t.Error("species names wrong")
	}
	if Species(7).String() != "species(7)" {
		t.Error("unknown species string")
	}
}

func sampleParticle(i int) Particle {
	return Particle{
		Pos:  geom.V(float64(i), float64(2*i), float64(3*i)),
		Vel:  geom.V(-float64(i), 0.5, 1e4),
		Sp:   Species(i % 2),
		Cell: int32(i * 7),
		ID:   int64(i * 1000),
	}
}

func TestStoreAppendGetSet(t *testing.T) {
	s := NewStore(4)
	for i := 0; i < 10; i++ {
		if idx := s.Append(sampleParticle(i)); idx != i {
			t.Fatalf("Append returned %d, want %d", idx, i)
		}
	}
	if s.Len() != 10 {
		t.Fatalf("Len = %d", s.Len())
	}
	for i := 0; i < 10; i++ {
		if got := s.Get(i); got != sampleParticle(i) {
			t.Fatalf("Get(%d) = %+v", i, got)
		}
	}
	p := sampleParticle(99)
	s.Set(3, p)
	if s.Get(3) != p {
		t.Error("Set failed")
	}
}

func TestStoreSwapRemove(t *testing.T) {
	s := NewStore(0)
	for i := 0; i < 5; i++ {
		s.Append(sampleParticle(i))
	}
	s.SwapRemove(1)
	if s.Len() != 4 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.Get(1) != sampleParticle(4) {
		t.Error("SwapRemove did not move last particle")
	}
}

func TestStoreFilter(t *testing.T) {
	s := NewStore(0)
	for i := 0; i < 10; i++ {
		s.Append(sampleParticle(i))
	}
	removed := s.Filter(func(i int) bool { return s.ID[i]%2000 == 0 }) // even i
	if removed != 5 {
		t.Fatalf("removed %d, want 5", removed)
	}
	for i := 0; i < s.Len(); i++ {
		if s.Get(i) != sampleParticle(2*i) {
			t.Fatalf("order not preserved at %d: %+v", i, s.Get(i))
		}
	}
}

func TestCountBySpecies(t *testing.T) {
	s := NewStore(0)
	for i := 0; i < 7; i++ {
		s.Append(Particle{Sp: H})
	}
	for i := 0; i < 3; i++ {
		s.Append(Particle{Sp: HPlus})
	}
	c := s.CountBySpecies()
	if c[H] != 7 || c[HPlus] != 3 {
		t.Errorf("counts = %v", c)
	}
	if s.CountCharged() != 3 {
		t.Errorf("charged = %d", s.CountCharged())
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := NewStore(0)
	for i := 0; i < 20; i++ {
		s.Append(sampleParticle(i))
	}
	blob := s.Encode([]int{3, 7, 11})
	if len(blob) != EncodedSize(3) {
		t.Fatalf("encoded size %d, want %d", len(blob), EncodedSize(3))
	}
	dst := NewStore(0)
	n, err := dst.DecodeAppend(blob)
	if err != nil || n != 3 {
		t.Fatalf("decode: %v n=%d", err, n)
	}
	for k, i := range []int{3, 7, 11} {
		if dst.Get(k) != s.Get(i) {
			t.Fatalf("roundtrip mismatch at %d: %+v vs %+v", k, dst.Get(k), s.Get(i))
		}
	}
}

func TestDecodeRejectsBadLength(t *testing.T) {
	s := NewStore(0)
	if _, err := s.DecodeAppend(make([]byte, 13)); err == nil {
		t.Error("bad payload length accepted")
	}
}

// TestDecodeRejectsCorruptRecords: a record carrying an undefined species
// byte or a negative cell index must be rejected at decode time with an
// error naming the record, after appending only the valid records before
// it — not land silently and explode later in a speciesTable lookup.
func TestDecodeRejectsCorruptRecords(t *testing.T) {
	src := NewStore(0)
	for i := 0; i < 3; i++ {
		src.Append(sampleParticle(i))
	}
	blob := src.EncodeAll()

	corrupt := func(mutate func(rec []byte)) []byte {
		b := append([]byte(nil), blob...)
		mutate(b[EncodedSize(1):]) // record 1
		return b
	}

	t.Run("species", func(t *testing.T) {
		b := corrupt(func(rec []byte) { rec[48] = 200 })
		dst := NewStore(0)
		n, err := dst.DecodeAppend(b)
		if err == nil {
			t.Fatal("undefined species byte accepted")
		}
		for _, want := range []string{"record 1", "species 200"} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("error %q does not name %q", err, want)
			}
		}
		if n != 1 || dst.Len() != 1 {
			t.Errorf("appended %d (store %d), want the 1 valid record before the corruption", n, dst.Len())
		}
		if dst.Get(0) != src.Get(0) {
			t.Error("the surviving record is not record 0")
		}
	})

	t.Run("negative-cell", func(t *testing.T) {
		b := corrupt(func(rec []byte) {
			binary.LittleEndian.PutUint32(rec[49:], 0xffffffff) // cell = -1
		})
		dst := NewStore(0)
		n, err := dst.DecodeAppend(b)
		if err == nil {
			t.Fatal("negative cell index accepted")
		}
		if !strings.Contains(err.Error(), "record 1") || !strings.Contains(err.Error(), "-1") {
			t.Errorf("error %q does not name the record and cell", err)
		}
		if n != 1 {
			t.Errorf("appended %d, want 1", n)
		}
	})
}

func TestEncodeAll(t *testing.T) {
	s := NewStore(0)
	for i := 0; i < 5; i++ {
		s.Append(sampleParticle(i))
	}
	dst := NewStore(0)
	if _, err := dst.DecodeAppend(s.EncodeAll()); err != nil {
		t.Fatal(err)
	}
	if dst.Len() != 5 {
		t.Fatalf("len %d", dst.Len())
	}
}

// Property: encode/decode round-trips arbitrary *valid* particles
// bit-exactly. Species and cell are folded into their valid domains
// (defined species, non-negative cell) — out-of-domain records are the
// subject of TestDecodeRejectsCorruptRecords.
func TestQuickCodecRoundTrip(t *testing.T) {
	f := func(px, py, pz, vx, vy, vz float64, sp uint8, cell int32, id int64) bool {
		if math.IsNaN(px) || math.IsNaN(py) || math.IsNaN(pz) ||
			math.IsNaN(vx) || math.IsNaN(vy) || math.IsNaN(vz) {
			return true // NaN != NaN; skip
		}
		if cell < 0 {
			cell = -(cell + 1)
		}
		p := Particle{
			Pos: geom.V(px, py, pz), Vel: geom.V(vx, vy, vz),
			Sp: Species(sp % uint8(NumSpecies)), Cell: cell, ID: id,
		}
		s := NewStore(1)
		s.Append(p)
		dst := NewStore(1)
		if _, err := dst.DecodeAppend(s.EncodeAll()); err != nil {
			return false
		}
		return dst.Get(0) == p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAssignIDs(t *testing.T) {
	s := NewStore(0)
	for i := 0; i < 5; i++ {
		s.Append(Particle{ID: -1})
	}
	s.AssignIDs(1000)
	for i := 0; i < 5; i++ {
		if s.ID[i] != int64(1000+i) {
			t.Fatalf("ID[%d] = %d", i, s.ID[i])
		}
	}
}

func buildNozzle(t testing.TB) *mesh.Mesh {
	t.Helper()
	m, err := mesh.Nozzle(4, 8, 0.05, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestInjectorCoversInlet(t *testing.T) {
	m := buildNozzle(t)
	inj := NewInjector(m, nil)
	if len(inj.Faces) != len(m.BoundaryFaces(mesh.Inlet)) {
		t.Fatalf("injector faces %d != inlet faces %d", len(inj.Faces), len(m.BoundaryFaces(mesh.Inlet)))
	}
	if inj.TotalArea <= 0 {
		t.Fatal("no inlet area")
	}
}

func TestInjectorOwnedSubset(t *testing.T) {
	m := buildNozzle(t)
	all := NewInjector(m, nil)
	// Kuhn triangulation: inlet faces belong to cells congruent to 0 or 2
	// mod 6, so keep only the 0-mod-6 ones to test the ownership filter.
	half := NewInjector(m, func(c int32) bool { return c%6 == 0 })
	if len(half.Faces) >= len(all.Faces) || len(half.Faces) == 0 {
		t.Fatalf("owned filter not applied: %d of %d", len(half.Faces), len(all.Faces))
	}
}

func TestInjectParticlesInsideDomainMovingIn(t *testing.T) {
	m := buildNozzle(t)
	inj := NewInjector(m, nil)
	r := rng.New(3, 0)
	s := NewStore(0)
	n := inj.Inject(s, SampleSpec{Sp: H, Count: 500, Temperature: 300, Drift: 10000}, r)
	if n != 500 || s.Len() != 500 {
		t.Fatalf("injected %d", n)
	}
	for i := 0; i < s.Len(); i++ {
		p := s.Get(i)
		// Inside the owning cell.
		if !m.Tet(int(p.Cell)).Contains(p.Pos, 1e-6) {
			t.Fatalf("particle %d outside its cell", i)
		}
		// Moving into the domain (+z for the nozzle inlet).
		if p.Vel.Z <= 0 {
			t.Fatalf("particle %d moving outward: vz = %v", i, p.Vel.Z)
		}
		if p.Sp != H {
			t.Fatalf("wrong species")
		}
	}
}

func TestInjectVelocityMoments(t *testing.T) {
	m := buildNozzle(t)
	inj := NewInjector(m, nil)
	r := rng.New(5, 0)
	s := NewStore(0)
	const drift = 10000.0
	inj.Inject(s, SampleSpec{Sp: H, Count: 20000, Temperature: 300, Drift: drift}, r)
	var sz, sx float64
	for i := 0; i < s.Len(); i++ {
		sz += s.Vel[i].Z
		sx += s.Vel[i].X
	}
	meanZ := sz / float64(s.Len())
	meanX := sx / float64(s.Len())
	// Strong drift: mean normal velocity ~ drift (within thermal width).
	if math.Abs(meanZ-drift) > 0.05*drift {
		t.Errorf("mean vz = %v, want ~%v", meanZ, drift)
	}
	// Tangential symmetric around zero.
	sigma := math.Sqrt(rng.KBoltzmann * 300 / HydrogenMass)
	if math.Abs(meanX) > 0.05*sigma {
		t.Errorf("mean vx = %v not ~0 (sigma %v)", meanX, sigma)
	}
}

func TestInjectZeroCountOrNoFaces(t *testing.T) {
	m := buildNozzle(t)
	inj := NewInjector(m, nil)
	s := NewStore(0)
	if n := inj.Inject(s, SampleSpec{Sp: H, Count: 0}, rng.New(1, 0)); n != 0 {
		t.Error("zero count injected particles")
	}
	empty := NewInjector(m, func(int32) bool { return false })
	if n := empty.Inject(s, SampleSpec{Sp: H, Count: 10}, rng.New(1, 0)); n != 0 {
		t.Error("faceless injector injected particles")
	}
}

func BenchmarkInject(b *testing.B) {
	m, err := mesh.Nozzle(4, 8, 0.05, 0.2)
	if err != nil {
		b.Fatal(err)
	}
	inj := NewInjector(m, nil)
	r := rng.New(1, 0)
	s := NewStore(100000)
	spec := SampleSpec{Sp: H, Count: 1000, Temperature: 300, Drift: 10000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Clear()
		inj.Inject(s, spec, r)
	}
}

func BenchmarkEncodeDecode(b *testing.B) {
	s := NewStore(0)
	for i := 0; i < 10000; i++ {
		s.Append(sampleParticle(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blob := s.EncodeAll()
		dst := NewStore(10000)
		if _, err := dst.DecodeAppend(blob); err != nil {
			b.Fatal(err)
		}
	}
}
