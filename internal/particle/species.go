// Package particle provides the particle model of the coupled DSMC/PIC
// solver: species definitions (hydrogen atoms H and ions H+), a
// structure-of-arrays particle store, binary serialization for migration
// between ranks, inlet injection with flux-Maxwellian sampling, and the
// renumbering pass (paper's Reindex component).
package particle

import "fmt"

// Physical constants (SI).
const (
	// ElectronCharge is the elementary charge in coulombs.
	ElectronCharge = 1.602176634e-19
	// HydrogenMass is the mass of a hydrogen atom in kg.
	HydrogenMass = 1.6735575e-27
)

// Species identifies a particle species.
type Species uint8

const (
	// H is a neutral hydrogen atom, simulated by DSMC.
	H Species = iota
	// HPlus is a hydrogen ion, additionally pushed by PIC.
	HPlus
	// H2 is a neutral hydrogen molecule, produced by recombination of two
	// H atoms and consumed by collision-induced dissociation (the neutral
	// chemistry of the paper's refs [24, 25]).
	H2
	// NumSpecies is the number of defined species.
	NumSpecies
)

func (s Species) String() string {
	switch s {
	case H:
		return "H"
	case HPlus:
		return "H+"
	case H2:
		return "H2"
	default:
		return fmt.Sprintf("species(%d)", uint8(s))
	}
}

// Info describes the physics of one species.
type Info struct {
	Name   string
	Mass   float64 // kg
	Charge float64 // coulombs
	// VHS collision model parameters (Bird): reference diameter at TRef and
	// the viscosity-temperature exponent omega.
	DRef  float64 // m
	TRef  float64 // K
	Omega float64
}

var speciesTable = [NumSpecies]Info{
	H: {
		Name:  "H",
		Mass:  HydrogenMass,
		DRef:  2.92e-10,
		TRef:  273,
		Omega: 0.67,
	},
	HPlus: {
		Name:   "H+",
		Mass:   HydrogenMass, // electron mass difference negligible
		Charge: ElectronCharge,
		DRef:   2.92e-10,
		TRef:   273,
		Omega:  0.67,
	},
	H2: {
		Name:  "H2",
		Mass:  2 * HydrogenMass,
		DRef:  2.88e-10, // VHS reference diameter for molecular hydrogen
		TRef:  273,
		Omega: 0.67,
	},
}

// InfoOf returns the physics of species s.
func InfoOf(s Species) Info { return speciesTable[s] }

// IsCharged reports whether the species carries charge (is pushed by PIC).
func (s Species) IsCharged() bool { return speciesTable[s].Charge != 0 }
