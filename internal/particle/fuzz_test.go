package particle

import (
	"bytes"
	"testing"
)

// FuzzDecodeAppend exercises the migration decoder against arbitrary
// payloads: it must either reject (length error) or produce exactly
// len(b)/recordSize particles, never panic.
func FuzzDecodeAppend(f *testing.F) {
	st := NewStore(0)
	for i := 0; i < 3; i++ {
		st.Append(sampleParticle(i))
	}
	f.Add(st.EncodeAll())
	f.Add([]byte{})
	f.Add(make([]byte, recordSize-1))
	f.Add(make([]byte, recordSize+1))
	f.Fuzz(func(t *testing.T, b []byte) {
		dst := NewStore(0)
		n, err := dst.DecodeAppend(b)
		if err != nil {
			if len(b)%recordSize == 0 {
				t.Fatalf("aligned payload rejected: %v", err)
			}
			return
		}
		if n != len(b)/recordSize || dst.Len() != n {
			t.Fatalf("decoded %d of %d bytes", n, len(b))
		}
	})
}

// FuzzEncodeDecodeRoundTrip: any decoded store re-encodes to identical
// bytes (the codec is a bijection on aligned payloads).
func FuzzEncodeDecodeRoundTrip(f *testing.F) {
	st := NewStore(0)
	for i := 0; i < 5; i++ {
		st.Append(sampleParticle(i))
	}
	f.Add(st.EncodeAll())
	f.Fuzz(func(t *testing.T, b []byte) {
		if len(b)%recordSize != 0 {
			return
		}
		dst := NewStore(0)
		if _, err := dst.DecodeAppend(b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(dst.EncodeAll(), b) {
			t.Fatal("re-encode differs")
		}
	})
}
