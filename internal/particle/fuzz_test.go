package particle

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzDecodeAppend exercises the migration decoder against arbitrary
// payloads: it must reject misaligned lengths, reject corrupt records
// (undefined species, negative cell) with an error naming the record,
// and otherwise produce exactly len(b)/recordSize particles — never
// panic, never append more than it reports.
func FuzzDecodeAppend(f *testing.F) {
	st := NewStore(0)
	for i := 0; i < 3; i++ {
		st.Append(sampleParticle(i))
	}
	f.Add(st.EncodeAll())
	f.Add([]byte{})
	f.Add(make([]byte, recordSize-1))
	f.Add(make([]byte, recordSize+1))
	corrupt := st.EncodeAll()
	corrupt[recordSize+48] = 0xee // record 1: undefined species
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, b []byte) {
		dst := NewStore(0)
		n, err := dst.DecodeAppend(b)
		if dst.Len() != n {
			t.Fatalf("reported %d appends, store has %d", n, dst.Len())
		}
		if err != nil {
			if len(b)%recordSize == 0 && !strings.Contains(err.Error(), "record") {
				t.Fatalf("aligned payload rejected without naming a record: %v", err)
			}
			if n > len(b)/recordSize {
				t.Fatalf("appended %d from %d bytes", n, len(b))
			}
			return
		}
		if n != len(b)/recordSize {
			t.Fatalf("decoded %d of %d bytes", n, len(b))
		}
	})
}

// FuzzEncodeDecodeRoundTrip: whatever DecodeAppend accepts re-encodes to
// identical bytes — on a partial decode (corrupt record k), to the first
// k records' bytes (the codec is a bijection on the accepted prefix).
func FuzzEncodeDecodeRoundTrip(f *testing.F) {
	st := NewStore(0)
	for i := 0; i < 5; i++ {
		st.Append(sampleParticle(i))
	}
	f.Add(st.EncodeAll())
	f.Fuzz(func(t *testing.T, b []byte) {
		if len(b)%recordSize != 0 {
			return
		}
		dst := NewStore(0)
		n, _ := dst.DecodeAppend(b)
		if !bytes.Equal(dst.EncodeAll(), b[:n*recordSize]) {
			t.Fatal("re-encode differs from the accepted prefix")
		}
	})
}
