// Package geom provides the 3D vector and tetrahedron primitives used by the
// unstructured-grid DSMC/PIC solver: exact signed volumes, barycentric
// coordinates, face normals and ray/face intersection parameters.
package geom

import "math"

// Vec3 is a point or vector in R^3.
type Vec3 struct {
	X, Y, Z float64
}

// V is a convenience constructor: V(x, y, z) == Vec3{X: x, Y: y, Z: z}.
func V(x, y, z float64) Vec3 { return Vec3{X: x, Y: y, Z: z} }

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns s*v.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{s * v.X, s * v.Y, s * v.Z} }

// Dot returns the inner product v . w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v x w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Norm2 returns the squared Euclidean length of v.
func (v Vec3) Norm2() float64 { return v.Dot(v) }

// Normalize returns v scaled to unit length. The zero vector is returned
// unchanged.
func (v Vec3) Normalize() Vec3 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// Lerp returns the linear interpolation (1-t)*v + t*w.
func (v Vec3) Lerp(w Vec3, t float64) Vec3 {
	return Vec3{
		v.X + t*(w.X-v.X),
		v.Y + t*(w.Y-v.Y),
		v.Z + t*(w.Z-v.Z),
	}
}

// Mid returns the midpoint of v and w.
func Mid(v, w Vec3) Vec3 {
	return Vec3{0.5 * (v.X + w.X), 0.5 * (v.Y + w.Y), 0.5 * (v.Z + w.Z)}
}

// Dist returns the Euclidean distance between v and w.
func Dist(v, w Vec3) float64 { return v.Sub(w).Norm() }
