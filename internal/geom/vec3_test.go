package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func vecAlmostEq(a, b Vec3, tol float64) bool {
	return almostEq(a.X, b.X, tol) && almostEq(a.Y, b.Y, tol) && almostEq(a.Z, b.Z, tol)
}

func TestVecAddSub(t *testing.T) {
	a := Vec3{1, 2, 3}
	b := Vec3{-4, 5, 0.5}
	if got := a.Add(b); got != (Vec3{-3, 7, 3.5}) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != (Vec3{5, -3, 2.5}) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Add(b).Sub(b); got != a {
		t.Errorf("Add/Sub roundtrip = %v, want %v", got, a)
	}
}

func TestVecScale(t *testing.T) {
	a := Vec3{1, -2, 4}
	if got := a.Scale(-0.5); got != (Vec3{-0.5, 1, -2}) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Scale(0); got != (Vec3{}) {
		t.Errorf("Scale(0) = %v", got)
	}
}

func TestDotCrossIdentities(t *testing.T) {
	a := Vec3{1, 2, 3}
	b := Vec3{4, -1, 2}
	if got := a.Dot(b); got != 1*4+2*(-1)+3*2 {
		t.Errorf("Dot = %v", got)
	}
	c := a.Cross(b)
	if !almostEq(c.Dot(a), 0, 1e-12) || !almostEq(c.Dot(b), 0, 1e-12) {
		t.Errorf("Cross not orthogonal: %v", c)
	}
	// a x b = -(b x a)
	if got := b.Cross(a); !vecAlmostEq(got, c.Scale(-1), 1e-12) {
		t.Errorf("anticommutativity: %v vs %v", got, c)
	}
}

func TestNormNormalize(t *testing.T) {
	a := Vec3{3, 4, 12}
	if !almostEq(a.Norm(), 13, 1e-12) {
		t.Errorf("Norm = %v", a.Norm())
	}
	if !almostEq(a.Norm2(), 169, 1e-12) {
		t.Errorf("Norm2 = %v", a.Norm2())
	}
	u := a.Normalize()
	if !almostEq(u.Norm(), 1, 1e-12) {
		t.Errorf("Normalize norm = %v", u.Norm())
	}
	if got := (Vec3{}).Normalize(); got != (Vec3{}) {
		t.Errorf("Normalize zero = %v", got)
	}
}

func TestLerpMidDist(t *testing.T) {
	a := Vec3{0, 0, 0}
	b := Vec3{2, 4, 6}
	if got := a.Lerp(b, 0.5); got != (Vec3{1, 2, 3}) {
		t.Errorf("Lerp = %v", got)
	}
	if got := a.Lerp(b, 0); got != a {
		t.Errorf("Lerp(0) = %v", got)
	}
	if got := a.Lerp(b, 1); got != b {
		t.Errorf("Lerp(1) = %v", got)
	}
	if got := Mid(a, b); got != (Vec3{1, 2, 3}) {
		t.Errorf("Mid = %v", got)
	}
	if !almostEq(Dist(a, b), b.Norm(), 1e-12) {
		t.Errorf("Dist = %v", Dist(a, b))
	}
}

// Property: the scalar triple product is invariant under cyclic permutation.
func TestTripleProductCyclic(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz, cx, cy, cz float64) bool {
		a := Vec3{clamp(ax), clamp(ay), clamp(az)}
		b := Vec3{clamp(bx), clamp(by), clamp(bz)}
		c := Vec3{clamp(cx), clamp(cy), clamp(cz)}
		t1 := a.Dot(b.Cross(c))
		t2 := b.Dot(c.Cross(a))
		t3 := c.Dot(a.Cross(b))
		scale := math.Abs(t1) + math.Abs(t2) + math.Abs(t3) + 1
		return almostEq(t1, t2, 1e-9*scale) && almostEq(t2, t3, 1e-9*scale)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: |a x b|^2 + (a.b)^2 = |a|^2 |b|^2 (Lagrange identity).
func TestLagrangeIdentity(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a := Vec3{clamp(ax), clamp(ay), clamp(az)}
		b := Vec3{clamp(bx), clamp(by), clamp(bz)}
		lhs := a.Cross(b).Norm2() + a.Dot(b)*a.Dot(b)
		rhs := a.Norm2() * b.Norm2()
		return almostEq(lhs, rhs, 1e-9*(math.Abs(rhs)+1))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// clamp maps arbitrary float64s (incl. NaN/Inf from quick) to a sane range.
func clamp(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0.5
	}
	return math.Mod(x, 1e3)
}
