package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// unitTet is the reference tetrahedron with volume 1/6.
var unitTet = Tet{
	A: Vec3{0, 0, 0},
	B: Vec3{1, 0, 0},
	C: Vec3{0, 1, 0},
	D: Vec3{0, 0, 1},
}

func randTet(r *rand.Rand) Tet {
	// Random tetrahedron with volume bounded away from zero.
	for {
		t := Tet{
			A: Vec3{r.Float64(), r.Float64(), r.Float64()},
			B: Vec3{r.Float64(), r.Float64(), r.Float64()},
			C: Vec3{r.Float64(), r.Float64(), r.Float64()},
			D: Vec3{r.Float64(), r.Float64(), r.Float64()},
		}
		if t.Volume() > 1e-3 {
			return t
		}
	}
}

func TestUnitTetVolume(t *testing.T) {
	if got := unitTet.Volume(); !almostEq(got, 1.0/6, 1e-15) {
		t.Errorf("Volume = %v, want 1/6", got)
	}
	if got := unitTet.SignedVolume(); !almostEq(got, 1.0/6, 1e-15) {
		t.Errorf("SignedVolume = %v, want +1/6", got)
	}
	// Swapping two vertices flips the sign.
	flipped := Tet{A: unitTet.B, B: unitTet.A, C: unitTet.C, D: unitTet.D}
	if got := flipped.SignedVolume(); !almostEq(got, -1.0/6, 1e-15) {
		t.Errorf("flipped SignedVolume = %v, want -1/6", got)
	}
}

func TestCentroid(t *testing.T) {
	c := unitTet.Centroid()
	if !vecAlmostEq(c, Vec3{0.25, 0.25, 0.25}, 1e-15) {
		t.Errorf("Centroid = %v", c)
	}
}

func TestBarycentricVertices(t *testing.T) {
	for i := 0; i < 4; i++ {
		w := unitTet.Barycentric(unitTet.Vertex(i))
		for j := 0; j < 4; j++ {
			want := 0.0
			if i == j {
				want = 1.0
			}
			if !almostEq(w[j], want, 1e-12) {
				t.Errorf("vertex %d: w[%d] = %v, want %v", i, j, w[j], want)
			}
		}
	}
}

func TestBarycentricCentroid(t *testing.T) {
	w := unitTet.Barycentric(unitTet.Centroid())
	for j := 0; j < 4; j++ {
		if !almostEq(w[j], 0.25, 1e-12) {
			t.Errorf("w[%d] = %v, want 0.25", j, w[j])
		}
	}
}

// Property: barycentric coordinates sum to 1 and reconstruct the point.
func TestBarycentricPartitionOfUnity(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	f := func(px, py, pz float64) bool {
		tet := randTet(r)
		p := Vec3{clamp(px) / 100, clamp(py) / 100, clamp(pz) / 100}
		w := tet.Barycentric(p)
		sum := w[0] + w[1] + w[2] + w[3]
		rec := tet.A.Scale(w[0]).Add(tet.B.Scale(w[1])).Add(tet.C.Scale(w[2])).Add(tet.D.Scale(w[3]))
		return almostEq(sum, 1, 1e-8) && vecAlmostEq(rec, p, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestContains(t *testing.T) {
	inside := []Vec3{{0.1, 0.1, 0.1}, {0.25, 0.25, 0.25}, {0.01, 0.01, 0.9}}
	outside := []Vec3{{1, 1, 1}, {-0.1, 0.1, 0.1}, {0.5, 0.5, 0.5}, {0, 0, 1.001}}
	for _, p := range inside {
		if !unitTet.Contains(p, 1e-12) {
			t.Errorf("Contains(%v) = false, want true", p)
		}
	}
	for _, p := range outside {
		if unitTet.Contains(p, 1e-12) {
			t.Errorf("Contains(%v) = true, want false", p)
		}
	}
	// On-boundary point should be inside with tolerance.
	if !unitTet.Contains(Vec3{0.5, 0.5, 0}, 1e-9) {
		t.Error("boundary point rejected")
	}
}

func TestFaceNormalOutward(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		tet := randTet(r)
		c := tet.Centroid()
		for f := 0; f < 4; f++ {
			n := tet.FaceNormal(f)
			if !almostEq(n.Norm(), 1, 1e-9) {
				t.Fatalf("face %d normal not unit: %v", f, n.Norm())
			}
			fv := FaceVerts[f]
			fc := tet.Vertex(fv[0]).Add(tet.Vertex(fv[1])).Add(tet.Vertex(fv[2])).Scale(1.0 / 3)
			// Outward: pointing away from the centroid.
			if n.Dot(fc.Sub(c)) <= 0 {
				t.Fatalf("face %d normal not outward", f)
			}
		}
	}
}

func TestFaceAreaSumUnitTet(t *testing.T) {
	// Unit tet: three faces of area 1/2 plus the slanted face sqrt(3)/2.
	total := 0.0
	for f := 0; f < 4; f++ {
		total += unitTet.FaceArea(f)
	}
	want := 1.5 + math.Sqrt(3)/2
	if !almostEq(total, want, 1e-12) {
		t.Errorf("total area = %v, want %v", total, want)
	}
}

func TestExitFaceStraightRay(t *testing.T) {
	// Ray from centroid along +x must exit the face x = ... on the slanted
	// side or the face opposite vertex A? For the unit tet the +x direction
	// from (.25,.25,.25) hits plane x+y+z=1 (face opposite A, index 0).
	face, tx := unitTet.ExitFace(unitTet.Centroid(), Vec3{1, 0, 0}, 10)
	if face != 0 {
		t.Fatalf("exit face = %d, want 0", face)
	}
	// Crossing at x+y+z=1: 0.25+t + 0.25 + 0.25 = 1 -> t = 0.25.
	if !almostEq(tx, 0.25, 1e-12) {
		t.Errorf("tExit = %v, want 0.25", tx)
	}
	// Ray along -z exits face z=0, which is the face opposite D (index 3).
	face, tz := unitTet.ExitFace(unitTet.Centroid(), Vec3{0, 0, -1}, 10)
	if face != 3 {
		t.Fatalf("exit face = %d, want 3", face)
	}
	if !almostEq(tz, 0.25, 1e-12) {
		t.Errorf("tExit = %v, want 0.25", tz)
	}
}

func TestExitFaceStaysInside(t *testing.T) {
	// Short ray that never leaves: face must be -1, tExit = tMax.
	face, te := unitTet.ExitFace(unitTet.Centroid(), Vec3{1, 0, 0}, 0.1)
	if face != -1 || te != 0.1 {
		t.Errorf("face=%d tExit=%v, want -1, 0.1", face, te)
	}
}

// Property: the exit point of a ray from an interior point lies on the
// reported face (its barycentric coordinate vanishes) and inside the tet.
func TestExitFaceOnFace(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 200; trial++ {
		tet := randTet(r)
		// Interior start point via random positive barycentric weights.
		w := [4]float64{r.Float64() + .05, r.Float64() + .05, r.Float64() + .05, r.Float64() + .05}
		s := w[0] + w[1] + w[2] + w[3]
		p := tet.A.Scale(w[0] / s).Add(tet.B.Scale(w[1] / s)).Add(tet.C.Scale(w[2] / s)).Add(tet.D.Scale(w[3] / s))
		d := Vec3{r.NormFloat64(), r.NormFloat64(), r.NormFloat64()}
		if d.Norm() < 1e-6 {
			continue
		}
		face, te := tet.ExitFace(p, d, 1e9)
		if face < 0 {
			t.Fatalf("trial %d: ray failed to exit", trial)
		}
		q := p.Add(d.Scale(te))
		wq := tet.Barycentric(q)
		if !almostEq(wq[face], 0, 1e-6) {
			t.Fatalf("trial %d: exit point barycentric[%d] = %v, want 0", trial, face, wq[face])
		}
		if !tet.Contains(q, 1e-6) {
			t.Fatalf("trial %d: exit point not on boundary", trial)
		}
	}
}

func TestGradShape(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 50; trial++ {
		tet := randTet(r)
		g := tet.GradShape()
		// Sum of shape gradients is zero (partition of unity).
		sum := g[0].Add(g[1]).Add(g[2]).Add(g[3])
		if sum.Norm() > 1e-9 {
			t.Fatalf("grad sum = %v", sum)
		}
		// Finite-difference check: N_i(p) = barycentric_i(p).
		p := tet.Centroid()
		h := 1e-6
		for i := 0; i < 4; i++ {
			for axis := 0; axis < 3; axis++ {
				dp := Vec3{}
				switch axis {
				case 0:
					dp.X = h
				case 1:
					dp.Y = h
				case 2:
					dp.Z = h
				}
				fd := (tet.Barycentric(p.Add(dp))[i] - tet.Barycentric(p.Sub(dp))[i]) / (2 * h)
				var an float64
				switch axis {
				case 0:
					an = g[i].X
				case 1:
					an = g[i].Y
				case 2:
					an = g[i].Z
				}
				if !almostEq(fd, an, 1e-4*(math.Abs(an)+1)) {
					t.Fatalf("grad N_%d axis %d: fd=%v analytic=%v", i, axis, fd, an)
				}
			}
		}
	}
}

func BenchmarkBarycentric(b *testing.B) {
	p := Vec3{0.2, 0.3, 0.1}
	for i := 0; i < b.N; i++ {
		_ = unitTet.Barycentric(p)
	}
}

func BenchmarkExitFace(b *testing.B) {
	p := unitTet.Centroid()
	d := Vec3{1, 0.2, -0.3}
	for i := 0; i < b.N; i++ {
		_, _ = unitTet.ExitFace(p, d, 1e9)
	}
}

func TestExitFaceZeroVelocity(t *testing.T) {
	// Zero direction: barycentric coordinates never change, no exit.
	face, te := unitTet.ExitFace(unitTet.Centroid(), Vec3{}, 5)
	if face != -1 || te != 5 {
		t.Errorf("zero velocity: face=%d te=%v, want -1, 5", face, te)
	}
}

func TestExitFaceStartOnFace(t *testing.T) {
	// Start exactly on face z=0 (opposite D) moving out: immediate exit.
	p := Vec3{X: 0.25, Y: 0.25, Z: 0}
	face, te := unitTet.ExitFace(p, Vec3{Z: -1}, 5)
	if face != 3 || te != 0 {
		t.Errorf("on-face outward: face=%d te=%v, want 3, 0", face, te)
	}
	// Moving inward from the face: exits through a different face later.
	face, te = unitTet.ExitFace(p, Vec3{Z: 1}, 5)
	if face == 3 || te <= 0 {
		t.Errorf("on-face inward: face=%d te=%v", face, te)
	}
}
