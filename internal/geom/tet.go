package geom

import "math"

// Tet is a tetrahedron given by its four vertex positions. Vertex order
// matters only for the sign of the volume; all query functions work for
// either orientation.
type Tet struct {
	A, B, C, D Vec3
}

// FaceVerts[f] lists the three local vertex indices of face f; face f is the
// face opposite local vertex f (0=A, 1=B, 2=C, 3=D). The solver relies on
// this convention when walking across faces: barycentric coordinate f
// vanishing means the point lies on face f.
var FaceVerts = [4][3]int{
	{1, 2, 3}, // opposite A
	{0, 3, 2}, // opposite B
	{0, 1, 3}, // opposite C
	{0, 2, 1}, // opposite D
}

// SignedVolume6 returns six times the signed volume of the tetrahedron
// (a, b, c, d): dot(b-a, cross(c-a, d-a)). Positive when d lies on the
// side of plane (a,b,c) given by the right-hand rule.
func SignedVolume6(a, b, c, d Vec3) float64 {
	return b.Sub(a).Dot(c.Sub(a).Cross(d.Sub(a)))
}

// Volume returns the (unsigned) volume of the tetrahedron.
func (t Tet) Volume() float64 {
	return math.Abs(SignedVolume6(t.A, t.B, t.C, t.D)) / 6
}

// SignedVolume returns the signed volume of the tetrahedron.
func (t Tet) SignedVolume() float64 {
	return SignedVolume6(t.A, t.B, t.C, t.D) / 6
}

// Centroid returns the barycenter of the tetrahedron.
func (t Tet) Centroid() Vec3 {
	return Vec3{
		(t.A.X + t.B.X + t.C.X + t.D.X) / 4,
		(t.A.Y + t.B.Y + t.C.Y + t.D.Y) / 4,
		(t.A.Z + t.B.Z + t.C.Z + t.D.Z) / 4,
	}
}

// Vertex returns the i-th vertex (0..3).
func (t Tet) Vertex(i int) Vec3 {
	switch i {
	case 0:
		return t.A
	case 1:
		return t.B
	case 2:
		return t.C
	default:
		return t.D
	}
}

// Barycentric returns the barycentric coordinates (wA, wB, wC, wD) of point
// p with respect to the tetrahedron. The coordinates sum to 1 for any p; all
// four are in [0, 1] exactly when p lies inside (or on the boundary of) the
// tetrahedron. Degenerate (zero-volume) tetrahedra return NaNs.
func (t Tet) Barycentric(p Vec3) [4]float64 {
	v := SignedVolume6(t.A, t.B, t.C, t.D)
	// Replace each vertex by p in turn; the ratio of sub-volume to total
	// volume is the weight of the replaced vertex.
	wa := SignedVolume6(p, t.B, t.C, t.D) / v
	wb := SignedVolume6(t.A, p, t.C, t.D) / v
	wc := SignedVolume6(t.A, t.B, p, t.D) / v
	wd := SignedVolume6(t.A, t.B, t.C, p) / v
	return [4]float64{wa, wb, wc, wd}
}

// Contains reports whether p lies inside the tetrahedron, with tolerance
// eps on the barycentric coordinates (eps >= 0 expands the tetrahedron
// slightly; useful against floating-point jitter on shared faces).
func (t Tet) Contains(p Vec3, eps float64) bool {
	w := t.Barycentric(p)
	for _, wi := range w {
		if wi < -eps || math.IsNaN(wi) {
			return false
		}
	}
	return true
}

// FaceNormal returns the outward unit normal of face f (the face opposite
// local vertex f), assuming positive orientation (SignedVolume > 0). For
// negatively oriented tetrahedra the normal points inward.
func (t Tet) FaceNormal(f int) Vec3 {
	fv := FaceVerts[f]
	p0, p1, p2 := t.Vertex(fv[0]), t.Vertex(fv[1]), t.Vertex(fv[2])
	n := p1.Sub(p0).Cross(p2.Sub(p0)).Normalize()
	// Orient away from the opposite vertex.
	if n.Dot(t.Vertex(f).Sub(p0)) > 0 {
		n = n.Scale(-1)
	}
	return n
}

// FaceArea returns the area of face f.
func (t Tet) FaceArea(f int) float64 {
	fv := FaceVerts[f]
	p0, p1, p2 := t.Vertex(fv[0]), t.Vertex(fv[1]), t.Vertex(fv[2])
	return 0.5 * p1.Sub(p0).Cross(p2.Sub(p0)).Norm()
}

// ExitFace computes which face a straight ray starting at p with direction d
// leaves the tetrahedron through, and the ray parameter tExit at the
// crossing (exit point = p + tExit*d). It assumes p is inside (or on the
// boundary of) the tetrahedron. If the ray never leaves within parameter
// tMax, ExitFace returns face -1 and tExit = tMax.
//
// The implementation uses the linearity of barycentric coordinates along the
// ray: w_i(t) = w_i(0) + t * dw_i, and the first coordinate to hit zero
// (with t > tol) identifies the exit face.
func (t Tet) ExitFace(p, d Vec3, tMax float64) (face int, tExit float64) {
	w0 := t.Barycentric(p)
	w1 := t.Barycentric(p.Add(d))
	face = -1
	tExit = tMax
	for i := 0; i < 4; i++ {
		dw := w1[i] - w0[i]
		if dw >= 0 {
			continue // coordinate i is not decreasing; can't exit face i
		}
		ti := -w0[i] / dw
		if ti < 0 {
			ti = 0 // already on/past the face plane: exits immediately
		}
		if ti < tExit {
			tExit = ti
			face = i
		}
	}
	return face, tExit
}

// GradShape returns the gradients of the four linear (P1) shape functions on
// the tetrahedron. Shape function i equals 1 at vertex i and 0 at the other
// vertices; its gradient is constant over the element. These are the
// building blocks for the FEM Poisson assembly and the per-cell electric
// field E = -grad(phi).
func (t Tet) GradShape() [4]Vec3 {
	// N_i is the i-th barycentric coordinate; its gradient is constant:
	// grad N_i = n_i / |6V|, where n_i is the face-i cross product
	// (magnitude 2*Area_i) oriented toward vertex i, since
	// |grad N_i| = Area_i / (3V) = 2*Area_i / (6V).
	absV6 := math.Abs(SignedVolume6(t.A, t.B, t.C, t.D))
	var g [4]Vec3
	verts := [4]Vec3{t.A, t.B, t.C, t.D}
	for i := 0; i < 4; i++ {
		fv := FaceVerts[i]
		p0, p1, p2 := verts[fv[0]], verts[fv[1]], verts[fv[2]]
		n := p1.Sub(p0).Cross(p2.Sub(p0))
		if n.Dot(verts[i].Sub(p0)) < 0 {
			n = n.Scale(-1)
		}
		g[i] = n.Scale(1 / absV6)
	}
	return g
}
