package mesh

import (
	"math"
	"testing"

	"github.com/plasma-hpc/dsmcpic/internal/geom"
	"github.com/plasma-hpc/dsmcpic/internal/rng"
)

func mustRefine(t testing.TB, coarse *Mesh) *Refinement {
	t.Helper()
	ref, err := RefineUniform(coarse)
	if err != nil {
		t.Fatalf("RefineUniform: %v", err)
	}
	return ref
}

func TestRefineCounts(t *testing.T) {
	coarse := mustBox(t, 2, 2, 2, 1, 1, 1)
	ref := mustRefine(t, coarse)
	if got, want := ref.Fine.NumCells(), ChildrenPerCell*coarse.NumCells(); got != want {
		t.Errorf("fine cells = %d, want %d", got, want)
	}
	if err := ref.Fine.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestRefineVolumeConservation(t *testing.T) {
	coarse := mustNozzle(t, 3, 4, 0.5, 1.0)
	ref := mustRefine(t, coarse)
	// Each coarse cell's volume equals the sum of its 8 children exactly.
	for c := 0; c < coarse.NumCells(); c++ {
		lo, hi := ref.FineCells(c)
		var sum float64
		for f := lo; f < hi; f++ {
			sum += ref.Fine.Volumes[f]
		}
		if math.Abs(sum-coarse.Volumes[c]) > 1e-12*coarse.Volumes[c] {
			t.Fatalf("cell %d: children volume %v != parent %v", c, sum, coarse.Volumes[c])
		}
	}
}

func TestRefineNesting(t *testing.T) {
	coarse := mustBox(t, 2, 2, 2, 1, 1, 1)
	ref := mustRefine(t, coarse)
	// Every fine cell centroid lies inside its coarse parent.
	for f := 0; f < ref.Fine.NumCells(); f++ {
		parent := ref.CoarseOf(f)
		if !coarse.Tet(parent).Contains(ref.Fine.Centroids[f], 1e-9) {
			t.Fatalf("fine cell %d centroid outside parent %d", f, parent)
		}
	}
}

func TestRefineNodesShared(t *testing.T) {
	coarse := mustBox(t, 2, 2, 2, 1, 1, 1)
	ref := mustRefine(t, coarse)
	// The first len(coarse.Nodes) fine nodes coincide with the coarse nodes.
	for i, p := range coarse.Nodes {
		if ref.Fine.Nodes[i] != p {
			t.Fatalf("fine node %d moved: %v != %v", i, ref.Fine.Nodes[i], p)
		}
	}
	// A conforming refinement of a conforming mesh: node count is
	// coarse nodes + unique edges, strictly less than coarse nodes + 6*cells.
	if len(ref.Fine.Nodes) >= len(coarse.Nodes)+6*coarse.NumCells() {
		t.Error("edge midpoints were not deduplicated across cells")
	}
}

func TestRefineBoundaryTagInheritance(t *testing.T) {
	coarse := mustNozzle(t, 3, 4, 0.5, 1.0)
	ref := mustRefine(t, coarse)
	// Fine inlet area equals coarse inlet area (faces are split 1->4).
	area := func(m *Mesh, tag BoundaryTag) float64 {
		var a float64
		for _, cf := range m.BoundaryFaces(tag) {
			a += m.Tet(int(cf[0])).FaceArea(int(cf[1]))
		}
		return a
	}
	for _, tag := range []BoundaryTag{Inlet, Outlet, Wall} {
		ca, fa := area(coarse, tag), area(ref.Fine, tag)
		if math.Abs(ca-fa) > 1e-9*(ca+1e-30) {
			t.Errorf("%v area: coarse %v fine %v", tag, ca, fa)
		}
	}
	// Fine inlet face count is 4x the coarse count.
	if got, want := len(ref.Fine.BoundaryFaces(Inlet)), 4*len(coarse.BoundaryFaces(Inlet)); got != want {
		t.Errorf("fine inlet faces = %d, want %d", got, want)
	}
}

func TestFindFineCell(t *testing.T) {
	coarse := mustBox(t, 2, 2, 2, 1, 1, 1)
	ref := mustRefine(t, coarse)
	r := rng.New(99, 0)
	for trial := 0; trial < 500; trial++ {
		p := geom.V(r.Float64(), r.Float64(), r.Float64())
		c := coarse.FindCellBrute(p)
		if c < 0 {
			continue
		}
		f := ref.FindFineCell(c, p)
		if f < 0 {
			t.Fatalf("FindFineCell failed for %v in coarse %d", p, c)
		}
		if ref.CoarseOf(f) != c {
			t.Fatalf("fine cell %d not nested in coarse %d", f, c)
		}
		if !ref.Fine.Tet(f).Contains(p, 1e-6) {
			t.Fatalf("fine cell %d does not contain %v", f, p)
		}
	}
}

func TestFindFineCellOutsideParent(t *testing.T) {
	coarse := mustBox(t, 1, 1, 1, 1, 1, 1)
	ref := mustRefine(t, coarse)
	// A point far from coarse cell 0 must not be claimed by its children.
	if f := ref.FindFineCell(0, geom.V(5, 5, 5)); f != -1 {
		t.Errorf("FindFineCell claimed far point: %d", f)
	}
}

func TestRefineRequiresFinalized(t *testing.T) {
	m := &Mesh{
		Nodes: []geom.Vec3{geom.V(0, 0, 0), geom.V(1, 0, 0), geom.V(0, 1, 0), geom.V(0, 0, 1)},
		Cells: [][4]int32{{0, 1, 2, 3}},
	}
	if _, err := RefineUniform(m); err == nil {
		t.Error("RefineUniform accepted a non-finalized mesh")
	}
}

func BenchmarkRefineUniform(b *testing.B) {
	coarse := mustNozzle(b, 4, 8, 0.05, 0.2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RefineUniform(coarse); err != nil {
			b.Fatal(err)
		}
	}
}
