package mesh

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"github.com/plasma-hpc/dsmcpic/internal/geom"
)

// Binary mesh format: magic, node count, cell count, node coordinates,
// cell node ids, boundary face tags. Topology and geometry are rebuilt on
// load (they are derived data).

var meshMagic = [8]byte{'d', 's', 'm', 'c', 'M', 'S', 'H', '1'}

// Save writes the mesh in the library's compact binary format. The mesh
// must be finalized (positive cell orientation guarantees face numbering
// survives the reload's re-finalization).
func (m *Mesh) Save(w io.Writer) error {
	if m.FaceTags == nil {
		return fmt.Errorf("mesh: Save requires a finalized mesh")
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(meshMagic[:]); err != nil {
		return err
	}
	le := binary.LittleEndian
	var hdr [8]byte
	le.PutUint32(hdr[0:], uint32(m.NumNodes()))
	le.PutUint32(hdr[4:], uint32(m.NumCells()))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var buf [24]byte
	for _, p := range m.Nodes {
		le.PutUint64(buf[0:], math.Float64bits(p.X))
		le.PutUint64(buf[8:], math.Float64bits(p.Y))
		le.PutUint64(buf[16:], math.Float64bits(p.Z))
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	for _, c := range m.Cells {
		for _, n := range c {
			le.PutUint32(buf[0:], uint32(n))
			if _, err := bw.Write(buf[:4]); err != nil {
				return err
			}
		}
	}
	// Boundary tags: one byte per cell face (Interior for shared faces).
	for c := range m.Cells {
		var tags [4]byte
		for f := 0; f < 4; f++ {
			tags[f] = byte(m.FaceTags[c][f])
		}
		if _, err := bw.Write(tags[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load reads a mesh written by Save and finalizes it (geometry + topology
// rebuilt, saved boundary tags restored).
func Load(r io.Reader) (*Mesh, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("mesh: reading magic: %w", err)
	}
	if magic != meshMagic {
		return nil, fmt.Errorf("mesh: bad magic %q", magic)
	}
	le := binary.LittleEndian
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	nNodes := int(le.Uint32(hdr[0:]))
	nCells := int(le.Uint32(hdr[4:]))
	const maxEntities = 1 << 26
	if nNodes < 0 || nCells <= 0 || nNodes > maxEntities || nCells > maxEntities {
		return nil, fmt.Errorf("mesh: implausible sizes %d nodes / %d cells", nNodes, nCells)
	}
	// Grow incrementally rather than trusting the header sizes upfront: a
	// corrupt header must not trigger a giant allocation before the body
	// fails to materialize.
	mesh := &Mesh{}
	var buf [24]byte
	for i := 0; i < nNodes; i++ {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, err
		}
		mesh.Nodes = append(mesh.Nodes, geom.V(
			math.Float64frombits(le.Uint64(buf[0:])),
			math.Float64frombits(le.Uint64(buf[8:])),
			math.Float64frombits(le.Uint64(buf[16:])),
		))
	}
	for c := 0; c < nCells; c++ {
		var cell [4]int32
		for v := 0; v < 4; v++ {
			if _, err := io.ReadFull(br, buf[:4]); err != nil {
				return nil, err
			}
			id := int32(le.Uint32(buf[:4]))
			if id < 0 || int(id) >= nNodes {
				return nil, fmt.Errorf("mesh: cell %d references node %d out of range", c, id)
			}
			cell[v] = id
		}
		mesh.Cells = append(mesh.Cells, cell)
	}
	var savedTags [][4]BoundaryTag
	for c := 0; c < nCells; c++ {
		if _, err := io.ReadFull(br, buf[:4]); err != nil {
			return nil, err
		}
		var tags [4]BoundaryTag
		for f := 0; f < 4; f++ {
			tags[f] = BoundaryTag(buf[f])
		}
		savedTags = append(savedTags, tags)
	}
	if err := mesh.Finalize(); err != nil {
		return nil, err
	}
	// Restore saved boundary tags. Finalize may have flipped vertex order
	// of negatively oriented cells, which permutes face numbering — but
	// Save always runs on finalized meshes (positive orientation), and the
	// node order is preserved byte-for-byte, so face numbering matches.
	for c := range savedTags {
		for f := 0; f < 4; f++ {
			if mesh.Neighbors[c][f] == NoNeighbor && savedTags[c][f] != Interior {
				mesh.FaceTags[c][f] = savedTags[c][f]
			}
		}
	}
	return mesh, nil
}
