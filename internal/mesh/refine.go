package mesh

import (
	"fmt"

	"github.com/plasma-hpc/dsmcpic/internal/geom"
)

// ChildrenPerCell is the number of fine cells nested in one coarse cell
// (paper Fig. 2: each coarse tetrahedron is split into 8 by halving edges).
const ChildrenPerCell = 8

// Refinement couples a coarse DSMC mesh with its uniformly refined fine PIC
// mesh. Fine cell f is nested in coarse cell f / ChildrenPerCell; the fine
// mesh reuses the coarse node ids 0..len(coarse.Nodes)-1 and appends edge
// midpoints after them.
type Refinement struct {
	Coarse *Mesh
	Fine   *Mesh
}

// CoarseOf returns the coarse cell containing fine cell f.
func (r *Refinement) CoarseOf(f int) int { return f / ChildrenPerCell }

// FineCells returns the index range [lo, hi) of fine cells nested in coarse
// cell c.
func (r *Refinement) FineCells(c int) (lo, hi int) {
	return c * ChildrenPerCell, (c + 1) * ChildrenPerCell
}

// RefineUniform performs one level of red (1-to-8) refinement of every cell:
// the four corner tetrahedra at the original vertices plus four tetrahedra
// from the interior octahedron, split along the m02–m13 diagonal (Bey's
// rule). Edge midpoints are shared between cells, so the fine mesh is
// conforming whenever the coarse mesh is.
func RefineUniform(coarse *Mesh) (*Refinement, error) {
	if coarse.Volumes == nil || coarse.Neighbors == nil {
		return nil, fmt.Errorf("mesh: refine requires a finalized coarse mesh")
	}
	fine := &Mesh{}
	fine.Nodes = make([]geom.Vec3, len(coarse.Nodes), len(coarse.Nodes)+6*len(coarse.Cells)/2)
	copy(fine.Nodes, coarse.Nodes)

	type edgeKey struct{ a, b int32 }
	mids := make(map[edgeKey]int32, 3*len(coarse.Cells))
	midpoint := func(a, b int32) int32 {
		if a > b {
			a, b = b, a
		}
		key := edgeKey{a, b}
		if id, ok := mids[key]; ok {
			return id
		}
		id := int32(len(fine.Nodes))
		fine.Nodes = append(fine.Nodes, geom.Mid(coarse.Nodes[a], coarse.Nodes[b]))
		mids[key] = id
		return id
	}

	fine.Cells = make([][4]int32, 0, ChildrenPerCell*len(coarse.Cells))
	for _, cell := range coarse.Cells {
		v0, v1, v2, v3 := cell[0], cell[1], cell[2], cell[3]
		m01 := midpoint(v0, v1)
		m02 := midpoint(v0, v2)
		m03 := midpoint(v0, v3)
		m12 := midpoint(v1, v2)
		m13 := midpoint(v1, v3)
		m23 := midpoint(v2, v3)
		children := [ChildrenPerCell][4]int32{
			// Corner tetrahedra.
			{v0, m01, m02, m03},
			{v1, m01, m12, m13},
			{v2, m02, m12, m23},
			{v3, m03, m13, m23},
			// Octahedron split along the m02–m13 diagonal.
			{m01, m02, m03, m13},
			{m01, m02, m12, m13},
			{m02, m03, m13, m23},
			{m02, m12, m13, m23},
		}
		fine.Cells = append(fine.Cells, children[:]...)
	}
	if err := fine.Finalize(); err != nil {
		return nil, err
	}
	// Fine boundary faces lie on coarse boundary faces; inherit their tags
	// geometrically: a fine boundary face centroid lies on exactly one
	// coarse boundary face, the one of its parent cell it is flush with.
	inheritTags(coarse, fine)
	return &Refinement{Coarse: coarse, Fine: fine}, nil
}

// inheritTags copies inlet/outlet/wall tags from coarse boundary faces to
// the fine boundary faces nested in them. For each fine boundary face we
// test which parent-cell face plane it lies on via barycentric coordinates.
func inheritTags(coarse, fine *Mesh) {
	for fc := range fine.Cells {
		parent := fc / ChildrenPerCell
		pt := coarse.Tet(parent)
		for ff := 0; ff < 4; ff++ {
			if fine.Neighbors[fc][ff] != NoNeighbor {
				continue
			}
			fv := geom.FaceVerts[ff]
			cell := fine.Cells[fc]
			p0 := fine.Nodes[cell[fv[0]]]
			p1 := fine.Nodes[cell[fv[1]]]
			p2 := fine.Nodes[cell[fv[2]]]
			centroid := p0.Add(p1).Add(p2).Scale(1.0 / 3)
			w := pt.Barycentric(centroid)
			// The coarse face the centroid lies on is the one whose
			// barycentric coordinate vanishes.
			best, bestW := -1, 1.0
			for pf := 0; pf < 4; pf++ {
				aw := w[pf]
				if aw < bestW {
					bestW = aw
					best = pf
				}
			}
			const tol = 1e-9
			if best >= 0 && bestW < tol && bestW > -tol && coarse.Neighbors[parent][best] == NoNeighbor {
				fine.FaceTags[fc][ff] = coarse.FaceTags[parent][best]
			}
			// Otherwise keep the default Wall tag from BuildTopology; this
			// only happens for degenerate geometry and is conservative.
		}
	}
}
