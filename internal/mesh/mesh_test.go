package mesh

import (
	"math"
	"testing"

	"github.com/plasma-hpc/dsmcpic/internal/geom"
)

func mustBox(t testing.TB, nx, ny, nz int, lx, ly, lz float64) *Mesh {
	t.Helper()
	m, err := Box(nx, ny, nz, lx, ly, lz)
	if err != nil {
		t.Fatalf("Box: %v", err)
	}
	return m
}

func mustNozzle(t testing.TB, n, nz int, r, l float64) *Mesh {
	t.Helper()
	m, err := Nozzle(n, nz, r, l)
	if err != nil {
		t.Fatalf("Nozzle: %v", err)
	}
	return m
}

func TestBoxCellCount(t *testing.T) {
	m := mustBox(t, 2, 3, 4, 1, 1, 1)
	if got, want := m.NumCells(), 6*2*3*4; got != want {
		t.Errorf("NumCells = %d, want %d", got, want)
	}
	if got, want := m.NumNodes(), 3*4*5; got != want {
		t.Errorf("NumNodes = %d, want %d", got, want)
	}
}

func TestBoxVolumeExact(t *testing.T) {
	m := mustBox(t, 3, 2, 5, 2.0, 1.5, 3.0)
	want := 2.0 * 1.5 * 3.0
	if got := m.TotalVolume(); math.Abs(got-want) > 1e-12*want {
		t.Errorf("TotalVolume = %v, want %v", got, want)
	}
}

func TestBoxCheckInvariants(t *testing.T) {
	m := mustBox(t, 3, 3, 3, 1, 1, 1)
	if err := m.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestBoxBoundaryFaceCount(t *testing.T) {
	// A box surface of n x n squares, each square split into 2 triangles by
	// the Kuhn triangulation; total = 2 * (2*(nx*ny + ny*nz + nx*nz)).
	m := mustBox(t, 2, 3, 4, 1, 1, 1)
	want := 2 * 2 * (2*3 + 3*4 + 2*4)
	got := len(m.BoundaryFaces(Wall))
	if got != want {
		t.Errorf("boundary faces = %d, want %d", got, want)
	}
}

func TestBoxInteriorNeighborSymmetry(t *testing.T) {
	m := mustBox(t, 2, 2, 2, 1, 1, 1)
	interior := 0
	for c := range m.Cells {
		for f := 0; f < 4; f++ {
			if m.Neighbors[c][f] != NoNeighbor {
				interior++
			}
		}
	}
	// Each interior face is counted twice; total faces = 4*cells.
	boundary := len(m.BoundaryFaces(Wall))
	if interior+boundary != 4*m.NumCells() {
		t.Errorf("face accounting: interior=%d boundary=%d cells=%d", interior, boundary, m.NumCells())
	}
	if interior%2 != 0 {
		t.Errorf("interior half-faces odd: %d", interior)
	}
}

func TestBoxRejectsBadResolution(t *testing.T) {
	if _, err := Box(0, 1, 1, 1, 1, 1); err == nil {
		t.Error("Box(0,...) succeeded, want error")
	}
}

func TestNozzleTags(t *testing.T) {
	const r, l = 0.05, 0.2
	m := mustNozzle(t, 4, 8, r, l)
	if err := m.Check(); err != nil {
		t.Fatal(err)
	}
	inlet := m.BoundaryFaces(Inlet)
	outlet := m.BoundaryFaces(Outlet)
	wall := m.BoundaryFaces(Wall)
	if len(inlet) == 0 || len(outlet) == 0 || len(wall) == 0 {
		t.Fatalf("missing boundary classes: inlet=%d outlet=%d wall=%d", len(inlet), len(outlet), len(wall))
	}
	// Inlet faces lie at z=0 with outward normal -z; outlet at z=l.
	for _, cf := range inlet {
		tet := m.Tet(int(cf[0]))
		n := tet.FaceNormal(int(cf[1]))
		if n.Z > -0.9 {
			t.Fatalf("inlet face normal %v not -z", n)
		}
	}
	for _, cf := range outlet {
		tet := m.Tet(int(cf[0]))
		n := tet.FaceNormal(int(cf[1]))
		if n.Z < 0.9 {
			t.Fatalf("outlet face normal %v not +z", n)
		}
	}
	// Inlet and outlet areas are equal (same stair-step cross-section).
	area := func(fs [][2]int32) float64 {
		var a float64
		for _, cf := range fs {
			a += m.Tet(int(cf[0])).FaceArea(int(cf[1]))
		}
		return a
	}
	ain, aout := area(inlet), area(outlet)
	if math.Abs(ain-aout) > 1e-9*ain {
		t.Errorf("inlet area %v != outlet area %v", ain, aout)
	}
	// Stair-step cross-section area approaches pi r^2 from within ~30%.
	if ain < 0.6*math.Pi*r*r || ain > 1.2*math.Pi*r*r {
		t.Errorf("inlet area %v implausible vs pi r^2 = %v", ain, math.Pi*r*r)
	}
}

func TestNozzleVolumeConverges(t *testing.T) {
	const r, l = 1.0, 2.0
	exact := CylinderVolume(r, l)
	coarse := mustNozzle(t, 4, 4, r, l).TotalVolume()
	fine := mustNozzle(t, 12, 4, r, l).TotalVolume()
	errCoarse := math.Abs(coarse - exact)
	errFine := math.Abs(fine - exact)
	if errFine >= errCoarse {
		t.Errorf("volume error did not shrink with resolution: %v -> %v", errCoarse, errFine)
	}
	if errFine/exact > 0.10 {
		t.Errorf("fine volume error %v%% too large", 100*errFine/exact)
	}
}

func TestTagBoundaryOverride(t *testing.T) {
	m := mustBox(t, 2, 2, 2, 1, 1, 1)
	m.TagBoundary(func(c, n geom.Vec3) BoundaryTag {
		if n.Z < -0.5 {
			return Inlet
		}
		return Wall
	})
	if len(m.BoundaryFaces(Inlet)) != 2*2*2 {
		t.Errorf("inlet faces = %d, want 8", len(m.BoundaryFaces(Inlet)))
	}
}

func TestBoundaryTagString(t *testing.T) {
	cases := map[BoundaryTag]string{Interior: "interior", Inlet: "inlet", Outlet: "outlet", Wall: "wall", BoundaryTag(9): "tag(9)"}
	for tag, want := range cases {
		if got := tag.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", tag, got, want)
		}
	}
}

func TestNodeCells(t *testing.T) {
	m := mustBox(t, 1, 1, 1, 1, 1, 1)
	nc := m.NodeCells()
	total := 0
	for _, cells := range nc {
		total += len(cells)
		for i := 1; i < len(cells); i++ {
			if cells[i-1] >= cells[i] {
				t.Fatal("NodeCells not sorted ascending")
			}
		}
	}
	if total != 4*m.NumCells() {
		t.Errorf("sum of node-cell incidences = %d, want %d", total, 4*m.NumCells())
	}
}

func TestDualGraph(t *testing.T) {
	m := mustBox(t, 2, 2, 2, 1, 1, 1)
	xadj, adjncy := m.DualGraph()
	if len(xadj) != m.NumCells()+1 {
		t.Fatalf("xadj length %d", len(xadj))
	}
	// Symmetry: u in adj(v) <=> v in adj(u).
	adjSet := func(v int32) map[int32]bool {
		s := map[int32]bool{}
		for _, u := range adjncy[xadj[v]:xadj[v+1]] {
			s[u] = true
		}
		return s
	}
	for v := int32(0); int(v) < m.NumCells(); v++ {
		for _, u := range adjncy[xadj[v]:xadj[v+1]] {
			if u == v {
				t.Fatalf("self loop at %d", v)
			}
			if !adjSet(u)[v] {
				t.Fatalf("asymmetric edge %d-%d", v, u)
			}
		}
	}
}

func TestFindCellWalk(t *testing.T) {
	m := mustBox(t, 4, 4, 4, 1, 1, 1)
	targets := []geom.Vec3{
		geom.V(0.1, 0.1, 0.1), geom.V(0.9, 0.9, 0.9),
		geom.V(0.5, 0.25, 0.75), geom.V(0.01, 0.99, 0.5),
	}
	for _, p := range targets {
		want := m.FindCellBrute(p)
		if want < 0 {
			t.Fatalf("brute failed to find %v", p)
		}
		got := m.FindCellWalk(0, p, 10000)
		if got < 0 {
			t.Fatalf("walk failed for %v", p)
		}
		if !m.Tet(got).Contains(p, 1e-9) {
			t.Fatalf("walk returned cell %d not containing %v", got, p)
		}
	}
}

func TestFindCellWalkOutside(t *testing.T) {
	m := mustBox(t, 2, 2, 2, 1, 1, 1)
	if c := m.FindCellWalk(0, geom.V(2, 2, 2), 1000); c != -1 {
		t.Errorf("walk to outside point returned %d, want -1", c)
	}
	if c := m.FindCellBrute(geom.V(-1, 0, 0)); c != -1 {
		t.Errorf("brute outside returned %d, want -1", c)
	}
	if c := m.FindCellWalk(-5, geom.V(.5, .5, .5), 10); c != -1 {
		t.Errorf("bad start cell returned %d, want -1", c)
	}
}

func BenchmarkBuildNozzle(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Nozzle(6, 12, 0.05, 0.2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFindCellWalk(b *testing.B) {
	m := mustBox(b, 8, 8, 8, 1, 1, 1)
	p := geom.V(0.73, 0.21, 0.55)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c := m.FindCellWalk(0, p, 10000); c < 0 {
			b.Fatal("walk failed")
		}
	}
}

func TestConicalNozzle(t *testing.T) {
	m, err := ConicalNozzle(4, 10, 0.02, 0.06, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Check(); err != nil {
		t.Fatal(err)
	}
	inlet := m.BoundaryFaces(Inlet)
	outlet := m.BoundaryFaces(Outlet)
	if len(inlet) == 0 || len(outlet) == 0 {
		t.Fatal("missing inlet/outlet")
	}
	// Diverging nozzle: outlet area exceeds inlet area.
	area := func(fs [][2]int32) float64 {
		var a float64
		for _, cf := range fs {
			a += m.Tet(int(cf[0])).FaceArea(int(cf[1]))
		}
		return a
	}
	if area(outlet) <= 2*area(inlet) {
		t.Errorf("outlet area %v not much larger than inlet %v", area(outlet), area(inlet))
	}
	// Refinement works on the conical grid too.
	if _, err := RefineUniform(m); err != nil {
		t.Fatal(err)
	}
}

func TestConicalNozzleConverging(t *testing.T) {
	m, err := ConicalNozzle(4, 8, 0.06, 0.02, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	area := func(tag BoundaryTag) float64 {
		var a float64
		for _, cf := range m.BoundaryFaces(tag) {
			a += m.Tet(int(cf[0])).FaceArea(int(cf[1]))
		}
		return a
	}
	if area(Inlet) <= area(Outlet) {
		t.Error("converging nozzle should have larger inlet")
	}
}

func TestConicalNozzleRejectsBadArgs(t *testing.T) {
	if _, err := ConicalNozzle(1, 8, 0.02, 0.06, 0.2); err == nil {
		t.Error("tiny n accepted")
	}
	if _, err := ConicalNozzle(4, 8, -0.02, 0.06, 0.2); err == nil {
		t.Error("negative radius accepted")
	}
}
