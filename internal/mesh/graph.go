package mesh

// DualGraph returns the cell-adjacency graph of the mesh in CSR form
// (two cells are adjacent when they share a face), the input format of the
// graph partitioner — the same contract as METIS's (xadj, adjncy).
func (m *Mesh) DualGraph() (xadj []int32, adjncy []int32) {
	xadj = make([]int32, len(m.Cells)+1)
	for c := range m.Cells {
		deg := int32(0)
		for f := 0; f < 4; f++ {
			if m.Neighbors[c][f] != NoNeighbor {
				deg++
			}
		}
		xadj[c+1] = xadj[c] + deg
	}
	adjncy = make([]int32, xadj[len(m.Cells)])
	pos := make([]int32, len(m.Cells))
	copy(pos, xadj[:len(m.Cells)])
	for c := range m.Cells {
		for f := 0; f < 4; f++ {
			if n := m.Neighbors[c][f]; n != NoNeighbor {
				adjncy[pos[c]] = n
				pos[c]++
			}
		}
	}
	return xadj, adjncy
}
