package mesh

import (
	"fmt"
	"math"

	"github.com/plasma-hpc/dsmcpic/internal/geom"
)

// CellQuality holds shape metrics of one tetrahedron.
type CellQuality struct {
	// AspectRatio is longest edge / inradius, normalized so the regular
	// tetrahedron scores 1 (values grow with distortion).
	AspectRatio float64
	// MinDihedralDeg is the smallest dihedral angle between faces, in
	// degrees (70.53 for the regular tetrahedron; sliver cells approach 0).
	MinDihedralDeg float64
}

// regularAspect is longest-edge/inradius of the regular tetrahedron
// (sqrt(24)), used to normalize AspectRatio to 1 for the ideal shape.
var regularAspect = math.Sqrt(24)

// Quality computes shape metrics of cell c.
func (m *Mesh) Quality(c int) CellQuality {
	t := m.Tet(c)
	verts := [4]geom.Vec3{t.A, t.B, t.C, t.D}
	// Longest edge.
	var longest float64
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			if d := geom.Dist(verts[i], verts[j]); d > longest {
				longest = d
			}
		}
	}
	// Inradius = 3V / total face area.
	var area float64
	for f := 0; f < 4; f++ {
		area += t.FaceArea(f)
	}
	inradius := 3 * t.Volume() / area
	q := CellQuality{MinDihedralDeg: 180}
	if inradius > 0 {
		q.AspectRatio = longest / inradius / regularAspect
	} else {
		q.AspectRatio = math.Inf(1)
	}
	// Dihedral angles between all face pairs: angle between inward normals.
	var normals [4]geom.Vec3
	for f := 0; f < 4; f++ {
		normals[f] = t.FaceNormal(f)
	}
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			// Dihedral = pi - angle(outward normals).
			cos := normals[i].Dot(normals[j])
			if cos > 1 {
				cos = 1
			}
			if cos < -1 {
				cos = -1
			}
			dihedral := 180 - math.Acos(cos)*180/math.Pi
			if dihedral < q.MinDihedralDeg {
				q.MinDihedralDeg = dihedral
			}
		}
	}
	return q
}

// QualitySummary aggregates quality over the whole mesh.
type QualitySummary struct {
	WorstAspect      float64
	MeanAspect       float64
	WorstDihedralDeg float64 // smallest min-dihedral over cells
}

func (s QualitySummary) String() string {
	return fmt.Sprintf("aspect mean %.2f worst %.2f; min dihedral %.1f deg",
		s.MeanAspect, s.WorstAspect, s.WorstDihedralDeg)
}

// QualitySummary scans every cell.
func (m *Mesh) QualitySummary() QualitySummary {
	s := QualitySummary{WorstDihedralDeg: 180}
	for c := range m.Cells {
		q := m.Quality(c)
		if q.AspectRatio > s.WorstAspect {
			s.WorstAspect = q.AspectRatio
		}
		s.MeanAspect += q.AspectRatio
		if q.MinDihedralDeg < s.WorstDihedralDeg {
			s.WorstDihedralDeg = q.MinDihedralDeg
		}
	}
	if len(m.Cells) > 0 {
		s.MeanAspect /= float64(len(m.Cells))
	}
	return s
}
