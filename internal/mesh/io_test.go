package mesh

import (
	"bytes"
	"testing"

	"github.com/plasma-hpc/dsmcpic/internal/geom"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	orig := mustNozzle(t, 3, 6, 0.05, 0.2)
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumNodes() != orig.NumNodes() || loaded.NumCells() != orig.NumCells() {
		t.Fatalf("sizes: %d/%d vs %d/%d", loaded.NumNodes(), loaded.NumCells(), orig.NumNodes(), orig.NumCells())
	}
	for i := range orig.Nodes {
		if loaded.Nodes[i] != orig.Nodes[i] {
			t.Fatalf("node %d moved", i)
		}
	}
	for c := range orig.Cells {
		if loaded.Cells[c] != orig.Cells[c] {
			t.Fatalf("cell %d changed", c)
		}
	}
	// Boundary tags survive (inlet/outlet/wall counts identical).
	for _, tag := range []BoundaryTag{Inlet, Outlet, Wall} {
		if got, want := len(loaded.BoundaryFaces(tag)), len(orig.BoundaryFaces(tag)); got != want {
			t.Errorf("%v faces: %d vs %d", tag, got, want)
		}
	}
	if err := loaded.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a mesh"))); err == nil {
		t.Error("garbage accepted")
	}
	// Valid magic but truncated body.
	var buf bytes.Buffer
	m := mustBox(t, 1, 1, 1, 1, 1, 1)
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := Load(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated mesh accepted")
	}
}

func TestSaveRequiresFinalized(t *testing.T) {
	m := &Mesh{}
	var buf bytes.Buffer
	if err := m.Save(&buf); err == nil {
		t.Error("unfinalized mesh saved")
	}
}

func TestQualityRegularTet(t *testing.T) {
	// Regular tetrahedron: aspect 1, min dihedral ~70.53 degrees.
	m := &Mesh{
		Nodes: []geom.Vec3{geom.V(1, 1, 1), geom.V(1, -1, -1), geom.V(-1, 1, -1), geom.V(-1, -1, 1)},
		Cells: [][4]int32{{0, 1, 2, 3}},
	}
	if err := m.Finalize(); err != nil {
		t.Fatal(err)
	}
	q := m.Quality(0)
	if q.AspectRatio < 0.99 || q.AspectRatio > 1.01 {
		t.Errorf("regular tet aspect = %v, want 1", q.AspectRatio)
	}
	if q.MinDihedralDeg < 70 || q.MinDihedralDeg > 71 {
		t.Errorf("regular tet min dihedral = %v, want ~70.53", q.MinDihedralDeg)
	}
}

func TestQualitySliverWorse(t *testing.T) {
	sliver := &Mesh{
		Nodes: []geom.Vec3{geom.V(0, 0, 0), geom.V(1, 0, 0), geom.V(0, 1, 0), geom.V(0.5, 0.5, 0.01)},
		Cells: [][4]int32{{0, 1, 2, 3}},
	}
	if err := sliver.Finalize(); err != nil {
		t.Fatal(err)
	}
	q := sliver.Quality(0)
	if q.AspectRatio < 5 {
		t.Errorf("sliver aspect = %v, want >> 1", q.AspectRatio)
	}
	if q.MinDihedralDeg > 20 {
		t.Errorf("sliver min dihedral = %v, want small", q.MinDihedralDeg)
	}
}

func TestQualitySummaryNozzle(t *testing.T) {
	m := mustNozzle(t, 3, 6, 0.05, 0.2)
	s := m.QualitySummary()
	// Kuhn path tetrahedra are uniform with min dihedral ~26.6 degrees
	// (arctan of the unit-cube diagonal geometry) — not regular, but far
	// from slivers.
	if s.WorstAspect > 4 || s.MeanAspect > 3 {
		t.Errorf("nozzle quality degraded: %v", s)
	}
	if s.WorstDihedralDeg < 25 || s.WorstDihedralDeg > 35 {
		t.Errorf("nozzle min dihedral %v, want ~26.6 (Kuhn tets)", s.WorstDihedralDeg)
	}
	if s.String() == "" {
		t.Error("empty summary string")
	}
}
