// Package mesh implements the dual nested unstructured tetrahedral grids of
// the coupled DSMC/PIC solver: a coarse grid whose cell size is constrained
// by the particle mean free path (DSMC) and a fine grid — every coarse cell
// split into 8 children — constrained by the Debye length (PIC). It also
// provides the cylindrical-nozzle generator used by the paper's case study
// (replacing SALOME), face topology, boundary tagging, the dual graph used
// for partitioning, and point location by cell walking.
package mesh

import (
	"fmt"
	"sort"

	"github.com/plasma-hpc/dsmcpic/internal/geom"
)

// BoundaryTag classifies a boundary face of the computational domain.
type BoundaryTag uint8

const (
	// Interior marks a face shared by two cells (not a boundary).
	Interior BoundaryTag = iota
	// Inlet is the particle injection surface (z = 0 disk of the nozzle).
	Inlet
	// Outlet is the free outflow surface (z = L disk); particles crossing
	// it leave the computational domain.
	Outlet
	// Wall is a solid surface; particles reflect (diffuse or specular).
	Wall
)

func (t BoundaryTag) String() string {
	switch t {
	case Interior:
		return "interior"
	case Inlet:
		return "inlet"
	case Outlet:
		return "outlet"
	case Wall:
		return "wall"
	default:
		return fmt.Sprintf("tag(%d)", uint8(t))
	}
}

// NoNeighbor marks a boundary face in the Neighbors array.
const NoNeighbor int32 = -1

// Mesh is an unstructured tetrahedral mesh. Cells store node indices;
// Neighbors[c][f] is the cell sharing face f of cell c (or NoNeighbor), with
// face f being the face opposite local vertex f as in geom.FaceVerts.
type Mesh struct {
	Nodes []geom.Vec3
	Cells [][4]int32

	// Topology (filled by BuildTopology):
	Neighbors [][4]int32
	FaceTags  [][4]BoundaryTag

	// Derived geometry (filled by BuildGeometry):
	Volumes   []float64
	Centroids []geom.Vec3
}

// NumCells returns the number of tetrahedral cells.
func (m *Mesh) NumCells() int { return len(m.Cells) }

// NumNodes returns the number of nodes.
func (m *Mesh) NumNodes() int { return len(m.Nodes) }

// Tet returns the geometric tetrahedron of cell c.
func (m *Mesh) Tet(c int) geom.Tet {
	cell := m.Cells[c]
	return geom.Tet{
		A: m.Nodes[cell[0]],
		B: m.Nodes[cell[1]],
		C: m.Nodes[cell[2]],
		D: m.Nodes[cell[3]],
	}
}

// faceKey is a canonical (sorted) identifier for a triangular face.
type faceKey [3]int32

func makeFaceKey(a, b, c int32) faceKey {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b, c = c, b
	}
	if a > b {
		a, b = b, a
	}
	return faceKey{a, b, c}
}

// faceNodes returns the three node ids of face f of cell c.
func (m *Mesh) faceNodes(c, f int) (int32, int32, int32) {
	fv := geom.FaceVerts[f]
	cell := m.Cells[c]
	return cell[fv[0]], cell[fv[1]], cell[fv[2]]
}

// BuildTopology computes the Neighbors array by matching faces, and
// initializes FaceTags (boundary faces get Wall by default; callers such as
// the nozzle generator overwrite inlet/outlet tags afterwards via TagBoundary).
func (m *Mesh) BuildTopology() error {
	type half struct {
		cell int32
		face int8
	}
	faces := make(map[faceKey]half, 2*len(m.Cells))
	m.Neighbors = make([][4]int32, len(m.Cells))
	m.FaceTags = make([][4]BoundaryTag, len(m.Cells))
	for c := range m.Cells {
		for f := 0; f < 4; f++ {
			m.Neighbors[c][f] = NoNeighbor
		}
	}
	for c := range m.Cells {
		for f := 0; f < 4; f++ {
			a, b, d := m.faceNodes(c, f)
			key := makeFaceKey(a, b, d)
			if other, ok := faces[key]; ok {
				if m.Neighbors[other.cell][other.face] != NoNeighbor {
					return fmt.Errorf("mesh: face %v shared by more than two cells", key)
				}
				m.Neighbors[c][f] = other.cell
				m.Neighbors[other.cell][other.face] = int32(c)
				delete(faces, key)
			} else {
				faces[key] = half{cell: int32(c), face: int8(f)}
			}
		}
	}
	// Remaining unmatched faces are boundary faces.
	for _, h := range faces {
		m.FaceTags[h.cell][h.face] = Wall
	}
	return nil
}

// BuildGeometry precomputes cell volumes and centroids and fixes cell vertex
// ordering so every cell has positive signed volume (the face-walking code
// and the FEM assembly rely on consistent orientation).
func (m *Mesh) BuildGeometry() error {
	m.Volumes = make([]float64, len(m.Cells))
	m.Centroids = make([]geom.Vec3, len(m.Cells))
	for c := range m.Cells {
		t := m.Tet(c)
		sv := t.SignedVolume()
		if sv < 0 {
			// Swap two vertices to flip orientation.
			m.Cells[c][0], m.Cells[c][1] = m.Cells[c][1], m.Cells[c][0]
			t = m.Tet(c)
			sv = t.SignedVolume()
		}
		if sv <= 0 {
			return fmt.Errorf("mesh: cell %d is degenerate (volume %g)", c, sv)
		}
		m.Volumes[c] = sv
		m.Centroids[c] = t.Centroid()
	}
	return nil
}

// Finalize builds topology and geometry in the right order. Orientation
// fixes in BuildGeometry permute local vertices, which changes face
// numbering, so geometry runs first and topology second.
func (m *Mesh) Finalize() error {
	if err := m.BuildGeometry(); err != nil {
		return err
	}
	return m.BuildTopology()
}

// TagBoundary reclassifies every boundary face using the supplied function,
// which receives the face centroid and the outward face normal and returns
// the desired tag.
func (m *Mesh) TagBoundary(classify func(centroid, normal geom.Vec3) BoundaryTag) {
	for c := range m.Cells {
		t := m.Tet(c)
		for f := 0; f < 4; f++ {
			if m.Neighbors[c][f] != NoNeighbor {
				continue
			}
			fv := geom.FaceVerts[f]
			p0 := t.Vertex(fv[0])
			p1 := t.Vertex(fv[1])
			p2 := t.Vertex(fv[2])
			centroid := p0.Add(p1).Add(p2).Scale(1.0 / 3)
			m.FaceTags[c][f] = classify(centroid, t.FaceNormal(f))
		}
	}
}

// TotalVolume returns the sum of all cell volumes.
func (m *Mesh) TotalVolume() float64 {
	var v float64
	for _, cv := range m.Volumes {
		v += cv
	}
	return v
}

// BoundaryFaces returns, for each tag, the list of (cell, face) pairs
// carrying it. Useful for injection (Inlet) and diagnostics.
func (m *Mesh) BoundaryFaces(tag BoundaryTag) [][2]int32 {
	var out [][2]int32
	for c := range m.Cells {
		for f := 0; f < 4; f++ {
			if m.Neighbors[c][f] == NoNeighbor && m.FaceTags[c][f] == tag {
				out = append(out, [2]int32{int32(c), int32(f)})
			}
		}
	}
	return out
}

// Check validates mesh invariants: positive volumes, symmetric neighbor
// relation, boundary faces tagged, node indices in range. Intended for tests
// and tooling, not hot paths.
func (m *Mesh) Check() error {
	for c, cell := range m.Cells {
		for _, n := range cell {
			if n < 0 || int(n) >= len(m.Nodes) {
				return fmt.Errorf("cell %d references node %d out of range", c, n)
			}
		}
	}
	if m.Volumes != nil {
		for c, v := range m.Volumes {
			if v <= 0 {
				return fmt.Errorf("cell %d has non-positive volume %g", c, v)
			}
		}
	}
	if m.Neighbors != nil {
		for c := range m.Cells {
			for f := 0; f < 4; f++ {
				n := m.Neighbors[c][f]
				if n == NoNeighbor {
					if m.FaceTags[c][f] == Interior {
						return fmt.Errorf("cell %d face %d: boundary face tagged interior", c, f)
					}
					continue
				}
				// Symmetry: n must list c as one of its neighbors.
				found := false
				for g := 0; g < 4; g++ {
					if m.Neighbors[n][g] == int32(c) {
						found = true
						break
					}
				}
				if !found {
					return fmt.Errorf("asymmetric neighbors: %d->%d", c, n)
				}
			}
		}
	}
	return nil
}

// NodeCells returns, for every node, the sorted list of cells touching it.
func (m *Mesh) NodeCells() [][]int32 {
	out := make([][]int32, len(m.Nodes))
	for c, cell := range m.Cells {
		for _, n := range cell {
			out[n] = append(out[n], int32(c))
		}
	}
	for n := range out {
		sort.Slice(out[n], func(i, j int) bool { return out[n][i] < out[n][j] })
	}
	return out
}
