package mesh

import (
	"fmt"
	"math"

	"github.com/plasma-hpc/dsmcpic/internal/geom"
)

// kuhnTets lists the 6 tetrahedra of the Kuhn triangulation of the unit
// cube, as paths from corner 0 to corner 7. Corner numbering encodes the
// (x, y, z) bits: corner = x + 2y + 4z. Because every cube is subdivided the
// same way (diagonals oriented along the global axes), faces of adjacent
// cubes triangulate identically, producing a conforming global mesh.
var kuhnTets = [6][4]int{
	{0, 1, 3, 7},
	{0, 1, 5, 7},
	{0, 2, 3, 7},
	{0, 2, 6, 7},
	{0, 4, 5, 7},
	{0, 4, 6, 7},
}

// Box builds a conforming tetrahedral mesh of the axis-aligned box
// [0,lx]x[0,ly]x[0,lz] with nx x ny x nz hexahedral cells, each split into 6
// tetrahedra (6*nx*ny*nz cells total). Boundary faces are tagged Wall;
// re-tag with TagBoundary as needed.
func Box(nx, ny, nz int, lx, ly, lz float64) (*Mesh, error) {
	if nx < 1 || ny < 1 || nz < 1 {
		return nil, fmt.Errorf("mesh: box resolution must be >= 1, got %dx%dx%d", nx, ny, nz)
	}
	keep := func(i, j, k int) bool { return true }
	return lattice(nx, ny, nz, lx, ly, lz, geom.Vec3{}, keep)
}

// Nozzle builds the 3D cylindrical-nozzle mesh of the paper's case study: a
// cylinder of radius r and length l aligned with +z, inlet disk at z=0,
// outlet disk at z=l, lateral surface tagged Wall. The cylinder cross
// section is approximated by the stair-step set of lattice cells whose
// centers lie within the radius (a documented substitution for the SALOME
// body-fitted grid; the solver only needs tagged conforming tetrahedra).
// n controls resolution: the lattice is (2n) x (2n) x nzAxial cells over the
// bounding box, so cell size is r/n transversally.
func Nozzle(n, nzAxial int, r, l float64) (*Mesh, error) {
	if n < 2 || nzAxial < 1 {
		return nil, fmt.Errorf("mesh: nozzle resolution too small (n=%d nz=%d)", n, nzAxial)
	}
	nx, ny := 2*n, 2*n
	h := r / float64(n)
	origin := geom.Vec3{X: -r, Y: -r, Z: 0}
	keep := func(i, j, k int) bool {
		cx := origin.X + (float64(i)+0.5)*h
		cy := origin.Y + (float64(j)+0.5)*h
		return cx*cx+cy*cy <= r*r
	}
	m, err := lattice(nx, ny, nzAxial, 2*r, 2*r, l, origin, keep)
	if err != nil {
		return nil, err
	}
	// Tag boundary faces by position: z=0 -> inlet, z=l -> outlet, else wall.
	ztol := 1e-9 * l
	m.TagBoundary(func(c, normal geom.Vec3) BoundaryTag {
		switch {
		case c.Z <= ztol && normal.Z < -0.5:
			return Inlet
		case c.Z >= l-ztol && normal.Z > 0.5:
			return Outlet
		default:
			return Wall
		}
	})
	return m, nil
}

// ConicalNozzle builds a diverging (or converging) nozzle: the stair-step
// cross-section radius varies linearly from rInlet at z=0 to rOutlet at
// z=l. n sets the transversal resolution relative to the larger radius.
// Boundary tagging matches Nozzle: inlet disk at z=0, outlet at z=l,
// lateral surface walls.
func ConicalNozzle(n, nzAxial int, rInlet, rOutlet, l float64) (*Mesh, error) {
	if n < 2 || nzAxial < 1 {
		return nil, fmt.Errorf("mesh: nozzle resolution too small (n=%d nz=%d)", n, nzAxial)
	}
	if rInlet <= 0 || rOutlet <= 0 {
		return nil, fmt.Errorf("mesh: radii must be positive")
	}
	rMax := math.Max(rInlet, rOutlet)
	nx, ny := 2*n, 2*n
	h := rMax / float64(n)
	origin := geom.Vec3{X: -rMax, Y: -rMax, Z: 0}
	keep := func(i, j, k int) bool {
		cx := origin.X + (float64(i)+0.5)*h
		cy := origin.Y + (float64(j)+0.5)*h
		// Layer radius at the cell-center height.
		t := (float64(k) + 0.5) / float64(nzAxial)
		r := rInlet + t*(rOutlet-rInlet)
		return cx*cx+cy*cy <= r*r
	}
	m, err := lattice(nx, ny, nzAxial, 2*rMax, 2*rMax, l, origin, keep)
	if err != nil {
		return nil, err
	}
	ztol := 1e-9 * l
	m.TagBoundary(func(c, normal geom.Vec3) BoundaryTag {
		switch {
		case c.Z <= ztol && normal.Z < -0.5:
			return Inlet
		case c.Z >= l-ztol && normal.Z > 0.5:
			return Outlet
		default:
			return Wall
		}
	})
	return m, nil
}

// lattice builds a Kuhn-triangulated tetrahedral mesh over the cells of an
// nx x ny x nz hexahedral lattice for which keep(i,j,k) is true. Nodes are
// shared between neighboring kept cells, so the result is conforming.
func lattice(nx, ny, nz int, lx, ly, lz float64, origin geom.Vec3, keep func(i, j, k int) bool) (*Mesh, error) {
	hx, hy, hz := lx/float64(nx), ly/float64(ny), lz/float64(nz)
	nodeID := make(map[[3]int]int32)
	m := &Mesh{}
	getNode := func(i, j, k int) int32 {
		key := [3]int{i, j, k}
		if id, ok := nodeID[key]; ok {
			return id
		}
		id := int32(len(m.Nodes))
		m.Nodes = append(m.Nodes, geom.Vec3{
			X: origin.X + float64(i)*hx,
			Y: origin.Y + float64(j)*hy,
			Z: origin.Z + float64(k)*hz,
		})
		nodeID[key] = id
		return id
	}
	var corners [8]int32
	kept := 0
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				if !keep(i, j, k) {
					continue
				}
				kept++
				for c := 0; c < 8; c++ {
					di, dj, dk := c&1, (c>>1)&1, (c>>2)&1
					corners[c] = getNode(i+di, j+dj, k+dk)
				}
				for _, t := range kuhnTets {
					m.Cells = append(m.Cells, [4]int32{
						corners[t[0]], corners[t[1]], corners[t[2]], corners[t[3]],
					})
				}
			}
		}
	}
	if kept == 0 {
		return nil, fmt.Errorf("mesh: keep function rejected every lattice cell")
	}
	if err := m.Finalize(); err != nil {
		return nil, err
	}
	return m, nil
}

// CylinderVolume returns the exact volume of the cylinder the nozzle mesh
// approximates; useful for convergence diagnostics.
func CylinderVolume(r, l float64) float64 { return math.Pi * r * r * l }
