package mesh

import "github.com/plasma-hpc/dsmcpic/internal/geom"

// locateEps is the barycentric tolerance for containment tests during point
// location; points within this tolerance of a face count as inside.
const locateEps = 1e-10

// FindCellWalk locates the cell containing p by walking from startCell
// across faces, always crossing the face with the most negative barycentric
// coordinate. It returns the containing cell, or -1 if the walk exits the
// domain through a boundary face or fails to converge within maxSteps
// (non-convex stair-step domains can require a brute-force fallback).
func (m *Mesh) FindCellWalk(startCell int, p geom.Vec3, maxSteps int) int {
	c := startCell
	if c < 0 || c >= len(m.Cells) {
		return -1
	}
	for step := 0; step < maxSteps; step++ {
		w := m.Tet(c).Barycentric(p)
		worst, worstW := -1, -locateEps
		for f := 0; f < 4; f++ {
			if w[f] < worstW {
				worstW = w[f]
				worst = f
			}
		}
		if worst < 0 {
			return c // all coordinates >= -eps: inside
		}
		n := m.Neighbors[c][worst]
		if n == NoNeighbor {
			return -1 // walked out of the domain
		}
		c = int(n)
	}
	return -1
}

// FindCellBrute locates the cell containing p by linear scan. O(cells); use
// only for initialization or as a fallback after FindCellWalk fails on
// non-convex domains.
func (m *Mesh) FindCellBrute(p geom.Vec3) int {
	for c := range m.Cells {
		if m.Tet(c).Contains(p, locateEps) {
			return c
		}
	}
	return -1
}

// FindFineCell locates which of the ChildrenPerCell fine cells nested in
// coarse cell c contains p. Returns the fine cell index, or -1 if p is not
// in any child (p outside the coarse cell). The nesting is exact, so
// checking the 8 children suffices — no walking needed. Ties on shared
// child faces resolve to the lowest index, deterministically.
func (r *Refinement) FindFineCell(coarseCell int, p geom.Vec3) int {
	lo, hi := r.FineCells(coarseCell)
	best, bestW := -1, -1e30
	for f := lo; f < hi; f++ {
		w := r.Fine.Tet(f).Barycentric(p)
		minW := w[0]
		for i := 1; i < 4; i++ {
			if w[i] < minW {
				minW = w[i]
			}
		}
		if minW >= -locateEps {
			return f
		}
		if minW > bestW {
			bestW = minW
			best = f
		}
	}
	// Floating-point jitter can leave p marginally outside every child even
	// though it is inside the parent; accept the nearest child in that case.
	if bestW > -1e-6 {
		return best
	}
	return -1
}
