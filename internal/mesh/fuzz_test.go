package mesh

import (
	"bytes"
	"testing"
)

// FuzzLoad feeds arbitrary bytes to the binary mesh loader: it must either
// return an error or a mesh passing Check, never panic.
func FuzzLoad(f *testing.F) {
	m, err := Box(1, 1, 1, 1, 1, 1)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("dsmcMSH1 garbage"))
	// Corrupt a node id.
	corrupt := append([]byte(nil), valid...)
	if len(corrupt) > 200 {
		corrupt[190] = 0xff
	}
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, b []byte) {
		loaded, err := Load(bytes.NewReader(b))
		if err != nil {
			return
		}
		if err := loaded.Check(); err != nil {
			t.Fatalf("loaded mesh fails invariants: %v", err)
		}
	})
}
