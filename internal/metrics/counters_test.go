package metrics

import (
	"reflect"
	"testing"
)

func TestSortedNames(t *testing.T) {
	got := SortedNames(map[string]int64{"poisson_iters": 3, "collisions": 1, "reactions": 2})
	want := []string{"collisions", "poisson_iters", "reactions"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("SortedNames = %v, want %v", got, want)
	}
	if got := SortedNames(map[string]float64(nil)); len(got) != 0 {
		t.Fatalf("SortedNames(nil) = %v, want empty", got)
	}
}
