package metrics

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// fakeClock advances a fixed amount per reading, making every duration
// and export byte deterministic.
func fakeClock(stepNs int64) Clock {
	var now int64
	return func() int64 {
		now += stepNs
		return now
	}
}

func TestRegistryTimersAndCounters(t *testing.T) {
	c := NewCollector(2, fakeClock(10))
	r := c.Rank(1)

	r.BeginStep(0)
	stop := r.Time("Move")
	stop()
	stop() // double-stop is ignored
	r.Count("particles", 42)
	r.Count("particles", 8)
	r.EndStep()

	r.BeginStep(1)
	r.Time("Move")() // 10ns
	r.Time("Move")() // a second interval of the same phase
	r.Time("Poisson")()
	sec := r.StepPhaseSeconds()
	if got := sec["Move"]; got != 20e-9 {
		t.Errorf("Move step seconds = %v, want 20ns", got)
	}
	if got := sec["Poisson"]; got != 10e-9 {
		t.Errorf("Poisson step seconds = %v, want 10ns", got)
	}
	r.EndStep()

	steps := r.Steps()
	if len(steps) != 2 {
		t.Fatalf("steps = %d, want 2", len(steps))
	}
	if len(steps[0].Phases) != 1 || steps[0].Phases[0].Dur != 10 {
		t.Errorf("step 0 phases = %+v", steps[0].Phases)
	}
	if steps[0].Counters["particles"] != 50 {
		t.Errorf("particles counter = %d, want 50", steps[0].Counters["particles"])
	}
	if len(steps[1].Phases) != 3 {
		t.Errorf("step 1 phases = %+v", steps[1].Phases)
	}

	durs := c.PhaseDurations()
	if got := len(durs["Move"]); got != 2 { // one sample per (rank, step)
		t.Errorf("Move duration samples = %d, want 2", got)
	}
	if tot := c.CounterTotals()["particles"]; tot != 50 {
		t.Errorf("counter total = %d, want 50", tot)
	}
}

// TestNilSafety pins the no-op contract instrumented code relies on: a
// nil collector hands out nil registries whose every method is safe.
func TestNilSafety(t *testing.T) {
	var c *Collector
	r := c.Rank(0)
	r.BeginStep(0)
	r.Time("X")()
	r.Count("n", 1)
	if r.StepPhaseSeconds() != nil {
		t.Error("nil registry returned non-nil seconds")
	}
	r.EndStep()
	if err := c.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Error(err)
	}
	if err := c.WriteChromeTrace(&bytes.Buffer{}); err != nil {
		t.Error(err)
	}
}

// TestTimerSurvivesStepRollover: a stop called after the next BeginStep
// (and after enough appends to relocate the record slice) still lands the
// sample in the step it started in.
func TestTimerSurvivesStepRollover(t *testing.T) {
	c := NewCollector(1, fakeClock(1))
	r := c.Rank(0)
	r.BeginStep(0)
	stop := r.Time("Spanning")
	for s := 1; s < 50; s++ {
		r.BeginStep(s)
	}
	stop()
	if n := len(r.Steps()[0].Phases); n != 1 {
		t.Fatalf("step 0 has %d phases, want the spanning sample", n)
	}
	for s := 1; s < 50; s++ {
		if n := len(r.Steps()[s].Phases); n != 0 {
			t.Fatalf("step %d has %d phases, want 0", s, n)
		}
	}
}

func TestWriteJSONLDeterministic(t *testing.T) {
	build := func() *Collector {
		c := NewCollector(2, fakeClock(7))
		for rank := 0; rank < 2; rank++ {
			r := c.Rank(rank)
			for s := 0; s < 3; s++ {
				r.BeginStep(s)
				r.Time("Move")()
				r.Count("particles", int64(100*rank+s))
				r.Count("bytes", 9)
				r.EndStep()
			}
		}
		return c
	}
	var a, b bytes.Buffer
	if err := build().WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("identical collectors exported different JSONL bytes")
	}
	lines := strings.Split(strings.TrimSpace(a.String()), "\n")
	if len(lines) != 6 {
		t.Fatalf("lines = %d, want 2 ranks x 3 steps", len(lines))
	}
	var rec struct {
		Rank     int              `json:"rank"`
		Step     int              `json:"step"`
		Phases   []map[string]any `json:"phases"`
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal([]byte(lines[4]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Rank != 1 || rec.Step != 1 || len(rec.Phases) != 1 || rec.Counters["particles"] != 101 {
		t.Errorf("line 4 = %+v", rec)
	}
}

func TestWriteChromeTraceParses(t *testing.T) {
	c := NewCollector(2, fakeClock(500))
	for rank := 0; rank < 2; rank++ {
		r := c.Rank(rank)
		r.BeginStep(0)
		r.Time("Inject")()
		r.Time("Poisson_Solve")()
		r.Count("particles", 10)
		r.EndStep()
	}
	var buf bytes.Buffer
	if err := c.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Tid  int     `json:"tid"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var slices, meta, counters int
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "X":
			slices++
			if e.Dur <= 0 {
				t.Errorf("slice %q has non-positive duration %v", e.Name, e.Dur)
			}
		case "M":
			meta++
		case "C":
			counters++
		}
	}
	if slices != 4 || meta != 2 || counters != 2 {
		t.Errorf("events: %d slices, %d metadata, %d counters (want 4/2/2)", slices, meta, counters)
	}
}

func TestCounterTotal(t *testing.T) {
	c := NewCollector(1, fakeClock(10))
	r := c.Rank(0)
	r.BeginStep(0)
	r.Count("Poisson_Iters", 12)
	r.Count("Poisson_Iters", 13)
	r.EndStep()
	r.BeginStep(1)
	r.Count("Poisson_Iters", 25)
	r.Count("other", 7)
	r.EndStep()
	if got := r.CounterTotal("Poisson_Iters"); got != 50 {
		t.Errorf("CounterTotal = %d, want 50", got)
	}
	if got := r.CounterTotal("missing"); got != 0 {
		t.Errorf("missing counter = %d, want 0", got)
	}
	var nilReg *Registry
	if got := nilReg.CounterTotal("x"); got != 0 {
		t.Errorf("nil registry = %d, want 0", got)
	}
}

// TestGauges pins gauge semantics: levels overwrite within a step,
// GaugeLast returns the most recent setting across steps, nil registries
// are safe, and set gauges ride the JSONL export.
func TestGauges(t *testing.T) {
	c := NewCollector(1, fakeClock(1))
	r := c.Rank(0)
	if _, ok := r.GaugeLast("mem"); ok {
		t.Error("unset gauge reported as set")
	}
	r.Gauge("mem", 5) // no open step: dropped
	r.BeginStep(0)
	r.Gauge("mem", 10)
	r.Gauge("mem", 20) // overwrite, not accumulate
	r.EndStep()
	r.BeginStep(1)
	r.EndStep() // step without the gauge: last value carries
	if v, ok := r.GaugeLast("mem"); !ok || v != 20 {
		t.Errorf("GaugeLast = %d,%v, want 20,true", v, ok)
	}
	r.BeginStep(2)
	r.Gauge("mem", 7)
	r.EndStep()
	if v, _ := r.GaugeLast("mem"); v != 7 {
		t.Errorf("GaugeLast after update = %d, want 7", v)
	}
	if got := r.Steps()[0].Gauges["mem"]; got != 20 {
		t.Errorf("step 0 gauge = %d, want 20", got)
	}

	var buf bytes.Buffer
	if err := c.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"gauges":{"mem":20}`) {
		t.Errorf("JSONL missing gauges: %s", buf.String())
	}

	var nilReg *Registry
	nilReg.Gauge("mem", 1)
	if _, ok := nilReg.GaugeLast("mem"); ok {
		t.Error("nil registry reported a gauge")
	}
}
