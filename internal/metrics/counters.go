package metrics

import "sort"

// SortedNames returns the keys of a counter map in sorted order — the
// shared rendering primitive for every deterministic exporter in the
// tree (the Chrome-trace counter events, the daemon's /metrics text, the
// store's persisted counters). Iterating a Go map directly would emit a
// different byte order every run, which both the nondeterminism analyzer
// and the byte-identical-replay tests treat as a bug.
func SortedNames[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
