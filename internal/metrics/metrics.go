// Package metrics is the per-rank observability layer of the solver: a
// registry of step-scoped phase timers (Inject, DSMC_Move, the exchanges,
// Poisson_Solve, Rebalance, ...) and named counters, with exporters to a
// JSONL time series and to the Chrome trace-event format so a whole
// multi-rank run can be inspected in chrome://tracing or Perfetto.
//
// Design constraints, in order:
//
//  1. Observe-only by default. Recording timings must not change what the
//     solver communicates: a run with a Collector attached produces
//     byte-identical traffic counters and checkpoints to a run without
//     one (pinned by core's TestReplayByteIdentical).
//  2. Deterministic packages never read the wall clock. The clock is
//     injected at construction (the balance.Balancer.Clock pattern):
//     NewCollector wires a monotonic default, tests inject a fake, and
//     internal/core only forwards Registry method calls — so the commvet
//     nondeterminism analyzer stays clean if core ever joins its set.
//  3. One writer per registry. Each rank's goroutine writes only its own
//     Registry (like simmpi.Counter); exporters read after the world's
//     Run returns. No locking, no contention on the hot path.
//
// Measured phase times may optionally *drive* the load balancer (the
// timer-augmented cost function of McDoniel & Bientinesi, substituting
// measured per-phase seconds for the modeled ones in the lii decision);
// that substitution is the caller's explicit opt-in (core's
// Config.MeasuredLB), because it trades byte-identical replay for
// responsiveness to the real machine.
package metrics

import "time"

// Clock returns a monotonic reading in nanoseconds. Only differences of
// readings are meaningful; the epoch is the collector's construction.
type Clock func() int64

// monotonicClock returns a Clock anchored at construction time, backed by
// the runtime's monotonic reading (immune to wall-clock steps).
func monotonicClock() Clock {
	base := time.Now()
	return func() int64 { return int64(time.Since(base)) }
}

// PhaseSample is one timed interval of one phase within a step. A phase
// may be sampled several times per step (e.g. PIC_Exchange once per PIC
// substep); exporters and aggregators sum or keep the samples as suits
// them.
type PhaseSample struct {
	Name  string
	Start int64 // ns since the collector epoch
	Dur   int64 // ns
}

// StepRecord is everything one rank recorded during one step.
type StepRecord struct {
	Step     int
	Phases   []PhaseSample
	Counters map[string]int64
	// Gauges are point-in-time level readings (resident bytes, queue
	// depths): unlike Counters they overwrite rather than accumulate
	// within a step, and aggregating across steps takes the last value,
	// not a sum.
	Gauges map[string]int64
}

// Registry collects one rank's samples. Zero value is not usable; obtain
// registries from a Collector. All methods are nil-safe no-ops on a nil
// receiver, so instrumented code needs no "metrics enabled?" branches.
type Registry struct {
	rank  int
	clock Clock
	steps []StepRecord
	open  bool
}

// Rank returns the rank this registry records for.
func (r *Registry) Rank() int {
	if r == nil {
		return -1
	}
	return r.rank
}

// BeginStep opens a new step record. Steps must be opened in increasing
// order; an already-open step is closed first.
func (r *Registry) BeginStep(step int) {
	if r == nil {
		return
	}
	r.EndStep()
	r.steps = append(r.steps, StepRecord{Step: step, Counters: make(map[string]int64)})
	r.open = true
}

// EndStep closes the current step record (no-op when none is open).
func (r *Registry) EndStep() {
	if r == nil {
		return
	}
	r.open = false
}

// cur returns the open step record, or nil.
func (r *Registry) cur() *StepRecord {
	if r == nil || !r.open {
		return nil
	}
	return &r.steps[len(r.steps)-1]
}

// Time starts a timer for the named phase and returns the function that
// stops it, recording one PhaseSample in the current step:
//
//	stop := reg.Time("DSMC_Move")
//	... phase work ...
//	stop()
//
// Without an open step (or on a nil registry) the returned stop is a
// no-op.
func (r *Registry) Time(name string) func() {
	if r.cur() == nil {
		return func() {}
	}
	// Remember the step by index, not by pointer: BeginStep may grow the
	// slice (relocating records) while a timer is open, and the sample
	// belongs to the step it started in.
	idx := len(r.steps) - 1
	start := r.clock()
	done := false
	return func() {
		if done { // double-stop keeps the first sample
			return
		}
		done = true
		sr := &r.steps[idx]
		sr.Phases = append(sr.Phases, PhaseSample{Name: name, Start: start, Dur: r.clock() - start})
	}
}

// Count adds v to the named counter of the current step (no-op without an
// open step).
func (r *Registry) Count(name string, v int64) {
	if sr := r.cur(); sr != nil {
		sr.Counters[name] += v
	}
}

// Gauge sets the named gauge of the current step to v — a level, not a
// delta: the latest call in a step wins (no-op without an open step).
func (r *Registry) Gauge(name string, v int64) {
	if sr := r.cur(); sr != nil {
		if sr.Gauges == nil {
			sr.Gauges = make(map[string]int64)
		}
		sr.Gauges[name] = v
	}
}

// GaugeLast returns the most recent recorded value of the named gauge
// across all steps, and whether it was ever set. Nil registry returns
// (0, false).
func (r *Registry) GaugeLast(name string) (int64, bool) {
	if r == nil {
		return 0, false
	}
	for i := len(r.steps) - 1; i >= 0; i-- {
		if v, ok := r.steps[i].Gauges[name]; ok {
			return v, true
		}
	}
	return 0, false
}

// CounterTotal sums the named counter over every recorded step. Useful for
// per-rank-identical counters (solver iterations, residuals) where summing
// across ranks — Collector.CounterTotals — would multiply by the world
// size. Nil registry returns 0.
func (r *Registry) CounterTotal(name string) int64 {
	if r == nil {
		return 0
	}
	var total int64
	for i := range r.steps {
		total += r.steps[i].Counters[name]
	}
	return total
}

// StepPhaseSeconds sums the current (open) step's samples by phase name,
// in seconds — the quantity the timer-augmented load balancer consumes.
// Nil registry or no open step returns nil.
func (r *Registry) StepPhaseSeconds() map[string]float64 {
	sr := r.cur()
	if sr == nil {
		return nil
	}
	out := make(map[string]float64, len(sr.Phases))
	for _, p := range sr.Phases {
		out[p.Name] += float64(p.Dur) / 1e9
	}
	return out
}

// Steps returns the closed-over record slice (read-only; valid once the
// rank's goroutine has finished).
func (r *Registry) Steps() []StepRecord {
	if r == nil {
		return nil
	}
	return r.steps
}

// Collector owns one Registry per rank. Construct before a run, attach to
// the run's configuration, export after.
type Collector struct {
	ranks []*Registry
}

// NewCollector builds a collector for n ranks. A nil clock wires the
// monotonic default; tests inject a deterministic fake.
func NewCollector(n int, clock Clock) *Collector {
	if clock == nil {
		clock = monotonicClock()
	}
	c := &Collector{ranks: make([]*Registry, n)}
	for i := range c.ranks {
		c.ranks[i] = &Registry{rank: i, clock: clock}
	}
	return c
}

// Rank returns rank r's registry. Nil collector yields a nil registry, on
// which every method is a no-op.
func (c *Collector) Rank(r int) *Registry {
	if c == nil {
		return nil
	}
	return c.ranks[r]
}

// Size returns the number of ranks.
func (c *Collector) Size() int {
	if c == nil {
		return 0
	}
	return len(c.ranks)
}

// PhaseDurations flattens all ranks and steps into per-phase duration
// samples (seconds): one sample per (rank, step) summing that step's
// intervals of the phase. This is the population cmd/bench takes medians
// over — the per-step per-rank time is what bulk-synchronous balance
// arguments reason about, not individual sub-intervals.
func (c *Collector) PhaseDurations() map[string][]float64 {
	out := make(map[string][]float64)
	if c == nil {
		return out
	}
	for _, reg := range c.ranks {
		for _, sr := range reg.steps {
			sums := make(map[string]float64)
			for _, p := range sr.Phases {
				sums[p.Name] += float64(p.Dur) / 1e9
			}
			for name, s := range sums {
				out[name] = append(out[name], s)
			}
		}
	}
	return out
}

// CounterTotals sums every counter over all ranks and steps.
func (c *Collector) CounterTotals() map[string]int64 {
	out := make(map[string]int64)
	if c == nil {
		return out
	}
	for _, reg := range c.ranks {
		for _, sr := range reg.steps {
			for name, v := range sr.Counters {
				out[name] += v
			}
		}
	}
	return out
}
