package metrics

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Export formats. Both walk ranks and steps in order and sort counter
// keys, so exporting the same collector twice yields identical bytes.

// jsonlRecord is the wire shape of one JSONL line: one (rank, step).
type jsonlRecord struct {
	Rank     int              `json:"rank"`
	Step     int              `json:"step"`
	Phases   []jsonlPhase     `json:"phases"`
	Counters map[string]int64 `json:"counters,omitempty"`
	Gauges   map[string]int64 `json:"gauges,omitempty"`
}

type jsonlPhase struct {
	Name    string `json:"name"`
	StartNs int64  `json:"start_ns"`
	DurNs   int64  `json:"dur_ns"`
}

// WriteJSONL emits the time series as JSON Lines: one object per (rank,
// step), ranks in order within each step file-wise (all of rank 0's steps,
// then rank 1's, ...). Each line carries the step's phase intervals
// (repeated names = repeated intervals, e.g. per PIC substep) and its
// counters. Schema: {"rank":int, "step":int,
// "phases":[{"name","start_ns","dur_ns"}...], "counters":{name:int64}}.
func (c *Collector) WriteJSONL(w io.Writer) error {
	if c == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, reg := range c.ranks {
		for _, sr := range reg.steps {
			rec := jsonlRecord{Rank: reg.rank, Step: sr.Step, Phases: make([]jsonlPhase, len(sr.Phases))}
			for i, p := range sr.Phases {
				rec.Phases[i] = jsonlPhase{Name: p.Name, StartNs: p.Start, DurNs: p.Dur}
			}
			if len(sr.Counters) > 0 {
				rec.Counters = sr.Counters
			}
			if len(sr.Gauges) > 0 {
				rec.Gauges = sr.Gauges
			}
			if err := enc.Encode(&rec); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// traceEvent is one Chrome trace-event ("Trace Event Format", the JSON
// consumed by chrome://tracing and Perfetto). "X" = complete event with
// explicit duration; "M" = metadata. Timestamps/durations in microseconds.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace emits the whole run as a Chrome trace: one pseudo
// process, one thread per rank, one complete ("X") slice per phase
// interval, plus per-step counter ("C") tracks so particle counts and
// exchanged bytes plot as graphs alongside the slices. Load the file in
// chrome://tracing or https://ui.perfetto.dev.
func (c *Collector) WriteChromeTrace(w io.Writer) error {
	if c == nil {
		return nil
	}
	const pid = 1
	var events []traceEvent
	for _, reg := range c.ranks {
		events = append(events, traceEvent{
			Name: "thread_name", Ph: "M", Pid: pid, Tid: reg.rank,
			Args: map[string]any{"name": fmt.Sprintf("rank %d", reg.rank)},
		})
		for _, sr := range reg.steps {
			for _, p := range sr.Phases {
				events = append(events, traceEvent{
					Name: p.Name, Cat: "phase", Ph: "X",
					Ts: float64(p.Start) / 1e3, Dur: float64(p.Dur) / 1e3,
					Pid: pid, Tid: reg.rank,
					Args: map[string]any{"step": sr.Step},
				})
			}
			if len(sr.Phases) == 0 || len(sr.Counters) == 0 {
				continue
			}
			// Counter events are stamped at the step's first phase start.
			ts := float64(sr.Phases[0].Start) / 1e3
			for _, name := range SortedNames(sr.Counters) {
				events = append(events, traceEvent{
					Name: name, Ph: "C", Ts: ts, Pid: pid, Tid: reg.rank,
					Args: map[string]any{"value": sr.Counters[name]},
				})
			}
		}
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"traceEvents":[`); err != nil {
		return err
	}
	enc := json.NewEncoder(bw)
	enc.SetEscapeHTML(false)
	for i := range events {
		if i > 0 {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		// Encoder appends a newline per event, giving a readable file.
		if err := enc.Encode(&events[i]); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("],\"displayTimeUnit\":\"ms\"}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
