// Package vtkio writes legacy-format VTK unstructured-grid files for
// visualizing tetrahedral meshes and the scalar/vector fields the solver
// produces (ParaView/VisIt-compatible). Only output is supported.
package vtkio

import (
	"bufio"
	"fmt"
	"io"

	"github.com/plasma-hpc/dsmcpic/internal/geom"
	"github.com/plasma-hpc/dsmcpic/internal/mesh"
)

// Writer assembles one VTK dataset: a mesh plus optional cell and point
// data arrays.
type Writer struct {
	Title string
	Mesh  *mesh.Mesh

	cellScalars []namedScalars
	cellVectors []namedVectors
	pointData   []namedScalars
}

type namedScalars struct {
	name string
	data []float64
}

type namedVectors struct {
	name string
	data []geom.Vec3
}

// NewWriter creates a writer for the given mesh.
func NewWriter(title string, m *mesh.Mesh) *Writer {
	return &Writer{Title: title, Mesh: m}
}

// AddCellScalars attaches a per-cell scalar field (len == NumCells).
func (w *Writer) AddCellScalars(name string, data []float64) *Writer {
	w.cellScalars = append(w.cellScalars, namedScalars{name, data})
	return w
}

// AddCellVectors attaches a per-cell vector field (len == NumCells).
func (w *Writer) AddCellVectors(name string, data []geom.Vec3) *Writer {
	w.cellVectors = append(w.cellVectors, namedVectors{name, data})
	return w
}

// AddPointScalars attaches a per-node scalar field (len == NumNodes).
func (w *Writer) AddPointScalars(name string, data []float64) *Writer {
	w.pointData = append(w.pointData, namedScalars{name, data})
	return w
}

// Write emits the dataset.
func (w *Writer) Write(out io.Writer) error {
	m := w.Mesh
	for _, s := range w.cellScalars {
		if len(s.data) != m.NumCells() {
			return fmt.Errorf("vtkio: cell scalars %q has %d values for %d cells", s.name, len(s.data), m.NumCells())
		}
	}
	for _, v := range w.cellVectors {
		if len(v.data) != m.NumCells() {
			return fmt.Errorf("vtkio: cell vectors %q has %d values for %d cells", v.name, len(v.data), m.NumCells())
		}
	}
	for _, s := range w.pointData {
		if len(s.data) != m.NumNodes() {
			return fmt.Errorf("vtkio: point scalars %q has %d values for %d nodes", s.name, len(s.data), m.NumNodes())
		}
	}
	bw := bufio.NewWriter(out)
	fmt.Fprintln(bw, "# vtk DataFile Version 3.0")
	fmt.Fprintln(bw, w.Title)
	fmt.Fprintln(bw, "ASCII")
	fmt.Fprintln(bw, "DATASET UNSTRUCTURED_GRID")
	fmt.Fprintf(bw, "POINTS %d double\n", m.NumNodes())
	for _, p := range m.Nodes {
		fmt.Fprintf(bw, "%g %g %g\n", p.X, p.Y, p.Z)
	}
	fmt.Fprintf(bw, "CELLS %d %d\n", m.NumCells(), 5*m.NumCells())
	for _, c := range m.Cells {
		fmt.Fprintf(bw, "4 %d %d %d %d\n", c[0], c[1], c[2], c[3])
	}
	fmt.Fprintf(bw, "CELL_TYPES %d\n", m.NumCells())
	for range m.Cells {
		fmt.Fprintln(bw, "10") // VTK_TETRA
	}
	if len(w.cellScalars)+len(w.cellVectors) > 0 {
		fmt.Fprintf(bw, "CELL_DATA %d\n", m.NumCells())
		for _, s := range w.cellScalars {
			fmt.Fprintf(bw, "SCALARS %s double 1\n", s.name)
			fmt.Fprintln(bw, "LOOKUP_TABLE default")
			for _, v := range s.data {
				fmt.Fprintf(bw, "%g\n", v)
			}
		}
		for _, vv := range w.cellVectors {
			fmt.Fprintf(bw, "VECTORS %s double\n", vv.name)
			for _, v := range vv.data {
				fmt.Fprintf(bw, "%g %g %g\n", v.X, v.Y, v.Z)
			}
		}
	}
	if len(w.pointData) > 0 {
		fmt.Fprintf(bw, "POINT_DATA %d\n", m.NumNodes())
		for _, s := range w.pointData {
			fmt.Fprintf(bw, "SCALARS %s double 1\n", s.name)
			fmt.Fprintln(bw, "LOOKUP_TABLE default")
			for _, v := range s.data {
				fmt.Fprintf(bw, "%g\n", v)
			}
		}
	}
	return bw.Flush()
}
