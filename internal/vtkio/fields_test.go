package vtkio

import (
	"bytes"
	"strings"
	"testing"

	"github.com/plasma-hpc/dsmcpic/internal/mesh"
)

func TestWriteFieldFrame(t *testing.T) {
	coarse := testMesh(t)
	ref, err := mesh.RefineUniform(coarse)
	if err != nil {
		t.Fatal(err)
	}
	phi := make([]float64, ref.Fine.NumNodes())
	for i := range phi {
		phi[i] = float64(i)
	}
	nc := ref.Coarse.NumCells()
	density := make([]float64, nc)
	temperature := make([]float64, nc)
	for c := 0; c < nc; c++ {
		density[c] = float64(c + 1)
		temperature[c] = 300
	}
	var buf bytes.Buffer
	if err := WriteFieldFrame(&buf, "step 3", ref, phi, density, temperature); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"step 3",
		"SCALARS phi double 1",
		"SCALARS density double 1",
		"SCALARS temperature double 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
	// Expansion: every fine child of coarse cell 0 carries density 1.
	lo, hi := ref.FineCells(0)
	if hi-lo != mesh.ChildrenPerCell {
		t.Fatalf("unexpected nesting %d", hi-lo)
	}

	// Size mismatches must be rejected, not written.
	if err := WriteFieldFrame(&buf, "bad", ref, phi[:1], density, temperature); err == nil {
		t.Fatal("short phi accepted")
	}
	if err := WriteFieldFrame(&buf, "bad", ref, phi, density[:1], temperature); err == nil {
		t.Fatal("short density accepted")
	}
}
