package vtkio

import (
	"fmt"
	"io"

	"github.com/plasma-hpc/dsmcpic/internal/mesh"
)

// WriteFieldFrame emits one field snapshot as a single VTK dataset on the
// fine grid: phi as point scalars, and the per-coarse-cell density and
// temperature expanded onto the nested fine cells (each fine cell
// inherits its parent's value), so one ParaView dataset animates all
// three fields. title conventionally carries the step index.
func WriteFieldFrame(out io.Writer, title string, ref *mesh.Refinement, phi, density, temperature []float64) error {
	if len(phi) != ref.Fine.NumNodes() {
		return fmt.Errorf("vtkio: phi has %d values for %d fine nodes", len(phi), ref.Fine.NumNodes())
	}
	nc := ref.Coarse.NumCells()
	if len(density) != nc || len(temperature) != nc {
		return fmt.Errorf("vtkio: cell fields sized %d/%d for %d coarse cells", len(density), len(temperature), nc)
	}
	expand := func(coarse []float64) []float64 {
		fine := make([]float64, ref.Fine.NumCells())
		for c := 0; c < nc; c++ {
			lo, hi := ref.FineCells(c)
			for f := lo; f < hi; f++ {
				fine[f] = coarse[c]
			}
		}
		return fine
	}
	w := NewWriter(title, ref.Fine)
	w.AddPointScalars("phi", phi)
	w.AddCellScalars("density", expand(density))
	w.AddCellScalars("temperature", expand(temperature))
	return w.Write(out)
}
