package vtkio

import (
	"bytes"
	"strings"
	"testing"

	"github.com/plasma-hpc/dsmcpic/internal/geom"
	"github.com/plasma-hpc/dsmcpic/internal/mesh"
)

func testMesh(t *testing.T) *mesh.Mesh {
	t.Helper()
	m, err := mesh.Box(1, 1, 1, 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestWriteMeshOnly(t *testing.T) {
	m := testMesh(t)
	var buf bytes.Buffer
	if err := NewWriter("test", m).Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# vtk DataFile Version 3.0",
		"DATASET UNSTRUCTURED_GRID",
		"POINTS 8 double",
		"CELLS 6 30",
		"CELL_TYPES 6",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
	if strings.Contains(out, "CELL_DATA") || strings.Contains(out, "POINT_DATA") {
		t.Error("unexpected data sections")
	}
	// Line count sanity: header(4) + points(1+8) + cells(1+6) + types(1+6).
	if lines := strings.Count(out, "\n"); lines != 27 {
		t.Errorf("line count = %d", lines)
	}
}

func TestWriteWithFields(t *testing.T) {
	m := testMesh(t)
	dens := make([]float64, m.NumCells())
	efield := make([]geom.Vec3, m.NumCells())
	phi := make([]float64, m.NumNodes())
	for c := range dens {
		dens[c] = float64(c)
		efield[c] = geom.V(float64(c), 0, -1)
	}
	var buf bytes.Buffer
	err := NewWriter("fields", m).
		AddCellScalars("density", dens).
		AddCellVectors("E", efield).
		AddPointScalars("phi", phi).
		Write(&buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"CELL_DATA 6", "SCALARS density double 1", "VECTORS E double",
		"POINT_DATA 8", "SCALARS phi double 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestWriteRejectsWrongLengths(t *testing.T) {
	m := testMesh(t)
	var buf bytes.Buffer
	if err := NewWriter("bad", m).AddCellScalars("x", make([]float64, 3)).Write(&buf); err == nil {
		t.Error("short cell scalars accepted")
	}
	if err := NewWriter("bad", m).AddCellVectors("v", make([]geom.Vec3, 99)).Write(&buf); err == nil {
		t.Error("long cell vectors accepted")
	}
	if err := NewWriter("bad", m).AddPointScalars("p", make([]float64, 1)).Write(&buf); err == nil {
		t.Error("short point scalars accepted")
	}
}
