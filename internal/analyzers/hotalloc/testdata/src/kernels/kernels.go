// Fixture for the hotalloc analyzer: allocation patterns in marked and
// unmarked functions.
package kernels

type state struct {
	pos []float64
	out []int
}

//commvet:hot
func badAppend(s *state, xs []float64) {
	for i := range xs {
		s.out = append(s.out, i) // want "append in hot function may reallocate"
	}
}

//commvet:hot
func badPreallocMake(xs []float64) []int {
	// The make itself is flagged (it still allocates once per call); the
	// appends to the visibly-preallocated slice stay exempt, so the
	// function reports exactly once — at the make.
	out := make([]int, 0, len(xs)) // want "slice make in hot function allocates every sweep"
	for i := range xs {
		out = append(out, i)
	}
	return out
}

//commvet:hot
func goodScratchParam(scratch []int, xs []float64) {
	// Caller-owned scratch: no allocation in the hot function at all.
	// The make lives in a non-hot helper on the caller's side.
	for i := range xs {
		scratch[i] = i
	}
}

//commvet:hot
func goodReuse(buf []int, xs []float64) []int {
	// append(buf[:0], ...) reuses the caller's backing array.
	return append(buf[:0], len(xs))
}

//commvet:hot
func badMapLiteral(xs []float64) {
	for range xs {
		m := map[int]int{} // want "map literal in hot function allocates"
		_ = m
	}
}

//commvet:hot
func badMakeMap(xs []float64) {
	counts := make(map[int]int) // want "make\(map\) in hot function allocates"
	for i := range xs {
		counts[i]++
	}
}

//commvet:hot
func badClosure(xs []float64) float64 {
	var sum float64
	visit := func(v float64) { sum += v } // want "closure in hot function allocates"
	for _, v := range xs {
		visit(v)
	}
	return sum
}

//commvet:hot
func suppressed(xs []float64) []int {
	var out []int
	for i := range xs {
		out = append(out, i) //commvet:ignore hotalloc fixture exercises the escape hatch
	}
	return out
}

// Unmarked: the same patterns are fine outside hot paths.
func coldAppend(xs []float64) []int {
	var out []int
	for i := range xs {
		out = append(out, i)
	}
	return out
}
