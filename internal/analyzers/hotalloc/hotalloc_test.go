package hotalloc_test

import (
	"testing"

	"github.com/plasma-hpc/dsmcpic/internal/analysis/analysistest"
	"github.com/plasma-hpc/dsmcpic/internal/analyzers/hotalloc"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "testdata", hotalloc.Analyzer, "kernels")
}
