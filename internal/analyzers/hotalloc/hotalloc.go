// Package hotalloc flags per-iteration heap allocations inside functions
// marked with a "//commvet:hot" doc-comment directive — the per-step
// particle loops (push/move/deposit/collide) whose cost the paper's
// balance model assumes is pure compute. An allocation there turns into
// GC pressure proportional to particle count × steps, and pre-SoA kernel
// work needs these paths allocation-clean.
//
// Flagged in hot functions:
//
//   - append whose base is not visibly preallocated (a make with an
//     explicit length/capacity in this function, or a buf[:0]-style
//     reuse slice);
//   - map allocations: map composite literals and make(map...);
//   - function literals (closures capture and escape);
//   - slice makes: make([]T, ...) in a hot function allocates every
//     sweep, even when it sits before the particle loop — a fresh
//     dead-flag or scratch vector per call is GC pressure proportional
//     to steps. Hoist the buffer into caller-owned scratch (a struct
//     field or parameter) and reuse it; the non-hot scratch helper is
//     where the make belongs.
//
// Suppress deliberate allocations with
// "//commvet:ignore hotalloc <reason>". Runs over test files too — hot
// helpers shared by benchmarks keep the same discipline.
package hotalloc

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/plasma-hpc/dsmcpic/internal/analysis"
)

// hotDirective marks a function as allocation-sensitive.
const hotDirective = "//commvet:hot"

// Analyzer is the hotalloc pass.
var Analyzer = &analysis.Analyzer{
	Name:       "hotalloc",
	Doc:        "flag heap allocations (append without prealloc, slice/map makes, map literals, closures) in functions marked //commvet:hot",
	Run:        run,
	RunOnTests: true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHot(fd.Doc) {
				continue
			}
			checkHot(pass, fd.Body)
		}
	}
	return nil, nil
}

// isHot reports whether the doc comment carries the hot directive.
func isHot(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == hotDirective || strings.HasPrefix(c.Text, hotDirective+" ") {
			return true
		}
	}
	return false
}

// isMake reports whether call is the builtin make.
func isMake(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "make"
}

// preallocated collects the objects of variables assigned from a make
// call with an explicit length (and optionally capacity): appends to
// them show sizing intent and are exempt.
func preallocated(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	mark := func(id *ast.Ident) {
		if obj := info.Defs[id]; obj != nil {
			out[obj] = true
		} else if obj := info.Uses[id]; obj != nil {
			out[obj] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Rhs) != len(st.Lhs) {
				return true
			}
			for i, rhs := range st.Rhs {
				if call, ok := rhs.(*ast.CallExpr); ok && isMake(info, call) && len(call.Args) >= 2 {
					if id, ok := st.Lhs[i].(*ast.Ident); ok {
						mark(id)
					}
				}
			}
		case *ast.ValueSpec:
			for i, v := range st.Values {
				if call, ok := v.(*ast.CallExpr); ok && isMake(info, call) && len(call.Args) >= 2 {
					mark(st.Names[i])
				}
			}
		}
		return true
	})
	return out
}

func checkHot(pass *analysis.Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo
	prealloc := preallocated(info, body)
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(x.Pos(), "closure in hot function allocates (captures escape); hoist the function literal out of the hot path")
			return false
		case *ast.CompositeLit:
			if t := info.TypeOf(x); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					pass.Reportf(x.Pos(), "map literal in hot function allocates; hoist the map out of the hot path and reuse it")
				}
			}
		case *ast.CallExpr:
			if isMake(info, x) {
				if t := info.TypeOf(x); t != nil {
					switch t.Underlying().(type) {
					case *types.Map:
						pass.Reportf(x.Pos(), "make(map) in hot function allocates; hoist the map out of the hot path and reuse it")
					case *types.Slice:
						pass.Reportf(x.Pos(), "slice make in hot function allocates every sweep; hoist the buffer into caller-owned scratch and reuse it")
					}
				}
				return true
			}
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "append" && len(x.Args) > 0 {
					switch base := ast.Unparen(x.Args[0]).(type) {
					case *ast.SliceExpr:
						// append(buf[:0], ...) reuse idiom: exempt.
						return true
					case *ast.Ident:
						if obj := info.Uses[base]; obj != nil && prealloc[obj] {
							return true
						}
					}
					pass.Reportf(x.Pos(), "append in hot function may reallocate per iteration; preallocate the slice with make(len/cap) or reuse a buffer")
				}
			}
		}
		return true
	})
}
