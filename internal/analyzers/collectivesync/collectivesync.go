// Package collectivesync flags simmpi collective operations (Barrier,
// Bcast, Gatherv, Scatterv, Allreduce*, Allgatherv, Alltoallv, Exscan*)
// that only some ranks can reach — the classic SPMD divergence deadlock.
// The MPI contract (and simmpi's) is that every rank issues the same
// collectives in the same program order; a collective nested under a
// rank-dependent branch, loop, or early return violates it:
//
//	if comm.Rank() == 0 {
//	    comm.Bcast(0, payload) // non-root ranks never enter: deadlock
//	}
//
// Rank-dependence is tracked syntactically within one function: a
// condition is rank-dependent if it mentions a Comm.Rank() call or a local
// variable assigned (directly or transitively) from one. This is the
// compile-time sibling of what MPI correctness tools like MUST detect at
// run time.
//
// Since v2 the check is interprocedural: every function that transitively
// reaches a collective — directly, through same-package helpers, or
// through helpers in other packages — carries a PerformsCollective fact,
// and a *call* to such a function under rank-dependent control flow is
// flagged exactly like a direct collective. A collective hidden two
// packages away behind wrapper functions no longer escapes the check.
package collectivesync

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"github.com/plasma-hpc/dsmcpic/internal/analysis"
	"github.com/plasma-hpc/dsmcpic/internal/analyzers/astq"
)

// PerformsCollective is attached to every function that transitively
// issues at least one simmpi collective. It is what lets a downstream
// package see that calling helper.SyncAll() means calling Barrier.
type PerformsCollective struct {
	// Collectives holds the sorted, deduplicated names of the collective
	// Comm methods the function can reach.
	Collectives []string
}

// AFact marks PerformsCollective as a serializable analysis fact.
func (*PerformsCollective) AFact() {}

// Analyzer is the collectivesync pass.
var Analyzer = &analysis.Analyzer{
	Name:      "collectivesync",
	Doc:       "flag simmpi collective calls (direct or via fact-carrying helpers) reachable only under rank-dependent control flow (SPMD divergence deadlock)",
	Run:       run,
	FactTypes: []analysis.Fact{(*PerformsCollective)(nil)},
}

func run(pass *analysis.Pass) (interface{}, error) {
	// Phase 1: compute which of this package's functions transitively
	// perform collectives and export a fact for each, so both phase 2 here
	// and downstream packages can resolve call sites against them.
	for fn, colls := range computePerforms(pass) {
		pass.ExportObjectFact(fn, &PerformsCollective{Collectives: colls})
	}

	// Phase 2: the divergence walk.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd.Body)
		}
	}
	return nil, nil
}

// computePerforms maps each function declared in this package to the
// collectives it can transitively reach. Direct Comm calls and imported
// callees' facts seed the sets; a worklist closes them over the
// same-package call graph (handling helper chains and mutual recursion).
// Function literals count toward their enclosing declaration: a closure
// is built to be run, and attributing its collectives to the constructor
// over-approximates safely.
func computePerforms(pass *analysis.Pass) map[*types.Func][]string {
	info := pass.TypesInfo
	type node struct {
		colls map[string]bool
		calls []*types.Func // same-package static callees
	}
	nodes := make(map[*types.Func]*node)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			n := &node{colls: make(map[string]bool)}
			ast.Inspect(fd.Body, func(nd ast.Node) bool {
				call, ok := nd.(*ast.CallExpr)
				if !ok {
					return true
				}
				if name := astq.CommMethod(info, call); name != "" {
					if astq.IsCollective(name) {
						n.colls[name] = true
					}
					return true
				}
				callee := astq.Callee(info, call)
				if callee == nil {
					return true
				}
				if callee.Pkg() == pass.Pkg {
					n.calls = append(n.calls, callee)
					return true
				}
				var fact PerformsCollective
				if pass.ImportObjectFact(callee, &fact) {
					for _, c := range fact.Collectives {
						n.colls[c] = true
					}
				}
				return true
			})
			nodes[fn] = n
		}
	}

	// Fixpoint over the same-package call graph: sets only grow, so the
	// loop terminates once a full sweep adds nothing.
	for changed := true; changed; {
		changed = false
		for _, n := range nodes {
			for _, callee := range n.calls {
				cn := nodes[callee]
				if cn == nil {
					continue
				}
				for c := range cn.colls {
					if !n.colls[c] {
						n.colls[c] = true
						changed = true
					}
				}
			}
		}
	}

	out := make(map[*types.Func][]string)
	for fn, n := range nodes {
		if len(n.colls) == 0 {
			continue
		}
		colls := make([]string, 0, len(n.colls))
		for c := range n.colls {
			colls = append(colls, c)
		}
		sort.Strings(colls)
		out[fn] = colls
	}
	return out
}

// checkFunc analyzes one function body. Function literals are analyzed in
// place: a collective inside a FuncLit nested under a rank branch is still
// only executed by the ranks that built/ran the literal.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	tainted := taintRankVars(pass.TypesInfo, body)
	v := &visitor{pass: pass, tainted: tainted}
	v.stmts(body.List, false)
}

// taintRankVars collects local variables whose values derive from
// Comm.Rank(). Two forward passes give a cheap fixpoint for the
// straight-line assignment chains that occur in practice
// (me := comm.Rank(); left := me - 1; ...).
func taintRankVars(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	tainted := make(map[types.Object]bool)
	dep := func(e ast.Expr) bool { return exprRankDep(info, tainted, e) }
	for pass := 0; pass < 2; pass++ {
		ast.Inspect(body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range st.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok {
						continue
					}
					// Single-value multi-assign (a, b = f()) taints every
					// LHS if the RHS is rank-dependent.
					var rhs ast.Expr
					if len(st.Rhs) == len(st.Lhs) {
						rhs = st.Rhs[i]
					} else {
						rhs = st.Rhs[0]
					}
					if dep(rhs) {
						if obj := info.Defs[id]; obj != nil {
							tainted[obj] = true
						} else if obj := info.Uses[id]; obj != nil {
							tainted[obj] = true
						}
					}
				}
			case *ast.ValueSpec:
				for i, id := range st.Names {
					if i < len(st.Values) && dep(st.Values[i]) {
						if obj := info.Defs[id]; obj != nil {
							tainted[obj] = true
						}
					}
				}
			}
			return true
		})
	}
	return tainted
}

// exprRankDep reports whether e mentions Comm.Rank() or a tainted local.
// Function literals are opaque: a closure whose *body* calls Rank() is
// still the same function value on every rank, so it neither taints the
// variable holding it nor makes a condition mentioning it divergent —
// its invocations are analyzed on their own.
func exprRankDep(info *types.Info, tainted map[types.Object]bool, e ast.Expr) bool {
	if e == nil {
		return false
	}
	dep := false
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if astq.IsRankCall(info, x) {
				dep = true
				return false
			}
		case *ast.Ident:
			if obj := info.Uses[x]; obj != nil && tainted[obj] {
				dep = true
				return false
			}
		}
		return !dep
	})
	return dep
}

// visitor walks statements tracking whether the current position is inside
// rank-dependent control flow.
type visitor struct {
	pass    *analysis.Pass
	tainted map[types.Object]bool
}

func (v *visitor) dep(e ast.Expr) bool {
	return exprRankDep(v.pass.TypesInfo, v.tainted, e)
}

// stmts walks a statement list. divergent marks that the list itself is
// only executed by a rank-dependent subset of ranks. Within the list, a
// rank-dependent if whose body always terminates (early return/panic)
// makes everything after it divergent too.
func (v *visitor) stmts(list []ast.Stmt, divergent bool) {
	after := divergent
	for _, s := range list {
		v.stmt(s, after)
		if ifs, ok := s.(*ast.IfStmt); ok && !after {
			if v.dep(ifs.Cond) && terminates(ifs.Body) && ifs.Else == nil {
				after = true
			}
		}
	}
}

func (v *visitor) stmt(s ast.Stmt, divergent bool) {
	switch st := s.(type) {
	case *ast.IfStmt:
		branchDep := v.dep(st.Cond)
		if st.Init != nil {
			v.stmt(st.Init, divergent)
		}
		v.stmts(st.Body.List, divergent || branchDep)
		if st.Else != nil {
			v.stmt(st.Else, divergent || branchDep)
		}
	case *ast.SwitchStmt:
		dep := v.dep(st.Tag)
		for _, c := range st.Body.List {
			cc := c.(*ast.CaseClause)
			caseDep := dep
			for _, e := range cc.List {
				caseDep = caseDep || v.dep(e)
			}
			v.stmts(cc.Body, divergent || caseDep)
		}
	case *ast.TypeSwitchStmt:
		for _, c := range st.Body.List {
			v.stmts(c.(*ast.CaseClause).Body, divergent)
		}
	case *ast.ForStmt:
		if st.Init != nil {
			v.stmt(st.Init, divergent)
		}
		v.stmts(st.Body.List, divergent || v.dep(st.Cond))
	case *ast.RangeStmt:
		v.stmts(st.Body.List, divergent)
	case *ast.BlockStmt:
		v.stmts(st.List, divergent)
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			v.stmts(c.(*ast.CommClause).Body, divergent)
		}
	case *ast.LabeledStmt:
		v.stmt(st.Stmt, divergent)
	default:
		v.leaf(s, divergent)
	}
}

// leaf inspects a non-control statement for collective calls — direct
// Comm methods, or calls to functions whose PerformsCollective fact says
// a collective hides behind them. Function literals re-enter the
// statement walker so their internal control flow is analyzed too: a
// collective under a rank branch inside a closure is just as divergent,
// and a closure built under a rank branch only ever runs on those ranks.
func (v *visitor) leaf(s ast.Stmt, divergent bool) {
	ast.Inspect(s, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			v.stmts(x.Body.List, divergent)
			return false
		case *ast.CallExpr:
			if !divergent {
				return true
			}
			if name := astq.CommMethod(v.pass.TypesInfo, x); name != "" {
				if astq.IsCollective(name) {
					v.report(x.Pos(), name)
				}
				return true
			}
			callee := astq.Callee(v.pass.TypesInfo, x)
			if callee == nil {
				return true
			}
			var fact PerformsCollective
			if v.pass.ImportObjectFact(callee, &fact) {
				v.reportIndirect(x.Pos(), callee, fact.Collectives)
			}
		}
		return true
	})
}

func (v *visitor) report(pos token.Pos, name string) {
	v.pass.Reportf(pos, "collective %s is only reached under a rank-dependent condition; all ranks must issue the same collectives in the same order (SPMD divergence deadlock)", name)
}

func (v *visitor) reportIndirect(pos token.Pos, callee *types.Func, colls []string) {
	name := callee.Name()
	if pkg := callee.Pkg(); pkg != nil && pkg != v.pass.Pkg {
		name = pkg.Name() + "." + name
	}
	v.pass.Reportf(pos, "call to %s, which performs collective %s, is only reached under a rank-dependent condition; all ranks must issue the same collectives in the same order (SPMD divergence deadlock)", name, strings.Join(colls, ", "))
}

// terminates reports whether a block always leaves the function (its final
// statement is a return or a panic call).
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}
