package collectivesync_test

import (
	"testing"

	"github.com/plasma-hpc/dsmcpic/internal/analysis/analysistest"
	"github.com/plasma-hpc/dsmcpic/internal/analyzers/collectivesync"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "testdata", collectivesync.Analyzer, "comm")
}

// TestCrossPackage proves the v2 acceptance case: a collective reached
// only through a helper in a different package is flagged at the
// rank-guarded call site, two package boundaries away from the Barrier.
func TestCrossPackage(t *testing.T) {
	analysistest.Run(t, "testdata", collectivesync.Analyzer, "prim", "mid", "leaf")
}
