package collectivesync_test

import (
	"testing"

	"github.com/plasma-hpc/dsmcpic/internal/analysis/analysistest"
	"github.com/plasma-hpc/dsmcpic/internal/analyzers/collectivesync"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "testdata", collectivesync.Analyzer, "comm")
}
