// Fixture package 2: wraps prim's helper one level deeper. Sync2 has no
// collective call in its own body — only the imported PerformsCollective
// fact on prim.SyncAll reveals that it performs Barrier.
package mid

import "prim"

// Sync2 transitively performs Barrier (via prim.SyncAll).
func Sync2(c *prim.Comm) {
	prim.SyncAll(c)
}

// Ping is collective-free.
func Ping(c *prim.Comm) {
	prim.Notify(c, 0)
}
