// Fixture package 3: the call chain leaf.run -> mid.Sync2 -> prim.SyncAll
// -> Comm.Barrier crosses two package boundaries. Intraprocedural v1
// could not see the Barrier from here; the fact chain makes the
// rank-guarded call site a finding.
package leaf

import (
	"mid"
	"prim"
)

func run(c *prim.Comm) {
	if c.Rank() == 0 {
		mid.Sync2(c) // want "call to mid.Sync2, which performs collective Barrier, is only reached under a rank-dependent condition"
	}
	mid.Sync2(c) // every rank: fine
}

func rootOnlyP2P(c *prim.Comm) {
	if c.Rank() == 0 {
		mid.Ping(c) // collective-free helper under a rank branch: fine
	}
}

func ignored(c *prim.Comm) {
	if c.Rank() == 0 {
		mid.Sync2(c) //commvet:ignore collectivesync fixture exercises the escape hatch
	}
}
