// Fixture for the collectivesync analyzer: a self-contained Comm stub
// (matching is structural — any named type Comm) plus positive and
// negative cases.
package comm

type Comm struct{ rank, size int }

func (c *Comm) Rank() int                          { return c.rank }
func (c *Comm) Size() int                          { return c.size }
func (c *Comm) Barrier()                           {}
func (c *Comm) Bcast(root int, data []byte) []byte { return data }
func (c *Comm) Gatherv(root int, data []byte) [][]byte {
	return nil
}
func (c *Comm) AllreduceInt64(vals []int64) []int64 { return vals }
func (c *Comm) Send(dst, tag int, data []byte)      {}
func (c *Comm) Recv(src, tag int) []byte            { return nil }

const tagFixture = 0x100

// --- positive cases: collectives under rank-dependent control flow ---

func directBranch(c *Comm) {
	if c.Rank() == 0 {
		c.Barrier() // want "collective Barrier is only reached under a rank-dependent condition"
	}
}

func taintedVar(c *Comm) {
	me := c.Rank()
	left := me - 1
	if left >= 0 {
		c.Bcast(0, nil) // want "collective Bcast is only reached"
	}
}

func elseBranch(c *Comm) {
	// Both branches are divergent: each subset of ranks issues its own call.
	if c.Rank() == 0 {
		_ = c.Gatherv(0, nil) // want "collective Gatherv"
	} else {
		_ = c.Gatherv(0, nil) // want "collective Gatherv"
	}
}

func earlyReturn(c *Comm) {
	if c.Rank() != 0 {
		return
	}
	c.Barrier() // want "collective Barrier"
}

func rankBoundedLoop(c *Comm) {
	for i := 0; i < c.Rank(); i++ {
		c.Barrier() // want "collective Barrier"
	}
}

func insideClosure(c *Comm) {
	if c.Rank() == 0 {
		f := func() {
			_ = c.AllreduceInt64(nil) // want "collective AllreduceInt64"
		}
		f()
	}
}

func switchOnRank(c *Comm) {
	switch c.Rank() {
	case 0:
		c.Barrier() // want "collective Barrier"
	}
}

// --- negative cases ---

func unconditional(c *Comm) {
	c.Barrier()
	_ = c.Bcast(0, nil)
}

func rankBranchWithoutCollective(c *Comm) {
	payload := []byte{1}
	if c.Rank() == 0 {
		payload = append(payload, 2) // root-only local work is fine
	}
	_ = c.Bcast(0, payload) // all ranks reach the collective
}

func nonTerminatingRankIf(c *Comm) {
	n := 0
	if c.Rank() == 0 {
		n++ // falls through: every rank still reaches the Barrier
	}
	c.Barrier()
	_ = n
}

func sizeDependent(c *Comm) {
	if c.Size() > 1 {
		c.Barrier() // size is identical on every rank: not divergent
	}
}

func pointToPointUnderRank(c *Comm) {
	if c.Rank() == 0 {
		c.Send(1, tagFixture, nil) // p2p under rank branches is the normal idiom
	} else if c.Rank() == 1 {
		_ = c.Recv(0, tagFixture)
	}
}
