// Fixture package 1 of the cross-package chain: defines the Comm stub and
// a helper wrapping a collective. Analyzed first; exports
// PerformsCollective facts for SyncAll and (via analysistest's fact
// round-trip) makes them visible to the mid and leaf fixtures.
package prim

type Comm struct{ rank, size int }

func (c *Comm) Rank() int                          { return c.rank }
func (c *Comm) Size() int                          { return c.size }
func (c *Comm) Barrier()                           {}
func (c *Comm) Bcast(root int, data []byte) []byte { return data }
func (c *Comm) Send(dst, tag int, data []byte)     {}
func (c *Comm) Recv(src, tag int) []byte           { return nil }

// SyncAll performs a collective; callers inherit the fact.
func SyncAll(c *Comm) {
	c.Barrier()
}

// Notify is collective-free; calling it under a rank branch is fine.
func Notify(c *Comm, dst int) {
	c.Send(dst, 1, nil)
}

// localIndirect proves the fact works in the defining package too: the
// helper call under a rank branch is as divergent as the Barrier inside.
func localIndirect(c *Comm) {
	if c.Rank() == 0 {
		SyncAll(c) // want "call to SyncAll, which performs collective Barrier, is only reached under a rank-dependent condition"
	}
}
