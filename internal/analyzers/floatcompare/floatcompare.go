// Package floatcompare flags == and != on floating-point operands in the
// physics packages (dsmc, pic, sparse, mesh, geom, particle, diag, core,
// balance, exchange). Exact float equality on computed values is almost
// always a latent bug in numerical code — two mathematically equal
// quantities reached by different operation orders differ in their last
// bits, so the comparison silently flips across refactors, optimization
// levels, and architectures. Compare against a tolerance, or restructure
// so the decision uses the integer/index domain.
//
// Two deliberate escapes:
//
//   - Comparison against an exact constant (x == 0, x != 1) is allowed:
//     testing "still the initialized/sentinel value" or "exactly zero
//     before dividing" is well-defined in IEEE 754 and common in guards.
//   - A false positive on a genuinely-exact comparison can be suppressed
//     with `//commvet:ignore floatcompare <reason>` on the line.
package floatcompare

import (
	"go/ast"
	"go/token"
	"strings"

	"github.com/plasma-hpc/dsmcpic/internal/analysis"
	"github.com/plasma-hpc/dsmcpic/internal/analyzers/astq"
)

// Analyzer is the floatcompare pass. It runs on test sources too: an
// exact float assertion in a test is the same latent flake as in the
// kernel it checks (replay tests that genuinely assert bitwise equality
// carry a reasoned //commvet:ignore).
var Analyzer = &analysis.Analyzer{
	Name:       "floatcompare",
	Doc:        "flag ==/!= on computed floating-point operands in physics packages (compare with a tolerance instead)",
	Run:        run,
	RunOnTests: true,
}

// physicsPkgs names the packages holding numerical kernels.
var physicsPkgs = map[string]bool{
	"dsmc": true, "pic": true, "sparse": true, "mesh": true,
	"geom": true, "particle": true, "diag": true, "core": true,
	"balance": true, "exchange": true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	// Match external test packages ("core_test") to their subject package.
	if !physicsPkgs[strings.TrimSuffix(pass.Pkg.Name(), "_test")] {
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !astq.IsFloat(pass.TypesInfo.TypeOf(be.X)) && !astq.IsFloat(pass.TypesInfo.TypeOf(be.Y)) {
				return true
			}
			if isConstant(pass, be.X) || isConstant(pass, be.Y) {
				return true
			}
			pass.Reportf(be.OpPos, "floating-point %s on computed values; exact equality is order-of-operations sensitive — compare with a tolerance", be.Op)
			return true
		})
	}
	return nil, nil
}

// isConstant reports whether the expression has a compile-time constant
// value (literal, named constant, or constant arithmetic).
func isConstant(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}
