package floatcompare_test

import (
	"testing"

	"github.com/plasma-hpc/dsmcpic/internal/analysis/analysistest"
	"github.com/plasma-hpc/dsmcpic/internal/analyzers/floatcompare"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "testdata", floatcompare.Analyzer, "pic")
}

// TestOutsidePhysicsSet proves scoping: identical comparisons in a
// non-physics package are ignored.
func TestOutsidePhysicsSet(t *testing.T) {
	analysistest.Run(t, "testdata", floatcompare.Analyzer, "webui")
}
