// Fixture for the floatcompare analyzer, named "pic" so it falls inside
// the physics package set.
package pic

const eps = 1e-12

// --- positive cases ---

func equalExact(a, b float64) bool {
	return a == b // want "floating-point == on computed values"
}

func notEqualExact(a, b float32) bool {
	return a != b // want "floating-point != on computed values"
}

func mixedExpr(xs []float64, i int) bool {
	return xs[i] == xs[i+1]*2 // want "floating-point =="
}

// --- negative cases ---

func zeroGuard(den float64) float64 {
	if den == 0 { // constant comparison: exact in IEEE 754, common guard
		return 0
	}
	return 1 / den
}

func sentinel(x float64) bool {
	return x != eps // named-constant comparison is allowed
}

func intCompare(a, b int) bool { return a == b }

func orderedCompare(a, b float64) bool { return a < b } // only ==/!= flagged

func suppressed(a, b float64) bool {
	return a == b //commvet:ignore floatcompare bitwise-identity check is intended here
}
