// Negative fixture: float equality outside the physics packages is not
// commvet's business (staticcheck-style general lint can own it).
package webui

func Same(a, b float64) bool { return a == b }
