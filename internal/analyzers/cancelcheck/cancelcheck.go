// Package cancelcheck enforces cooperative-cancellation discipline in the
// layers above simmpi: a loop that issues blocking simmpi operations
// (Recv, collectives) must contain a cancellation point, so a canceled
// world unblocks promptly instead of finishing an unbounded amount of
// work. The gap it closes is real: simmpi's mailbox hands over *queued*
// matching messages without consulting the canceled flag, so a rank that
// keeps finding its messages already delivered can drain an entire
// receive loop — or run whole extra timesteps — without ever observing
// cancellation. Only an explicit point (Comm.CheckCancel, or a select on
// Config.Cancel / a done channel) bounds that latency.
//
// The check is interprocedural via facts. Every function exports:
//
//   - PerformsBlocking{Ops}: the blocking simmpi operations it can
//     transitively reach (a call to exchange.Exchange blocks just as much
//     as a direct Alltoallv);
//   - ChecksCancellation{}: it transitively contains a cancellation point.
//
// A loop needs a cancellation point when it has *unguarded* blocking
// work: a direct blocking Comm call, or a call to a fact-carrying
// function that does not itself check cancellation. Calls to functions
// that do check (e.g. Solver.Step, which opens with CheckCancel) count as
// the loop's cancellation point.
//
// Scope: packages core and serve (plus simmpi, whose collectives are
// where the blocking originates). The package that *defines* the Comm
// type is exempt from the loop check — its bounded per-round Recv loops
// ARE the primitives, and a blocked receive there already aborts on
// cancellation; the unbounded application loops above are where explicit
// points matter. Function literals are analyzed in place for their own
// loops, but their contents are not attributed to the enclosing function:
// closures like OnStep run on world ranks, not on the goroutine that
// built them.
package cancelcheck

import (
	"go/ast"
	"go/types"
	"path"
	"sort"
	"strings"

	"github.com/plasma-hpc/dsmcpic/internal/analysis"
	"github.com/plasma-hpc/dsmcpic/internal/analyzers/astq"
)

// PerformsBlocking marks a function that transitively issues blocking
// simmpi operations (Recv or collectives).
type PerformsBlocking struct {
	// Ops holds the sorted, deduplicated blocking Comm method names.
	Ops []string
}

// AFact marks PerformsBlocking as a serializable analysis fact.
func (*PerformsBlocking) AFact() {}

// ChecksCancellation marks a function that transitively contains a
// cancellation point (Comm.CheckCancel or a cancel-channel receive).
type ChecksCancellation struct{}

// AFact marks ChecksCancellation as a serializable analysis fact.
func (*ChecksCancellation) AFact() {}

// Analyzer is the cancelcheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "cancelcheck",
	Doc:  "loops issuing blocking simmpi operations must contain a cancellation point (Comm.CheckCancel or a cancel-channel select)",
	Run:  run,
	FactTypes: []analysis.Fact{
		(*PerformsBlocking)(nil),
		(*ChecksCancellation)(nil),
	},
}

// checkedPkgs are the packages whose loops the analyzer reports on (by
// import-path base). Everything else still exports facts, so blocking
// helpers anywhere in the module are visible to these packages.
var checkedPkgs = map[string]bool{
	"core":   true,
	"serve":  true,
	"simmpi": true,
}

// isBlocking reports whether a Comm method name is a blocking operation:
// all collectives plus Recv (Send is buffered mailbox delivery).
func isBlocking(name string) bool {
	return name == "Recv" || astq.IsCollective(name)
}

func run(pass *analysis.Pass) (interface{}, error) {
	fns := computeFacts(pass)
	for fn, n := range fns {
		if len(n.blocking) > 0 {
			ops := make([]string, 0, len(n.blocking))
			for op := range n.blocking {
				ops = append(ops, op)
			}
			sort.Strings(ops)
			pass.ExportObjectFact(fn, &PerformsBlocking{Ops: ops})
		}
		if n.checks {
			pass.ExportObjectFact(fn, &ChecksCancellation{})
		}
	}

	base := path.Base(analysis.TrimTestVariant(pass.Pkg.Path()))
	if !checkedPkgs[base] || definesComm(pass.Pkg) {
		return nil, nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLoops(pass, fd.Body)
		}
	}
	return nil, nil
}

// definesComm reports whether pkg declares the named type Comm — i.e. it
// is the communication-primitive layer itself.
func definesComm(pkg *types.Package) bool {
	obj := pkg.Scope().Lookup("Comm")
	tn, ok := obj.(*types.TypeName)
	return ok && tn.Pkg() == pkg
}

// fnNode accumulates per-function analysis state during the fixpoint.
type fnNode struct {
	blocking map[string]bool
	checks   bool
	calls    []*types.Func // same-package static callees
}

// computeFacts derives each declared function's transitive blocking set
// and cancellation-point flag: direct detections plus imported callee
// facts, closed over the same-package call graph. FuncLit bodies are
// excluded throughout (see the package comment).
func computeFacts(pass *analysis.Pass) map[*types.Func]*fnNode {
	info := pass.TypesInfo
	nodes := make(map[*types.Func]*fnNode)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			n := &fnNode{blocking: make(map[string]bool)}
			inspectSkippingFuncLits(fd.Body, func(nd ast.Node) {
				if isCancelRecv(nd) {
					n.checks = true
					return
				}
				call, ok := nd.(*ast.CallExpr)
				if !ok {
					return
				}
				if name := astq.CommMethod(info, call); name != "" {
					if name == "CheckCancel" {
						n.checks = true
					} else if isBlocking(name) {
						n.blocking[name] = true
					}
					return
				}
				callee := astq.Callee(info, call)
				if callee == nil {
					return
				}
				if callee.Pkg() == pass.Pkg {
					n.calls = append(n.calls, callee)
					return
				}
				var checks ChecksCancellation
				calleeChecks := pass.ImportObjectFact(callee, &checks)
				if calleeChecks {
					n.checks = true
				}
				var blk PerformsBlocking
				if !calleeChecks && pass.ImportObjectFact(callee, &blk) {
					for _, op := range blk.Ops {
						n.blocking[op] = true
					}
				}
			})
			nodes[fn] = n
		}
	}

	// Fixpoint: blocking propagates from callees that do not check (a
	// checking callee guards its own blocking); the checks flag propagates
	// unconditionally. Both only grow, so the sweep terminates.
	for changed := true; changed; {
		changed = false
		for _, n := range nodes {
			for _, callee := range n.calls {
				cn := nodes[callee]
				if cn == nil {
					continue
				}
				if cn.checks && !n.checks {
					n.checks = true
					changed = true
				}
				if !cn.checks {
					for op := range cn.blocking {
						if !n.blocking[op] {
							n.blocking[op] = true
							changed = true
						}
					}
				}
			}
		}
	}
	return nodes
}

// inspectSkippingFuncLits walks the AST below root, not descending into
// function literals.
func inspectSkippingFuncLits(root ast.Node, visit func(ast.Node)) {
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

// isCancelRecv reports whether n is a receive from a cancellation
// channel: <-x where x's final name mentions cancel or done (c.Cancel,
// ctx.Done(), watchDone, ...).
func isCancelRecv(n ast.Node) bool {
	un, ok := n.(*ast.UnaryExpr)
	if !ok || un.Op.String() != "<-" {
		return false
	}
	name := trailingName(un.X)
	lower := strings.ToLower(name)
	return strings.Contains(lower, "cancel") || strings.Contains(lower, "done")
}

// trailingName extracts the last identifier of an expression chain:
// c.Cancel -> "Cancel", ctx.Done() -> "Done", quit -> "quit".
func trailingName(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return x.Sel.Name
	case *ast.CallExpr:
		return trailingName(x.Fun)
	}
	return ""
}

// checkLoops reports for/range loops with unguarded blocking work and no
// cancellation point. Function literals are separate scopes: their loops
// are checked on their own, and their contents do not satisfy or indict
// an enclosing loop.
func checkLoops(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			checkLoops(pass, x.Body)
			return false
		case *ast.ForStmt:
			checkLoop(pass, x.Body)
		case *ast.RangeStmt:
			checkLoop(pass, x.Body)
		}
		return true
	})
}

// checkLoop examines one loop body (including nested loops — a point
// anywhere in the body covers the whole iteration).
func checkLoop(pass *analysis.Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo
	var ops []string
	seen := make(map[string]bool)
	hasPoint := false
	inspectSkippingFuncLits(body, func(nd ast.Node) {
		if isCancelRecv(nd) {
			hasPoint = true
			return
		}
		call, ok := nd.(*ast.CallExpr)
		if !ok {
			return
		}
		if name := astq.CommMethod(info, call); name != "" {
			if name == "CheckCancel" {
				hasPoint = true
			} else if isBlocking(name) && !seen[name] {
				seen[name] = true
				ops = append(ops, name)
			}
			return
		}
		callee := astq.Callee(info, call)
		if callee == nil {
			return
		}
		var checks ChecksCancellation
		if pass.ImportObjectFact(callee, &checks) {
			hasPoint = true
			return
		}
		var blk PerformsBlocking
		if pass.ImportObjectFact(callee, &blk) {
			for _, op := range blk.Ops {
				if !seen[op] {
					seen[op] = true
					ops = append(ops, op)
				}
			}
		}
	})
	if len(ops) > 0 && !hasPoint {
		sort.Strings(ops)
		pass.Reportf(body.Pos(), "loop issues blocking simmpi operation(s) %s without a cancellation point; call Comm.CheckCancel (or select on the cancel channel) each iteration so a canceled world unblocks promptly", strings.Join(ops, ", "))
	}
}
