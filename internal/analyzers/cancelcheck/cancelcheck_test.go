package cancelcheck_test

import (
	"testing"

	"github.com/plasma-hpc/dsmcpic/internal/analysis/analysistest"
	"github.com/plasma-hpc/dsmcpic/internal/analyzers/cancelcheck"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "testdata", cancelcheck.Analyzer, "commstub", "core")
}
