// Fixture for the cancelcheck analyzer: application-layer loops over
// blocking simmpi operations, positive and negative.
package core

import "commstub"

// helperBlocks transitively blocks (exports PerformsBlocking{Barrier}).
func helperBlocks(c *commstub.Comm) {
	c.Barrier()
}

// helperChecks blocks but checks cancellation first: calling it gives the
// caller's loop a cancellation point every iteration.
func helperChecks(c *commstub.Comm) {
	c.CheckCancel()
	c.Barrier()
}

// --- positive cases ---

func badDirect(c *commstub.Comm) {
	for i := 0; i < 10; i++ { // want "loop issues blocking simmpi operation\(s\) Recv without a cancellation point"
		_ = c.Recv(0, 1)
	}
}

func badIndirect(c *commstub.Comm) {
	for i := 0; i < 10; i++ { // want "loop issues blocking simmpi operation\(s\) Barrier without a cancellation point"
		helperBlocks(c)
	}
}

func badCrossPackage(c *commstub.Comm) {
	for i := 0; i < 3; i++ { // want "loop issues blocking simmpi operation\(s\) Barrier without a cancellation point"
		commstub.SyncRound(c)
	}
}

func badRange(c *commstub.Comm, parts [][]byte) {
	for range parts { // want "loop issues blocking simmpi operation\(s\) AllreduceInt64 without a cancellation point"
		_ = c.AllreduceInt64([]int64{1})
	}
}

// --- negative cases ---

func goodExplicit(c *commstub.Comm) {
	for i := 0; i < 10; i++ {
		c.CheckCancel()
		_ = c.Recv(0, 1)
	}
}

func goodViaCheckingCallee(c *commstub.Comm) {
	for i := 0; i < 10; i++ {
		helperChecks(c)
	}
}

func goodSelectCancel(c *commstub.Comm, cancel chan struct{}) {
	for i := 0; i < 10; i++ {
		select {
		case <-cancel:
			return
		default:
		}
		c.Barrier()
	}
}

func nonBlockingLoop(c *commstub.Comm) {
	// Send is buffered mailbox delivery: not a blocking op.
	for i := 0; i < 10; i++ {
		c.Send(0, 1, nil)
	}
}

func closureNotAttributed(c *commstub.Comm) []func() {
	// Building a closure does not block; the closure runs elsewhere.
	fs := make([]func(), 0, 3)
	for i := 0; i < 3; i++ {
		fs = append(fs, func() { c.Barrier() })
	}
	return fs
}

func suppressed(c *commstub.Comm) {
	for i := 0; i < 2; i++ { //commvet:ignore cancelcheck fixture exercises the escape hatch
		_ = c.Recv(0, 1)
	}
}
