// Fixture stub of the simmpi surface: defines the Comm type (making this
// package the exempt primitive layer) and a blocking helper whose
// PerformsBlocking fact crosses into the core fixture.
package commstub

type Comm struct{ rank, size int }

func (c *Comm) Rank() int                           { return c.rank }
func (c *Comm) Size() int                           { return c.size }
func (c *Comm) CheckCancel()                        {}
func (c *Comm) Barrier()                            {}
func (c *Comm) Bcast(root int, data []byte) []byte  { return data }
func (c *Comm) AllreduceInt64(vals []int64) []int64 { return vals }
func (c *Comm) Send(dst, tag int, data []byte)      {}
func (c *Comm) Recv(src, tag int) []byte            { return nil }

// SyncRound performs a collective; callers inherit the blocking fact.
func SyncRound(c *Comm) {
	c.Barrier()
}

// primitiveLoop would be a finding in an application package, but the
// Comm-defining package is exempt: these bounded per-round receive loops
// ARE the primitives, and a blocked Recv aborts on cancellation.
func primitiveLoop(c *Comm) {
	for d := 1; d < c.size; d *= 2 {
		c.Send((c.rank+d)%c.size, 9, nil)
		_ = c.Recv((c.rank-d+c.size)%c.size, 9)
	}
}
