// Package astq holds the small type/AST queries shared by the commvet
// analyzers: recognizing simmpi.Comm method calls, collective names, and
// floating-point types. Matching is structural (a named type called
// "Comm"), not path-based, so the analyzers work identically on the real
// internal/simmpi package and on self-contained test fixtures.
package astq

import (
	"go/ast"
	"go/types"
	"strings"
)

// CommMethod returns the method name if call is a method call whose
// receiver is a (pointer to a) named type called "Comm", else "".
func CommMethod(info *types.Info, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	s := info.Selections[sel]
	if s == nil || s.Kind() != types.MethodVal {
		return ""
	}
	t := s.Recv()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok && named.Obj().Name() == "Comm" {
		return sel.Sel.Name
	}
	return ""
}

// collectivePrefixes matches the names of simmpi collective operations —
// prefixes so that typed variants (AllreduceInt64, Gatherv, ...) and
// future additions (Alltoallw, ...) are covered without a registry.
var collectivePrefixes = []string{
	"Barrier", "Bcast", "Gather", "Scatter",
	"Allreduce", "Allgather", "Alltoall", "Reduce", "Exscan", "Scan",
}

// IsCollective reports whether a Comm method name is a collective
// operation (as opposed to point-to-point Send/Recv or local accessors).
func IsCollective(name string) bool {
	for _, p := range collectivePrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// Callee returns the statically-known callee of call — a package-level
// function or a method, from this package or an imported one — or nil for
// calls through function values, built-ins, and type conversions. This is
// the resolution step interprocedural analyzers use before consulting
// facts attached to the callee.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsRankCall reports whether call is Comm.Rank().
func IsRankCall(info *types.Info, call *ast.CallExpr) bool {
	return CommMethod(info, call) == "Rank"
}

// IsFloat reports whether t's core type is a floating-point (or complex)
// basic type.
func IsFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}
