// Package tagdiscipline enforces the simmpi tag registry: the tag argument
// of point-to-point Comm.Send/Comm.Recv must be built from named,
// package-level constants (in production code, the registry constants in
// internal/simmpi/tags.go), never from integer literals or function-local
// constants. Magic tag numbers are how two subsystems silently collide on
// the (src, tag) matching namespace — the registry reserves disjoint
// ranges per subsystem so a new sender cannot intercept another
// subsystem's traffic.
//
// Allowed:    c.Send(dst, simmpi.TagExchangeMigrate, buf)
// Allowed:    c.Send(dst, tagBarrier-dist, nil)       // pkg-level const base
// Flagged:    c.Send(dst, 0x7e, buf)                  // magic literal
// Flagged:    const tag = 7; c.Send(dst, tag, buf)    // function-local const
//
// A tag that is a plain variable or parameter is accepted: the value was
// produced somewhere else, and that producer is where the rule applies.
package tagdiscipline

import (
	"go/ast"
	"go/types"

	"github.com/plasma-hpc/dsmcpic/internal/analysis"
	"github.com/plasma-hpc/dsmcpic/internal/analyzers/astq"
)

// Analyzer is the tagdiscipline pass.
var Analyzer = &analysis.Analyzer{
	Name: "tagdiscipline",
	Doc:  "require point-to-point message tags to be named package-level constants (the simmpi tag registry), not integer literals",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := astq.CommMethod(pass.TypesInfo, call)
			if (name != "Send" && name != "Recv") || len(call.Args) < 2 {
				return true
			}
			checkTag(pass, name, call.Args[1])
			return true
		})
	}
	return nil, nil
}

// checkTag validates one tag argument expression.
func checkTag(pass *analysis.Pass, method string, tag ast.Expr) {
	ast.Inspect(tag, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.BasicLit:
			pass.Reportf(x.Pos(), "%s tag uses integer literal %s; use a named constant from the simmpi tag registry", method, x.Value)
		case *ast.Ident:
			reportLocalConst(pass, method, x, pass.TypesInfo.Uses[x])
		case *ast.SelectorExpr:
			reportLocalConst(pass, method, x.Sel, pass.TypesInfo.Uses[x.Sel])
			return false // don't descend into the qualifier
		}
		return true
	})
}

// reportLocalConst flags constants declared inside a function: a tag
// constant must live at package level (ideally in the simmpi registry) so
// its range membership is reviewable in one place.
func reportLocalConst(pass *analysis.Pass, method string, id *ast.Ident, obj types.Object) {
	c, ok := obj.(*types.Const)
	if !ok {
		return
	}
	if c.Parent() != nil && c.Parent() != c.Pkg().Scope() && c.Parent() != types.Universe {
		pass.Reportf(id.Pos(), "%s tag uses function-local constant %s; declare it at package level in the simmpi tag registry", method, id.Name)
	}
}
