// Fixture for the tagdiscipline analyzer.
package tags

type Comm struct{}

func (c *Comm) Send(dst, tag int, data []byte) {}
func (c *Comm) Recv(src, tag int) []byte       { return nil }

// Package-level constants stand in for the simmpi tag registry.
const (
	TagMigrate = 0x100
	tagBarrier = -1000
)

// --- negative cases: registry-style tags ---

func registryTags(c *Comm, dist int, tag int) {
	c.Send(1, TagMigrate, nil)
	_ = c.Recv(0, TagMigrate)
	c.Send(1, tagBarrier-dist, nil) // pkg-level const base with variable offset
	c.Send(1, tag, nil)             // plain variable: producer is checked at its source
	_ = c.Recv(0, pick())           // computed elsewhere
}

func pick() int { return TagMigrate }

// Non-Comm Send methods are out of scope.
type mailer struct{}

func (mailer) Send(dst, tag int, data []byte) {}

func otherSend(m mailer) {
	m.Send(1, 42, nil)
}

// --- positive cases ---

func magicLiterals(c *Comm) {
	c.Send(1, 0x7e, nil) // want "Send tag uses integer literal 0x7e"
	_ = c.Recv(0, 7)     // want "Recv tag uses integer literal 7"
}

func localConst(c *Comm) {
	const tag = 0x42
	c.Send(1, tag, nil) // want "Send tag uses function-local constant tag"
	_ = c.Recv(0, tag)  // want "Recv tag uses function-local constant tag"
}

func literalInExpression(c *Comm, round int) {
	c.Send(1, TagMigrate+1, nil) // want "Send tag uses integer literal 1"
}
