package tagdiscipline_test

import (
	"testing"

	"github.com/plasma-hpc/dsmcpic/internal/analysis/analysistest"
	"github.com/plasma-hpc/dsmcpic/internal/analyzers/tagdiscipline"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "testdata", tagdiscipline.Analyzer, "tags")
}
