// Package durability enforces the store's crash-safety orderings as
// static checks over the injectable Filesystem/File interfaces (matching
// is structural — named types "Filesystem" and "File" — so fixtures and
// internal/store are checked identically):
//
//	R1 fsync-before-rename: a File obtained from Filesystem.Create and
//	   written must be Sync()ed before the function Renames anything into
//	   place. Rename publishes atomically; without the fsync the
//	   published name can point at unwritten blocks after a crash.
//
//	R2 result-before-done: journaling the literal state "done"
//	   (RecordState(..., "done", ...)) must be preceded in the same
//	   function by PutResult — replay drops a done job whose result is
//	   missing, so the reverse order can lose a completed job.
//
//	R3 write-then-sync: a function that writes a File must Sync it
//	   (after the last write) or hand the barrier upward — functions
//	   named Write*/Sync*/Close*/Flush* and append helpers on the File
//	   itself are the pass-through wrappers and are exempt.
//
// Scope: packages store and serve. Test files are excluded (fault
// fixtures deliberately write unsynced files); suppress intentional
// violations with "//commvet:ignore durability <reason>".
package durability

import (
	"go/ast"
	"go/types"
	"path"
	"strings"

	"github.com/plasma-hpc/dsmcpic/internal/analysis"
)

// Analyzer is the durability pass.
var Analyzer = &analysis.Analyzer{
	Name: "durability",
	Doc:  "enforce store crash-safety orderings: fsync before rename, result written before done journaled, writes followed by sync",
	Run:  run,
}

// checkedPkgs are the packages the analyzer reports on (by import-path
// base).
var checkedPkgs = map[string]bool{
	"store": true,
	"serve": true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	base := path.Base(analysis.TrimTestVariant(pass.Pkg.Path()))
	if !checkedPkgs[base] {
		return nil, nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil, nil
}

// isNamed reports whether t (or its pointee) is a named type with the
// given name.
func isNamed(t types.Type, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == name
}

// methodOn returns the method name if call is a method call on a value
// of the named interface/struct type, else "".
func methodOn(info *types.Info, call *ast.CallExpr, typeName string) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	s := info.Selections[sel]
	if s == nil || s.Kind() != types.MethodVal {
		return ""
	}
	if isNamed(s.Recv(), typeName) {
		return sel.Sel.Name
	}
	return ""
}

// recvObj resolves the receiver expression of a method call to its
// variable object, when the receiver is a plain identifier or a
// single-level field selection (tmp, j.w, c.fs). Deeper expressions
// return nil and are tracked by no rule.
func recvObj(info *types.Info, call *ast.CallExpr) types.Object {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.Ident:
		return info.Uses[x]
	case *ast.SelectorExpr:
		return info.Uses[x.Sel]
	}
	return nil
}

// wrapperExempt reports whether the function is a pass-through wrapper
// that legitimately writes without syncing: the caller owns the barrier.
func wrapperExempt(name string) bool {
	for _, p := range []string{"Write", "Sync", "Close", "Flush"} {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// fileUse tracks one File-typed variable's lifecycle inside a function.
type fileUse struct {
	obj        types.Object
	fromCreate bool
	lastWrite  *ast.CallExpr // last Write* call, nil if never written
	syncAfter  bool          // a Sync on this file after the last write
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	var (
		uses       []*fileUse
		byObj      = map[types.Object]*fileUse{}
		renames    []*ast.CallExpr
		putResults []*ast.CallExpr
		dones      []*ast.CallExpr
	)
	use := func(obj types.Object) *fileUse {
		if obj == nil {
			return nil
		}
		u := byObj[obj]
		if u == nil {
			u = &fileUse{obj: obj}
			byObj[obj] = u
			uses = append(uses, u)
		}
		return u
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		// A File var assigned from Filesystem.Create starts a temp-file
		// publish sequence.
		if as, ok := n.(*ast.AssignStmt); ok && len(as.Rhs) == 1 {
			if call, ok := as.Rhs[0].(*ast.CallExpr); ok && methodOn(info, call, "Filesystem") == "Create" {
				if id, ok := as.Lhs[0].(*ast.Ident); ok {
					obj := info.Defs[id]
					if obj == nil {
						obj = info.Uses[id]
					}
					if u := use(obj); u != nil {
						u.fromCreate = true
					}
				}
			}
			return true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch methodOn(info, call, "Filesystem") {
		case "Rename":
			renames = append(renames, call)
			return true
		}
		switch name := methodOn(info, call, "File"); {
		case strings.HasPrefix(name, "Write"):
			if u := use(recvObj(info, call)); u != nil {
				u.lastWrite = call
				u.syncAfter = false
			}
		case name == "Sync":
			if u := use(recvObj(info, call)); u != nil {
				u.syncAfter = true
			}
		}
		// R2 markers: by method name, so both the Store methods and the
		// serve-side Storage interface calls match.
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			switch sel.Sel.Name {
			case "PutResult":
				putResults = append(putResults, call)
			case "RecordState":
				for _, arg := range call.Args {
					if lit, ok := arg.(*ast.BasicLit); ok && lit.Value == `"done"` {
						dones = append(dones, call)
						break
					}
				}
			}
		}
		return true
	})

	// R1: every written Create-file must be synced before the publish
	// rename. The rename's position orders it against the file's writes.
	for _, rn := range renames {
		for _, u := range uses {
			if u.fromCreate && u.lastWrite != nil && !u.syncAfter && u.lastWrite.Pos() < rn.Pos() {
				pass.Reportf(rn.Pos(), "rename publishes %s without a preceding Sync; fsync-before-rename is required or a crash can publish unwritten data", u.obj.Name())
			}
		}
	}

	// R3: a written File must be synced after its last write, unless this
	// function is a pass-through wrapper. Files covered by an R1 report
	// above are not double-reported: the rename check subsumes the sync.
	if !wrapperExempt(fd.Name.Name) {
		for _, u := range uses {
			if u.lastWrite == nil || u.syncAfter {
				continue
			}
			covered := false
			for _, rn := range renames {
				if u.fromCreate && u.lastWrite.Pos() < rn.Pos() {
					covered = true
					break
				}
			}
			if !covered {
				pass.Reportf(u.lastWrite.Pos(), "File %s is written but never Sync()ed in this function; a crash can lose the write (journal appends are Write+Sync)", u.obj.Name())
			}
		}
	}

	// R2: "done" must not be journaled before the result bytes are put.
	for _, d := range dones {
		ok := false
		for _, p := range putResults {
			if p.Pos() < d.Pos() {
				ok = true
				break
			}
		}
		if !ok {
			pass.Reportf(d.Pos(), `state "done" is journaled without a preceding PutResult in this function; replay drops a done job whose result is missing (result-before-done ordering)`)
		}
	}
}
