// Fixture for the durability analyzer: a structural stand-in for
// internal/store's Filesystem/File interfaces plus positive and negative
// cases for the three orderings.
package store

type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

type Filesystem interface {
	Create(path string) (File, error)
	OpenAppend(path string) (File, error)
	Rename(oldpath, newpath string) error
}

type journal struct {
	fs Filesystem
	w  File
}

type state struct{ fs Filesystem }

func (s *state) RecordState(id, st, errMsg, errClass string) {}
func (s *state) PutResult(key string, payload []byte)        {}

// --- R1: fsync-before-rename ---

func goodPut(fs Filesystem, payload []byte) error {
	tmp, err := fs.Create("x.tmp")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(payload); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return fs.Rename("x.tmp", "x")
}

func badPut(fs Filesystem, payload []byte) error {
	tmp, err := fs.Create("x.tmp")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(payload); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return fs.Rename("x.tmp", "x") // want "rename publishes tmp without a preceding Sync"
}

func renameOnly(fs Filesystem) error {
	// Quarantine-style move of an existing file: nothing written here.
	return fs.Rename("a", "b")
}

// --- R3: write-then-sync ---

func (j *journal) goodAppend(rec []byte) error {
	if _, err := j.w.Write(rec); err != nil {
		return err
	}
	return j.w.Sync()
}

func (j *journal) badAppend(rec []byte) error {
	_, err := j.w.Write(rec) // want "File w is written but never Sync\(\)ed in this function"
	return err
}

// WriteRecord is a pass-through wrapper: the caller owns the barrier.
func (j *journal) WriteRecord(rec []byte) error {
	_, err := j.w.Write(rec)
	return err
}

func (j *journal) suppressedAppend(rec []byte) error {
	_, err := j.w.Write(rec) //commvet:ignore durability fixture exercises the escape hatch
	return err
}

// --- R2: result-before-done ---

func goodFinish(s *state, key, id string, blob []byte) {
	s.PutResult(key, blob)
	s.RecordState(id, "done", "", "")
}

func badFinish(s *state, key, id string, blob []byte) {
	s.RecordState(id, "done", "", "") // want "state \"done\" is journaled without a preceding PutResult"
	s.PutResult(key, blob)
}

func dynamicState(s *state, id, st string) {
	// Not the literal "done": out of R2's reach by design.
	s.RecordState(id, st, "", "")
}
