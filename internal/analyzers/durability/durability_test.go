package durability_test

import (
	"testing"

	"github.com/plasma-hpc/dsmcpic/internal/analysis/analysistest"
	"github.com/plasma-hpc/dsmcpic/internal/analyzers/durability"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "testdata", durability.Analyzer, "store")
}
