// Package nondeterminism guards the replay-determinism contract of the
// solver's deterministic packages (core, exchange, balance, dsmc, pic,
// diag): identical seeded runs must produce byte-identical communication
// and physics state, because checkpoint/restart recovery and the
// PerturbDelivery failure-injection tests both assume exact replay.
//
// Three sources of silent divergence are flagged:
//
//  1. Wall-clock reads — time.Now()/time.Since() calls. Timing must enter
//     these packages through an injected clock (see balance.Clock), so
//     tests can pin it; the default wiring assigns the time.Now *function
//     value* at construction, which this analyzer deliberately permits.
//  2. The global math/rand source — rand.Intn, rand.Float64, rand.Seed,
//     etc. share cross-goroutine state and are unseedable per rank. Local
//     generators (rand.New(rand.NewSource(seed)), internal/rng) are fine.
//  3. Map iteration feeding order-sensitive state — ranging over a map
//     while (a) calling Comm methods, (b) appending to a slice, or (c)
//     accumulating floats into a loop-invariant location. Go randomizes
//     map order per iteration, so any of these makes traffic or float
//     state differ between identical runs. Order-insensitive bodies
//     (integer accumulation keyed by the range key) are not flagged.
//
// Packages are selected by import-path base; code elsewhere (cmd/plasmad,
// the webui) may use wall-clock time freely.
package nondeterminism

import (
	"go/ast"
	"go/types"
	"path"

	"github.com/plasma-hpc/dsmcpic/internal/analysis"
	"github.com/plasma-hpc/dsmcpic/internal/analyzers/astq"
)

// Analyzer is the nondeterminism pass.
var Analyzer = &analysis.Analyzer{
	Name: "nondeterminism",
	Doc:  "flag wall-clock reads, global math/rand use, and order-sensitive map iteration in the deterministic solver packages",
	Run:  run,
}

// deterministicPkgs names the packages whose state must replay exactly.
// partition and commcost joined the set when the serving subsystem made
// their outputs part of the cached-result contract: the initial
// decomposition (partition) and the modeled times (commcost) both feed
// bytes that must be identical across replays of one job spec.
var deterministicPkgs = map[string]bool{
	"core":      true,
	"exchange":  true,
	"balance":   true,
	"dsmc":      true,
	"pic":       true,
	"diag":      true,
	"partition": true,
	"commcost":  true,
	// parallel chunks the kernels' index ranges across worker goroutines;
	// its decomposition (Bounds) and reduction order are part of the
	// byte-identical replay contract for a fixed (seed, workers) pair.
	"parallel": true,
	// store journals jobs and persists results; recovery must reproduce
	// the same on-disk state from the same operation sequence (LRU
	// eviction order, index contents), so its clock is injected
	// (Options.Clock) and its eviction order is a logical sequence, not
	// wall time.
	"store": true,
	// experiments drives seeded convergence/validation studies whose
	// tables are compared across runs; bench emits timing *measurements*
	// (which are wall-clock by nature) but its workload construction must
	// replay exactly, so both route time through an injectable function
	// value (var now = time.Now).
	"experiments": true,
	"bench":       true,
	// cluster routes submissions by rendezvous-hashing the canonical spec
	// key; every router replica must map a key to the same shard and emit
	// metrics/health in the same order, so its clock is injected
	// (Options.Clock) and shard/metric iteration is fixed slice order or
	// sorted keys.
	"cluster": true,
	// simmpi is the transport every deterministic package speaks through;
	// its last wall-clock consumer (the deadlock detector's deadline) now
	// reads an injected clock (Options.Clock), so the whole package holds
	// the same contract it enforces for its callers.
	"simmpi": true,
}

// globalRandFuncs are the math/rand (and math/rand/v2) package-level
// functions backed by the shared global source.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Int32": true, "Int32N": true,
	"Int64": true, "Int64N": true, "IntN": true, "N": true,
	"Uint32": true, "Uint32N": true, "Uint64": true, "Uint64N": true,
	"Uint": true, "UintN": true, "Float32": true, "Float64": true,
	"ExpFloat64": true, "NormFloat64": true, "Perm": true,
	"Shuffle": true, "Seed": true, "Read": true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	// Key on the import-path base, not the package name: command packages
	// (cmd/bench) are all named "main", and test variants carry a
	// " [pkg.test]" suffix on the path.
	if !deterministicPkgs[path.Base(analysis.TrimTestVariant(pass.Pkg.Path()))] {
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, x)
			case *ast.RangeStmt:
				checkMapRange(pass, x)
			}
			return true
		})
	}
	return nil, nil
}

// pkgFunc resolves a call to (package path, function name) if the callee
// is a package-level function of another package.
func pkgFunc(info *types.Info, call *ast.CallExpr) (string, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	if info.Selections[sel] != nil {
		return "", "" // method or field, not a package-qualified func
	}
	obj, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil {
		return "", ""
	}
	return obj.Pkg().Path(), obj.Name()
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	pkgPath, name := pkgFunc(pass.TypesInfo, call)
	// Name the package by import-path base so command packages read as
	// "bench", not "main".
	base := path.Base(analysis.TrimTestVariant(pass.Pkg.Path()))
	switch {
	case pkgPath == "time" && (name == "Now" || name == "Since" || name == "Until"):
		pass.Reportf(call.Pos(), "time.%s read in deterministic package %s; inject a clock (cf. balance.Clock) so replays and tests can pin it", name, base)
	case (pkgPath == "math/rand" || pkgPath == "math/rand/v2") && globalRandFuncs[name]:
		pass.Reportf(call.Pos(), "global rand.%s in deterministic package %s; use a per-rank seeded generator (internal/rng or rand.New)", name, base)
	}
}

// checkMapRange flags order-sensitive map iteration.
func checkMapRange(pass *analysis.Pass, rng *ast.RangeStmt) {
	t := pass.TypesInfo.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	loopVars := make(map[types.Object]bool)
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				loopVars[obj] = true
			} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
				loopVars[obj] = true
			}
		}
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if m := astq.CommMethod(pass.TypesInfo, x); m != "" {
				pass.Reportf(x.Pos(), "Comm.%s inside map iteration: message order would follow randomized map order; iterate sorted keys", m)
				return true
			}
			if isBuiltinAppend(pass.TypesInfo, x) && !appendsBareKey(pass.TypesInfo, x, rng) {
				pass.Reportf(x.Pos(), "append inside map iteration: element order would follow randomized map order; iterate sorted keys")
			}
		case *ast.AssignStmt:
			checkFloatAccum(pass, x, loopVars)
		}
		return true
	})
}

// appendsBareKey reports whether call is `append(s, k)` where k is exactly
// the range key — the first half of the canonical collect-keys-then-sort
// idiom, which is the *fix* for order-sensitive iteration and must not be
// flagged. Appending values (or anything derived from them) stays flagged:
// a value slice built in map order rarely gets re-sorted meaningfully.
func appendsBareKey(info *types.Info, call *ast.CallExpr, rng *ast.RangeStmt) bool {
	keyID, ok := rng.Key.(*ast.Ident)
	if !ok || len(call.Args) != 2 {
		return false
	}
	arg, ok := call.Args[1].(*ast.Ident)
	if !ok {
		return false
	}
	keyObj := info.Defs[keyID]
	if keyObj == nil {
		keyObj = info.Uses[keyID]
	}
	return keyObj != nil && info.Uses[arg] == keyObj
}

// isBuiltinAppend reports whether call invokes the append builtin.
func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// checkFloatAccum flags compound float accumulation (s += v) whose target
// is the same location every iteration: float addition is not associative,
// so the sum's bits depend on map order. Accumulation indexed by the range
// key (m[k] += v) touches a distinct location per iteration and is exempt.
func checkFloatAccum(pass *analysis.Pass, as *ast.AssignStmt, loopVars map[types.Object]bool) {
	switch as.Tok.String() {
	case "+=", "-=", "*=", "/=":
	default:
		return
	}
	for _, lhs := range as.Lhs {
		if !astq.IsFloat(pass.TypesInfo.TypeOf(lhs)) {
			continue
		}
		usesLoopVar := false
		ast.Inspect(lhs, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := pass.TypesInfo.Uses[id]; obj != nil && loopVars[obj] {
					usesLoopVar = true
				}
			}
			return !usesLoopVar
		})
		if !usesLoopVar {
			pass.Reportf(as.Pos(), "floating-point accumulation over map iteration order is not replayable (float addition is order-sensitive); iterate sorted keys")
		}
	}
}
