package nondeterminism_test

import (
	"testing"

	"github.com/plasma-hpc/dsmcpic/internal/analysis/analysistest"
	"github.com/plasma-hpc/dsmcpic/internal/analyzers/nondeterminism"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "testdata", nondeterminism.Analyzer, "core")
}

// TestPartitionPackage and TestCommcostPackage cover the two packages
// added to the deterministic set for the serving subsystem: the initial
// decomposition and the modeled times are part of the cached-result
// contract, so both must replay exactly.
func TestPartitionPackage(t *testing.T) {
	analysistest.Run(t, "testdata", nondeterminism.Analyzer, "partition")
}

func TestCommcostPackage(t *testing.T) {
	analysistest.Run(t, "testdata", nondeterminism.Analyzer, "commcost")
}

// TestStorePackage covers the persistence layer's membership in the
// deterministic set: replaying one journal + operation sequence must
// rebuild the same on-disk state (LRU order, index bytes), so wall-clock
// reads and map-order-sensitive iteration are banned there too.
func TestStorePackage(t *testing.T) {
	analysistest.Run(t, "testdata", nondeterminism.Analyzer, "store")
}

// TestOutsideDeterministicSet proves the analyzer is scoped: the same
// patterns in a package outside the deterministic set produce nothing.
func TestOutsideDeterministicSet(t *testing.T) {
	analysistest.Run(t, "testdata", nondeterminism.Analyzer, "webui")
}
