package nondeterminism_test

import (
	"testing"

	"github.com/plasma-hpc/dsmcpic/internal/analysis/analysistest"
	"github.com/plasma-hpc/dsmcpic/internal/analyzers/nondeterminism"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "testdata", nondeterminism.Analyzer, "core")
}

// TestOutsideDeterministicSet proves the analyzer is scoped: the same
// patterns in a package outside the deterministic set produce nothing.
func TestOutsideDeterministicSet(t *testing.T) {
	analysistest.Run(t, "testdata", nondeterminism.Analyzer, "webui")
}
