package nondeterminism_test

import (
	"testing"

	"github.com/plasma-hpc/dsmcpic/internal/analysis/analysistest"
	"github.com/plasma-hpc/dsmcpic/internal/analyzers/nondeterminism"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "testdata", nondeterminism.Analyzer, "core")
}

// TestPartitionPackage and TestCommcostPackage cover the two packages
// added to the deterministic set for the serving subsystem: the initial
// decomposition and the modeled times are part of the cached-result
// contract, so both must replay exactly.
func TestPartitionPackage(t *testing.T) {
	analysistest.Run(t, "testdata", nondeterminism.Analyzer, "partition")
}

func TestCommcostPackage(t *testing.T) {
	analysistest.Run(t, "testdata", nondeterminism.Analyzer, "commcost")
}

// TestStorePackage covers the persistence layer's membership in the
// deterministic set: replaying one journal + operation sequence must
// rebuild the same on-disk state (LRU order, index bytes), so wall-clock
// reads and map-order-sensitive iteration are banned there too.
func TestStorePackage(t *testing.T) {
	analysistest.Run(t, "testdata", nondeterminism.Analyzer, "store")
}

// TestExperimentsPackage covers the experiments driver's membership: its
// seeded tables are compared across runs, so wall-clock and global-rand
// reads must go through injected values there too.
func TestExperimentsPackage(t *testing.T) {
	analysistest.Run(t, "testdata", nondeterminism.Analyzer, "experiments")
}

// TestBenchPackage proves membership is keyed on the import-path base:
// the fixture is `package main` in a directory named "bench", matching
// cmd/bench, and is still analyzed.
func TestBenchPackage(t *testing.T) {
	analysistest.Run(t, "testdata", nondeterminism.Analyzer, "bench")
}

// TestSimmpiPackage covers the transport's membership: with the deadlock
// detector's deadline on an injected clock (Options.Clock), simmpi holds
// the same no-wall-clock contract it enforces for its callers.
func TestSimmpiPackage(t *testing.T) {
	analysistest.Run(t, "testdata", nondeterminism.Analyzer, "simmpi")
}

// TestClusterPackage covers the shard router's membership: every router
// replica must route a key to the same shard and emit identical
// aggregated-metrics bytes, so wall-clock reads are injected and metric
// iteration is collect-then-sort.
func TestClusterPackage(t *testing.T) {
	analysistest.Run(t, "testdata", nondeterminism.Analyzer, "cluster")
}

// TestOutsideDeterministicSet proves the analyzer is scoped: the same
// patterns in a package outside the deterministic set produce nothing.
func TestOutsideDeterministicSet(t *testing.T) {
	analysistest.Run(t, "testdata", nondeterminism.Analyzer, "webui")
}
