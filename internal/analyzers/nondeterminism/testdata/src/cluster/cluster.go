// Fixture named "cluster": the shard router joined the deterministic set
// because every router replica must route a key to the same shard and
// emit the same aggregated metrics bytes — shard iteration is fixed
// configuration order, metric suffixes are sorted before emission, and
// the health clock is injected (Options.Clock).
package cluster

import "time"

// Clock injection: assigning the time.Now function value is the sanctioned
// wiring; calling it in-package is not.
var defaultClock func() time.Time = time.Now

func probeStamp() time.Time {
	return time.Now() // want "time.Now read in deterministic package cluster"
}

func probeAge(last time.Time) time.Duration {
	return time.Since(last) // want "time.Since read in deterministic package cluster"
}

// metricSuffixes is the canonical fix used by the aggregated /metrics
// endpoint: collect the bare range keys, then sort — same bytes every
// scrape.
func metricSuffixes(sums map[string]float64) []string {
	var keys []string
	for k := range sums {
		keys = append(keys, k) // bare range key: collect-then-sort idiom, fine
	}
	return keys
}

// metricsInMapOrder is the bug the fixture guards against: an aggregated
// metrics page whose line order follows map order diffs on every scrape.
func metricsInMapOrder(sums map[string]float64) []float64 {
	var vals []float64
	for _, v := range sums {
		vals = append(vals, v) // want "append inside map iteration"
	}
	return vals
}
