// Fixture named "simmpi": the transport joined the deterministic set once
// its deadlock detector's deadline started reading an injected clock
// (Options.Clock) instead of the wall clock, closing the carried ROADMAP
// item. Message contents and counter state were always deterministic; the
// clock was the last holdout.
package simmpi

import "time"

// Clock injection: assigning the time.Now function value is the sanctioned
// wiring — NewWorld defaults Options.Clock exactly like this, and the call
// happens under the caller's control.
var defaultClock func() time.Time = time.Now

func deadlineExceeded(start time.Time, limit time.Duration) bool {
	return time.Since(start) > limit // want "time.Since read in deterministic package simmpi"
}

func stampDelivery() time.Time {
	return time.Now() // want "time.Now read in deterministic package simmpi"
}

// drainOrder is the canonical fix for iterating a mailbox index: collect
// the bare range keys, then sort — deterministic and analyzer-clean.
func drainOrder(pending map[int]int) []int {
	var ranks []int
	for r := range pending {
		ranks = append(ranks, r) // bare range key: collect-then-sort idiom, fine
	}
	return ranks
}

// flushInMapOrder is the bug the fixture guards against: draining mailbox
// payloads in map order would deliver (and count) traffic in a different
// order every run.
func flushInMapOrder(pending map[int][]byte) [][]byte {
	var blobs [][]byte
	for _, b := range pending {
		blobs = append(blobs, b) // want "append inside map iteration"
	}
	return blobs
}
