// Fixture for the nondeterminism analyzer: a command package (package
// main) in a directory named "bench". Membership is keyed on the
// import-path base, so the package name "main" does not exempt it.
package main

import "time"

func stamp() string {
	return time.Now().Format(time.RFC3339) // want "time.Now read in deterministic package bench"
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want "time.Since read in deterministic package bench"
}

var now = time.Now // function-value wiring stays legal

func main() { _ = stamp() }
