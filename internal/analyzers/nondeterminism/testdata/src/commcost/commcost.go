// Fixture named "commcost": modeled communication seconds feed cached
// results, so the cost model must replay bit-exactly.
package commcost

// pairFractionFloat is the bug the real package had before joining the
// deterministic set: float accumulation over map order makes the mix's
// last bits depend on Go's randomized iteration.
func pairFractionFloat(sizes map[int]int) float64 {
	var pairs float64
	for _, s := range sizes {
		pairs += float64(s) * float64(s-1) // want "floating-point accumulation over map iteration order"
	}
	return pairs
}

// pairFractionInt is the fix: integer accumulation commutes exactly, so
// the conversion to float happens once, after an order-insensitive sum.
func pairFractionInt(sizes map[int]int) float64 {
	var pairs int64
	for _, s := range sizes {
		pairs += int64(s) * int64(s-1)
	}
	return float64(pairs)
}
