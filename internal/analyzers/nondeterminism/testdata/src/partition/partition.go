// Fixture named "partition": the decomposition package joined the
// deterministic set when the serving subsystem made the initial partition
// part of the cached-result contract.
package partition

import (
	"math/rand"
	"time"
)

func seededGrowth(seed uint64) int {
	r := rand.New(rand.NewSource(int64(seed))) // injectable seeded source: fine
	return r.Intn(4)
}

func randomTieBreak() int {
	return rand.Intn(4) // want "global rand.Intn in deterministic package partition"
}

func timedRefinement() time.Duration {
	t0 := time.Now()      // want "time.Now read in deterministic package partition"
	return time.Since(t0) // want "time.Since read in deterministic package partition"
}

func gainBuckets(gains map[int]float64) []int {
	var order []int
	for cell := range gains {
		order = append(order, cell) // bare range key: collect-then-sort idiom, fine
	}
	return order
}

func frontierInMapOrder(frontier map[int][]int32) []int32 {
	var out []int32
	for _, cells := range frontier {
		out = append(out, cells...) // want "append inside map iteration"
	}
	return out
}
