// Fixture for the nondeterminism analyzer, named "core" so it falls inside
// the deterministic package set.
package core

import (
	"math/rand"
	"sort"
	"time"
)

type Comm struct{}

func (c *Comm) Send(dst, tag int, data []byte) {}

const tagFixture = 0x100

// --- wall clock ---

func clocky() time.Time {
	return time.Now() // want "time.Now read in deterministic package core"
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want "time.Since read in deterministic package core"
}

// Explicit wiring: forwarding the function value is the sanctioned way to
// default an injectable clock — only *calls* are divergence.
var defaultClock = time.Now

type timed struct{ clock func() time.Time }

func newTimed() *timed { return &timed{clock: time.Now} }

// --- global math/rand ---

func roll() int {
	return rand.Intn(6) // want "global rand.Intn in deterministic package core"
}

func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "global rand.Shuffle"
}

func localGenerator(seed int64) float64 {
	r := rand.New(rand.NewSource(seed)) // per-rank seeded generator: fine
	return r.Float64()
}

// --- map iteration order ---

func sumInMapOrder(m map[string]float64) float64 {
	var s float64
	for _, v := range m {
		s += v // want "floating-point accumulation over map iteration order"
	}
	return s
}

func sumSorted(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k) // collect-then-sort idiom: the fix, not a bug
	}
	sort.Strings(keys)
	var s float64
	for _, k := range keys {
		s += k2f(m, k)
	}
	return s
}

func k2f(m map[string]float64, k string) float64 { return m[k] }

func keyedAccumulation(m map[string]float64) map[string]float64 {
	out := make(map[string]float64)
	for k, v := range m {
		out[k] += v // distinct location per key: order-insensitive
	}
	return out
}

func intAccumulation(m map[string]int64) int64 {
	var n int64
	for _, v := range m {
		n += v // integer addition commutes exactly: order-insensitive
	}
	return n
}

func valuesInMapOrder(m map[string]float64) []float64 {
	var out []float64
	for _, v := range m {
		out = append(out, v) // want "append inside map iteration"
	}
	return out
}

func sendInMapOrder(c *Comm, m map[int][]byte) {
	for dst, payload := range m {
		c.Send(dst, tagFixture, payload) // want "Comm.Send inside map iteration"
	}
}

func sliceRange(xs []float64) float64 {
	var s float64
	for _, v := range xs {
		s += v // slices iterate in index order: deterministic
	}
	return s
}
