// Negative fixture: a package outside the deterministic set may use the
// wall clock and the global rand source freely.
package webui

import (
	"math/rand"
	"time"
)

func Jitter() time.Duration {
	return time.Duration(rand.Intn(1000)) * time.Millisecond
}

func Stamp() time.Time { return time.Now() }

func SumAny(m map[string]float64) float64 {
	var s float64
	for _, v := range m {
		s += v
	}
	return s
}
