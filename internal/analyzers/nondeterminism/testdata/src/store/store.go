// Fixture named "store": the persistence layer joined the deterministic
// set because recovery must rebuild identical on-disk state from an
// identical operation sequence — LRU eviction order and index contents
// included. Its clock is injected (Options.Clock) and eviction is driven
// by a logical sequence number, never wall time.
package store

import "time"

// Clock injection: assigning the time.Now function value is the sanctioned
// wiring (the call happens outside the package, under the caller's
// control); calling it in-package is not.
var defaultClock func() time.Time = time.Now

func syncAge(last time.Time) time.Duration {
	return time.Since(last) // want "time.Since read in deterministic package store"
}

func stampTouch() time.Time {
	return time.Now() // want "time.Now read in deterministic package store"
}

// evictionOrder is the canonical fix: collect the bare range keys, then
// sort by the logical sequence — deterministic and analyzer-clean.
func evictionOrder(touched map[string]int64) []string {
	var keys []string
	for k := range touched {
		keys = append(keys, k) // bare range key: collect-then-sort idiom, fine
	}
	return keys
}

// indexInMapOrder is the bug the fixture guards against: an index slice
// built in map order persists a different byte sequence every run.
func indexInMapOrder(touched map[string]int64) []int64 {
	var seqs []int64
	for _, seq := range touched {
		seqs = append(seqs, seq) // want "append inside map iteration"
	}
	return seqs
}
