// Fixture for the nondeterminism analyzer, named "experiments" so it
// falls inside the deterministic package set (the experiment tables are
// seeded and compared across runs).
package experiments

import (
	"math/rand"
	"time"
)

func stamp() time.Time {
	return time.Now() // want "time.Now read in deterministic package experiments"
}

func jitter() int {
	return rand.Intn(100) // want "global rand.Intn in deterministic package experiments"
}

// Assigning the function value is the sanctioned injectable-clock wiring;
// only calls are flagged.
var now = time.Now

func pinned() time.Time { return now() }
