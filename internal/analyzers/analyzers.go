// Package analyzers registers the commvet suite: the static checks that
// enforce this repo's SPMD communication, determinism, durability, and
// hot-path allocation discipline. See DESIGN.md ("Static analysis & SPMD
// discipline") for the rationale behind each pass and ROADMAP.md for
// candidate packages not yet covered.
package analyzers

import (
	"github.com/plasma-hpc/dsmcpic/internal/analysis"
	"github.com/plasma-hpc/dsmcpic/internal/analyzers/cancelcheck"
	"github.com/plasma-hpc/dsmcpic/internal/analyzers/collectivesync"
	"github.com/plasma-hpc/dsmcpic/internal/analyzers/durability"
	"github.com/plasma-hpc/dsmcpic/internal/analyzers/floatcompare"
	"github.com/plasma-hpc/dsmcpic/internal/analyzers/hotalloc"
	"github.com/plasma-hpc/dsmcpic/internal/analyzers/nondeterminism"
	"github.com/plasma-hpc/dsmcpic/internal/analyzers/tagdiscipline"
)

// All returns the full commvet suite in reporting order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		collectivesync.Analyzer,
		cancelcheck.Analyzer,
		tagdiscipline.Analyzer,
		nondeterminism.Analyzer,
		floatcompare.Analyzer,
		durability.Analyzer,
		hotalloc.Analyzer,
	}
}
