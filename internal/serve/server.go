package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/plasma-hpc/dsmcpic/internal/core"
	"github.com/plasma-hpc/dsmcpic/internal/metrics"
	"github.com/plasma-hpc/dsmcpic/internal/simmpi"
	"github.com/plasma-hpc/dsmcpic/internal/store"
)

// ErrDraining is returned by Submit once graceful shutdown has begun.
var ErrDraining = errors.New("serve: server is draining, not accepting jobs")

// ErrNotFound is returned for unknown job IDs.
var ErrNotFound = errors.New("serve: no such job")

// Options configures a Server. Zero values select the defaults.
type Options struct {
	// Workers is the concurrent-worlds cap: at most this many
	// simmpi.Worlds run at once, regardless of queue depth (default 2).
	Workers int
	// QueueCap bounds the admission queue; submissions beyond it are
	// rejected with ErrQueueFull (default 16).
	QueueCap int
	// CacheCap bounds the number of retained jobs (results + terminal
	// statuses). Oldest-touched terminal jobs are evicted first
	// (default 64).
	CacheCap int
	// MaxRanks / MaxSteps bound a single job, so one submission cannot
	// monopolize the host (defaults 16 and 512).
	MaxRanks int
	MaxSteps int
	// MaxSimWorkers bounds a job's per-rank kernel worker count
	// (JobSpec.SimWorkers): total goroutines scale as ranks × workers, so
	// an uncapped spec could oversubscribe the host (default 8).
	MaxSimWorkers int
	// FrameRingCap bounds the per-job in-memory snapshot-frame ring:
	// beyond it the oldest frames are dropped (the stream reports the
	// drop count). Default 256 frames.
	FrameRingCap int
	// IDPrefix is prepended to every generated job ID ("s0-" yields
	// "s0-j-1"). The cluster router routes status/result/frames requests
	// to the owning shard by this prefix; a standalone daemon leaves it
	// empty.
	IDPrefix string
	// Calibration, when non-nil, replaces the built-in cost-model unit
	// costs of every job with measured ones (see core.CalibrationProfile
	// and cmd/bench -calibrate).
	Calibration *core.CalibrationProfile

	// Store, when non-nil, persists the job table and result cache
	// across restarts (see internal/store). All store methods are
	// nil-receiver-safe, so the wiring below calls them unconditionally.
	Store *store.Store
	// Recovered is the store's startup report; NewServer folds its jobs
	// back into the in-memory tables (done jobs become servable cache
	// entries, unfinished ones are requeued unless NoRequeue is set).
	Recovered *store.RecoveryReport
	// NoRequeue finalizes recovered admitted-but-unfinished jobs as
	// failed ("interrupted by restart") instead of re-running them.
	NoRequeue bool
	// JobTimeout, when positive, is the per-job wall-clock deadline:
	// a running job past it is cooperatively canceled through the same
	// Config.Cancel bridge as an explicit cancel, and reports error
	// class "timeout".
	JobTimeout time.Duration
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.QueueCap <= 0 {
		o.QueueCap = 16
	}
	if o.CacheCap <= 0 {
		o.CacheCap = 64
	}
	if o.MaxRanks <= 0 {
		o.MaxRanks = 16
	}
	if o.MaxSteps <= 0 {
		o.MaxSteps = 512
	}
	if o.MaxSimWorkers <= 0 {
		o.MaxSimWorkers = 8
	}
	if o.FrameRingCap <= 0 {
		o.FrameRingCap = 256
	}
	return o
}

// SubmitOutcome tells a client how its submission was resolved.
type SubmitOutcome struct {
	Job *Job
	// CacheHit: the job already completed; the result is served from the
	// deterministic cache without constructing a world.
	CacheHit bool
	// Coalesced: an identical job is queued or running; this submission
	// was folded into it (singleflight).
	Coalesced bool
	// SharedHit: a peer shard already completed this job; the result was
	// adopted from the cluster-shared results directory without
	// constructing a world. Reported alongside CacheHit (a shared hit is
	// a cache hit whose bytes came from a peer).
	SharedHit bool
}

// Server multiplexes simulation jobs over a bounded worker pool with a
// deterministic result cache. It is safe for concurrent use.
type Server struct {
	opts  Options
	queue *jobQueue
	wg    sync.WaitGroup

	mu    sync.Mutex
	byKey map[string]*Job // latest job per canonical spec key
	byID  map[string]*Job
	order []string // job IDs in creation order, for stable listing
	seq   int64
	// touched tracks cache recency per job ID (LRU eviction).
	touched map[string]time.Time
	// run-time history for the Retry-After estimate.
	runSecondsSum float64
	runsFinished  int64
	// phaseSeconds aggregates measured per-phase wall time across all
	// completed jobs (the /metrics payload).
	phaseSeconds map[string]float64

	draining atomic.Bool

	// counters (atomic: read lock-free by /metrics).
	nSubmitted   atomic.Int64
	nCoalesced   atomic.Int64
	nCacheHits   atomic.Int64
	nCompleted   atomic.Int64
	nFailed      atomic.Int64
	nCanceled    atomic.Int64
	nRejected    atomic.Int64
	nWorldsBuilt atomic.Int64
	nRunning     atomic.Int64 // workers currently executing a world
	nRecovered   atomic.Int64 // jobs restored from the persistent store
	nRequeued    atomic.Int64 // recovered unfinished jobs re-admitted
	nSharedHits  atomic.Int64 // cache hits served from the cluster-shared dir
}

// NewServer builds a server, folds in any recovered persistent state,
// and starts the worker pool.
func NewServer(opts Options) *Server {
	o := opts.withDefaults()
	s := &Server{
		opts:         o,
		queue:        newJobQueue(o.QueueCap),
		byKey:        make(map[string]*Job),
		byID:         make(map[string]*Job),
		touched:      make(map[string]time.Time),
		phaseSeconds: make(map[string]float64),
	}
	s.recover()
	s.wg.Add(o.Workers)
	for i := 0; i < o.Workers; i++ {
		go s.worker()
	}
	return s
}

// recover folds the store's startup report into the job tables: done jobs
// become servable cache entries (their result bytes come verified off
// disk, so a resubmission is a byte-identical cache hit), failed/canceled
// jobs keep their terminal status, and admitted-but-unfinished jobs are
// requeued — a SIGKILL costs at most the work that was in flight. Runs
// before the workers start, so no locking subtleties.
func (s *Server) recover() {
	rep := s.opts.Recovered
	if rep == nil {
		return
	}
	now := time.Now()
	for _, rec := range rep.Jobs {
		var spec JobSpec
		if err := json.Unmarshal(rec.Spec, &spec); err != nil {
			continue // journaled spec unreadable: nothing to serve or rerun
		}
		norm, err := spec.Normalized()
		if err != nil || norm.Key() != rec.Key {
			continue // spec no longer normalizes to the journaled key
		}
		var j *Job
		switch rec.State {
		case "done":
			blob, ok := s.opts.Store.GetResult(rec.Key)
			if !ok {
				continue // store.Open already dropped these; belt and braces
			}
			j = recoveredJob(rec.ID, norm, StateDone, blob, "", "", now)
			if fb, fok := s.opts.Store.GetFrames(rec.Key); fok {
				j.setFramesBlob(fb) // replayed animations are byte-identical too
			}
		case "failed":
			j = recoveredJob(rec.ID, norm, StateFailed, nil, rec.Err, rec.ErrClass, now)
		case "canceled":
			j = recoveredJob(rec.ID, norm, StateCanceled, nil, rec.Err, rec.ErrClass, now)
		default: // queued or running at crash time
			if s.opts.NoRequeue {
				j = recoveredJob(rec.ID, norm, StateFailed, nil,
					"interrupted by daemon restart (requeue disabled)", "interrupted", now)
				s.opts.Store.RecordState(rec.ID, "failed", "interrupted by daemon restart (requeue disabled)", "interrupted")
			} else {
				j = recoveredJob(rec.ID, norm, StateQueued, nil, "", "", now)
				if s.queue.push(j) {
					s.opts.Store.RecordState(rec.ID, "queued", "", "")
					s.nRequeued.Add(1)
				} else {
					j = recoveredJob(rec.ID, norm, StateFailed, nil,
						"recovery queue overflow", "interrupted", now)
					s.opts.Store.RecordState(rec.ID, "failed", "recovery queue overflow", "interrupted")
				}
			}
		}
		j.frameCap = s.opts.FrameRingCap
		s.byKey[rec.Key] = j
		s.byID[j.ID] = j
		s.order = append(s.order, j.ID)
		s.touched[j.ID] = now
		s.nRecovered.Add(1)
	}
	recs := rep.Jobs
	if p := s.opts.IDPrefix; p != "" {
		// MaxJobSeq parses bare "j-<n>"; strip the shard prefix first so a
		// recovered shard continues its sequence instead of restarting it.
		recs = make([]store.JobRecord, len(rep.Jobs))
		copy(recs, rep.Jobs)
		for i := range recs {
			recs[i].ID = strings.TrimPrefix(recs[i].ID, p)
		}
	}
	if seq := store.MaxJobSeq(recs); seq > s.seq {
		s.seq = seq
	}
}

// WorldsBuilt returns how many simmpi.Worlds this server has constructed —
// the quantity the cache-determinism tests pin (a cache hit must not move
// it).
func (s *Server) WorldsBuilt() int64 { return s.nWorldsBuilt.Load() }

// Submit resolves a job spec: cache hit, coalesce onto an identical
// in-flight job, or admit a new one. Errors: ErrDraining, *ErrQueueFull,
// or a validation error from normalization.
func (s *Server) Submit(spec JobSpec) (SubmitOutcome, error) {
	if s.draining.Load() {
		return SubmitOutcome{}, ErrDraining
	}
	norm, err := spec.Normalized()
	if err != nil {
		return SubmitOutcome{}, err
	}
	if norm.Ranks > s.opts.MaxRanks {
		return SubmitOutcome{}, fmt.Errorf("serve: ranks %d exceeds server cap %d", norm.Ranks, s.opts.MaxRanks)
	}
	if norm.Steps > s.opts.MaxSteps {
		return SubmitOutcome{}, fmt.Errorf("serve: steps %d exceeds server cap %d", norm.Steps, s.opts.MaxSteps)
	}
	if norm.SimWorkers > s.opts.MaxSimWorkers {
		return SubmitOutcome{}, fmt.Errorf("serve: sim_workers %d exceeds server cap %d", norm.SimWorkers, s.opts.MaxSimWorkers)
	}
	s.nSubmitted.Add(1)
	key := norm.Key()
	now := time.Now()

	s.mu.Lock()
	if prev, ok := s.byKey[key]; ok {
		switch prev.stateNow() {
		case StateDone:
			prev.addSubmit()
			s.touched[prev.ID] = now
			s.mu.Unlock()
			s.nCacheHits.Add(1)
			s.opts.Store.Touch(key) // keep hot results out of the LRU's reach
			return SubmitOutcome{Job: prev, CacheHit: true}, nil
		case StateQueued, StateRunning:
			prev.addSubmit()
			s.touched[prev.ID] = now
			s.mu.Unlock()
			s.nCoalesced.Add(1)
			return SubmitOutcome{Job: prev, Coalesced: true}, nil
		default:
			// failed or canceled: fall through and retry with a fresh job;
			// the old one stays addressable by ID until evicted.
		}
	}
	// Cluster-shared cache: a peer shard may already have run this spec.
	// Adopting its verified bytes is a cache hit that never builds a
	// world — the cluster-wide extension of the singleflight guarantee.
	if blob, ok := s.opts.Store.LookupShared(key); ok {
		s.seq++
		id := fmt.Sprintf("%sj-%d", s.opts.IDPrefix, s.seq)
		j := recoveredJob(id, norm, StateDone, blob, "", "", now)
		j.frameCap = s.opts.FrameRingCap
		if fb, fok := s.opts.Store.LookupSharedFrames(key); fok {
			j.setFramesBlob(fb)
		}
		s.byKey[key] = j
		s.byID[id] = j
		s.order = append(s.order, id)
		s.touched[id] = now
		s.evictLocked()
		s.mu.Unlock()
		s.nSharedHits.Add(1)
		s.nCacheHits.Add(1)
		// Adopt locally so restarts serve it like any natively run job:
		// admit → frames → result → done, the durable ordering.
		if specBlob, merr := json.Marshal(norm); merr == nil {
			s.opts.Store.RecordAdmit(id, key, specBlob)
		}
		if fb := j.framesBlob(); len(fb) > 0 {
			s.opts.Store.PutFrames(key, fb)
		}
		s.opts.Store.PutResult(key, blob)
		s.opts.Store.RecordState(id, "done", "", "")
		return SubmitOutcome{Job: j, CacheHit: true, SharedHit: true}, nil
	}

	s.seq++
	j := newJob(fmt.Sprintf("%sj-%d", s.opts.IDPrefix, s.seq), norm, now)
	j.frameCap = s.opts.FrameRingCap
	s.byKey[key] = j
	s.byID[j.ID] = j
	s.order = append(s.order, j.ID)
	s.touched[j.ID] = now
	s.evictLocked()
	s.mu.Unlock()

	if !s.queue.push(j) {
		s.mu.Lock()
		delete(s.byID, j.ID)
		delete(s.touched, j.ID)
		if s.byKey[key] == j {
			delete(s.byKey, key)
		}
		if n := len(s.order); n > 0 && s.order[n-1] == j.ID {
			s.order = s.order[:n-1]
		}
		s.mu.Unlock()
		s.nRejected.Add(1)
		return SubmitOutcome{}, &ErrQueueFull{
			Depth:             s.queue.depth(),
			RetryAfterSeconds: s.retryAfterEstimate(),
		}
	}
	if specBlob, err := json.Marshal(norm); err == nil {
		s.opts.Store.RecordAdmit(j.ID, key, specBlob)
	}
	return SubmitOutcome{Job: j}, nil
}

// retryAfterEstimate projects when queue capacity frees up: queue depth ×
// mean job run time / workers, at least 1 second.
func (s *Server) retryAfterEstimate() int {
	s.mu.Lock()
	mean := 2.0 // prior before any job has finished
	if s.runsFinished > 0 {
		mean = s.runSecondsSum / float64(s.runsFinished)
	}
	s.mu.Unlock()
	est := math.Ceil(float64(s.queue.depth()) * mean / float64(s.opts.Workers))
	if est < 1 {
		est = 1
	}
	return int(est)
}

// evictLocked trims the retained-job set to CacheCap, dropping the
// oldest-touched terminal jobs first. Running and queued jobs are never
// evicted. Caller holds s.mu.
func (s *Server) evictLocked() {
	for len(s.byID) > s.opts.CacheCap {
		var victim *Job
		var victimAt time.Time
		for id, j := range s.byID {
			if !j.stateNow().terminal() {
				continue
			}
			at := s.touched[id]
			if victim == nil || at.Before(victimAt) {
				victim, victimAt = j, at
			}
		}
		if victim == nil {
			return // everything retained is live
		}
		s.opts.Store.DropJob(victim.ID)
		delete(s.byID, victim.ID)
		delete(s.touched, victim.ID)
		if s.byKey[victim.Key] == victim {
			delete(s.byKey, victim.Key)
		}
		for i, id := range s.order {
			if id == victim.ID {
				s.order = append(s.order[:i], s.order[i+1:]...)
				break
			}
		}
	}
}

// Get returns the job with the given ID.
func (s *Server) Get(id string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.byID[id]
	if !ok {
		return nil, ErrNotFound
	}
	return j, nil
}

// CancelJob requests cancellation of a job by ID. Queued jobs finalize as
// canceled when a worker dequeues them; running jobs abort at their next
// cancellation point. Terminal jobs are left untouched.
func (s *Server) CancelJob(id string) (*Job, error) {
	j, err := s.Get(id)
	if err != nil {
		return nil, err
	}
	if !j.stateNow().terminal() {
		j.Cancel()
	}
	return j, nil
}

// List snapshots every retained job in creation order.
func (s *Server) List() []Status {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		if j, ok := s.byID[id]; ok {
			jobs = append(jobs, j)
		}
	}
	s.mu.Unlock()
	out := make([]Status, len(jobs))
	for i, j := range jobs {
		out[i] = j.status()
	}
	return out
}

// worker is one slot of the concurrent-worlds cap.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		j, ok := s.queue.pop()
		if !ok {
			return
		}
		s.runJob(j)
	}
}

// runJob executes one job in a fresh simmpi.World, or finalizes it as
// canceled if cancellation won the race while it sat in the queue.
func (s *Server) runJob(j *Job) {
	s.nRunning.Add(1)
	defer s.nRunning.Add(-1)
	if !j.markRunning(time.Now()) {
		j.finish(nil, simmpi.ErrCanceled, time.Now())
		s.nCanceled.Add(1)
		s.recordTerminal(j)
		return
	}
	s.opts.Store.RecordState(j.ID, "running", "", "")
	if s.opts.JobTimeout > 0 {
		timer := time.AfterFunc(s.opts.JobTimeout, func() {
			j.markDeadlineExceeded(s.opts.JobTimeout)
			j.Cancel()
		})
		defer timer.Stop()
	}
	cfg, err := j.Spec.BuildConfig()
	if err != nil {
		j.finish(nil, err, time.Now())
		s.nFailed.Add(1)
		s.recordTerminal(j)
		return
	}
	if s.opts.Calibration != nil {
		cfg.Cost = s.opts.Calibration.Apply(cfg.Cost)
	}
	coll := metrics.NewCollector(j.Spec.Ranks, nil)
	cfg.Metrics = coll
	cfg.Cancel = j.cancel
	cfg.OnStep = func(step int, sv *core.Solver) {
		// Symmetric on every rank: the particle-count allreduce is itself a
		// collective. Only rank 0 appends the event.
		tot := sv.Comm.AllreduceInt64([]int64{int64(sv.St.Len())})
		if sv.Comm.Rank() == 0 {
			j.recordProgress(ProgressEvent{
				Step:         step,
				Particles:    tot[0],
				PhaseSeconds: coll.Rank(0).StepPhaseSeconds(),
			})
		}
	}
	if cfg.SnapshotEvery > 0 {
		// Delivered on rank 0 only (captureSnapshot gates it); marshal
		// here, once — every later read of this frame serves these bytes.
		cfg.OnSnapshot = func(f core.FieldFrame) {
			line, merr := json.Marshal(f)
			if merr != nil {
				return
			}
			j.recordFrame(append(line, '\n'))
		}
	}

	s.nWorldsBuilt.Add(1)
	world := simmpi.NewWorld(j.Spec.Ranks, simmpi.Options{})
	stats, err := core.Run(world, cfg)
	now := time.Now()
	if err != nil {
		j.finish(nil, err, now)
		if j.stateNow() == StateCanceled {
			s.nCanceled.Add(1)
		} else {
			s.nFailed.Add(1)
		}
		s.recordTerminal(j)
		return
	}
	res := buildResult(j.Key, j.Spec, stats)
	j.finish(&res, nil, now)
	s.nCompleted.Add(1)
	s.recordTerminal(j)

	s.mu.Lock()
	s.runSecondsSum += j.runSeconds()
	s.runsFinished++
	for name, samples := range coll.PhaseDurations() {
		var sum float64
		for _, v := range samples {
			sum += v
		}
		s.phaseSeconds[name] += sum
	}
	s.mu.Unlock()
}

// recordTerminal persists a job's terminal outcome. Result bytes land
// durably *before* the "done" state record: journal replay drops a done
// job whose result is missing, so this ordering guarantees a recovered
// done job is always servable byte-identically.
func (s *Server) recordTerminal(j *Job) {
	if s.opts.Store == nil {
		return
	}
	st := j.status()
	if blob := j.result(); blob != nil {
		if fb := j.framesBlob(); len(fb) > 0 {
			s.opts.Store.PutFrames(j.Key, fb)
		}
		s.opts.Store.PutResult(j.Key, blob)
	}
	s.opts.Store.RecordState(j.ID, string(st.State), st.Error, st.ErrClass)
}

// Drain performs graceful shutdown: admission stops (Submit returns
// ErrDraining), already-admitted jobs run to completion, and after timeout
// any still-running jobs are cooperatively canceled. Returns once every
// worker has exited.
func (s *Server) Drain(timeout time.Duration) {
	s.draining.Store(true)
	s.queue.close()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return
	case <-time.After(timeout):
	}
	// Too slow: cancel everything still live; cancellation points unblock
	// the worlds, so the workers exit promptly.
	s.mu.Lock()
	live := make([]*Job, 0)
	for _, j := range s.byID {
		if !j.stateNow().terminal() {
			live = append(live, j)
		}
	}
	s.mu.Unlock()
	sort.Slice(live, func(a, b int) bool { return live[a].ID < live[b].ID })
	for _, j := range live {
		j.Cancel()
	}
	<-done
}

// HealthStatus is the /healthz readiness payload.
type HealthStatus struct {
	// Status is "ok" while serving, "draining" during graceful shutdown.
	Status string `json:"status"`
	// StoreMode is durable, degraded, or memory (no store configured).
	StoreMode string `json:"store_mode"`
	QueueDepth int `json:"queue_depth"`
	// InFlight counts workers currently executing a world.
	InFlight int `json:"in_flight"`
	Workers  int `json:"workers"`
	Retained int `json:"retained_jobs"`
	// JournalSyncAgeSeconds is the age of the last durable journal write
	// (-1 when no store is configured or nothing has been journaled yet).
	JournalSyncAgeSeconds float64 `json:"journal_sync_age_seconds"`
}

// Health snapshots readiness for the /healthz probe.
func (s *Server) Health() HealthStatus {
	h := HealthStatus{
		Status:                "ok",
		StoreMode:             "memory",
		QueueDepth:            s.queue.depth(),
		InFlight:              int(s.nRunning.Load()),
		Workers:               s.opts.Workers,
		JournalSyncAgeSeconds: -1,
	}
	if s.draining.Load() {
		h.Status = "draining"
	}
	if st := s.opts.Store; st != nil {
		h.StoreMode = string(st.Mode())
		if last := st.LastSync(); !last.IsZero() {
			h.JournalSyncAgeSeconds = time.Since(last).Seconds()
		}
	}
	s.mu.Lock()
	h.Retained = len(s.byID)
	s.mu.Unlock()
	return h
}

// MetricsText renders the aggregate text metrics payload.
func (s *Server) MetricsText() string {
	s.mu.Lock()
	phases := make([]string, 0, len(s.phaseSeconds))
	for name := range s.phaseSeconds {
		phases = append(phases, name)
	}
	sort.Strings(phases)
	lines := make([]string, 0, len(phases)+10)
	lines = append(lines,
		fmt.Sprintf("plasmad_jobs_submitted %d", s.nSubmitted.Load()),
		fmt.Sprintf("plasmad_jobs_coalesced %d", s.nCoalesced.Load()),
		fmt.Sprintf("plasmad_jobs_cache_hits %d", s.nCacheHits.Load()),
		fmt.Sprintf("plasmad_jobs_cache_hits_shared %d", s.nSharedHits.Load()),
		fmt.Sprintf("plasmad_jobs_completed %d", s.nCompleted.Load()),
		fmt.Sprintf("plasmad_jobs_failed %d", s.nFailed.Load()),
		fmt.Sprintf("plasmad_jobs_canceled %d", s.nCanceled.Load()),
		fmt.Sprintf("plasmad_jobs_rejected %d", s.nRejected.Load()),
		fmt.Sprintf("plasmad_jobs_recovered %d", s.nRecovered.Load()),
		fmt.Sprintf("plasmad_jobs_requeued %d", s.nRequeued.Load()),
		fmt.Sprintf("plasmad_jobs_inflight %d", s.nRunning.Load()),
		fmt.Sprintf("plasmad_worlds_built %d", s.nWorldsBuilt.Load()),
		fmt.Sprintf("plasmad_queue_depth %d", s.queue.depth()),
	)
	for _, name := range phases {
		lines = append(lines, fmt.Sprintf("plasmad_phase_seconds{phase=%q} %.6f", name, s.phaseSeconds[name]))
	}
	s.mu.Unlock()
	if st := s.opts.Store; st != nil {
		lines = append(lines, fmt.Sprintf("plasmad_store_mode{mode=%q} 1", st.Mode()))
		c := st.Counters()
		for _, name := range store.SortedCounterNames(c) {
			lines = append(lines, fmt.Sprintf("plasmad_store_%s %d", name, c[name]))
		}
	} else {
		lines = append(lines, `plasmad_store_mode{mode="memory"} 1`)
	}
	out := ""
	for _, l := range lines {
		out += l + "\n"
	}
	return out
}
