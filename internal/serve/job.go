package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/plasma-hpc/dsmcpic/internal/core"
	"github.com/plasma-hpc/dsmcpic/internal/simmpi"
)

// JobState is the lifecycle of a job. Transitions are one-way:
// queued → running → {done, failed, canceled}, with queued → canceled when
// a job is canceled before a worker picks it up.
type JobState string

const (
	StateQueued   JobState = "queued"
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
)

// terminal reports whether a state admits no further transitions.
func (s JobState) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// ProgressEvent is one step's progress report, streamed on the events
// endpoint. Particles is the global (allreduced) particle count; phase
// seconds are rank 0's measured wall-clock timers for the step.
type ProgressEvent struct {
	Step         int                `json:"step"`
	Particles    int64              `json:"particles"`
	PhaseSeconds map[string]float64 `json:"phase_seconds,omitempty"`
}

// Result is the serialized outcome of a completed run: the aggregate view
// a client polls for, not the full per-rank statistics dump.
type Result struct {
	Key   string `json:"key"`
	Ranks int    `json:"ranks"`
	Steps int    `json:"steps"`

	// ModeledSeconds is the cost-model wall time of the run (per-step max
	// over ranks, summed); ComponentSeconds breaks it down by Table IV row.
	ModeledSeconds   float64            `json:"modeled_seconds"`
	ComponentSeconds map[string]float64 `json:"component_seconds,omitempty"`

	FinalParticles int     `json:"final_particles"`
	Collisions     int64   `json:"collisions"`
	Reactions      int64   `json:"reactions"`
	PoissonIters   int64   `json:"poisson_iters"`
	Rebalances     int     `json:"rebalances"`
	MaxLII         float64 `json:"max_lii,omitempty"`
}

// buildResult condenses RunStats into the cacheable Result.
func buildResult(key string, spec JobSpec, stats *core.RunStats) Result {
	res := Result{
		Key:            key,
		Ranks:          spec.Ranks,
		Steps:          spec.Steps,
		ModeledSeconds: stats.TotalTime(),
	}
	comp := make(map[string]float64)
	for r := range stats.Ranks {
		rk := &stats.Ranks[r]
		for name, t := range rk.Times {
			if t > comp[name] {
				comp[name] = t // critical path: max over ranks
			}
		}
		res.FinalParticles += rk.FinalParticles
		res.Collisions += rk.Collisions
		res.Reactions += rk.Reactions
		res.Rebalances += rk.Rebalances
		for _, lii := range rk.LIIHistory {
			if lii > res.MaxLII {
				res.MaxLII = lii
			}
		}
	}
	if len(stats.Ranks) > 0 {
		// PoissonIters is replicated across ranks (it comes off an
		// allreduce); take rank 0's rather than a world-size multiple.
		res.PoissonIters = stats.Ranks[0].PoissonIters
		res.Rebalances = stats.Ranks[0].Rebalances
	}
	if len(comp) > 0 {
		res.ComponentSeconds = comp
	}
	return res
}

// Job is both the queue entry and the unit of caching: coalesced
// submissions share one *Job (and therefore one ID, one execution, one
// result). The zero lifecycle is driven by the Server; all mutable state
// is guarded by mu except the channels, which are only ever closed once.
type Job struct {
	ID       string
	Key      string
	Spec     JobSpec // normalized
	Priority int

	cancel     chan struct{} // closed by Cancel; wired to core.Config.Cancel
	cancelOnce sync.Once
	done       chan struct{} // closed when the job reaches a terminal state

	mu        sync.Mutex
	state     JobState
	submitted time.Time
	started   time.Time
	finished  time.Time
	submits   int // total submissions resolved to this job (1 + coalesced)
	curStep   int
	events    []ProgressEvent
	// deadline is set when the per-job wall-clock timeout fired; the
	// cancellation it triggered then classifies as "timeout", not
	// "canceled".
	deadline time.Duration

	// resultJSON is marshaled exactly once, at completion; cached and
	// repeated fetches serve these bytes verbatim, which is what makes the
	// "byte-identical cached result" guarantee checkable.
	resultJSON []byte
	errMsg     string
	errClass   string

	// Field-snapshot frames: each entry is one marshaled core.FieldFrame
	// NDJSON line (trailing newline included), appended by the capture
	// callback and served verbatim — the marshal happens once, so live
	// streams, replays, and the persisted blob are all byte-identical.
	// The ring is bounded by frameCap: when full the oldest line is
	// dropped and frameBase advances, so frame indices stay absolute.
	frameCap      int
	frames        [][]byte
	frameBase     int
	framesDropped int
}

func newJob(id string, spec JobSpec, now time.Time) *Job {
	return &Job{
		ID:        id,
		Key:       spec.Key(),
		Spec:      spec,
		Priority:  spec.Priority,
		cancel:    make(chan struct{}),
		done:      make(chan struct{}),
		state:     StateQueued,
		submitted: now,
		submits:   1,
	}
}

// recoveredJob rebuilds a job from the persistent store at startup. A
// terminal state arrives with its outcome already decided (resultJSON for
// done, errMsg/errClass otherwise) and a closed done channel; a queued
// state yields a job ready for the worker pool, exactly as if it had
// just been admitted.
func recoveredJob(id string, spec JobSpec, state JobState, resultJSON []byte, errMsg, errClass string, now time.Time) *Job {
	j := newJob(id, spec, now)
	j.state = state
	j.resultJSON = resultJSON
	j.errMsg = errMsg
	j.errClass = errClass
	if state.terminal() {
		close(j.done)
	}
	return j
}

// markDeadlineExceeded records that the per-job wall-clock timeout fired,
// before the associated Cancel lands.
func (j *Job) markDeadlineExceeded(after time.Duration) {
	j.mu.Lock()
	j.deadline = after
	j.mu.Unlock()
}

// Cancel requests cooperative cancellation. Idempotent; a no-op once the
// job is terminal (the worker's finish wins the race harmlessly — closing
// cancel after completion wakes nobody).
func (j *Job) Cancel() {
	j.cancelOnce.Do(func() { close(j.cancel) })
}

// canceled reports whether cancellation has been requested.
func (j *Job) canceledRequested() bool {
	select {
	case <-j.cancel:
		return true
	default:
		return false
	}
}

// markRunning transitions queued → running; returns false when the job was
// canceled while queued (the worker must then finalize it as canceled
// without building a world).
func (j *Job) markRunning(now time.Time) bool {
	if j.canceledRequested() {
		return false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.started = now
	return true
}

// finish records the terminal outcome and releases done-waiters. err == nil
// stores the result; otherwise the error is classified for clients
// (canceled / rank_failure / deadlock / error).
func (j *Job) finish(res *Result, err error, now time.Time) {
	j.mu.Lock()
	if j.state.terminal() {
		j.mu.Unlock()
		return
	}
	j.finished = now
	switch {
	case err == nil:
		blob, merr := json.Marshal(res)
		if merr != nil {
			j.state = StateFailed
			j.errMsg = fmt.Sprintf("marshal result: %v", merr)
			j.errClass = "error"
			break
		}
		j.state = StateDone
		j.resultJSON = blob
	case errors.Is(err, simmpi.ErrCanceled):
		j.state = StateCanceled
		if j.deadline > 0 {
			j.errMsg = fmt.Sprintf("job deadline exceeded (%s): %v", j.deadline, err)
			j.errClass = "timeout"
		} else {
			j.errMsg = err.Error()
			j.errClass = "canceled"
		}
	default:
		j.state = StateFailed
		j.errMsg = err.Error()
		j.errClass = classifyError(err)
	}
	j.mu.Unlock()
	close(j.done)
}

// classifyError maps run errors onto the client-facing failure classes,
// reusing the simmpi sentinel taxonomy from the fault-tolerance layer.
func classifyError(err error) string {
	switch {
	case errors.Is(err, simmpi.ErrRankFailed):
		return "rank_failure"
	case errors.Is(err, simmpi.ErrDeadlock):
		return "deadlock"
	default:
		return "error"
	}
}

// recordProgress appends one step's event under the job lock.
func (j *Job) recordProgress(ev ProgressEvent) {
	j.mu.Lock()
	j.curStep = ev.Step
	j.events = append(j.events, ev)
	j.mu.Unlock()
}

// eventsSince returns events with index ≥ from and whether the job is
// terminal — the polling primitive behind the streaming endpoint.
func (j *Job) eventsSince(from int) (evs []ProgressEvent, terminal bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if from < len(j.events) {
		evs = append(evs, j.events[from:]...)
	}
	return evs, j.state.terminal()
}

// recordFrame appends one marshaled frame line to the bounded ring,
// dropping the oldest beyond frameCap (cap <= 0 means unbounded — only
// tests use that).
func (j *Job) recordFrame(line []byte) {
	j.mu.Lock()
	j.frames = append(j.frames, line)
	if j.frameCap > 0 && len(j.frames) > j.frameCap {
		drop := len(j.frames) - j.frameCap
		j.frames = append([][]byte(nil), j.frames[drop:]...)
		j.frameBase += drop
		j.framesDropped += drop
	}
	j.mu.Unlock()
}

// framesSince returns the retained frame lines with absolute index ≥ from
// (clamped up to frameBase when the ring already dropped them), the next
// absolute index to poll from, the total dropped count, and whether the
// job is terminal — the polling primitive behind the frames endpoint.
func (j *Job) framesSince(from int) (lines [][]byte, next int, dropped int, terminal bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if from < j.frameBase {
		from = j.frameBase
	}
	if rel := from - j.frameBase; rel < len(j.frames) {
		lines = append(lines, j.frames[rel:]...)
	}
	return lines, from + len(lines), j.framesDropped, j.state.terminal()
}

// framesBlob concatenates the retained frame lines — what the store
// persists so a cache hit replays the animation byte-identically. For a
// fixed (spec, ring cap) the blob is deterministic even when the ring
// dropped early frames: the same frames are dropped on every run.
func (j *Job) framesBlob() []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	var n int
	for _, l := range j.frames {
		n += len(l)
	}
	if n == 0 {
		return nil
	}
	blob := make([]byte, 0, n)
	for _, l := range j.frames {
		blob = append(blob, l...)
	}
	return blob
}

// setFramesBlob splits a persisted frames blob back into ring lines —
// the recovery / shared-cache-hit path. The lines land with frameBase 0;
// a replayed stream therefore starts at the first *retained* frame,
// exactly as the original stream did once the ring wrapped.
func (j *Job) setFramesBlob(blob []byte) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.frames = nil
	for len(blob) > 0 {
		nl := bytes.IndexByte(blob, '\n')
		if nl < 0 {
			j.frames = append(j.frames, append(append([]byte(nil), blob...), '\n'))
			break
		}
		j.frames = append(j.frames, append([]byte(nil), blob[:nl+1]...))
		blob = blob[nl+1:]
	}
}

// addSubmit counts a coalesced or cache-hit submission.
func (j *Job) addSubmit() {
	j.mu.Lock()
	j.submits++
	j.mu.Unlock()
}

// Status is the JSON status view of a job.
type Status struct {
	ID        string   `json:"id"`
	Key       string   `json:"key"`
	State     JobState `json:"state"`
	Priority  int      `json:"priority,omitempty"`
	Submits   int      `json:"submits"`
	Step      int      `json:"step"`
	Steps     int      `json:"steps"`
	Submitted string   `json:"submitted,omitempty"`
	Started   string   `json:"started,omitempty"`
	Finished  string   `json:"finished,omitempty"`
	Error     string   `json:"error,omitempty"`
	ErrClass  string   `json:"error_class,omitempty"`
}

// status snapshots the job for the API.
func (j *Job) status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:       j.ID,
		Key:      j.Key,
		State:    j.state,
		Priority: j.Priority,
		Submits:  j.submits,
		Step:     j.curStep,
		Steps:    j.Spec.Steps,
		Error:    j.errMsg,
		ErrClass: j.errClass,
	}
	if !j.submitted.IsZero() {
		st.Submitted = j.submitted.UTC().Format(time.RFC3339Nano)
	}
	if !j.started.IsZero() {
		st.Started = j.started.UTC().Format(time.RFC3339Nano)
	}
	if !j.finished.IsZero() {
		st.Finished = j.finished.UTC().Format(time.RFC3339Nano)
	}
	return st
}

// result returns the stored result bytes, or nil when not done.
func (j *Job) result() []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.resultJSON
}

// stateNow returns the current state.
func (j *Job) stateNow() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// runSeconds returns the job's run duration (0 if it never started or has
// not finished) — feeds the Retry-After estimate.
func (j *Job) runSeconds() float64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.started.IsZero() || j.finished.IsZero() {
		return 0
	}
	return j.finished.Sub(j.started).Seconds()
}
