package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// testSpec is a fast job: the core test mesh at 2 ranks, a few steps, a
// modest inlet flux. Seed varies the cache key without changing the size.
func testSpec(seed uint64) JobSpec {
	return JobSpec{
		MeshNZ:         6,
		Ranks:          2,
		Steps:          3,
		Seed:           seed,
		InjectHPerStep: 400,
	}
}

// waitState polls a job until it reaches a terminal state.
func waitTerminal(t *testing.T, j *Job) JobState {
	t.Helper()
	select {
	case <-j.done:
	case <-time.After(60 * time.Second):
		t.Fatalf("job %s did not finish (state %s)", j.ID, j.stateNow())
	}
	return j.stateNow()
}

func TestSpecKeyExcludesPriority(t *testing.T) {
	a, err := testSpec(1).Normalized()
	if err != nil {
		t.Fatal(err)
	}
	b := testSpec(1)
	b.Priority = 7
	bn, err := b.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if a.Key() != bn.Key() {
		t.Fatal("priority changed the cache key; it cannot affect results")
	}
	c, _ := testSpec(2).Normalized()
	if a.Key() == c.Key() {
		t.Fatal("different seeds collided on one cache key")
	}
	// Explicit defaults and implied defaults must normalize to one key.
	d := testSpec(1)
	d.MeshN = 3
	d.PICSubsteps = 2
	dn, _ := d.Normalized()
	if a.Key() != dn.Key() {
		t.Fatal("spelled-out defaults changed the cache key")
	}
	// Every exchange mode is a valid spec and a distinct cache key.
	e := testSpec(1)
	e.PoissonExchange = "owner"
	en, err := e.Normalized()
	if err != nil {
		t.Fatalf("owner poisson_exchange rejected: %v", err)
	}
	if en.Key() == a.Key() {
		t.Fatal("exchange mode missing from the cache key")
	}
}

// TestE2ELifecycle drives the full HTTP surface: submit, poll status,
// fetch the result, list, metrics.
func TestE2ELifecycle(t *testing.T) {
	s := NewServer(Options{Workers: 1, QueueCap: 4})
	defer s.Drain(time.Second)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal(testSpec(100))
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202", resp.StatusCode)
	}
	var sub submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if sub.ID == "" || sub.Key == "" {
		t.Fatalf("submit response missing id/key: %+v", sub)
	}

	var st Status
	deadline := time.Now().Add(60 * time.Second)
	for {
		r, err := http.Get(ts.URL + "/jobs/" + sub.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if st.State.terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %s at step %d", st.State, st.Step)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if st.State != StateDone {
		t.Fatalf("job finished %s (%s); want done", st.State, st.Error)
	}

	r, err := http.Get(ts.URL + "/jobs/" + sub.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	if r.StatusCode != http.StatusOK {
		t.Fatalf("result status %d, want 200", r.StatusCode)
	}
	var res Result
	if err := json.NewDecoder(r.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if res.FinalParticles == 0 {
		t.Fatal("result has zero final particles")
	}
	if res.Key != sub.Key {
		t.Fatalf("result key %s != job key %s", res.Key, sub.Key)
	}

	r, err = http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Jobs []Status `json:"jobs"`
	}
	if err := json.NewDecoder(r.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if len(list.Jobs) != 1 || list.Jobs[0].ID != sub.ID {
		t.Fatalf("list = %+v; want exactly the submitted job", list.Jobs)
	}

	r, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(r.Body)
	r.Body.Close()
	for _, want := range []string{"plasmad_jobs_submitted 1", "plasmad_jobs_completed 1", "plasmad_worlds_built 1", "plasmad_phase_seconds"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("metrics payload missing %q:\n%s", want, buf.String())
		}
	}
}

// TestCacheDeterminism pins the cache guarantee: a repeat submission is a
// cache hit served byte-identically, and the world-construction counter
// does not move.
func TestCacheDeterminism(t *testing.T) {
	s := NewServer(Options{Workers: 1})
	defer s.Drain(time.Second)

	out, err := s.Submit(testSpec(7))
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, out.Job); st != StateDone {
		t.Fatalf("first run finished %s", st)
	}
	first := append([]byte(nil), out.Job.result()...)
	if len(first) == 0 {
		t.Fatal("no result bytes stored")
	}
	built := s.WorldsBuilt()

	again, err := s.Submit(testSpec(7))
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit {
		t.Fatal("repeat submission was not a cache hit")
	}
	if again.Job.ID != out.Job.ID {
		t.Fatalf("cache hit returned job %s, want %s", again.Job.ID, out.Job.ID)
	}
	if !bytes.Equal(again.Job.result(), first) {
		t.Fatal("cached result bytes differ from the original")
	}
	if got := s.WorldsBuilt(); got != built {
		t.Fatalf("cache hit constructed a world: built %d → %d", built, got)
	}
	if st := again.Job.status(); st.Submits != 2 {
		t.Fatalf("submits = %d, want 2", st.Submits)
	}
}

// TestCoalescing pins singleflight: a duplicate of an in-flight submission
// folds onto the same job instead of queueing a second execution.
func TestCoalescing(t *testing.T) {
	s := NewServer(Options{Workers: 1, QueueCap: 8})
	defer s.Drain(5 * time.Second)

	// Occupy the single worker so the next submission stays queued.
	blocker, err := s.Submit(testSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	dup1, err := s.Submit(testSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	if dup1.CacheHit || dup1.Coalesced {
		t.Fatalf("first submission of a new spec reported %+v", dup1)
	}
	dup2, err := s.Submit(testSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	if !dup2.Coalesced {
		t.Fatal("duplicate in-flight submission was not coalesced")
	}
	if dup2.Job.ID != dup1.Job.ID {
		t.Fatalf("coalesced submission got job %s, want %s", dup2.Job.ID, dup1.Job.ID)
	}

	waitTerminal(t, blocker.Job)
	if st := waitTerminal(t, dup1.Job); st != StateDone {
		t.Fatalf("coalesced job finished %s", st)
	}
	// Two distinct specs ran; the duplicate must not have built a third.
	if got := s.WorldsBuilt(); got != 2 {
		t.Fatalf("worlds built = %d, want 2", got)
	}
}

// TestConcurrentJobs runs 6 distinct jobs on 4 workers and requires at
// least 4 to be observed running simultaneously (the concurrent-worlds
// cap actually in use), all completing cleanly. Run under -race in CI.
func TestConcurrentJobs(t *testing.T) {
	s := NewServer(Options{Workers: 4, QueueCap: 16})
	defer s.Drain(5 * time.Second)

	jobs := make([]*Job, 0, 6)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			spec := testSpec(seed)
			spec.Steps = 6 // long enough to overlap
			out, err := s.Submit(spec)
			if err != nil {
				t.Errorf("submit seed %d: %v", seed, err)
				return
			}
			mu.Lock()
			jobs = append(jobs, out.Job)
			mu.Unlock()
		}(uint64(10 + i))
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Observe ≥4 simultaneously running before they finish.
	peak := 0
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		running := 0
		for _, j := range jobs {
			if j.stateNow() == StateRunning {
				running++
			}
		}
		if running > peak {
			peak = running
		}
		if peak >= 4 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if peak < 4 {
		t.Fatalf("peak concurrent running jobs = %d, want >= 4", peak)
	}
	for _, j := range jobs {
		if st := waitTerminal(t, j); st != StateDone {
			t.Fatalf("job %s finished %s (%s)", j.ID, st, j.status().Error)
		}
	}
	if got := s.WorldsBuilt(); got != 6 {
		t.Fatalf("worlds built = %d, want 6", got)
	}
}

// TestQueueBackpressure fills the queue and checks the 429 + Retry-After
// contract end to end.
func TestQueueBackpressure(t *testing.T) {
	s := NewServer(Options{Workers: 1, QueueCap: 1})
	defer s.Drain(5 * time.Second)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	submit := func(seed uint64) (*http.Response, string) {
		spec := testSpec(seed)
		spec.Steps = 400 // long enough to hold its queue/worker slot
		body, _ := json.Marshal(spec)
		resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var sub submitResponse
		json.NewDecoder(resp.Body).Decode(&sub)
		resp.Body.Close()
		return resp, sub.ID
	}
	// The first job occupies the single worker; wait until it is actually
	// running so the queue slot is provably free for the second.
	resp, blockerID := submit(1)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("blocker: status %d", resp.StatusCode)
	}
	blocker, err := s.Get(blockerID)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for blocker.stateNow() != StateRunning {
		if time.Now().After(deadline) {
			t.Fatal("blocker never started")
		}
		time.Sleep(time.Millisecond)
	}
	// Second fills the 1-deep queue; third must bounce with 429.
	resp, queuedID := submit(2)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("queued job: status %d", resp.StatusCode)
	}
	spec := testSpec(3)
	spec.Steps = 400
	body, _ := json.Marshal(spec)
	rejected, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer rejected.Body.Close()
	if rejected.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity submission got %d, want 429", rejected.StatusCode)
	}
	if ra := rejected.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After header")
	}
	var e struct {
		Error string `json:"error"`
	}
	json.NewDecoder(rejected.Body).Decode(&e)
	if !strings.Contains(e.Error, "queue full") {
		t.Fatalf("429 body %q does not mention the queue", e.Error)
	}
	if got := s.nRejected.Load(); got != 1 {
		t.Fatalf("rejected counter = %d, want 1", got)
	}
	// Unblock: cancel both admitted jobs; neither may be orphaned.
	for _, id := range []string{blockerID, queuedID} {
		j, err := s.CancelJob(id)
		if err != nil {
			t.Fatalf("cancel %s: %v", id, err)
		}
		waitTerminal(t, j)
	}
}

// TestCancelJobLeaksNoGoroutines cancels a running job and a queued job,
// drains the server, and requires the goroutine count to return to
// baseline: no rank goroutines, watchers, or workers left behind.
func TestCancelJobLeaksNoGoroutines(t *testing.T) {
	baseline := runtime.NumGoroutine()

	s := NewServer(Options{Workers: 1, QueueCap: 8})
	long := testSpec(1)
	long.Steps = 400 // will not finish on its own within the test
	running, err := s.Submit(long)
	if err != nil {
		t.Fatal(err)
	}
	queuedSpec := testSpec(2)
	queuedSpec.Steps = 400
	queued, err := s.Submit(queuedSpec)
	if err != nil {
		t.Fatal(err)
	}

	// Wait for the first to actually be running, then cancel both.
	deadline := time.Now().Add(30 * time.Second)
	for running.Job.stateNow() != StateRunning {
		if time.Now().After(deadline) {
			t.Fatalf("job never started (state %s)", running.Job.stateNow())
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := s.CancelJob(running.Job.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CancelJob(queued.Job.ID); err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, running.Job); st != StateCanceled {
		t.Fatalf("running job finished %s, want canceled", st)
	}
	if st := waitTerminal(t, queued.Job); st != StateCanceled {
		t.Fatalf("queued job finished %s, want canceled", st)
	}
	if cls := running.Job.status().ErrClass; cls != "canceled" {
		t.Fatalf("error class %q, want canceled", cls)
	}
	s.Drain(5 * time.Second)

	leakDeadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(leakDeadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		runtime.Gosched()
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: baseline %d, now %d", baseline, runtime.NumGoroutine())
}

// TestDrain pins graceful shutdown: admission stops immediately, admitted
// jobs still reach a terminal state, and Drain returns.
func TestDrain(t *testing.T) {
	s := NewServer(Options{Workers: 2, QueueCap: 8})
	var jobs []*Job
	for i := 0; i < 3; i++ {
		out, err := s.Submit(testSpec(uint64(20 + i)))
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, out.Job)
	}
	done := make(chan struct{})
	go func() {
		s.Drain(30 * time.Second)
		close(done)
	}()
	// Admission must refuse promptly even while jobs are still running.
	refuseDeadline := time.Now().Add(5 * time.Second)
	for {
		_, err := s.Submit(testSpec(999))
		if errors.Is(err, ErrDraining) {
			break
		}
		if time.Now().After(refuseDeadline) {
			t.Fatalf("Submit during drain returned %v, want ErrDraining", err)
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("Drain did not return")
	}
	for _, j := range jobs {
		if st := j.stateNow(); !st.terminal() {
			t.Fatalf("job %s left non-terminal after drain: %s", j.ID, st)
		}
	}
}

// TestEventsStream reads the NDJSON progress stream to completion and
// checks one event per step plus a final status line.
func TestEventsStream(t *testing.T) {
	s := NewServer(Options{Workers: 1})
	defer s.Drain(time.Second)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := testSpec(30)
	out, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/jobs/" + out.Job.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("events content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	steps := 0
	sawFinal := false
	var lastParticles int64
	for sc.Scan() {
		var probe map[string]json.RawMessage
		if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if _, ok := probe["final"]; ok {
			sawFinal = true
			continue
		}
		var ev ProgressEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		if ev.Step != steps {
			t.Fatalf("event step %d, want %d (in order, no gaps)", ev.Step, steps)
		}
		steps++
		lastParticles = ev.Particles
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	norm, _ := spec.Normalized()
	if steps != norm.Steps {
		t.Fatalf("streamed %d events, want %d", steps, norm.Steps)
	}
	if !sawFinal {
		t.Fatal("stream ended without a final status line")
	}
	if lastParticles == 0 {
		t.Fatal("final progress event reports zero particles")
	}
}

// TestResubmitAfterCancelRetries checks a canceled key is retried fresh,
// not served from cache.
func TestResubmitAfterCancelRetries(t *testing.T) {
	s := NewServer(Options{Workers: 1})
	defer s.Drain(5 * time.Second)

	spec := testSpec(40)
	spec.Steps = 400
	out, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for out.Job.stateNow() != StateRunning {
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(time.Millisecond)
	}
	s.CancelJob(out.Job.ID)
	waitTerminal(t, out.Job)

	spec.Steps = 3 // finishable this time; same steps change the key though
	retry, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if retry.CacheHit || retry.Coalesced {
		t.Fatalf("resubmission after cancel reported %+v; want a fresh run", retry)
	}
	if st := waitTerminal(t, retry.Job); st != StateDone {
		t.Fatalf("retry finished %s", st)
	}
}

// TestInvalidSpecRejected covers the validation surface.
func TestInvalidSpecRejected(t *testing.T) {
	s := NewServer(Options{Workers: 1, MaxRanks: 4})
	defer s.Drain(time.Second)
	cases := []JobSpec{
		{Case: "torus"},
		{Case: "conical"}, // missing outlet radius
		{Strategy: "mpi"},
		{PoissonExchange: "quantum"},
		{Ranks: 64}, // over MaxRanks
	}
	for i, spec := range cases {
		if _, err := s.Submit(spec); err == nil {
			t.Errorf("case %d (%+v) was accepted", i, spec)
		}
	}
	if n := s.WorldsBuilt(); n != 0 {
		t.Fatalf("invalid specs built %d worlds", n)
	}
}

// TestMetricsTextFormat sanity-checks the counter lines parse as
// "name value".
func TestMetricsTextFormat(t *testing.T) {
	s := NewServer(Options{Workers: 1})
	defer s.Drain(time.Second)
	out, err := s.Submit(testSpec(50))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, out.Job)
	for _, line := range strings.Split(strings.TrimSpace(s.MetricsText()), "\n") {
		var name string
		var val float64
		if _, err := fmt.Sscanf(line, "%s %f", &name, &val); err != nil {
			t.Fatalf("unparseable metrics line %q: %v", line, err)
		}
		if !strings.HasPrefix(name, "plasmad_") {
			t.Fatalf("metric %q missing plasmad_ prefix", name)
		}
	}
}
