package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/plasma-hpc/dsmcpic/internal/store"
)

// openTestStore opens a store over the given (Mem)FS with small knobs.
func openTestStore(t *testing.T, fs store.Filesystem) (*store.Store, *store.RecoveryReport) {
	t.Helper()
	st, rep, err := store.Open("data", store.Options{FS: fs, CacheCap: 8, Logf: t.Logf})
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	return st, rep
}

// TestPersistAcrossRestart is the crash-recovery contract end to end at
// the package level: run a job, "crash" (no drain — unsynced bytes are
// dropped), restart over the same filesystem, and the resubmitted spec
// must be a cache hit serving byte-identical result bytes without
// building a world.
func TestPersistAcrossRestart(t *testing.T) {
	fs := store.NewMemFS()
	st, rep := openTestStore(t, fs)
	srv := NewServer(Options{Workers: 1, Store: st, Recovered: rep})
	out, err := srv.Submit(testSpec(11))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if state := waitTerminal(t, out.Job); state != StateDone {
		t.Fatalf("job ended %s", state)
	}
	want := out.Job.result()
	if len(want) == 0 {
		t.Fatal("no result bytes")
	}
	firstID := out.Job.ID

	// SIGKILL analogue: no Drain, no Close; just drop unsynced bytes and
	// abandon the old server.
	fs.Crash()
	st2, rep2 := openTestStore(t, fs)
	if len(rep2.Jobs) != 1 || rep2.Jobs[0].State != "done" {
		t.Fatalf("recovery report: %+v", rep2.Jobs)
	}
	srv2 := NewServer(Options{Workers: 1, Store: st2, Recovered: rep2})
	defer srv2.Drain(time.Second)

	out2, err := srv2.Submit(testSpec(11))
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	if !out2.CacheHit {
		t.Fatalf("resubmission after restart was not a cache hit: %+v", out2)
	}
	if out2.Job.ID != firstID {
		t.Errorf("recovered job lost its ID: %s vs %s", out2.Job.ID, firstID)
	}
	if got := out2.Job.result(); !bytes.Equal(got, want) {
		t.Fatalf("recovered result not byte-identical:\n got %s\nwant %s", got, want)
	}
	if srv2.WorldsBuilt() != 0 {
		t.Fatalf("cache hit after restart built %d worlds", srv2.WorldsBuilt())
	}
}

// TestRecoveryRequeuesUnfinished: a job journaled as admitted/running but
// never finished (the daemon died mid-run) is requeued at startup and
// runs to completion.
func TestRecoveryRequeuesUnfinished(t *testing.T) {
	fs := store.NewMemFS()
	st, _ := openTestStore(t, fs)
	norm, err := testSpec(12).Normalized()
	if err != nil {
		t.Fatal(err)
	}
	specBlob, _ := json.Marshal(norm)
	st.RecordAdmit("j-7", norm.Key(), specBlob)
	st.RecordState("j-7", "running", "", "")
	st.Close()
	fs.Crash()

	st2, rep := openTestStore(t, fs)
	srv := NewServer(Options{Workers: 1, Store: st2, Recovered: rep})
	defer srv.Drain(5 * time.Second)
	j, err := srv.Get("j-7")
	if err != nil {
		t.Fatalf("requeued job not addressable: %v", err)
	}
	if state := waitTerminal(t, j); state != StateDone {
		t.Fatalf("requeued job ended %s (%s)", state, j.status().Error)
	}
	// ID sequencing continues past the recovered job.
	out, err := srv.Submit(testSpec(13))
	if err != nil {
		t.Fatal(err)
	}
	if out.Job.ID != "j-8" {
		t.Errorf("next job ID = %s, want j-8 (sequence must continue past recovered j-7)", out.Job.ID)
	}
	waitTerminal(t, out.Job)
}

// TestRecoveryNoRequeue: with NoRequeue, an unfinished recovered job is
// finalized as failed/interrupted instead of re-running.
func TestRecoveryNoRequeue(t *testing.T) {
	fs := store.NewMemFS()
	st, _ := openTestStore(t, fs)
	norm, _ := testSpec(14).Normalized()
	specBlob, _ := json.Marshal(norm)
	st.RecordAdmit("j-1", norm.Key(), specBlob)
	st.Close()

	st2, rep := openTestStore(t, fs)
	srv := NewServer(Options{Workers: 1, Store: st2, Recovered: rep, NoRequeue: true})
	defer srv.Drain(time.Second)
	j, err := srv.Get("j-1")
	if err != nil {
		t.Fatal(err)
	}
	st3 := j.status()
	if st3.State != StateFailed || st3.ErrClass != "interrupted" {
		t.Fatalf("NoRequeue job state = %s/%s, want failed/interrupted", st3.State, st3.ErrClass)
	}
	if srv.WorldsBuilt() != 0 {
		t.Fatal("NoRequeue still built a world")
	}
}

// TestDegradedModeKeepsServing: a store whose disk dies mid-operation
// degrades; the server keeps completing jobs from memory and /healthz
// reports the degradation.
func TestDegradedModeKeepsServing(t *testing.T) {
	mem := store.NewMemFS()
	// Let Open succeed (it needs ~6 ops) then kill the disk.
	ffs := store.NewFaultFS(mem, store.FaultPlan{FailOpsFrom: 12})
	st, rep, err := store.Open("data", store.Options{FS: ffs, Logf: t.Logf})
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	srv := NewServer(Options{Workers: 1, Store: st, Recovered: rep})
	defer srv.Drain(5 * time.Second)

	out, err := srv.Submit(testSpec(15))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if state := waitTerminal(t, out.Job); state != StateDone {
		t.Fatalf("job on dead disk ended %s", state)
	}
	if st.Mode() != store.ModeDegraded {
		t.Fatalf("store mode = %s, want degraded", st.Mode())
	}
	// In-memory cache still answers.
	out2, err := srv.Submit(testSpec(15))
	if err != nil || !out2.CacheHit {
		t.Fatalf("in-memory cache hit failed in degraded mode: %+v %v", out2, err)
	}
	h := srv.Health()
	if h.StoreMode != "degraded" {
		t.Fatalf("healthz store_mode = %s, want degraded", h.StoreMode)
	}
	if !strings.Contains(srv.MetricsText(), `plasmad_store_mode{mode="degraded"} 1`) {
		t.Fatal("metrics do not report degraded store mode")
	}
}

// TestHealthzProbe covers the readiness endpoint: 200 + field shape while
// serving (memory mode), 503 + Retry-After during drain.
func TestHealthzProbe(t *testing.T) {
	srv := NewServer(Options{Workers: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h HealthStatus
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || h.Status != "ok" {
		t.Fatalf("healthz: %d %+v", resp.StatusCode, h)
	}
	if h.StoreMode != "memory" || h.Workers != 1 || h.JournalSyncAgeSeconds != -1 {
		t.Fatalf("healthz fields: %+v", h)
	}

	srv.Drain(time.Second)
	resp2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain: %d, want 503", resp2.StatusCode)
	}
	if resp2.Header.Get("Retry-After") == "" {
		t.Fatal("healthz 503 without Retry-After")
	}
	var hd HealthStatus
	json.NewDecoder(resp2.Body).Decode(&hd)
	if hd.Status != "draining" {
		t.Fatalf("healthz body during drain: %+v", hd)
	}
}

// TestJobTimeout: a running job past the per-job deadline is cooperatively
// canceled and classified as timeout.
func TestJobTimeout(t *testing.T) {
	srv := NewServer(Options{Workers: 1, JobTimeout: 50 * time.Millisecond})
	defer srv.Drain(5 * time.Second)
	spec := testSpec(16)
	spec.Steps = 200 // long enough that the deadline always wins
	spec.InjectHPerStep = 2000
	out, err := srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if state := waitTerminal(t, out.Job); state != StateCanceled {
		t.Fatalf("timed-out job ended %s, want canceled", state)
	}
	st := out.Job.status()
	if st.ErrClass != "timeout" || !strings.Contains(st.Error, "deadline exceeded") {
		t.Fatalf("timeout classification: %q / %q", st.ErrClass, st.Error)
	}
}

// TestEvictionDropsPersistedResult: the serve-level LRU eviction reaches
// through to the store, so the disk does not accumulate evicted results.
func TestEvictionDropsPersistedResult(t *testing.T) {
	fs := store.NewMemFS()
	st, rep := openTestStore(t, fs)
	srv := NewServer(Options{Workers: 1, CacheCap: 1, Store: st, Recovered: rep})
	defer srv.Drain(5 * time.Second)

	a, err := srv.Submit(testSpec(21))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, a.Job)
	b, err := srv.Submit(testSpec(22))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, b.Job)
	// CacheCap 1: job a must have been evicted — from memory AND disk.
	if _, err := srv.Get(a.Job.ID); err == nil {
		t.Fatal("evicted job still addressable")
	}
	if _, ok := st.GetResult(a.Job.Key); ok {
		t.Fatal("evicted job's result still on disk")
	}
	if _, ok := st.GetResult(b.Job.Key); !ok {
		t.Fatal("retained job's result missing from disk")
	}
}
