package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"github.com/plasma-hpc/dsmcpic/internal/store"
)

// snapshotSpec is testSpec plus frame capture every step.
func snapshotSpec(seed uint64) JobSpec {
	spec := testSpec(seed)
	spec.SnapshotEvery = 1
	return spec
}

// fetchFrames GETs a job's frame stream and splits it into the frame
// lines and the final summary line.
func fetchFrames(t *testing.T, base, id string) (frames []string, final map[string]interface{}) {
	t.Helper()
	resp, err := http.Get(base + "/jobs/" + id + "/frames")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("frames status %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.Contains(line, `"final":true`) {
			if err := json.Unmarshal([]byte(line), &final); err != nil {
				t.Fatalf("bad final line %q: %v", line, err)
			}
			continue
		}
		frames = append(frames, line)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if final == nil {
		t.Fatal("stream ended without a final line")
	}
	return frames, final
}

// TestFramesStreamDeterministic pins the streaming contract: one frame
// per snapshot window, and byte-identical frame lines on a repeat fetch
// and on a fresh server running the same spec.
func TestFramesStreamDeterministic(t *testing.T) {
	run := func() ([]string, *Server) {
		s := NewServer(Options{Workers: 1})
		out, err := s.Submit(snapshotSpec(61))
		if err != nil {
			t.Fatal(err)
		}
		if st := waitTerminal(t, out.Job); st != StateDone {
			t.Fatalf("job finished %s", st)
		}
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		frames, final := fetchFrames(t, ts.URL, out.Job.ID)
		if len(frames) != 3 { // Steps=3, every=1
			t.Fatalf("got %d frames, want 3", len(frames))
		}
		if final["frames"].(float64) != 3 || final["dropped"].(float64) != 0 {
			t.Fatalf("final line wrong: %v", final)
		}
		// A second fetch must serve the identical bytes.
		again, _ := fetchFrames(t, ts.URL, out.Job.ID)
		for i := range frames {
			if frames[i] != again[i] {
				t.Fatalf("repeat fetch diverged at frame %d", i)
			}
		}
		return frames, s
	}
	a, sa := run()
	defer sa.Drain(5 * time.Second)
	b, sb := run()
	defer sb.Drain(5 * time.Second)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("frame %d not byte-identical across independent runs:\n%s\n%s", i, a[i], b[i])
		}
	}
	var f struct {
		Step int       `json:"Step"`
		Phi  []float64 `json:"Phi"`
	}
	if err := json.Unmarshal([]byte(a[2]), &f); err != nil {
		t.Fatal(err)
	}
	if f.Step != 2 || len(f.Phi) == 0 {
		t.Fatalf("last frame implausible: step=%d phi=%d nodes", f.Step, len(f.Phi))
	}
}

// TestFramesVTK: ?format=vtk renders a retained frame as a legacy-VTK
// dataset carrying all three fields.
func TestFramesVTK(t *testing.T) {
	s := NewServer(Options{Workers: 1})
	defer s.Drain(5 * time.Second)
	out, err := s.Submit(snapshotSpec(62))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, out.Job)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/jobs/" + out.Job.ID + "/frames?format=vtk")
	if err != nil {
		t.Fatal(err)
	}
	body := new(bytes.Buffer)
	body.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("vtk status %d: %s", resp.StatusCode, body.String())
	}
	for _, want := range []string{"SCALARS phi", "SCALARS density", "SCALARS temperature"} {
		if !strings.Contains(body.String(), want) {
			t.Fatalf("vtk output missing %q", want)
		}
	}
	// Out-of-range frame index is a client error, not a panic.
	resp, err = http.Get(ts.URL + "/jobs/" + out.Job.ID + "/frames?format=vtk&frame=99")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad frame index answered %d", resp.StatusCode)
	}
	// A job that captures nothing reports conflict on the frames endpoint.
	plain, err := s.Submit(testSpec(63))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, plain.Job)
	resp, err = http.Get(ts.URL + "/jobs/" + plain.Job.ID + "/frames")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("frameless job answered %d on /frames, want 409", resp.StatusCode)
	}
}

// waitResultDurable polls until the store serves the key (recordTerminal
// runs after the job's done channel closes, so tests that reopen or share
// the store must wait for the bytes, not just the state).
func waitResultDurable(t *testing.T, st *store.Store, key string) []byte {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if blob, ok := st.GetResult(key); ok {
			return blob
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("result %s never became durable", key)
	return nil
}

// TestSharedDirAdoption: two daemons over one cluster-shared directory.
// The second submission of a spec that ran on the first shard is a
// SharedHit — no world built — with byte-identical result and frames.
func TestSharedDirAdoption(t *testing.T) {
	fs := store.NewMemFS()
	opts := store.Options{FS: fs, SharedDir: "shared"}
	stA, _, err := store.Open("shard-a", opts)
	if err != nil {
		t.Fatal(err)
	}
	stB, _, err := store.Open("shard-b", opts)
	if err != nil {
		t.Fatal(err)
	}
	a := NewServer(Options{Workers: 1, Store: stA, IDPrefix: "s0-"})
	defer a.Drain(5 * time.Second)
	b := NewServer(Options{Workers: 1, Store: stB, IDPrefix: "s1-"})
	defer b.Drain(5 * time.Second)

	spec := snapshotSpec(64)
	outA, err := a.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if outA.Job.ID != "s0-j-1" {
		t.Fatalf("prefixed ID = %q, want s0-j-1", outA.Job.ID)
	}
	if st := waitTerminal(t, outA.Job); st != StateDone {
		t.Fatalf("job finished %s", st)
	}
	resultA := waitResultDurable(t, stA, outA.Job.Key)

	outB, err := b.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !outB.SharedHit || !outB.CacheHit {
		t.Fatalf("expected a shared cache hit, got %+v", outB)
	}
	if b.WorldsBuilt() != 0 {
		t.Fatalf("shared hit built %d worlds", b.WorldsBuilt())
	}
	if !bytes.Equal(outB.Job.result(), resultA) {
		t.Fatal("adopted result bytes differ from the origin shard's")
	}
	// Frames replay byte-identically through the shared path.
	tsA := httptest.NewServer(a.Handler())
	defer tsA.Close()
	tsB := httptest.NewServer(b.Handler())
	defer tsB.Close()
	framesA, _ := fetchFrames(t, tsA.URL, outA.Job.ID)
	framesB, _ := fetchFrames(t, tsB.URL, outB.Job.ID)
	if len(framesA) != len(framesB) {
		t.Fatalf("frame counts differ: %d vs %d", len(framesA), len(framesB))
	}
	for i := range framesA {
		if framesA[i] != framesB[i] {
			t.Fatalf("shared-hit frame %d not byte-identical", i)
		}
	}
	// The adoption also registered locally: a B restart still serves it.
	if _, ok := stB.GetResult(outB.Job.Key); !ok {
		t.Fatal("shared hit was not adopted into the local store")
	}
}

// TestResultByKey pins the failover read path: the same bytes answer by
// job ID and by canonical key, and a key nobody ran is a 404.
func TestResultByKey(t *testing.T) {
	s := NewServer(Options{Workers: 1})
	defer s.Drain(5 * time.Second)
	out, err := s.Submit(testSpec(65))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, out.Job)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	get := func(path string) (int, []byte) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		buf := new(bytes.Buffer)
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.Bytes()
	}
	codeID, byID := get("/jobs/" + out.Job.ID + "/result")
	codeKey, byKey := get("/results/" + out.Job.Key)
	if codeID != http.StatusOK || codeKey != http.StatusOK || !bytes.Equal(byID, byKey) {
		t.Fatalf("key-addressed read differs: %d/%d", codeID, codeKey)
	}
	if code, _ := get("/results/" + strings.Repeat("0", 64)); code != http.StatusNotFound {
		t.Fatalf("unknown key answered %d, want 404", code)
	}
}

// TestFramesSurviveRestart: a daemon restart replays a done job's frames
// byte-identically from the persisted blob.
func TestFramesSurviveRestart(t *testing.T) {
	fs := store.NewMemFS()
	st1, _, err := store.Open("data", store.Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	s1 := NewServer(Options{Workers: 1, Store: st1})
	out, err := s1.Submit(snapshotSpec(66))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, out.Job)
	waitResultDurable(t, st1, out.Job.Key)
	ts1 := httptest.NewServer(s1.Handler())
	before, _ := fetchFrames(t, ts1.URL, out.Job.ID)
	ts1.Close()
	s1.Drain(5 * time.Second)
	st1.Close()

	st2, rep, err := store.Open("data", store.Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	s2 := NewServer(Options{Workers: 1, Store: st2, Recovered: rep})
	defer s2.Drain(5 * time.Second)
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	after, _ := fetchFrames(t, ts2.URL, out.Job.ID)
	if len(before) != len(after) {
		t.Fatalf("recovered %d frames, had %d", len(after), len(before))
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("recovered frame %d not byte-identical", i)
		}
	}
	if s2.WorldsBuilt() != 0 {
		t.Fatal("replaying frames built a world")
	}
	// The ID sequence continued past the recovered job.
	out2, err := s2.Submit(testSpec(67))
	if err != nil {
		t.Fatal(err)
	}
	if out2.Job.ID != "j-2" {
		t.Fatalf("post-recovery ID = %q, want j-2", out2.Job.ID)
	}
	waitTerminal(t, out2.Job)
}

// TestEventsDisconnectReleasesHandler is the leak regression test for the
// events stream: a client that disconnects mid-run must release its
// handler goroutine promptly, even while the job keeps producing events.
func TestEventsDisconnectReleasesHandler(t *testing.T) {
	baseline := runtime.NumGoroutine()
	s := NewServer(Options{Workers: 1})
	long := testSpec(68)
	long.Steps = 200
	out, err := s.Submit(long)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())

	ctx, cancelReq := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/jobs/"+out.Job.ID+"/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	if _, err := resp.Body.Read(buf); err != nil { // stream is live
		t.Fatal(err)
	}
	cancelReq() // client walks away mid-stream
	resp.Body.Close()

	s.CancelJob(out.Job.ID)
	waitTerminal(t, out.Job)
	ts.Close()
	s.Drain(5 * time.Second)

	leakDeadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(leakDeadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		runtime.Gosched()
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("events handler leaked: baseline %d, now %d", baseline, runtime.NumGoroutine())
}

// TestSpecKeyExported: the exported SpecKey matches what the daemon
// caches on, and rejects what normalization rejects.
func TestSpecKeyExported(t *testing.T) {
	spec := testSpec(69)
	key, err := SpecKey(spec)
	if err != nil {
		t.Fatal(err)
	}
	norm, _ := spec.Normalized()
	if key != norm.Key() {
		t.Fatalf("SpecKey %s != normalized key %s", key, norm.Key())
	}
	bad := spec
	bad.Case = "klystron"
	if _, err := SpecKey(bad); err == nil {
		t.Fatal("invalid spec got a key")
	}
}
