package serve

import (
	"container/heap"
	"fmt"
	"sync"
)

// ErrQueueFull is returned by Submit when the admission queue is at
// capacity; the HTTP layer maps it to 429 with a Retry-After estimate.
type ErrQueueFull struct {
	// Depth is the queue depth at rejection time.
	Depth int
	// RetryAfterSeconds is the server's estimate of when capacity frees
	// up (queue depth × recent mean run time / workers, at least 1).
	RetryAfterSeconds int
}

func (e *ErrQueueFull) Error() string {
	return fmt.Sprintf("serve: job queue full (%d queued); retry in ~%ds", e.Depth, e.RetryAfterSeconds)
}

// queued is one heap element. seq breaks priority ties FIFO.
type queued struct {
	job *Job
	seq int64
}

// jobHeap orders by Priority descending, then seq ascending.
type jobHeap []queued

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(i, j int) bool {
	if h[i].job.Priority != h[j].job.Priority {
		return h[i].job.Priority > h[j].job.Priority
	}
	return h[i].seq < h[j].seq
}
func (h jobHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *jobHeap) Push(x interface{}) { *h = append(*h, x.(queued)) }
func (h *jobHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = queued{}
	*h = old[:n-1]
	return it
}

// jobQueue is the bounded priority queue feeding the worker pool. Push
// never blocks (admission control rejects instead); Pop blocks until a
// job is available or the queue is closed AND empty — so closing drains
// already-admitted work rather than dropping it.
type jobQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	heap   jobHeap
	cap    int
	seq    int64
	closed bool
}

func newJobQueue(capacity int) *jobQueue {
	q := &jobQueue{cap: capacity}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push admits a job, or reports false when the queue is full or closed.
func (q *jobQueue) push(j *Job) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || len(q.heap) >= q.cap {
		return false
	}
	q.seq++
	heap.Push(&q.heap, queued{job: j, seq: q.seq})
	q.cond.Signal()
	return true
}

// pop blocks for the next job by priority. ok is false only when the
// queue has been closed and fully drained.
func (q *jobQueue) pop() (j *Job, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.heap) == 0 {
		if q.closed {
			return nil, false
		}
		q.cond.Wait()
	}
	it := heap.Pop(&q.heap).(queued)
	return it.job, true
}

// close stops admission and wakes all poppers; queued jobs still drain.
func (q *jobQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// depth returns the number of queued jobs.
func (q *jobQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.heap)
}
