package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"github.com/plasma-hpc/dsmcpic/internal/core"
	"github.com/plasma-hpc/dsmcpic/internal/vtkio"
)

// Handler builds the daemon's HTTP API:
//
//	POST /jobs             submit a JobSpec (JSON body)
//	GET  /jobs             list retained jobs
//	GET  /jobs/{id}        job status
//	GET  /jobs/{id}/result completed result (the cached bytes, verbatim)
//	POST /jobs/{id}/cancel request cooperative cancellation
//	GET  /jobs/{id}/events NDJSON progress stream (one event per step)
//	GET  /jobs/{id}/frames NDJSON field-snapshot stream (?format=vtk for one frame)
//	GET  /results/{key}    result bytes by canonical key (local cache or shared dir)
//	GET  /metrics          aggregate text metrics
//	GET  /healthz          readiness probe (JSON; 503 while draining)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /jobs/{id}/frames", s.handleFrames)
	mux.HandleFunc("GET /results/{key}", s.handleResultByKey)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// handleHealthz is a real readiness probe, not a static liveness ping: it
// reports store mode (durable/degraded/memory), queue depth, in-flight
// workers, and the age of the last journal fsync. During drain it answers
// 503 with a Retry-After so load balancers stop routing immediately —
// clients already polling their jobs keep getting answers on the job
// endpoints throughout the drain.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := s.Health()
	code := http.StatusOK
	if h.Status == "draining" {
		code = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterEstimate()))
	}
	writeJSON(w, code, h)
}

// submitResponse is the POST /jobs reply body.
type submitResponse struct {
	ID        string   `json:"id"`
	Key       string   `json:"key"`
	State     JobState `json:"state"`
	CacheHit  bool     `json:"cache_hit,omitempty"`
	Coalesced bool     `json:"coalesced,omitempty"`
	SharedHit bool     `json:"shared_hit,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad job spec: "+err.Error())
		return
	}
	out, err := s.Submit(spec)
	if err != nil {
		var full *ErrQueueFull
		switch {
		case errors.Is(err, ErrDraining):
			writeError(w, http.StatusServiceUnavailable, err.Error())
		case errors.As(err, &full):
			w.Header().Set("Retry-After", strconv.Itoa(full.RetryAfterSeconds))
			writeError(w, http.StatusTooManyRequests, err.Error())
		default:
			writeError(w, http.StatusBadRequest, err.Error())
		}
		return
	}
	resp := submitResponse{
		ID:        out.Job.ID,
		Key:       out.Job.Key,
		State:     out.Job.stateNow(),
		CacheHit:  out.CacheHit,
		Coalesced: out.Coalesced,
		SharedHit: out.SharedHit,
	}
	code := http.StatusAccepted
	if out.CacheHit {
		code = http.StatusOK // nothing to wait for: the result is ready
	}
	writeJSON(w, code, resp)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]interface{}{"jobs": s.List()})
}

func (s *Server) jobFromPath(w http.ResponseWriter, r *http.Request) *Job {
	j, err := s.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return nil
	}
	return j
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j := s.jobFromPath(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.status())
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j := s.jobFromPath(w, r)
	if j == nil {
		return
	}
	if blob := j.result(); blob != nil {
		// Serve the stored bytes verbatim: every fetch of a result —
		// first-run or cache-hit — returns the identical payload.
		w.Header().Set("Content-Type", "application/json")
		w.Write(blob)
		return
	}
	st := j.status()
	if st.State == StateFailed || st.State == StateCanceled {
		writeJSON(w, http.StatusConflict, st)
		return
	}
	writeJSON(w, http.StatusConflict, map[string]interface{}{
		"error": "job not finished", "state": st.State, "step": st.Step,
	})
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, err := s.CancelJob(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusAccepted, j.status())
}

// handleEvents streams progress as NDJSON: one ProgressEvent per line as
// they arrive, then a final status line, then EOF. Polling with a short
// interval (rather than a per-event condvar) keeps the job's hot path
// free of subscriber bookkeeping.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.jobFromPath(w, r)
	if j == nil {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	next := 0
	for {
		// Check for disconnect before polling, not only in the wait below:
		// a canceled request must release the handler at the next pass even
		// when events keep arriving (which keeps the select's other arms
		// winnable forever).
		select {
		case <-r.Context().Done():
			return
		default:
		}
		evs, terminal := j.eventsSince(next)
		for _, ev := range evs {
			if err := enc.Encode(ev); err != nil {
				return // client went away
			}
		}
		next += len(evs)
		if flusher != nil && len(evs) > 0 {
			flusher.Flush()
		}
		if terminal {
			enc.Encode(map[string]interface{}{"final": true, "status": j.status()})
			if flusher != nil {
				flusher.Flush()
			}
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-j.done:
			// loop once more to drain trailing events, then emit final
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// handleFrames streams the job's field snapshots as NDJSON: one
// core.FieldFrame per line, served from the pre-marshaled ring verbatim —
// live streams, repeat fetches, and cache-hit replays all emit identical
// frame bytes — then a final {"final":true,...} summary line. With
// ?format=vtk it instead renders one frame (?frame=N, default the
// latest) as a legacy-VTK dataset for ParaView.
func (s *Server) handleFrames(w http.ResponseWriter, r *http.Request) {
	j := s.jobFromPath(w, r)
	if j == nil {
		return
	}
	if j.Spec.SnapshotEvery <= 0 {
		writeError(w, http.StatusConflict, "job captures no frames (snapshot_every is 0)")
		return
	}
	if r.URL.Query().Get("format") == "vtk" {
		s.serveFrameVTK(w, r, j)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	next, emitted := 0, 0
	for {
		select {
		case <-r.Context().Done():
			return
		default:
		}
		lines, n, dropped, terminal := j.framesSince(next)
		next = n
		for _, line := range lines {
			if _, err := w.Write(line); err != nil {
				return // client went away
			}
			emitted++
		}
		if flusher != nil && len(lines) > 0 {
			flusher.Flush()
		}
		if terminal {
			json.NewEncoder(w).Encode(map[string]interface{}{
				"final": true, "frames": emitted, "dropped": dropped, "state": j.stateNow(),
			})
			if flusher != nil {
				flusher.Flush()
			}
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-j.done:
			// loop once more to drain trailing frames, then emit final
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// serveFrameVTK renders one retained frame as a VTK dataset, rebuilding
// the grids from the normalized spec (cheap: no Poisson assembly).
func (s *Server) serveFrameVTK(w http.ResponseWriter, r *http.Request, j *Job) {
	lines, _, _, _ := j.framesSince(0)
	if len(lines) == 0 {
		writeError(w, http.StatusConflict, "no frames captured yet")
		return
	}
	idx := len(lines) - 1
	if q := r.URL.Query().Get("frame"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 || n >= len(lines) {
			writeError(w, http.StatusBadRequest,
				fmt.Sprintf("frame must be an index in [0,%d)", len(lines)))
			return
		}
		idx = n
	}
	var f core.FieldFrame
	if err := json.Unmarshal(lines[idx], &f); err != nil {
		writeError(w, http.StatusInternalServerError, "stored frame unreadable: "+err.Error())
		return
	}
	ref, err := j.Spec.buildRefinement()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "rebuild mesh: "+err.Error())
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	title := fmt.Sprintf("job %s step %d", j.ID, f.Step)
	if err := vtkio.WriteFieldFrame(w, title, ref, f.Phi, f.Density, f.Temperature); err != nil {
		// Headers are gone; all we can do is cut the stream short.
		return
	}
}

// handleResultByKey serves result bytes addressed by canonical spec key
// instead of job ID: the router's failover read path. When the owning
// shard is down, any healthy shard can answer from its local cache or
// straight from the cluster-shared results directory — byte-identical
// either way, because the key is content-addressed.
func (s *Server) handleResultByKey(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	s.mu.Lock()
	j := s.byKey[key]
	s.mu.Unlock()
	if j != nil {
		if blob := j.result(); blob != nil {
			w.Header().Set("Content-Type", "application/json")
			w.Write(blob)
			return
		}
	}
	if blob, ok := s.opts.Store.GetResult(key); ok {
		w.Header().Set("Content-Type", "application/json")
		w.Write(blob)
		return
	}
	if blob, ok := s.opts.Store.LookupShared(key); ok {
		w.Header().Set("Content-Type", "application/json")
		w.Write(blob)
		return
	}
	writeError(w, http.StatusNotFound, "no result for key")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, s.MetricsText())
}
