// Package serve is the simulation-serving subsystem behind cmd/plasmad: a
// job-oriented HTTP API multiplexing many coupled DSMC/PIC runs on one
// host. It provides
//
//   - a bounded priority queue with admission control (full queue →
//     ErrQueueFull, surfaced as HTTP 429 + Retry-After),
//   - a worker pool running each job in its own simmpi.World under a
//     configurable concurrent-worlds cap,
//   - a deterministic result cache keyed by a canonical hash of the
//     normalized job spec, with singleflight coalescing: concurrent
//     identical submissions share one execution, and a repeat submission
//     after completion is served from cache without constructing a world,
//   - cooperative cancellation threaded through core.Run/simmpi (a
//     canceled job stops its rank goroutines instead of leaking them),
//   - per-job progress events (step, global particles, measured phase
//     seconds) streamed as JSONL, and an aggregate text /metrics endpoint,
//   - graceful drain: admitted jobs run to completion, new submissions
//     are refused.
//
// Caching is sound, not just convenient, because runs are pure functions
// of the normalized spec: the solver is byte-identical under replay for a
// fixed (config, seed) — pinned by core's TestReplayByteIdentical — so two
// submissions with equal canonical keys must produce equal results.
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"github.com/plasma-hpc/dsmcpic/internal/balance"
	"github.com/plasma-hpc/dsmcpic/internal/commcost"
	"github.com/plasma-hpc/dsmcpic/internal/core"
	"github.com/plasma-hpc/dsmcpic/internal/dsmc"
	"github.com/plasma-hpc/dsmcpic/internal/exchange"
	"github.com/plasma-hpc/dsmcpic/internal/mesh"
	"github.com/plasma-hpc/dsmcpic/internal/pic"
)

// JobSpec describes one simulation job. The zero value of every field maps
// to the documented default, so a minimal submission ({"ranks":2,
// "steps":3}) is valid; boolean knobs are spelled in their "No" form for
// the same reason (zero value = feature on, matching the CLI defaults).
//
// Priority orders the queue only; it is deliberately excluded from the
// cache key, because it cannot affect the result.
type JobSpec struct {
	// Geometry: a cylindrical nozzle ("nozzle", the default) or a conical
	// one ("conical", radius varying linearly to OutletRadius).
	Case         string  `json:"case,omitempty"`
	MeshN        int     `json:"mesh_n,omitempty"`        // transversal half-resolution (default 3)
	MeshNZ       int     `json:"mesh_nz,omitempty"`       // axial cells (default 8)
	Radius       float64 `json:"radius,omitempty"`        // m (default 0.05)
	OutletRadius float64 `json:"outlet_radius,omitempty"` // m, conical case only
	Length       float64 `json:"length,omitempty"`        // m (default 0.2)

	// Execution.
	Ranks int    `json:"ranks,omitempty"` // simulated MPI ranks (default 2)
	Steps int    `json:"steps,omitempty"` // DSMC steps (default 8)
	Seed  uint64 `json:"seed,omitempty"`  // drives every stochastic element
	// SimWorkers is the per-rank worker count inside the particle kernels
	// (core.Config.Workers; default 1, the serial path). It joins the cache
	// key: different worker counts are different — each individually
	// deterministic — stochastic trajectories, so their results may differ.
	SimWorkers int `json:"sim_workers,omitempty"`
	// SnapshotEvery captures one field-snapshot frame (phi, density,
	// temperature; see core.FieldFrame) every N steps, streamed on
	// /jobs/{id}/frames. 0 (the default) disables capture. It joins the
	// cache key — a run with frames is observably different from one
	// without — and omitempty keeps every pre-existing key unchanged.
	SnapshotEvery int `json:"snapshot_every,omitempty"`

	// Physics (defaults mirror cmd/plasmasim).
	PICSubsteps      int     `json:"pic_substeps,omitempty"` // default 2
	DtDSMC           float64 `json:"dt_dsmc,omitempty"`      // s (default 1.2586e-6)
	InjectHPerStep   int     `json:"inject_h,omitempty"`     // global per step (default 1500)
	InjectIonPerStep int     `json:"inject_ion,omitempty"`   // default inject_h/10
	Temperature      float64 `json:"temperature,omitempty"`  // K (default 300)
	Drift            float64 `json:"drift,omitempty"`        // m/s (default 10000)
	WeightH          float64 `json:"weight_h,omitempty"`     // default 1e12
	WeightIon        float64 `json:"weight_ion,omitempty"`   // default 6000
	NoReactions      bool    `json:"no_reactions,omitempty"` // disable hydrogen chemistry

	// Parallelization knobs.
	Strategy        string  `json:"strategy,omitempty"`         // "dc" (default) or "cc"
	PoissonExchange string  `json:"poisson_exchange,omitempty"` // "halo" (default), "replicated" or "owner"
	PoissonTol      float64 `json:"poisson_tol,omitempty"`      // default 1e-6
	NoLB            bool    `json:"no_lb,omitempty"`            // disable the dynamic load balancer
	LBT             int     `json:"lb_t,omitempty"`             // balance check interval (default 5)
	LBThreshold     float64 `json:"lb_threshold,omitempty"`     // lii threshold (default 2.0)

	// Priority orders the queue (higher first, FIFO within a class). Not
	// part of the cache key.
	Priority int `json:"priority,omitempty"`
}

// Normalized returns a copy with every default filled in and the fields
// validated. Two specs that normalize equal are the same job; the cache
// key is computed over this normalized form.
func (s JobSpec) Normalized() (JobSpec, error) {
	if s.Case == "" {
		s.Case = "nozzle"
	}
	if s.Case != "nozzle" && s.Case != "conical" {
		return s, fmt.Errorf("serve: unknown case %q (want nozzle or conical)", s.Case)
	}
	if s.Case == "conical" && s.OutletRadius <= 0 {
		return s, fmt.Errorf("serve: conical case needs outlet_radius > 0")
	}
	if s.Case == "nozzle" {
		s.OutletRadius = 0 // irrelevant for a cylinder: do not let it split the key
	}
	if s.MeshN <= 0 {
		s.MeshN = 3
	}
	if s.MeshNZ <= 0 {
		s.MeshNZ = 8
	}
	if s.Radius <= 0 {
		s.Radius = 0.05
	}
	if s.Length <= 0 {
		s.Length = 0.2
	}
	if s.Ranks <= 0 {
		s.Ranks = 2
	}
	if s.Steps <= 0 {
		s.Steps = 8
	}
	if s.SimWorkers <= 0 {
		s.SimWorkers = 1
	}
	if s.SnapshotEvery < 0 {
		return s, fmt.Errorf("serve: snapshot_every must be >= 0")
	}
	if s.PICSubsteps <= 0 {
		s.PICSubsteps = 2
	}
	if s.DtDSMC < 0 {
		return s, fmt.Errorf("serve: dt_dsmc must be positive")
	}
	if s.DtDSMC == 0 {
		s.DtDSMC = 1.2586e-6
	}
	if s.InjectHPerStep <= 0 {
		s.InjectHPerStep = 1500
	}
	if s.InjectIonPerStep <= 0 {
		s.InjectIonPerStep = s.InjectHPerStep / 10
	}
	if s.Temperature <= 0 {
		s.Temperature = 300
	}
	if s.Drift == 0 {
		s.Drift = 10000
	}
	if s.WeightH <= 0 {
		s.WeightH = 1e12
	}
	if s.WeightIon <= 0 {
		s.WeightIon = 6000
	}
	switch s.Strategy {
	case "":
		s.Strategy = "dc"
	case "dc", "cc":
	default:
		return s, fmt.Errorf("serve: unknown strategy %q (want dc or cc)", s.Strategy)
	}
	switch s.PoissonExchange {
	case "":
		s.PoissonExchange = "halo"
	case "halo", "replicated", "owner":
	default:
		return s, fmt.Errorf("serve: unknown poisson_exchange %q (want halo, replicated or owner)", s.PoissonExchange)
	}
	if s.PoissonTol < 0 {
		return s, fmt.Errorf("serve: poisson_tol must be positive")
	}
	if s.PoissonTol == 0 {
		s.PoissonTol = 1e-6
	}
	if s.LBT <= 0 {
		s.LBT = 5
	}
	if s.LBThreshold <= 0 {
		s.LBThreshold = 2.0
	}
	if s.NoLB {
		s.LBT = 0 // irrelevant when the balancer is off: normalize them out
		s.LBThreshold = 0
	}
	return s, nil
}

// Key returns the canonical cache key of a normalized spec: the SHA-256
// of its canonical JSON encoding, hex encoded. Canonical here means: the
// spec has been through Normalized (all defaults concrete, irrelevant
// fields zeroed) and Priority — which cannot affect the result — is
// cleared. encoding/json emits struct fields in declaration order with a
// fixed number formatting, so equal normalized specs encode to equal
// bytes.
func (s JobSpec) Key() string {
	s.Priority = 0
	blob, err := json.Marshal(s)
	if err != nil {
		// A JobSpec contains only scalars; Marshal cannot fail.
		panic(fmt.Sprintf("serve: marshal spec: %v", err))
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:])
}

// SpecKey normalizes a spec and returns its canonical cache key — the
// exact SHA-256 the daemon caches and coalesces on, exported so the
// cluster router can compute shard ownership from the identical bytes.
// Two entry points disagreeing on this key would split the cluster-wide
// cache, so its byte stability is pinned by a cross-package test.
func SpecKey(spec JobSpec) (string, error) {
	norm, err := spec.Normalized()
	if err != nil {
		return "", err
	}
	return norm.Key(), nil
}

// buildRefinement constructs the normalized spec's grids — shared by
// BuildConfig and by the frames endpoint's VTK rendering, which needs
// the geometry without the rest of the world.
func (s JobSpec) buildRefinement() (*mesh.Refinement, error) {
	var coarse *mesh.Mesh
	var err error
	if s.Case == "conical" {
		coarse, err = mesh.ConicalNozzle(s.MeshN, s.MeshNZ, s.Radius, s.OutletRadius, s.Length)
	} else {
		coarse, err = mesh.Nozzle(s.MeshN, s.MeshNZ, s.Radius, s.Length)
	}
	if err != nil {
		return nil, err
	}
	return mesh.RefineUniform(coarse)
}

// BuildConfig constructs the grids and the core.Config for a normalized
// spec. This is the expensive "world construction" step the result cache
// avoids: mesh generation, uniform refinement, and Poisson assembly (in
// core.Prepare) all happen downstream of here.
func (s JobSpec) BuildConfig() (core.Config, error) {
	ref, err := s.buildRefinement()
	if err != nil {
		return core.Config{}, err
	}
	strat := exchange.Distributed
	if s.Strategy == "cc" {
		strat = exchange.Centralized
	}
	exMode := pic.ExchangeHalo
	switch s.PoissonExchange {
	case "replicated":
		exMode = pic.ExchangeReplicated
	case "owner":
		exMode = pic.ExchangeOwnerLocal
	}
	cfg := core.Config{
		Ref:              ref,
		Steps:            s.Steps,
		PICSubsteps:      s.PICSubsteps,
		DtDSMC:           s.DtDSMC,
		InjectHPerStep:   s.InjectHPerStep,
		InjectIonPerStep: s.InjectIonPerStep,
		Temperature:      s.Temperature,
		Drift:            s.Drift,
		WeightH:          s.WeightH,
		WeightIon:        s.WeightIon,
		Wall:             dsmc.WallModel{Kind: dsmc.DiffuseWall, Temperature: s.Temperature},
		Strategy:         strat,
		Cost:             core.DefaultCostModel(commcost.Tianhe2, commcost.InnerFrame),
		PoissonTol:       s.PoissonTol,
		PoissonExchange:  exMode,
		Seed:             s.Seed,
		Workers:          s.SimWorkers,
		SnapshotEvery:    s.SnapshotEvery,
	}
	if !s.NoReactions {
		cfg.Reactions = dsmc.DefaultHydrogenReactions()
	}
	if !s.NoLB {
		lbCfg := balance.DefaultConfig()
		lbCfg.T = s.LBT
		lbCfg.Threshold = s.LBThreshold
		lbCfg.Strategy = strat
		cfg.LB = &lbCfg
	}
	return cfg, nil
}
