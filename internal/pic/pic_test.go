package pic

import (
	"fmt"
	"math"
	"testing"

	"github.com/plasma-hpc/dsmcpic/internal/geom"
	"github.com/plasma-hpc/dsmcpic/internal/mesh"
	"github.com/plasma-hpc/dsmcpic/internal/particle"
	"github.com/plasma-hpc/dsmcpic/internal/rng"
	"github.com/plasma-hpc/dsmcpic/internal/simmpi"
	"github.com/plasma-hpc/dsmcpic/internal/sparse"
)

func boxRefinement(t testing.TB, n int) *mesh.Refinement {
	t.Helper()
	coarse, err := mesh.Box(n, n, n, 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := mesh.RefineUniform(coarse)
	if err != nil {
		t.Fatal(err)
	}
	return ref
}

func TestNewPoissonRequiresBC(t *testing.T) {
	ref := boxRefinement(t, 2)
	if _, err := NewPoisson(ref.Fine, BC{}); err == nil {
		t.Error("empty BC accepted")
	}
	if _, err := NewPoisson(ref.Fine, BC{mesh.Inlet: 0}); err == nil {
		t.Error("BC with no matching faces accepted")
	}
}

func TestPoissonMatrixSymmetric(t *testing.T) {
	ref := boxRefinement(t, 2)
	p, err := NewPoisson(ref.Fine, DefaultBC())
	if err != nil {
		t.Fatal(err)
	}
	if !p.K.IsSymmetric(1e-12) {
		t.Error("stiffness matrix not symmetric after Dirichlet elimination")
	}
}

// setLinearDirichlet pins every Dirichlet node to f(pos); with zero charge
// the FEM solution must reproduce f exactly when f is linear.
func setLinearDirichlet(p *Poisson, f func(geom.Vec3) float64) {
	for n := range p.IsDirichlet {
		if p.IsDirichlet[n] {
			p.DirichletVal[n] = f(p.Fine.Nodes[n])
		}
	}
}

func TestPoissonReproducesLinearPotential(t *testing.T) {
	ref := boxRefinement(t, 2)
	p, err := NewPoisson(ref.Fine, DefaultBC())
	if err != nil {
		t.Fatal(err)
	}
	f := func(q geom.Vec3) float64 { return 2*q.X + 3*q.Y - q.Z + 0.5 }
	setLinearDirichlet(p, f)
	b := p.RHS(make([]float64, ref.Fine.NumNodes()))
	phi := make([]float64, ref.Fine.NumNodes())
	res, err := p.Solve(b, phi, sparse.SolveOptions{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("not converged: %+v", res)
	}
	for n, q := range p.Fine.Nodes {
		if math.Abs(phi[n]-f(q)) > 1e-6 {
			t.Fatalf("node %d: phi=%v want %v", n, phi[n], f(q))
		}
	}
	// E = -grad(2x+3y-z) = (-2,-3,1), constant everywhere.
	e := p.ElectricField(phi, nil)
	for c, ec := range e {
		if geom.Dist(ec, geom.V(-2, -3, 1)) > 1e-6 {
			t.Fatalf("cell %d: E=%v", c, ec)
		}
	}
}

func TestPoissonChargeCreatesPotentialWell(t *testing.T) {
	ref := boxRefinement(t, 3)
	p, err := NewPoisson(ref.Fine, DefaultBC())
	if err != nil {
		t.Fatal(err)
	}
	// A positive point charge at the center with grounded boundary:
	// potential positive inside, max near the center.
	charge := make([]float64, ref.Fine.NumNodes())
	center := geom.V(0.5, 0.5, 0.5)
	best, bestDist := -1, math.Inf(1)
	for n, q := range ref.Fine.Nodes {
		if d := geom.Dist(q, center); d < bestDist {
			best, bestDist = n, d
		}
	}
	charge[best] = 1e-12 // coulombs
	b := p.RHS(charge)
	phi := make([]float64, ref.Fine.NumNodes())
	if _, err := p.Solve(b, phi, sparse.SolveOptions{}); err != nil {
		t.Fatal(err)
	}
	if phi[best] <= 0 {
		t.Errorf("potential at charge = %v, want > 0", phi[best])
	}
	for n := range phi {
		if phi[n] < -1e-9*math.Abs(phi[best]) {
			t.Fatalf("negative potential %v at node %d with positive charge", phi[n], n)
		}
		if phi[n] > phi[best]+1e-9 {
			t.Fatalf("potential max not at the charge: node %d has %v > %v", n, phi[n], phi[best])
		}
	}
}

func chargedAt(ref *mesh.Refinement, pos geom.Vec3) particle.Particle {
	cell := ref.Coarse.FindCellBrute(pos)
	return particle.Particle{Pos: pos, Sp: particle.HPlus, Cell: int32(cell)}
}

func TestDepositConservesCharge(t *testing.T) {
	ref := boxRefinement(t, 2)
	st := particle.NewStore(0)
	r := rng.New(31, 0)
	const n = 500
	for k := 0; k < n; k++ {
		st.Append(chargedAt(ref, geom.V(r.Float64(), r.Float64(), r.Float64())))
	}
	// Add neutrals that must not deposit.
	for k := 0; k < 100; k++ {
		p := chargedAt(ref, geom.V(r.Float64(), r.Float64(), r.Float64()))
		p.Sp = particle.H
		st.Append(p)
	}
	weight := func(particle.Species) float64 { return 2.5 }
	nodeCharge := make([]float64, ref.Fine.NumNodes())
	fineCell := make([]int32, st.Len())
	DepositCharge(st, ref, weight, nodeCharge, fineCell, nil, nil)
	want := float64(n) * 2.5 * particle.ElectronCharge
	if got := TotalCharge(nodeCharge); math.Abs(got-want) > 1e-9*want {
		t.Errorf("total charge %v, want %v", got, want)
	}
	// fineCell consistency.
	for i := 0; i < st.Len(); i++ {
		if st.Sp[i] == particle.H {
			if fineCell[i] != -1 {
				t.Fatal("neutral got a fine cell")
			}
			continue
		}
		fc := int(fineCell[i])
		if fc < 0 || ref.CoarseOf(fc) != int(st.Cell[i]) {
			t.Fatalf("fine cell %d not nested in coarse %d", fc, st.Cell[i])
		}
	}
}

func TestDepositAtNode(t *testing.T) {
	ref := boxRefinement(t, 1)
	st := particle.NewStore(0)
	// Particle exactly at a fine node: all charge lands on that node.
	target := ref.Fine.Nodes[ref.Fine.Cells[0][0]]
	// Nudge inside the cell so location is unambiguous, then use barycenter
	// instead for exactness: deposit at fine cell 0's barycenter spreads
	// evenly over its 4 nodes.
	bary := ref.Fine.Centroids[0]
	p := chargedAt(ref, bary)
	st.Append(p)
	nodeCharge := make([]float64, ref.Fine.NumNodes())
	DepositCharge(st, ref, func(particle.Species) float64 { return 1 }, nodeCharge, nil, nil, nil)
	q := particle.ElectronCharge
	for _, n := range ref.Fine.Cells[0] {
		if math.Abs(nodeCharge[n]-q/4) > 1e-12*q {
			t.Errorf("node %d got %v, want q/4=%v", n, nodeCharge[n], q/4)
		}
	}
	_ = target
}

func TestBorisPushElectricOnly(t *testing.T) {
	ref := boxRefinement(t, 1)
	st := particle.NewStore(0)
	st.Append(chargedAt(ref, geom.V(0.5, 0.5, 0.5)))
	st.Append(particle.Particle{Pos: geom.V(0.5, 0.5, 0.5), Sp: particle.H, Cell: 0}) // neutral: untouched
	e := make([]geom.Vec3, ref.Fine.NumCells())
	for i := range e {
		e[i] = geom.V(100, 0, 0)
	}
	fineCell := make([]int32, st.Len())
	DepositCharge(st, ref, func(particle.Species) float64 { return 1 }, make([]float64, ref.Fine.NumNodes()), fineCell, nil, nil)
	dt := 1e-6
	BorisPush(st, e, fineCell, geom.Vec3{}, dt, nil)
	info := particle.InfoOf(particle.HPlus)
	wantVx := info.Charge / info.Mass * 100 * dt
	if math.Abs(st.Vel[0].X-wantVx) > 1e-9*wantVx {
		t.Errorf("ion vx = %v, want %v", st.Vel[0].X, wantVx)
	}
	if st.Vel[1].Norm() != 0 {
		t.Error("neutral was pushed")
	}
}

func TestBorisPushMagneticRotationPreservesSpeed(t *testing.T) {
	ref := boxRefinement(t, 1)
	st := particle.NewStore(0)
	p := chargedAt(ref, geom.V(0.5, 0.5, 0.5))
	p.Vel = geom.V(1e4, 0, 0)
	st.Append(p)
	e := make([]geom.Vec3, ref.Fine.NumCells()) // zero E
	fineCell := []int32{int32(ref.FindFineCell(int(st.Cell[0]), st.Pos[0]))}
	b := geom.V(0, 0, 0.1) // tesla
	speed0 := st.Vel[0].Norm()
	for step := 0; step < 100; step++ {
		BorisPush(st, e, fineCell, b, 1e-9, nil)
	}
	if math.Abs(st.Vel[0].Norm()-speed0) > 1e-9*speed0 {
		t.Errorf("speed drifted under pure B: %v -> %v", speed0, st.Vel[0].Norm())
	}
	// Velocity must actually rotate (x component decreases).
	if st.Vel[0].Y == 0 {
		t.Error("no rotation happened")
	}
}

func TestNodeOwnersCoverAllNodes(t *testing.T) {
	ref := boxRefinement(t, 2)
	coarseOwner := make([]int32, ref.Coarse.NumCells())
	for c := range coarseOwner {
		coarseOwner[c] = int32(c % 4)
	}
	owners := NodeOwners(ref, coarseOwner)
	for n, r := range owners {
		if r < 0 || r >= 4 {
			t.Fatalf("node %d unowned: %d", n, r)
		}
	}
}

func TestDistSolverMatchesSerial(t *testing.T) {
	ref := boxRefinement(t, 2)
	p, err := NewPoisson(ref.Fine, DefaultBC())
	if err != nil {
		t.Fatal(err)
	}
	// Random interior charge.
	r := rng.New(41, 0)
	charge := make([]float64, ref.Fine.NumNodes())
	for n := range charge {
		if !p.IsDirichlet[n] {
			charge[n] = 1e-13 * r.Float64()
		}
	}
	// Serial reference.
	b := p.RHS(charge)
	phiSerial := make([]float64, ref.Fine.NumNodes())
	if _, err := p.Solve(b, phiSerial, sparse.SolveOptions{Tol: 1e-12}); err != nil {
		t.Fatal(err)
	}
	// Distributed: 4 ranks, block partition of coarse cells, charge split
	// across ranks (each rank contributes a share; allreduce must restore).
	const nRanks = 4
	coarseOwner := make([]int32, ref.Coarse.NumCells())
	for c := range coarseOwner {
		coarseOwner[c] = int32(c * nRanks / len(coarseOwner))
	}
	owners := NodeOwners(ref, coarseOwner)
	fineOwners := FineCellOwners(ref, coarseOwner)
	scale := 0.0
	for _, v := range phiSerial {
		scale = math.Max(scale, math.Abs(v))
	}
	// Split each node's charge evenly across the ranks whose fine cells
	// touch it — the support DepositCharge actually produces, which the
	// owner-local boundary reduction relies on (legacy allreduce sums any
	// split, so the same one serves all three modes).
	splitCharge := depositSplit(ref, charge, fineOwners, nRanks)
	for _, mode := range []ExchangeMode{ExchangeHalo, ExchangeReplicated, ExchangeOwnerLocal} {
		t.Run(mode.String(), func(t *testing.T) {
			world := simmpi.NewWorld(nRanks, simmpi.Options{})
			results := make([][]float64, nRanks)
			err = world.Run(func(comm *simmpi.Comm) {
				ds, err := newTestSolver(p, owners, fineOwners, nRanks, comm.Rank(), mode)
				if err != nil {
					panic(err)
				}
				phi := make([]float64, len(charge))
				res, err := ds.Solve(comm, splitCharge[comm.Rank()], phi, sparse.SolveOptions{Tol: 1e-12})
				if err != nil {
					panic(err)
				}
				if !res.Converged {
					panic("distributed CG did not converge")
				}
				ds.GatherPhi(comm, phi) // owner mode: replicate before comparing
				results[comm.Rank()] = phi
			})
			if err != nil {
				t.Fatal(err)
			}
			for rk := 0; rk < nRanks; rk++ {
				for n := range phiSerial {
					if math.Abs(results[rk][n]-phiSerial[n]) > 1e-6*scale+1e-15 {
						t.Fatalf("rank %d node %d: %v vs serial %v", rk, n, results[rk][n], phiSerial[n])
					}
				}
			}
		})
	}
}

func TestDistSolverRejectsBadOwnership(t *testing.T) {
	ref := boxRefinement(t, 1)
	p, err := NewPoisson(ref.Fine, DefaultBC())
	if err != nil {
		t.Fatal(err)
	}
	owners := make([]int32, ref.Fine.NumNodes())
	owners[0] = 99
	if _, err := NewDistSolver(p, owners, 2, 0, ExchangeHalo); err == nil {
		t.Error("invalid owner accepted")
	}
	if _, err := NewDistSolver(p, owners[:3], 2, 0, ExchangeHalo); err == nil {
		t.Error("short owner table accepted")
	}
	good := make([]int32, ref.Fine.NumNodes())
	if _, err := NewDistSolver(p, good, 2, 0, ExchangeOwnerLocal); err == nil {
		t.Error("owner-local mode must demand NewDistSolverOwnerLocal")
	}
	if _, err := NewDistSolverOwnerLocal(p, good, []int32{0}, 2, 0); err == nil {
		t.Error("short fine-owner table accepted")
	}
	badFine := make([]int32, ref.Fine.NumCells())
	badFine[0] = 7
	if _, err := NewDistSolverOwnerLocal(p, good, badFine, 2, 0); err == nil {
		t.Error("invalid fine-cell owner accepted")
	}
}

func BenchmarkPoissonAssembly(b *testing.B) {
	coarse, err := mesh.Nozzle(4, 8, 0.05, 0.2)
	if err != nil {
		b.Fatal(err)
	}
	ref, err := mesh.RefineUniform(coarse)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewPoisson(ref.Fine, DefaultBC()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPoissonSolve(b *testing.B) {
	coarse, err := mesh.Nozzle(4, 8, 0.05, 0.2)
	if err != nil {
		b.Fatal(err)
	}
	ref, err := mesh.RefineUniform(coarse)
	if err != nil {
		b.Fatal(err)
	}
	p, err := NewPoisson(ref.Fine, DefaultBC())
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(1, 0)
	charge := make([]float64, ref.Fine.NumNodes())
	for n := range charge {
		charge[n] = 1e-14 * r.Float64()
	}
	rhs := p.RHS(charge)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		phi := make([]float64, len(charge))
		if _, err := p.Solve(rhs, phi, sparse.SolveOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// plumeRefinement builds the bench plume case's nozzle grids (the geometry
// of cmd/bench and cmd/plasmasim).
func plumeRefinement(t testing.TB) *mesh.Refinement {
	t.Helper()
	coarse, err := mesh.Nozzle(3, 8, 0.05, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := mesh.RefineUniform(coarse)
	if err != nil {
		t.Fatal(err)
	}
	return ref
}

// TestHaloReplicatedEquivalencePlume pins the tentpole guarantee on the
// plume case: the halo and replicated exchanges converge to the same
// potential (within 1e-8) at 1, 2 and 4 ranks, and at 4 ranks the halo's
// per-solve Poisson traffic is at least 5x smaller in bytes.
func TestHaloReplicatedEquivalencePlume(t *testing.T) {
	ref := plumeRefinement(t)
	p, err := NewPoisson(ref.Fine, DefaultBC())
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(7, 0)
	charge := make([]float64, ref.Fine.NumNodes())
	for n := range charge {
		if !p.IsDirichlet[n] {
			charge[n] = 1e-13 * r.Float64()
		}
	}
	solve := func(nRanks int, mode ExchangeMode) ([]float64, simmpi.PhaseStats) {
		t.Helper()
		coarseOwner := make([]int32, ref.Coarse.NumCells())
		for c := range coarseOwner {
			coarseOwner[c] = int32(c * nRanks / len(coarseOwner))
		}
		owners := NodeOwners(ref, coarseOwner)
		world := simmpi.NewWorld(nRanks, simmpi.Options{})
		var phi0 []float64
		err := world.Run(func(comm *simmpi.Comm) {
			ds, err := NewDistSolver(p, owners, nRanks, comm.Rank(), mode)
			if err != nil {
				panic(err)
			}
			comm.SetPhase("Poisson_Solve")
			phi := make([]float64, len(charge))
			res, err := ds.Solve(comm, charge, phi, sparse.SolveOptions{Tol: 1e-10})
			if err != nil {
				panic(err)
			}
			if !res.Converged {
				panic("CG did not converge")
			}
			if comm.Rank() == 0 {
				phi0 = phi
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		total, _ := simmpi.AggregatePhase(world.Counters(), "Poisson_Solve")
		return phi0, total
	}
	for _, nRanks := range []int{1, 2, 4} {
		phiHalo, trHalo := solve(nRanks, ExchangeHalo)
		phiRepl, trRepl := solve(nRanks, ExchangeReplicated)
		scale := 0.0
		for _, v := range phiRepl {
			scale = math.Max(scale, math.Abs(v))
		}
		for n := range phiRepl {
			if math.Abs(phiHalo[n]-phiRepl[n]) > 1e-8*scale+1e-18 {
				t.Fatalf("ranks=%d node %d: halo %v vs replicated %v", nRanks, n, phiHalo[n], phiRepl[n])
			}
		}
		t.Logf("ranks=%d: halo %d msgs / %d bytes, replicated %d msgs / %d bytes",
			nRanks, trHalo.Messages, trHalo.Bytes, trRepl.Messages, trRepl.Bytes)
		if nRanks == 1 && trHalo.Messages != 0 {
			// A single rank has no neighbours; nothing must hit the wire
			// on the iteration path (the charge allreduce and assembly are
			// rank-local no-sends at size 1).
			t.Errorf("single-rank halo sent %d messages", trHalo.Messages)
		}
		if nRanks == 4 && trHalo.Bytes*5 > trRepl.Bytes {
			t.Errorf("ranks=4: halo bytes %d not >=5x below replicated %d", trHalo.Bytes, trRepl.Bytes)
		}
	}
}

// TestHaloIndexListsConsistent checks the VecScatter structure on the
// 4-rank plume partition: every pairing agrees across ranks (A ships to B
// exactly what B expects from A), receives cover exactly the off-owner
// columns of owned rows, and sends only ever carry owned nodes.
func TestHaloIndexListsConsistent(t *testing.T) {
	ref := plumeRefinement(t)
	p, err := NewPoisson(ref.Fine, DefaultBC())
	if err != nil {
		t.Fatal(err)
	}
	const nRanks = 4
	coarseOwner := make([]int32, ref.Coarse.NumCells())
	for c := range coarseOwner {
		coarseOwner[c] = int32(c * nRanks / len(coarseOwner))
	}
	owners := NodeOwners(ref, coarseOwner)
	solvers := make([]*DistSolver, nRanks)
	for rk := range solvers {
		if solvers[rk], err = NewDistSolver(p, owners, nRanks, rk, ExchangeHalo); err != nil {
			t.Fatal(err)
		}
	}
	anyPair := false
	for a := 0; a < nRanks; a++ {
		for bk := 0; bk < nRanks; bk++ {
			if a == bk {
				continue
			}
			send, recv := solvers[a].HaloSendIdx(bk), solvers[bk].HaloRecvIdx(a)
			if len(send) != len(recv) {
				t.Fatalf("rank %d sends %d nodes to %d, which expects %d", a, len(send), bk, len(recv))
			}
			for i := range send {
				if send[i] != recv[i] {
					t.Fatalf("pair (%d,%d) disagrees at slot %d: %d vs %d", a, bk, i, send[i], recv[i])
				}
				if owners[send[i]] != int32(a) {
					t.Fatalf("rank %d ships node %d it does not own", a, send[i])
				}
			}
			if len(send) > 0 {
				anyPair = true
			}
		}
	}
	if !anyPair {
		t.Fatal("no halo pair on a 4-rank partition — boundary detection broken")
	}
	// Ghost coverage: rank 0's receives are exactly the off-owner columns
	// of its owned rows.
	want := map[int32]bool{}
	k := p.K
	for i, o := range owners {
		if o != 0 {
			continue
		}
		for e := k.RowPtr[i]; e < k.RowPtr[i+1]; e++ {
			if j := k.ColIdx[e]; owners[j] != 0 {
				want[j] = true
			}
		}
	}
	got := map[int32]bool{}
	for q := 0; q < nRanks; q++ {
		for _, j := range solvers[0].HaloRecvIdx(q) {
			if owners[j] != int32(q) {
				t.Fatalf("ghost %d listed under rank %d but owned by %d", j, q, owners[j])
			}
			got[j] = true
		}
	}
	if len(got) != len(want) {
		t.Fatalf("rank 0 ghosts: got %d nodes, want %d", len(got), len(want))
	}
	for j := range want {
		if !got[j] {
			t.Fatalf("ghost node %d missing from recv lists", j)
		}
	}
}

// TestDistSolverDefaultTol pins that a zero SolveOptions.Tol resolves to
// the shared sparse.DefaultTol (satellite: the former 1e-8-here vs
// 1e-10-in-sparse split is gone).
func TestDistSolverDefaultTol(t *testing.T) {
	ref := boxRefinement(t, 2)
	p, err := NewPoisson(ref.Fine, DefaultBC())
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(11, 0)
	charge := make([]float64, ref.Fine.NumNodes())
	for n := range charge {
		if !p.IsDirichlet[n] {
			charge[n] = 1e-13 * r.Float64()
		}
	}
	owners := make([]int32, ref.Fine.NumNodes())
	world := simmpi.NewWorld(1, simmpi.Options{})
	err = world.Run(func(comm *simmpi.Comm) {
		ds, err := NewDistSolver(p, owners, 1, 0, ExchangeHalo)
		if err != nil {
			panic(err)
		}
		phi := make([]float64, len(charge))
		res, err := ds.Solve(comm, charge, phi, sparse.SolveOptions{})
		if err != nil {
			panic(err)
		}
		if !res.Converged {
			panic("CG did not converge at the default tolerance")
		}
		if res.Residual > sparse.DefaultTol {
			panic(fmt.Sprintf("converged residual %g above sparse.DefaultTol %g", res.Residual, sparse.DefaultTol))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestParseExchangeMode pins the flag spellings.
func TestParseExchangeMode(t *testing.T) {
	for _, mode := range []ExchangeMode{ExchangeHalo, ExchangeReplicated, ExchangeOwnerLocal} {
		got, err := ParseExchangeMode(mode.String())
		if err != nil || got != mode {
			t.Errorf("round-trip of %v: got %v, err %v", mode, got, err)
		}
	}
	if _, err := ParseExchangeMode("gatherv"); err == nil {
		t.Error("bad mode accepted")
	}
	if ExchangeMode(0) != ExchangeHalo {
		t.Error("zero value must be the halo default")
	}
}
