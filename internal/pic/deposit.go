package pic

import (
	"github.com/plasma-hpc/dsmcpic/internal/mesh"
	"github.com/plasma-hpc/dsmcpic/internal/parallel"
	"github.com/plasma-hpc/dsmcpic/internal/particle"
)

// DepositScratch holds the per-worker nodal accumulation vectors a
// parallel deposition sweep reuses across steps. The zero value is ready;
// one scratch serves one rank (concurrent DepositCharge calls must not
// share it).
type DepositScratch struct {
	node [][]float64
}

// nodesFor returns w zeroed per-worker node vectors of length n, growing
// backing arrays only when the grid or worker count outgrows them.
func (sc *DepositScratch) nodesFor(w, n int) [][]float64 {
	for len(sc.node) < w {
		sc.node = append(sc.node, nil)
	}
	for c := 0; c < w; c++ {
		if cap(sc.node[c]) < n {
			sc.node[c] = make([]float64, n)
		}
		sc.node[c] = sc.node[c][:n]
		clear(sc.node[c])
	}
	return sc.node[:w]
}

// DepositCharge interpolates the charge of every charged particle in st to
// the fine-grid nodes with linear shape functions (paper §III-C:
// "interpolating the particle charge to the grid nodes"): each particle
// contributes weight * q * w_n to node n, where w_n are its barycentric
// coordinates in its fine cell and weight is the species scaling factor
// (real particles per simulation particle). Per-species charge factors are
// tabulated once per sweep, so the hot loop performs no indirect calls.
//
// Barycentric weights of particles sitting exactly on a face can dip
// slightly negative from floating-point jitter; those are clipped to zero
// and the remaining weights renormalized so every particle deposits
// exactly its full charge (TotalCharge conserves).
//
// It also records each particle's fine cell in fineCell (parallel to the
// store; -1 for neutral or unlocatable particles) so the subsequent field
// gather does not repeat the point location.
//
// The nodeCharge slice must have length fine.NumNodes(); it is accumulated
// into (callers zero it per timestep).
//
// pool parallelizes the sweep over deterministic contiguous chunks of the
// particle index range; nil (or a 1-worker pool) deposits directly into
// nodeCharge in particle order — bit-for-bit the legacy serial sweep.
// With more workers, each chunk accumulates into its own scratch vector
// from sc and the vectors are reduced into nodeCharge node-by-node in
// worker-index order (a keyed reduction), so the float summation order —
// and therefore the bits — is a pure function of the worker count.
//
//commvet:hot
func DepositCharge(st *particle.Store, ref *mesh.Refinement, weight func(particle.Species) float64, nodeCharge []float64, fineCell []int32, pool *parallel.Pool, sc *DepositScratch) {
	// Per-species tables, built once per sweep: hoists the weight() and
	// InfoOf() indirections out of the particle loop.
	var charged [particle.NumSpecies]bool
	var qTab [particle.NumSpecies]float64
	for sp := particle.Species(0); sp < particle.NumSpecies; sp++ {
		if !sp.IsCharged() {
			continue
		}
		charged[sp] = true
		qTab[sp] = particle.InfoOf(sp).Charge * weight(sp)
	}
	n := st.Len()
	if workers := pool.Workers(); workers == 1 {
		depositChunk(st, 0, n, ref, &charged, &qTab, nodeCharge, fineCell)
	} else {
		if sc == nil {
			sc = &DepositScratch{}
		}
		shards := sc.nodesFor(workers, len(nodeCharge))
		// One dispatch closure per sweep (not per particle); chunk bodies
		// write disjoint state — fineCell by particle index, the nodal
		// accumulator by chunk index.
		//commvet:ignore hotalloc once-per-sweep dispatch closure, outside the particle loop
		pool.Run(n, func(chunk, lo, hi int) {
			depositChunk(st, lo, hi, ref, &charged, &qTab, shards[chunk], fineCell)
		})
		// Keyed reduction: each worker owns a disjoint node range and folds
		// every shard's contribution in worker-index order, keeping the
		// float accumulation order fixed for a given worker count.
		//commvet:ignore hotalloc once-per-sweep reduction closure, outside the node loop
		pool.Run(len(nodeCharge), func(chunk, lo, hi int) {
			for w := 0; w < workers; w++ {
				shard := shards[w]
				for k := lo; k < hi; k++ {
					nodeCharge[k] += shard[k]
				}
			}
		})
	}
}

// depositChunk deposits particles [lo, hi) into nodeCharge. It is the
// per-worker body of DepositCharge: fineCell writes are disjoint per
// particle index and nodeCharge is private to the worker (or the caller's,
// in the serial path).
//
//commvet:hot
func depositChunk(st *particle.Store, lo, hi int, ref *mesh.Refinement, charged *[particle.NumSpecies]bool, qTab *[particle.NumSpecies]float64, nodeCharge []float64, fineCell []int32) {
	for i := lo; i < hi; i++ {
		sp := st.Sp[i]
		if !charged[sp] {
			if fineCell != nil {
				fineCell[i] = -1
			}
			continue
		}
		fc := ref.FindFineCell(int(st.Cell[i]), st.Pos[i])
		if fineCell != nil {
			fineCell[i] = int32(fc)
		}
		if fc < 0 {
			continue
		}
		q := qTab[sp]
		w := ref.Fine.Tet(fc).Barycentric(st.Pos[i])
		w0, w1, w2, w3 := w[0], w[1], w[2], w[3]
		clipped := false
		if w0 < 0 {
			w0, clipped = 0, true
		}
		if w1 < 0 {
			w1, clipped = 0, true
		}
		if w2 < 0 {
			w2, clipped = 0, true
		}
		if w3 < 0 {
			w3, clipped = 0, true
		}
		if clipped {
			// Renormalize after clipping boundary jitter so the particle
			// still deposits exactly its full charge q (interior particles
			// never clip and skip this, keeping their legacy bits).
			sum := w0 + w1 + w2 + w3
			if sum <= 0 {
				continue // degenerate: all weights clipped away
			}
			inv := 1 / sum
			w0 *= inv
			w1 *= inv
			w2 *= inv
			w3 *= inv
		}
		cell := ref.Fine.Cells[fc]
		nodeCharge[cell[0]] += q * w0
		nodeCharge[cell[1]] += q * w1
		nodeCharge[cell[2]] += q * w2
		nodeCharge[cell[3]] += q * w3
	}
}

// TotalCharge sums a nodal charge vector (diagnostic; deposition conserves
// the total particle charge exactly up to float summation order).
func TotalCharge(nodeCharge []float64) float64 {
	var s float64
	for _, q := range nodeCharge {
		s += q
	}
	return s
}
