package pic

import (
	"github.com/plasma-hpc/dsmcpic/internal/mesh"
	"github.com/plasma-hpc/dsmcpic/internal/particle"
)

// DepositCharge interpolates the charge of every charged particle in st to
// the fine-grid nodes with linear shape functions (paper §III-C:
// "interpolating the particle charge to the grid nodes"): each particle
// contributes weight * q * w_n to node n, where w_n are its barycentric
// coordinates in its fine cell and weight is the species scaling factor
// (real particles per simulation particle).
//
// It also records each particle's fine cell in fineCell (parallel to the
// store; -1 for neutral or unlocatable particles) so the subsequent field
// gather does not repeat the point location.
//
// The nodeCharge slice must have length fine.NumNodes(); it is accumulated
// into (callers zero it per timestep).
//
//commvet:hot
func DepositCharge(st *particle.Store, ref *mesh.Refinement, weight func(particle.Species) float64, nodeCharge []float64, fineCell []int32) {
	for i := 0; i < st.Len(); i++ {
		sp := st.Sp[i]
		if !sp.IsCharged() {
			if fineCell != nil {
				fineCell[i] = -1
			}
			continue
		}
		fc := ref.FindFineCell(int(st.Cell[i]), st.Pos[i])
		if fineCell != nil {
			fineCell[i] = int32(fc)
		}
		if fc < 0 {
			continue
		}
		q := particle.InfoOf(sp).Charge * weight(sp)
		w := ref.Fine.Tet(fc).Barycentric(st.Pos[i])
		cell := ref.Fine.Cells[fc]
		for k := 0; k < 4; k++ {
			wk := w[k]
			if wk < 0 {
				wk = 0 // clip boundary jitter; total charge stays ~exact
			}
			nodeCharge[cell[k]] += q * wk
		}
	}
}

// TotalCharge sums a nodal charge vector (diagnostic; deposition conserves
// the total particle charge up to clipping jitter).
func TotalCharge(nodeCharge []float64) float64 {
	var s float64
	for _, q := range nodeCharge {
		s += q
	}
	return s
}
