package pic

import (
	"fmt"
	"math"
	"sort"

	"github.com/plasma-hpc/dsmcpic/internal/mesh"
	"github.com/plasma-hpc/dsmcpic/internal/simmpi"
	"github.com/plasma-hpc/dsmcpic/internal/sparse"
)

// NodeOwners assigns each fine-grid node to the rank owning the
// lowest-indexed fine cell touching it, where fine-cell ownership follows
// the coarse-cell partition (paper §IV-A: only the coarse grid is
// decomposed; fine cells and nodes inherit). Every rank computes the same
// assignment deterministically.
func NodeOwners(ref *mesh.Refinement, coarseOwner []int32) []int32 {
	owners := make([]int32, ref.Fine.NumNodes())
	for i := range owners {
		owners[i] = -1
	}
	for fc := range ref.Fine.Cells {
		rank := coarseOwner[ref.CoarseOf(fc)]
		for _, n := range ref.Fine.Cells[fc] {
			if owners[n] == -1 {
				owners[n] = rank
			}
		}
	}
	return owners
}

// ExchangeMode selects how the distributed CG refreshes the off-owner
// ("ghost") entries of the search direction each iteration.
type ExchangeMode int

const (
	// ExchangeHalo — the default — ships only partition-boundary entries
	// point-to-point between neighbouring row blocks, from precomputed
	// per-neighbour index lists (a PETSc VecScatter analogue). The
	// per-iteration traffic is O(partition boundary) per rank with no
	// rank-0 fan-in.
	ExchangeHalo ExchangeMode = iota
	// ExchangeReplicated re-assembles the full vector through rank 0 every
	// iteration (Gatherv + Bcast, O(nodes) regardless of rank count) —
	// the worst-case form of the paper's Poisson scalability wall
	// (Table IV), kept selectable for benchmark comparison.
	ExchangeReplicated
	// ExchangeOwnerLocal is true row ownership (DESIGN.md §6j): the solver
	// keeps only its owned CSR rows plus a ghost column layer
	// (sparse.LocalCSR), the charge reduction ships only
	// partition-boundary contributions point-to-point to node owners, and
	// converged phi is delivered only to the ranks whose owned fine cells
	// read it. Per-solve once-only traffic is O(partition boundary) and
	// per-rank solver memory is O(nodes/P + ghosts). Construct with
	// NewDistSolverOwnerLocal (the mode needs fine-cell ownership).
	ExchangeOwnerLocal
)

// String returns the mode's config-file spelling
// ("halo"/"replicated"/"owner").
func (m ExchangeMode) String() string {
	switch m {
	case ExchangeHalo:
		return "halo"
	case ExchangeReplicated:
		return "replicated"
	case ExchangeOwnerLocal:
		return "owner"
	default:
		return fmt.Sprintf("ExchangeMode(%d)", int(m))
	}
}

// ParseExchangeMode inverts ExchangeMode.String.
func ParseExchangeMode(s string) (ExchangeMode, error) {
	switch s {
	case "halo":
		return ExchangeHalo, nil
	case "replicated":
		return ExchangeReplicated, nil
	case "owner":
		return ExchangeOwnerLocal, nil
	}
	return 0, fmt.Errorf("pic: unknown Poisson exchange mode %q (want halo, replicated or owner)", s)
}

// DistSolver runs the Poisson solve with the communication structure of a
// row-distributed parallel Krylov solver (the paper's PETSc KSP usage,
// §IV-C): each rank computes only the matrix rows of the nodes it owns,
// inner products are allreduced, and the ghost entries the owned rows read
// are refreshed per iteration by the configured ExchangeMode. The full
// potential vector is assembled once, at the end of the solve, not every
// iteration.
//
// Both modes execute the identical floating-point sequence on owned rows
// (only which p entries get refreshed differs — halo refreshes exactly the
// entries owned rows read), so they produce bitwise-identical iterates.
type DistSolver struct {
	P     *Poisson
	Owner []int32
	Mode  ExchangeMode

	ownedByRank [][]int32
	mine        []int32
	invDiag     []float64

	// Halo index lists (the VecScatter analogue), derived from the
	// owned-row CSR column pattern. K is replicated on every rank, so both
	// sides of every pairing are computed locally and agree exactly:
	// sendIdx[q] lists my owned nodes that rank q's rows reference (what I
	// must ship to q); recvIdx[q] lists q's owned nodes my rows reference
	// (my ghosts from q). Both are sorted ascending, which fixes the
	// packing order on the wire.
	sendIdx [][]int32
	recvIdx [][]int32
	sendNbr []int // ranks with non-empty sendIdx, ascending
	recvNbr []int // ranks with non-empty recvIdx, ascending

	// Reused buffers: everything the per-iteration path touches is
	// allocated once here, so steady-state solves allocate nothing.
	// sendBuf[q] is repacked each exchange; that is safe without copying
	// (simmpi does not copy payloads) because at least one allreduce
	// completes between consecutive exchanges, and a finished allreduce
	// proves every peer contributed — i.e. passed its previous receive
	// phase and fully decoded the previous payload.
	sendBuf [][]byte
	b       []float64
	r       []float64
	z       []float64
	p       []float64
	ap      []float64
	red     [3]float64 // fused-allreduce operand
	scratch []float64  // owned-segment gather for assembly/replication
	encBuf  []byte     // owned-segment encode buffer
	fullBuf []float64  // rank-0 scratch for full-vector assembly
	fullEnc []byte     // rank-0 encode buffer for the assembled vector

	// Owner-local state (ExchangeOwnerLocal only; see owner.go). The CG
	// vectors above stay nil in this mode — the solve runs on the local
	// vectors below, sized O(owned + ghosts) instead of O(nodes).
	local    *sparse.LocalCSR
	invDiagL []float64
	sendIdxL [][]int32 // halo send lists in local (owned) ids
	recvIdxL [][]int32 // halo recv lists in local (ghost) ids

	// Charge/consumer pairing, derived from fine-cell ownership. My
	// consumer set is the nodes of my owned fine cells (deposit writes and
	// field-gather reads touch exactly those): chgSendG[q] lists my
	// consumer nodes owned by q — charges flow out along it and converged
	// phi flows back in; chgRecvG/chgRecvL[q] list q's consumer nodes that
	// I own (global and local ids) — charges flow in, phi flows out. Both
	// endpoints derive the pairing from replicated ownership tables, so
	// the lists agree without negotiation.
	chgSendG   [][]int32
	chgRecvG   [][]int32
	chgRecvL   [][]int32
	chgSendNbr []int
	chgRecvNbr []int
	chgSendBuf [][]byte
	phiSendBuf [][]byte

	bL, rL, zL, apL, chgL []float64 // owned-length CG state
	pL, xL                []float64 // owned+ghost (matvec reads ghosts)
}

// NewDistSolver prepares ownership tables (and, in halo mode, the
// neighbour index lists) for a world of nRanks. rank is this rank's id.
// ExchangeOwnerLocal additionally needs fine-cell ownership — use
// NewDistSolverOwnerLocal for that mode.
func NewDistSolver(p *Poisson, owner []int32, nRanks, rank int, mode ExchangeMode) (*DistSolver, error) {
	if mode == ExchangeOwnerLocal {
		return nil, fmt.Errorf("pic: owner-local mode needs fine-cell ownership; use NewDistSolverOwnerLocal")
	}
	d, err := newDistBase(p, owner, nRanks, rank, mode)
	if err != nil {
		return nil, err
	}
	diag := p.K.Diag()
	d.invDiag = make([]float64, len(diag))
	for i, x := range diag {
		if x != 0 {
			d.invDiag[i] = 1 / x
		} else {
			d.invDiag[i] = 1
		}
	}
	n := p.Fine.NumNodes()
	d.b = make([]float64, n)
	d.r = make([]float64, n)
	d.z = make([]float64, n)
	d.p = make([]float64, n)
	d.ap = make([]float64, n)
	// All encode buffers the solve path reuses are sized here, up front,
	// so steady-state solves are allocation-free (hotalloc: the full-vector
	// scratch used to be allocated lazily inside exchangeReplicated).
	d.encBuf = make([]byte, 8*len(d.mine))
	if mode == ExchangeReplicated && rank == 0 {
		d.fullBuf = make([]float64, n)
		d.fullEnc = make([]byte, 8*n)
	}
	if mode == ExchangeHalo {
		d.buildHalo(nRanks, rank)
	}
	return d, nil
}

// newDistBase validates the node-owner table and builds the ownership
// index shared by every exchange mode.
func newDistBase(p *Poisson, owner []int32, nRanks, rank int, mode ExchangeMode) (*DistSolver, error) {
	if len(owner) != p.Fine.NumNodes() {
		return nil, fmt.Errorf("pic: owner table has %d entries for %d nodes", len(owner), p.Fine.NumNodes())
	}
	d := &DistSolver{P: p, Owner: owner, Mode: mode, ownedByRank: make([][]int32, nRanks)}
	for n, r := range owner {
		if r < 0 || int(r) >= nRanks {
			return nil, fmt.Errorf("pic: node %d owned by invalid rank %d", n, r)
		}
		d.ownedByRank[r] = append(d.ownedByRank[r], int32(n))
	}
	d.mine = d.ownedByRank[rank]
	d.scratch = make([]float64, len(d.mine))
	return d, nil
}

// buildHalo computes the per-neighbour send/recv index lists from the CSR
// column pattern: one pass over all rows (K is replicated, so remote rows
// are visible locally and both endpoints of each pairing derive identical
// lists without any structural-symmetry assumption).
func (d *DistSolver) buildHalo(nRanks, rank int) {
	k := d.P.K
	me := int32(rank)
	d.sendIdx = make([][]int32, nRanks)
	d.recvIdx = make([][]int32, nRanks)
	for i := range d.Owner {
		rowOwner := d.Owner[i]
		if rowOwner == me {
			for e := k.RowPtr[i]; e < k.RowPtr[i+1]; e++ {
				j := k.ColIdx[e]
				if o := d.Owner[j]; o != me {
					d.recvIdx[o] = append(d.recvIdx[o], j)
				}
			}
		} else {
			for e := k.RowPtr[i]; e < k.RowPtr[i+1]; e++ {
				j := k.ColIdx[e]
				if d.Owner[j] == me {
					d.sendIdx[rowOwner] = append(d.sendIdx[rowOwner], j)
				}
			}
		}
	}
	d.sendBuf = make([][]byte, nRanks)
	for q := 0; q < nRanks; q++ {
		d.sendIdx[q] = sortUnique(d.sendIdx[q])
		d.recvIdx[q] = sortUnique(d.recvIdx[q])
		if len(d.sendIdx[q]) > 0 {
			d.sendNbr = append(d.sendNbr, q)
			d.sendBuf[q] = make([]byte, 8*len(d.sendIdx[q]))
		}
		if len(d.recvIdx[q]) > 0 {
			d.recvNbr = append(d.recvNbr, q)
		}
	}
}

// sortUnique sorts ids ascending and drops duplicates in place.
func sortUnique(ids []int32) []int32 {
	if len(ids) == 0 {
		return nil
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	out := ids[:1]
	for _, v := range ids[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// OwnedNodes returns the node ids this rank owns (do not modify).
func (d *DistSolver) OwnedNodes() []int32 { return d.mine }

// HaloSendIdx returns the owned nodes shipped to rank q each iteration in
// halo mode (do not modify; nil outside halo mode or for non-neighbours).
func (d *DistSolver) HaloSendIdx(q int) []int32 {
	if d.sendIdx == nil {
		return nil
	}
	return d.sendIdx[q]
}

// HaloRecvIdx returns the ghost nodes received from rank q each iteration
// in halo mode (do not modify; nil outside halo mode or non-neighbours).
func (d *DistSolver) HaloRecvIdx(q int) []int32 {
	if d.recvIdx == nil {
		return nil
	}
	return d.recvIdx[q]
}

// dotAt computes sum over idx of a[i]*b[i].
//
//commvet:hot
func dotAt(idx []int32, a, b []float64) float64 {
	var s float64
	for _, i := range idx {
		s += a[i] * b[i]
	}
	return s
}

// spread refreshes the ghost entries of vec that owned rows read. In halo
// mode that is a point-to-point boundary exchange; in replicated mode the
// whole vector is re-assembled through rank 0 (the pre-halo behaviour).
//
//commvet:hot
func (d *DistSolver) spread(comm *simmpi.Comm, vec []float64) {
	if d.Mode == ExchangeReplicated {
		d.exchangeReplicated(comm, vec)
		return
	}
	d.haloExchange(comm, vec)
}

// haloExchange ships only the index-listed boundary entries between
// neighbours, in the two ordered rounds of the distributed particle
// exchange (paper §IV-B2): round 1 moves low→high pairs (send to higher
// neighbours ascending, then drain lower neighbours ascending), round 2
// moves high→low. Sends are posted before the round's receives — simmpi
// sends never block, matching eager/Isend semantics for these small
// boundary payloads — so the schedule cannot deadlock.
//
//commvet:hot
func (d *DistSolver) haloExchange(comm *simmpi.Comm, vec []float64) {
	me := comm.Rank()
	// Round 1: low -> high.
	for _, q := range d.sendNbr {
		if q > me {
			d.sendBuf[q] = simmpi.EncodeFloat64sGatherInto(d.sendBuf[q], vec, d.sendIdx[q])
			comm.Send(q, simmpi.TagPoissonHalo, d.sendBuf[q])
		}
	}
	for _, q := range d.recvNbr {
		if q < me {
			simmpi.DecodeFloat64sScatter(vec, d.recvIdx[q], comm.Recv(q, simmpi.TagPoissonHalo))
		}
	}
	// Round 2: high -> low.
	for _, q := range d.sendNbr {
		if q < me {
			d.sendBuf[q] = simmpi.EncodeFloat64sGatherInto(d.sendBuf[q], vec, d.sendIdx[q])
			comm.Send(q, simmpi.TagPoissonHalo, d.sendBuf[q])
		}
	}
	for _, q := range d.recvNbr {
		if q > me {
			simmpi.DecodeFloat64sScatter(vec, d.recvIdx[q], comm.Recv(q, simmpi.TagPoissonHalo))
		}
	}
}

// exchangeReplicated re-assembles the full vector from per-rank owned
// segments: gather the owned values at rank 0, which assembles and
// broadcasts the full vector. Per-iteration traffic is O(nodes) regardless
// of rank count, funnelled through rank 0 — the communication structure
// behind the paper's Poisson scalability wall. The rank-0 assembly scratch
// (fullBuf/fullEnc) is hoisted into NewDistSolver: this runs every CG
// iteration and must not allocate.
//
//commvet:hot
func (d *DistSolver) exchangeReplicated(comm *simmpi.Comm, vec []float64) {
	for k, i := range d.mine {
		d.scratch[k] = vec[i]
	}
	d.encBuf = simmpi.EncodeFloat64sInto(d.encBuf, d.scratch)
	parts := comm.Gatherv(0, d.encBuf)
	var blob []byte
	if comm.Rank() == 0 {
		for q, ids := range d.ownedByRank {
			simmpi.DecodeFloat64sScatter(d.fullBuf, ids, parts[q])
		}
		d.fullEnc = simmpi.EncodeFloat64sInto(d.fullEnc, d.fullBuf)
		blob = d.fullEnc
	}
	blob = comm.Bcast(0, blob)
	simmpi.DecodeFloat64sInto(vec, blob)
}

// assemble replicates vec (each rank contributing its owned entries) on
// every rank. Halo mode allgathers the owned segments — this runs once per
// solve, at convergence, not per iteration; replicated mode reuses its
// rank-0 assembly, keeping that mode's traffic exactly its historical
// shape.
func (d *DistSolver) assemble(comm *simmpi.Comm, vec []float64) {
	if d.Mode == ExchangeReplicated {
		d.exchangeReplicated(comm, vec)
		return
	}
	for k, i := range d.mine {
		d.scratch[k] = vec[i]
	}
	d.encBuf = simmpi.EncodeFloat64sInto(d.encBuf, d.scratch)
	parts := comm.Allgatherv(d.encBuf)
	for q, ids := range d.ownedByRank {
		if q == comm.Rank() {
			continue // own entries are already in vec
		}
		simmpi.DecodeFloat64sScatter(vec, ids, parts[q])
	}
}

// Solve reduces the per-rank nodal charge contributions, builds the RHS,
// and runs the distributed preconditioned CG. phi (full length) is the
// initial guess and is overwritten with the replicated solution on every
// rank. All ranks must call Solve collectively. Zero opts fields resolve
// to the shared solver defaults (sparse.DefaultTol et al.).
func (d *DistSolver) Solve(comm *simmpi.Comm, nodeChargeLocal, phi []float64, opts sparse.SolveOptions) (sparse.SolveResult, error) {
	n := d.P.Fine.NumNodes()
	if len(nodeChargeLocal) != n || len(phi) != n {
		return sparse.SolveResult{}, fmt.Errorf("pic: Solve dimension mismatch")
	}
	opts = opts.WithDefaults(n)
	if d.Mode == ExchangeOwnerLocal {
		return d.solveOwnerLocal(comm, nodeChargeLocal, phi, opts)
	}
	// Reduction summation of nodal charge (paper §IV-C): interior nodes
	// have one owner's contribution, boundary-of-partition nodes sum over
	// neighbors; a full-vector allreduce covers both. This runs once per
	// solve — the per-iteration path below is neighbour-structured.
	charge := comm.AllreduceFloat64(nodeChargeLocal, simmpi.OpSum)
	d.P.RHSInto(charge, d.b)
	b, r, z, p, ap := d.b, d.r, d.z, d.p, d.ap
	k := d.P.K

	// r = b - K x on owned rows; the start vector phi is replicated, so
	// its ghost entries are already valid.
	for _, i := range d.mine {
		var s float64
		for e := k.RowPtr[i]; e < k.RowPtr[i+1]; e++ {
			s += k.Val[e] * phi[k.ColIdx[e]]
		}
		r[i] = b[i] - s
	}
	for _, i := range d.mine {
		z[i] = d.invDiag[i] * r[i]
		p[i] = z[i]
	}
	// One fused 3-element allreduce seeds |b|^2, |r|^2 and r.z together.
	d.red[0] = dotAt(d.mine, b, b)
	d.red[1] = dotAt(d.mine, r, r)
	d.red[2] = dotAt(d.mine, r, z)
	sums := comm.AllreduceFloat64(d.red[:3], simmpi.OpSum)
	bnorm := math.Sqrt(sums[0])
	if bnorm == 0 {
		for i := range phi {
			phi[i] = 0
		}
		return sparse.SolveResult{Converged: true}, nil
	}
	rr, rz := sums[1], sums[2]
	d.spread(comm, p)
	it := 0
	for ; it < opts.MaxIter; it++ {
		res := math.Sqrt(rr) / bnorm
		if res <= opts.Tol {
			d.assemble(comm, phi)
			return sparse.SolveResult{Iterations: it, Residual: res, Converged: true}, nil
		}
		for _, i := range d.mine {
			var s float64
			for e := k.RowPtr[i]; e < k.RowPtr[i+1]; e++ {
				s += k.Val[e] * p[k.ColIdx[e]]
			}
			ap[i] = s
		}
		d.red[0] = dotAt(d.mine, p, ap)
		pap := comm.AllreduceFloat64(d.red[:1], simmpi.OpSum)[0]
		if pap <= 0 {
			// pap is an allreduce result, bitwise identical on every rank,
			// so all ranks take this exit together.
			return sparse.SolveResult{Iterations: it, Residual: res},
				fmt.Errorf("pic: distributed CG breakdown (pAp=%g)", pap)
		}
		alpha := rz / pap
		for _, i := range d.mine {
			phi[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
			z[i] = d.invDiag[i] * r[i]
		}
		// The per-iteration |r|^2 and r.z reductions ride one fused
		// 2-element allreduce: two allreduces per iteration total instead
		// of the former three.
		d.red[0] = dotAt(d.mine, r, r)
		d.red[1] = dotAt(d.mine, r, z)
		sums := comm.AllreduceFloat64(d.red[:2], simmpi.OpSum)
		rr = sums[0]
		rzNew := sums[1]
		beta := rzNew / rz
		rz = rzNew
		for _, i := range d.mine {
			p[i] = z[i] + beta*p[i]
		}
		d.spread(comm, p)
	}
	res := math.Sqrt(rr) / bnorm
	d.assemble(comm, phi)
	return sparse.SolveResult{Iterations: it, Residual: res}, nil
}
