package pic

import (
	"fmt"
	"math"

	"github.com/plasma-hpc/dsmcpic/internal/mesh"
	"github.com/plasma-hpc/dsmcpic/internal/simmpi"
	"github.com/plasma-hpc/dsmcpic/internal/sparse"
)

// NodeOwners assigns each fine-grid node to the rank owning the
// lowest-indexed fine cell touching it, where fine-cell ownership follows
// the coarse-cell partition (paper §IV-A: only the coarse grid is
// decomposed; fine cells and nodes inherit). Every rank computes the same
// assignment deterministically.
func NodeOwners(ref *mesh.Refinement, coarseOwner []int32) []int32 {
	owners := make([]int32, ref.Fine.NumNodes())
	for i := range owners {
		owners[i] = -1
	}
	for fc := range ref.Fine.Cells {
		rank := coarseOwner[ref.CoarseOf(fc)]
		for _, n := range ref.Fine.Cells[fc] {
			if owners[n] == -1 {
				owners[n] = rank
			}
		}
	}
	return owners
}

// DistSolver runs the Poisson solve with the communication structure of a
// row-distributed parallel Krylov solver (the paper's PETSc KSP usage,
// §IV-C): each rank computes only the matrix rows of the nodes it owns;
// the search direction is re-assembled with an allgather every iteration
// and inner products are allreduced. The per-iteration traffic is O(nodes),
// independent of the rank count — reproducing the Poisson_Solve scalability
// wall of paper Table IV.
type DistSolver struct {
	P           *Poisson
	Owner       []int32
	ownedByRank [][]int32
	mine        []int32
	invDiag     []float64
	fullBuf     []float64 // rank-0 scratch for vector assembly
}

// NewDistSolver prepares ownership tables for a world of nRanks. rank is
// this rank's id.
func NewDistSolver(p *Poisson, owner []int32, nRanks, rank int) (*DistSolver, error) {
	if len(owner) != p.Fine.NumNodes() {
		return nil, fmt.Errorf("pic: owner table has %d entries for %d nodes", len(owner), p.Fine.NumNodes())
	}
	d := &DistSolver{P: p, Owner: owner, ownedByRank: make([][]int32, nRanks)}
	for n, r := range owner {
		if r < 0 || int(r) >= nRanks {
			return nil, fmt.Errorf("pic: node %d owned by invalid rank %d", n, r)
		}
		d.ownedByRank[r] = append(d.ownedByRank[r], int32(n))
	}
	d.mine = d.ownedByRank[rank]
	diag := p.K.Diag()
	d.invDiag = make([]float64, len(diag))
	for i, x := range diag {
		if x != 0 {
			d.invDiag[i] = 1 / x
		} else {
			d.invDiag[i] = 1
		}
	}
	return d, nil
}

// OwnedNodes returns the node ids this rank owns (do not modify).
func (d *DistSolver) OwnedNodes() []int32 { return d.mine }

// dotOwned computes the global inner product of a and b, each rank
// contributing its owned entries, via allreduce.
func (d *DistSolver) dotOwned(comm *simmpi.Comm, a, b []float64) float64 {
	var local float64
	for _, i := range d.mine {
		local += a[i] * b[i]
	}
	return comm.AllreduceFloat64([]float64{local}, simmpi.OpSum)[0]
}

// exchange re-assembles the full vector from per-rank owned segments:
// gather the owned values at rank 0, which assembles and broadcasts the
// full vector. The per-iteration traffic is O(nodes) regardless of rank
// count — the communication-to-computation property behind the paper's
// Poisson scalability wall.
func (d *DistSolver) exchange(comm *simmpi.Comm, vec []float64) {
	scratch := make([]float64, len(d.mine))
	for k, i := range d.mine {
		scratch[k] = vec[i]
	}
	parts := comm.Gatherv(0, simmpi.EncodeFloat64s(scratch))
	var blob []byte
	if comm.Rank() == 0 {
		if d.fullBuf == nil {
			d.fullBuf = make([]float64, len(vec))
		}
		for r, ids := range d.ownedByRank {
			vals := simmpi.DecodeFloat64s(parts[r])
			for k, i := range ids {
				d.fullBuf[i] = vals[k]
			}
		}
		blob = simmpi.EncodeFloat64s(d.fullBuf)
	}
	blob = comm.Bcast(0, blob)
	simmpi.DecodeFloat64sInto(vec, blob)
}

// Solve reduces the per-rank nodal charge contributions, builds the RHS,
// and runs the distributed preconditioned CG. phi (full length) is the
// initial guess and is overwritten with the replicated solution on every
// rank. All ranks must call Solve collectively.
func (d *DistSolver) Solve(comm *simmpi.Comm, nodeChargeLocal, phi []float64, opts sparse.SolveOptions) (sparse.SolveResult, error) {
	n := d.P.Fine.NumNodes()
	if len(nodeChargeLocal) != n || len(phi) != n {
		return sparse.SolveResult{}, fmt.Errorf("pic: Solve dimension mismatch")
	}
	if opts.MaxIter <= 0 {
		opts.MaxIter = 10 * n
		if opts.MaxIter < 100 {
			opts.MaxIter = 100
		}
	}
	if opts.Tol <= 0 {
		opts.Tol = 1e-8
	}
	// Reduction summation of nodal charge (paper §IV-C): interior nodes
	// have one owner's contribution, boundary-of-partition nodes sum over
	// neighbors; a full-vector allreduce covers both.
	charge := comm.AllreduceFloat64(nodeChargeLocal, simmpi.OpSum)
	b := d.P.RHS(charge)

	k := d.P.K
	r := make([]float64, n)
	z := make([]float64, n)
	p := make([]float64, n)
	ap := make([]float64, n)

	// r = b - K x on owned rows; p needs the full start vector, which phi
	// already is (replicated guess).
	for _, i := range d.mine {
		var s float64
		for e := k.RowPtr[i]; e < k.RowPtr[i+1]; e++ {
			s += k.Val[e] * phi[k.ColIdx[e]]
		}
		r[i] = b[i] - s
	}
	bnorm := math.Sqrt(d.dotOwned(comm, b, b))
	if bnorm == 0 {
		for i := range phi {
			phi[i] = 0
		}
		return sparse.SolveResult{Converged: true}, nil
	}
	for _, i := range d.mine {
		z[i] = d.invDiag[i] * r[i]
		p[i] = z[i]
	}
	d.exchange(comm, p)
	rz := d.dotOwned(comm, r, z)
	it := 0
	for ; it < opts.MaxIter; it++ {
		res := math.Sqrt(d.dotOwned(comm, r, r)) / bnorm
		if res <= opts.Tol {
			d.exchange(comm, phi)
			return sparse.SolveResult{Iterations: it, Residual: res, Converged: true}, nil
		}
		for _, i := range d.mine {
			var s float64
			for e := k.RowPtr[i]; e < k.RowPtr[i+1]; e++ {
				s += k.Val[e] * p[k.ColIdx[e]]
			}
			ap[i] = s
		}
		pap := d.dotOwned(comm, p, ap)
		if pap <= 0 {
			return sparse.SolveResult{Iterations: it, Residual: res},
				fmt.Errorf("pic: distributed CG breakdown (pAp=%g)", pap)
		}
		alpha := rz / pap
		for _, i := range d.mine {
			phi[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
			z[i] = d.invDiag[i] * r[i]
		}
		rzNew := d.dotOwned(comm, r, z)
		beta := rzNew / rz
		rz = rzNew
		for _, i := range d.mine {
			p[i] = z[i] + beta*p[i]
		}
		d.exchange(comm, p)
	}
	res := math.Sqrt(d.dotOwned(comm, r, r)) / bnorm
	d.exchange(comm, phi)
	return sparse.SolveResult{Iterations: it, Residual: res}, nil
}
