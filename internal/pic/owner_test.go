package pic

import (
	"fmt"
	"math"
	"testing"

	"github.com/plasma-hpc/dsmcpic/internal/mesh"
	"github.com/plasma-hpc/dsmcpic/internal/rng"
	"github.com/plasma-hpc/dsmcpic/internal/simmpi"
	"github.com/plasma-hpc/dsmcpic/internal/sparse"
)

// depositSplit splits a global nodal charge vector into per-rank local
// contributions with the support DepositCharge actually produces: a rank
// contributes only at nodes of its owned fine cells, and every node's
// shares sum to its global charge (split evenly over the touching ranks).
// The owner-local boundary reduction relies on this support; the legacy
// allreduce sums any split, so one split serves all modes.
func depositSplit(ref *mesh.Refinement, charge []float64, fineOwners []int32, nRanks int) [][]float64 {
	touches := make([][]bool, nRanks)
	for r := range touches {
		touches[r] = make([]bool, len(charge))
	}
	nTouch := make([]float64, len(charge))
	for fc := range ref.Fine.Cells {
		r := fineOwners[fc]
		for _, n := range ref.Fine.Cells[fc] {
			if !touches[r][n] {
				touches[r][n] = true
				nTouch[n]++
			}
		}
	}
	out := make([][]float64, nRanks)
	for r := 0; r < nRanks; r++ {
		out[r] = make([]float64, len(charge))
		for n := range charge {
			if touches[r][n] {
				out[r][n] = charge[n] / nTouch[n]
			}
		}
	}
	return out
}

// newTestSolver constructs the solver for any mode (owner-local needs the
// fine-cell owner table the legacy constructor does not take).
func newTestSolver(p *Poisson, owners, fineOwners []int32, nRanks, rank int, mode ExchangeMode) (*DistSolver, error) {
	if mode == ExchangeOwnerLocal {
		return NewDistSolverOwnerLocal(p, owners, fineOwners, nRanks, rank)
	}
	return NewDistSolver(p, owners, nRanks, rank, mode)
}

// blockPartition assigns coarse cells to nRanks contiguous blocks.
func blockPartition(ref *mesh.Refinement, nRanks int) []int32 {
	coarseOwner := make([]int32, ref.Coarse.NumCells())
	for c := range coarseOwner {
		coarseOwner[c] = int32(c * nRanks / len(coarseOwner))
	}
	return coarseOwner
}

// TestOwnerLocalPropertyAcrossRanks checks the ownership/index-list
// invariants of the owner-local solver on the plume partition at 1, 2, 4
// and 8 ranks: every global node is owned exactly once; the local⇄global
// map round-trips over owned and ghost ids; the charge pairing agrees
// across every rank pair (A ships to B exactly what B expects from A, in
// the same order); and the pairing is complete — every (node, touching
// non-owner rank) combination appears in exactly the right lists.
func TestOwnerLocalPropertyAcrossRanks(t *testing.T) {
	ref := plumeRefinement(t)
	p, err := NewPoisson(ref.Fine, DefaultBC())
	if err != nil {
		t.Fatal(err)
	}
	nNodes := ref.Fine.NumNodes()
	for _, nRanks := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("ranks=%d", nRanks), func(t *testing.T) {
			coarseOwner := blockPartition(ref, nRanks)
			owners := NodeOwners(ref, coarseOwner)
			fineOwners := FineCellOwners(ref, coarseOwner)
			solvers := make([]*DistSolver, nRanks)
			for rk := range solvers {
				if solvers[rk], err = NewDistSolverOwnerLocal(p, owners, fineOwners, nRanks, rk); err != nil {
					t.Fatal(err)
				}
			}

			// Exactly-once ownership.
			seen := make([]int, nNodes)
			for rk := range solvers {
				for _, n := range solvers[rk].OwnedNodes() {
					seen[n]++
				}
			}
			for n, c := range seen {
				if c != 1 {
					t.Fatalf("node %d owned %d times", n, c)
				}
			}

			// local⇄global round-trip, owned prefix matching OwnedNodes.
			for rk := range solvers {
				l := solvers[rk].Local()
				mine := solvers[rk].OwnedNodes()
				if l.NumOwned() != len(mine) {
					t.Fatalf("rank %d: local view has %d owned rows for %d owned nodes", rk, l.NumOwned(), len(mine))
				}
				for li := 0; li < l.NumOwned()+l.NumGhost(); li++ {
					g := l.LocalToGlobal(int32(li))
					if back := l.LocalOf(g); back != int32(li) {
						t.Fatalf("rank %d: local %d -> global %d -> local %d", rk, li, g, back)
					}
					if li < l.NumOwned() && g != mine[li] {
						t.Fatalf("rank %d: owned prefix slot %d holds %d, want %d", rk, li, g, mine[li])
					}
				}
			}

			// Per-rank touched sets from fine-cell ownership.
			touched := make([][]bool, nRanks)
			for r := range touched {
				touched[r] = make([]bool, nNodes)
			}
			for fc := range ref.Fine.Cells {
				for _, n := range ref.Fine.Cells[fc] {
					touched[fineOwners[fc]][n] = true
				}
			}

			// Pairwise agreement and membership.
			inSend := make([]map[int32]bool, nRanks) // per sender: nodes it ships anywhere
			for a := 0; a < nRanks; a++ {
				inSend[a] = map[int32]bool{}
				for bk := 0; bk < nRanks; bk++ {
					if a == bk {
						continue
					}
					send := solvers[a].ChargeSendNodes(bk)
					recv := solvers[bk].ChargeRecvNodes(a)
					if len(send) != len(recv) {
						t.Fatalf("rank %d ships %d charge nodes to %d, which expects %d", a, len(send), bk, len(recv))
					}
					for i := range send {
						if send[i] != recv[i] {
							t.Fatalf("charge pair (%d,%d) disagrees at slot %d: %d vs %d", a, bk, i, send[i], recv[i])
						}
						n := send[i]
						if owners[n] != int32(bk) {
							t.Fatalf("rank %d ships node %d to %d, but it is owned by %d", a, n, bk, owners[n])
						}
						if !touched[a][n] {
							t.Fatalf("rank %d ships node %d it never deposits into", a, n)
						}
						inSend[a][n] = true
					}
				}
			}
			// Completeness: every touching non-owner contributes.
			for a := 0; a < nRanks; a++ {
				for n := int32(0); n < int32(nNodes); n++ {
					if touched[a][n] && owners[n] != int32(a) && !inSend[a][n] {
						t.Fatalf("rank %d touches node %d (owner %d) but never ships its contribution", a, n, owners[n])
					}
				}
			}
		})
	}
}

// TestOwnerLocalEquivalenceAndTraffic pins the tentpole numbers: at 1, 2
// and 4 ranks the owner-local solver converges to the halo potential
// within 1e-8, and at 4 ranks its once-per-solve charge + assembly traffic
// is at least 4x below the legacy full-vector collectives (measured by
// running the very collectives the legacy path uses, under dedicated
// phase labels).
func TestOwnerLocalEquivalenceAndTraffic(t *testing.T) {
	ref := plumeRefinement(t)
	p, err := NewPoisson(ref.Fine, DefaultBC())
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(7, 0)
	charge := make([]float64, ref.Fine.NumNodes())
	for n := range charge {
		if !p.IsDirichlet[n] {
			charge[n] = 1e-13 * r.Float64()
		}
	}
	for _, nRanks := range []int{1, 2, 4} {
		coarseOwner := blockPartition(ref, nRanks)
		owners := NodeOwners(ref, coarseOwner)
		fineOwners := FineCellOwners(ref, coarseOwner)
		split := depositSplit(ref, charge, fineOwners, nRanks)

		solve := func(mode ExchangeMode) ([]float64, simmpi.PhaseStats, simmpi.PhaseStats) {
			t.Helper()
			world := simmpi.NewWorld(nRanks, simmpi.Options{})
			var phi0 []float64
			err := world.Run(func(comm *simmpi.Comm) {
				ds, err := newTestSolver(p, owners, fineOwners, nRanks, comm.Rank(), mode)
				if err != nil {
					panic(err)
				}
				comm.SetPhase("Poisson_Solve")
				phi := make([]float64, len(charge))
				res, err := ds.Solve(comm, split[comm.Rank()], phi, sparse.SolveOptions{Tol: 1e-10})
				if err != nil {
					panic(err)
				}
				if !res.Converged {
					panic("CG did not converge")
				}
				// Replicate under a separate label: the on-demand gather is
				// diagnostics traffic, not part of the per-solve budget.
				comm.SetPhase("Gather")
				ds.GatherPhi(comm, phi)
				if comm.Rank() == 0 {
					phi0 = phi
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			chg, _ := simmpi.AggregatePhase(world.Counters(), PhasePoissonCharge)
			asm, _ := simmpi.AggregatePhase(world.Counters(), PhasePoissonAssemble)
			return phi0, chg, asm
		}

		phiHalo, chgHalo, asmHalo := solve(ExchangeHalo)
		phiOwner, chgOwner, asmOwner := solve(ExchangeOwnerLocal)
		if chgHalo.Bytes != 0 || asmHalo.Bytes != 0 {
			t.Fatalf("ranks=%d: legacy halo produced owner-mode sub-phase traffic (%d/%d bytes)",
				nRanks, chgHalo.Bytes, asmHalo.Bytes)
		}
		scale := 0.0
		for _, v := range phiHalo {
			scale = math.Max(scale, math.Abs(v))
		}
		for n := range phiHalo {
			if math.Abs(phiOwner[n]-phiHalo[n]) > 1e-8*scale+1e-18 {
				t.Fatalf("ranks=%d node %d: owner %v vs halo %v", nRanks, n, phiOwner[n], phiHalo[n])
			}
		}
		if nRanks == 1 {
			if chgOwner.Messages != 0 || asmOwner.Messages != 0 {
				t.Errorf("single rank sent charge/assembly messages: %d/%d", chgOwner.Messages, asmOwner.Messages)
			}
			continue
		}

		// Legacy once-per-solve cost, measured by running the exact
		// collectives the legacy path uses for charge reduction
		// (full-vector allreduce) and phi assembly (owned-segment
		// allgatherv) under dedicated labels.
		ownedCount := make([]int, nRanks)
		for _, o := range owners {
			ownedCount[o]++
		}
		world := simmpi.NewWorld(nRanks, simmpi.Options{})
		if err := world.Run(func(comm *simmpi.Comm) {
			comm.SetPhase("BaselineCharge")
			comm.AllreduceFloat64(split[comm.Rank()], simmpi.OpSum)
			comm.SetPhase("BaselineAssemble")
			comm.Allgatherv(make([]byte, 8*ownedCount[comm.Rank()]))
		}); err != nil {
			t.Fatal(err)
		}
		baseChg, _ := simmpi.AggregatePhase(world.Counters(), "BaselineCharge")
		baseAsm, _ := simmpi.AggregatePhase(world.Counters(), "BaselineAssemble")

		ownerBytes := chgOwner.Bytes + asmOwner.Bytes
		baseBytes := baseChg.Bytes + baseAsm.Bytes
		t.Logf("ranks=%d: owner charge+assembly %d bytes, legacy collectives %d bytes (%.1fx)",
			nRanks, ownerBytes, baseBytes, float64(baseBytes)/float64(ownerBytes))
		if ownerBytes == 0 {
			t.Fatalf("ranks=%d: owner mode sent no boundary traffic", nRanks)
		}
		if nRanks == 4 && ownerBytes*4 > baseBytes {
			t.Errorf("ranks=4: owner once-per-solve bytes %d not >=4x below legacy %d", ownerBytes, baseBytes)
		}
	}
}

// TestOwnerLocalResidentStateScaling pins the memory half of the tentpole
// on the 4-rank plume partition: per-rank resident matrix+vector bytes in
// owner-local mode are O(nodes/P + ghosts) — at least 2x below the
// replicated O(nodes) state of the halo solver on every rank — and the
// ownership rows sum to the full mesh.
func TestOwnerLocalResidentStateScaling(t *testing.T) {
	ref := plumeRefinement(t)
	p, err := NewPoisson(ref.Fine, DefaultBC())
	if err != nil {
		t.Fatal(err)
	}
	const nRanks = 4
	coarseOwner := blockPartition(ref, nRanks)
	owners := NodeOwners(ref, coarseOwner)
	fineOwners := FineCellOwners(ref, coarseOwner)
	sumOwned := 0
	for rk := 0; rk < nRanks; rk++ {
		halo, err := NewDistSolver(p, owners, nRanks, rk, ExchangeHalo)
		if err != nil {
			t.Fatal(err)
		}
		owner, err := NewDistSolverOwnerLocal(p, owners, fineOwners, nRanks, rk)
		if err != nil {
			t.Fatal(err)
		}
		hs, os := halo.ResidentState(), owner.ResidentState()
		sumOwned += os.OwnedRows
		if os.OwnedRows != hs.OwnedRows {
			t.Fatalf("rank %d: owned-row counts disagree (%d vs %d)", rk, os.OwnedRows, hs.OwnedRows)
		}
		if os.GhostCols <= 0 {
			t.Fatalf("rank %d: no ghost columns on a 4-rank partition", rk)
		}
		if os.MatrixBytes <= 0 || os.VectorBytes <= 0 || os.IndexMapBytes <= 0 {
			t.Fatalf("rank %d: non-positive resident gauge: %+v", rk, os)
		}
		ownerMV := os.MatrixBytes + os.VectorBytes
		haloMV := hs.MatrixBytes + hs.VectorBytes
		t.Logf("rank %d: owner %d B matrix+vector (%d owned + %d ghosts), halo %d B",
			rk, ownerMV, os.OwnedRows, os.GhostCols, haloMV)
		if ownerMV*2 > haloMV {
			t.Errorf("rank %d: owner resident %d B not >=2x below replicated %d B", rk, ownerMV, haloMV)
		}
	}
	if sumOwned != ref.Fine.NumNodes() {
		t.Fatalf("owned rows sum to %d, want %d", sumOwned, ref.Fine.NumNodes())
	}
}

// TestOwnerLocalZeroChargeAndGather exercises the degenerate zero-RHS path
// (grounded boundary, no charge): owner-local mode must converge
// immediately, publish zeros to its consumers, and GatherPhi must
// replicate the full (zero) vector even for nodes outside any consumer
// set — starting from a phi deliberately poisoned with stale values.
func TestOwnerLocalZeroChargeAndGather(t *testing.T) {
	ref := plumeRefinement(t)
	p, err := NewPoisson(ref.Fine, DefaultBC())
	if err != nil {
		t.Fatal(err)
	}
	const nRanks = 4
	coarseOwner := blockPartition(ref, nRanks)
	owners := NodeOwners(ref, coarseOwner)
	fineOwners := FineCellOwners(ref, coarseOwner)
	world := simmpi.NewWorld(nRanks, simmpi.Options{})
	err = world.Run(func(comm *simmpi.Comm) {
		ds, err := NewDistSolverOwnerLocal(p, owners, fineOwners, nRanks, comm.Rank())
		if err != nil {
			panic(err)
		}
		phi := make([]float64, ref.Fine.NumNodes())
		for n := range phi {
			phi[n] = 1e6 // stale garbage the solve must overwrite
		}
		res, err := ds.Solve(comm, make([]float64, len(phi)), phi, sparse.SolveOptions{})
		if err != nil {
			panic(err)
		}
		if !res.Converged {
			panic("zero-RHS solve did not converge")
		}
		ds.GatherPhi(comm, phi)
		for n := range phi {
			if phi[n] != 0 {
				panic(fmt.Sprintf("rank %d: phi[%d] = %v after zero-RHS solve + gather", comm.Rank(), n, phi[n]))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
