package pic

import (
	"bytes"
	"math"
	"testing"

	"github.com/plasma-hpc/dsmcpic/internal/geom"
	"github.com/plasma-hpc/dsmcpic/internal/mesh"
	"github.com/plasma-hpc/dsmcpic/internal/parallel"
	"github.com/plasma-hpc/dsmcpic/internal/particle"
	"github.com/plasma-hpc/dsmcpic/internal/rng"
)

// TestDepositConservesChargeWithClipping is the regression for the
// barycentric-clipping bug: particles sitting exactly on (or jittered a
// hair across) fine-cell faces get a slightly negative barycentric weight
// from floating-point roundoff; clipping it to zero without renormalizing
// silently deleted that fraction of the particle's charge. After the fix
// every located particle deposits exactly its full charge.
func TestDepositConservesChargeWithClipping(t *testing.T) {
	ref := boxRefinement(t, 2)
	st := particle.NewStore(0)
	r := rng.New(89, 0)
	// Boundary stress: particles exactly at fine-grid node positions and
	// on fine-face centroids (barycentric weights 0 up to jitter), plus a
	// jittered band straddling faces.
	located := 0
	add := func(pos geom.Vec3) {
		p := chargedAt(ref, pos)
		if p.Cell < 0 {
			return
		}
		if ref.FindFineCell(int(p.Cell), pos) >= 0 {
			st.Append(p)
			located++
		}
	}
	for fc := 0; fc < ref.Fine.NumCells() && st.Len() < 600; fc++ {
		cell := ref.Fine.Cells[fc]
		// Vertex hit: three weights are exactly 0 (or -epsilon).
		add(ref.Fine.Nodes[cell[0]])
		// Face centroid: one weight exactly 0 (or -epsilon).
		a, b, c := ref.Fine.Nodes[cell[1]], ref.Fine.Nodes[cell[2]], ref.Fine.Nodes[cell[3]]
		add(a.Add(b).Add(c).Scale(1.0 / 3.0))
		// Jitter across the face plane by ~1e-13: weights dip negative.
		centroid := ref.Fine.Centroids[fc]
		mid := a.Add(b).Add(c).Scale(1.0 / 3.0)
		out := mid.Sub(centroid).Normalize()
		add(mid.Add(out.Scale(1e-13 * (r.Float64() - 0.5))))
	}
	if located < 100 {
		t.Fatalf("only %d boundary particles located; fixture too weak", located)
	}
	const weight = 3.0
	nodeCharge := make([]float64, ref.Fine.NumNodes())
	DepositCharge(st, ref, func(particle.Species) float64 { return weight }, nodeCharge, nil, nil, nil)
	want := float64(located) * weight * particle.ElectronCharge
	got := TotalCharge(nodeCharge)
	if math.Abs(got-want) > 1e-12*math.Abs(want) {
		t.Errorf("total charge %v, want %v (rel err %.2e): clipped weights not renormalized",
			got, want, math.Abs(got-want)/math.Abs(want))
	}
}

// depositFixture builds a store of mixed charged/neutral particles spread
// through the refined box.
func depositFixture(t testing.TB, ref *mesh.Refinement, n int, seed uint64) *particle.Store {
	t.Helper()
	r := rng.New(seed, 0)
	st := particle.NewStore(n)
	for st.Len() < n {
		p := chargedAt(ref, geom.V(r.Float64(), r.Float64(), r.Float64()))
		if p.Cell < 0 {
			continue
		}
		if st.Len()%3 == 0 {
			p.Sp = particle.H // neutrals must not deposit
		}
		vx, vy, vz := r.Maxwell(300, particle.HydrogenMass, 0, 0, 0)
		p.Vel = geom.V(vx, vy, vz)
		st.Append(p)
	}
	return st
}

// TestDepositWorkersReplay: at workers=4 the keyed reduction fixes the
// float summation order, so two runs are bitwise identical; fineCell is a
// pure function of position and must match the serial sweep exactly; and
// the total charge matches serial to summation roundoff.
func TestDepositWorkersReplay(t *testing.T) {
	ref := boxRefinement(t, 2)
	weight := func(particle.Species) float64 { return 2.5 }
	run := func(pool *parallel.Pool, sc *DepositScratch) ([]float64, []int32) {
		st := depositFixture(t, ref, 900, 97)
		nodeCharge := make([]float64, ref.Fine.NumNodes())
		fineCell := make([]int32, st.Len())
		DepositCharge(st, ref, weight, nodeCharge, fineCell, pool, sc)
		return nodeCharge, fineCell
	}
	serialQ, serialFC := run(nil, nil)
	var sc DepositScratch
	pool := parallel.New(4)
	q1, fc1 := run(pool, &sc)
	q2, fc2 := run(pool, &sc) // reused scratch must not leak state
	for i := range q1 {
		//commvet:ignore floatcompare bitwise replay assertion: the keyed reduction contract IS exact bit equality
		if q1[i] != q2[i] {
			t.Fatalf("node %d: workers=4 replay differs bitwise (%v vs %v)", i, q1[i], q2[i])
		}
	}
	for i := range fc1 {
		if fc1[i] != fc2[i] || fc1[i] != serialFC[i] {
			t.Fatalf("particle %d: fineCell %d/%d, serial %d", i, fc1[i], fc2[i], serialFC[i])
		}
	}
	ts, tp := TotalCharge(serialQ), TotalCharge(q1)
	if math.Abs(ts-tp) > 1e-9*math.Abs(ts) {
		t.Errorf("workers=4 total charge %v, serial %v", tp, ts)
	}
	// Per-node agreement up to summation order.
	for i := range serialQ {
		if math.Abs(serialQ[i]-q1[i]) > 1e-9*math.Abs(serialQ[i])+1e-30 {
			t.Fatalf("node %d: serial %v, workers=4 %v", i, serialQ[i], q1[i])
		}
	}
}

// TestBorisPushWorkersBitwise: the pusher draws no random numbers and
// writes disjoint velocity rows, so every worker count must produce
// bit-identical velocities.
func TestBorisPushWorkersBitwise(t *testing.T) {
	ref := boxRefinement(t, 2)
	e := make([]geom.Vec3, ref.Fine.NumCells())
	r := rng.New(101, 0)
	for i := range e {
		e[i] = geom.V(1e3*(r.Float64()-0.5), 1e3*(r.Float64()-0.5), 1e3*(r.Float64()-0.5))
	}
	b := geom.V(0.01, 0.02, -0.015)
	run := func(pool *parallel.Pool) []byte {
		st := depositFixture(t, ref, 700, 103)
		fineCell := make([]int32, st.Len())
		DepositCharge(st, ref, func(particle.Species) float64 { return 1 }, make([]float64, ref.Fine.NumNodes()), fineCell, nil, nil)
		for step := 0; step < 3; step++ {
			BorisPush(st, e, fineCell, b, 1e-8, pool)
		}
		return st.EncodeAll()
	}
	serial := run(nil)
	for _, workers := range []int{1, 2, 4, 5} {
		if !bytes.Equal(serial, run(parallel.New(workers))) {
			t.Errorf("workers=%d BorisPush differs bitwise from serial", workers)
		}
	}
}
