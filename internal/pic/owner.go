package pic

import (
	"fmt"
	"math"

	"github.com/plasma-hpc/dsmcpic/internal/mesh"
	"github.com/plasma-hpc/dsmcpic/internal/simmpi"
	"github.com/plasma-hpc/dsmcpic/internal/sparse"
)

// Owner-local Poisson (DESIGN.md §6j): the ExchangeOwnerLocal half of
// DistSolver. The CG itself runs on a partition-local view — owned CSR
// rows plus a ghost column layer (sparse.LocalCSR) and owned-length
// vectors — while the two historically O(nodes) once-per-solve collectives
// become boundary-proportional point-to-point exchanges:
//
//   - charge reduction: interior nodes have exactly one contributing rank,
//     so only partition-boundary contributions travel, straight to the
//     nodes' owners (TagChargeBoundary);
//   - phi assembly: converged potential goes only to the ranks whose owned
//     fine cells read it — the deposit/field-gather consumer set
//     (TagPhiConsumer). Full replication survives behind GatherPhi for
//     diagnostics, checkpoints and legacy modes.

// Traffic sub-phase labels for the owner-local once-per-solve exchanges.
// solveOwnerLocal brackets its charge reduction and consumer assembly with
// these (restoring the caller's phase), so benchmarks can attribute the
// boundary-proportional bytes separately from the per-iteration CG
// traffic. Legacy modes never set them, keeping their byte streams
// untouched.
const (
	PhasePoissonCharge   = "Poisson_Charge"
	PhasePoissonAssemble = "Poisson_Assemble"
)

// FineCellOwners expands the coarse-cell partition to fine cells (paper
// §IV-A: only the coarse grid is decomposed; fine cells inherit their
// coarse parent's rank). Every rank computes the same table.
func FineCellOwners(ref *mesh.Refinement, coarseOwner []int32) []int32 {
	out := make([]int32, ref.Fine.NumCells())
	for fc := range out {
		out[fc] = coarseOwner[ref.CoarseOf(fc)]
	}
	return out
}

// NewDistSolverOwnerLocal prepares an owner-local solver. nodeOwner is the
// per-node rank table (NodeOwners); fineOwner the per-fine-cell table
// (FineCellOwners) from which the charge/consumer pairing is derived. Both
// tables are replicated, so every pair of ranks derives matching index
// lists without negotiation.
func NewDistSolverOwnerLocal(p *Poisson, nodeOwner, fineOwner []int32, nRanks, rank int) (*DistSolver, error) {
	if len(fineOwner) != p.Fine.NumCells() {
		return nil, fmt.Errorf("pic: fine-owner table has %d entries for %d cells", len(fineOwner), p.Fine.NumCells())
	}
	for c, r := range fineOwner {
		if r < 0 || int(r) >= nRanks {
			return nil, fmt.Errorf("pic: fine cell %d owned by invalid rank %d", c, r)
		}
	}
	d, err := newDistBase(p, nodeOwner, nRanks, rank, ExchangeOwnerLocal)
	if err != nil {
		return nil, err
	}
	d.buildHalo(nRanks, rank)
	if err := d.buildOwnerLocal(fineOwner, nRanks, rank); err != nil {
		return nil, err
	}
	d.encBuf = make([]byte, 8*len(d.mine)) // GatherPhi owned-segment encode
	return d, nil
}

// buildOwnerLocal extracts the partition-local CSR view, translates the
// halo lists into local ids, and derives the charge/consumer pairing from
// fine-cell ownership.
func (d *DistSolver) buildOwnerLocal(fineOwner []int32, nRanks, rank int) error {
	var err error
	d.local, err = sparse.NewLocalCSR(d.P.K, d.mine)
	if err != nil {
		return err
	}
	diag := d.local.DiagOwned()
	d.invDiagL = make([]float64, len(diag))
	for i, x := range diag {
		if x != 0 {
			d.invDiagL[i] = 1 / x
		} else {
			d.invDiagL[i] = 1
		}
	}
	// Halo lists in local ids: send entries are owned nodes, recv entries
	// are CSR ghost columns, so every translation must resolve.
	d.sendIdxL = make([][]int32, nRanks)
	d.recvIdxL = make([][]int32, nRanks)
	for q := 0; q < nRanks; q++ {
		if d.sendIdxL[q], err = localIds(d.local, d.sendIdx[q]); err != nil {
			return fmt.Errorf("pic: halo send list to rank %d: %w", q, err)
		}
		if d.recvIdxL[q], err = localIds(d.local, d.recvIdx[q]); err != nil {
			return fmt.Errorf("pic: halo recv list from rank %d: %w", q, err)
		}
	}

	// Charge/consumer pairing. My consumer set is the nodes of my owned
	// fine cells — exactly where DepositCharge writes and the field
	// gather reads. One replicated pass over all fine cells gives both
	// directions: rank A's chgSendG[B] and rank B's chgRecvG[A] are the
	// same set ("nodes of A's cells owned by B") computed from the same
	// tables, so the wire pairing agrees by construction.
	me := int32(rank)
	d.chgSendG = make([][]int32, nRanks)
	d.chgRecvG = make([][]int32, nRanks)
	cells := d.P.Fine.Cells
	for fc := range cells {
		fo := fineOwner[fc]
		for _, n := range cells[fc] {
			no := d.Owner[n]
			switch {
			case fo == me && no != me:
				d.chgSendG[no] = append(d.chgSendG[no], n)
			case fo != me && no == me:
				d.chgRecvG[fo] = append(d.chgRecvG[fo], n)
			}
		}
	}
	d.chgRecvL = make([][]int32, nRanks)
	d.chgSendBuf = make([][]byte, nRanks)
	d.phiSendBuf = make([][]byte, nRanks)
	for q := 0; q < nRanks; q++ {
		d.chgSendG[q] = sortUnique(d.chgSendG[q])
		d.chgRecvG[q] = sortUnique(d.chgRecvG[q])
		if len(d.chgSendG[q]) > 0 {
			d.chgSendNbr = append(d.chgSendNbr, q)
			d.chgSendBuf[q] = make([]byte, 8*len(d.chgSendG[q]))
		}
		if len(d.chgRecvG[q]) > 0 {
			d.chgRecvNbr = append(d.chgRecvNbr, q)
			d.phiSendBuf[q] = make([]byte, 8*len(d.chgRecvG[q]))
			if d.chgRecvL[q], err = localIds(d.local, d.chgRecvG[q]); err != nil {
				return fmt.Errorf("pic: charge recv list from rank %d: %w", q, err)
			}
		}
	}

	nOwn := d.local.NumOwned()
	tot := nOwn + d.local.NumGhost()
	d.bL = make([]float64, nOwn)
	d.rL = make([]float64, nOwn)
	d.zL = make([]float64, nOwn)
	d.apL = make([]float64, nOwn)
	d.chgL = make([]float64, nOwn)
	d.pL = make([]float64, tot)
	d.xL = make([]float64, tot)
	return nil
}

// localIds translates a global index list through the local CSR's map; a
// node outside the owned+ghost set is a construction bug, not a runtime
// condition, and is reported as an error.
func localIds(l *sparse.LocalCSR, g []int32) ([]int32, error) {
	if len(g) == 0 {
		return nil, nil
	}
	out := make([]int32, len(g))
	for k, gg := range g {
		li := l.LocalOf(gg)
		if li < 0 {
			return nil, fmt.Errorf("global node %d not in the partition-local view", gg)
		}
		out[k] = li
	}
	return out, nil
}

// dotOwned computes sum over the first n entries of a[i]*b[i] — the
// owner-local counterpart of dotAt over the same nodes in the same order.
//
//commvet:hot
func dotOwned(n int, a, b []float64) float64 {
	var s float64
	for i := 0; i < n; i++ {
		s += a[i] * b[i]
	}
	return s
}

// spreadOwnerLocal refreshes the ghost tail of a local vector from the
// owners, with the same deadlock-free two-round schedule as haloExchange
// but index lists in local ids (sends gather from the owned prefix,
// receives scatter into the ghost tail). It reuses the halo send buffers.
//
//commvet:hot
func (d *DistSolver) spreadOwnerLocal(comm *simmpi.Comm, vec []float64) {
	me := comm.Rank()
	// Round 1: low -> high.
	for _, q := range d.sendNbr {
		if q > me {
			d.sendBuf[q] = simmpi.EncodeFloat64sGatherInto(d.sendBuf[q], vec, d.sendIdxL[q])
			comm.Send(q, simmpi.TagPoissonHalo, d.sendBuf[q])
		}
	}
	for _, q := range d.recvNbr {
		if q < me {
			simmpi.DecodeFloat64sScatter(vec, d.recvIdxL[q], comm.Recv(q, simmpi.TagPoissonHalo))
		}
	}
	// Round 2: high -> low.
	for _, q := range d.sendNbr {
		if q < me {
			d.sendBuf[q] = simmpi.EncodeFloat64sGatherInto(d.sendBuf[q], vec, d.sendIdxL[q])
			comm.Send(q, simmpi.TagPoissonHalo, d.sendBuf[q])
		}
	}
	for _, q := range d.recvNbr {
		if q > me {
			simmpi.DecodeFloat64sScatter(vec, d.recvIdxL[q], comm.Recv(q, simmpi.TagPoissonHalo))
		}
	}
}

// reduceChargeBoundary performs the boundary-only charge reduction into
// chgL: the owned prefix is seeded from this rank's own deposits, then
// neighbour contributions at shared partition-boundary nodes are
// scatter-added in ascending-rank order (a fixed, deterministic summation
// order: own contribution first, then contributors by rank). All sends are
// posted before any receive; simmpi sends never block, so the schedule
// cannot deadlock.
func (d *DistSolver) reduceChargeBoundary(comm *simmpi.Comm, nodeChargeLocal []float64) {
	for li, g := range d.mine {
		d.chgL[li] = nodeChargeLocal[g]
	}
	for _, q := range d.chgSendNbr {
		d.chgSendBuf[q] = simmpi.EncodeFloat64sGatherInto(d.chgSendBuf[q], nodeChargeLocal, d.chgSendG[q])
		comm.Send(q, simmpi.TagChargeBoundary, d.chgSendBuf[q])
	}
	for _, q := range d.chgRecvNbr {
		simmpi.DecodeFloat64sScatterAdd(d.chgL, d.chgRecvL[q], comm.Recv(q, simmpi.TagChargeBoundary))
	}
}

// assembleOwnerLocal publishes the converged local solution: owned entries
// of phi directly, then one consumer-targeted exchange delivering each
// boundary value only to the ranks whose owned fine cells read it. Entries
// of phi outside this rank's owned+consumer set are left untouched (use
// GatherPhi before reading phi globally).
func (d *DistSolver) assembleOwnerLocal(comm *simmpi.Comm, phi []float64) {
	for li, g := range d.mine {
		phi[g] = d.xL[li]
	}
	prev := comm.Phase()
	comm.SetPhase(PhasePoissonAssemble)
	for _, q := range d.chgRecvNbr { // ranks whose cells read nodes I own
		d.phiSendBuf[q] = simmpi.EncodeFloat64sGatherInto(d.phiSendBuf[q], d.xL, d.chgRecvL[q])
		comm.Send(q, simmpi.TagPhiConsumer, d.phiSendBuf[q])
	}
	for _, q := range d.chgSendNbr { // owners of my consumer ghosts
		simmpi.DecodeFloat64sScatter(phi, d.chgSendG[q], comm.Recv(q, simmpi.TagPhiConsumer))
	}
	comm.SetPhase(prev)
}

// solveOwnerLocal is Solve in ExchangeOwnerLocal mode. The CG iterates are
// the identical floating-point sequence of the halo path over the same
// owned rows in the same order (LocalCSR preserves per-row entry order and
// owned local ids follow ascending global order), so given the same
// right-hand side the iterates match bitwise; only the boundary-node
// charge summation order differs from the legacy full-vector allreduce,
// which bounds the phi deviation at the 1e-8 level the equivalence tests
// pin.
func (d *DistSolver) solveOwnerLocal(comm *simmpi.Comm, nodeChargeLocal, phi []float64, opts sparse.SolveOptions) (sparse.SolveResult, error) {
	nOwn := d.local.NumOwned()
	prev := comm.Phase()
	comm.SetPhase(PhasePoissonCharge)
	d.reduceChargeBoundary(comm, nodeChargeLocal)
	comm.SetPhase(prev)

	// Owned right-hand side (RHSInto restricted to owned rows).
	p := d.P
	for li, g := range d.mine {
		if p.IsDirichlet[g] {
			d.bL[li] = p.DirichletVal[g]
			continue
		}
		v := d.chgL[li] / Epsilon0
		for _, cp := range p.couplings[g] {
			v -= cp.k * p.DirichletVal[cp.node]
		}
		d.bL[li] = v
	}

	// Initial guess: owned entries carry over from the previous solve via
	// phi; the CSR ghost tail (which can exceed the consumer set phi
	// keeps fresh) is refreshed from the owners explicitly.
	for li, g := range d.mine {
		d.xL[li] = phi[g]
	}
	d.spreadOwnerLocal(comm, d.xL)

	// r = b - K x on owned rows.
	d.local.MulVecOwned(d.apL, d.xL)
	for i := 0; i < nOwn; i++ {
		d.rL[i] = d.bL[i] - d.apL[i]
	}
	for i := 0; i < nOwn; i++ {
		d.zL[i] = d.invDiagL[i] * d.rL[i]
		d.pL[i] = d.zL[i]
	}
	d.red[0] = dotOwned(nOwn, d.bL, d.bL)
	d.red[1] = dotOwned(nOwn, d.rL, d.rL)
	d.red[2] = dotOwned(nOwn, d.rL, d.zL)
	sums := comm.AllreduceFloat64(d.red[:3], simmpi.OpSum)
	bnorm := math.Sqrt(sums[0])
	if bnorm == 0 {
		for i := range d.xL {
			d.xL[i] = 0
		}
		d.assembleOwnerLocal(comm, phi)
		return sparse.SolveResult{Converged: true}, nil
	}
	rr, rz := sums[1], sums[2]
	d.spreadOwnerLocal(comm, d.pL)
	it := 0
	for ; it < opts.MaxIter; it++ {
		res := math.Sqrt(rr) / bnorm
		if res <= opts.Tol {
			d.assembleOwnerLocal(comm, phi)
			return sparse.SolveResult{Iterations: it, Residual: res, Converged: true}, nil
		}
		d.local.MulVecOwned(d.apL, d.pL)
		d.red[0] = dotOwned(nOwn, d.pL, d.apL)
		pap := comm.AllreduceFloat64(d.red[:1], simmpi.OpSum)[0]
		if pap <= 0 {
			// pap is an allreduce result, bitwise identical on every rank,
			// so all ranks take this exit together.
			return sparse.SolveResult{Iterations: it, Residual: res},
				fmt.Errorf("pic: distributed CG breakdown (pAp=%g)", pap)
		}
		alpha := rz / pap
		for i := 0; i < nOwn; i++ {
			d.xL[i] += alpha * d.pL[i]
			d.rL[i] -= alpha * d.apL[i]
			d.zL[i] = d.invDiagL[i] * d.rL[i]
		}
		d.red[0] = dotOwned(nOwn, d.rL, d.rL)
		d.red[1] = dotOwned(nOwn, d.rL, d.zL)
		sums := comm.AllreduceFloat64(d.red[:2], simmpi.OpSum)
		rr = sums[0]
		rzNew := sums[1]
		beta := rzNew / rz
		rz = rzNew
		for i := 0; i < nOwn; i++ {
			d.pL[i] = d.zL[i] + beta*d.pL[i]
		}
		d.spreadOwnerLocal(comm, d.pL)
	}
	res := math.Sqrt(rr) / bnorm
	d.assembleOwnerLocal(comm, phi)
	return sparse.SolveResult{Iterations: it, Residual: res}, nil
}

// GatherPhi replicates phi on every rank — the explicit on-demand gather
// behind diagnostics, VTK output and checkpoint capture in owner-local
// mode. Legacy modes keep phi replicated after every Solve, so the call is
// a communication-free no-op there. All ranks must call collectively in
// owner-local mode.
func (d *DistSolver) GatherPhi(comm *simmpi.Comm, phi []float64) {
	if d.Mode != ExchangeOwnerLocal {
		return
	}
	for k, g := range d.mine {
		d.scratch[k] = phi[g]
	}
	d.encBuf = simmpi.EncodeFloat64sInto(d.encBuf, d.scratch)
	parts := comm.Allgatherv(d.encBuf)
	for q, ids := range d.ownedByRank {
		if q == comm.Rank() {
			continue // own entries are already in phi
		}
		simmpi.DecodeFloat64sScatter(phi, ids, parts[q])
	}
}

// ChargeSendNodes returns the global ids of this rank's deposit-touched
// nodes owned by rank q — the charge-out / phi-in pairing list (do not
// modify; nil outside owner-local mode).
func (d *DistSolver) ChargeSendNodes(q int) []int32 {
	if d.chgSendG == nil {
		return nil
	}
	return d.chgSendG[q]
}

// ChargeRecvNodes returns the global ids of this rank's owned nodes that
// rank q's fine cells touch — the charge-in / phi-out pairing list (do not
// modify; nil outside owner-local mode).
func (d *DistSolver) ChargeRecvNodes(q int) []int32 {
	if d.chgRecvG == nil {
		return nil
	}
	return d.chgRecvG[q]
}

// Local returns the partition-local CSR view (nil outside owner-local
// mode).
func (d *DistSolver) Local() *sparse.LocalCSR { return d.local }

// ResidentState is the per-rank resident solver footprint backing the
// metrics gauges and bench schema v5: what this rank keeps in memory for
// the Poisson solve, split into matrix storage, solver vectors and
// local⇄global/index-list maps. In owner-local mode every term is
// O(nodes/P + ghosts); legacy modes report their replicated O(nodes)
// state. (The mesh, ownership tables and the assembly-time global K —
// shared with the rest of the solver and all modes — are outside this
// scope; see DESIGN.md §6j.)
type ResidentState struct {
	OwnedRows     int
	GhostCols     int
	MatrixBytes   int64
	VectorBytes   int64
	IndexMapBytes int64
}

// TotalBytes sums the byte-valued fields.
func (rs ResidentState) TotalBytes() int64 {
	return rs.MatrixBytes + rs.VectorBytes + rs.IndexMapBytes
}

// ResidentState reports this solver's resident footprint (see the type).
func (d *DistSolver) ResidentState() ResidentState {
	st := ResidentState{OwnedRows: len(d.mine)}
	if d.Mode == ExchangeOwnerLocal {
		st.GhostCols = d.local.NumGhost()
		st.MatrixBytes = d.local.MatrixBytes()
		st.VectorBytes = 8 * int64(len(d.bL)+len(d.rL)+len(d.zL)+len(d.apL)+
			len(d.chgL)+len(d.pL)+len(d.xL)+len(d.invDiagL)+len(d.scratch))
		st.IndexMapBytes = d.local.IndexMapBytes() +
			idxListBytes(d.sendIdx) + idxListBytes(d.recvIdx) +
			idxListBytes(d.sendIdxL) + idxListBytes(d.recvIdxL) +
			idxListBytes(d.chgSendG) + idxListBytes(d.chgRecvG) + idxListBytes(d.chgRecvL)
		return st
	}
	k := d.P.K
	st.MatrixBytes = int64(4*len(k.RowPtr) + 4*len(k.ColIdx) + 8*len(k.Val))
	st.VectorBytes = 8 * int64(len(d.b)+len(d.r)+len(d.z)+len(d.p)+len(d.ap)+
		len(d.invDiag)+len(d.scratch)+len(d.fullBuf))
	if d.Mode == ExchangeHalo {
		for _, ids := range d.recvIdx {
			st.GhostCols += len(ids)
		}
		st.IndexMapBytes = idxListBytes(d.sendIdx) + idxListBytes(d.recvIdx)
	} else {
		st.GhostCols = d.P.Fine.NumNodes() - len(d.mine)
	}
	return st
}

// idxListBytes sums the storage of a per-rank index-list table.
func idxListBytes(lists [][]int32) int64 {
	var n int64
	for _, l := range lists {
		n += 4 * int64(len(l))
	}
	return n
}
