package pic

import (
	"github.com/plasma-hpc/dsmcpic/internal/geom"
	"github.com/plasma-hpc/dsmcpic/internal/particle"
)

// BorisPush advances the velocity of every charged particle by dt under the
// electric field E (constant per fine cell, indexed by fineCell from
// DepositCharge) and a uniform magnetic field B (paper §III-C: B = 0 or a
// user constant). The Boris scheme splits the Lorentz force into two half
// electric kicks around a magnetic rotation; it is the standard
// energy-stable PIC pusher. Positions are advanced separately by the
// movement sweep (dsmc.Move with the Charged filter).
//
//commvet:hot
func BorisPush(st *particle.Store, e []geom.Vec3, fineCell []int32, b geom.Vec3, dt float64) {
	hasB := b.Norm2() > 0
	for i := 0; i < st.Len(); i++ {
		sp := st.Sp[i]
		if !sp.IsCharged() {
			continue
		}
		fc := fineCell[i]
		if fc < 0 {
			continue
		}
		info := particle.InfoOf(sp)
		qm := info.Charge / info.Mass
		ef := e[fc]
		// Half electric kick.
		v := st.Vel[i].Add(ef.Scale(qm * dt / 2))
		if hasB {
			// Magnetic rotation: t = qB dt / 2m, s = 2t/(1+t^2).
			t := b.Scale(qm * dt / 2)
			vPrime := v.Add(v.Cross(t))
			s := t.Scale(2 / (1 + t.Norm2()))
			v = v.Add(vPrime.Cross(s))
		}
		// Second half electric kick.
		st.Vel[i] = v.Add(ef.Scale(qm * dt / 2))
	}
}
