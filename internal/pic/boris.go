package pic

import (
	"github.com/plasma-hpc/dsmcpic/internal/geom"
	"github.com/plasma-hpc/dsmcpic/internal/parallel"
	"github.com/plasma-hpc/dsmcpic/internal/particle"
)

// BorisPush advances the velocity of every charged particle by dt under the
// electric field E (constant per fine cell, indexed by fineCell from
// DepositCharge) and a uniform magnetic field B (paper §III-C: B = 0 or a
// user constant). The Boris scheme splits the Lorentz force into two half
// electric kicks around a magnetic rotation; it is the standard
// energy-stable PIC pusher. Positions are advanced separately by the
// movement sweep (dsmc.Move with the Charged filter).
//
// The per-species kick and rotation factors are tabulated once per sweep,
// so the hot loop performs no InfoOf indirections. pool parallelizes the
// sweep over deterministic contiguous chunks of the particle index range;
// the kernel draws no random numbers and every write is disjoint per
// particle index, so the result is bit-identical for every worker count
// (including the legacy serial path).
//
//commvet:hot
func BorisPush(st *particle.Store, e []geom.Vec3, fineCell []int32, b geom.Vec3, dt float64, pool *parallel.Pool) {
	hasB := b.Norm2() > 0
	var charged [particle.NumSpecies]bool
	var half [particle.NumSpecies]float64
	var tTab, sTab [particle.NumSpecies]geom.Vec3
	for sp := particle.Species(0); sp < particle.NumSpecies; sp++ {
		if !sp.IsCharged() {
			continue
		}
		charged[sp] = true
		info := particle.InfoOf(sp)
		qm := info.Charge / info.Mass
		half[sp] = qm * dt / 2
		if hasB {
			// Magnetic rotation: t = qB dt / 2m, s = 2t/(1+t^2).
			t := b.Scale(half[sp])
			tTab[sp] = t
			sTab[sp] = t.Scale(2 / (1 + t.Norm2()))
		}
	}
	// One dispatch closure per sweep (not per particle); chunk bodies write
	// only st.Vel rows by particle index — disjoint across chunks.
	//commvet:ignore hotalloc once-per-sweep dispatch closure, outside the particle loop
	pool.Run(st.Len(), func(chunk, lo, hi int) {
		pushChunk(st, lo, hi, e, fineCell, hasB, &charged, &half, &tTab, &sTab)
	})
}

// pushChunk applies the Boris update to particles [lo, hi).
//
//commvet:hot
func pushChunk(st *particle.Store, lo, hi int, e []geom.Vec3, fineCell []int32, hasB bool, charged *[particle.NumSpecies]bool, half *[particle.NumSpecies]float64, tTab, sTab *[particle.NumSpecies]geom.Vec3) {
	for i := lo; i < hi; i++ {
		sp := st.Sp[i]
		if !charged[sp] {
			continue
		}
		fc := fineCell[i]
		if fc < 0 {
			continue
		}
		h := half[sp]
		ef := e[fc]
		// Half electric kick.
		v := st.Vel[i].Add(ef.Scale(h))
		if hasB {
			vPrime := v.Add(v.Cross(tTab[sp]))
			v = v.Add(vPrime.Cross(sTab[sp]))
		}
		// Second half electric kick.
		st.Vel[i] = v.Add(ef.Scale(h))
	}
}
