// Package pic implements the Particle-in-Cell components of the coupled
// solver (paper §III-C): nodal charge deposition with linear tetrahedral
// shape functions on the fine grid, finite-element assembly of the Poisson
// stiffness matrix K (paper eq. 5), the electric field E = -grad(phi), the
// Boris particle pusher, and a rank-distributed conjugate-gradient solve
// whose per-iteration communication volume is independent of the rank count
// — the property behind the paper's observed Poisson_Solve scalability
// bottleneck (§VII-C3).
package pic

import (
	"fmt"

	"github.com/plasma-hpc/dsmcpic/internal/geom"
	"github.com/plasma-hpc/dsmcpic/internal/mesh"
	"github.com/plasma-hpc/dsmcpic/internal/sparse"
)

// Epsilon0 is the vacuum permittivity in F/m.
const Epsilon0 = 8.8541878128e-12

// BC maps boundary tags to Dirichlet potential values (volts). Nodes on
// faces whose tag is present get their potential pinned. At least one tag
// must be present or the Poisson problem is singular.
type BC map[mesh.BoundaryTag]float64

// DefaultBC grounds walls, inlet and outlet (phi = 0), matching the
// grounded-nozzle case study.
func DefaultBC() BC {
	return BC{mesh.Wall: 0, mesh.Inlet: 0, mesh.Outlet: 0}
}

// Poisson is the assembled finite-element Poisson problem on the fine grid:
// K phi = b with symmetric Dirichlet elimination. K couples only free
// nodes; Dirichlet nodes have identity rows. The couplings of free nodes to
// Dirichlet nodes are folded into the right-hand side at solve time.
type Poisson struct {
	Fine *mesh.Mesh
	K    *sparse.CSR

	// IsDirichlet flags pinned nodes; DirichletVal holds their potential.
	IsDirichlet  []bool
	DirichletVal []float64

	// couplings[i] lists (dirichletNode, kij) pairs for free node i, used
	// to build the RHS correction b_i -= k_ij * phi_j for pinned j.
	couplings [][]coupling
}

type coupling struct {
	node int32
	k    float64
}

// NewPoisson assembles the stiffness matrix of -laplace(phi) = rho/eps0 on
// the fine mesh with the given Dirichlet boundary conditions.
func NewPoisson(fine *mesh.Mesh, bc BC) (*Poisson, error) {
	if len(bc) == 0 {
		return nil, fmt.Errorf("pic: at least one Dirichlet boundary is required")
	}
	n := fine.NumNodes()
	p := &Poisson{
		Fine:         fine,
		IsDirichlet:  make([]bool, n),
		DirichletVal: make([]float64, n),
		couplings:    make([][]coupling, n),
	}
	// Mark Dirichlet nodes: every node of a boundary face whose tag is in bc.
	for c := range fine.Cells {
		for f := 0; f < 4; f++ {
			if fine.Neighbors[c][f] != mesh.NoNeighbor {
				continue
			}
			val, ok := bc[fine.FaceTags[c][f]]
			if !ok {
				continue
			}
			fv := geom.FaceVerts[f]
			for _, lv := range fv {
				node := fine.Cells[c][lv]
				p.IsDirichlet[node] = true
				p.DirichletVal[node] = val
			}
		}
	}
	anyDirichlet := false
	for _, d := range p.IsDirichlet {
		if d {
			anyDirichlet = true
			break
		}
	}
	if !anyDirichlet {
		return nil, fmt.Errorf("pic: no boundary faces matched the BC tags; Poisson problem singular")
	}

	// Element stiffness: Ke[i][j] = grad(Ni) . grad(Nj) * V.
	builder := sparse.NewBuilder(n)
	for c := range fine.Cells {
		tet := fine.Tet(c)
		g := tet.GradShape()
		vol := fine.Volumes[c]
		cell := fine.Cells[c]
		for i := 0; i < 4; i++ {
			ni := cell[i]
			for j := 0; j < 4; j++ {
				nj := cell[j]
				kij := g[i].Dot(g[j]) * vol
				switch {
				case !p.IsDirichlet[ni] && !p.IsDirichlet[nj]:
					builder.Add(int(ni), int(nj), kij)
				case !p.IsDirichlet[ni] && p.IsDirichlet[nj]:
					// Free-to-pinned coupling: moved to the RHS.
					p.couplings[ni] = append(p.couplings[ni], coupling{node: nj, k: kij})
				}
				// Pinned rows are replaced by identity below.
			}
		}
	}
	for i := 0; i < n; i++ {
		if p.IsDirichlet[i] {
			builder.Set(i, i, 1)
		}
	}
	k, err := builder.ToCSR()
	if err != nil {
		return nil, err
	}
	p.K = k
	return p, nil
}

// RHS builds the Poisson right-hand side from the nodal charge vector
// (coulombs per node, from DepositCharge): b_i = q_i / eps0 for free nodes,
// with Dirichlet values and couplings folded in.
func (p *Poisson) RHS(nodeCharge []float64) []float64 {
	b := make([]float64, p.Fine.NumNodes())
	p.RHSInto(nodeCharge, b)
	return b
}

// RHSInto is RHS into a caller-provided buffer of length NumNodes(),
// avoiding the per-solve allocation on the Poisson hot path.
func (p *Poisson) RHSInto(nodeCharge, b []float64) {
	for i := range b {
		if p.IsDirichlet[i] {
			b[i] = p.DirichletVal[i]
			continue
		}
		v := nodeCharge[i] / Epsilon0
		for _, cp := range p.couplings[i] {
			v -= cp.k * p.DirichletVal[cp.node]
		}
		b[i] = v
	}
}

// Solve runs preconditioned CG on K phi = b. phi is the initial guess
// (reusing the previous timestep's potential accelerates convergence) and
// is overwritten with the solution.
func (p *Poisson) Solve(b, phi []float64, opts sparse.SolveOptions) (sparse.SolveResult, error) {
	if opts.Precond == nil {
		opts.Precond = sparse.NewJacobi(p.K)
	}
	return sparse.CG(p.K, b, phi, opts)
}

// ElectricField computes the per-fine-cell constant field E = -grad(phi)
// from the nodal potential. dst may be nil; the slice is returned.
func (p *Poisson) ElectricField(phi []float64, dst []geom.Vec3) []geom.Vec3 {
	if dst == nil {
		dst = make([]geom.Vec3, p.Fine.NumCells())
	}
	for c := 0; c < p.Fine.NumCells(); c++ {
		dst[c] = p.cellField(phi, c)
	}
	return dst
}

// ElectricFieldForCells updates E = -grad(phi) only for the listed fine
// cells, leaving the rest of dst untouched. A rank only ever gathers the
// field inside fine cells it owns, so recomputing the whole grid per rank
// would cost O(ranks x cells) in aggregate.
func (p *Poisson) ElectricFieldForCells(phi []float64, cells []int32, dst []geom.Vec3) {
	for _, c := range cells {
		dst[c] = p.cellField(phi, int(c))
	}
}

func (p *Poisson) cellField(phi []float64, c int) geom.Vec3 {
	tet := p.Fine.Tet(c)
	g := tet.GradShape()
	cell := p.Fine.Cells[c]
	var e geom.Vec3
	for i := 0; i < 4; i++ {
		e = e.Sub(g[i].Scale(phi[cell[i]]))
	}
	return e
}
