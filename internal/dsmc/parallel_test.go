package dsmc

import (
	"bytes"
	"math"
	"testing"

	"github.com/plasma-hpc/dsmcpic/internal/geom"
	"github.com/plasma-hpc/dsmcpic/internal/mesh"
	"github.com/plasma-hpc/dsmcpic/internal/parallel"
	"github.com/plasma-hpc/dsmcpic/internal/particle"
	"github.com/plasma-hpc/dsmcpic/internal/rng"
)

// seedStore fills a store with n thermal particles inside the box mesh,
// deterministically from seed.
func seedStore(t testing.TB, m *mesh.Mesh, n int, seed uint64) *particle.Store {
	t.Helper()
	r := rng.New(seed, 0)
	st := particle.NewStore(n)
	for st.Len() < n {
		p := geom.V(r.Float64(), r.Float64(), r.Float64())
		cell := m.FindCellBrute(p)
		if cell < 0 {
			continue
		}
		vx, vy, vz := r.Maxwell(300, particle.HydrogenMass, 0, 0, 1000)
		st.Append(particle.Particle{Pos: p, Vel: geom.V(vx, vy, vz), Sp: particle.H, Cell: int32(cell)})
	}
	return st
}

// TestMoveWorkersSpecularBitwise: the specular wall draws no random
// numbers, so the sweep is a pure function of the particle state and every
// worker count must produce bit-identical positions, velocities, and cells
// — and identical stats.
func TestMoveWorkersSpecularBitwise(t *testing.T) {
	m := boxMesh(t)
	wall := WallModel{Kind: SpecularWall}
	ref := seedStore(t, m, 500, 61)
	refStats := Move(ref, m, 2e-4, wall, nil, rng.New(9, 0), nil, nil)
	refBytes := ref.EncodeAll()
	for _, workers := range []int{1, 2, 4, 7} {
		st := seedStore(t, m, 500, 61)
		var sc MoveScratch
		stats := Move(st, m, 2e-4, wall, nil, rng.New(9, 0), parallel.New(workers), &sc)
		if stats != refStats {
			t.Errorf("workers=%d stats %+v, serial %+v", workers, stats, refStats)
		}
		if !bytes.Equal(st.EncodeAll(), refBytes) {
			t.Errorf("workers=%d store differs bitwise from serial", workers)
		}
	}
}

// TestMoveWorkersOneEqualsSerial: a 1-worker pool must be bit-for-bit the
// legacy serial path — same store bytes AND the same number of draws from
// the caller's RNG stream (no base draw).
func TestMoveWorkersOneEqualsSerial(t *testing.T) {
	m := boxMesh(t)
	wall := WallModel{Kind: DiffuseWall, Temperature: 300}
	a := seedStore(t, m, 400, 67)
	b := seedStore(t, m, 400, 67)
	ra, rb := rng.New(11, 3), rng.New(11, 3)
	sa := Move(a, m, 2e-4, wall, nil, ra, nil, nil)
	var sc MoveScratch
	sb := Move(b, m, 2e-4, wall, nil, rb, parallel.New(1), &sc)
	if sa != sb {
		t.Errorf("stats differ: nil pool %+v, 1-worker pool %+v", sa, sb)
	}
	if !bytes.Equal(a.EncodeAll(), b.EncodeAll()) {
		t.Error("1-worker pool store differs bitwise from nil-pool store")
	}
	// The caller's stream must be in the same state afterwards.
	if ra.Uint64() != rb.Uint64() {
		t.Error("1-worker pool consumed a different number of RNG draws than serial")
	}
}

// TestMoveWorkersReplay: with a diffuse wall (random re-emission) at
// workers=4, two runs from the same seed must be byte-identical, and the
// scratch must not leak state between sweeps (fresh scratch == reused
// scratch).
func TestMoveWorkersReplay(t *testing.T) {
	m := boxMesh(t)
	wall := WallModel{Kind: DiffuseWall, Temperature: 300}
	pool := parallel.New(4)
	run := func(sc *MoveScratch) ([]byte, MoveStats) {
		st := seedStore(t, m, 600, 71)
		r := rng.New(13, 1)
		var stats MoveStats
		for sweep := 0; sweep < 3; sweep++ {
			stats = Move(st, m, 2e-4, wall, nil, r, pool, sc)
		}
		return st.EncodeAll(), stats
	}
	var sc1, sc2 MoveScratch
	b1, s1 := run(&sc1)
	b2, s2 := run(&sc2)
	b3, s3 := run(&sc1) // reused scratch
	if !bytes.Equal(b1, b2) || s1 != s2 {
		t.Error("workers=4 replay not byte-identical across fresh runs")
	}
	if !bytes.Equal(b1, b3) || s1 != s3 {
		t.Error("reused scratch changed the workers=4 result")
	}
}

// TestMoveWorkersSurfaceSampler: sampler shards merged in chunk order must
// reproduce the serial sweep's integer hit counts exactly and its impulse
// integrals up to float summation order.
func TestMoveWorkersSurfaceSampler(t *testing.T) {
	m := boxMesh(t)
	const dt = 2e-4
	run := func(pool *parallel.Pool) *SurfaceSampler {
		st := seedStore(t, m, 800, 73)
		sampler := NewSurfaceSampler(m)
		wall := WallModel{Kind: SpecularWall, Sampler: sampler}
		var sc MoveScratch
		for sweep := 0; sweep < 3; sweep++ {
			Move(st, m, dt, wall, nil, rng.New(17, 0), pool, &sc)
		}
		sampler.Advance(3 * dt)
		return sampler
	}
	serial := run(nil)
	par := run(parallel.New(4))
	var hitsS, hitsP int64
	for i := 0; i < serial.NumFaces(); i++ {
		hitsS += serial.Hits[i]
		hitsP += par.Hits[i]
		if serial.Hits[i] != par.Hits[i] {
			t.Fatalf("face %d hits: serial %d, workers=4 %d", i, serial.Hits[i], par.Hits[i])
		}
		ps, pp := serial.Pressure(i), par.Pressure(i)
		if math.Abs(ps-pp) > 1e-9*math.Abs(ps)+1e-30 {
			t.Errorf("face %d pressure: serial %v, workers=4 %v", i, ps, pp)
		}
	}
	if hitsS == 0 {
		t.Fatal("no wall hits sampled; test exercises nothing")
	}
}

// TestCollideWorkersReplay: the collision sweep at workers>1 derives one
// RNG stream per cell, so (a) two runs from the same seed are
// byte-identical, (b) the result is identical across any worker count > 1,
// and (c) a 1-worker pool is bit-for-bit the nil-pool legacy sweep.
func TestCollideWorkersReplay(t *testing.T) {
	m := boxMesh(t)
	run := func(pool *parallel.Pool) ([]byte, CollideStats) {
		st := seedStore(t, m, 1000, 79)
		co := NewCollider(m.NumCells(), 1e16, DefaultHydrogenReactions())
		r := rng.New(19, 2)
		var stats CollideStats
		for sweep := 0; sweep < 3; sweep++ {
			groups := GroupByCell(st, m.NumCells(), nil)
			stats = co.Collide(st, groups, m.Volumes, 1e-5, r, pool)
		}
		return st.EncodeAll(), stats
	}
	serial, serialStats := run(nil)
	one, oneStats := run(parallel.New(1))
	if !bytes.Equal(serial, one) || serialStats != oneStats {
		t.Error("1-worker pool Collide differs from nil-pool legacy sweep")
	}
	w4a, s4a := run(parallel.New(4))
	w4b, s4b := run(parallel.New(4))
	if !bytes.Equal(w4a, w4b) || s4a != s4b {
		t.Error("workers=4 Collide replay not byte-identical")
	}
	w2, s2 := run(parallel.New(2))
	if !bytes.Equal(w4a, w2) || s4a != s2 {
		t.Error("per-cell streams must make Collide identical across worker counts > 1")
	}
	if serialStats.Collisions == 0 || s4a.Collisions == 0 {
		t.Fatal("no collisions happened; test exercises nothing")
	}
}

// TestCollideWorkersConservation: the parallel sweep must conserve
// momentum and energy exactly like the serial one (elastic collisions
// only, so the invariants are exact up to float roundoff).
func TestCollideWorkersConservation(t *testing.T) {
	m := boxMesh(t)
	st := seedStore(t, m, 800, 83)
	momentum := func() geom.Vec3 {
		var s geom.Vec3
		for i := 0; i < st.Len(); i++ {
			s = s.Add(st.Vel[i].Scale(particle.InfoOf(st.Sp[i]).Mass))
		}
		return s
	}
	energy := func() float64 {
		var e float64
		for i := 0; i < st.Len(); i++ {
			e += 0.5 * particle.InfoOf(st.Sp[i]).Mass * st.Vel[i].Norm2()
		}
		return e
	}
	p0, e0 := momentum(), energy()
	co := NewCollider(m.NumCells(), 1e16, NoReactions{})
	groups := GroupByCell(st, m.NumCells(), nil)
	stats := co.Collide(st, groups, m.Volumes, 1e-5, rng.New(23, 0), parallel.New(4))
	if stats.Collisions == 0 {
		t.Fatal("no collisions happened")
	}
	p1, e1 := momentum(), energy()
	if geom.Dist(p0, p1) > 1e-9*p0.Norm()+1e-30 {
		t.Errorf("momentum drift under workers=4: %v -> %v", p0, p1)
	}
	if math.Abs(e1-e0) > 1e-9*e0 {
		t.Errorf("energy drift under workers=4: %v -> %v", e0, e1)
	}
}
