// Package dsmc implements the Direct Simulation Monte Carlo pipeline of the
// coupled solver (Bird's algorithm): ballistic particle movement across the
// unstructured coarse grid with wall interaction, No-Time-Counter collision
// pair selection with the Variable Hard Sphere model, and the collision-
// driven chemical reactions of the hydrogen plume (ionization of H,
// recombination of H+).
package dsmc

import (
	"math"

	"github.com/plasma-hpc/dsmcpic/internal/geom"
	"github.com/plasma-hpc/dsmcpic/internal/mesh"
	"github.com/plasma-hpc/dsmcpic/internal/particle"
	"github.com/plasma-hpc/dsmcpic/internal/rng"
)

// WallKind selects the reflection model for solid walls.
type WallKind int

const (
	// SpecularWall reflects the velocity about the wall plane.
	SpecularWall WallKind = iota
	// DiffuseWall re-emits particles with a half-Maxwellian at the wall
	// temperature (full thermal accommodation).
	DiffuseWall
)

// WallModel configures wall interaction.
type WallModel struct {
	Kind        WallKind
	Temperature float64 // K, used by DiffuseWall
	// Sampler, when non-nil, records every wall interaction (momentum and
	// energy transfer) for surface diagnostics.
	Sampler *SurfaceSampler
	// Weight maps species to scaling factors for the sampler (nil = 1).
	Weight func(particle.Species) float64
}

// MoveStats summarizes one movement sweep.
type MoveStats struct {
	Moved     int // particles processed
	Escaped   int // left through outlet or inlet (removed)
	WallHits  int // wall reflections performed
	Lost      int // abandoned after exceeding the traversal step cap
	Crossings int // cell-to-cell face crossings
}

// maxTraversalSteps caps face crossings per particle per move; particles
// exceeding it (degenerate geometry loops) are dropped and counted as Lost.
const maxTraversalSteps = 10000

// Move advances every particle in st by dt along straight lines (DSMC_Move
// / PIC_Move geometry): particles cross cell faces, reflect off walls, and
// are removed when they exit through the inlet or outlet. The store's Cell
// fields are updated to the final containing cell. Particles whose species
// does not satisfy filter are skipped (DSMC moves neutrals, PIC moves
// charged particles — paper §III-B).
//
// Removals are done in a single Filter pass after the sweep, preserving
// relative order (important for deterministic collisions downstream).
//
//commvet:hot
func Move(st *particle.Store, m *mesh.Mesh, dt float64, wall WallModel, filter func(particle.Species) bool, r *rng.Rand) MoveStats {
	var stats MoveStats
	dead := make([]bool, st.Len())
	for i := 0; i < st.Len(); i++ {
		if filter != nil && !filter(st.Sp[i]) {
			continue
		}
		stats.Moved++
		alive := moveOne(st, i, m, dt, wall, r, &stats)
		if !alive {
			dead[i] = true
		}
	}
	if stats.Escaped+stats.Lost > 0 {
		// One closure per sweep (not per particle); Filter's callback API
		// requires it and the compaction itself dominates the cost.
		//commvet:ignore hotalloc once-per-sweep compaction closure, outside the particle loop
		st.Filter(func(i int) bool { return !dead[i] })
	}
	return stats
}

// moveOne advances particle i; returns false if it left the domain.
func moveOne(st *particle.Store, i int, m *mesh.Mesh, dt float64, wall WallModel, r *rng.Rand, stats *MoveStats) bool {
	pos := st.Pos[i]
	vel := st.Vel[i]
	cell := int(st.Cell[i])
	remaining := dt
	info := particle.InfoOf(st.Sp[i])
	for step := 0; step < maxTraversalSteps; step++ {
		if remaining <= 0 {
			break
		}
		tet := m.Tet(cell)
		face, tExit := tet.ExitFace(pos, vel, remaining)
		if face < 0 {
			// Stays in this cell for the rest of the step.
			pos = pos.Add(vel.Scale(remaining))
			remaining = 0
			break
		}
		pos = pos.Add(vel.Scale(tExit))
		remaining -= tExit
		n := m.Neighbors[cell][face]
		if n != mesh.NoNeighbor {
			cell = int(n)
			stats.Crossings++
			continue
		}
		switch m.FaceTags[cell][face] {
		case mesh.Outlet, mesh.Inlet:
			stats.Escaped++
			return false
		default: // Wall
			stats.WallHits++
			normal := tet.FaceNormal(face) // outward
			vIn := vel
			vel = reflect(vel, normal, wall, info.Mass, r)
			if wall.Sampler != nil {
				w := 1.0
				if wall.Weight != nil {
					w = wall.Weight(st.Sp[i])
				}
				wall.Sampler.record(cell, face, st.Sp[i], w, vIn, vel)
			}
			// Nudge off the wall along the new velocity to escape the
			// face plane.
			pos = pos.Add(vel.Scale(1e-12 * dt))
		}
	}
	if remaining > 0 {
		// Traversal cap hit: drop the particle rather than loop forever.
		stats.Lost++
		return false
	}
	st.Pos[i] = pos
	st.Vel[i] = vel
	st.Cell[i] = int32(cell)
	return true
}

// reflect returns the post-wall velocity. The outward normal points out of
// the domain; the reflected velocity must point inward.
func reflect(v, outward geom.Vec3, wall WallModel, mass float64, r *rng.Rand) geom.Vec3 {
	switch wall.Kind {
	case DiffuseWall:
		// Re-emit from a wall-temperature half-Maxwellian: normal component
		// Rayleigh-distributed, tangentials Gaussian.
		sigma := math.Sqrt(rng.KBoltzmann * wall.Temperature / mass)
		inward := outward.Scale(-1)
		t1 := perpTo(inward)
		t2 := inward.Cross(t1)
		vn := sigma * math.Sqrt(-2*math.Log(1-r.Float64()+1e-300))
		return inward.Scale(vn).
			Add(t1.Scale(sigma * r.NormFloat64())).
			Add(t2.Scale(sigma * r.NormFloat64()))
	default: // SpecularWall
		return v.Sub(outward.Scale(2 * v.Dot(outward)))
	}
}

func perpTo(n geom.Vec3) geom.Vec3 {
	if math.Abs(n.X) < 0.9 {
		return n.Cross(geom.V(1, 0, 0)).Normalize()
	}
	return n.Cross(geom.V(0, 1, 0)).Normalize()
}

// Neutrals is the Move filter selecting DSMC species.
func Neutrals(sp particle.Species) bool { return !sp.IsCharged() }

// Charged is the Move filter selecting PIC species.
func Charged(sp particle.Species) bool { return sp.IsCharged() }

// All moves every species.
func All(particle.Species) bool { return true }
