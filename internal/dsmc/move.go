// Package dsmc implements the Direct Simulation Monte Carlo pipeline of the
// coupled solver (Bird's algorithm): ballistic particle movement across the
// unstructured coarse grid with wall interaction, No-Time-Counter collision
// pair selection with the Variable Hard Sphere model, and the collision-
// driven chemical reactions of the hydrogen plume (ionization of H,
// recombination of H+).
package dsmc

import (
	"math"

	"github.com/plasma-hpc/dsmcpic/internal/geom"
	"github.com/plasma-hpc/dsmcpic/internal/mesh"
	"github.com/plasma-hpc/dsmcpic/internal/parallel"
	"github.com/plasma-hpc/dsmcpic/internal/particle"
	"github.com/plasma-hpc/dsmcpic/internal/rng"
)

// WallKind selects the reflection model for solid walls.
type WallKind int

const (
	// SpecularWall reflects the velocity about the wall plane.
	SpecularWall WallKind = iota
	// DiffuseWall re-emits particles with a half-Maxwellian at the wall
	// temperature (full thermal accommodation).
	DiffuseWall
)

// WallModel configures wall interaction.
type WallModel struct {
	Kind        WallKind
	Temperature float64 // K, used by DiffuseWall
	// Sampler, when non-nil, records every wall interaction (momentum and
	// energy transfer) for surface diagnostics.
	Sampler *SurfaceSampler
	// Weight maps species to scaling factors for the sampler (nil = 1).
	Weight func(particle.Species) float64
}

// MoveStats summarizes one movement sweep.
type MoveStats struct {
	Moved     int // particles processed
	Escaped   int // left through outlet or inlet (removed)
	WallHits  int // wall reflections performed
	Lost      int // abandoned after exceeding the traversal step cap
	Crossings int // cell-to-cell face crossings
}

// maxTraversalSteps caps face crossings per particle per move; particles
// exceeding it (degenerate geometry loops) are dropped and counted as Lost.
const maxTraversalSteps = 10000

// MoveScratch holds the caller-owned buffers a movement sweep reuses
// across steps: the dead-flag vector (previously a fresh allocation every
// sweep inside the hot function) and, for multi-worker pools, per-chunk
// stats, RNG streams, and surface-sampler shards. The zero value is
// ready; one scratch serves one rank (concurrent Move calls must not
// share it).
type MoveScratch struct {
	dead  []bool
	stats []MoveStats
	rngs  []rng.Rand
	// shards are per-chunk private samplers merged in chunk order after
	// the sweep; rebuilt when the parent sampler changes between sweeps.
	shards      []*SurfaceSampler
	shardParent *SurfaceSampler
}

// deadFor returns the dead-flag vector sized and zeroed for n particles,
// growing the backing array only when the population outgrows it.
func (sc *MoveScratch) deadFor(n int) []bool {
	if cap(sc.dead) < n {
		sc.dead = make([]bool, n)
	}
	sc.dead = sc.dead[:n]
	clear(sc.dead)
	return sc.dead
}

// chunksFor sizes the per-chunk state for w workers, (re)building the
// sampler shards when the parent sampler changed.
func (sc *MoveScratch) chunksFor(w int, sampler *SurfaceSampler) {
	if cap(sc.stats) < w {
		sc.stats = make([]MoveStats, w)
		sc.rngs = make([]rng.Rand, w)
	}
	sc.stats = sc.stats[:w]
	sc.rngs = sc.rngs[:w]
	if sampler == nil {
		return
	}
	if sc.shardParent != sampler || len(sc.shards) < w {
		sc.shards = make([]*SurfaceSampler, w)
		for c := range sc.shards {
			sc.shards[c] = sampler.Shard()
		}
		sc.shardParent = sampler
	}
}

// Move advances every particle in st by dt along straight lines (DSMC_Move
// / PIC_Move geometry): particles cross cell faces, reflect off walls, and
// are removed when they exit through the inlet or outlet. The store's Cell
// fields are updated to the final containing cell. Particles whose species
// does not satisfy filter are skipped (DSMC moves neutrals, PIC moves
// charged particles — paper §III-B).
//
// pool parallelizes the sweep over deterministic contiguous chunks of the
// particle index range; nil (or a 1-worker pool) is the exact legacy
// serial sweep drawing from r directly. With more workers, each chunk
// draws from a private stream derived by chunk index from a single
// r.Uint64() draw, and per-chunk stats and surface samples are merged in
// chunk order after the sweep — so replay is byte-identical for a fixed
// (seed, workers) pair, and workers=1 is bit-for-bit the legacy serial
// run.
//
// sc holds caller-owned buffers reused across sweeps; nil allocates a
// temporary (fine for tests, wasteful in the step loop).
//
// Removals are done in a single Filter pass after the sweep, preserving
// relative order (important for deterministic collisions downstream).
//
//commvet:hot
func Move(st *particle.Store, m *mesh.Mesh, dt float64, wall WallModel, filter func(particle.Species) bool, r *rng.Rand, pool *parallel.Pool, sc *MoveScratch) MoveStats {
	if sc == nil {
		sc = &MoveScratch{}
	}
	n := st.Len()
	dead := sc.deadFor(n)
	var stats MoveStats
	if workers := pool.Workers(); workers == 1 {
		stats = moveChunk(st, 0, n, m, dt, wall, filter, r, dead)
	} else {
		base := r.Uint64()
		sc.chunksFor(workers, wall.Sampler)
		// One dispatch closure per sweep (not per particle); chunk bodies
		// write disjoint state — dead flags and store rows by particle
		// index, stats/RNG/sampler shard by chunk index.
		//commvet:ignore hotalloc once-per-sweep dispatch closure, outside the particle loop
		pool.Run(n, func(chunk, lo, hi int) {
			cw := wall
			if wall.Sampler != nil {
				cw.Sampler = sc.shards[chunk]
			}
			cr := &sc.rngs[chunk]
			cr.Reseed(base, uint64(chunk))
			sc.stats[chunk] = moveChunk(st, lo, hi, m, dt, cw, filter, cr, dead)
		})
		for c := 0; c < workers; c++ {
			cs := sc.stats[c]
			stats.Moved += cs.Moved
			stats.Escaped += cs.Escaped
			stats.WallHits += cs.WallHits
			stats.Lost += cs.Lost
			stats.Crossings += cs.Crossings
			if wall.Sampler != nil {
				wall.Sampler.Merge(sc.shards[c])
			}
		}
	}
	if stats.Escaped+stats.Lost > 0 {
		// One closure per sweep (not per particle); Filter's callback API
		// requires it and the compaction itself dominates the cost.
		//commvet:ignore hotalloc once-per-sweep compaction closure, outside the particle loop
		st.Filter(func(i int) bool { return !dead[i] })
	}
	return stats
}

// moveChunk advances the particles in [lo, hi), marking removals in dead.
// It is the per-worker body of Move: every write is disjoint per particle
// index, so chunks run concurrently without synchronization.
//
//commvet:hot
func moveChunk(st *particle.Store, lo, hi int, m *mesh.Mesh, dt float64, wall WallModel, filter func(particle.Species) bool, r *rng.Rand, dead []bool) MoveStats {
	var stats MoveStats
	for i := lo; i < hi; i++ {
		if filter != nil && !filter(st.Sp[i]) {
			continue
		}
		stats.Moved++
		alive := moveOne(st, i, m, dt, wall, r, &stats)
		if !alive {
			dead[i] = true
		}
	}
	return stats
}

// moveOne advances particle i; returns false if it left the domain.
func moveOne(st *particle.Store, i int, m *mesh.Mesh, dt float64, wall WallModel, r *rng.Rand, stats *MoveStats) bool {
	pos := st.Pos[i]
	vel := st.Vel[i]
	cell := int(st.Cell[i])
	remaining := dt
	info := particle.InfoOf(st.Sp[i])
	for step := 0; step < maxTraversalSteps; step++ {
		if remaining <= 0 {
			break
		}
		tet := m.Tet(cell)
		face, tExit := tet.ExitFace(pos, vel, remaining)
		if face < 0 {
			// Stays in this cell for the rest of the step.
			pos = pos.Add(vel.Scale(remaining))
			remaining = 0
			break
		}
		pos = pos.Add(vel.Scale(tExit))
		remaining -= tExit
		n := m.Neighbors[cell][face]
		if n != mesh.NoNeighbor {
			cell = int(n)
			stats.Crossings++
			continue
		}
		switch m.FaceTags[cell][face] {
		case mesh.Outlet, mesh.Inlet:
			stats.Escaped++
			return false
		default: // Wall
			stats.WallHits++
			normal := tet.FaceNormal(face) // outward
			vIn := vel
			vel = reflect(vel, normal, wall, info.Mass, r)
			if wall.Sampler != nil {
				w := 1.0
				if wall.Weight != nil {
					w = wall.Weight(st.Sp[i])
				}
				wall.Sampler.record(cell, face, st.Sp[i], w, vIn, vel)
			}
			// Nudge off the wall along the new velocity to escape the
			// face plane.
			pos = pos.Add(vel.Scale(1e-12 * dt))
		}
	}
	if remaining > 0 {
		// Traversal cap hit: drop the particle rather than loop forever.
		stats.Lost++
		return false
	}
	st.Pos[i] = pos
	st.Vel[i] = vel
	st.Cell[i] = int32(cell)
	return true
}

// reflect returns the post-wall velocity. The outward normal points out of
// the domain; the reflected velocity must point inward.
func reflect(v, outward geom.Vec3, wall WallModel, mass float64, r *rng.Rand) geom.Vec3 {
	switch wall.Kind {
	case DiffuseWall:
		// Re-emit from a wall-temperature half-Maxwellian: normal component
		// Rayleigh-distributed, tangentials Gaussian.
		sigma := math.Sqrt(rng.KBoltzmann * wall.Temperature / mass)
		inward := outward.Scale(-1)
		t1 := perpTo(inward)
		t2 := inward.Cross(t1)
		vn := sigma * math.Sqrt(-2*math.Log(1-r.Float64()+1e-300))
		return inward.Scale(vn).
			Add(t1.Scale(sigma * r.NormFloat64())).
			Add(t2.Scale(sigma * r.NormFloat64()))
	default: // SpecularWall
		return v.Sub(outward.Scale(2 * v.Dot(outward)))
	}
}

func perpTo(n geom.Vec3) geom.Vec3 {
	if math.Abs(n.X) < 0.9 {
		return n.Cross(geom.V(1, 0, 0)).Normalize()
	}
	return n.Cross(geom.V(0, 1, 0)).Normalize()
}

// Neutrals is the Move filter selecting DSMC species.
func Neutrals(sp particle.Species) bool { return !sp.IsCharged() }

// Charged is the Move filter selecting PIC species.
func Charged(sp particle.Species) bool { return sp.IsCharged() }

// All moves every species.
func All(particle.Species) bool { return true }
