package dsmc

import (
	"github.com/plasma-hpc/dsmcpic/internal/geom"
	"github.com/plasma-hpc/dsmcpic/internal/mesh"
	"github.com/plasma-hpc/dsmcpic/internal/particle"
)

// SurfaceSampler accumulates the momentum and energy particles transfer to
// wall faces during movement — the standard DSMC surface diagnostics from
// which wall pressure, shear and heat flux derive. Attach one to
// WallModel.Sampler; Move records every wall interaction into it.
type SurfaceSampler struct {
	mesh *mesh.Mesh
	// faceID maps cell*4+face to a compact wall index.
	faceID map[int32]int

	// Per wall face:
	Area     []float64
	Normal   []geom.Vec3 // outward
	Centroid []geom.Vec3
	Impulse  []geom.Vec3 // sum of m*w*(v_in - v_out), kg m/s
	Heat     []float64   // sum of w*(E_in - E_out), J
	Hits     []int64

	// SampledTime accumulates the physical time covered (call Advance once
	// per movement sweep with its dt).
	SampledTime float64
}

// NewSurfaceSampler indexes every Wall face of m.
func NewSurfaceSampler(m *mesh.Mesh) *SurfaceSampler {
	s := &SurfaceSampler{mesh: m, faceID: make(map[int32]int)}
	for _, cf := range m.BoundaryFaces(mesh.Wall) {
		c, f := int(cf[0]), int(cf[1])
		tet := m.Tet(c)
		s.faceID[int32(c*4+f)] = len(s.Area)
		s.Area = append(s.Area, tet.FaceArea(f))
		s.Normal = append(s.Normal, tet.FaceNormal(f))
		fv := geom.FaceVerts[f]
		ctr := tet.Vertex(fv[0]).Add(tet.Vertex(fv[1])).Add(tet.Vertex(fv[2])).Scale(1.0 / 3)
		s.Centroid = append(s.Centroid, ctr)
		s.Impulse = append(s.Impulse, geom.Vec3{})
		s.Heat = append(s.Heat, 0)
		s.Hits = append(s.Hits, 0)
	}
	return s
}

// NumFaces returns the number of indexed wall faces.
func (s *SurfaceSampler) NumFaces() int { return len(s.Area) }

// record accumulates one wall interaction. weight is the species scaling
// factor (1 if unused).
func (s *SurfaceSampler) record(cell, face int, sp particle.Species, weight float64, vIn, vOut geom.Vec3) {
	id, ok := s.faceID[int32(cell*4+face)]
	if !ok {
		return
	}
	mass := particle.InfoOf(sp).Mass * weight
	s.Impulse[id] = s.Impulse[id].Add(vIn.Sub(vOut).Scale(mass))
	s.Heat[id] += 0.5 * mass * (vIn.Norm2() - vOut.Norm2())
	s.Hits[id]++
}

// Advance accumulates sampled physical time; call once per Move sweep.
func (s *SurfaceSampler) Advance(dt float64) { s.SampledTime += dt }

// Shard returns a private accumulator view of s for one worker of a
// parallel movement sweep: geometry (mesh, face index, areas, normals,
// centroids) is shared read-only with the parent, while Impulse, Heat and
// Hits are fresh per-shard slices. Workers record into their shards
// concurrently; Merge folds them back into the parent in worker-index
// order, keeping the float accumulation order — and therefore the bits —
// a pure function of (seed, workers).
func (s *SurfaceSampler) Shard() *SurfaceSampler {
	return &SurfaceSampler{
		mesh:     s.mesh,
		faceID:   s.faceID,
		Area:     s.Area,
		Normal:   s.Normal,
		Centroid: s.Centroid,
		Impulse:  make([]geom.Vec3, len(s.Impulse)),
		Heat:     make([]float64, len(s.Heat)),
		Hits:     make([]int64, len(s.Hits)),
	}
}

// Merge adds a shard's accumulators into s and zeroes the shard for
// reuse. Callers merge shards in worker-index order so float sums stay
// order-stable across replays.
func (s *SurfaceSampler) Merge(sh *SurfaceSampler) {
	for i := range s.Impulse {
		s.Impulse[i] = s.Impulse[i].Add(sh.Impulse[i])
		s.Heat[i] += sh.Heat[i]
		s.Hits[i] += sh.Hits[i]
		sh.Impulse[i] = geom.Vec3{}
		sh.Heat[i] = 0
		sh.Hits[i] = 0
	}
}

// Pressure returns the time-averaged normal pressure (Pa) on face i:
// the normal component of the accumulated impulse per area per time.
func (s *SurfaceSampler) Pressure(i int) float64 {
	if s.SampledTime <= 0 {
		return 0
	}
	return s.Impulse[i].Dot(s.Normal[i]) / (s.Area[i] * s.SampledTime)
}

// Shear returns the magnitude of the tangential traction (Pa) on face i.
func (s *SurfaceSampler) Shear(i int) float64 {
	if s.SampledTime <= 0 {
		return 0
	}
	n := s.Normal[i]
	tangential := s.Impulse[i].Sub(n.Scale(s.Impulse[i].Dot(n)))
	return tangential.Norm() / (s.Area[i] * s.SampledTime)
}

// HeatFlux returns the time-averaged energy flux (W/m^2) into face i.
func (s *SurfaceSampler) HeatFlux(i int) float64 {
	if s.SampledTime <= 0 {
		return 0
	}
	return s.Heat[i] / (s.Area[i] * s.SampledTime)
}

// MeanPressure returns the area-weighted average wall pressure (Pa).
func (s *SurfaceSampler) MeanPressure() float64 {
	var p, a float64
	for i := range s.Area {
		p += s.Pressure(i) * s.Area[i]
		a += s.Area[i]
	}
	if a == 0 {
		return 0
	}
	return p / a
}

// Reset clears accumulators, keeping the face index.
func (s *SurfaceSampler) Reset() {
	for i := range s.Impulse {
		s.Impulse[i] = geom.Vec3{}
		s.Heat[i] = 0
		s.Hits[i] = 0
	}
	s.SampledTime = 0
}

// IdealGasPressure returns n*k*T — the reference value a specular-wall
// equilibrium gas must reproduce (for tests and sanity checks).
func IdealGasPressure(numberDensity, temperature float64) float64 {
	return numberDensity * 1.380649e-23 * temperature
}
