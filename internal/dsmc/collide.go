package dsmc

import (
	"math"

	"github.com/plasma-hpc/dsmcpic/internal/geom"
	"github.com/plasma-hpc/dsmcpic/internal/parallel"
	"github.com/plasma-hpc/dsmcpic/internal/particle"
	"github.com/plasma-hpc/dsmcpic/internal/rng"
)

// Collider performs Bird NTC (no-time-counter) collision selection with the
// VHS (variable hard sphere) cross-section model, per coarse-grid cell
// (paper's Colli_React component). It maintains the per-cell running
// maximum of sigma*c_r required by NTC.
//
// A Collider serves one rank: its scratch buffers are reused across sweeps
// and concurrent Collide calls on the same Collider are not allowed.
type Collider struct {
	// Fn is the simulation-to-real particle ratio (the paper's scaling
	// factor): each simulation particle represents Fn real particles.
	Fn float64
	// Reactions, when non-nil, is consulted for every accepted collision.
	Reactions ReactionModel

	sigmaCrMax []float64 // per cell, adaptively updated

	// Sweep scratch, reused across calls: dead flags for removals, per-chunk
	// stats and RNG streams, and per-chunk creation buffers (dissociation
	// products are buffered and appended after the sweep in chunk order so
	// the store never mutates while workers read it).
	dead       []bool
	chunkStats []CollideStats
	rngs       []rng.Rand
	created    [][]particle.Particle
}

// NewCollider creates a collider for a mesh with numCells coarse cells.
func NewCollider(numCells int, fn float64, reactions ReactionModel) *Collider {
	c := &Collider{Fn: fn, Reactions: reactions}
	c.sigmaCrMax = make([]float64, numCells)
	// Initial guess: a generous (sigma * cr) for hydrogen at plume speeds;
	// NTC self-corrects upward as larger values are observed.
	d := particle.InfoOf(particle.H).DRef
	init := math.Pi * d * d * 2e4
	for i := range c.sigmaCrMax {
		c.sigmaCrMax[i] = init
	}
	return c
}

// CollideStats summarizes one collision sweep.
type CollideStats struct {
	Candidates int // NTC candidate pairs examined
	Collisions int // accepted (performed) collisions
	Reactions  int // collisions that also reacted
	Created    int // particles created by dissociation
	Removed    int // particles removed by recombination to molecules
}

// GroupByCell builds, for each cell id in [0, numCells), the list of
// particle indices currently in that cell. Only particles passing filter
// are grouped. The returned slices alias the single backing array.
func GroupByCell(st *particle.Store, numCells int, filter func(particle.Species) bool) [][]int32 {
	counts := make([]int32, numCells+1)
	n := st.Len()
	for i := 0; i < n; i++ {
		if filter != nil && !filter(st.Sp[i]) {
			continue
		}
		counts[st.Cell[i]+1]++
	}
	for c := 0; c < numCells; c++ {
		counts[c+1] += counts[c]
	}
	backing := make([]int32, counts[numCells])
	fill := make([]int32, numCells)
	copy(fill, counts[:numCells])
	for i := 0; i < n; i++ {
		if filter != nil && !filter(st.Sp[i]) {
			continue
		}
		c := st.Cell[i]
		backing[fill[c]] = int32(i)
		fill[c]++
	}
	groups := make([][]int32, numCells)
	for c := 0; c < numCells; c++ {
		groups[c] = backing[counts[c]:counts[c+1]]
	}
	return groups
}

// deadFor returns the dead-flag vector sized and zeroed for n particles,
// growing the backing array only when the population outgrows it.
func (co *Collider) deadFor(n int) []bool {
	if cap(co.dead) < n {
		co.dead = make([]bool, n)
	}
	co.dead = co.dead[:n]
	clear(co.dead)
	return co.dead
}

// chunksFor sizes the per-chunk scratch (stats, RNG streams, creation
// buffers) for w workers.
func (co *Collider) chunksFor(w int) {
	if cap(co.chunkStats) < w {
		co.chunkStats = make([]CollideStats, w)
		co.rngs = make([]rng.Rand, w)
	}
	co.chunkStats = co.chunkStats[:w]
	co.rngs = co.rngs[:w]
	for len(co.created) < w {
		co.created = append(co.created, nil)
	}
}

// Collide performs NTC collisions for every cell. groups lists particle
// indices per cell (from GroupByCell), vols the cell volumes, dt the DSMC
// timestep. When the reaction model implements ExtendedReactionModel,
// reactions may create particles (dissociation) or remove them
// (recombination to molecules); creations are buffered and appended after
// the sweep in cell order, and removals are compacted out of the store at
// the end, preserving the order of survivors.
//
// pool parallelizes the sweep over deterministic contiguous blocks of
// cells; nil (or a 1-worker pool) is the exact legacy serial sweep drawing
// from r directly. With more workers, every cell draws from a private
// stream derived by cell index from a single r.Uint64() draw, so replay
// is byte-identical for a fixed (seed, workers) pair — and identical
// across any workers > 1 — while workers=1 is bit-for-bit the legacy
// serial run. Cells own disjoint particles (GroupByCell partitions by
// cell), so all store writes are chunk-disjoint.
//
//commvet:hot
func (co *Collider) Collide(st *particle.Store, groups [][]int32, vols []float64, dt float64, r *rng.Rand, pool *parallel.Pool) CollideStats {
	var stats CollideStats
	ext, _ := co.Reactions.(ExtendedReactionModel)
	var dead []bool
	if ext != nil {
		dead = co.deadFor(st.Len())
	}
	workers := pool.Workers()
	co.chunksFor(workers)
	if workers == 1 {
		stats = co.collideCells(st, groups, 0, len(groups), vols, dt, ext, dead, &co.created[0], r, nil, 0)
	} else {
		base := r.Uint64()
		// One dispatch closure per sweep (not per candidate); chunk bodies
		// write disjoint state — store rows and dead flags by cell-owned
		// particle index, stats/RNG/creation buffer by chunk index.
		//commvet:ignore hotalloc once-per-sweep dispatch closure, outside the candidate loop
		pool.Run(len(groups), func(chunk, lo, hi int) {
			co.chunkStats[chunk] = co.collideCells(st, groups, lo, hi, vols, dt, ext, dead, &co.created[chunk], nil, &co.rngs[chunk], base)
		})
		for c := 0; c < workers; c++ {
			cs := co.chunkStats[c]
			stats.Candidates += cs.Candidates
			stats.Collisions += cs.Collisions
			stats.Reactions += cs.Reactions
			stats.Created += cs.Created
			stats.Removed += cs.Removed
		}
	}
	// Append dissociation products in chunk order (serial: creation order),
	// which reproduces the legacy mid-sweep append ordering exactly: created
	// particles only ever land at the end of the store, and groups were
	// built before the sweep so they never collide within it.
	for w := 0; w < workers; w++ {
		for _, p := range co.created[w] {
			st.Append(p)
		}
		co.created[w] = co.created[w][:0]
	}
	if stats.Removed > 0 {
		// One closure per sweep (not per candidate); Filter's callback API
		// requires it and the compaction itself dominates the cost.
		//commvet:ignore hotalloc once-per-sweep compaction closure, outside the candidate loop
		st.Filter(func(i int) bool { return i >= len(dead) || !dead[i] })
	}
	return stats
}

// collideCells runs the NTC loop for cells [lo, hi). Exactly one of r and
// scratch is used: a non-nil r draws every cell from that one stream (the
// legacy serial sequence); otherwise scratch is reseeded per cell from
// (base, cell index), making each cell's draws independent of how cells
// are distributed over workers.
//
//commvet:hot
func (co *Collider) collideCells(st *particle.Store, groups [][]int32, lo, hi int, vols []float64, dt float64, ext ExtendedReactionModel, dead []bool, created *[]particle.Particle, r *rng.Rand, scratch *rng.Rand, base uint64) CollideStats {
	var stats CollideStats
	for c := lo; c < hi; c++ {
		grp := groups[c]
		n := len(grp)
		if n < 2 {
			continue
		}
		rr := r
		if rr == nil {
			scratch.Reseed(base, uint64(c))
			rr = scratch
		}
		// NTC candidate count: 1/2 N (N-1) Fn (sigma cr)_max dt / Vc.
		nf := float64(n)
		mean := 0.5 * nf * (nf - 1) * co.Fn * co.sigmaCrMax[c] * dt / vols[c]
		nCand := int(mean)
		if rr.Float64() < mean-float64(nCand) {
			nCand++ // probabilistic rounding keeps the expectation exact
		}
		for k := 0; k < nCand; k++ {
			i := grp[rr.Intn(n)]
			j := grp[rr.Intn(n)]
			for tries := 0; (j == i || deadAt(dead, i) || deadAt(dead, j)) && tries < 8; tries++ {
				i = grp[rr.Intn(n)]
				j = grp[rr.Intn(n)]
			}
			if j == i || deadAt(dead, i) || deadAt(dead, j) {
				continue
			}
			stats.Candidates++
			cr := st.Vel[i].Sub(st.Vel[j]).Norm()
			sigma := vhsCrossSection(st.Sp[i], st.Sp[j], cr)
			sc := sigma * cr
			if sc > co.sigmaCrMax[c] {
				co.sigmaCrMax[c] = sc
			}
			if rr.Float64()*co.sigmaCrMax[c] >= sc {
				continue // rejected candidate
			}
			stats.Collisions++
			if ext != nil {
				reacted, madeN, removed := co.collidePairEx(st, int(i), int(j), ext, dead, created, rr)
				if reacted {
					stats.Reactions++
				}
				stats.Created += madeN
				stats.Removed += removed
			} else if co.collidePair(st, int(i), int(j), rr) {
				stats.Reactions++
			}
		}
	}
	return stats
}

// deadAt reports whether particle i has been removed by a recombination
// earlier in the sweep (dead is nil until the first removal).
func deadAt(dead []bool, i int32) bool { return dead != nil && dead[i] }

// collidePairEx is collidePair for extended (number-changing) chemistry.
// Returns whether a reaction happened and how many particles were created
// and removed. Momentum is conserved exactly in every channel. Removals
// mark dead (pre-sized by the sweep); creations go into the created
// buffer, appended to the store after the sweep.
func (co *Collider) collidePairEx(st *particle.Store, i, j int, ext ExtendedReactionModel, dead []bool, created *[]particle.Particle, r *rng.Rand) (reacted bool, madeN, removed int) {
	out, ok := ext.AttemptEx(st.Sp[i], st.Sp[j], collisionEnergy(st, i, j), r)
	if !ok {
		// Plain elastic VHS collision.
		co.elastic(st, i, j, 0, r)
		return false, 0, 0
	}
	if out.Swapped {
		i, j = j, i
	}
	switch {
	case out.MergeIntoA:
		// Recombination A + B -> molecule(NewA): the product carries the
		// pair's total momentum; binding energy leaves the translational
		// budget (documented third-body simplification).
		mi := particle.InfoOf(st.Sp[i]).Mass
		mj := particle.InfoOf(st.Sp[j]).Mass
		vcm := st.Vel[i].Scale(mi / (mi + mj)).Add(st.Vel[j].Scale(mj / (mi + mj)))
		st.Sp[i] = out.NewA
		st.Vel[i] = vcm
		dead[j] = true
		return true, 0, 1

	case out.SplitA:
		// Dissociation A -> 2x NewA against partner B: first the pair
		// performs the (endothermic) scattering, then A splits into two
		// fragments sharing its momentum, separating with the remaining
		// reaction-channel speed.
		co.elastic(st, i, j, out.DE, r)
		st.Sp[j] = out.NewB
		vA := st.Vel[i]
		// Fragment separation speed from a small thermal share of the
		// post-collision energy (kept simple and momentum-exact).
		sep := 0.1 * vA.Norm()
		ux, uy, uz := r.UnitSphere()
		dv := geom.V(ux*sep, uy*sep, uz*sep)
		st.Sp[i] = out.NewA
		st.Vel[i] = vA.Add(dv)
		*created = append(*created, particle.Particle{
			Pos:  st.Pos[i],
			Vel:  vA.Sub(dv),
			Sp:   out.NewA,
			Cell: st.Cell[i],
			ID:   -1,
		})
		return true, 1, 0

	default:
		st.Sp[i] = out.NewA
		st.Sp[j] = out.NewB
		co.elastic(st, i, j, out.DE, r)
		return true, 0, 0
	}
}

// collisionEnergy returns the pair's relative kinetic energy.
func collisionEnergy(st *particle.Store, i, j int) float64 {
	mi := particle.InfoOf(st.Sp[i]).Mass
	mj := particle.InfoOf(st.Sp[j]).Mass
	mr := mi * mj / (mi + mj)
	cr := st.Vel[i].Sub(st.Vel[j]).Norm()
	return 0.5 * mr * cr * cr
}

// elastic performs the VHS isotropic scattering of the pair with reaction
// energy dE added to the relative motion (post-reaction masses are used).
func (co *Collider) elastic(st *particle.Store, i, j int, dE float64, r *rng.Rand) {
	mi := particle.InfoOf(st.Sp[i]).Mass
	mj := particle.InfoOf(st.Sp[j]).Mass
	mr := mi * mj / (mi + mj)
	rel := st.Vel[i].Sub(st.Vel[j])
	cr := rel.Norm()
	ec := 0.5*mr*cr*cr + dE
	if ec < 0 {
		ec = 0
	}
	cr = math.Sqrt(2 * ec / mr)
	vcm := st.Vel[i].Scale(mi / (mi + mj)).Add(st.Vel[j].Scale(mj / (mi + mj)))
	ux, uy, uz := r.UnitSphere()
	newRel := geom.V(ux*cr, uy*cr, uz*cr)
	st.Vel[i] = vcm.Add(newRel.Scale(mj / (mi + mj)))
	st.Vel[j] = vcm.Sub(newRel.Scale(mi / (mi + mj)))
}

// collidePair performs the VHS collision between particles i and j with
// the plain (2-in-2-out) reaction model, returning whether a reaction
// occurred. Momentum is conserved exactly; energy is conserved for elastic
// collisions and adjusted by the reaction energy for reactive ones.
func (co *Collider) collidePair(st *particle.Store, i, j int, r *rng.Rand) bool {
	reacted := false
	var dE float64
	if co.Reactions != nil {
		if newI, newJ, de, ok := co.Reactions.Attempt(st.Sp[i], st.Sp[j], collisionEnergy(st, i, j), r); ok {
			st.Sp[i] = newI
			st.Sp[j] = newJ
			dE = de
			reacted = true
		}
	}
	co.elastic(st, i, j, dE, r)
	return reacted
}

// vhsCrossSection returns the VHS total cross-section for a pair of species
// at relative speed cr (Bird 1994, eq. 4.63): hard-sphere at the reference
// diameter scaled by (cr_ref/cr)^(2*omega-1) through the gamma-function
// normalization.
func vhsCrossSection(a, b particle.Species, cr float64) float64 {
	ia, ib := particle.InfoOf(a), particle.InfoOf(b)
	d := 0.5 * (ia.DRef + ib.DRef)
	omega := 0.5 * (ia.Omega + ib.Omega)
	tRef := 0.5 * (ia.TRef + ib.TRef)
	mr := ia.Mass * ib.Mass / (ia.Mass + ib.Mass)
	if cr <= 0 {
		cr = 1e-10
	}
	x := 2 * rng.KBoltzmann * tRef / (mr * cr * cr)
	return math.Pi * d * d * math.Pow(x, omega-0.5) / gamma25MinusOmega(omega)
}

// gamma25MinusOmega returns Gamma(2.5 - omega) via math.Gamma.
func gamma25MinusOmega(omega float64) float64 { return math.Gamma(2.5 - omega) }
