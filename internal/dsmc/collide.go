package dsmc

import (
	"math"

	"github.com/plasma-hpc/dsmcpic/internal/geom"
	"github.com/plasma-hpc/dsmcpic/internal/particle"
	"github.com/plasma-hpc/dsmcpic/internal/rng"
)

// Collider performs Bird NTC (no-time-counter) collision selection with the
// VHS (variable hard sphere) cross-section model, per coarse-grid cell
// (paper's Colli_React component). It maintains the per-cell running
// maximum of sigma*c_r required by NTC.
type Collider struct {
	// Fn is the simulation-to-real particle ratio (the paper's scaling
	// factor): each simulation particle represents Fn real particles.
	Fn float64
	// Reactions, when non-nil, is consulted for every accepted collision.
	Reactions ReactionModel

	sigmaCrMax []float64 // per cell, adaptively updated
}

// NewCollider creates a collider for a mesh with numCells coarse cells.
func NewCollider(numCells int, fn float64, reactions ReactionModel) *Collider {
	c := &Collider{Fn: fn, Reactions: reactions}
	c.sigmaCrMax = make([]float64, numCells)
	// Initial guess: a generous (sigma * cr) for hydrogen at plume speeds;
	// NTC self-corrects upward as larger values are observed.
	d := particle.InfoOf(particle.H).DRef
	init := math.Pi * d * d * 2e4
	for i := range c.sigmaCrMax {
		c.sigmaCrMax[i] = init
	}
	return c
}

// CollideStats summarizes one collision sweep.
type CollideStats struct {
	Candidates int // NTC candidate pairs examined
	Collisions int // accepted (performed) collisions
	Reactions  int // collisions that also reacted
	Created    int // particles created by dissociation
	Removed    int // particles removed by recombination to molecules
}

// GroupByCell builds, for each cell id in [0, numCells), the list of
// particle indices currently in that cell. Only particles passing filter
// are grouped. The returned slices alias the single backing array.
func GroupByCell(st *particle.Store, numCells int, filter func(particle.Species) bool) [][]int32 {
	counts := make([]int32, numCells+1)
	n := st.Len()
	for i := 0; i < n; i++ {
		if filter != nil && !filter(st.Sp[i]) {
			continue
		}
		counts[st.Cell[i]+1]++
	}
	for c := 0; c < numCells; c++ {
		counts[c+1] += counts[c]
	}
	backing := make([]int32, counts[numCells])
	fill := make([]int32, numCells)
	copy(fill, counts[:numCells])
	for i := 0; i < n; i++ {
		if filter != nil && !filter(st.Sp[i]) {
			continue
		}
		c := st.Cell[i]
		backing[fill[c]] = int32(i)
		fill[c]++
	}
	groups := make([][]int32, numCells)
	for c := 0; c < numCells; c++ {
		groups[c] = backing[counts[c]:counts[c+1]]
	}
	return groups
}

// Collide performs NTC collisions for every cell. groups lists particle
// indices per cell (from GroupByCell), vols the cell volumes, dt the DSMC
// timestep. When the reaction model implements ExtendedReactionModel,
// reactions may create particles (dissociation) or remove them
// (recombination to molecules); removals are compacted out of the store at
// the end of the sweep, preserving the order of survivors.
//
//commvet:hot
func (co *Collider) Collide(st *particle.Store, groups [][]int32, vols []float64, dt float64, r *rng.Rand) CollideStats {
	var stats CollideStats
	ext, _ := co.Reactions.(ExtendedReactionModel)
	var dead []bool
	for c, grp := range groups {
		n := len(grp)
		if n < 2 {
			continue
		}
		// NTC candidate count: 1/2 N (N-1) Fn (sigma cr)_max dt / Vc.
		nf := float64(n)
		mean := 0.5 * nf * (nf - 1) * co.Fn * co.sigmaCrMax[c] * dt / vols[c]
		nCand := int(mean)
		if r.Float64() < mean-float64(nCand) {
			nCand++ // probabilistic rounding keeps the expectation exact
		}
		for k := 0; k < nCand; k++ {
			i := grp[r.Intn(n)]
			j := grp[r.Intn(n)]
			for tries := 0; (j == i || deadAt(dead, i) || deadAt(dead, j)) && tries < 8; tries++ {
				i = grp[r.Intn(n)]
				j = grp[r.Intn(n)]
			}
			if j == i || deadAt(dead, i) || deadAt(dead, j) {
				continue
			}
			stats.Candidates++
			cr := st.Vel[i].Sub(st.Vel[j]).Norm()
			sigma := vhsCrossSection(st.Sp[i], st.Sp[j], cr)
			sc := sigma * cr
			if sc > co.sigmaCrMax[c] {
				co.sigmaCrMax[c] = sc
			}
			if r.Float64()*co.sigmaCrMax[c] >= sc {
				continue // rejected candidate
			}
			stats.Collisions++
			if ext != nil {
				reacted, created, removed := co.collidePairEx(st, int(i), int(j), ext, &dead, r)
				if reacted {
					stats.Reactions++
				}
				stats.Created += created
				stats.Removed += removed
			} else if co.collidePair(st, int(i), int(j), r) {
				stats.Reactions++
			}
		}
	}
	if stats.Removed > 0 {
		// One closure per sweep (not per candidate); Filter's callback API
		// requires it and the compaction itself dominates the cost.
		//commvet:ignore hotalloc once-per-sweep compaction closure, outside the candidate loop
		st.Filter(func(i int) bool { return i >= len(dead) || !dead[i] })
	}
	return stats
}

// deadAt reports whether particle i has been removed by a recombination
// earlier in the sweep (dead is nil until the first removal).
func deadAt(dead []bool, i int32) bool { return dead != nil && dead[i] }

// collidePairEx is collidePair for extended (number-changing) chemistry.
// Returns whether a reaction happened and how many particles were created
// and removed. Momentum is conserved exactly in every channel.
func (co *Collider) collidePairEx(st *particle.Store, i, j int, ext ExtendedReactionModel, dead *[]bool, r *rng.Rand) (reacted bool, created, removed int) {
	out, ok := ext.AttemptEx(st.Sp[i], st.Sp[j], collisionEnergy(st, i, j), r)
	if !ok {
		// Plain elastic VHS collision.
		co.elastic(st, i, j, 0, r)
		return false, 0, 0
	}
	if out.Swapped {
		i, j = j, i
	}
	switch {
	case out.MergeIntoA:
		// Recombination A + B -> molecule(NewA): the product carries the
		// pair's total momentum; binding energy leaves the translational
		// budget (documented third-body simplification).
		mi := particle.InfoOf(st.Sp[i]).Mass
		mj := particle.InfoOf(st.Sp[j]).Mass
		vcm := st.Vel[i].Scale(mi / (mi + mj)).Add(st.Vel[j].Scale(mj / (mi + mj)))
		st.Sp[i] = out.NewA
		st.Vel[i] = vcm
		if *dead == nil {
			*dead = make([]bool, st.Len())
		}
		(*dead)[j] = true
		return true, 0, 1

	case out.SplitA:
		// Dissociation A -> 2x NewA against partner B: first the pair
		// performs the (endothermic) scattering, then A splits into two
		// fragments sharing its momentum, separating with the remaining
		// reaction-channel speed.
		co.elastic(st, i, j, out.DE, r)
		st.Sp[j] = out.NewB
		vA := st.Vel[i]
		// Fragment separation speed from a small thermal share of the
		// post-collision energy (kept simple and momentum-exact).
		sep := 0.1 * vA.Norm()
		ux, uy, uz := r.UnitSphere()
		dv := geom.V(ux*sep, uy*sep, uz*sep)
		st.Sp[i] = out.NewA
		st.Vel[i] = vA.Add(dv)
		st.Append(particle.Particle{
			Pos:  st.Pos[i],
			Vel:  vA.Sub(dv),
			Sp:   out.NewA,
			Cell: st.Cell[i],
			ID:   -1,
		})
		return true, 1, 0

	default:
		st.Sp[i] = out.NewA
		st.Sp[j] = out.NewB
		co.elastic(st, i, j, out.DE, r)
		return true, 0, 0
	}
}

// collisionEnergy returns the pair's relative kinetic energy.
func collisionEnergy(st *particle.Store, i, j int) float64 {
	mi := particle.InfoOf(st.Sp[i]).Mass
	mj := particle.InfoOf(st.Sp[j]).Mass
	mr := mi * mj / (mi + mj)
	cr := st.Vel[i].Sub(st.Vel[j]).Norm()
	return 0.5 * mr * cr * cr
}

// elastic performs the VHS isotropic scattering of the pair with reaction
// energy dE added to the relative motion (post-reaction masses are used).
func (co *Collider) elastic(st *particle.Store, i, j int, dE float64, r *rng.Rand) {
	mi := particle.InfoOf(st.Sp[i]).Mass
	mj := particle.InfoOf(st.Sp[j]).Mass
	mr := mi * mj / (mi + mj)
	rel := st.Vel[i].Sub(st.Vel[j])
	cr := rel.Norm()
	ec := 0.5*mr*cr*cr + dE
	if ec < 0 {
		ec = 0
	}
	cr = math.Sqrt(2 * ec / mr)
	vcm := st.Vel[i].Scale(mi / (mi + mj)).Add(st.Vel[j].Scale(mj / (mi + mj)))
	ux, uy, uz := r.UnitSphere()
	newRel := geom.V(ux*cr, uy*cr, uz*cr)
	st.Vel[i] = vcm.Add(newRel.Scale(mj / (mi + mj)))
	st.Vel[j] = vcm.Sub(newRel.Scale(mi / (mi + mj)))
}

// collidePair performs the VHS collision between particles i and j with
// the plain (2-in-2-out) reaction model, returning whether a reaction
// occurred. Momentum is conserved exactly; energy is conserved for elastic
// collisions and adjusted by the reaction energy for reactive ones.
func (co *Collider) collidePair(st *particle.Store, i, j int, r *rng.Rand) bool {
	reacted := false
	var dE float64
	if co.Reactions != nil {
		if newI, newJ, de, ok := co.Reactions.Attempt(st.Sp[i], st.Sp[j], collisionEnergy(st, i, j), r); ok {
			st.Sp[i] = newI
			st.Sp[j] = newJ
			dE = de
			reacted = true
		}
	}
	co.elastic(st, i, j, dE, r)
	return reacted
}

// vhsCrossSection returns the VHS total cross-section for a pair of species
// at relative speed cr (Bird 1994, eq. 4.63): hard-sphere at the reference
// diameter scaled by (cr_ref/cr)^(2*omega-1) through the gamma-function
// normalization.
func vhsCrossSection(a, b particle.Species, cr float64) float64 {
	ia, ib := particle.InfoOf(a), particle.InfoOf(b)
	d := 0.5 * (ia.DRef + ib.DRef)
	omega := 0.5 * (ia.Omega + ib.Omega)
	tRef := 0.5 * (ia.TRef + ib.TRef)
	mr := ia.Mass * ib.Mass / (ia.Mass + ib.Mass)
	if cr <= 0 {
		cr = 1e-10
	}
	x := 2 * rng.KBoltzmann * tRef / (mr * cr * cr)
	return math.Pi * d * d * math.Pow(x, omega-0.5) / gamma25MinusOmega(omega)
}

// gamma25MinusOmega returns Gamma(2.5 - omega) via math.Gamma.
func gamma25MinusOmega(omega float64) float64 { return math.Gamma(2.5 - omega) }
