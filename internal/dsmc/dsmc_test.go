package dsmc

import (
	"math"
	"testing"

	"github.com/plasma-hpc/dsmcpic/internal/geom"
	"github.com/plasma-hpc/dsmcpic/internal/mesh"
	"github.com/plasma-hpc/dsmcpic/internal/particle"
	"github.com/plasma-hpc/dsmcpic/internal/rng"
)

func boxMesh(t testing.TB) *mesh.Mesh {
	t.Helper()
	m, err := mesh.Box(4, 4, 4, 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func nozzleMesh(t testing.TB) *mesh.Mesh {
	t.Helper()
	m, err := mesh.Nozzle(4, 8, 0.05, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func addParticle(st *particle.Store, m *mesh.Mesh, pos, vel geom.Vec3, sp particle.Species) int {
	cell := m.FindCellBrute(pos)
	if cell < 0 {
		panic("particle outside mesh")
	}
	return st.Append(particle.Particle{Pos: pos, Vel: vel, Sp: sp, Cell: int32(cell)})
}

func TestMoveWithinCell(t *testing.T) {
	m := boxMesh(t)
	st := particle.NewStore(1)
	addParticle(st, m, geom.V(0.5, 0.5, 0.5), geom.V(0.001, 0, 0), particle.H)
	stats := Move(st, m, 1.0, WallModel{Kind: SpecularWall}, nil, rng.New(1, 0), nil, nil)
	if stats.Escaped != 0 || st.Len() != 1 {
		t.Fatalf("particle escaped: %+v", stats)
	}
	want := geom.V(0.501, 0.5, 0.5)
	if geom.Dist(st.Pos[0], want) > 1e-12 {
		t.Errorf("pos = %v, want %v", st.Pos[0], want)
	}
	if !m.Tet(int(st.Cell[0])).Contains(st.Pos[0], 1e-9) {
		t.Error("cell field inconsistent with position")
	}
}

func TestMoveAcrossCells(t *testing.T) {
	m := boxMesh(t)
	st := particle.NewStore(1)
	addParticle(st, m, geom.V(0.1, 0.5, 0.5), geom.V(0.7, 0, 0), particle.H)
	stats := Move(st, m, 1.0, WallModel{Kind: SpecularWall}, nil, rng.New(1, 0), nil, nil)
	if st.Len() != 1 {
		t.Fatalf("particle lost: %+v", stats)
	}
	if stats.Crossings == 0 {
		t.Error("no crossings recorded")
	}
	want := geom.V(0.8, 0.5, 0.5)
	if geom.Dist(st.Pos[0], want) > 1e-9 {
		t.Errorf("pos = %v, want %v", st.Pos[0], want)
	}
	if !m.Tet(int(st.Cell[0])).Contains(st.Pos[0], 1e-9) {
		t.Error("final cell wrong")
	}
}

func TestMoveSpecularReflection(t *testing.T) {
	m := boxMesh(t)
	st := particle.NewStore(1)
	// Head straight at the x=1 wall; specular reflection reverses vx.
	addParticle(st, m, geom.V(0.9, 0.52, 0.52), geom.V(1.0, 0, 0), particle.H)
	stats := Move(st, m, 0.3, WallModel{Kind: SpecularWall}, nil, rng.New(1, 0), nil, nil)
	if st.Len() != 1 {
		t.Fatalf("lost: %+v", stats)
	}
	if stats.WallHits != 1 {
		t.Fatalf("wall hits = %d, want 1", stats.WallHits)
	}
	// Travelled 0.1 to the wall + 0.2 back: x = 0.8, vx = -1.
	if math.Abs(st.Pos[0].X-0.8) > 1e-9 || st.Vel[0].X != -1 {
		t.Errorf("pos %v vel %v", st.Pos[0], st.Vel[0])
	}
	// y, z unchanged by specular bounce off x wall.
	if math.Abs(st.Pos[0].Y-0.52) > 1e-9 || math.Abs(st.Pos[0].Z-0.52) > 1e-9 {
		t.Errorf("tangential drift: %v", st.Pos[0])
	}
}

func TestMoveDiffuseReflectionThermalizes(t *testing.T) {
	m := boxMesh(t)
	st := particle.NewStore(0)
	r := rng.New(2, 0)
	const n = 2000
	for k := 0; k < n; k++ {
		addParticle(st, m, geom.V(0.95, 0.2+0.6*r.Float64(), 0.2+0.6*r.Float64()),
			geom.V(5000, 0, 0), particle.H)
	}
	wall := WallModel{Kind: DiffuseWall, Temperature: 300}
	Move(st, m, 5e-5, wall, nil, r, nil, nil)
	// After hitting the 300K wall, speeds should be thermal (~ km/s scale),
	// not the initial 5 km/s beam.
	var meanSpeed float64
	for i := 0; i < st.Len(); i++ {
		meanSpeed += st.Vel[i].Norm()
	}
	meanSpeed /= float64(st.Len())
	// Mean speed of 300K hydrogen ~ sqrt(8kT/pi m) ~ 2500 m/s.
	if meanSpeed > 4000 || meanSpeed < 1000 {
		t.Errorf("mean speed after diffuse wall = %v, want thermal ~2500", meanSpeed)
	}
}

func TestMoveEscapesOutlet(t *testing.T) {
	m := nozzleMesh(t)
	st := particle.NewStore(0)
	r := rng.New(3, 0)
	// Fast particles near the outlet moving +z leave the domain.
	for k := 0; k < 50; k++ {
		addParticle(st, m, geom.V(0.01*r.Float64(), 0.01*r.Float64(), 0.19),
			geom.V(0, 0, 10000), particle.H)
	}
	stats := Move(st, m, 1e-4, WallModel{Kind: SpecularWall}, nil, r, nil, nil)
	if stats.Escaped != 50 || st.Len() != 0 {
		t.Errorf("escaped %d of 50, %d left", stats.Escaped, st.Len())
	}
}

func TestMoveFilterSkipsSpecies(t *testing.T) {
	m := boxMesh(t)
	st := particle.NewStore(0)
	addParticle(st, m, geom.V(0.5, 0.5, 0.5), geom.V(0.1, 0, 0), particle.H)
	addParticle(st, m, geom.V(0.5, 0.5, 0.5), geom.V(0.1, 0, 0), particle.HPlus)
	Move(st, m, 1.0, WallModel{Kind: SpecularWall}, Neutrals, rng.New(1, 0), nil, nil)
	if st.Pos[0].X == 0.5 {
		t.Error("neutral did not move")
	}
	if st.Pos[1].X != 0.5 {
		t.Error("charged particle moved under Neutrals filter")
	}
	if !Neutrals(particle.H) || Neutrals(particle.HPlus) {
		t.Error("Neutrals filter wrong")
	}
	if Charged(particle.H) || !Charged(particle.HPlus) {
		t.Error("Charged filter wrong")
	}
	if !All(particle.H) || !All(particle.HPlus) {
		t.Error("All filter wrong")
	}
}

func TestMoveManyParticlesStayInside(t *testing.T) {
	m := nozzleMesh(t)
	st := particle.NewStore(0)
	r := rng.New(5, 0)
	const n = 2000
	placed := 0
	for placed < n {
		p := geom.V(0.09*(r.Float64()-0.5), 0.09*(r.Float64()-0.5), 0.2*r.Float64())
		cell := m.FindCellBrute(p)
		if cell < 0 {
			continue
		}
		vx, vy, vz := r.Maxwell(300, particle.HydrogenMass, 0, 0, 2000)
		st.Append(particle.Particle{Pos: p, Vel: geom.V(vx, vy, vz), Sp: particle.H, Cell: int32(cell)})
		placed++
	}
	stats := Move(st, m, 2e-6, WallModel{Kind: DiffuseWall, Temperature: 300}, nil, r, nil, nil)
	if stats.Lost > n/100 {
		t.Errorf("lost %d of %d particles to traversal cap", stats.Lost, n)
	}
	// Every surviving particle's recorded cell contains its position.
	for i := 0; i < st.Len(); i++ {
		if !m.Tet(int(st.Cell[i])).Contains(st.Pos[i], 1e-6) {
			t.Fatalf("particle %d: cell %d does not contain %v", i, st.Cell[i], st.Pos[i])
		}
	}
}

func TestGroupByCell(t *testing.T) {
	m := boxMesh(t)
	st := particle.NewStore(0)
	r := rng.New(7, 0)
	for k := 0; k < 500; k++ {
		p := geom.V(r.Float64(), r.Float64(), r.Float64())
		addParticle(st, m, p, geom.V(0, 0, 0), particle.Species(k%2))
	}
	groups := GroupByCell(st, m.NumCells(), nil)
	total := 0
	for c, grp := range groups {
		for _, i := range grp {
			if int(st.Cell[i]) != c {
				t.Fatalf("particle %d grouped into wrong cell", i)
			}
		}
		total += len(grp)
	}
	if total != 500 {
		t.Errorf("grouped %d of 500", total)
	}
	// Filtered grouping only counts matching species.
	neutralGroups := GroupByCell(st, m.NumCells(), Neutrals)
	nTotal := 0
	for _, grp := range neutralGroups {
		nTotal += len(grp)
	}
	if nTotal != 250 {
		t.Errorf("neutral groups hold %d, want 250", nTotal)
	}
}

func TestCollideConservesMomentumEnergy(t *testing.T) {
	m := boxMesh(t)
	st := particle.NewStore(0)
	r := rng.New(11, 0)
	for k := 0; k < 200; k++ {
		p := geom.V(r.Float64(), r.Float64(), r.Float64())
		vx, vy, vz := r.Maxwell(300, particle.HydrogenMass, 0, 0, 0)
		addParticle(st, m, p, geom.V(vx, vy, vz), particle.H)
	}
	momentum := func() geom.Vec3 {
		var s geom.Vec3
		for i := 0; i < st.Len(); i++ {
			s = s.Add(st.Vel[i].Scale(particle.InfoOf(st.Sp[i]).Mass))
		}
		return s
	}
	energy := func() float64 {
		var e float64
		for i := 0; i < st.Len(); i++ {
			e += 0.5 * particle.InfoOf(st.Sp[i]).Mass * st.Vel[i].Norm2()
		}
		return e
	}
	p0, e0 := momentum(), energy()
	co := NewCollider(m.NumCells(), 1e16, NoReactions{})
	groups := GroupByCell(st, m.NumCells(), nil)
	stats := co.Collide(st, groups, m.Volumes, 1e-5, r, nil)
	if stats.Collisions == 0 {
		t.Fatal("no collisions happened; increase Fn or dt")
	}
	p1, e1 := momentum(), energy()
	if geom.Dist(p0, p1) > 1e-9*p0.Norm()+1e-30 {
		t.Errorf("momentum drift: %v -> %v", p0, p1)
	}
	if math.Abs(e1-e0) > 1e-9*e0 {
		t.Errorf("energy drift: %v -> %v", e0, e1)
	}
}

func TestCollideRateScalesWithDensity(t *testing.T) {
	m := boxMesh(t)
	r := rng.New(13, 0)
	countCollisions := func(n int) int {
		st := particle.NewStore(0)
		for k := 0; k < n; k++ {
			p := geom.V(r.Float64(), r.Float64(), r.Float64())
			vx, vy, vz := r.Maxwell(300, particle.HydrogenMass, 0, 0, 0)
			addParticle(st, m, p, geom.V(vx, vy, vz), particle.H)
		}
		co := NewCollider(m.NumCells(), 1e15, NoReactions{})
		groups := GroupByCell(st, m.NumCells(), nil)
		return co.Collide(st, groups, m.Volumes, 1e-5, r, nil).Collisions
	}
	c1 := countCollisions(500)
	c2 := countCollisions(1000)
	// NTC collision count scales ~ N^2 at fixed volume: doubling N should
	// give ~4x (accept 2.5x-6x for statistical slack).
	ratio := float64(c2) / math.Max(float64(c1), 1)
	if ratio < 2.0 || ratio > 8.0 {
		t.Errorf("collision scaling ratio = %v (c1=%d c2=%d), want ~4", ratio, c1, c2)
	}
}

func TestVHSCrossSectionDecreasesWithSpeed(t *testing.T) {
	s1 := vhsCrossSection(particle.H, particle.H, 1000)
	s2 := vhsCrossSection(particle.H, particle.H, 10000)
	if s2 >= s1 {
		t.Errorf("VHS cross-section should fall with cr: %v -> %v", s1, s2)
	}
	if s1 <= 0 {
		t.Error("non-positive cross-section")
	}
	// Zero relative speed guard.
	if s := vhsCrossSection(particle.H, particle.H, 0); math.IsInf(s, 0) || math.IsNaN(s) {
		t.Errorf("cr=0 cross-section = %v", s)
	}
}

func TestIonizationRequiresThresholdEnergy(t *testing.T) {
	h := DefaultHydrogenReactions()
	h.IonizationProb = 1.0
	r := rng.New(17, 0)
	// Below threshold: never reacts.
	if _, _, _, ok := h.Attempt(particle.H, particle.H, 10*ElectronVolt, r); ok {
		t.Error("ionization below threshold")
	}
	// Above threshold with prob 1: always reacts, exactly one ion out.
	for k := 0; k < 50; k++ {
		a, b, dE, ok := h.Attempt(particle.H, particle.H, 20*ElectronVolt, r)
		if !ok {
			t.Fatal("ionization above threshold did not fire")
		}
		ions := 0
		if a == particle.HPlus {
			ions++
		}
		if b == particle.HPlus {
			ions++
		}
		if ions != 1 {
			t.Fatalf("ionization produced %d ions", ions)
		}
		if dE >= 0 {
			t.Fatal("ionization should be endothermic")
		}
	}
}

func TestRecombination(t *testing.T) {
	h := DefaultHydrogenReactions()
	h.RecombProb = 1.0
	r := rng.New(19, 0)
	a, b, dE, ok := h.Attempt(particle.HPlus, particle.H, 0.01*ElectronVolt, r)
	if !ok || a != particle.H || b != particle.H || dE <= 0 {
		t.Errorf("recombination failed: %v %v %v %v", a, b, dE, ok)
	}
	// Fast ion: no recombination.
	if _, _, _, ok := h.Attempt(particle.HPlus, particle.H, 10*ElectronVolt, r); ok {
		t.Error("recombination at high energy")
	}
	// Symmetric order.
	a, b, _, ok = h.Attempt(particle.H, particle.HPlus, 0.01*ElectronVolt, r)
	if !ok || a != particle.H || b != particle.H {
		t.Error("recombination not symmetric in argument order")
	}
}

func TestReactionsChangeChargePopulation(t *testing.T) {
	m := boxMesh(t)
	st := particle.NewStore(0)
	r := rng.New(23, 0)
	// Hot beam collisions exceed 13.6 eV: 0.5*mr*cr^2 with cr~2*v for
	// counter-propagating beams; v = 60 km/s gives ~7e-18 J ~ 45 eV.
	for k := 0; k < 400; k++ {
		p := geom.V(r.Float64(), r.Float64(), r.Float64())
		v := 60000.0
		if k%2 == 0 {
			v = -60000.0
		}
		addParticle(st, m, p, geom.V(v, 0, 0), particle.H)
	}
	co := NewCollider(m.NumCells(), 1e16, DefaultHydrogenReactions())
	groups := GroupByCell(st, m.NumCells(), nil)
	stats := co.Collide(st, groups, m.Volumes, 1e-5, r, nil)
	if stats.Reactions == 0 {
		t.Fatalf("no reactions (collisions=%d)", stats.Collisions)
	}
	if st.CountCharged() == 0 {
		t.Error("reactions did not produce ions")
	}
}

func TestNoReactionsModel(t *testing.T) {
	r := rng.New(29, 0)
	a, b, dE, ok := NoReactions{}.Attempt(particle.H, particle.H, 100*ElectronVolt, r)
	if ok || dE != 0 || a != particle.H || b != particle.H {
		t.Error("NoReactions reacted")
	}
}

func BenchmarkMove10k(b *testing.B) {
	m, err := mesh.Nozzle(4, 8, 0.05, 0.2)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(1, 0)
	st := particle.NewStore(0)
	for st.Len() < 10000 {
		p := geom.V(0.09*(r.Float64()-0.5), 0.09*(r.Float64()-0.5), 0.2*r.Float64())
		cell := m.FindCellBrute(p)
		if cell < 0 {
			continue
		}
		vx, vy, vz := r.Maxwell(300, particle.HydrogenMass, 0, 0, 2000)
		st.Append(particle.Particle{Pos: p, Vel: geom.V(vx, vy, vz), Sp: particle.H, Cell: int32(cell)})
	}
	wall := WallModel{Kind: DiffuseWall, Temperature: 300}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Move(st, m, 1e-7, wall, nil, r, nil, nil)
	}
}

func BenchmarkCollide10k(b *testing.B) {
	m, err := mesh.Box(4, 4, 4, 1, 1, 1)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(1, 0)
	st := particle.NewStore(0)
	for k := 0; k < 10000; k++ {
		p := geom.V(r.Float64(), r.Float64(), r.Float64())
		cell := m.FindCellBrute(p)
		vx, vy, vz := r.Maxwell(300, particle.HydrogenMass, 0, 0, 0)
		st.Append(particle.Particle{Pos: p, Vel: geom.V(vx, vy, vz), Sp: particle.H, Cell: int32(cell)})
	}
	co := NewCollider(m.NumCells(), 1e10, NoReactions{})
	groups := GroupByCell(st, m.NumCells(), nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		co.Collide(st, groups, m.Volumes, 1e-6, r, nil)
	}
}

// TestCollisionalRelaxationToMaxwellian is the classic DSMC verification:
// a strongly non-equilibrium (bimodal beam) velocity distribution must
// relax toward an isotropic Maxwellian under NTC/VHS collisions, while
// conserving momentum and energy. We verify isotropy (the directional
// temperatures converge) and the growth of entropy-like mixing.
func TestCollisionalRelaxationToMaxwellian(t *testing.T) {
	m, err := mesh.Box(2, 2, 2, 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(37, 0)
	st := particle.NewStore(0)
	const n = 4000
	const beam = 3000.0
	for k := 0; k < n; k++ {
		p := geom.V(r.Float64(), r.Float64(), r.Float64())
		v := beam
		if k%2 == 1 {
			v = -beam
		}
		// Counter-propagating beams along x with a little thermal jitter.
		vx, vy, vz := r.Maxwell(30, particle.HydrogenMass, v, 0, 0)
		st.Append(particle.Particle{Pos: p, Vel: geom.V(vx, vy, vz),
			Sp: particle.H, Cell: int32(m.FindCellBrute(p))})
	}
	dirTemp := func() (tx, ty, tz float64) {
		var sx, sy, sz float64
		for i := 0; i < st.Len(); i++ {
			sx += st.Vel[i].X * st.Vel[i].X
			sy += st.Vel[i].Y * st.Vel[i].Y
			sz += st.Vel[i].Z * st.Vel[i].Z
		}
		f := particle.HydrogenMass / (rng.KBoltzmann * float64(st.Len()))
		return sx * f, sy * f, sz * f
	}
	tx0, ty0, _ := dirTemp()
	if tx0 < 20*ty0 {
		t.Fatalf("initial anisotropy too weak: Tx=%v Ty=%v", tx0, ty0)
	}
	co := NewCollider(m.NumCells(), 1e16, NoReactions{})
	for sweep := 0; sweep < 30; sweep++ {
		groups := GroupByCell(st, m.NumCells(), nil)
		co.Collide(st, groups, m.Volumes, 1e-5, r, nil)
	}
	tx1, ty1, tz1 := dirTemp()
	// Equilibrated: directional temperatures within 15% of each other.
	mean := (tx1 + ty1 + tz1) / 3
	for _, tt := range []float64{tx1, ty1, tz1} {
		if math.Abs(tt-mean)/mean > 0.15 {
			t.Errorf("not isotropic after relaxation: Tx=%.0f Ty=%.0f Tz=%.0f", tx1, ty1, tz1)
		}
	}
	// Total energy conserved: sum of directional temps constant.
	if math.Abs((tx1+ty1+tz1)-(tx0+ty0+tz1))/(tx0+ty0) > 0.2 {
		// Loose check; exact energy conservation is asserted elsewhere.
		t.Logf("temps before %v after %v", tx0+ty0, tx1+ty1+tz1)
	}
}

// TestWallPressureMatchesIdealGas: an equilibrium gas in a closed box with
// specular walls must exert pressure n k T on the walls — a quantitative
// validation of the movement, reflection, and surface sampling machinery.
func TestWallPressureMatchesIdealGas(t *testing.T) {
	m, err := mesh.Box(2, 2, 2, 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	const (
		nPart  = 20000
		temp   = 300.0
		weight = 1e18 // real particles per simulation particle
	)
	r := rng.New(41, 0)
	st := particle.NewStore(nPart)
	for k := 0; k < nPart; k++ {
		p := geom.V(r.Float64(), r.Float64(), r.Float64())
		vx, vy, vz := r.Maxwell(temp, particle.HydrogenMass, 0, 0, 0)
		st.Append(particle.Particle{Pos: p, Vel: geom.V(vx, vy, vz),
			Sp: particle.H, Cell: int32(m.FindCellBrute(p))})
	}
	sampler := NewSurfaceSampler(m)
	wall := WallModel{
		Kind:    SpecularWall,
		Sampler: sampler,
		Weight:  func(particle.Species) float64 { return weight },
	}
	const dt = 2e-4
	for sweep := 0; sweep < 20; sweep++ {
		Move(st, m, dt, wall, nil, r, nil, nil)
		sampler.Advance(dt)
	}
	if st.Len() != nPart {
		t.Fatalf("particles escaped a closed box: %d left", st.Len())
	}
	got := sampler.MeanPressure()
	want := IdealGasPressure(nPart*weight/1.0, temp) // volume = 1 m^3
	if math.Abs(got-want)/want > 0.05 {
		t.Errorf("wall pressure %.4g Pa, ideal gas %.4g Pa (%.1f%% off)",
			got, want, 100*math.Abs(got-want)/want)
	}
	// Specular walls: no heat transfer.
	var heat float64
	for i := 0; i < sampler.NumFaces(); i++ {
		heat += math.Abs(sampler.HeatFlux(i))
	}
	if heat > 1e-6*got {
		t.Errorf("specular walls transferred heat: %v", heat)
	}
	// Reset clears everything.
	sampler.Reset()
	if sampler.MeanPressure() != 0 || sampler.SampledTime != 0 {
		t.Error("reset incomplete")
	}
}

// TestWallHeatFluxDiffuse: a hot gas against cold diffuse walls transfers
// energy into the walls (positive heat flux).
func TestWallHeatFluxDiffuse(t *testing.T) {
	m, err := mesh.Box(2, 2, 2, 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(43, 0)
	st := particle.NewStore(0)
	for k := 0; k < 5000; k++ {
		p := geom.V(r.Float64(), r.Float64(), r.Float64())
		vx, vy, vz := r.Maxwell(2000, particle.HydrogenMass, 0, 0, 0) // hot gas
		st.Append(particle.Particle{Pos: p, Vel: geom.V(vx, vy, vz),
			Sp: particle.H, Cell: int32(m.FindCellBrute(p))})
	}
	sampler := NewSurfaceSampler(m)
	wall := WallModel{Kind: DiffuseWall, Temperature: 100, Sampler: sampler}
	const dt = 2e-4
	for sweep := 0; sweep < 10; sweep++ {
		Move(st, m, dt, wall, nil, r, nil, nil)
		sampler.Advance(dt)
	}
	var total float64
	for i := 0; i < sampler.NumFaces(); i++ {
		total += sampler.HeatFlux(i) * sampler.Area[i]
	}
	if total <= 0 {
		t.Errorf("hot gas on cold walls: total heat %v, want > 0", total)
	}
}

func TestWallShearFromTangentialBeam(t *testing.T) {
	m, err := mesh.Box(2, 2, 2, 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(47, 0)
	st := particle.NewStore(0)
	// Particles near the x=1 wall moving mostly tangentially (+z) with a
	// small wall-ward drift: diffuse reflection absorbs their tangential
	// momentum, producing shear.
	for k := 0; k < 3000; k++ {
		p := geom.V(0.9+0.09*r.Float64(), r.Float64(), 0.2+0.6*r.Float64())
		st.Append(particle.Particle{Pos: p, Vel: geom.V(500, 0, 6000),
			Sp: particle.H, Cell: int32(m.FindCellBrute(p))})
	}
	sampler := NewSurfaceSampler(m)
	// Cold wall keeps the re-emission speed (and hence the outgoing normal
	// impulse) small relative to the absorbed tangential momentum.
	wall := WallModel{Kind: DiffuseWall, Temperature: 100, Sampler: sampler}
	const dt = 3e-4
	Move(st, m, dt, wall, nil, r, nil, nil)
	sampler.Advance(dt)
	// Find x=1 faces and check shear is substantial there.
	var shear, press float64
	for i := 0; i < sampler.NumFaces(); i++ {
		if sampler.Normal[i].X > 0.9 && sampler.Hits[i] > 0 {
			shear += sampler.Shear(i) * sampler.Area[i]
			press += sampler.Pressure(i) * sampler.Area[i]
		}
	}
	if shear <= 0 {
		t.Fatal("no shear recorded on the x=1 wall")
	}
	// Tangential speed is 12x the normal speed: shear should clearly
	// exceed pressure on these faces for diffuse accommodation.
	if shear < press {
		t.Errorf("shear %v should exceed pressure %v for a grazing beam", shear, press)
	}
}
