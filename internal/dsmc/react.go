package dsmc

import (
	"github.com/plasma-hpc/dsmcpic/internal/particle"
	"github.com/plasma-hpc/dsmcpic/internal/rng"
)

// ElectronVolt in joules.
const ElectronVolt = 1.602176634e-19

// ReactionModel decides whether an accepted collision between species a and
// b with collision energy ec (J) reacts, and if so what the products are
// and the reaction energy dE (J, negative = endothermic: energy removed
// from relative motion).
type ReactionModel interface {
	Attempt(a, b particle.Species, ec float64, r *rng.Rand) (newA, newB particle.Species, dE float64, ok bool)
}

// HydrogenReactions implements the two channels of the paper's plume
// chemistry (§VI-C: "the dissociation of H and the recombination of H+"),
// in the simplified TCE-style form documented in DESIGN.md:
//
//   - collisional ionization: H + H -> H + H+ (+e-, not tracked) when the
//     collision energy exceeds IonizationEnergy; the energy is absorbed.
//   - recombination: H+ + H -> H + H (the ion captures an electron from
//     the background; its charge neutralizes) for slow collisions below
//     RecombEnergy; the binding energy is released.
//
// Free electrons are not tracked as particles (the paper's solver also only
// simulates H and H+); charge bookkeeping happens through the species flip.
type HydrogenReactions struct {
	IonizationEnergy float64 // J, threshold for H + H -> H + H+
	IonizationProb   float64 // acceptance probability above threshold
	RecombEnergy     float64 // J, ceiling for H+ + H recombination
	RecombProb       float64 // acceptance probability below ceiling
}

// DefaultHydrogenReactions returns the model with the physical 13.6 eV
// ionization threshold and modest steric factors.
func DefaultHydrogenReactions() *HydrogenReactions {
	return &HydrogenReactions{
		IonizationEnergy: 13.6 * ElectronVolt,
		IonizationProb:   0.5,
		RecombEnergy:     0.2 * ElectronVolt,
		RecombProb:       0.1,
	}
}

// Attempt implements ReactionModel.
func (h *HydrogenReactions) Attempt(a, b particle.Species, ec float64, r *rng.Rand) (particle.Species, particle.Species, float64, bool) {
	switch {
	case a == particle.H && b == particle.H:
		if ec > h.IonizationEnergy && r.Float64() < h.IonizationProb {
			// One of the pair ionizes; pick uniformly for symmetry.
			if r.Float64() < 0.5 {
				return particle.HPlus, particle.H, -h.IonizationEnergy, true
			}
			return particle.H, particle.HPlus, -h.IonizationEnergy, true
		}
	case (a == particle.HPlus && b == particle.H) || (a == particle.H && b == particle.HPlus):
		if ec < h.RecombEnergy && r.Float64() < h.RecombProb {
			return particle.H, particle.H, +h.RecombEnergy, true
		}
	}
	return a, b, 0, false
}

// NoReactions is a ReactionModel that never reacts; useful for isolating
// collision mechanics in tests and ablations.
type NoReactions struct{}

// Attempt implements ReactionModel.
func (NoReactions) Attempt(a, b particle.Species, _ float64, _ *rng.Rand) (particle.Species, particle.Species, float64, bool) {
	return a, b, 0, false
}

// Outcome describes a reaction in the extended (number-changing) model.
type Outcome struct {
	// NewA / NewB replace the collision partners' species.
	NewA, NewB particle.Species
	// DE is the reaction energy added to the relative motion (J; negative
	// = endothermic).
	DE float64
	// SplitA, when true, dissociates partner A into two particles of
	// species NewA (NewA is duplicated); the pair shares A's momentum and
	// the post-reaction energy partition (e.g. H2 + M -> H + H + M).
	SplitA bool
	// MergeIntoA, when true, removes partner B and replaces A with NewA at
	// the pair's center-of-mass velocity (e.g. H + H -> H2).
	MergeIntoA bool
	// Swapped tells the collider the outcome's A/B roles refer to its
	// (j, i) pair order instead of (i, j); set by models that normalize
	// which partner splits.
	Swapped bool
}

// ExtendedReactionModel is a ReactionModel whose reactions may change the
// particle count (dissociation, recombination to molecules). The collider
// prefers this interface when implemented.
type ExtendedReactionModel interface {
	ReactionModel
	// AttemptEx returns the extended outcome of an accepted collision.
	AttemptEx(a, b particle.Species, ec float64, r *rng.Rand) (Outcome, bool)
}

// NeutralChemistry implements the neutral-particle combination and
// dissociation reactions of the paper's refs [24, 25] on top of the
// H/H+ channels of HydrogenReactions:
//
//   - dissociation: H2 + M -> H + H + M above DissociationEnergy
//     (endothermic; M is any partner);
//   - recombination: H + H -> H2 below RecombH2Energy (the third-body
//     energy sink is modeled by dropping the binding energy, documented
//     simplification);
//   - the ionization/recombination channels of HydrogenReactions for
//     H/H+ pairs.
type NeutralChemistry struct {
	Ionic *HydrogenReactions

	DissociationEnergy float64 // J, H2 + M threshold (4.52 eV)
	DissociationProb   float64
	RecombH2Energy     float64 // J, ceiling for H + H -> H2
	RecombH2Prob       float64
}

// DefaultNeutralChemistry returns the model with the physical 4.52 eV H2
// bond energy and modest steric factors.
func DefaultNeutralChemistry() *NeutralChemistry {
	return &NeutralChemistry{
		Ionic:              DefaultHydrogenReactions(),
		DissociationEnergy: 4.52 * ElectronVolt,
		DissociationProb:   0.5,
		RecombH2Energy:     0.3 * ElectronVolt,
		RecombH2Prob:       0.05,
	}
}

// Attempt implements the plain ReactionModel (species flips only) so the
// model still works with colliders unaware of the extended interface.
func (nc *NeutralChemistry) Attempt(a, b particle.Species, ec float64, r *rng.Rand) (particle.Species, particle.Species, float64, bool) {
	return nc.Ionic.Attempt(a, b, ec, r)
}

// AttemptEx implements ExtendedReactionModel.
func (nc *NeutralChemistry) AttemptEx(a, b particle.Species, ec float64, r *rng.Rand) (Outcome, bool) {
	switch {
	case a == particle.H2 || b == particle.H2:
		// Dissociation of the molecule by any partner.
		if ec > nc.DissociationEnergy && r.Float64() < nc.DissociationProb {
			out := Outcome{DE: -nc.DissociationEnergy, SplitA: true, NewA: particle.H}
			if a == particle.H2 {
				out.NewB = b
			} else {
				// Normalize: the splitting H2 takes the A role.
				out.NewB = a
				out.Swapped = true
			}
			return out, true
		}
	case a == particle.H && b == particle.H:
		if ec < nc.RecombH2Energy && r.Float64() < nc.RecombH2Prob {
			return Outcome{NewA: particle.H2, NewB: particle.H, DE: 0, MergeIntoA: true}, true
		}
		// Fall through to ionization at high energy.
		if na, nb, de, ok := nc.Ionic.Attempt(a, b, ec, r); ok {
			return Outcome{NewA: na, NewB: nb, DE: de}, true
		}
	default:
		if na, nb, de, ok := nc.Ionic.Attempt(a, b, ec, r); ok {
			return Outcome{NewA: na, NewB: nb, DE: de}, true
		}
	}
	return Outcome{NewA: a, NewB: b}, false
}
