package dsmc

import (
	"math"
	"testing"

	"github.com/plasma-hpc/dsmcpic/internal/geom"
	"github.com/plasma-hpc/dsmcpic/internal/mesh"
	"github.com/plasma-hpc/dsmcpic/internal/particle"
	"github.com/plasma-hpc/dsmcpic/internal/rng"
)

func TestH2SpeciesProperties(t *testing.T) {
	info := particle.InfoOf(particle.H2)
	if info.Mass != 2*particle.HydrogenMass {
		t.Error("H2 mass wrong")
	}
	if particle.H2.IsCharged() {
		t.Error("H2 should be neutral")
	}
	if !Neutrals(particle.H2) {
		t.Error("H2 not matched by Neutrals filter")
	}
}

func TestNeutralChemistryDissociationOutcome(t *testing.T) {
	nc := DefaultNeutralChemistry()
	nc.DissociationProb = 1
	r := rng.New(3, 0)
	// H2 in the A slot.
	out, ok := nc.AttemptEx(particle.H2, particle.H, 10*ElectronVolt, r)
	if !ok || !out.SplitA || out.Swapped || out.NewA != particle.H || out.NewB != particle.H {
		t.Errorf("dissociation A-slot: %+v ok=%v", out, ok)
	}
	if out.DE >= 0 {
		t.Error("dissociation should be endothermic")
	}
	// H2 in the B slot: roles swap.
	out, ok = nc.AttemptEx(particle.HPlus, particle.H2, 10*ElectronVolt, r)
	if !ok || !out.SplitA || !out.Swapped || out.NewA != particle.H || out.NewB != particle.HPlus {
		t.Errorf("dissociation B-slot: %+v ok=%v", out, ok)
	}
	// Below threshold: nothing.
	if _, ok := nc.AttemptEx(particle.H2, particle.H, 1*ElectronVolt, r); ok {
		t.Error("dissociation below threshold")
	}
}

func TestNeutralChemistryRecombinationOutcome(t *testing.T) {
	nc := DefaultNeutralChemistry()
	nc.RecombH2Prob = 1
	r := rng.New(5, 0)
	out, ok := nc.AttemptEx(particle.H, particle.H, 0.01*ElectronVolt, r)
	if !ok || !out.MergeIntoA || out.NewA != particle.H2 {
		t.Errorf("recombination: %+v ok=%v", out, ok)
	}
	// Hot H + H pair goes to the ionization channel instead.
	nc.Ionic.IonizationProb = 1
	out, ok = nc.AttemptEx(particle.H, particle.H, 20*ElectronVolt, r)
	if !ok || out.MergeIntoA || out.SplitA {
		t.Errorf("hot H+H should ionize: %+v ok=%v", out, ok)
	}
	ions := 0
	if out.NewA == particle.HPlus {
		ions++
	}
	if out.NewB == particle.HPlus {
		ions++
	}
	if ions != 1 {
		t.Errorf("ionization channel produced %d ions", ions)
	}
}

// chemStore builds a box of H2 molecules plus fast H impactors.
func chemStore(t *testing.T, m *mesh.Mesh, nMol, nFast int, seed uint64) *particle.Store {
	t.Helper()
	r := rng.New(seed, 0)
	st := particle.NewStore(0)
	for k := 0; k < nMol; k++ {
		p := geom.V(r.Float64(), r.Float64(), r.Float64())
		vx, vy, vz := r.Maxwell(300, 2*particle.HydrogenMass, 0, 0, 0)
		st.Append(particle.Particle{Pos: p, Vel: geom.V(vx, vy, vz),
			Sp: particle.H2, Cell: int32(m.FindCellBrute(p))})
	}
	for k := 0; k < nFast; k++ {
		p := geom.V(r.Float64(), r.Float64(), r.Float64())
		v := 40000.0 // 0.5*mr*cr^2 ~ 11 eV against cold H2 -> above 4.52 eV
		if k%2 == 0 {
			v = -v
		}
		st.Append(particle.Particle{Pos: p, Vel: geom.V(v, 0, 0),
			Sp: particle.H, Cell: int32(m.FindCellBrute(p))})
	}
	return st
}

func TestDissociationCreatesParticlesConservingMomentum(t *testing.T) {
	m := boxMesh(t)
	st := chemStore(t, m, 300, 300, 7)
	momentum := func() geom.Vec3 {
		var s geom.Vec3
		for i := 0; i < st.Len(); i++ {
			s = s.Add(st.Vel[i].Scale(particle.InfoOf(st.Sp[i]).Mass))
		}
		return s
	}
	p0 := momentum()
	n0 := st.Len()
	nc := DefaultNeutralChemistry()
	nc.DissociationProb = 1
	nc.RecombH2Prob = 0
	nc.Ionic.IonizationProb = 0
	nc.Ionic.RecombProb = 0
	co := NewCollider(m.NumCells(), 1e16, nc)
	groups := GroupByCell(st, m.NumCells(), nil)
	stats := co.Collide(st, groups, m.Volumes, 1e-5, rng.New(11, 0), nil)
	if stats.Created == 0 {
		t.Fatalf("no dissociations (collisions=%d)", stats.Collisions)
	}
	if st.Len() != n0+stats.Created-stats.Removed {
		t.Errorf("count bookkeeping: %d -> %d with created=%d removed=%d",
			n0, st.Len(), stats.Created, stats.Removed)
	}
	p1 := momentum()
	scale := p0.Norm() + 1e-30
	if geom.Dist(p0, p1) > 1e-9*scale {
		t.Errorf("momentum drift after dissociations: %v -> %v", p0, p1)
	}
	// H2 population decreased, H increased.
	counts := st.CountBySpecies()
	if counts[particle.H2] >= 300 {
		t.Errorf("H2 population did not shrink: %d", counts[particle.H2])
	}
}

func TestRecombinationRemovesParticlesConservingMomentum(t *testing.T) {
	m := boxMesh(t)
	// Cold, dense H gas recombines into H2.
	r := rng.New(13, 0)
	st := particle.NewStore(0)
	for k := 0; k < 800; k++ {
		p := geom.V(r.Float64(), r.Float64(), r.Float64())
		vx, vy, vz := r.Maxwell(150, particle.HydrogenMass, 0, 0, 0)
		st.Append(particle.Particle{Pos: p, Vel: geom.V(vx, vy, vz),
			Sp: particle.H, Cell: int32(m.FindCellBrute(p))})
	}
	momentum := func() geom.Vec3 {
		var s geom.Vec3
		for i := 0; i < st.Len(); i++ {
			s = s.Add(st.Vel[i].Scale(particle.InfoOf(st.Sp[i]).Mass))
		}
		return s
	}
	p0 := momentum()
	n0 := st.Len()
	nc := DefaultNeutralChemistry()
	nc.RecombH2Prob = 1
	nc.RecombH2Energy = 10 * ElectronVolt // accept everything
	nc.Ionic.IonizationProb = 0
	nc.Ionic.RecombProb = 0
	nc.DissociationProb = 0
	co := NewCollider(m.NumCells(), 1e16, nc)
	groups := GroupByCell(st, m.NumCells(), nil)
	stats := co.Collide(st, groups, m.Volumes, 1e-5, rng.New(17, 0), nil)
	if stats.Removed == 0 {
		t.Fatalf("no recombinations (collisions=%d)", stats.Collisions)
	}
	if st.Len() != n0-stats.Removed {
		t.Errorf("count bookkeeping: %d -> %d removed=%d", n0, st.Len(), stats.Removed)
	}
	p1 := momentum()
	if geom.Dist(p0, p1) > 1e-9*(p0.Norm()+1e-25) {
		t.Errorf("momentum drift after recombinations: %v -> %v", p0, p1)
	}
	if st.CountBySpecies()[particle.H2] != stats.Removed {
		t.Errorf("H2 created %d != removed %d", st.CountBySpecies()[particle.H2], stats.Removed)
	}
}

func TestChemistryMassConservation(t *testing.T) {
	m := boxMesh(t)
	st := chemStore(t, m, 400, 400, 19)
	mass := func() float64 {
		var s float64
		for i := 0; i < st.Len(); i++ {
			s += particle.InfoOf(st.Sp[i]).Mass
		}
		return s
	}
	m0 := mass()
	nc := DefaultNeutralChemistry()
	nc.DissociationProb = 1
	nc.RecombH2Prob = 1
	nc.RecombH2Energy = 0.5 * ElectronVolt
	co := NewCollider(m.NumCells(), 1e16, nc)
	r := rng.New(23, 0)
	for sweep := 0; sweep < 3; sweep++ {
		groups := GroupByCell(st, m.NumCells(), nil)
		co.Collide(st, groups, m.Volumes, 1e-5, r, nil)
	}
	if m1 := mass(); math.Abs(m1-m0) > 1e-9*m0 {
		t.Errorf("total mass drift: %v -> %v", m0, m1)
	}
}
