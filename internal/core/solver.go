package core

import (
	"fmt"

	"github.com/plasma-hpc/dsmcpic/internal/balance"
	"github.com/plasma-hpc/dsmcpic/internal/dsmc"
	"github.com/plasma-hpc/dsmcpic/internal/exchange"
	"github.com/plasma-hpc/dsmcpic/internal/geom"
	"github.com/plasma-hpc/dsmcpic/internal/mesh"
	"github.com/plasma-hpc/dsmcpic/internal/metrics"
	"github.com/plasma-hpc/dsmcpic/internal/parallel"
	"github.com/plasma-hpc/dsmcpic/internal/particle"
	"github.com/plasma-hpc/dsmcpic/internal/partition"
	"github.com/plasma-hpc/dsmcpic/internal/pic"
	"github.com/plasma-hpc/dsmcpic/internal/rng"
	"github.com/plasma-hpc/dsmcpic/internal/simmpi"
	"github.com/plasma-hpc/dsmcpic/internal/sparse"
)

// Solver is one rank's view of a running coupled simulation. Fields are
// exported for read-only use by OnStep probes.
type Solver struct {
	Cfg  Config
	Comm *simmpi.Comm
	Ref  *mesh.Refinement
	St   *particle.Store
	Bal  *balance.Balancer

	Stats RankStats

	collider *dsmc.Collider
	poisson  *pic.Poisson
	dist     *pic.DistSolver
	injector *particle.Injector
	injAlloc []int // particles per rank per unit budget (replicated)

	phi        []float64
	eField     []geom.Vec3
	ownedFine  []int32
	surf       *dsmc.SurfaceSampler
	wall       dsmc.WallModel
	nodeCharge []float64
	fineCell   []int32
	rng        *rng.Rand
	ownedNNZ   int64
	prevPhase  map[string]simmpi.PhaseStats
	inletFaces []inletFace

	// pool is this rank's worker pool for the hot particle kernels
	// (Config.Workers wide); the scratches below are its reusable
	// per-sweep buffers. Per rank — never shared.
	pool        *parallel.Pool
	moveScratch dsmc.MoveScratch
	depScratch  pic.DepositScratch

	// mr is this rank's metrics registry (nil when Config.Metrics is
	// unset; all Registry methods are nil-safe no-ops). The registry's
	// clock is injected at collector construction, so this package never
	// reads wall time itself.
	mr *metrics.Registry
}

// inletFace caches (cell, area) for deterministic injection allocation.
type inletFace struct {
	cell int32
	area float64
}

// Owner returns the current coarse-cell ownership (replicated; do not
// modify).
func (s *Solver) Owner() []int32 { return s.Bal.CellOwner }

// Phi returns the latest nodal potential. In the legacy exchange modes
// the vector is fully replicated after every solve; under
// pic.ExchangeOwnerLocal only owned and consumer nodes are fresh — call
// s.dist.GatherPhi (collective) first when the full vector is needed, as
// CaptureCheckpoint does.
func (s *Solver) Phi() []float64 { return s.phi }

// EField returns the latest per-fine-cell electric field.
func (s *Solver) EField() []geom.Vec3 { return s.eField }

// Surface returns this rank's wall surface sampler (nil unless
// Config.SampleSurfaces is set). Faces are indexed identically on every
// rank; reduce Impulse/Heat across ranks for global wall loads.
func (s *Solver) Surface() *dsmc.SurfaceSampler { return s.surf }

// LocalCellCounts returns this rank's particle count per coarse cell for
// the given species filter (nil = all).
func (s *Solver) LocalCellCounts(filter func(particle.Species) bool) []int64 {
	counts := make([]int64, s.Ref.Coarse.NumCells())
	for i := 0; i < s.St.Len(); i++ {
		if filter != nil && !filter(s.St.Sp[i]) {
			continue
		}
		counts[s.St.Cell[i]]++
	}
	return counts
}

// Shared is the immutable cross-rank state assembled once before Run.
type Shared struct {
	Ref     *mesh.Refinement
	Poisson *pic.Poisson
	Owner   []int32
	Xadj    []int32
	Adjncy  []int32
}

// Prepare performs the replicated setup: initial decomposition of the
// coarse grid (unweighted, as in the paper's first decomposition) and the
// Poisson assembly on the fine grid.
func Prepare(cfg Config, nRanks int) (*Shared, Config, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, c, err
	}
	xadj, adjncy := c.Ref.Coarse.DualGraph()
	owner := c.InitialOwner
	if owner == nil {
		parts, err := partition.PartGraphKway(
			&partition.Graph{Xadj: xadj, Adjncy: adjncy}, nRanks,
			partition.Options{Seed: c.Seed})
		if err != nil {
			return nil, c, err
		}
		owner = parts
	} else {
		// A restored ownership (e.g. from a checkpoint taken on a different
		// mesh or world size) must not be trusted blindly: validate the
		// length against the coarse mesh and every owner id against the
		// rank count before any rank indexes with it.
		if len(owner) != c.Ref.Coarse.NumCells() {
			return nil, c, fmt.Errorf("core: InitialOwner has %d entries for %d coarse cells — checkpoint from a different mesh?",
				len(owner), c.Ref.Coarse.NumCells())
		}
		for cell, o := range owner {
			if o < 0 || int(o) >= nRanks {
				return nil, c, fmt.Errorf("core: InitialOwner[%d] = %d outside the %d-rank world — checkpoint from a different world size?",
					cell, o, nRanks)
			}
		}
	}
	if c.Metrics != nil && c.Metrics.Size() != nRanks {
		return nil, c, fmt.Errorf("core: Config.Metrics collects %d ranks but the world has %d",
			c.Metrics.Size(), nRanks)
	}
	poisson, err := pic.NewPoisson(c.Ref.Fine, c.BC)
	if err != nil {
		return nil, c, err
	}
	return &Shared{Ref: c.Ref, Poisson: poisson, Owner: owner, Xadj: xadj, Adjncy: adjncy}, c, nil
}

// NewSolver builds one rank's solver over the shared state. cfg must be
// the config returned by Prepare.
func NewSolver(cfg Config, shared *Shared, comm *simmpi.Comm) (*Solver, error) {
	lbCfg := balance.Config{T: 1 << 30, Threshold: 1e30} // effectively off
	if cfg.LB != nil {
		lbCfg = *cfg.LB
		lbCfg.Strategy = cfg.Strategy
	}
	s := &Solver{
		Cfg:        cfg,
		Comm:       comm,
		Ref:        shared.Ref,
		St:         particle.NewStore(1024),
		Bal:        balance.New(lbCfg, shared.Owner, shared.Xadj, shared.Adjncy),
		poisson:    shared.Poisson,
		phi:        make([]float64, shared.Ref.Fine.NumNodes()),
		eField:     make([]geom.Vec3, shared.Ref.Fine.NumCells()),
		nodeCharge: make([]float64, shared.Ref.Fine.NumNodes()),
		rng:        rng.New(cfg.Seed, uint64(comm.Rank())+1),
		pool:       parallel.New(cfg.Workers),
		prevPhase:  make(map[string]simmpi.PhaseStats),
		mr:         cfg.Metrics.Rank(comm.Rank()),
	}
	s.Stats.Times = make(map[string]float64)
	s.Stats.Work = *NewWork()
	s.wall = cfg.Wall
	if cfg.SampleSurfaces {
		s.surf = dsmc.NewSurfaceSampler(shared.Ref.Coarse)
		s.wall.Sampler = s.surf
		s.wall.Weight = s.weightOf
	}
	// Cache the coarse inlet faces once for injection allocation.
	for _, cf := range s.Ref.Coarse.BoundaryFaces(mesh.Inlet) {
		s.inletFaces = append(s.inletFaces, inletFace{
			cell: cf[0],
			area: s.Ref.Coarse.Tet(int(cf[0])).FaceArea(int(cf[1])),
		})
	}
	if err := s.rebuildOwnershipState(); err != nil {
		return nil, err
	}
	s.collider = dsmc.NewCollider(s.Ref.Coarse.NumCells(), cfg.WeightH, cfg.Reactions)
	s.distributeInitialState()
	return s, nil
}

// rebuildOwnershipState refreshes everything derived from CellOwner: the
// injector, the injection allocation, and the distributed Poisson solver.
func (s *Solver) rebuildOwnershipState() error {
	me := int32(s.Comm.Rank())
	owner := s.Bal.CellOwner
	s.injector = particle.NewInjector(s.Ref.Coarse, func(c int32) bool { return owner[c] == me })
	// Deterministic largest-remainder allocation of the global injection
	// budget, proportional to owned inlet area (replicated computation).
	areas := make([]float64, s.Comm.Size())
	var total float64
	for _, f := range s.inletFaces {
		areas[owner[f.cell]] += f.area
		total += f.area
	}
	s.injAlloc = largestRemainder(areas, total)
	s.ownedFine = s.ownedFine[:0]
	for c := 0; c < s.Ref.Coarse.NumCells(); c++ {
		if owner[c] != me {
			continue
		}
		lo, hi := s.Ref.FineCells(c)
		for f := lo; f < hi; f++ {
			s.ownedFine = append(s.ownedFine, int32(f))
		}
	}
	nodeOwner := pic.NodeOwners(s.Ref, owner)
	var dist *pic.DistSolver
	var err error
	if s.Cfg.PoissonExchange == pic.ExchangeOwnerLocal {
		fineOwner := pic.FineCellOwners(s.Ref, owner)
		dist, err = pic.NewDistSolverOwnerLocal(s.poisson, nodeOwner, fineOwner, s.Comm.Size(), s.Comm.Rank())
	} else {
		dist, err = pic.NewDistSolver(s.poisson, nodeOwner, s.Comm.Size(), s.Comm.Rank(), s.Cfg.PoissonExchange)
	}
	if err != nil {
		return err
	}
	s.dist = dist
	// Owned-row nonzeros for the Poisson cost model.
	s.ownedNNZ = 0
	for _, node := range dist.OwnedNodes() {
		s.ownedNNZ += int64(s.poisson.K.RowPtr[node+1] - s.poisson.K.RowPtr[node])
	}
	return nil
}

// largestRemainder returns integer per-rank unit shares out of 1000
// proportional to areas (summing exactly to 1000), used to split the
// injection budget: rank r injects budget*share[r]/1000 (remainder to the
// largest shareholders).
func largestRemainder(areas []float64, total float64) []int {
	n := len(areas)
	shares := make([]int, n)
	if total <= 0 {
		return shares
	}
	const units = 1000
	type frac struct {
		idx int
		rem float64
	}
	fracs := make([]frac, n)
	used := 0
	for i, a := range areas {
		exact := float64(units) * a / total
		shares[i] = int(exact)
		used += shares[i]
		fracs[i] = frac{idx: i, rem: exact - float64(shares[i])}
	}
	// Distribute the remaining units to the largest remainders
	// (deterministic tie-break by index).
	for used < units {
		best := 0
		for i := 1; i < n; i++ {
			if fracs[i].rem > fracs[best].rem {
				best = i
			}
		}
		shares[fracs[best].idx]++
		fracs[best].rem = -1
		used++
	}
	return shares
}

// injectCount returns this rank's share of a global per-step budget.
func (s *Solver) injectCount(globalBudget int) int {
	share := s.injAlloc[s.Comm.Rank()]
	return globalBudget * share / 1000
}

// phaseDelta returns the traffic this rank sent in the named phase since
// the last call for that phase.
func (s *Solver) phaseDelta(name string) simmpi.PhaseStats {
	cur := s.Comm.Counter().Phase(name)
	prev := s.prevPhase[name]
	s.prevPhase[name] = cur
	return simmpi.PhaseStats{
		Messages: cur.Messages - prev.Messages,
		Bytes:    cur.Bytes - prev.Bytes,
		Local:    cur.Local - prev.Local,
	}
}

// destOf routes a particle to the owner of its cell.
func (s *Solver) destOf(i int) int { return int(s.Bal.CellOwner[s.St.Cell[i]]) }

// Step runs one DSMC timestep (paper Fig. 1 loop body) and records modeled
// component times. step is the 0-based index.
func (s *Solver) Step(step int) error {
	// Cancellation point: a canceled world aborts here before starting
	// more work; ranks blocked inside collectives abort at their next
	// receive instead. CheckCancel panics with *simmpi.CancelError, which
	// World.Run classifies as simmpi.ErrCanceled.
	s.Comm.CheckCancel()
	w := NewWork()
	w.CGOwnedNNZ = s.ownedNNZ
	traffic := make(map[string]simmpi.PhaseStats)
	s.mr.BeginStep(step)

	// ---- Inject ----
	stop := s.mr.Time(CompInject)
	nH := s.injectCount(s.Cfg.InjectHPerStep)
	nIon := s.injectCount(s.Cfg.InjectIonPerStep)
	s.injector.Inject(s.St, particle.SampleSpec{
		Sp: particle.H, Count: nH, Temperature: s.Cfg.Temperature, Drift: s.Cfg.Drift,
	}, s.rng)
	s.injector.Inject(s.St, particle.SampleSpec{
		Sp: particle.HPlus, Count: nIon, Temperature: s.Cfg.Temperature, Drift: s.Cfg.Drift,
	}, s.rng)
	w.Injected += int64(nH + nIon)
	stop()

	// ---- DSMC_Move (neutrals) ----
	stop = s.mr.Time(CompDSMCMove)
	ms := dsmc.Move(s.St, s.Ref.Coarse, s.Cfg.DtDSMC, s.wall, dsmc.Neutrals, s.rng, s.pool, &s.moveScratch)
	w.MoveStepsDSMC += int64(ms.Moved + ms.Crossings + ms.WallHits)
	if s.surf != nil {
		s.surf.Advance(s.Cfg.DtDSMC)
	}
	stop()

	// ---- DSMC_Exchange ----
	stop = s.mr.Time(CompDSMCExchange)
	s.Comm.SetPhase(CompDSMCExchange)
	exStats, err := exchange.Exchange(s.Comm, s.St, s.destOf, s.Cfg.Strategy)
	if err != nil {
		return err
	}
	s.Comm.SetPhase("")
	stop()
	traffic[CompDSMCExchange] = s.phaseDelta(CompDSMCExchange)
	w.PackedBytes[CompDSMCExchange] = traffic[CompDSMCExchange].Bytes
	s.Stats.MigratedDSMC += int64(exStats.Sent)

	// ---- Reindex ----
	stop = s.mr.Time(CompReindex)
	s.Comm.SetPhase(CompReindex)
	prefix := s.Comm.ExscanInt64([]int64{int64(s.St.Len())})[0]
	s.St.AssignIDs(prefix)
	s.Comm.SetPhase("")
	stop()
	traffic[CompReindex] = s.phaseDelta(CompReindex)
	w.Reindexed += int64(s.St.Len())

	// ---- Colli_React ----
	stop = s.mr.Time(CompColliReact)
	groups := dsmc.GroupByCell(s.St, s.Ref.Coarse.NumCells(), nil)
	cs := s.collider.Collide(s.St, groups, s.Ref.Coarse.Volumes, s.Cfg.DtDSMC, s.rng, s.pool)
	stop()
	w.Candidates += int64(cs.Candidates)
	w.Collisions += int64(cs.Collisions)
	s.Stats.Collisions += int64(cs.Collisions)
	s.Stats.Reactions += int64(cs.Reactions)
	s.Stats.CreatedParticles += int64(cs.Created)
	s.Stats.RemovedParticles += int64(cs.Removed)

	// ---- PIC substeps ----
	for sub := 0; sub < s.Cfg.PICSubsteps; sub++ {
		// Cancellation point: each substep runs exchanges and a full CG
		// solve, and a rank whose messages are already queued can sail
		// through all of them without ever blocking (the mailbox hands
		// over delivered messages without consulting the canceled flag).
		// Checking here bounds cancellation latency to one substep. Every
		// rank executes the same check, so the abort is symmetric and
		// replay-safe.
		s.Comm.CheckCancel()
		// PIC_Move: Boris kick with the previous substep's field, then
		// ballistic movement of charged particles.
		stop = s.mr.Time(CompPICMove)
		s.locateCharged()
		pushed := 0
		for i := 0; i < s.St.Len(); i++ {
			if s.St.Sp[i].IsCharged() {
				pushed++
			}
		}
		pic.BorisPush(s.St, s.eField, s.fineCell, s.Cfg.BField, s.Cfg.DtPIC, s.pool)
		w.Pushed += int64(pushed)
		w.Deposited += int64(pushed) // pre-kick field gather locate
		msp := dsmc.Move(s.St, s.Ref.Coarse, s.Cfg.DtPIC, s.wall, dsmc.Charged, s.rng, s.pool, &s.moveScratch)
		w.MoveStepsPIC += int64(msp.Moved + msp.Crossings + msp.WallHits)
		stop()

		// PIC_Exchange.
		stop = s.mr.Time(CompPICExchange)
		s.Comm.SetPhase(CompPICExchange)
		exp, err := exchange.Exchange(s.Comm, s.St, s.destOf, s.Cfg.Strategy)
		if err != nil {
			return err
		}
		s.Comm.SetPhase("")
		stop()
		s.Stats.MigratedPIC += int64(exp.Sent)

		// Poisson_Solve: deposit, reduce, distributed CG, field update.
		// The deposit is additionally timed as its own nested sub-phase:
		// it scales with local particle count while the CG scales with
		// owned rows, and the trace should show which one moved.
		stop = s.mr.Time(CompPoisson)
		s.Comm.SetPhase(CompPoisson)
		stopDep := s.mr.Time(CompDeposit)
		for n := range s.nodeCharge {
			s.nodeCharge[n] = 0
		}
		s.locateCharged()
		pic.DepositCharge(s.St, s.Ref, s.weightOf, s.nodeCharge, s.fineCell, s.pool, &s.depScratch)
		stopDep()
		res, err := s.dist.Solve(s.Comm, s.nodeCharge, s.phi, sparse.SolveOptions{
			Tol: s.Cfg.PoissonTol, MaxIter: s.Cfg.PoissonMaxIter,
		})
		if err != nil {
			return err
		}
		s.poisson.ElectricFieldForCells(s.phi, s.ownedFine, s.eField)
		s.Comm.SetPhase("")
		stop()
		w.CGIterations += int64(res.Iterations)
		w.Deposited += int64(pushed)
		s.Stats.PoissonIters += int64(res.Iterations)
		s.Stats.PoissonResidual = res.Residual
		// Solver-convergence counters for the observability layer: a
		// regression that makes CG iterate more (or stall farther from
		// convergence) shows in the bench trajectory, not just wall time.
		// The residual rides as an integer count in 1e-15 units (counters
		// are int64); identical on all ranks — both come off allreduces.
		s.mr.Count(MetricPoissonIters, int64(res.Iterations))
		s.mr.Count(MetricPoissonResidualFemto, int64(res.Residual*1e15))
	}
	traffic[CompPICExchange] = s.phaseDelta(CompPICExchange)
	w.PackedBytes[CompPICExchange] = traffic[CompPICExchange].Bytes
	traffic[CompPoisson] = s.phaseDelta(CompPoisson)
	// Owner-local mode labels its once-per-solve boundary exchanges with
	// dedicated sub-phases (charge reduction, consumer phi assembly); fold
	// them into the Poisson component so the cost model and the rebalance
	// decision see the whole solve. Legacy modes never enter those phases,
	// so the deltas are zero and the fold leaves their byte streams — and
	// replay baselines — untouched.
	for _, sub := range []string{pic.PhasePoissonCharge, pic.PhasePoissonAssemble} {
		d := s.phaseDelta(sub)
		tp := traffic[CompPoisson]
		tp.Messages += d.Messages
		tp.Bytes += d.Bytes
		tp.Local += d.Local
		traffic[CompPoisson] = tp
	}
	// Resident solver footprint, as step-scoped gauges (levels: the state
	// only changes when a rebalance rebuilds the solver).
	rs := s.dist.ResidentState()
	s.mr.Gauge(GaugePoissonOwnedRows, int64(rs.OwnedRows))
	s.mr.Gauge(GaugePoissonGhostCols, int64(rs.GhostCols))
	s.mr.Gauge(GaugePoissonMatrixBytes, rs.MatrixBytes)
	s.mr.Gauge(GaugePoissonVectorBytes, rs.VectorBytes)
	s.mr.Gauge(GaugePoissonIndexMapBytes, rs.IndexMapBytes)

	// World-wide migration traffic for the congestion term of the cost
	// model (real codes allreduce profiling counters the same way). The
	// instrumentation traffic itself is unlabeled and stays out of the
	// component times.
	totals := s.reduceTotals(traffic, CompDSMCExchange, CompPICExchange, CompPoisson)

	// ---- Component times (modeled) ----
	times := s.Cfg.Cost.Times(w, traffic, totals, s.Comm.Size(), s.Cfg.Strategy == exchange.Distributed)

	// ---- Rebalance (Algorithm 1) ----
	if s.Cfg.LB != nil {
		st := balance.StepTimes{
			Total:     Total(times),
			Migration: times[CompDSMCExchange] + times[CompPICExchange],
			Poisson:   times[CompPoisson],
		}
		if s.Cfg.MeasuredLB {
			// Timer-augmented cost function: the lii decision runs on the
			// measured per-phase wall times of this step instead of the
			// modeled ones. Measured Total excludes the (not yet run)
			// rebalance phase, exactly like the modeled one at this point.
			mt := s.mr.StepPhaseSeconds()
			st = balance.StepTimes{
				Total: mt[CompInject] + mt[CompDSMCMove] + mt[CompDSMCExchange] +
					mt[CompReindex] + mt[CompColliReact] + mt[CompPICMove] +
					mt[CompPICExchange] + mt[CompPoisson],
				Migration: mt[CompDSMCExchange] + mt[CompPICExchange],
				Poisson:   mt[CompPoisson],
			}
		}
		stop = s.mr.Time(CompRebalance)
		res, err := s.Bal.MaybeRebalance(s.Comm, s.St, st)
		if err != nil {
			return err
		}
		s.Stats.LIIHistory = append(s.Stats.LIIHistory, res.LII)
		if res.Rebalanced {
			s.Stats.Rebalances++
			s.Stats.MigratedRebalance += int64(res.Migrated)
			if err := s.rebuildOwnershipState(); err != nil {
				return err
			}
			w.PartCells += int64(s.Ref.Coarse.NumCells())
			if s.Cfg.LB.UseKM {
				n3 := int64(s.Comm.Size())
				w.KMRanks3 += n3 * n3 * n3
			}
		}
		stop()
		traffic[CompRebalance] = s.phaseDelta(CompRebalance)
		traffic[rebalanceMigrate] = s.phaseDelta(rebalanceMigrate)
		w.PackedBytes[rebalanceMigrate] = traffic[rebalanceMigrate].Bytes
		totals[rebalanceMigrate] = s.reduceTotals(traffic, rebalanceMigrate)[rebalanceMigrate]
		// Recompute times including the rebalance component.
		times = s.Cfg.Cost.Times(w, traffic, totals, s.Comm.Size(), s.Cfg.Strategy == exchange.Distributed)
	}

	for k, v := range times {
		s.Stats.Times[k] += v
	}
	s.Stats.StepTotals = append(s.Stats.StepTotals, Total(times))
	s.Stats.ParticleHistory = append(s.Stats.ParticleHistory, s.St.Len())
	s.Stats.Work.Add(w)

	// Step counters for the observability layer: the population and the
	// per-phase traffic this rank actually put on the (simulated) wire,
	// straight off the simmpi counters' step deltas.
	s.mr.Count("particles", int64(s.St.Len()))
	for ph, tr := range traffic {
		if tr.Messages == 0 && tr.Bytes == 0 {
			continue
		}
		s.mr.Count("tx_msgs."+ph, tr.Messages)
		s.mr.Count("tx_bytes."+ph, tr.Bytes)
	}

	if s.Cfg.OnStep != nil {
		s.Cfg.OnStep(step, s)
	}
	// Field-snapshot window boundary: capture after the window's last
	// step, symmetrically on every rank (the capture is collective). Like
	// the OnStep probe's allreduce, the snapshot traffic is unlabeled —
	// it is instrumentation, not a modeled phase.
	if s.Cfg.SnapshotEvery > 0 && (step+1)%s.Cfg.SnapshotEvery == 0 {
		s.captureSnapshot(step)
	}
	s.mr.EndStep()
	return nil
}

// reduceTotals allreduces the given phases' (messages, bytes) across all
// ranks, returning per-phase world totals.
func (s *Solver) reduceTotals(traffic map[string]simmpi.PhaseStats, phases ...string) map[string]simmpi.PhaseStats {
	vals := make([]int64, 0, 2*len(phases))
	for _, ph := range phases {
		t := traffic[ph]
		vals = append(vals, t.Messages-t.Local, t.Bytes)
	}
	red := s.Comm.AllreduceInt64(vals)
	out := make(map[string]simmpi.PhaseStats, len(phases))
	for i, ph := range phases {
		out[ph] = simmpi.PhaseStats{Messages: red[2*i], Bytes: red[2*i+1]}
	}
	return out
}

// locateCharged refreshes s.fineCell for the current store contents. The
// point locations are independent per particle (disjoint fineCell writes,
// no RNG), so the sweep runs on the worker pool with identical results
// for every worker count.
func (s *Solver) locateCharged() {
	if cap(s.fineCell) < s.St.Len() {
		s.fineCell = make([]int32, s.St.Len())
	}
	s.fineCell = s.fineCell[:s.St.Len()]
	s.pool.Run(s.St.Len(), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			if !s.St.Sp[i].IsCharged() {
				s.fineCell[i] = -1
				continue
			}
			s.fineCell[i] = int32(s.Ref.FindFineCell(int(s.St.Cell[i]), s.St.Pos[i]))
		}
	})
}

func (s *Solver) weightOf(sp particle.Species) float64 {
	if sp.IsCharged() {
		return s.Cfg.WeightIon
	}
	return s.Cfg.WeightH
}

// Run executes the full coupled simulation on a world of ranks and returns
// aggregated statistics.
func Run(world *simmpi.World, cfg Config) (*RunStats, error) {
	shared, c, err := Prepare(cfg, world.Size())
	if err != nil {
		return nil, err
	}
	stats := &RunStats{Ranks: make([]RankStats, world.Size())}
	if c.Cancel != nil {
		select {
		case <-c.Cancel:
			// Already canceled: mark the world synchronously so not a
			// single step runs (no watcher race).
			world.Cancel()
		default:
			// Bridge the config's cancel channel onto the world: one
			// watcher goroutine per run, released when the run returns.
			// After world.Cancel() every rank unwinds at its next
			// cancellation point, so the watcher never outlives the Run
			// call by more than the select below.
			watchDone := make(chan struct{})
			defer close(watchDone)
			go func() {
				select {
				case <-c.Cancel:
					world.Cancel()
				case <-watchDone:
				}
			}()
		}
	}
	runErr := world.Run(func(comm *simmpi.Comm) {
		s, err := NewSolver(c, shared, comm)
		if err != nil {
			panic(err)
		}
		for step := 0; step < c.Steps; step++ {
			if err := s.Step(step); err != nil {
				panic(err)
			}
		}
		s.Stats.FinalParticles = s.St.Len()
		stats.Ranks[comm.Rank()] = s.Stats
	})
	if runErr != nil {
		return nil, runErr
	}
	stats.Counters = world.Counters()
	return stats, nil
}
