package core

import (
	"errors"
	"math"
	"strings"
	"testing"

	"github.com/plasma-hpc/dsmcpic/internal/simmpi"
)

// End-to-end recovery: a rank is killed mid-run via FaultPlan, and
// ResilientRun restores the last checkpoint and completes, with the final
// population statistically matching an undisturbed run.
func TestResilientRunRecoversFromRankFailure(t *testing.T) {
	ref := testRefinement(t)
	const ranks = 3

	clean := testConfig(ref)
	clean.Steps = 8
	cleanStats, err := Run(simmpi.NewWorld(ranks, simmpi.Options{}), clean)
	if err != nil {
		t.Fatal(err)
	}

	cfg := testConfig(ref)
	cfg.Steps = 8
	// Two Poisson phase entries per step (PICSubsteps=2): entry 11 kills
	// rank 1 during step 5, after the step-3 checkpoint exists.
	stats, rec, err := ResilientRun(cfg, ResilienceOptions{
		WorldSize: ranks,
		WorldOptions: simmpi.Options{
			Fault: &simmpi.FaultPlan{Rank: 1, AtPhase: CompPoisson, AtPhaseN: 11},
		},
		CheckpointEvery: 2,
		MaxRestarts:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Restarts == 0 {
		t.Fatal("fault injected but RecoveryStats.Restarts == 0")
	}
	if rec.Checkpoints < 2 {
		t.Errorf("Checkpoints = %d, want >= 2", rec.Checkpoints)
	}
	if rec.StepsReplayed < 1 {
		t.Errorf("StepsReplayed = %d, want >= 1 (failure struck after the last checkpoint)", rec.StepsReplayed)
	}
	if len(rec.FailedRanks) != 1 || rec.FailedRanks[0] != 1 {
		t.Errorf("FailedRanks = %v, want [1]", rec.FailedRanks)
	}
	// Particle conservation: the recovered run must end with a population
	// statistically matching the undisturbed one (RNG streams restart, so
	// agreement is statistical, not bitwise).
	nClean, nRec := cleanStats.TotalParticles(), stats.TotalParticles()
	if nRec == 0 {
		t.Fatal("recovered run lost all particles")
	}
	if math.Abs(float64(nClean-nRec))/float64(nClean) > 0.10 {
		t.Errorf("recovered population %d deviates from undisturbed %d by > 10%%", nRec, nClean)
	}
}

func TestResilientRunCleanPathTakesCheckpoints(t *testing.T) {
	ref := testRefinement(t)
	cfg := testConfig(ref)
	cfg.Steps = 6
	path := t.TempDir() + "/run.ckpt"
	stats, rec, err := ResilientRun(cfg, ResilienceOptions{
		WorldSize:       3,
		CheckpointEvery: 2,
		CheckpointPath:  path,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Restarts != 0 || len(rec.FailedRanks) != 0 {
		t.Errorf("clean run reported recovery: %+v", rec)
	}
	if rec.Checkpoints != 2 { // after steps 1 and 3 (step 5 is final, skipped)
		t.Errorf("Checkpoints = %d, want 2", rec.Checkpoints)
	}
	if stats.TotalParticles() == 0 {
		t.Error("no particles at end of clean resilient run")
	}
	// The persisted checkpoint must load and resume.
	cp, err := LoadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Step != 3 {
		t.Errorf("persisted checkpoint at step %d, want 3", cp.Step)
	}
	resumed := testConfig(ref)
	resumed.Steps = cfg.Steps - (cp.Step + 1)
	cp.Apply(&resumed)
	if _, err := Run(simmpi.NewWorld(3, simmpi.Options{}), resumed); err != nil {
		t.Fatalf("resume from persisted checkpoint: %v", err)
	}
}

func TestResilientRunRestartBudgetExhausted(t *testing.T) {
	ref := testRefinement(t)
	cfg := testConfig(ref)
	cfg.Steps = 6
	// The fault re-arms on every rebuilt world and fires immediately, so
	// the budget of 1 restart must be exhausted.
	_, rec, err := ResilientRun(cfg, ResilienceOptions{
		WorldSize: 3,
		WorldOptions: simmpi.Options{
			Fault: &simmpi.FaultPlan{Rank: 0, AtPhase: CompPoisson},
		},
		CheckpointEvery: 2,
		MaxRestarts:     1,
		RepeatFault:     true,
	})
	if err == nil {
		t.Fatal("repeated fault within budget 1 did not fail")
	}
	if !errors.Is(err, simmpi.ErrRankFailed) {
		t.Errorf("error %v does not classify as ErrRankFailed", err)
	}
	if !strings.Contains(err.Error(), "restart budget") {
		t.Errorf("error %v does not mention the restart budget", err)
	}
	if rec.Restarts != 1 {
		t.Errorf("Restarts = %d, want 1", rec.Restarts)
	}
}

func TestResilientRunDoesNotRetryUserErrors(t *testing.T) {
	ref := testRefinement(t)
	cfg := testConfig(ref)
	cfg.DtDSMC = -1 // invalid config: must fail fast, not burn restarts
	_, rec, err := ResilientRun(cfg, ResilienceOptions{WorldSize: 2})
	if err == nil {
		t.Fatal("invalid config accepted")
	}
	if rec.Restarts != 0 {
		t.Errorf("non-failure error consumed %d restarts", rec.Restarts)
	}
}

func TestBalanceRestoredOwnerCoversAllRanks(t *testing.T) {
	ref := testRefinement(t)
	cfg := testConfig(ref)
	var cp *Checkpoint
	cfg.Steps = 3
	cfg.OnStep = func(step int, s *Solver) {
		if step == 2 {
			if got := CaptureCheckpoint(s, step); got != nil {
				cp = got
			}
		}
	}
	if _, err := Run(simmpi.NewWorld(3, simmpi.Options{}), cfg); err != nil {
		t.Fatal(err)
	}
	const nRanks = 3
	owner, err := balanceRestoredOwner(cp, cfg, nRanks)
	if err != nil {
		t.Fatal(err)
	}
	if len(owner) != ref.Coarse.NumCells() {
		t.Fatalf("owner has %d entries for %d cells", len(owner), ref.Coarse.NumCells())
	}
	seen := make([]bool, nRanks)
	for _, o := range owner {
		if o < 0 || int(o) >= nRanks {
			t.Fatalf("owner id %d out of range", o)
		}
		seen[o] = true
	}
	for r, ok := range seen {
		if !ok {
			t.Errorf("rank %d owns no cells after restored-balance pass", r)
		}
	}
	// A checkpoint from a different mesh is rejected, not partitioned.
	bad := &Checkpoint{Step: cp.Step, Owner: cp.Owner[:len(cp.Owner)-1], Particles: cp.Particles, Phi: cp.Phi}
	if _, err := balanceRestoredOwner(bad, cfg, nRanks); err == nil {
		t.Error("mismatched owner table accepted")
	}
}
