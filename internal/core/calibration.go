package core

import (
	"encoding/json"
	"fmt"
	"os"
)

// CalibrationSchema identifies the calibration-profile JSON format.
const CalibrationSchema = "dsmcpic-calibration/v1"

// Calibration unit names: the JSON keys of CalibrationProfile.Units, each
// naming one CostModel per-unit compute cost.
const (
	UnitMoveStep  = "move_step"
	UnitInject    = "inject"
	UnitCandidate = "candidate"
	UnitCollision = "collision"
	UnitReindex   = "reindex"
	UnitDeposit   = "deposit"
	UnitPush      = "push"
	UnitCGRowNNZ  = "cg_row_nnz"
)

// CalibrationProfile holds measured per-unit compute costs fitted from a
// benchmark's wall-clock phase timers (cmd/bench -calibrate). The built-in
// DefaultCostModel units are hand-calibrated against the paper's Table IV
// *fractions*; a profile replaces them with least-squares fits against this
// host's actual timers, so modeled seconds track the machine the daemon
// runs on.
//
// Fitted units are host-absolute: they already include whatever compute
// factor the measuring host has, so Apply substitutes them verbatim rather
// than rescaling by Platform.ComputeFactor.
type CalibrationProfile struct {
	Schema string `json:"schema"`
	// Source names the bench result file the fit came from.
	Source string `json:"source,omitempty"`
	// FittedAt is an RFC 3339 timestamp (informational only).
	FittedAt string `json:"fitted_at,omitempty"`

	// Units maps unit names (Unit* constants) to fitted seconds. Units
	// absent from the map (or non-positive) keep their built-in values —
	// a partial fit degrades gracefully.
	Units map[string]float64 `json:"units"`

	// Residuals maps fitted phase names to the relative RMS misfit of the
	// reconstruction (0 = perfect). Informational: consumers may warn on
	// large residuals but the fit is applied regardless.
	Residuals map[string]float64 `json:"residuals,omitempty"`
}

// Apply returns cm with every positively-fitted unit cost substituted.
func (p *CalibrationProfile) Apply(cm CostModel) CostModel {
	if p == nil {
		return cm
	}
	set := func(dst *float64, unit string) {
		if v, ok := p.Units[unit]; ok && v > 0 {
			*dst = v
		}
	}
	set(&cm.MoveStep, UnitMoveStep)
	set(&cm.Inject, UnitInject)
	set(&cm.Candidate, UnitCandidate)
	set(&cm.Collision, UnitCollision)
	set(&cm.Reindex, UnitReindex)
	set(&cm.Deposit, UnitDeposit)
	set(&cm.Push, UnitPush)
	set(&cm.CGRowNNZ, UnitCGRowNNZ)
	return cm
}

// Validate checks the schema tag and that at least one unit is usable.
func (p *CalibrationProfile) Validate() error {
	if p.Schema != CalibrationSchema {
		return fmt.Errorf("core: calibration schema %q, want %q", p.Schema, CalibrationSchema)
	}
	for _, v := range p.Units {
		if v > 0 {
			return nil
		}
	}
	return fmt.Errorf("core: calibration profile has no positive units")
}

// LoadCalibrationFile reads and validates a calibration profile.
func LoadCalibrationFile(path string) (*CalibrationProfile, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var p CalibrationProfile
	if err := json.Unmarshal(blob, &p); err != nil {
		return nil, fmt.Errorf("core: parse calibration %s: %v", path, err)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &p, nil
}
