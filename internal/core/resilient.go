package core

import (
	"errors"
	"fmt"
	"sync"

	"github.com/plasma-hpc/dsmcpic/internal/partition"
	"github.com/plasma-hpc/dsmcpic/internal/simmpi"
)

// ResilientRun wraps Run with automatic checkpoint/restart recovery: the
// run takes a collective checkpoint every CheckpointEvery steps, and when
// a rank failure is detected (errors.Is(err, simmpi.ErrRankFailed) — e.g.
// injected via simmpi.FaultPlan), it rebuilds a fresh world, restores the
// last good checkpoint, re-runs the initial balance pass over the restored
// population, and resumes the remaining steps — up to MaxRestarts times.

// ResilienceOptions configures ResilientRun.
type ResilienceOptions struct {
	// WorldSize is the number of simulated ranks. Required.
	WorldSize int
	// WorldOptions configures every world built by the driver; its Fault
	// plan (if any) is cleared after the first failure unless RepeatFault
	// is set, modeling a failed node replaced by a healthy one.
	WorldOptions simmpi.Options
	// CheckpointEvery takes a collective checkpoint after every K-th step
	// (default 10).
	CheckpointEvery int
	// MaxRestarts bounds the recovery budget (default 3; a run failing
	// more than this returns the failure). Zero is replaced by the
	// default; use -1 to forbid restarts entirely.
	MaxRestarts int
	// CheckpointPath, when non-empty, additionally persists every
	// checkpoint to this file via the atomic SaveFile, so an out-of-process
	// crash can be resumed with LoadCheckpointFile + Checkpoint.Apply.
	CheckpointPath string
	// RepeatFault keeps the injected FaultPlan armed on rebuilt worlds
	// (for exercising restart-budget exhaustion).
	RepeatFault bool
}

// RecoveryStats records what the resilience machinery did during one
// ResilientRun.
type RecoveryStats struct {
	// Checkpoints is the number of collective checkpoints captured.
	Checkpoints int
	// Restarts is the number of world rebuilds after detected failures.
	Restarts int
	// StepsReplayed counts completed steps whose work was lost to a
	// failure and re-run after restoring an earlier checkpoint.
	StepsReplayed int
	// FailedRanks accumulates the failed rank ids over all attempts.
	FailedRanks []int
}

// defaultCheckpointEvery and defaultMaxRestarts back the zero values of
// ResilienceOptions.
const (
	defaultCheckpointEvery = 10
	defaultMaxRestarts     = 3
)

// ResilientRun executes cfg under the recovery loop described above. On
// success it returns the statistics of the final (completed) attempt —
// per-step histories therefore cover the resumed segment — together with
// the recovery record. A non-failure error (bad config, user panic, a
// genuine deadlock) aborts immediately without a restart.
func ResilientRun(cfg Config, opts ResilienceOptions) (*RunStats, *RecoveryStats, error) {
	rec := &RecoveryStats{}
	if opts.WorldSize <= 0 {
		return nil, rec, fmt.Errorf("core: ResilienceOptions.WorldSize must be positive")
	}
	every := opts.CheckpointEvery
	if every <= 0 {
		every = defaultCheckpointEvery
	}
	maxRestarts := opts.MaxRestarts
	if maxRestarts == 0 {
		maxRestarts = defaultMaxRestarts
	} else if maxRestarts < 0 {
		maxRestarts = 0
	}
	if cfg.Steps <= 0 {
		cfg.Steps = 100 // mirror withDefaults so global step accounting is stable
	}
	totalSteps := cfg.Steps
	userOnStep := cfg.OnStep
	wopts := opts.WorldOptions

	var last *Checkpoint // last good checkpoint (nil: restart from scratch)
	base := 0            // global step index of the attempt's first step
	for {
		acfg := cfg
		acfg.Steps = totalSteps - base
		if last != nil {
			last.Apply(&acfg)
			// The restored population is in general nothing like the
			// unweighted first decomposition — re-run the initial balance
			// pass over it so the resumed run starts balanced instead of
			// inheriting pre-failure ownership verbatim.
			owner, err := balanceRestoredOwner(last, acfg, opts.WorldSize)
			if err != nil {
				return nil, rec, err
			}
			acfg.InitialOwner = owner
		}

		// Per-attempt shared state, written under mu: the pending
		// checkpoint (rank 0) and the highest globally completed step.
		var mu sync.Mutex
		var pending *Checkpoint
		var saveErr error
		maxStep := base - 1
		acfg.OnStep = func(step int, s *Solver) {
			g := base + step
			if (g+1)%every == 0 && g != totalSteps-1 {
				cp := CaptureCheckpoint(s, g) // collective; non-nil on rank 0 only
				if cp != nil {
					mu.Lock()
					pending = cp
					rec.Checkpoints++
					mu.Unlock()
					if opts.CheckpointPath != "" {
						if err := cp.SaveFile(opts.CheckpointPath); err != nil {
							mu.Lock()
							if saveErr == nil {
								saveErr = err
							}
							mu.Unlock()
						}
					}
				}
			}
			mu.Lock()
			if g > maxStep {
				maxStep = g
			}
			mu.Unlock()
			if userOnStep != nil {
				userOnStep(g, s)
			}
		}

		world := simmpi.NewWorld(opts.WorldSize, wopts)
		stats, err := Run(world, acfg)
		if err == nil {
			return stats, rec, saveErr
		}
		if !errors.Is(err, simmpi.ErrRankFailed) {
			// Bad config, user panic, genuine deadlock, or a cooperative
			// cancellation: not recoverable (or not meant to be recovered)
			// by restarting.
			return nil, rec, err
		}
		if rep := world.Report(); rep != nil {
			rec.FailedRanks = append(rec.FailedRanks, rep.Failed...)
		}
		if rec.Restarts >= maxRestarts {
			return nil, rec, fmt.Errorf("core: restart budget (%d) exhausted: %w", maxRestarts, err)
		}
		rec.Restarts++

		// Resume from the freshest checkpoint this attempt produced (it
		// may be nil on a very early failure: then replay from the last
		// known-good one, or from scratch).
		if pending != nil {
			last = pending
		}
		newBase := 0
		if last != nil {
			newBase = last.Step + 1
		}
		if lost := maxStep - newBase + 1; lost > 0 {
			rec.StepsReplayed += lost
		}
		base = newBase
		if !opts.RepeatFault {
			wopts.Fault = nil
		}
	}
}

// balanceRestoredOwner re-runs the initial decomposition over a restored
// population: the coarse dual graph is partitioned with the paper's
// weighted load model (eq. 7) computed from the checkpointed particles,
// instead of the unweighted first decomposition used on a cold start.
func balanceRestoredOwner(cp *Checkpoint, cfg Config, nRanks int) ([]int32, error) {
	numCells := len(cp.Owner)
	if numCells != cfg.Ref.Coarse.NumCells() {
		return nil, fmt.Errorf("core: checkpoint has %d owner entries for %d coarse cells — checkpoint from a different mesh?",
			numCells, cfg.Ref.Coarse.NumCells())
	}
	neutral := make([]int64, numCells)
	charged := make([]int64, numCells)
	for i := 0; i < cp.Particles.Len(); i++ {
		c := cp.Particles.Cell[i]
		if int(c) < 0 || int(c) >= numCells {
			return nil, fmt.Errorf("core: checkpoint particle %d on invalid cell %d (mesh has %d)", i, c, numCells)
		}
		if cp.Particles.Sp[i].IsCharged() {
			charged[c]++
		} else {
			neutral[c]++
		}
	}
	r, wcell := 2.0, int64(1)
	if cfg.LB != nil {
		if cfg.LB.R > 0 {
			r = cfg.LB.R
		}
		if cfg.LB.WCell > 0 {
			wcell = cfg.LB.WCell
		}
	}
	wlm := make([]int64, numCells)
	for c := 0; c < numCells; c++ {
		wlm[c] = neutral[c] + int64(r*float64(charged[c])) + wcell
	}
	xadj, adjncy := cfg.Ref.Coarse.DualGraph()
	return partition.PartGraphKway(
		&partition.Graph{Xadj: xadj, Adjncy: adjncy, VWgt: wlm}, nRanks,
		partition.Options{Seed: cfg.Seed})
}
