package core

import (
	"fmt"

	"github.com/plasma-hpc/dsmcpic/internal/balance"
	"github.com/plasma-hpc/dsmcpic/internal/commcost"
	"github.com/plasma-hpc/dsmcpic/internal/dsmc"
	"github.com/plasma-hpc/dsmcpic/internal/exchange"
	"github.com/plasma-hpc/dsmcpic/internal/geom"
	"github.com/plasma-hpc/dsmcpic/internal/mesh"
	"github.com/plasma-hpc/dsmcpic/internal/metrics"
	"github.com/plasma-hpc/dsmcpic/internal/particle"
	"github.com/plasma-hpc/dsmcpic/internal/pic"
)

// Config describes one coupled DSMC/PIC simulation (paper §VI-C defaults).
type Config struct {
	// Ref holds the nested coarse (DSMC) and fine (PIC) grids. Required.
	Ref *mesh.Refinement

	// Steps is the number of DSMC timesteps (paper: 100).
	Steps int
	// PICSubsteps is the number of PIC substeps per DSMC step (paper: 2).
	PICSubsteps int
	// DtDSMC and DtPIC are the timestep sizes in seconds. DtPIC defaults
	// to DtDSMC / PICSubsteps.
	DtDSMC, DtPIC float64

	// InjectHPerStep / InjectIonPerStep are the *global* numbers of
	// simulation particles injected at the inlet each DSMC step, split
	// across ranks in proportion to owned inlet area.
	InjectHPerStep   int
	InjectIonPerStep int
	// Temperature (K) of injection and walls; Drift (m/s) of the inlet
	// beam along the inward normal (paper: 300 K, 10000 m/s).
	Temperature float64
	Drift       float64

	// WeightH / WeightIon are the species scaling factors (real particles
	// per simulation particle, paper Table I).
	WeightH, WeightIon float64

	// Wall selects the wall interaction model. Do not attach a
	// WallModel.Sampler here — it would be shared (and raced on) by every
	// rank; set SampleSurfaces instead and read the per-rank sampler via
	// Solver.Surface.
	Wall dsmc.WallModel
	// SampleSurfaces enables per-rank wall surface sampling (pressure,
	// shear, heat flux) accessible from OnStep probes via Solver.Surface.
	SampleSurfaces bool
	// Strategy selects the particle-migration communication scheme.
	Strategy exchange.Strategy
	// LB enables the dynamic load balancer when non-nil.
	LB *balance.Config
	// Reactions is the collision chemistry (nil = no reactions).
	Reactions dsmc.ReactionModel
	// BField is the constant magnetic field (paper §III-C: zero or const).
	BField geom.Vec3

	// Cost converts work counts to modeled seconds.
	Cost CostModel
	// PoissonTol / PoissonMaxIter bound the distributed CG. PoissonTol is
	// the simulation-level tolerance (default 1e-8 — fields feed a pusher,
	// not a linear-algebra benchmark); it deliberately sits above the
	// solvers' own shared zero-value default, sparse.DefaultTol.
	PoissonTol     float64
	PoissonMaxIter int
	// PoissonExchange selects how the distributed CG refreshes ghost
	// entries each iteration: pic.ExchangeHalo (the zero value and
	// default) ships only partition-boundary nodes point-to-point between
	// neighbouring row blocks; pic.ExchangeReplicated re-assembles the
	// full vector through rank 0 every iteration (the paper's Table IV
	// scalability-wall structure, kept for benchmark comparison);
	// pic.ExchangeOwnerLocal additionally makes the once-per-solve charge
	// reduction and phi assembly boundary-proportional and keeps only
	// owned CSR rows + a ghost layer resident per rank (DESIGN.md §6j) —
	// phi is then replicated only on demand (checkpoints, diagnostics)
	// via GatherPhi.
	PoissonExchange pic.ExchangeMode
	// BC sets the Poisson Dirichlet boundary values (default: all grounded).
	BC pic.BC

	// InitialOwner fixes the initial coarse-cell decomposition; nil runs
	// the unweighted partitioner (the paper's first decomposition).
	InitialOwner []int32
	// InitialParticles seeds the simulation with an existing population
	// (e.g. from a Checkpoint); each rank keeps the particles on cells it
	// owns. The store is read-only during Run.
	InitialParticles *particle.Store
	// InitialPhi seeds the nodal potential (from a Checkpoint).
	InitialPhi []float64
	// Seed drives every stochastic element (per-rank RNG streams, initial
	// partition).
	Seed uint64

	// Workers is the number of worker goroutines each rank uses inside the
	// hot particle kernels (movement, collisions, deposition, Boris push).
	// 0 or 1 (the default) is the exact legacy serial path. Runs are
	// byte-identical replays for a fixed (Seed, Workers) pair; different
	// Workers values are different — each individually deterministic —
	// stochastic trajectories, because per-chunk RNG streams and float
	// reduction orders depend on the chunk decomposition.
	Workers int

	// Metrics, when non-nil, receives per-rank wall-clock phase timings
	// and step counters (one metrics.Registry per rank; see the package
	// doc). Observe-only: attaching a collector does not change what the
	// solver computes or communicates — the replay regression runs with
	// one attached. Construct with metrics.NewCollector(worldSize, nil).
	Metrics *metrics.Collector

	// MeasuredLB substitutes the measured wall-clock per-phase times of
	// the current step for the modeled ones in the load balancer's lii
	// decision — the timer-augmented cost function (McDoniel &
	// Bientinesi): measured timers capture effects no analytic weight
	// model sees (cache behavior, host contention, platform jitter).
	// Requires Metrics. The trade-off is explicit: rebalance points then
	// depend on real time, so runs are no longer byte-identical replays
	// of each other (modeled times remain the default for that reason).
	MeasuredLB bool

	// Cancel, when non-nil, aborts the run cooperatively once the channel
	// is closed: every rank stops at its next cancellation point (the
	// check at the top of Solver.Step, or any blocking receive inside a
	// collective), rank goroutines unwind cleanly, and Run returns an
	// error matching errors.Is(err, simmpi.ErrCanceled). Close the
	// channel to cancel; sending on it is not sufficient.
	Cancel <-chan struct{}

	// OnStep, when set, is invoked by every rank after each DSMC step
	// (step is 0-based). The solver is quiescent during the call; probes
	// may use s.Comm for collective diagnostics, but every rank must then
	// participate symmetrically.
	OnStep func(step int, s *Solver)

	// SnapshotEvery, when positive, captures a FieldFrame (phi, density,
	// temperature — see snapshot.go) at the end of every SnapshotEvery-th
	// DSMC step and delivers it to OnSnapshot on rank 0. The capture is a
	// collective (a moments allreduce plus GatherPhi in owner-local
	// mode), executed symmetrically by every rank, and fully
	// deterministic: for a fixed (Config, Seed) the frame sequence
	// replays byte-identically. 0 (the default) disables capture.
	SnapshotEvery int
	// OnSnapshot receives captured frames on rank 0 only (SnapshotEvery
	// must be positive). The frame's slices are freshly allocated and
	// safe to retain. The solver is quiescent during the call; do not
	// issue communication from it.
	OnSnapshot func(frame FieldFrame)
}

// withDefaults validates and fills defaults, returning a copy.
func (c Config) withDefaults() (Config, error) {
	if c.Ref == nil {
		return c, fmt.Errorf("core: Config.Ref (nested grids) is required")
	}
	if c.Steps <= 0 {
		c.Steps = 100
	}
	if c.PICSubsteps <= 0 {
		c.PICSubsteps = 2
	}
	if c.DtDSMC <= 0 {
		return c, fmt.Errorf("core: DtDSMC must be positive")
	}
	if c.DtPIC <= 0 {
		c.DtPIC = c.DtDSMC / float64(c.PICSubsteps)
	}
	if c.Temperature <= 0 {
		c.Temperature = 300
	}
	if c.Drift == 0 {
		c.Drift = 10000
	}
	if c.WeightH <= 0 {
		c.WeightH = 1
	}
	if c.WeightIon <= 0 {
		c.WeightIon = 1
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.Cost.MoveStep == 0 {
		c.Cost = DefaultCostModel(commcost.Tianhe2, commcost.InnerFrame)
	}
	if c.PoissonTol <= 0 {
		c.PoissonTol = 1e-8
	}
	if c.PoissonMaxIter <= 0 {
		c.PoissonMaxIter = 500
	}
	if c.BC == nil {
		c.BC = pic.DefaultBC()
	}
	if c.Wall.Kind == dsmc.DiffuseWall && c.Wall.Temperature <= 0 {
		c.Wall.Temperature = c.Temperature
	}
	if c.MeasuredLB && c.Metrics == nil {
		return c, fmt.Errorf("core: MeasuredLB needs Config.Metrics (the measured times come from its timers)")
	}
	if c.SnapshotEvery < 0 {
		return c, fmt.Errorf("core: SnapshotEvery must be >= 0")
	}
	if c.SnapshotEvery > 0 && c.OnSnapshot == nil {
		return c, fmt.Errorf("core: SnapshotEvery needs Config.OnSnapshot to deliver the frames")
	}
	return c, nil
}
