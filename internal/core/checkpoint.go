package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"github.com/plasma-hpc/dsmcpic/internal/particle"
)

// Checkpoint captures the world state of a running simulation: the step
// index, the current cell ownership, every particle, and the nodal
// potential. Restarting from a checkpoint resumes the physics (particle
// positions/velocities/species, field) exactly; the per-rank RNG streams
// restart from the configured seed, so a resumed run is statistically —
// not bitwise — identical to an uninterrupted one.
type Checkpoint struct {
	Step      int
	Owner     []int32
	Particles *particle.Store
	Phi       []float64
}

// CaptureCheckpoint gathers the world state to rank 0 (other ranks return
// nil). Call it from an OnStep probe; it is collective.
func CaptureCheckpoint(s *Solver, step int) *Checkpoint {
	parts := s.Comm.Gatherv(0, s.St.EncodeAll())
	if s.Comm.Rank() != 0 {
		return nil
	}
	cp := &Checkpoint{
		Step:      step,
		Owner:     append([]int32(nil), s.Bal.CellOwner...),
		Particles: particle.NewStore(0),
		Phi:       append([]float64(nil), s.phi...),
	}
	for _, blob := range parts {
		if _, err := cp.Particles.DecodeAppend(blob); err != nil {
			// Encoded by this process; cannot be malformed.
			panic(err)
		}
	}
	return cp
}

var checkpointMagic = [8]byte{'d', 's', 'm', 'c', 'C', 'K', 'P', '1'}

// Save writes the checkpoint in the library's binary format.
func (cp *Checkpoint) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(checkpointMagic[:]); err != nil {
		return err
	}
	le := binary.LittleEndian
	var hdr [16]byte
	le.PutUint32(hdr[0:], uint32(cp.Step))
	le.PutUint32(hdr[4:], uint32(len(cp.Owner)))
	le.PutUint32(hdr[8:], uint32(cp.Particles.Len()))
	le.PutUint32(hdr[12:], uint32(len(cp.Phi)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	for _, o := range cp.Owner {
		le.PutUint32(hdr[:4], uint32(o))
		if _, err := bw.Write(hdr[:4]); err != nil {
			return err
		}
	}
	if _, err := bw.Write(cp.Particles.EncodeAll()); err != nil {
		return err
	}
	for _, v := range cp.Phi {
		le.PutUint64(hdr[:8], math.Float64bits(v))
		if _, err := bw.Write(hdr[:8]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadCheckpoint reads a checkpoint written by Save.
func LoadCheckpoint(r io.Reader) (*Checkpoint, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, err
	}
	if magic != checkpointMagic {
		return nil, fmt.Errorf("core: bad checkpoint magic %q", magic)
	}
	le := binary.LittleEndian
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	cp := &Checkpoint{Step: int(le.Uint32(hdr[0:]))}
	nOwner := int(le.Uint32(hdr[4:]))
	nParticles := int(le.Uint32(hdr[8:]))
	nPhi := int(le.Uint32(hdr[12:]))
	const maxEntities = 1 << 26
	if nOwner < 0 || nOwner > maxEntities || nParticles < 0 || nParticles > maxEntities ||
		nPhi < 0 || nPhi > maxEntities {
		return nil, fmt.Errorf("core: implausible checkpoint sizes")
	}
	// Grow incrementally: a corrupt header must not trigger giant
	// allocations before the body fails to materialize.
	for i := 0; i < nOwner; i++ {
		if _, err := io.ReadFull(br, hdr[:4]); err != nil {
			return nil, err
		}
		cp.Owner = append(cp.Owner, int32(le.Uint32(hdr[:4])))
	}
	cp.Particles = particle.NewStore(0)
	record := make([]byte, particle.EncodedSize(1))
	for i := 0; i < nParticles; i++ {
		if _, err := io.ReadFull(br, record); err != nil {
			return nil, err
		}
		if _, err := cp.Particles.DecodeAppend(record); err != nil {
			return nil, err
		}
	}
	for i := 0; i < nPhi; i++ {
		if _, err := io.ReadFull(br, hdr[:8]); err != nil {
			return nil, err
		}
		cp.Phi = append(cp.Phi, math.Float64frombits(le.Uint64(hdr[:8])))
	}
	return cp, nil
}

// Apply primes a config to resume from the checkpoint: ownership, particle
// population and potential are restored; cfg.Steps should be set to the
// remaining step count by the caller.
func (cp *Checkpoint) Apply(cfg *Config) {
	cfg.InitialOwner = cp.Owner
	cfg.InitialParticles = cp.Particles
	cfg.InitialPhi = cp.Phi
}

// distributeInitialState seeds the solver from Config.InitialParticles and
// Config.InitialPhi (if set): each rank keeps the particles whose cells it
// owns.
func (s *Solver) distributeInitialState() {
	if s.Cfg.InitialParticles != nil {
		me := int32(s.Comm.Rank())
		src := s.Cfg.InitialParticles
		for i := 0; i < src.Len(); i++ {
			if s.Bal.CellOwner[src.Cell[i]] == me {
				s.St.Append(src.Get(i))
			}
		}
	}
	if s.Cfg.InitialPhi != nil && len(s.Cfg.InitialPhi) == len(s.phi) {
		copy(s.phi, s.Cfg.InitialPhi)
		s.poisson.ElectricFieldForCells(s.phi, s.ownedFine, s.eField)
	}
}
