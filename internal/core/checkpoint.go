package core

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"

	"github.com/plasma-hpc/dsmcpic/internal/particle"
	"github.com/plasma-hpc/dsmcpic/internal/simmpi"
)

// Checkpoint captures the world state of a running simulation: the step
// index, the current cell ownership, every particle, and the nodal
// potential. Restarting from a checkpoint resumes the physics (particle
// positions/velocities/species, field) exactly; the per-rank RNG streams
// restart from the configured seed, so a resumed run is statistically —
// not bitwise — identical to an uninterrupted one.
type Checkpoint struct {
	Step      int
	Owner     []int32
	Particles *particle.Store
	Phi       []float64
}

// CaptureCheckpoint gathers the world state to rank 0 (other ranks return
// nil). Call it from an OnStep probe; it is collective.
//
// The gather runs as explicit point-to-point traffic on the checkpoint
// subsystem's own registry tag (simmpi.TagCheckpointGather) rather than
// through the generic Gatherv: checkpoint payloads can never cross-match
// a concurrent collective's internal rounds, and the traffic counters
// attribute the bytes to their own phase instead of the caller's.
func CaptureCheckpoint(s *Solver, step int) *Checkpoint {
	s.Comm.SetPhase(CompCheckpoint)
	defer s.Comm.SetPhase("")
	// Owner-local Poisson keeps phi fresh only at owned + consumer nodes;
	// the checkpointed potential must be the full vector, so replicate it
	// on demand (a no-op gather in the legacy modes, which keep phi
	// replicated after every solve). Collective: all ranks participate.
	s.dist.GatherPhi(s.Comm, s.phi)
	blob := s.St.EncodeAll()
	if s.Comm.Rank() != 0 {
		s.Comm.Send(0, simmpi.TagCheckpointGather, blob)
		return nil
	}
	parts := make([][]byte, s.Comm.Size())
	parts[0] = blob
	for r := 1; r < s.Comm.Size(); r++ {
		// Cancellation point: with many ranks' payloads already delivered,
		// the mailbox hands them over without consulting the canceled flag,
		// so an explicit check bounds how much of the gather a canceled
		// world still performs. CheckCancel is local (flag read, no
		// messages), so rank 0 checking alone cannot desynchronize ranks.
		s.Comm.CheckCancel()
		parts[r] = s.Comm.Recv(r, simmpi.TagCheckpointGather)
	}
	cp := &Checkpoint{
		Step:      step,
		Owner:     append([]int32(nil), s.Bal.CellOwner...),
		Particles: particle.NewStore(0),
		Phi:       append([]float64(nil), s.phi...),
	}
	for _, blob := range parts {
		if _, err := cp.Particles.DecodeAppend(blob); err != nil {
			// Encoded by this process; cannot be malformed.
			panic(err)
		}
	}
	return cp
}

// Checkpoint wire format: a 7-byte magic, one version byte, then the
// versioned body. Version 2 (current) appends a CRC32 (IEEE) footer over
// the body, so torn or bit-flipped files are rejected instead of loaded;
// version 1 (legacy, no CRC) is still readable.
var checkpointMagic = [7]byte{'d', 's', 'm', 'c', 'C', 'K', 'P'}

const (
	checkpointV1 = '1' // legacy: header + body, no integrity footer
	checkpointV2 = '2' // current: header + body + CRC32 footer
)

// Save writes the checkpoint in the current (version 2) binary format:
// magic, version byte, header, owner table, particle records, potential,
// and a CRC32 footer covering everything after the version byte.
func (cp *Checkpoint) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(checkpointMagic[:]); err != nil {
		return err
	}
	if err := bw.WriteByte(checkpointV2); err != nil {
		return err
	}
	crc := crc32.NewIEEE()
	mw := io.MultiWriter(bw, crc)
	le := binary.LittleEndian
	var hdr [16]byte
	le.PutUint32(hdr[0:], uint32(cp.Step))
	le.PutUint32(hdr[4:], uint32(len(cp.Owner)))
	le.PutUint32(hdr[8:], uint32(cp.Particles.Len()))
	le.PutUint32(hdr[12:], uint32(len(cp.Phi)))
	if _, err := mw.Write(hdr[:]); err != nil {
		return err
	}
	for _, o := range cp.Owner {
		le.PutUint32(hdr[:4], uint32(o))
		if _, err := mw.Write(hdr[:4]); err != nil {
			return err
		}
	}
	if _, err := mw.Write(cp.Particles.EncodeAll()); err != nil {
		return err
	}
	for _, v := range cp.Phi {
		le.PutUint64(hdr[:8], math.Float64bits(v))
		if _, err := mw.Write(hdr[:8]); err != nil {
			return err
		}
	}
	le.PutUint32(hdr[:4], crc.Sum32())
	if _, err := bw.Write(hdr[:4]); err != nil {
		return err
	}
	return bw.Flush()
}

// LoadCheckpoint reads a checkpoint written by Save. It accepts format
// versions 1 (legacy) and 2; version 2 bodies are verified against their
// CRC32 footer, and in both versions the stream must be fully consumed —
// truncation and trailing garbage are descriptive errors, not silent
// acceptance.
func LoadCheckpoint(r io.Reader) (*Checkpoint, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("core: checkpoint truncated reading magic: %w", err)
	}
	if !bytes.Equal(magic[:7], checkpointMagic[:]) {
		return nil, fmt.Errorf("core: bad checkpoint magic %q", magic)
	}
	version := magic[7]
	if version != checkpointV1 && version != checkpointV2 {
		return nil, fmt.Errorf("core: unsupported checkpoint version %q", version)
	}
	// In v2 every body byte also feeds the CRC; the footer is read from
	// the raw stream afterwards.
	crc := crc32.NewIEEE()
	var body io.Reader = br
	if version == checkpointV2 {
		body = io.TeeReader(br, crc)
	}
	le := binary.LittleEndian
	var hdr [16]byte
	if _, err := io.ReadFull(body, hdr[:]); err != nil {
		return nil, fmt.Errorf("core: checkpoint truncated reading header: %w", err)
	}
	cp := &Checkpoint{Step: int(le.Uint32(hdr[0:]))}
	nOwner := int(le.Uint32(hdr[4:]))
	nParticles := int(le.Uint32(hdr[8:]))
	nPhi := int(le.Uint32(hdr[12:]))
	const maxEntities = 1 << 26
	if nOwner < 0 || nOwner > maxEntities || nParticles < 0 || nParticles > maxEntities ||
		nPhi < 0 || nPhi > maxEntities {
		return nil, fmt.Errorf("core: implausible checkpoint sizes (%d owners, %d particles, %d phi)",
			nOwner, nParticles, nPhi)
	}
	// Grow incrementally: a corrupt header must not trigger giant
	// allocations before the body fails to materialize.
	for i := 0; i < nOwner; i++ {
		if _, err := io.ReadFull(body, hdr[:4]); err != nil {
			return nil, fmt.Errorf("core: checkpoint truncated in owner table (%d of %d read): %w", i, nOwner, err)
		}
		cp.Owner = append(cp.Owner, int32(le.Uint32(hdr[:4])))
	}
	cp.Particles = particle.NewStore(0)
	record := make([]byte, particle.EncodedSize(1))
	for i := 0; i < nParticles; i++ {
		if _, err := io.ReadFull(body, record); err != nil {
			return nil, fmt.Errorf("core: checkpoint truncated in particle records (%d of %d read): %w", i, nParticles, err)
		}
		if _, err := cp.Particles.DecodeAppend(record); err != nil {
			return nil, fmt.Errorf("core: checkpoint particle %d malformed: %w", i, err)
		}
	}
	for i := 0; i < nPhi; i++ {
		if _, err := io.ReadFull(body, hdr[:8]); err != nil {
			return nil, fmt.Errorf("core: checkpoint truncated in potential (%d of %d read): %w", i, nPhi, err)
		}
		cp.Phi = append(cp.Phi, math.Float64frombits(le.Uint64(hdr[:8])))
	}
	if version == checkpointV2 {
		want := crc.Sum32()
		if _, err := io.ReadFull(br, hdr[:4]); err != nil {
			return nil, fmt.Errorf("core: checkpoint truncated reading CRC footer: %w", err)
		}
		if got := le.Uint32(hdr[:4]); got != want {
			return nil, fmt.Errorf("core: checkpoint CRC mismatch (stored %08x, computed %08x): file is corrupt", got, want)
		}
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("core: checkpoint has trailing bytes after the %d declared particles — count inconsistent with byte stream", nParticles)
	}
	return cp, nil
}

// SaveFile atomically writes the checkpoint to path: the bytes land in a
// temporary file in the same directory, are synced, and are renamed over
// path, so a crash mid-write can never leave a half-written checkpoint
// under the published name.
func (cp *Checkpoint) SaveFile(path string) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = cp.Save(tmp); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadCheckpointFile reads a checkpoint previously written by SaveFile.
func LoadCheckpointFile(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	cp, err := LoadCheckpoint(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return cp, nil
}

// Apply primes a config to resume from the checkpoint: ownership, particle
// population and potential are restored; cfg.Steps should be set to the
// remaining step count by the caller. The restored ownership is validated
// against the mesh and the rank count when the solver consumes it (see
// Prepare).
func (cp *Checkpoint) Apply(cfg *Config) {
	cfg.InitialOwner = cp.Owner
	cfg.InitialParticles = cp.Particles
	cfg.InitialPhi = cp.Phi
}

// distributeInitialState seeds the solver from Config.InitialParticles and
// Config.InitialPhi (if set): each rank keeps the particles whose cells it
// owns.
func (s *Solver) distributeInitialState() {
	if s.Cfg.InitialParticles != nil {
		me := int32(s.Comm.Rank())
		src := s.Cfg.InitialParticles
		for i := 0; i < src.Len(); i++ {
			if s.Bal.CellOwner[src.Cell[i]] == me {
				s.St.Append(src.Get(i))
			}
		}
	}
	if s.Cfg.InitialPhi != nil && len(s.Cfg.InitialPhi) == len(s.phi) {
		copy(s.phi, s.Cfg.InitialPhi)
		s.poisson.ElectricFieldForCells(s.phi, s.ownedFine, s.eField)
	}
}
