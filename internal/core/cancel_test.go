package core

import (
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/plasma-hpc/dsmcpic/internal/simmpi"
)

// TestRunCancelMidRun closes the Config.Cancel channel from an OnStep
// probe and checks the run aborts with ErrCanceled instead of finishing
// its remaining steps.
func TestRunCancelMidRun(t *testing.T) {
	ref := testRefinement(t)
	cfg := testConfig(ref)
	cfg.Steps = 50 // far more than the run should complete

	cancel := make(chan struct{})
	var once sync.Once
	var lastStep int
	var mu sync.Mutex
	cfg.Cancel = cancel
	cfg.OnStep = func(step int, s *Solver) {
		mu.Lock()
		if step > lastStep {
			lastStep = step
		}
		mu.Unlock()
		if step == 1 {
			once.Do(func() { close(cancel) })
		}
	}

	world := simmpi.NewWorld(4, simmpi.Options{})
	_, err := Run(world, cfg)
	if !errors.Is(err, simmpi.ErrCanceled) {
		t.Fatalf("Run returned %v; want ErrCanceled", err)
	}
	mu.Lock()
	got := lastStep
	mu.Unlock()
	if got >= cfg.Steps-1 {
		t.Fatalf("run completed step %d of %d despite cancellation", got, cfg.Steps)
	}
}

// TestRunCancelLeaksNoGoroutines is the regression test for the abort
// path: after a canceled run, the goroutine count returns to baseline —
// no rank goroutine, watcher, or watchdog is left behind.
func TestRunCancelLeaksNoGoroutines(t *testing.T) {
	ref := testRefinement(t)
	baseline := runtime.NumGoroutine()

	for i := 0; i < 2; i++ {
		cfg := testConfig(ref)
		cfg.Steps = 50
		cancel := make(chan struct{})
		var once sync.Once
		cfg.Cancel = cancel
		cfg.OnStep = func(step int, s *Solver) {
			if step == 0 {
				once.Do(func() { close(cancel) })
			}
		}
		world := simmpi.NewWorld(4, simmpi.Options{})
		if _, err := Run(world, cfg); !errors.Is(err, simmpi.ErrCanceled) {
			t.Fatalf("iteration %d: Run returned %v; want ErrCanceled", i, err)
		}
	}

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		runtime.Gosched()
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked after canceled runs: baseline %d, now %d",
		baseline, runtime.NumGoroutine())
}

// TestRunCancelBeforeStart proves a pre-canceled config aborts without
// completing a single step.
func TestRunCancelBeforeStart(t *testing.T) {
	ref := testRefinement(t)
	cfg := testConfig(ref)
	cancel := make(chan struct{})
	close(cancel)
	cfg.Cancel = cancel
	stepped := false
	cfg.OnStep = func(step int, s *Solver) { stepped = true }

	world := simmpi.NewWorld(2, simmpi.Options{})
	_, err := Run(world, cfg)
	if !errors.Is(err, simmpi.ErrCanceled) {
		t.Fatalf("Run returned %v; want ErrCanceled", err)
	}
	if stepped {
		t.Fatal("OnStep fired on a run canceled before its first step")
	}
}

// TestResilientRunDoesNotRestartCanceled checks the recovery driver treats
// cancellation as terminal: no restart, no replay.
func TestResilientRunDoesNotRestartCanceled(t *testing.T) {
	ref := testRefinement(t)
	cfg := testConfig(ref)
	cfg.Steps = 30
	cancel := make(chan struct{})
	var once sync.Once
	cfg.Cancel = cancel
	cfg.OnStep = func(step int, s *Solver) {
		if step == 2 {
			once.Do(func() { close(cancel) })
		}
	}
	_, rec, err := ResilientRun(cfg, ResilienceOptions{
		WorldSize:       2,
		CheckpointEvery: 2,
	})
	if !errors.Is(err, simmpi.ErrCanceled) {
		t.Fatalf("ResilientRun returned %v; want ErrCanceled", err)
	}
	if rec.Restarts != 0 {
		t.Fatalf("ResilientRun restarted %d times after cancellation; want 0", rec.Restarts)
	}
}
