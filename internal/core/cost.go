// Package core couples the substrates into the paper's solver: the coupled
// DSMC/PIC timestep loop of Fig. 1 (Inject, DSMC_Move, DSMC_Exchange,
// Reindex, Colli_React, then R PIC substeps of PIC_Move, PIC_Exchange and
// Poisson_Solve, then Rebalance), per-rank work accounting, and the cost
// model that turns work counts and communication traffic into modeled
// per-component seconds for the evaluation tables.
package core

import (
	"sort"

	"github.com/plasma-hpc/dsmcpic/internal/commcost"
	"github.com/plasma-hpc/dsmcpic/internal/simmpi"
)

// Component names match the paper's Table IV rows ("Exc" spelled out).
const (
	CompInject       = "Inject"
	CompDSMCMove     = "DSMC_Move"
	CompDSMCExchange = "DSMC_Exchange"
	CompReindex      = "Reindex"
	CompColliReact   = "Colli_React"
	CompPICMove      = "PIC_Move"
	CompPICExchange  = "PIC_Exchange"
	CompPoisson      = "Poisson_Solve"
	CompRebalance    = "Rebalance"

	// CompDeposit is the charge-deposition sub-phase nested inside
	// Poisson_Solve. It exists for the observability layer only (timers,
	// traces): it is not a cost-model row and not listed in Components,
	// and its measured time is part of CompPoisson's, not additional.
	CompDeposit = "Deposit"

	// CompCheckpoint labels checkpoint-capture traffic (CaptureCheckpoint's
	// gather of particle payloads to rank 0). Like CompDeposit it is an
	// observability label only — not a cost-model row, not in Components —
	// but it keeps checkpoint bytes out of whatever solver phase happened
	// to be active when the OnStep probe fired.
	CompCheckpoint = "Checkpoint"
)

// rebalanceMigrate labels the rebalance's particle-migration traffic
// (balance.MigratePhase); its cost folds into CompRebalance.
const rebalanceMigrate = "Rebalance_Migrate"

// Components lists all component names in workflow order.
var Components = []string{
	CompInject, CompDSMCMove, CompDSMCExchange, CompReindex, CompColliReact,
	CompPICMove, CompPICExchange, CompPoisson, CompRebalance,
}

// CostModel converts work counts into modeled seconds. Ranks are
// goroutines sharing one host CPU, so wall time measured inside a rank is
// dominated by scheduler interleaving; deterministic work counting plus
// calibrated unit costs recovers meaningful per-rank times (DESIGN.md).
// Unit costs are single-core seconds on the reference platform (Tianhe-2
// class x86); Platform.ComputeFactor rescales them per machine.
type CostModel struct {
	Platform  commcost.Platform
	Placement commcost.Placement

	// Per-unit compute costs (seconds).
	MoveStep   float64 // one cell-traversal step of one particle
	Inject     float64 // one injected particle (flux-Maxwell sampling)
	Candidate  float64 // one NTC candidate pair
	Collision  float64 // one performed collision (on top of Candidate)
	Reindex    float64 // one particle renumbered
	Deposit    float64 // one charged particle deposited (locate + weights)
	Push       float64 // one Boris kick
	CGRowNNZ   float64 // one owned-row nonzero, per CG iteration
	PackByte   float64 // one byte packed/unpacked for migration
	PartCell   float64 // re-decomposition cost per coarse cell
	KMCubeRank float64 // Kuhn-Munkres cost per rank^3

	// ParticleScale and GridScale amplify the modeled work uniformly: the
	// reproduction simulates ~10^4x fewer particles and ~20x fewer grid
	// cells than the paper's runs while keeping the paper's rank counts,
	// which would distort every computation-to-communication ratio. The
	// model treats each simulated particle as ParticleScale paper
	// particles (particle work and migration bytes) and each grid entity
	// as GridScale paper entities (Poisson rows/bytes, partition cells).
	// Defaults are 1 (no amplification); the experiment harness sets
	// per-dataset values recorded in EXPERIMENTS.md.
	ParticleScale float64
	GridScale     float64

	// MigrationByteScale amplifies migration bytes (network + packing)
	// separately from ParticleScale: subdomains here hold far fewer cells
	// than the paper's, so the *fraction* of particles migrating per step
	// is several times larger; reusing ParticleScale would overstate
	// migration volume accordingly. Zero falls back to ParticleScale.
	// The calibration (within the bounds set by the paper's Table II and
	// Fig. 11 orderings) is recorded in EXPERIMENTS.md.
	MigrationByteScale float64

	// DCSyncFactor multiplies the per-message latency of the distributed
	// exchange strategy, modeling the serialization of its two-round
	// rank-ordered synchronized protocol (each rank's receives pipeline
	// behind all lower ranks' sends — paper §IV-B2). The centralized
	// strategy's gather/scatter has no such chain.
	DCSyncFactor float64
}

// DefaultCostModel returns unit costs calibrated in two stages: relative
// magnitudes from this library's microbenchmarks (geom.ExitFace,
// rng.FluxMaxwellInward, sparse.MulVec, particle codec) on a modern x86
// core, then adjusted so the component *fractions* of a DS2 run match the
// paper's Table IV profile (Inject dominating, DSMC_Move second,
// Poisson_Solve a few percent but flat with rank count). The calibration
// is recorded in EXPERIMENTS.md.
func DefaultCostModel(p commcost.Platform, pl commcost.Placement) CostModel {
	f := p.ComputeFactor
	return CostModel{
		Platform:   p,
		Placement:  pl,
		MoveStep:   80e-9 * f,
		Inject:     2e-6 * f,
		Candidate:  150e-9 * f,
		Collision:  120e-9 * f,
		Reindex:    12e-9 * f,
		Deposit:    350e-9 * f,
		Push:       35e-9 * f,
		CGRowNNZ:   4e-9 * f,
		PackByte:   1.2e-9 * f,
		PartCell:   2.5e-6 * f,
		KMCubeRank: 1.5e-9 * f,

		ParticleScale: 1,
		GridScale:     1,
		DCSyncFactor:  5,
	}
}

// Work accumulates one rank's per-component work counts.
type Work struct {
	MoveStepsDSMC int64
	MoveStepsPIC  int64
	Injected      int64
	Candidates    int64
	Collisions    int64
	Reindexed     int64
	Deposited     int64
	Pushed        int64
	CGIterations  int64
	CGOwnedNNZ    int64 // nnz of owned rows (constant per solver); cost = iter * this
	PackedBytes   map[string]int64
	PartCells     int64 // cells partitioned during rebalances
	KMRanks3      int64 // sum of ranks^3 over KM invocations
}

// NewWork returns an empty Work.
func NewWork() *Work {
	return &Work{PackedBytes: make(map[string]int64)}
}

// Add accumulates other into w.
func (w *Work) Add(other *Work) {
	w.MoveStepsDSMC += other.MoveStepsDSMC
	w.MoveStepsPIC += other.MoveStepsPIC
	w.Injected += other.Injected
	w.Candidates += other.Candidates
	w.Collisions += other.Collisions
	w.Reindexed += other.Reindexed
	w.Deposited += other.Deposited
	w.Pushed += other.Pushed
	w.CGIterations += other.CGIterations
	if other.CGOwnedNNZ > w.CGOwnedNNZ {
		w.CGOwnedNNZ = other.CGOwnedNNZ
	}
	w.PartCells += other.PartCells
	w.KMRanks3 += other.KMRanks3
	for k, v := range other.PackedBytes {
		w.PackedBytes[k] += v
	}
}

// Times converts work counts plus per-phase traffic into modeled seconds
// per component. traffic maps phase (component) name to this rank's sent
// messages/bytes for the step; totals, when non-nil, supplies the
// world-wide phase traffic used for the congestion term of the migration
// phases; n is the world size; dcExchange indicates the distributed
// exchange strategy (enables the two-round serialization factor).
func (cm *CostModel) Times(w *Work, traffic, totals map[string]simmpi.PhaseStats, n int, dcExchange bool) map[string]float64 {
	sp := cm.ParticleScale
	if sp <= 0 {
		sp = 1
	}
	sg := cm.GridScale
	if sg <= 0 {
		sg = 1
	}
	sm := cm.MigrationByteScale
	if sm <= 0 {
		sm = sp
	}
	commT := func(name string, byteScale float64) float64 {
		s := traffic[name]
		remote := s.Messages - s.Local
		if remote < 0 {
			remote = 0
		}
		return cm.Platform.CommTime(remote, int64(float64(s.Bytes)*byteScale), n, cm.Placement)
	}
	// Migration phases: particle-scaled bytes, the congestion share of the
	// global traffic, and the DC serialization factor on latency.
	migT := func(name string) float64 {
		s := traffic[name]
		remote := s.Messages - s.Local
		if remote < 0 {
			remote = 0
		}
		sync := 1.0
		if dcExchange && cm.DCSyncFactor > 0 {
			sync = cm.DCSyncFactor
		}
		tot := totals[name]
		return cm.Platform.CommTimeCongested(
			int64(float64(remote)*sync), int64(float64(s.Bytes)*sm),
			int64(float64(tot.Messages)*sync), int64(float64(tot.Bytes)*sm),
			n, cm.Placement)
	}
	t := make(map[string]float64, len(Components))
	t[CompInject] = float64(w.Injected) * sp * cm.Inject
	t[CompDSMCMove] = float64(w.MoveStepsDSMC) * sp * cm.MoveStep
	t[CompDSMCExchange] = float64(w.PackedBytes[CompDSMCExchange])*sm*cm.PackByte + migT(CompDSMCExchange)
	t[CompReindex] = float64(w.Reindexed)*sp*cm.Reindex + commT(CompReindex, 1)
	t[CompColliReact] = float64(w.Candidates)*sp*cm.Candidate + float64(w.Collisions)*sp*cm.Collision
	// Charge deposition and field gather are particle work (they scale
	// with local particle count, like movement), so they live in PIC_Move;
	// Poisson_Solve carries only the Krylov iteration compute and its
	// rank-count-independent communication — the paper's bottleneck
	// structure (Table IV).
	t[CompPICMove] = float64(w.MoveStepsPIC)*sp*cm.MoveStep + float64(w.Pushed)*sp*cm.Push +
		float64(w.Deposited)*sp*cm.Deposit
	t[CompPICExchange] = float64(w.PackedBytes[CompPICExchange])*sm*cm.PackByte + migT(CompPICExchange)
	// Poisson communication: the halo exchange is neighbour-structured —
	// every rank injects its boundary traffic concurrently — so the
	// network sees the world-wide phase volume and each rank pays its
	// congestion share (same treatment as the migration phases; the
	// replicated mode's rank-0 funnel shows up through its much larger
	// totals). Callers without world totals fall back to the direct cost.
	poiComm := commT(CompPoisson, sg)
	if tot, ok := totals[CompPoisson]; ok {
		s := traffic[CompPoisson]
		remote := s.Messages - s.Local
		if remote < 0 {
			remote = 0
		}
		poiComm = cm.Platform.CommTimeCongested(
			remote, int64(float64(s.Bytes)*sg),
			tot.Messages, int64(float64(tot.Bytes)*sg),
			n, cm.Placement)
	}
	t[CompPoisson] = float64(w.CGIterations)*float64(w.CGOwnedNNZ)*sg*cm.CGRowNNZ + poiComm
	// Rebalance = re-partitioning + KM (compute, grid-scaled) +
	// control-plane collectives (grid-sized data) + the bulk particle
	// migration (particle-scaled, like the regular exchanges).
	t[CompRebalance] = float64(w.PartCells)*sg*cm.PartCell + float64(w.KMRanks3)*cm.KMCubeRank +
		commT(CompRebalance, sg) +
		float64(w.PackedBytes[rebalanceMigrate])*sm*cm.PackByte + migT(rebalanceMigrate)
	return t
}

// Total sums a component-time map. Summation runs in sorted-key order:
// float addition is order-sensitive in its last bits, and step totals feed
// the lii balance decision, which must replay identically across runs
// (map iteration order would differ — caught by commvet/nondeterminism).
func Total(times map[string]float64) float64 {
	keys := make([]string, 0, len(times))
	for k := range times {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var s float64
	for _, k := range keys {
		s += times[k]
	}
	return s
}
