package core

import (
	"math"
	"testing"
)

func TestTotalTimeIsMaxPerStep(t *testing.T) {
	rs := &RunStats{Ranks: []RankStats{
		{StepTotals: []float64{1, 5, 2}},
		{StepTotals: []float64{3, 1, 1}},
	}}
	// Per-step max: 3, 5, 2 -> 10.
	if got := rs.TotalTime(); math.Abs(got-10) > 1e-12 {
		t.Errorf("TotalTime = %v, want 10", got)
	}
}

func TestTotalTimeEmpty(t *testing.T) {
	if got := (&RunStats{}).TotalTime(); got != 0 {
		t.Errorf("empty TotalTime = %v", got)
	}
}

func TestComponentTimeMax(t *testing.T) {
	rs := &RunStats{Ranks: []RankStats{
		{Times: map[string]float64{"A": 1, "B": 9}},
		{Times: map[string]float64{"A": 4, "B": 2}},
	}}
	if rs.ComponentTime("A") != 4 || rs.ComponentTime("B") != 9 {
		t.Errorf("ComponentTime wrong: A=%v B=%v", rs.ComponentTime("A"), rs.ComponentTime("B"))
	}
	if rs.ComponentTime("missing") != 0 {
		t.Error("missing component not zero")
	}
}

func TestTotalParticlesAndRebalances(t *testing.T) {
	rs := &RunStats{Ranks: []RankStats{
		{FinalParticles: 10, Rebalances: 3},
		{FinalParticles: 7, Rebalances: 3},
	}}
	if rs.TotalParticles() != 17 {
		t.Errorf("TotalParticles = %d", rs.TotalParticles())
	}
	if rs.Rebalances() != 3 {
		t.Errorf("Rebalances = %d", rs.Rebalances())
	}
	if (&RunStats{}).Rebalances() != 0 {
		t.Error("empty Rebalances not zero")
	}
}

func TestRaggedStepTotals(t *testing.T) {
	// A rank with fewer recorded steps must not panic TotalTime.
	rs := &RunStats{Ranks: []RankStats{
		{StepTotals: []float64{1, 2, 3}},
		{StepTotals: []float64{5}},
	}}
	if got := rs.TotalTime(); math.Abs(got-10) > 1e-12 { // 5, 2, 3
		t.Errorf("ragged TotalTime = %v, want 10", got)
	}
}
