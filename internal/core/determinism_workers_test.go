package core

import (
	"bytes"
	"testing"

	"github.com/plasma-hpc/dsmcpic/internal/simmpi"
)

// runToCheckpoint runs a short coupled simulation with the given kernel
// worker count and returns the final checkpoint blob.
func runToCheckpoint(t *testing.T, workers int) []byte {
	t.Helper()
	ref := testRefinement(t)
	cfg := testConfig(ref)
	cfg.Steps = 6
	cfg.Workers = workers
	var cpBlob bytes.Buffer
	cfg.OnStep = func(step int, s *Solver) {
		if step != cfg.Steps-1 {
			return
		}
		if cp := CaptureCheckpoint(s, step); cp != nil {
			if err := cp.Save(&cpBlob); err != nil {
				panic(err)
			}
		}
	}
	world := simmpi.NewWorld(2, simmpi.Options{})
	if _, err := Run(world, cfg); err != nil {
		t.Fatal(err)
	}
	if cpBlob.Len() == 0 {
		t.Fatal("no checkpoint captured")
	}
	return cpBlob.Bytes()
}

// TestReplayByteIdenticalWorkers extends the replay-determinism contract
// to the multicore kernels: for a fixed (seed, workers) pair, two runs
// must produce byte-identical checkpoints even though every particle
// kernel fans out over 4 goroutines per rank.
func TestReplayByteIdenticalWorkers(t *testing.T) {
	cp1 := runToCheckpoint(t, 4)
	cp2 := runToCheckpoint(t, 4)
	if !bytes.Equal(cp1, cp2) {
		t.Errorf("workers=4 checkpoints differ between identical seeded runs (%d vs %d bytes)", len(cp1), len(cp2))
	}
}

// TestWorkersDefaultEqualsOne pins the facade: an unset Workers field (the
// zero value, defaulted to 1) must be bit-for-bit the explicit workers=1
// serial path.
func TestWorkersDefaultEqualsOne(t *testing.T) {
	unset := runToCheckpoint(t, 0)
	one := runToCheckpoint(t, 1)
	if !bytes.Equal(unset, one) {
		t.Error("Workers unset differs from Workers=1: the default is not the legacy serial path")
	}
}
