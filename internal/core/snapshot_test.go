package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"github.com/plasma-hpc/dsmcpic/internal/pic"
	"github.com/plasma-hpc/dsmcpic/internal/simmpi"
)

// runWithSnapshots runs a seeded config capturing frames every `every`
// steps and returns the canonical JSON encoding of each frame.
func runWithSnapshots(t *testing.T, every int, mode pic.ExchangeMode) [][]byte {
	t.Helper()
	ref := testRefinement(t)
	cfg := testConfig(ref)
	cfg.Steps = 6
	cfg.SnapshotEvery = every
	cfg.PoissonExchange = mode
	var frames [][]byte
	cfg.OnSnapshot = func(f FieldFrame) {
		blob, err := json.Marshal(f)
		if err != nil {
			t.Errorf("marshal frame: %v", err)
			return
		}
		frames = append(frames, blob)
	}
	world := simmpi.NewWorld(3, simmpi.Options{})
	if _, err := Run(world, cfg); err != nil {
		t.Fatal(err)
	}
	return frames
}

// TestSnapshotFramesDeterministic pins the frame contract the serving
// daemon's cache relies on: one frame per window, plausible physics in
// the fields, and byte-identical frame sequences across replays.
func TestSnapshotFramesDeterministic(t *testing.T) {
	a := runWithSnapshots(t, 2, pic.ExchangeHalo)
	if len(a) != 3 { // 6 steps / every 2
		t.Fatalf("got %d frames for 6 steps at every=2, want 3", len(a))
	}
	b := runWithSnapshots(t, 2, pic.ExchangeHalo)
	if len(a) != len(b) {
		t.Fatalf("replay frame count diverged: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatalf("frame %d not byte-identical across replays", i)
		}
	}
	var f FieldFrame
	if err := json.Unmarshal(a[len(a)-1], &f); err != nil {
		t.Fatal(err)
	}
	if f.Step != 5 {
		t.Fatalf("last frame at step %d, want 5", f.Step)
	}
	ref := testRefinement(t)
	if len(f.Phi) != ref.Fine.NumNodes() {
		t.Fatalf("phi has %d nodes, want %d", len(f.Phi), ref.Fine.NumNodes())
	}
	if len(f.Density) != ref.Coarse.NumCells() || len(f.Temperature) != ref.Coarse.NumCells() {
		t.Fatalf("cell fields sized %d/%d, want %d", len(f.Density), len(f.Temperature), ref.Coarse.NumCells())
	}
	var totDens float64
	for c, d := range f.Density {
		if d < 0 {
			t.Fatalf("negative density in cell %d", c)
		}
		totDens += d
	}
	if totDens == 0 {
		t.Fatal("all-zero density after 6 injected steps")
	}
	for c, temp := range f.Temperature {
		if temp < 0 {
			t.Fatalf("negative temperature in cell %d", c)
		}
	}
}

// TestSnapshotOwnerLocalGathersPhi proves the capture path replicates phi
// through GatherPhi in owner-local mode: the frame must carry a full,
// non-trivial potential even though only owned rows are resident between
// solves.
func TestSnapshotOwnerLocalGathersPhi(t *testing.T) {
	frames := runWithSnapshots(t, 3, pic.ExchangeOwnerLocal)
	if len(frames) != 2 {
		t.Fatalf("got %d frames, want 2", len(frames))
	}
	var f FieldFrame
	if err := json.Unmarshal(frames[len(frames)-1], &f); err != nil {
		t.Fatal(err)
	}
	nonzero := 0
	for _, v := range f.Phi {
		if v != 0 {
			nonzero++
		}
	}
	if nonzero == 0 {
		t.Fatal("owner-local frame has an all-zero phi; GatherPhi not reaching the capture")
	}
}

// TestSnapshotConfigValidation pins the two rejection paths.
func TestSnapshotConfigValidation(t *testing.T) {
	ref := testRefinement(t)
	cfg := testConfig(ref)
	cfg.SnapshotEvery = -1
	if _, err := cfg.withDefaults(); err == nil {
		t.Fatal("negative SnapshotEvery accepted")
	}
	cfg = testConfig(ref)
	cfg.SnapshotEvery = 2 // no OnSnapshot
	if _, err := cfg.withDefaults(); err == nil {
		t.Fatal("SnapshotEvery without OnSnapshot accepted")
	}
}
