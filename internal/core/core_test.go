package core

import (
	"math"
	"testing"

	"github.com/plasma-hpc/dsmcpic/internal/balance"
	"github.com/plasma-hpc/dsmcpic/internal/commcost"
	"github.com/plasma-hpc/dsmcpic/internal/dsmc"
	"github.com/plasma-hpc/dsmcpic/internal/exchange"
	"github.com/plasma-hpc/dsmcpic/internal/geom"
	"github.com/plasma-hpc/dsmcpic/internal/mesh"
	"github.com/plasma-hpc/dsmcpic/internal/particle"
	"github.com/plasma-hpc/dsmcpic/internal/rng"
	"github.com/plasma-hpc/dsmcpic/internal/simmpi"
)

// testRefinement builds a small nozzle grid pair shared across tests.
func testRefinement(t testing.TB) *mesh.Refinement {
	t.Helper()
	coarse, err := mesh.Nozzle(3, 6, 0.05, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := mesh.RefineUniform(coarse)
	if err != nil {
		t.Fatal(err)
	}
	return ref
}

func testConfig(ref *mesh.Refinement) Config {
	return Config{
		Ref:              ref,
		Steps:            6,
		PICSubsteps:      2,
		DtDSMC:           2e-6,
		InjectHPerStep:   1500,
		InjectIonPerStep: 300,
		WeightH:          1e12,
		WeightIon:        6000,
		Wall:             dsmc.WallModel{Kind: dsmc.DiffuseWall, Temperature: 300},
		Strategy:         exchange.Distributed,
		Reactions:        dsmc.DefaultHydrogenReactions(),
		Seed:             42,
	}
}

func TestRunSmokeParallel(t *testing.T) {
	ref := testRefinement(t)
	world := simmpi.NewWorld(4, simmpi.Options{})
	stats, err := Run(world, testConfig(ref))
	if err != nil {
		t.Fatal(err)
	}
	if stats.TotalParticles() == 0 {
		t.Fatal("no particles at end of run")
	}
	// All component times populated and non-negative.
	for _, comp := range []string{CompInject, CompDSMCMove, CompDSMCExchange,
		CompReindex, CompColliReact, CompPICMove, CompPICExchange, CompPoisson} {
		found := false
		for r := range stats.Ranks {
			ct := stats.Ranks[r].Times[comp]
			if ct < 0 {
				t.Errorf("rank %d: negative time for %s", r, comp)
			}
			if ct > 0 {
				found = true
			}
		}
		if !found {
			t.Errorf("component %s has zero time on every rank", comp)
		}
	}
	if stats.TotalTime() <= 0 {
		t.Error("total modeled time not positive")
	}
	// Poisson ran every substep.
	var iters int64
	for r := range stats.Ranks {
		iters += stats.Ranks[r].PoissonIters
	}
	if iters == 0 {
		t.Error("no CG iterations recorded")
	}
}

func TestRunDeterministic(t *testing.T) {
	ref := testRefinement(t)
	run := func() *RunStats {
		world := simmpi.NewWorld(3, simmpi.Options{})
		stats, err := Run(world, testConfig(ref))
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	a, b := run(), run()
	for r := range a.Ranks {
		if len(a.Ranks[r].ParticleHistory) != len(b.Ranks[r].ParticleHistory) {
			t.Fatal("history lengths differ")
		}
		for s := range a.Ranks[r].ParticleHistory {
			if a.Ranks[r].ParticleHistory[s] != b.Ranks[r].ParticleHistory[s] {
				t.Fatalf("rank %d step %d: %d vs %d particles",
					r, s, a.Ranks[r].ParticleHistory[s], b.Ranks[r].ParticleHistory[s])
			}
		}
		if a.Ranks[r].Collisions != b.Ranks[r].Collisions {
			t.Fatalf("rank %d: collision counts differ", r)
		}
	}
}

func TestRunStrategiesAgreeOnPhysics(t *testing.T) {
	ref := testRefinement(t)
	totals := map[exchange.Strategy]int{}
	for _, strat := range []exchange.Strategy{exchange.Centralized, exchange.Distributed} {
		cfg := testConfig(ref)
		cfg.Strategy = strat
		world := simmpi.NewWorld(3, simmpi.Options{})
		stats, err := Run(world, cfg)
		if err != nil {
			t.Fatal(err)
		}
		totals[strat] = stats.TotalParticles()
	}
	// Both strategies deliver the same particle sets, but in different
	// local order, which permutes downstream stochastic collision pairing;
	// results agree statistically, not bitwise (set-level equality is
	// verified in the exchange package tests).
	cc, dc := totals[exchange.Centralized], totals[exchange.Distributed]
	if math.Abs(float64(cc-dc))/float64(cc) > 0.01 {
		t.Errorf("CC total %d and DC total %d differ by more than 1%%", cc, dc)
	}
}

func TestSerialVsParallelMoments(t *testing.T) {
	ref := testRefinement(t)
	run := func(n int) (int, float64) {
		cfg := testConfig(ref)
		world := simmpi.NewWorld(n, simmpi.Options{})
		var density []float64
		cfg.OnStep = func(step int, s *Solver) {
			if step != cfg.Steps-1 {
				return
			}
			local := s.LocalCellCounts(nil)
			global := s.Comm.AllreduceInt64(local)
			if s.Comm.Rank() == 0 {
				density = make([]float64, len(global))
				for c, cnt := range global {
					density[c] = float64(cnt) / s.Ref.Coarse.Volumes[c]
				}
			}
		}
		stats, err := Run(world, cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Center of mass of the density along z.
		var wsum, zsum float64
		for c, d := range density {
			wsum += d
			zsum += d * ref.Coarse.Centroids[c].Z
		}
		return stats.TotalParticles(), zsum / wsum
	}
	n1, z1 := run(1)
	n4, z4 := run(4)
	// Different RNG streams: statistical, not exact, agreement.
	if math.Abs(float64(n1-n4))/float64(n1) > 0.05 {
		t.Errorf("particle totals differ too much: serial %d vs parallel %d", n1, n4)
	}
	if math.Abs(z1-z4) > 0.02 { // 10% of the 0.2m nozzle
		t.Errorf("plume centroid differs: serial %.4f vs parallel %.4f", z1, z4)
	}
}

func TestLoadBalancerImprovesModeledTime(t *testing.T) {
	// The paper's claim is that dynamic load balancing reduces total
	// execution time (Fig. 10); per-rank particle counts may legitimately
	// stay uneven because the weighted load model balances *work* (which
	// includes injection at inlet-owning ranks), not raw counts.
	ref := testRefinement(t)
	runTime := func(lb *balance.Config) float64 {
		cfg := testConfig(ref)
		cfg.Steps = 10
		cfg.LB = lb
		cfg.Cost = scaledCost()
		// Start from the pathological axial decomposition (rank 0 owns
		// the inlet) so there is imbalance worth fixing.
		owner := make([]int32, ref.Coarse.NumCells())
		for c := range owner {
			owner[c] = int32(c * 4 / len(owner))
		}
		cfg.InitialOwner = owner
		world := simmpi.NewWorld(4, simmpi.Options{})
		stats, err := Run(world, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return stats.TotalTime()
	}
	lbCfg := balance.DefaultConfig()
	lbCfg.T = 3
	without := runTime(nil)
	with := runTime(&lbCfg)
	if with >= without {
		t.Errorf("LB did not improve modeled time: with=%.4f without=%.4f", with, without)
	}
}

// scaledCost returns the cost model with the work amplification the
// experiment harness uses (see DESIGN.md): without it this test's tiny
// workload is dominated by the fixed re-partitioning cost and load
// balancing cannot pay off — which is physical, but not what we test here.
func scaledCost() CostModel {
	cm := DefaultCostModel(commcost.Tianhe2, commcost.InnerFrame)
	cm.ParticleScale = 15000
	cm.GridScale = 23
	cm.MigrationByteScale = 200
	return cm
}

func TestLoadBalancerRebalancesAndKeepsConsistency(t *testing.T) {
	ref := testRefinement(t)
	cfg := testConfig(ref)
	cfg.Steps = 8
	lb := balance.DefaultConfig()
	lb.T = 2
	cfg.LB = &lb
	cfg.OnStep = func(step int, s *Solver) {
		// Invariant: every local particle lives on a cell this rank owns.
		me := int32(s.Comm.Rank())
		for i := 0; i < s.St.Len(); i++ {
			if s.Owner()[s.St.Cell[i]] != me {
				panic("ownership invariant violated after step")
			}
		}
	}
	world := simmpi.NewWorld(4, simmpi.Options{})
	stats, err := Run(world, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rebalances() == 0 {
		t.Error("expected at least one rebalance with concentrated injection")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, _, err := Prepare(Config{}, 2); err == nil {
		t.Error("missing Ref accepted")
	}
	ref := testRefinement(t)
	if _, _, err := Prepare(Config{Ref: ref}, 2); err == nil {
		t.Error("missing DtDSMC accepted")
	}
	bad := testConfig(ref)
	bad.InitialOwner = make([]int32, 3)
	if _, _, err := Prepare(bad, 2); err == nil {
		t.Error("wrong-size InitialOwner accepted")
	}
}

func TestCostModelDefaults(t *testing.T) {
	cm := DefaultCostModel(commcost.Tianhe2, commcost.InnerFrame)
	cm3 := DefaultCostModel(commcost.Tianhe3, commcost.InnerFrame)
	if cm3.MoveStep <= cm.MoveStep {
		t.Error("Tianhe-3 per-unit compute should be slower than Tianhe-2")
	}
	w := NewWork()
	w.Injected = 1000
	w.MoveStepsDSMC = 5000
	times := cm.Times(w, map[string]simmpi.PhaseStats{}, nil, 4, true)
	if times[CompInject] <= 0 || times[CompDSMCMove] <= 0 {
		t.Error("zero modeled times for nonzero work")
	}
	if Total(times) < times[CompInject]+times[CompDSMCMove] {
		t.Error("Total less than parts")
	}
}

func TestWorkAdd(t *testing.T) {
	a := NewWork()
	a.Injected = 5
	a.PackedBytes["x"] = 10
	b := NewWork()
	b.Injected = 7
	b.PackedBytes["x"] = 3
	b.CGOwnedNNZ = 99
	a.Add(b)
	if a.Injected != 12 || a.PackedBytes["x"] != 13 || a.CGOwnedNNZ != 99 {
		t.Errorf("Add wrong: %+v", a)
	}
}

func TestLargestRemainder(t *testing.T) {
	shares := largestRemainder([]float64{1, 1, 1}, 3)
	sum := 0
	for _, s := range shares {
		sum += s
	}
	if sum != 1000 {
		t.Errorf("shares sum to %d", sum)
	}
	for _, s := range shares {
		if s < 333 || s > 334 {
			t.Errorf("uneven equal split: %v", shares)
		}
	}
	zero := largestRemainder([]float64{0, 0}, 0)
	if zero[0] != 0 || zero[1] != 0 {
		t.Error("zero-area split should be zero")
	}
	skew := largestRemainder([]float64{3, 1}, 4)
	if skew[0] != 750 || skew[1] != 250 {
		t.Errorf("skewed split: %v", skew)
	}
}

func TestRunWithExtendedChemistry(t *testing.T) {
	ref := testRefinement(t)
	cfg := testConfig(ref)
	cfg.Reactions = dsmc.DefaultNeutralChemistry()
	cfg.WeightH = 1e14 // dense enough for visible chemistry
	world := simmpi.NewWorld(3, simmpi.Options{})
	stats, err := Run(world, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var created, removed int64
	for r := range stats.Ranks {
		created += stats.Ranks[r].CreatedParticles
		removed += stats.Ranks[r].RemovedParticles
	}
	if created+removed == 0 {
		t.Skip("no number-changing reactions fired in this short run")
	}
	if stats.TotalParticles() <= 0 {
		t.Error("population collapsed")
	}
}

func mustBoxMesh(t *testing.T) *mesh.Mesh {
	t.Helper()
	m, err := mesh.Box(3, 3, 3, 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func rngNew(seed uint64) *rng.Rand { return rng.New(seed, 0) }

func seedLenHelper(st *particle.Store) int { return st.Len() }

func TestEnergyConservedWithoutSourcesOrFields(t *testing.T) {
	// Closed box, specular walls, no injection, no reactions, neutral
	// particles only: movement + exchange must conserve kinetic energy
	// exactly and particle count exactly (collisions redistribute but
	// conserve energy too).
	ref, err := mesh.RefineUniform(mustBoxMesh(t))
	if err != nil {
		t.Fatal(err)
	}
	seed := particle.NewStore(0)
	r := rngNew(51)
	for k := 0; k < 2000; k++ {
		p := geom.V(r.Float64(), r.Float64(), r.Float64())
		cell := ref.Coarse.FindCellBrute(p)
		vx, vy, vz := r.Maxwell(300, particle.HydrogenMass, 0, 0, 0)
		seed.Append(particle.Particle{Pos: p, Vel: geom.V(vx, vy, vz), Sp: particle.H, Cell: int32(cell)})
	}
	energy := func(st *particle.Store) float64 {
		var e float64
		for i := 0; i < st.Len(); i++ {
			e += 0.5 * particle.InfoOf(st.Sp[i]).Mass * st.Vel[i].Norm2()
		}
		return e
	}
	e0 := energy(seed)

	var eFinal float64
	var nFinal int
	cfg := Config{
		Ref:              ref,
		Steps:            5,
		DtDSMC:           5e-5,
		InjectHPerStep:   0,
		InjectIonPerStep: 0,
		WeightH:          1e14,
		WeightIon:        1,
		Wall:             dsmc.WallModel{Kind: dsmc.SpecularWall},
		Strategy:         exchange.Distributed,
		InitialParticles: seed,
		Seed:             3,
		OnStep: func(step int, s *Solver) {
			if step != 4 {
				return
			}
			local := []float64{energy(s.St), float64(s.St.Len())}
			global := s.Comm.AllreduceFloat64(local, simmpi.OpSum)
			if s.Comm.Rank() == 0 {
				eFinal = global[0]
				nFinal = int(global[1])
			}
		},
	}
	world := simmpi.NewWorld(3, simmpi.Options{})
	if _, err := Run(world, cfg); err != nil {
		t.Fatal(err)
	}
	if nFinal != seedLenHelper(seed) {
		t.Errorf("particle count changed: %d -> %d", seedLenHelper(seed), nFinal)
	}
	if math.Abs(eFinal-e0) > 1e-9*e0 {
		t.Errorf("kinetic energy drift: %v -> %v", e0, eFinal)
	}
}

func TestSurfaceSamplingThroughSolver(t *testing.T) {
	ref := testRefinement(t)
	cfg := testConfig(ref)
	cfg.Steps = 5
	cfg.SampleSurfaces = true
	sawHits := false
	cfg.OnStep = func(step int, s *Solver) {
		if step != 4 {
			return
		}
		surf := s.Surface()
		if surf == nil {
			panic("no sampler with SampleSurfaces")
		}
		var hits int64
		for i := 0; i < surf.NumFaces(); i++ {
			hits += surf.Hits[i]
		}
		local := []int64{hits}
		global := s.Comm.AllreduceInt64(local)
		if s.Comm.Rank() == 0 && global[0] > 0 {
			sawHits = true
		}
	}
	world := simmpi.NewWorld(3, simmpi.Options{})
	if _, err := Run(world, cfg); err != nil {
		t.Fatal(err)
	}
	if !sawHits {
		t.Error("no wall hits sampled in a plume run with diffuse walls")
	}
}
