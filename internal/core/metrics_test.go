package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"github.com/plasma-hpc/dsmcpic/internal/balance"
	"github.com/plasma-hpc/dsmcpic/internal/metrics"
	"github.com/plasma-hpc/dsmcpic/internal/simmpi"
)

// TestMetricsCoverEveryPhase runs the solver with a collector attached
// and checks that every component of the step loop produced timer samples
// on every rank, that the traffic counters mirror the simmpi deltas, and
// that both exporters emit parseable output for the run.
func TestMetricsCoverEveryPhase(t *testing.T) {
	ref := testRefinement(t)
	const nRanks = 4
	cfg := testConfig(ref)
	lb := balance.DefaultConfig()
	lb.T = 2
	cfg.LB = &lb
	col := metrics.NewCollector(nRanks, nil)
	cfg.Metrics = col

	world := simmpi.NewWorld(nRanks, simmpi.Options{})
	if _, err := Run(world, cfg); err != nil {
		t.Fatal(err)
	}

	want := []string{CompInject, CompDSMCMove, CompDSMCExchange, CompReindex,
		CompColliReact, CompPICMove, CompPICExchange, CompPoisson,
		CompRebalance, CompDeposit}
	durs := col.PhaseDurations()
	for _, phase := range want {
		// One sample per (rank, step) for each phase.
		if got := len(durs[phase]); got != nRanks*cfg.Steps {
			t.Errorf("phase %s: %d duration samples, want %d", phase, got, nRanks*cfg.Steps)
		}
	}

	for r := 0; r < nRanks; r++ {
		steps := col.Rank(r).Steps()
		if len(steps) != cfg.Steps {
			t.Fatalf("rank %d recorded %d steps, want %d", r, len(steps), cfg.Steps)
		}
		// The metrics traffic counters are deltas off the same simmpi
		// counter the cost model reads; summed over steps they must not
		// exceed the counter's final phase totals (rebalance migration
		// traffic is recorded under its own label).
		var txDSMC int64
		for _, sr := range steps {
			txDSMC += sr.Counters["tx_bytes."+CompDSMCExchange]
		}
		if want := world.Counters()[r].Phase(CompDSMCExchange).Bytes; txDSMC != want {
			t.Errorf("rank %d: metrics DSMC_Exchange bytes %d != counter %d", r, txDSMC, want)
		}
		if steps[len(steps)-1].Counters["particles"] == 0 {
			t.Errorf("rank %d: final particles counter is zero", r)
		}
	}

	var jsonl, trace bytes.Buffer
	if err := col.WriteJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	if err := col.WriteChromeTrace(&trace); err != nil {
		t.Fatal(err)
	}
	if jsonl.Len() == 0 {
		t.Error("JSONL export is empty")
	}
	var doc map[string]any
	if err := json.Unmarshal(trace.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if _, ok := doc["traceEvents"]; !ok {
		t.Error("chrome trace missing traceEvents")
	}
}

// TestMeasuredLB exercises the timer-augmented cost function end to end:
// with MeasuredLB set, the lii decision runs on measured wall times, the
// run must still complete, conserve particles across ranks, and record
// lii history. (Measured times are wall-clock; nothing about the decision
// can be pinned here beyond structural health.)
func TestMeasuredLB(t *testing.T) {
	ref := testRefinement(t)
	const nRanks = 4
	cfg := testConfig(ref)
	cfg.Steps = 8
	lb := balance.DefaultConfig()
	lb.T = 2
	lb.Threshold = 1.05 // measured times under host jitter: trigger easily
	cfg.LB = &lb
	cfg.Metrics = metrics.NewCollector(nRanks, nil)
	cfg.MeasuredLB = true

	world := simmpi.NewWorld(nRanks, simmpi.Options{})
	stats, err := Run(world, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TotalParticles() == 0 {
		t.Fatal("no particles at end of run")
	}
	for r := range stats.Ranks {
		if got := len(stats.Ranks[r].LIIHistory); got != cfg.Steps {
			t.Errorf("rank %d: %d lii entries, want %d", r, got, cfg.Steps)
		}
	}
}

// TestMeasuredLBRequiresMetrics pins the config validation.
func TestMeasuredLBRequiresMetrics(t *testing.T) {
	ref := testRefinement(t)
	cfg := testConfig(ref)
	cfg.MeasuredLB = true
	if _, _, err := Prepare(cfg, 2); err == nil {
		t.Fatal("MeasuredLB without Metrics was accepted")
	}
}

// TestMetricsWorldSizeMismatch pins the size validation in Prepare.
func TestMetricsWorldSizeMismatch(t *testing.T) {
	ref := testRefinement(t)
	cfg := testConfig(ref)
	cfg.Metrics = metrics.NewCollector(3, nil)
	if _, _, err := Prepare(cfg, 2); err == nil {
		t.Fatal("collector sized for 3 ranks accepted in a 2-rank world")
	}
}
