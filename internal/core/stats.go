package core

import "github.com/plasma-hpc/dsmcpic/internal/simmpi"

// Per-step metric counter names recorded through Config.Metrics (beyond
// the tx_msgs./tx_bytes. traffic families and "particles").
const (
	// MetricPoissonIters is the CG iteration count summed over the step's
	// PIC substeps.
	MetricPoissonIters = "Poisson_Iters"
	// MetricPoissonResidualFemto is the last substep's final relative
	// residual in 1e-15 units (counters are integers; 1 femto resolution
	// comfortably brackets every tolerance in use).
	MetricPoissonResidualFemto = "Poisson_Residual_femto"
)

// Per-step gauge names (levels, not accumulating counters): the resident
// footprint of the distributed Poisson solver on this rank
// (pic.DistSolver.ResidentState), recorded once per step. In owner-local
// mode these scale as O(nodes/P + ghosts); legacy modes report their
// replicated O(nodes) state — the contrast bench schema v5 gates on.
const (
	GaugePoissonOwnedRows     = "Poisson_Mem_OwnedRows"
	GaugePoissonGhostCols     = "Poisson_Mem_GhostCols"
	GaugePoissonMatrixBytes   = "Poisson_Mem_MatrixBytes"
	GaugePoissonVectorBytes   = "Poisson_Mem_VectorBytes"
	GaugePoissonIndexMapBytes = "Poisson_Mem_IndexMapBytes"
)

// RankStats accumulates one rank's results over a run.
type RankStats struct {
	// Times holds modeled seconds per component (Table IV rows), summed
	// over all steps.
	Times map[string]float64
	// StepTotals is the modeled total seconds of each DSMC step.
	StepTotals []float64
	// ParticleHistory is the local particle count after each DSMC step
	// (drives the paper's Fig. 5).
	ParticleHistory []int
	// LIIHistory records the lii seen at each step (when LB is enabled).
	LIIHistory []float64

	Rebalances        int
	MigratedDSMC      int64
	MigratedPIC       int64
	MigratedRebalance int64
	PoissonIters      int64
	// PoissonResidual is the final relative residual of the last Poisson
	// solve (identical on all ranks — it comes off an allreduce).
	PoissonResidual  float64
	Collisions       int64
	Reactions        int64
	CreatedParticles int64 // by dissociation chemistry
	RemovedParticles int64 // by recombination chemistry
	FinalParticles   int

	// Work holds the accumulated raw work counts.
	Work Work
}

// RunStats aggregates a whole run.
type RunStats struct {
	Ranks    []RankStats
	Counters []*simmpi.Counter
}

// TotalTime returns the modeled wall time of the run: the per-step maximum
// over ranks, summed over steps (bulk-synchronous iterations complete when
// the slowest rank does).
func (rs *RunStats) TotalTime() float64 {
	if len(rs.Ranks) == 0 {
		return 0
	}
	steps := len(rs.Ranks[0].StepTotals)
	var total float64
	for s := 0; s < steps; s++ {
		var slowest float64
		for r := range rs.Ranks {
			if s < len(rs.Ranks[r].StepTotals) && rs.Ranks[r].StepTotals[s] > slowest {
				slowest = rs.Ranks[r].StepTotals[s]
			}
		}
		total += slowest
	}
	return total
}

// ComponentTime returns the modeled time of one component: the maximum
// accumulated value over ranks (the component's critical path under bulk
// synchrony).
func (rs *RunStats) ComponentTime(name string) float64 {
	var maxT float64
	for r := range rs.Ranks {
		if t := rs.Ranks[r].Times[name]; t > maxT {
			maxT = t
		}
	}
	return maxT
}

// TotalParticles sums the final particle counts over ranks.
func (rs *RunStats) TotalParticles() int {
	n := 0
	for r := range rs.Ranks {
		n += rs.Ranks[r].FinalParticles
	}
	return n
}

// Rebalances returns rank 0's rebalance count (identical on all ranks).
func (rs *RunStats) Rebalances() int {
	if len(rs.Ranks) == 0 {
		return 0
	}
	return rs.Ranks[0].Rebalances
}
