package core

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/plasma-hpc/dsmcpic/internal/balance"
	"github.com/plasma-hpc/dsmcpic/internal/metrics"
	"github.com/plasma-hpc/dsmcpic/internal/simmpi"
)

// TestReplayByteIdentical is the determinism regression the commvet
// nondeterminism analyzer defends: two identical seeded runs must produce
// byte-identical per-rank traffic counters AND a byte-identical checkpoint
// blob. This is a stronger contract than TestRunDeterministic's physics
// counts — it pins the exact communication structure (message and byte
// counts per phase per rank) and the exact serialized world state, which
// checkpoint/restart recovery and the commcost model both depend on.
func TestReplayByteIdentical(t *testing.T) {
	ref := testRefinement(t)
	const nRanks = 4

	run := func() (traffic []byte, checkpoint []byte) {
		cfg := testConfig(ref)
		cfg.Steps = 8
		// Exercise the balancer path too: its control-plane collectives
		// (timing allgather, weight allreduce, owner bcast) and the
		// migration exchange all land in the counters.
		lb := balance.DefaultConfig()
		lb.T = 3
		cfg.LB = &lb
		// Pathological initial decomposition so a rebalance actually fires.
		owner := make([]int32, ref.Coarse.NumCells())
		for c := range owner {
			owner[c] = int32(c * nRanks / len(owner))
		}
		cfg.InitialOwner = owner
		// Metrics attached with the real (wall-clock) default: the layer
		// is observe-only, so measured timings — different every run —
		// must not leak into traffic or state. This is the "with metrics
		// enabled" half of the regression.
		cfg.Metrics = metrics.NewCollector(nRanks, nil)

		var cpBlob bytes.Buffer
		cfg.OnStep = func(step int, s *Solver) {
			if step != cfg.Steps-1 {
				return
			}
			cp := CaptureCheckpoint(s, step) // collective; rank 0 gets the state
			if cp == nil {
				return
			}
			if err := cp.Save(&cpBlob); err != nil {
				panic(err)
			}
		}

		world := simmpi.NewWorld(nRanks, simmpi.Options{})
		if _, err := Run(world, cfg); err != nil {
			t.Fatal(err)
		}

		var tb bytes.Buffer
		for r, c := range world.Counters() {
			for _, phase := range c.Phases() {
				st := c.Phase(phase)
				fmt.Fprintf(&tb, "rank %d phase %s messages %d bytes %d local %d\n",
					r, phase, st.Messages, st.Bytes, st.Local)
			}
		}
		return tb.Bytes(), cpBlob.Bytes()
	}

	traffic1, cp1 := run()
	traffic2, cp2 := run()

	if !bytes.Equal(traffic1, traffic2) {
		t.Errorf("per-rank traffic counters differ between identical seeded runs:\nrun1:\n%srun2:\n%s", traffic1, traffic2)
	}
	if len(cp1) == 0 {
		t.Fatal("no checkpoint captured")
	}
	if !bytes.Equal(cp1, cp2) {
		t.Errorf("checkpoint blobs differ between identical seeded runs (%d vs %d bytes)", len(cp1), len(cp2))
	}
}
