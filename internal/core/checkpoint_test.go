package core

import (
	"bytes"
	"encoding/binary"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/plasma-hpc/dsmcpic/internal/particle"
	"github.com/plasma-hpc/dsmcpic/internal/simmpi"
)

func TestCheckpointSaveLoadRoundTrip(t *testing.T) {
	ref := testRefinement(t)
	cfg := testConfig(ref)
	cfg.Steps = 4
	var cp *Checkpoint
	cfg.OnStep = func(step int, s *Solver) {
		if step == 3 {
			if got := CaptureCheckpoint(s, step); got != nil {
				cp = got
			}
		}
	}
	world := simmpi.NewWorld(3, simmpi.Options{})
	if _, err := Run(world, cfg); err != nil {
		t.Fatal(err)
	}
	if cp == nil || cp.Particles.Len() == 0 {
		t.Fatal("no checkpoint captured")
	}
	// The capture's gather rides the checkpoint subsystem's own tag and
	// phase label: every non-root rank's payload must be accounted to
	// CompCheckpoint, not to whatever solver phase the probe fired in.
	for r := 1; r < 3; r++ {
		if got := world.Counters()[r].Phase(CompCheckpoint).Bytes; got == 0 {
			t.Errorf("rank %d sent no bytes under the %q phase", r, CompCheckpoint)
		}
	}
	var buf bytes.Buffer
	if err := cp.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Step != cp.Step || loaded.Particles.Len() != cp.Particles.Len() {
		t.Fatalf("header mismatch: %d/%d vs %d/%d",
			loaded.Step, loaded.Particles.Len(), cp.Step, cp.Particles.Len())
	}
	for i := 0; i < cp.Particles.Len(); i++ {
		if loaded.Particles.Get(i) != cp.Particles.Get(i) {
			t.Fatalf("particle %d mismatch", i)
		}
	}
	for i := range cp.Owner {
		if loaded.Owner[i] != cp.Owner[i] {
			t.Fatal("owner mismatch")
		}
	}
	for i := range cp.Phi {
		//commvet:ignore floatcompare serialization round-trip must be bitwise: Save/Load moves Float64bits, no arithmetic
		if loaded.Phi[i] != cp.Phi[i] {
			t.Fatal("phi mismatch")
		}
	}
}

func TestLoadCheckpointRejectsGarbage(t *testing.T) {
	if _, err := LoadCheckpoint(bytes.NewReader([]byte("nope"))); err == nil {
		t.Error("garbage accepted")
	}
}

func TestResumeFromCheckpoint(t *testing.T) {
	ref := testRefinement(t)
	const totalSteps = 8
	const cut = 4

	// Uninterrupted reference run.
	full := testConfig(ref)
	full.Steps = totalSteps
	fullStats, err := Run(simmpi.NewWorld(3, simmpi.Options{}), full)
	if err != nil {
		t.Fatal(err)
	}

	// Run to the cut, checkpoint, resume for the remainder.
	var cp *Checkpoint
	first := testConfig(ref)
	first.Steps = cut
	first.OnStep = func(step int, s *Solver) {
		if step == cut-1 {
			if got := CaptureCheckpoint(s, step); got != nil {
				cp = got
			}
		}
	}
	if _, err := Run(simmpi.NewWorld(3, simmpi.Options{}), first); err != nil {
		t.Fatal(err)
	}
	if cp == nil {
		t.Fatal("no checkpoint")
	}

	resumed := testConfig(ref)
	resumed.Steps = totalSteps - cut
	cp.Apply(&resumed)
	resumedStats, err := Run(simmpi.NewWorld(3, simmpi.Options{}), resumed)
	if err != nil {
		t.Fatal(err)
	}

	// RNG streams restart at the seed, so agreement is statistical: final
	// population within 10% of the uninterrupted run.
	nFull := fullStats.TotalParticles()
	nResumed := resumedStats.TotalParticles()
	if math.Abs(float64(nFull-nResumed))/float64(nFull) > 0.10 {
		t.Errorf("resumed population %d deviates from uninterrupted %d", nResumed, nFull)
	}
	if nResumed <= cp.Particles.Len()/2 {
		t.Error("resumed run lost the checkpointed population")
	}
}

func TestInitialParticlesDistributedByOwner(t *testing.T) {
	ref := testRefinement(t)
	cfg := testConfig(ref)
	cfg.Steps = 1
	cfg.InjectHPerStep = 0
	cfg.InjectIonPerStep = 0
	// Build a global population on known cells.
	shared, c, err := Prepare(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	_ = shared
	c.InitialParticles = func() *particle.Store {
		st := particle.NewStore(0)
		for cell := 0; cell < ref.Coarse.NumCells(); cell += 7 {
			st.Append(particle.Particle{Pos: ref.Coarse.Centroids[cell], Cell: int32(cell)})
		}
		return st
	}()
	world := simmpi.NewWorld(2, simmpi.Options{})
	counted := make([]int, 2)
	c.OnStep = func(step int, s *Solver) {
		me := int32(s.Comm.Rank())
		for i := 0; i < s.St.Len(); i++ {
			if s.Owner()[s.St.Cell[i]] != me {
				panic("initial particle on wrong rank")
			}
		}
		counted[s.Comm.Rank()] = s.St.Len()
	}
	if _, err := Run(world, c); err != nil {
		t.Fatal(err)
	}
	if counted[0]+counted[1] == 0 {
		t.Error("initial particles vanished")
	}
}

// captureTestCheckpoint runs a short sim and returns its checkpoint.
func captureTestCheckpoint(t *testing.T) *Checkpoint {
	t.Helper()
	ref := testRefinement(t)
	cfg := testConfig(ref)
	cfg.Steps = 3
	var cp *Checkpoint
	cfg.OnStep = func(step int, s *Solver) {
		if step == 2 {
			if got := CaptureCheckpoint(s, step); got != nil {
				cp = got
			}
		}
	}
	if _, err := Run(simmpi.NewWorld(3, simmpi.Options{}), cfg); err != nil {
		t.Fatal(err)
	}
	if cp == nil || cp.Particles.Len() == 0 {
		t.Fatal("no checkpoint captured")
	}
	return cp
}

func TestCheckpointCRCDetectsFlippedByte(t *testing.T) {
	cp := captureTestCheckpoint(t)
	var buf bytes.Buffer
	if err := cp.Save(&buf); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()
	// Flip one bit in the middle of the body (well past the header, well
	// before the CRC footer).
	corrupt := append([]byte(nil), blob...)
	corrupt[len(corrupt)/2] ^= 0x40
	_, err := LoadCheckpoint(bytes.NewReader(corrupt))
	if err == nil {
		t.Fatal("flipped byte loaded without error")
	}
	if !strings.Contains(err.Error(), "CRC") {
		t.Errorf("corruption reported as %v, want a CRC mismatch", err)
	}
	// The pristine bytes still load.
	if _, err := LoadCheckpoint(bytes.NewReader(blob)); err != nil {
		t.Fatalf("pristine checkpoint rejected: %v", err)
	}
}

func TestCheckpointRejectsTrailingGarbage(t *testing.T) {
	cp := captureTestCheckpoint(t)
	var buf bytes.Buffer
	if err := cp.Save(&buf); err != nil {
		t.Fatal(err)
	}
	blob := append(buf.Bytes(), 0xde, 0xad, 0xbe)
	_, err := LoadCheckpoint(bytes.NewReader(blob))
	if err == nil {
		t.Fatal("trailing garbage accepted")
	}
	if !strings.Contains(err.Error(), "trailing") {
		t.Errorf("got %v, want a trailing-bytes error", err)
	}
}

func TestCheckpointTruncationIsDescriptive(t *testing.T) {
	cp := captureTestCheckpoint(t)
	var buf bytes.Buffer
	if err := cp.Save(&buf); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()
	// Cut the stream at several depths: mid-header, mid-owner-table,
	// mid-particles, and mid-footer.
	for _, cut := range []int{10, 30, len(blob) / 2, len(blob) - 2} {
		_, err := LoadCheckpoint(bytes.NewReader(blob[:cut]))
		if err == nil {
			t.Fatalf("cut=%d: truncated checkpoint accepted", cut)
		}
		if err == io.ErrUnexpectedEOF {
			t.Errorf("cut=%d: bare io.ErrUnexpectedEOF, want a descriptive error", cut)
		}
		if !strings.Contains(err.Error(), "truncated") {
			t.Errorf("cut=%d: got %v, want a truncation description", cut, err)
		}
	}
}

func TestCheckpointLoadsLegacyV1(t *testing.T) {
	// Hand-assemble a minimal version-1 stream (no CRC footer): magic,
	// then step=5 with empty owner/particle/phi sections.
	var buf bytes.Buffer
	buf.WriteString("dsmcCKP1")
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], 5)
	buf.Write(hdr[:])
	cp, err := LoadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Step != 5 || cp.Particles.Len() != 0 {
		t.Errorf("legacy load: step=%d particles=%d", cp.Step, cp.Particles.Len())
	}
	// Unknown versions are refused.
	var v9 bytes.Buffer
	v9.WriteString("dsmcCKP9")
	v9.Write(hdr[:])
	if _, err := LoadCheckpoint(&v9); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("unknown version: %v", err)
	}
}

func TestCheckpointSaveFileLoadFile(t *testing.T) {
	cp := captureTestCheckpoint(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "sim.ckpt")
	if err := cp.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	// Overwriting an existing checkpoint must work (rename semantics).
	if err := cp.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Step != cp.Step || loaded.Particles.Len() != cp.Particles.Len() {
		t.Errorf("file round trip mismatch: step %d/%d particles %d/%d",
			loaded.Step, cp.Step, loaded.Particles.Len(), cp.Particles.Len())
	}
	// No temp droppings left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "sim.ckpt" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Errorf("directory contains %v, want only sim.ckpt", names)
	}
	if _, err := LoadCheckpointFile(filepath.Join(dir, "missing.ckpt")); err == nil {
		t.Error("missing file loaded")
	}
}

func TestPrepareValidatesInitialOwner(t *testing.T) {
	ref := testRefinement(t)
	// Wrong length: checkpoint from a different mesh.
	cfg := testConfig(ref)
	cfg.InitialOwner = make([]int32, ref.Coarse.NumCells()-1)
	if _, _, err := Prepare(cfg, 2); err == nil || !strings.Contains(err.Error(), "coarse cells") {
		t.Errorf("short owner table: %v", err)
	}
	// Out-of-range rank id: checkpoint from a bigger world.
	cfg = testConfig(ref)
	owner := make([]int32, ref.Coarse.NumCells())
	owner[3] = 7 // world of 2
	cfg.InitialOwner = owner
	if _, _, err := Prepare(cfg, 2); err == nil || !strings.Contains(err.Error(), "world") {
		t.Errorf("out-of-range owner: %v", err)
	}
	// Negative id.
	owner[3] = -1
	if _, _, err := Prepare(cfg, 2); err == nil {
		t.Error("negative owner id accepted")
	}
}
