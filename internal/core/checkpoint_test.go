package core

import (
	"bytes"
	"math"
	"testing"

	"github.com/plasma-hpc/dsmcpic/internal/particle"
	"github.com/plasma-hpc/dsmcpic/internal/simmpi"
)

func TestCheckpointSaveLoadRoundTrip(t *testing.T) {
	ref := testRefinement(t)
	cfg := testConfig(ref)
	cfg.Steps = 4
	var cp *Checkpoint
	cfg.OnStep = func(step int, s *Solver) {
		if step == 3 {
			if got := CaptureCheckpoint(s, step); got != nil {
				cp = got
			}
		}
	}
	world := simmpi.NewWorld(3, simmpi.Options{})
	if _, err := Run(world, cfg); err != nil {
		t.Fatal(err)
	}
	if cp == nil || cp.Particles.Len() == 0 {
		t.Fatal("no checkpoint captured")
	}
	var buf bytes.Buffer
	if err := cp.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Step != cp.Step || loaded.Particles.Len() != cp.Particles.Len() {
		t.Fatalf("header mismatch: %d/%d vs %d/%d",
			loaded.Step, loaded.Particles.Len(), cp.Step, cp.Particles.Len())
	}
	for i := 0; i < cp.Particles.Len(); i++ {
		if loaded.Particles.Get(i) != cp.Particles.Get(i) {
			t.Fatalf("particle %d mismatch", i)
		}
	}
	for i := range cp.Owner {
		if loaded.Owner[i] != cp.Owner[i] {
			t.Fatal("owner mismatch")
		}
	}
	for i := range cp.Phi {
		if loaded.Phi[i] != cp.Phi[i] {
			t.Fatal("phi mismatch")
		}
	}
}

func TestLoadCheckpointRejectsGarbage(t *testing.T) {
	if _, err := LoadCheckpoint(bytes.NewReader([]byte("nope"))); err == nil {
		t.Error("garbage accepted")
	}
}

func TestResumeFromCheckpoint(t *testing.T) {
	ref := testRefinement(t)
	const totalSteps = 8
	const cut = 4

	// Uninterrupted reference run.
	full := testConfig(ref)
	full.Steps = totalSteps
	fullStats, err := Run(simmpi.NewWorld(3, simmpi.Options{}), full)
	if err != nil {
		t.Fatal(err)
	}

	// Run to the cut, checkpoint, resume for the remainder.
	var cp *Checkpoint
	first := testConfig(ref)
	first.Steps = cut
	first.OnStep = func(step int, s *Solver) {
		if step == cut-1 {
			if got := CaptureCheckpoint(s, step); got != nil {
				cp = got
			}
		}
	}
	if _, err := Run(simmpi.NewWorld(3, simmpi.Options{}), first); err != nil {
		t.Fatal(err)
	}
	if cp == nil {
		t.Fatal("no checkpoint")
	}

	resumed := testConfig(ref)
	resumed.Steps = totalSteps - cut
	cp.Apply(&resumed)
	resumedStats, err := Run(simmpi.NewWorld(3, simmpi.Options{}), resumed)
	if err != nil {
		t.Fatal(err)
	}

	// RNG streams restart at the seed, so agreement is statistical: final
	// population within 10% of the uninterrupted run.
	nFull := fullStats.TotalParticles()
	nResumed := resumedStats.TotalParticles()
	if math.Abs(float64(nFull-nResumed))/float64(nFull) > 0.10 {
		t.Errorf("resumed population %d deviates from uninterrupted %d", nResumed, nFull)
	}
	if nResumed <= cp.Particles.Len()/2 {
		t.Error("resumed run lost the checkpointed population")
	}
}

func TestInitialParticlesDistributedByOwner(t *testing.T) {
	ref := testRefinement(t)
	cfg := testConfig(ref)
	cfg.Steps = 1
	cfg.InjectHPerStep = 0
	cfg.InjectIonPerStep = 0
	// Build a global population on known cells.
	shared, c, err := Prepare(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	_ = shared
	c.InitialParticles = func() *particle.Store {
		st := particle.NewStore(0)
		for cell := 0; cell < ref.Coarse.NumCells(); cell += 7 {
			st.Append(particle.Particle{Pos: ref.Coarse.Centroids[cell], Cell: int32(cell)})
		}
		return st
	}()
	world := simmpi.NewWorld(2, simmpi.Options{})
	counted := make([]int, 2)
	c.OnStep = func(step int, s *Solver) {
		me := int32(s.Comm.Rank())
		for i := 0; i < s.St.Len(); i++ {
			if s.Owner()[s.St.Cell[i]] != me {
				panic("initial particle on wrong rank")
			}
		}
		counted[s.Comm.Rank()] = s.St.Len()
	}
	if _, err := Run(world, c); err != nil {
		t.Fatal(err)
	}
	if counted[0]+counted[1] == 0 {
		t.Error("initial particles vanished")
	}
}
