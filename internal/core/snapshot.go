package core

import (
	"github.com/plasma-hpc/dsmcpic/internal/particle"
	"github.com/plasma-hpc/dsmcpic/internal/rng"
	"github.com/plasma-hpc/dsmcpic/internal/simmpi"
)

// FieldFrame is one captured snapshot of the simulation's macroscopic
// fields: the fine-grid nodal potential plus per-coarse-cell number
// density and temperature, globally reduced. Frames are what the serving
// daemon streams on /jobs/{id}/frames and what a UI animates.
//
// Every slice is freshly allocated per frame (safe to retain) and every
// value comes off deterministic collectives (fixed-tree allreduce,
// GatherPhi), so for a fixed (Config, Seed) the frame sequence — and its
// canonical JSON encoding — is byte-identical across replays.
type FieldFrame struct {
	// Step is the 0-based DSMC step after which the frame was captured.
	Step int
	// Phi is the nodal electrostatic potential on the fine grid (V),
	// fully replicated (GatherPhi is called first in owner-local mode).
	Phi []float64
	// Density is the global number density per coarse cell (1/m^3),
	// weights applied.
	Density []float64
	// Temperature is the global temperature per coarse cell (K), from
	// the peculiar-velocity variance of all species.
	Temperature []float64
}

// snapshotAccs is the number of per-cell accumulators reduced for one
// frame: real-particle count, mass, momentum (3), and mass-weighted
// squared speed.
const snapshotAccs = 6

// captureSnapshot reduces the moment fields and emits one FieldFrame
// through Config.OnSnapshot on rank 0. Collective: every rank must call
// it at the same step (Step does, gated on SnapshotEvery). The reduction
// uses the fixed binomial-tree AllreduceFloat64 and the owner-local
// GatherPhi, so captured bytes replay exactly.
func (s *Solver) captureSnapshot(step int) {
	nc := s.Ref.Coarse.NumCells()
	acc := make([]float64, snapshotAccs*nc)
	w := acc[0*nc : 1*nc]
	mSum := acc[1*nc : 2*nc]
	mvx := acc[2*nc : 3*nc]
	mvy := acc[3*nc : 4*nc]
	mvz := acc[4*nc : 5*nc]
	mv2 := acc[5*nc : 6*nc]
	for i := 0; i < s.St.Len(); i++ {
		c := s.St.Cell[i]
		wgt := s.weightOf(s.St.Sp[i])
		mass := particle.InfoOf(s.St.Sp[i]).Mass * wgt
		v := s.St.Vel[i]
		w[c] += wgt
		mSum[c] += mass
		mvx[c] += mass * v.X
		mvy[c] += mass * v.Y
		mvz[c] += mass * v.Z
		mv2[c] += mass * v.Norm2()
	}
	red := s.Comm.AllreduceFloat64(acc, simmpi.OpSum)
	// Replicate phi before reading it globally: a no-op in the legacy
	// exchange modes, a collective gather in owner-local mode.
	s.dist.GatherPhi(s.Comm, s.phi)
	if s.Comm.Rank() != 0 {
		return
	}
	w = red[0*nc : 1*nc]
	mSum = red[1*nc : 2*nc]
	mvx = red[2*nc : 3*nc]
	mvy = red[3*nc : 4*nc]
	mvz = red[4*nc : 5*nc]
	mv2 = red[5*nc : 6*nc]
	frame := FieldFrame{
		Step:        step,
		Phi:         append([]float64(nil), s.phi...),
		Density:     make([]float64, nc),
		Temperature: make([]float64, nc),
	}
	for c := 0; c < nc; c++ {
		if w[c] <= 0 {
			continue
		}
		frame.Density[c] = w[c] / s.Ref.Coarse.Volumes[c]
		// T from peculiar kinetic energy: 3/2 N k T = 1/2 (Σ m v² − M |v̄|²).
		vbar2 := (mvx[c]*mvx[c] + mvy[c]*mvy[c] + mvz[c]*mvz[c]) / (mSum[c] * mSum[c])
		ke := 0.5 * (mv2[c] - mSum[c]*vbar2)
		if ke < 0 {
			ke = 0 // float cancellation on near-single-particle cells
		}
		frame.Temperature[c] = 2 * ke / (3 * w[c] * rng.KBoltzmann)
	}
	s.Cfg.OnSnapshot(frame)
}
