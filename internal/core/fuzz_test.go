package core

import (
	"bytes"
	"testing"

	"github.com/plasma-hpc/dsmcpic/internal/particle"
)

// FuzzLoadCheckpoint feeds arbitrary bytes to the checkpoint loader: it
// must either error out or return a structurally consistent checkpoint,
// never panic or over-allocate.
func FuzzLoadCheckpoint(f *testing.F) {
	cp := &Checkpoint{
		Step:  3,
		Owner: []int32{0, 1, 0, 1},
		Phi:   []float64{0.5, -1},
	}
	cp.Particles = particle.NewStore(0)
	cp.Particles.Append(particle.Particle{ID: 7})
	var buf bytes.Buffer
	if err := cp.Save(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add([]byte("dsmcCKP1 then junk"))
	f.Fuzz(func(t *testing.T, b []byte) {
		loaded, err := LoadCheckpoint(bytes.NewReader(b))
		if err != nil {
			return
		}
		if loaded.Particles == nil || loaded.Step < 0 {
			t.Fatal("inconsistent checkpoint accepted")
		}
	})
}
