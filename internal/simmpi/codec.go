package simmpi

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Little-endian codecs used by the collectives and by callers serializing
// numeric payloads. A nil slice round-trips to nil.

func encodeFloat64s(v []float64) []byte {
	if v == nil {
		return nil
	}
	out := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(x))
	}
	return out
}

func decodeFloat64s(b []byte) []float64 {
	if b == nil {
		return nil
	}
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

func encodeInt64s(v []int64) []byte {
	if v == nil {
		return nil
	}
	out := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(out[8*i:], uint64(x))
	}
	return out
}

func decodeInt64s(b []byte) []int64 {
	if b == nil {
		return nil
	}
	out := make([]int64, len(b)/8)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

// encodeParts packs a slice of byte slices with a length prefix per part
// (-1 encodes a nil part).
func encodeParts(parts [][]byte) []byte {
	size := 4
	for _, p := range parts {
		size += 4 + len(p)
	}
	out := make([]byte, 0, size)
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(parts)))
	out = append(out, hdr[:]...)
	for _, p := range parts {
		if p == nil {
			binary.LittleEndian.PutUint32(hdr[:], 0xffffffff)
			out = append(out, hdr[:]...)
			continue
		}
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(p)))
		out = append(out, hdr[:]...)
		out = append(out, p...)
	}
	return out
}

// decodeParts inverts encodeParts. Every index into b is bounds-checked
// first: a truncated or cross-matched blob (reachable when delivery is
// fault-injected or a tag is mis-registered) must surface as a
// descriptive error, not a slice-out-of-range panic deep in a collective.
func decodeParts(b []byte) ([][]byte, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("simmpi: parts blob truncated: %d bytes, need 4 for the part count", len(b))
	}
	n := int(binary.LittleEndian.Uint32(b))
	// Each part costs at least its 4-byte length prefix; reject counts
	// the blob cannot possibly hold before allocating n headers.
	if 4+4*n > len(b) {
		return nil, fmt.Errorf("simmpi: parts blob declares %d parts but holds %d bytes (headers alone need %d)",
			n, len(b), 4+4*n)
	}
	out := make([][]byte, n)
	off := 4
	for i := range out {
		if off+4 > len(b) {
			return nil, fmt.Errorf("simmpi: parts blob truncated in part %d/%d header (offset %d of %d)",
				i, n, off, len(b))
		}
		l := binary.LittleEndian.Uint32(b[off:])
		off += 4
		if l == 0xffffffff {
			continue
		}
		if int64(off)+int64(l) > int64(len(b)) {
			return nil, fmt.Errorf("simmpi: parts blob truncated in part %d/%d body: declares %d bytes, %d remain",
				i, n, l, len(b)-off)
		}
		out[i] = b[off : off+int(l) : off+int(l)]
		off += int(l)
	}
	if off != len(b) {
		return nil, fmt.Errorf("simmpi: parts blob has %d trailing bytes after %d declared parts", len(b)-off, n)
	}
	return out, nil
}

// EncodeFloat64s is the exported codec for callers shipping float64 vectors.
func EncodeFloat64s(v []float64) []byte { return encodeFloat64s(v) }

// EncodeFloat64sInto encodes v into buf, growing it if needed, and returns
// the encoded slice. Callers reusing buf across messages must be sure the
// previous message has been fully consumed (simmpi does not copy payloads).
func EncodeFloat64sInto(buf []byte, v []float64) []byte {
	need := 8 * len(v)
	if cap(buf) < need {
		buf = make([]byte, need)
	}
	buf = buf[:need]
	for i, x := range v {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(x))
	}
	return buf
}

// DecodeFloat64sInto decodes b into dst (which must have length len(b)/8).
func DecodeFloat64sInto(dst []float64, b []byte) {
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
}

// DecodeFloat64s inverts EncodeFloat64s.
func DecodeFloat64s(b []byte) []float64 { return decodeFloat64s(b) }

// EncodeFloat64sGatherInto encodes vec's entries at the given indices into
// buf (grown if needed) and returns the encoded slice: the k-th float64 of
// the result is vec[idx[k]]. This is the packing half of an index-list
// scatter/gather (halo) exchange. The buffer-reuse caveat of
// EncodeFloat64sInto applies: simmpi does not copy payloads, so buf must
// not be repacked until the previous message carrying it was consumed.
func EncodeFloat64sGatherInto(buf []byte, vec []float64, idx []int32) []byte {
	need := 8 * len(idx)
	if cap(buf) < need {
		buf = make([]byte, need)
	}
	buf = buf[:need]
	for k, i := range idx {
		binary.LittleEndian.PutUint64(buf[8*k:], math.Float64bits(vec[i]))
	}
	return buf
}

// DecodeFloat64sScatter decodes b into dst at the given indices:
// dst[idx[k]] = the k-th float64 of b; other entries are untouched. It is
// the unpacking half of an index-list halo exchange. A payload whose size
// disagrees with the index list is transport corruption (mis-matched tag
// or truncated blob) and panics descriptively, like the collectives'
// internal decode paths, instead of scattering garbage.
func DecodeFloat64sScatter(dst []float64, idx []int32, b []byte) {
	if len(b) != 8*len(idx) {
		panic(fmt.Sprintf("simmpi: scatter payload holds %d bytes for %d indices (want %d)",
			len(b), len(idx), 8*len(idx)))
	}
	for k, i := range idx {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*k:]))
	}
}

// DecodeFloat64sScatterAdd is DecodeFloat64sScatter with additive
// semantics: dst[idx[k]] += the k-th float64 of b. It is the reduction
// half of the boundary-only charge exchange, where several ranks'
// contributions at a shared partition-boundary node must sum; callers fix
// the summation order by fixing the order of their ScatterAdd calls.
func DecodeFloat64sScatterAdd(dst []float64, idx []int32, b []byte) {
	if len(b) != 8*len(idx) {
		panic(fmt.Sprintf("simmpi: scatter-add payload holds %d bytes for %d indices (want %d)",
			len(b), len(idx), 8*len(idx)))
	}
	for k, i := range idx {
		dst[i] += math.Float64frombits(binary.LittleEndian.Uint64(b[8*k:]))
	}
}

// EncodeInt64s is the exported codec for callers shipping int64 vectors.
func EncodeInt64s(v []int64) []byte { return encodeInt64s(v) }

// DecodeInt64s inverts EncodeInt64s.
func DecodeInt64s(b []byte) []int64 { return decodeInt64s(b) }
