package simmpi

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// TestCancelUnblocksReceivers proves Cancel aborts ranks blocked in a
// receive immediately (not after the deadline) and that the classified
// error matches ErrCanceled.
func TestCancelUnblocksReceivers(t *testing.T) {
	w := NewWorld(4, Options{Deadline: time.Hour}) // deadline must not rescue the test
	started := make(chan struct{})
	var once atomic.Bool
	errCh := make(chan error, 1)
	go func() {
		errCh <- w.Run(func(c *Comm) {
			if once.CompareAndSwap(false, true) {
				close(started)
			}
			// Every rank blocks on a message nobody will ever send.
			c.Recv((c.Rank()+1)%c.Size(), TagUserBase)
		})
	}()
	<-started
	w.Cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("Run returned %v; want ErrCanceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after Cancel — blocked receivers were not woken")
	}
	if !w.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
}

// TestCancelDuringCollective cancels a world whose ranks are inside a
// collective that can never complete (one rank withholds participation),
// and checks every rank unwinds as a survivor.
func TestCancelDuringCollective(t *testing.T) {
	w := NewWorld(4, Options{Deadline: time.Hour})
	entered := make(chan struct{}, 4)
	rep := make(chan *RunReport, 1)
	go func() {
		rep <- w.RunWithReport(func(c *Comm) {
			entered <- struct{}{}
			if c.Rank() == 3 {
				// Withhold participation until canceled: block on a recv
				// that aborts via the cancel check.
				c.Recv(0, TagUserBase)
				return
			}
			c.Barrier() // cannot complete without rank 3
		})
	}()
	for i := 0; i < 4; i++ {
		<-entered
	}
	time.Sleep(10 * time.Millisecond) // let ranks reach their blocking points
	w.Cancel()
	select {
	case r := <-rep:
		if !errors.Is(r.Err, ErrCanceled) {
			t.Fatalf("classified error %v; want ErrCanceled", r.Err)
		}
		if len(r.Survivors) != 4 {
			t.Fatalf("survivors %v; want all 4 ranks (cancel is not a failure)", r.Survivors)
		}
		if len(r.Failed) != 0 {
			t.Fatalf("failed %v; want none", r.Failed)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("RunWithReport did not return after Cancel")
	}
}

// TestCancelIdempotent checks double-Cancel is safe and CheckCancel fires.
func TestCancelIdempotent(t *testing.T) {
	w := NewWorld(2, Options{})
	w.Cancel()
	w.Cancel()
	err := w.Run(func(c *Comm) {
		c.CheckCancel()
		t.Error("CheckCancel did not abort on a canceled world")
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("Run returned %v; want ErrCanceled", err)
	}
}

// TestCancelLeaksNoGoroutines is the leak regression: after canceling a
// world stuck in a receive, the goroutine count returns to baseline.
func TestCancelLeaksNoGoroutines(t *testing.T) {
	baseline := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		w := NewWorld(8, Options{Deadline: time.Hour})
		errCh := make(chan error, 1)
		go func() {
			errCh <- w.Run(func(c *Comm) {
				c.Recv((c.Rank()+1)%c.Size(), TagUserBase)
			})
		}()
		time.Sleep(5 * time.Millisecond)
		w.Cancel()
		select {
		case <-errCh:
		case <-time.After(10 * time.Second):
			t.Fatal("canceled Run did not return")
		}
	}
	// Give exited goroutines a moment to be reaped by the scheduler.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		runtime.Gosched()
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: baseline %d, now %d", baseline, runtime.NumGoroutine())
}
