package simmpi

import "fmt"

// Collective operations, built on Send/Recv so that their traffic is
// counted with realistic message/byte structure. All ranks must call each
// collective in the same program order (the usual MPI contract); internal
// tags are drawn from a reserved range so collectives cannot be confused
// with user point-to-point traffic carrying small tags.

const (
	tagBarrier = -1000 - iota
	tagBcast
	tagGather
	tagScatter
	tagReduce
	tagAllgather
	tagAlltoall
	tagScanBase
)

// tagScan is the base for per-round scan tags (offset by the round mask).
const tagScan = tagScanBase - 64

// Barrier blocks until every rank has entered it. Dissemination algorithm:
// ceil(log2 n) rounds of paired zero-byte messages, any world size.
func (c *Comm) Barrier() {
	n := c.world.n
	if n == 1 {
		return
	}
	for dist := 1; dist < n; dist *= 2 {
		to := (c.rank + dist) % n
		from := (c.rank - dist + n) % n
		c.Send(to, tagBarrier-dist, nil)
		c.Recv(from, tagBarrier-dist)
	}
}

// binomial tree helpers: relative rank arithmetic rooted at root.
func (c *Comm) rel(root int) int      { return (c.rank - root + c.world.n) % c.world.n }
func (c *Comm) abs(root, rel int) int { return (rel + root) % c.world.n }

// Bcast distributes data from root to all ranks via a binomial tree and
// returns the received slice (root returns data unchanged).
func (c *Comm) Bcast(root int, data []byte) []byte {
	n := c.world.n
	if n == 1 {
		return data
	}
	r := c.rel(root)
	// Receive from parent (highest set bit of r).
	if r != 0 {
		mask := 1
		for mask <= r {
			mask <<= 1
		}
		mask >>= 1
		parent := r &^ mask
		data = c.Recv(c.abs(root, parent), tagBcast)
	}
	// Send to children: r + 2^k for 2^k > r, while in range.
	mask := 1
	for mask <= r {
		mask <<= 1
	}
	for ; mask < n; mask <<= 1 {
		child := r | mask
		if child < n {
			c.Send(c.abs(root, child), tagBcast, data)
		}
	}
	return data
}

// Gatherv collects each rank's buffer at root. Root returns a slice of n
// per-rank payloads (its own at index rank, unsent); other ranks return nil.
// The gather is linear — each rank sends directly to root — matching the
// "gather" stage of the paper's centralized exchange strategy.
func (c *Comm) Gatherv(root int, data []byte) [][]byte {
	if c.rank != root {
		c.Send(root, tagGather, data)
		return nil
	}
	out := make([][]byte, c.world.n)
	out[root] = data
	for r := 0; r < c.world.n; r++ {
		if r != root {
			out[r] = c.Recv(r, tagGather)
		}
	}
	return out
}

// Scatterv distributes parts[r] from root to rank r and returns this rank's
// part. parts is only read at root. Linear — matching the "scatter" stage
// of the paper's centralized exchange strategy.
func (c *Comm) Scatterv(root int, parts [][]byte) []byte {
	if c.rank == root {
		for r := 0; r < c.world.n; r++ {
			if r != root {
				c.Send(r, tagScatter, parts[r])
			}
		}
		return parts[root]
	}
	return c.Recv(root, tagScatter)
}

// ReduceOp combines two float64 values.
type ReduceOp func(a, b float64) float64

// Standard reduction operators.
var (
	OpSum ReduceOp = func(a, b float64) float64 { return a + b }
	OpMax ReduceOp = func(a, b float64) float64 {
		if a > b {
			return a
		}
		return b
	}
	OpMin ReduceOp = func(a, b float64) float64 {
		if a < b {
			return a
		}
		return b
	}
)

// AllreduceFloat64 reduces vals elementwise across all ranks with op and
// returns the result on every rank. Binomial-tree reduce to rank 0 followed
// by a binomial-tree broadcast.
func (c *Comm) AllreduceFloat64(vals []float64, op ReduceOp) []float64 {
	n := c.world.n
	acc := make([]float64, len(vals))
	copy(acc, vals)
	if n == 1 {
		return acc
	}
	r := c.rank // reduce is rooted at 0; relative rank == rank
	// Reduce: receive from children, then send to parent.
	for mask := 1; mask < n; mask <<= 1 {
		if r&mask != 0 {
			parent := r &^ mask
			c.Send(parent, tagReduce, encodeFloat64s(acc))
			acc = nil
			break
		}
		child := r | mask
		if child < n {
			theirs := decodeFloat64s(c.Recv(child, tagReduce))
			for i := range acc {
				acc[i] = op(acc[i], theirs[i])
			}
		}
	}
	var payload []byte
	if c.rank == 0 {
		payload = encodeFloat64s(acc)
	}
	return decodeFloat64s(c.Bcast(0, payload))
}

// AllreduceInt64 is AllreduceFloat64 for int64 sums (exact).
func (c *Comm) AllreduceInt64(vals []int64) []int64 {
	n := c.world.n
	acc := make([]int64, len(vals))
	copy(acc, vals)
	if n == 1 {
		return acc
	}
	r := c.rank
	for mask := 1; mask < n; mask <<= 1 {
		if r&mask != 0 {
			parent := r &^ mask
			c.Send(parent, tagReduce, encodeInt64s(acc))
			acc = nil
			break
		}
		child := r | mask
		if child < n {
			theirs := decodeInt64s(c.Recv(child, tagReduce))
			for i := range acc {
				acc[i] += theirs[i]
			}
		}
	}
	var payload []byte
	if c.rank == 0 {
		payload = encodeInt64s(acc)
	}
	return decodeInt64s(c.Bcast(0, payload))
}

// ExscanInt64 computes the exclusive prefix sum of each rank's values:
// rank r receives the elementwise sum over ranks 0..r-1 (zeros on rank 0).
// This is the collective behind particle renumbering (paper's Reindex
// component): each rank's ID block starts at the exclusive prefix of the
// global particle count. Hypercube-style dissemination in ceil(log2 n)
// rounds for power-of-two worlds; other sizes fall back to a (cheap) tree
// allreduce of the per-rank contribution vector.
func (c *Comm) ExscanInt64(vals []int64) []int64 {
	n := c.world.n
	out := make([]int64, len(vals))
	if n == 1 {
		return out
	}
	if n&(n-1) != 0 {
		// Non-power-of-two: gather every rank's contribution and sum the
		// prefix locally.
		contrib := make([]int64, n*len(vals))
		copy(contrib[c.rank*len(vals):], vals)
		all := c.AllreduceInt64(contrib)
		for r := 0; r < c.rank; r++ {
			for i := range out {
				out[i] += all[r*len(vals)+i]
			}
		}
		return out
	}
	// Hypercube exclusive scan: carry the running total of the processed
	// sub-cube; accumulate into the result only contributions from lower
	// ranks.
	acc := make([]int64, len(vals))
	copy(acc, vals)
	for mask := 1; mask < n; mask <<= 1 {
		partner := c.rank ^ mask
		c.Send(partner, tagScan-mask, encodeInt64s(acc))
		theirs := decodeInt64s(c.Recv(partner, tagScan-mask))
		for i := range acc {
			acc[i] += theirs[i]
		}
		if partner < c.rank {
			for i := range out {
				out[i] += theirs[i]
			}
		}
	}
	return out
}

// Allgatherv gathers every rank's buffer and returns all n payloads on
// every rank (gather to 0 + broadcast).
func (c *Comm) Allgatherv(data []byte) [][]byte {
	parts := c.Gatherv(0, data)
	var blob []byte
	if c.rank == 0 {
		blob = encodeParts(parts)
	}
	blob = c.Bcast(0, blob)
	out, err := decodeParts(blob)
	if err != nil {
		// The blob was packed by rank 0 in this same process, so a decode
		// failure means transport corruption (e.g. a cross-matched tag
		// under fault injection) — an invariant violation, reported like
		// simmpi's other contract panics and classified by Run.
		panic(fmt.Errorf("simmpi: rank %d Allgatherv received corrupt parts blob: %w", c.rank, err))
	}
	if len(out) != c.world.n {
		panic(fmt.Errorf("simmpi: rank %d Allgatherv decoded %d parts for a %d-rank world",
			c.rank, len(out), c.world.n))
	}
	// Tag consistency: every rank's own slot matches what it sent.
	out[c.rank] = data
	return out
}

// Alltoallv sends sendParts[r] to rank r and returns the n buffers received
// (own slot short-circuits). This is the flat building block used by the
// distributed exchange strategy's tests; the strategy itself implements the
// paper's two-round ordering explicitly.
//
// Alltoallv owns its internal tag: it used to reuse tagAllgather, which
// let an Alltoallv's point-to-point messages cross-match against any
// other collective round sharing that tag on the same comm — the exact
// (src, tag)-namespace collision the tag registry exists to prevent.
func (c *Comm) Alltoallv(sendParts [][]byte) [][]byte {
	n := c.world.n
	out := make([][]byte, n)
	out[c.rank] = sendParts[c.rank]
	for r := 0; r < n; r++ {
		if r != c.rank {
			c.Send(r, tagAlltoall, sendParts[r])
		}
	}
	for r := 0; r < n; r++ {
		if r != c.rank {
			out[r] = c.Recv(r, tagAlltoall)
		}
	}
	return out
}
