package simmpi

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// TestInjectedClockDrivesDeadline proves the deadline machinery reads the
// injected clock (Options.Clock): a fake clock that jumps an hour per
// reading expires the default 10-minute deadline on the first re-check, so
// a blocked receive reports deadlock without sleeping out any real time.
func TestInjectedClockDrivesDeadline(t *testing.T) {
	var mu sync.Mutex
	fake := time.Unix(0, 0)
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		fake = fake.Add(time.Hour)
		return fake
	}
	w := NewWorld(1, Options{Clock: clock})
	start := time.Now()
	err := w.Run(func(c *Comm) { c.Recv(0, 99) }) // never sent
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("want ErrDeadlock, got %v", err)
	}
	// Generous bound: the real default deadline is 10 minutes, so finishing
	// in seconds proves the fake clock (not the wall clock) was consulted.
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("deadlock detection took %v despite the fake clock", elapsed)
	}
}

// TestNilClockDefaultsToWallTime pins the default wiring: with no injected
// clock a receive that is eventually satisfied completes normally (the
// deadline path reads time.Now assigned at NewWorld).
func TestNilClockDefaultsToWallTime(t *testing.T) {
	w := NewWorld(2, Options{Deadline: 5 * time.Second})
	err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, TagUserBase, []byte{1})
		} else {
			c.Recv(0, TagUserBase)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
