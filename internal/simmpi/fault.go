package simmpi

import (
	"errors"
	"fmt"
	"strings"
)

// Fault injection and failure classification.
//
// Production MPI runs at the paper's scale (up to 1536 processes, hundreds
// of thousands of steps) treat rank failure as the norm, not the exception.
// This file gives the simulated runtime the same vocabulary: a
// deterministic FaultPlan kills a chosen rank at a chosen point, the world
// classifies the resulting error (rank failure vs genuine deadlock vs user
// panic), and the caller learns which ranks survived — the information a
// checkpoint/restart driver (core.ResilientRun) needs to decide whether
// recovery is possible.

// Sentinel errors for classification with errors.Is.
var (
	// ErrRankFailed marks errors caused by an (injected) rank failure,
	// including the induced aborts observed by surviving ranks.
	ErrRankFailed = errors.New("simmpi: rank failed")
	// ErrDeadlock marks a genuine communication deadlock: a receive that
	// exceeded its deadline while every rank was still alive.
	ErrDeadlock = errors.New("simmpi: deadlock")
)

// FaultPlan describes one deterministic fault injected into a world. The
// victim rank dies (panics with *RankFailure) when the first armed trigger
// fires; with DropSends set it stays alive but silently discards every
// send from the trigger on, emulating a sick NIC (peers then surface the
// loss as an enriched deadlock diagnostic naming the missing (src, tag)).
type FaultPlan struct {
	// Rank is the victim.
	Rank int
	// AtSend fires on the victim's Nth Send call (1-based; 0 disables).
	// Collective-internal sends count too, so a fault can land inside an
	// Allreduce or Barrier.
	AtSend int
	// AtRecv fires on the victim's Nth Recv call (1-based; 0 disables).
	AtRecv int
	// AtPhase fires when the victim enters the named phase via SetPhase
	// ("" disables); AtPhaseN selects the Nth entry (default 1st).
	AtPhase  string
	AtPhaseN int
	// DropSends switches from kill mode to message-drop mode: instead of
	// dying, the victim silently drops all sends from the trigger on.
	DropSends bool
}

// RankFailure is the panic value (and per-rank error) of a rank killed by
// a FaultPlan. It classifies as ErrRankFailed under errors.Is.
type RankFailure struct {
	Rank    int
	Trigger string // e.g. "send #12", "recv #3", "phase Poisson_Solve (entry 2)"
}

func (f *RankFailure) Error() string {
	return fmt.Sprintf("simmpi: rank %d failed at %s", f.Rank, f.Trigger)
}

func (f *RankFailure) Is(target error) bool { return target == ErrRankFailed }

// PendingMessage is one unmatched message sitting in a mailbox, reported
// by deadlock diagnostics.
type PendingMessage struct {
	Src, Tag, Len int
}

// DeadlockError is the panic value (and per-rank error) of a receive that
// exceeded the world deadline with no peer failure in flight. It carries
// the wanted (src, tag) and a snapshot of the unmatched messages queued at
// the blocked rank, which usually names the guilty sender immediately. It
// classifies as ErrDeadlock under errors.Is.
type DeadlockError struct {
	Rank             int
	WantSrc, WantTag int
	Pending          []PendingMessage
}

func (d *DeadlockError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "simmpi: rank %d deadlocked waiting for (src=%d, tag=%d)", d.Rank, d.WantSrc, d.WantTag)
	if len(d.Pending) == 0 {
		b.WriteString("; mailbox empty")
		return b.String()
	}
	fmt.Fprintf(&b, "; %d unmatched queued:", len(d.Pending))
	const maxShown = 8
	for i, p := range d.Pending {
		if i == maxShown {
			fmt.Fprintf(&b, " … (+%d more)", len(d.Pending)-maxShown)
			break
		}
		fmt.Fprintf(&b, " (src=%d, tag=%d, %dB)", p.Src, p.Tag, p.Len)
	}
	return b.String()
}

func (d *DeadlockError) Is(target error) bool { return target == ErrDeadlock }

// abortError is the panic value of a rank whose blocking receive was
// interrupted because a peer failed. It classifies as ErrRankFailed (the
// peer's failure is the root cause, not a deadlock).
type abortError struct {
	rank  int
	cause *RankFailure
}

func (a *abortError) Error() string {
	return fmt.Sprintf("simmpi: rank %d aborted: %v", a.rank, a.cause)
}

func (a *abortError) Is(target error) bool { return target == ErrRankFailed }

func (a *abortError) Unwrap() error { return a.cause }

// RunReport is the per-rank outcome of one World.Run, for callers that
// need more than the single classified error — notably recovery drivers
// deciding whether a failed run can be restarted.
type RunReport struct {
	// PerRank holds each rank's error (nil for ranks that completed).
	PerRank []error
	// Failed lists ranks that died via an injected RankFailure.
	Failed []int
	// Survivors lists ranks that did not themselves fail: ranks that
	// completed cleanly, plus ranks aborted mid-operation by a peer's
	// failure (in a real MPI runtime those processes are still alive and
	// would enter recovery).
	Survivors []int
	// Err is the classified world-level error: a genuine user panic wins
	// over rank failures, which win over induced aborts and deadlocks.
	Err error
}

// classify builds Failed/Survivors/Err from PerRank.
func (rep *RunReport) classify() {
	var userErr, failErr, cancelErr, deadErr error
	for rank, err := range rep.PerRank {
		if err == nil {
			rep.Survivors = append(rep.Survivors, rank)
			continue
		}
		switch e := err.(type) {
		case *RankFailure:
			rep.Failed = append(rep.Failed, rank)
			if failErr == nil {
				failErr = e
			}
		case *abortError:
			rep.Survivors = append(rep.Survivors, rank)
		case *CancelError:
			// A canceled rank is alive and unwound cooperatively — a
			// survivor, like a peer-failure abort.
			rep.Survivors = append(rep.Survivors, rank)
			if cancelErr == nil {
				cancelErr = e
			}
		case *DeadlockError:
			rep.Survivors = append(rep.Survivors, rank)
			if deadErr == nil {
				deadErr = e
			}
		default:
			if userErr == nil {
				userErr = err
			}
		}
	}
	switch {
	case userErr != nil:
		// Root-cause preference: a real panic explains the induced
		// deadlocks of its peers.
		rep.Err = userErr
	case failErr != nil:
		rep.Err = fmt.Errorf("%w; survivors: %v", failErr, rep.Survivors)
	case cancelErr != nil:
		// Cancellation explains any deadlock diagnostics it induced (a
		// rank can exceed its receive deadline while peers unwind).
		rep.Err = cancelErr
	case deadErr != nil:
		rep.Err = deadErr
	}
}
