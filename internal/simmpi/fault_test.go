package simmpi

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestFaultKillAtSend(t *testing.T) {
	w := NewWorld(3, Options{Fault: &FaultPlan{Rank: 1, AtSend: 2}})
	rep := w.RunWithReport(func(c *Comm) {
		// Everyone sends two messages to the next rank, then receives two.
		next := (c.Rank() + 1) % 3
		prev := (c.Rank() + 2) % 3
		c.Send(next, 1, []byte{1})
		c.Send(next, 2, []byte{2}) // rank 1 dies here
		c.Recv(prev, 1)
		c.Recv(prev, 2)
	})
	if rep.Err == nil || !errors.Is(rep.Err, ErrRankFailed) {
		t.Fatalf("want ErrRankFailed, got %v", rep.Err)
	}
	if len(rep.Failed) != 1 || rep.Failed[0] != 1 {
		t.Errorf("Failed = %v, want [1]", rep.Failed)
	}
	for _, r := range []int{0, 2} {
		found := false
		for _, s := range rep.Survivors {
			if s == r {
				found = true
			}
		}
		if !found {
			t.Errorf("rank %d missing from survivors %v", r, rep.Survivors)
		}
	}
	var rf *RankFailure
	if !errors.As(rep.PerRank[1], &rf) || !strings.Contains(rf.Trigger, "send #2") {
		t.Errorf("victim error = %v, want send #2 trigger", rep.PerRank[1])
	}
}

func TestFaultKillAtRecv(t *testing.T) {
	w := NewWorld(2, Options{Fault: &FaultPlan{Rank: 0, AtRecv: 1}})
	err := w.Run(func(c *Comm) {
		c.Send((c.Rank()+1)%2, 3, []byte{9})
		c.Recv((c.Rank()+1)%2, 3)
	})
	if !errors.Is(err, ErrRankFailed) {
		t.Fatalf("want ErrRankFailed, got %v", err)
	}
	if errors.Is(err, ErrDeadlock) {
		t.Error("rank failure misclassified as deadlock")
	}
}

func TestFaultKillAtPhase(t *testing.T) {
	w := NewWorld(2, Options{Fault: &FaultPlan{Rank: 1, AtPhase: "Poisson", AtPhaseN: 2}})
	rep := w.RunWithReport(func(c *Comm) {
		for i := 0; i < 3; i++ {
			c.SetPhase("Poisson") // rank 1 dies on the 2nd entry
			c.Barrier()
			c.SetPhase("")
		}
	})
	if !errors.Is(rep.Err, ErrRankFailed) {
		t.Fatalf("want ErrRankFailed, got %v", rep.Err)
	}
	var rf *RankFailure
	if !errors.As(rep.PerRank[1], &rf) || !strings.Contains(rf.Trigger, "entry 2") {
		t.Errorf("victim error = %v, want phase entry 2 trigger", rep.PerRank[1])
	}
}

// A rank killed mid-Allreduce must surface ErrRankFailed — not a deadlock
// panic — on every surviving rank.
func TestFaultMidAllreduceSurfacesRankFailed(t *testing.T) {
	const n = 4
	// The victim's first send inside AllreduceInt64 is its reduce-tree
	// contribution; killing there strands the peers inside the collective.
	w := NewWorld(n, Options{Fault: &FaultPlan{Rank: 2, AtSend: 1}})
	rep := w.RunWithReport(func(c *Comm) {
		c.AllreduceInt64([]int64{int64(c.Rank())})
	})
	if !errors.Is(rep.Err, ErrRankFailed) {
		t.Fatalf("world error = %v, want ErrRankFailed", rep.Err)
	}
	for r := 0; r < n; r++ {
		err := rep.PerRank[r]
		if r == 2 {
			if !errors.Is(err, ErrRankFailed) {
				t.Errorf("victim error = %v", err)
			}
			continue
		}
		// Survivors either finished before the failure mattered or were
		// aborted by it — but never misdiagnosed as deadlocked.
		if err != nil && !errors.Is(err, ErrRankFailed) {
			t.Errorf("survivor rank %d error = %v, want nil or ErrRankFailed", r, err)
		}
		if errors.Is(err, ErrDeadlock) {
			t.Errorf("survivor rank %d misclassified as deadlock: %v", r, err)
		}
	}
	if len(rep.Failed) != 1 || rep.Failed[0] != 2 {
		t.Errorf("Failed = %v, want [2]", rep.Failed)
	}
	if len(rep.Survivors) != n-1 {
		t.Errorf("Survivors = %v, want the %d non-victims", rep.Survivors, n-1)
	}
}

// Failure recovery must be prompt: survivors abort via the failure flag
// long before the (here: very generous) receive deadline expires.
func TestFaultAbortsSurvivorsPromptly(t *testing.T) {
	w := NewWorld(3, Options{Deadline: time.Hour, Fault: &FaultPlan{Rank: 0, AtSend: 1}})
	done := make(chan *RunReport, 1)
	go func() {
		done <- w.RunWithReport(func(c *Comm) {
			c.Barrier()
		})
	}()
	select {
	case rep := <-done:
		if !errors.Is(rep.Err, ErrRankFailed) {
			t.Fatalf("got %v", rep.Err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("survivors did not abort promptly after rank failure")
	}
}

func TestFaultDropSendsSurfacesEnrichedDeadlock(t *testing.T) {
	// Rank 0's second send onward is dropped; rank 1 first drains the
	// delivered message, then blocks on the dropped one and must report a
	// deadlock naming the wanted (src, tag) and the unmatched queue.
	w := NewWorld(2, Options{
		Deadline: 300 * time.Millisecond,
		Fault:    &FaultPlan{Rank: 0, AtSend: 2, DropSends: true},
	})
	rep := w.RunWithReport(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, []byte("ok"))
			c.Send(1, 2, []byte("dropped"))
			c.Send(1, 3, []byte("dropped too"))
		} else {
			c.Send(0, 7, []byte("unclaimed")) // sits unmatched in rank 0's box
			if string(c.Recv(0, 1)) != "ok" {
				panic("pre-trigger message corrupted")
			}
			c.Recv(0, 2) // never arrives
		}
	})
	if !errors.Is(rep.Err, ErrDeadlock) {
		t.Fatalf("want ErrDeadlock, got %v", rep.Err)
	}
	var de *DeadlockError
	if !errors.As(rep.PerRank[1], &de) {
		t.Fatalf("rank 1 error = %v, want DeadlockError", rep.PerRank[1])
	}
	if de.WantSrc != 0 || de.WantTag != 2 {
		t.Errorf("deadlock wants (src=%d, tag=%d), want (0, 2)", de.WantSrc, de.WantTag)
	}
	msg := de.Error()
	if !strings.Contains(msg, "src=0, tag=2") {
		t.Errorf("diagnostic %q does not name the wanted (src, tag)", msg)
	}
}

func TestDeadlockDiagnosticListsPendingQueue(t *testing.T) {
	w := NewWorld(2, Options{Deadline: 300 * time.Millisecond})
	rep := w.RunWithReport(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 10, []byte("aa"))
			c.Send(1, 11, []byte("bbbb"))
		} else {
			c.Recv(0, 99) // wrong tag: deadline expires with 2 queued
		}
	})
	if !errors.Is(rep.Err, ErrDeadlock) {
		t.Fatalf("want ErrDeadlock, got %v", rep.Err)
	}
	msg := rep.Err.Error()
	for _, want := range []string{"(src=0, tag=99)", "(src=0, tag=10, 2B)", "(src=0, tag=11, 4B)"} {
		if !strings.Contains(msg, want) {
			t.Errorf("diagnostic %q missing %q", msg, want)
		}
	}
}

func TestUserPanicStillWinsOverInducedErrors(t *testing.T) {
	// A genuine user panic must remain the reported root cause.
	w := NewWorld(2, Options{Deadline: 300 * time.Millisecond})
	err := w.Run(func(c *Comm) {
		if c.Rank() == 1 {
			panic("user bug")
		}
		c.Recv(1, 9)
	})
	if err == nil || !strings.Contains(err.Error(), "user bug") {
		t.Fatalf("got %v, want the user panic", err)
	}
	if errors.Is(err, ErrRankFailed) || errors.Is(err, ErrDeadlock) {
		t.Errorf("user panic misclassified: %v", err)
	}
}
