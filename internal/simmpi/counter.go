package simmpi

import "sort"

// PhaseStats is the traffic a rank sent during one named phase.
type PhaseStats struct {
	Messages int64 // point-to-point sends (collective-internal sends included)
	Bytes    int64 // payload bytes sent
	Local    int64 // self-sends (no network cost)
}

// Counter accumulates per-phase traffic for one rank. It is only written by
// the owning rank's goroutine during Run and read after Run completes, so
// it needs no locking.
type Counter struct {
	phases map[string]*PhaseStats
}

// NewCounter returns an empty counter.
func NewCounter() *Counter {
	return &Counter{phases: make(map[string]*PhaseStats)}
}

func (c *Counter) record(phase string, local bool, n int) {
	s := c.phases[phase]
	if s == nil {
		s = &PhaseStats{}
		c.phases[phase] = s
	}
	s.Messages++
	s.Bytes += int64(n)
	if local {
		s.Local++
	}
}

// Phase returns the stats for one phase (zero stats if never used).
func (c *Counter) Phase(name string) PhaseStats {
	if s := c.phases[name]; s != nil {
		return *s
	}
	return PhaseStats{}
}

// Phases returns the phase names seen, sorted.
func (c *Counter) Phases() []string {
	names := make([]string, 0, len(c.phases))
	for n := range c.phases {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Total returns the sum over all phases.
func (c *Counter) Total() PhaseStats {
	var t PhaseStats
	for _, s := range c.phases {
		t.Messages += s.Messages
		t.Bytes += s.Bytes
		t.Local += s.Local
	}
	return t
}

// Reset clears all accumulated stats.
func (c *Counter) Reset() {
	c.phases = make(map[string]*PhaseStats)
}

// AggregatePhase sums one phase across a set of per-rank counters and also
// returns the per-rank maximum — the quantity that bounds a bulk-
// synchronous phase's modeled time.
func AggregatePhase(counters []*Counter, phase string) (total, maxPerRank PhaseStats) {
	for _, c := range counters {
		s := c.Phase(phase)
		total.Messages += s.Messages
		total.Bytes += s.Bytes
		total.Local += s.Local
		if s.Messages > maxPerRank.Messages {
			maxPerRank.Messages = s.Messages
		}
		if s.Bytes > maxPerRank.Bytes {
			maxPerRank.Bytes = s.Bytes
		}
		if s.Local > maxPerRank.Local {
			maxPerRank.Local = s.Local
		}
	}
	return total, maxPerRank
}
