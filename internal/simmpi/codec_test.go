package simmpi

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFloat64sRoundTrip(t *testing.T) {
	f := func(vals []float64) bool {
		got := DecodeFloat64s(EncodeFloat64s(vals))
		if len(got) != len(vals) {
			return false
		}
		for i := range vals {
			// NaNs compare by bit pattern.
			if math.Float64bits(got[i]) != math.Float64bits(vals[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if DecodeFloat64s(EncodeFloat64s(nil)) != nil {
		t.Error("nil does not round-trip to nil")
	}
}

func TestInt64sRoundTrip(t *testing.T) {
	f := func(vals []int64) bool {
		got := DecodeInt64s(EncodeInt64s(vals))
		if len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeFloat64sInto(t *testing.T) {
	vals := []float64{1.5, -2.25, 3}
	// Small buffer grows.
	buf := EncodeFloat64sInto(make([]byte, 2), vals)
	if len(buf) != 24 {
		t.Fatalf("len %d", len(buf))
	}
	dst := make([]float64, 3)
	DecodeFloat64sInto(dst, buf)
	for i := range vals {
		if dst[i] != vals[i] {
			t.Fatalf("dst[%d] = %v", i, dst[i])
		}
	}
	// Large buffer is reused (no realloc).
	big := make([]byte, 100)
	out := EncodeFloat64sInto(big, vals)
	if &out[0] != &big[0] {
		t.Error("buffer not reused")
	}
}

func TestPartsRoundTrip(t *testing.T) {
	parts := [][]byte{[]byte("a"), nil, {}, []byte("long-payload-here")}
	got, err := decodeParts(encodeParts(parts))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("len %d", len(got))
	}
	if string(got[0]) != "a" || got[1] != nil || string(got[3]) != "long-payload-here" {
		t.Errorf("parts mismatch: %q", got)
	}
	// Empty non-nil part: zero length.
	if len(got[2]) != 0 {
		t.Error("empty part gained bytes")
	}
}

// TestDecodePartsTruncation pins the hardening: any prefix of a valid
// blob — and a few hand-corrupted shapes — must decode to a descriptive
// error, never a panic. Empty and short blobs are reachable under
// fault-injected delivery (a cross-matched tag delivers a payload of the
// wrong shape).
func TestDecodePartsTruncation(t *testing.T) {
	valid := encodeParts([][]byte{[]byte("abc"), nil, []byte("defghij")})
	if _, err := decodeParts(valid); err != nil {
		t.Fatalf("valid blob rejected: %v", err)
	}
	// Every strict prefix must error (a prefix can never be valid: the
	// decoder demands the byte stream end exactly at the declared parts).
	for cut := 0; cut < len(valid); cut++ {
		if _, err := decodeParts(valid[:cut]); err == nil {
			t.Errorf("prefix of %d/%d bytes decoded without error", cut, len(valid))
		}
	}
	cases := []struct {
		name string
		blob []byte
	}{
		{"nil", nil},
		{"empty", []byte{}},
		{"count-only-huge", []byte{0xff, 0xff, 0xff, 0x7f}},
		{"count-exceeds-blob", append([]byte{5, 0, 0, 0}, 1, 0, 0, 0, 'x')},
		{"part-len-exceeds-blob", append([]byte{1, 0, 0, 0}, 200, 0, 0, 0, 'x', 'y')},
		{"trailing-garbage", append(append([]byte{}, valid...), 0xde, 0xad)},
	}
	for _, tc := range cases {
		if _, err := decodeParts(tc.blob); err == nil {
			t.Errorf("%s: decoded without error", tc.name)
		}
	}
}

func TestGatherScatterCodec(t *testing.T) {
	vec := []float64{0, 10, 20, 30, 40, 50}
	idx := []int32{1, 4, 2}
	buf := EncodeFloat64sGatherInto(make([]byte, 2), vec, idx) // small buffer grows
	if len(buf) != 24 {
		t.Fatalf("len %d", len(buf))
	}
	dst := []float64{-1, -1, -1, -1, -1, -1}
	DecodeFloat64sScatter(dst, idx, buf)
	want := []float64{-1, 10, 20, -1, 40, -1}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("dst[%d] = %v, want %v", i, dst[i], want[i])
		}
	}
	// Large buffer is reused (no realloc).
	big := make([]byte, 100)
	out := EncodeFloat64sGatherInto(big, vec, idx)
	if &out[0] != &big[0] {
		t.Error("buffer not reused")
	}
	// Empty index list encodes to an empty payload and scatters nothing.
	if got := EncodeFloat64sGatherInto(nil, vec, nil); len(got) != 0 {
		t.Errorf("empty gather encoded %d bytes", len(got))
	}
	DecodeFloat64sScatter(dst, nil, nil)
}

func TestDecodeFloat64sScatterSizeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("size-mismatched scatter payload did not panic")
		}
	}()
	DecodeFloat64sScatter(make([]float64, 4), []int32{0, 1}, make([]byte, 8))
}

func TestDecodeFloat64sScatterAdd(t *testing.T) {
	vec := []float64{0, 10, 20, 30, 40, 50}
	idx := []int32{1, 4, 2}
	buf := EncodeFloat64sGatherInto(nil, vec, idx)
	dst := []float64{1, 2, 3, 4, 5, 6}
	DecodeFloat64sScatterAdd(dst, idx, buf)
	want := []float64{1, 12, 23, 4, 45, 6}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("dst[%d] = %v, want %v", i, dst[i], want[i])
		}
	}
	// A second application accumulates again rather than overwriting.
	DecodeFloat64sScatterAdd(dst, idx, buf)
	if dst[1] != 22 || dst[4] != 85 || dst[2] != 43 {
		t.Fatalf("second scatter-add did not accumulate: %v", dst)
	}
	DecodeFloat64sScatterAdd(dst, nil, nil) // empty exchange is a no-op
}

func TestDecodeFloat64sScatterAddSizeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("size-mismatched scatter-add payload did not panic")
		}
	}()
	DecodeFloat64sScatterAdd(make([]float64, 4), []int32{0, 1}, make([]byte, 8))
}
