package simmpi

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFloat64sRoundTrip(t *testing.T) {
	f := func(vals []float64) bool {
		got := DecodeFloat64s(EncodeFloat64s(vals))
		if len(got) != len(vals) {
			return false
		}
		for i := range vals {
			// NaNs compare by bit pattern.
			if math.Float64bits(got[i]) != math.Float64bits(vals[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if DecodeFloat64s(EncodeFloat64s(nil)) != nil {
		t.Error("nil does not round-trip to nil")
	}
}

func TestInt64sRoundTrip(t *testing.T) {
	f := func(vals []int64) bool {
		got := DecodeInt64s(EncodeInt64s(vals))
		if len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeFloat64sInto(t *testing.T) {
	vals := []float64{1.5, -2.25, 3}
	// Small buffer grows.
	buf := EncodeFloat64sInto(make([]byte, 2), vals)
	if len(buf) != 24 {
		t.Fatalf("len %d", len(buf))
	}
	dst := make([]float64, 3)
	DecodeFloat64sInto(dst, buf)
	for i := range vals {
		if dst[i] != vals[i] {
			t.Fatalf("dst[%d] = %v", i, dst[i])
		}
	}
	// Large buffer is reused (no realloc).
	big := make([]byte, 100)
	out := EncodeFloat64sInto(big, vals)
	if &out[0] != &big[0] {
		t.Error("buffer not reused")
	}
}

func TestPartsRoundTrip(t *testing.T) {
	parts := [][]byte{[]byte("a"), nil, {}, []byte("long-payload-here")}
	got := decodeParts(encodeParts(parts))
	if len(got) != 4 {
		t.Fatalf("len %d", len(got))
	}
	if string(got[0]) != "a" || got[1] != nil || string(got[3]) != "long-payload-here" {
		t.Errorf("parts mismatch: %q", got)
	}
	// Empty non-nil part: zero length.
	if len(got[2]) != 0 {
		t.Error("empty part gained bytes")
	}
}
