package simmpi

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestSendRecvBasic(t *testing.T) {
	w := NewWorld(2, Options{})
	err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 7, []byte("hello"))
		} else {
			got := c.Recv(0, 7)
			if string(got) != "hello" {
				panic(fmt.Sprintf("got %q", got))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagMatching(t *testing.T) {
	// Messages with different tags arrive out of request order; Recv must
	// match by tag, not queue position.
	w := NewWorld(2, Options{})
	err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, []byte("first"))
			c.Send(1, 2, []byte("second"))
		} else {
			second := c.Recv(0, 2)
			first := c.Recv(0, 1)
			if string(first) != "first" || string(second) != "second" {
				panic("tag matching failed")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFIFOPerPair(t *testing.T) {
	w := NewWorld(2, Options{})
	const n = 100
	err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				c.Send(1, 5, []byte{byte(i)})
			}
		} else {
			for i := 0; i < n; i++ {
				got := c.Recv(0, 5)
				if got[0] != byte(i) {
					panic(fmt.Sprintf("out of order: got %d want %d", got[0], i))
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSelfSend(t *testing.T) {
	w := NewWorld(1, Options{})
	err := w.Run(func(c *Comm) {
		c.Send(0, 3, []byte("me"))
		if string(c.Recv(0, 3)) != "me" {
			panic("self send failed")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInvalidRankPanicsCaptured(t *testing.T) {
	w := NewWorld(1, Options{})
	if err := w.Run(func(c *Comm) { c.Send(5, 0, nil) }); err == nil {
		t.Error("invalid Send rank not reported")
	}
	w2 := NewWorld(1, Options{})
	if err := w2.Run(func(c *Comm) { c.Recv(-1, 0) }); err == nil {
		t.Error("invalid Recv rank not reported")
	}
}

func TestDeadlockDetected(t *testing.T) {
	w := NewWorld(1, Options{Deadline: 300 * time.Millisecond})
	err := w.Run(func(c *Comm) {
		c.Recv(0, 99) // never sent
	})
	if err == nil {
		t.Fatal("deadlock not detected")
	}
}

func TestBarrier(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8, 17} {
		w := NewWorld(n, Options{})
		order := make(chan int, 2*n)
		err := w.Run(func(c *Comm) {
			if c.Rank() == 0 {
				time.Sleep(50 * time.Millisecond) // rank 0 is slow
			}
			order <- 1 // before barrier
			c.Barrier()
			order <- 2 // after barrier
		})
		if err != nil {
			t.Fatal(err)
		}
		close(order)
		// All "1" events must precede all "2" events.
		seen2 := false
		for v := range order {
			if v == 2 {
				seen2 = true
			} else if seen2 {
				t.Fatalf("n=%d: rank passed barrier before all entered", n)
			}
		}
	}
}

func TestBcast(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 16} {
		for root := 0; root < n; root += 2 {
			w := NewWorld(n, Options{})
			payload := []byte("broadcast-data")
			err := w.Run(func(c *Comm) {
				var data []byte
				if c.Rank() == root {
					data = payload
				}
				got := c.Bcast(root, data)
				if !bytes.Equal(got, payload) {
					panic(fmt.Sprintf("rank %d got %q", c.Rank(), got))
				}
			})
			if err != nil {
				t.Fatalf("n=%d root=%d: %v", n, root, err)
			}
		}
	}
}

func TestGathervScatterv(t *testing.T) {
	const n = 5
	w := NewWorld(n, Options{})
	err := w.Run(func(c *Comm) {
		mine := []byte(fmt.Sprintf("rank-%d", c.Rank()))
		parts := c.Gatherv(2, mine)
		if c.Rank() == 2 {
			for r := 0; r < n; r++ {
				want := fmt.Sprintf("rank-%d", r)
				if string(parts[r]) != want {
					panic(fmt.Sprintf("gather slot %d = %q", r, parts[r]))
				}
			}
		} else if parts != nil {
			panic("non-root got gather result")
		}
		// Scatter back doubled.
		var out [][]byte
		if c.Rank() == 2 {
			out = make([][]byte, n)
			for r := 0; r < n; r++ {
				out[r] = append(parts[r], parts[r]...)
			}
		}
		got := c.Scatterv(2, out)
		want := mine
		want = append(want, mine...)
		if !bytes.Equal(got, want) {
			panic(fmt.Sprintf("scatter: rank %d got %q", c.Rank(), got))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceFloat64(t *testing.T) {
	for _, n := range []int{1, 2, 3, 6, 13} {
		w := NewWorld(n, Options{})
		err := w.Run(func(c *Comm) {
			vals := []float64{float64(c.Rank()), 1, -float64(c.Rank())}
			sum := c.AllreduceFloat64(vals, OpSum)
			wantSum := float64(n*(n-1)) / 2
			if sum[0] != wantSum || sum[1] != float64(n) || sum[2] != -wantSum {
				panic(fmt.Sprintf("rank %d sum=%v", c.Rank(), sum))
			}
			mx := c.AllreduceFloat64([]float64{float64(c.Rank())}, OpMax)
			if mx[0] != float64(n-1) {
				panic(fmt.Sprintf("max=%v", mx))
			}
			mn := c.AllreduceFloat64([]float64{float64(c.Rank())}, OpMin)
			if mn[0] != 0 {
				panic(fmt.Sprintf("min=%v", mn))
			}
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestAllreduceInt64(t *testing.T) {
	const n = 9
	w := NewWorld(n, Options{})
	err := w.Run(func(c *Comm) {
		got := c.AllreduceInt64([]int64{int64(c.Rank()), 2})
		if got[0] != int64(n*(n-1)/2) || got[1] != 2*n {
			panic(fmt.Sprintf("got %v", got))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgatherv(t *testing.T) {
	const n = 6
	w := NewWorld(n, Options{})
	err := w.Run(func(c *Comm) {
		mine := []byte{byte(c.Rank()), byte(c.Rank() * 2)}
		all := c.Allgatherv(mine)
		for r := 0; r < n; r++ {
			if all[r][0] != byte(r) || all[r][1] != byte(2*r) {
				panic(fmt.Sprintf("slot %d = %v", r, all[r]))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoallv(t *testing.T) {
	const n = 4
	w := NewWorld(n, Options{})
	err := w.Run(func(c *Comm) {
		send := make([][]byte, n)
		for r := 0; r < n; r++ {
			send[r] = []byte{byte(c.Rank()), byte(r)}
		}
		got := c.Alltoallv(send)
		for r := 0; r < n; r++ {
			if got[r][0] != byte(r) || got[r][1] != byte(c.Rank()) {
				panic(fmt.Sprintf("rank %d slot %d = %v", c.Rank(), r, got[r]))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCounters(t *testing.T) {
	w := NewWorld(2, Options{})
	err := w.Run(func(c *Comm) {
		c.SetPhase("phase-a")
		if c.Rank() == 0 {
			c.Send(1, 1, make([]byte, 100))
			c.SetPhase("phase-b")
			c.Send(1, 2, make([]byte, 50))
			c.Send(0, 3, make([]byte, 10)) // self-send
			c.Recv(0, 3)
		} else {
			c.Recv(0, 1)
			c.Recv(0, 2)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	c0 := w.Counters()[0]
	a := c0.Phase("phase-a")
	if a.Messages != 1 || a.Bytes != 100 || a.Local != 0 {
		t.Errorf("phase-a stats: %+v", a)
	}
	b := c0.Phase("phase-b")
	if b.Messages != 2 || b.Bytes != 60 || b.Local != 1 {
		t.Errorf("phase-b stats: %+v", b)
	}
	tot := c0.Total()
	if tot.Messages != 3 || tot.Bytes != 160 {
		t.Errorf("total: %+v", tot)
	}
	if got := c0.Phases(); len(got) != 2 || got[0] != "phase-a" || got[1] != "phase-b" {
		t.Errorf("phases: %v", got)
	}
	// Rank 1 sent nothing.
	if w.Counters()[1].Total().Messages != 0 {
		t.Error("rank 1 counted sends")
	}
	total, maxPer := AggregatePhase(w.Counters(), "phase-a")
	if total.Messages != 1 || maxPer.Messages != 1 {
		t.Errorf("aggregate: %+v %+v", total, maxPer)
	}
	c0.Reset()
	if c0.Total().Messages != 0 {
		t.Error("reset failed")
	}
}

func TestPerturbedDeliveryStillCorrect(t *testing.T) {
	// With delivery order perturbation, tag/source matching must still
	// deliver every message to the right receive call.
	const n = 6
	w := NewWorld(n, Options{PerturbDelivery: true, PerturbSeed: 42})
	err := w.Run(func(c *Comm) {
		// Every rank sends 20 tagged messages to every other rank.
		for r := 0; r < n; r++ {
			if r == c.Rank() {
				continue
			}
			for i := 0; i < 20; i++ {
				c.Send(r, i%3, []byte{byte(c.Rank()), byte(i)})
			}
		}
		// Receive and verify per-(src,tag) FIFO.
		for r := 0; r < n; r++ {
			if r == c.Rank() {
				continue
			}
			next := map[int]int{0: 0, 1: 1, 2: 2}
			for i := 0; i < 20; i++ {
				tag := i % 3
				got := c.Recv(r, tag)
				if int(got[0]) != r {
					panic("wrong source payload")
				}
				if int(got[1]) != next[tag] {
					panic(fmt.Sprintf("FIFO violated for (src=%d, tag=%d): got %d want %d",
						r, tag, got[1], next[tag]))
				}
				next[tag] += 3
			}
		}
		// Collectives still work under perturbation.
		sum := c.AllreduceFloat64([]float64{1}, OpSum)
		if sum[0] != n {
			panic("allreduce under perturbation")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestManyRanksStress(t *testing.T) {
	const n = 64
	w := NewWorld(n, Options{})
	err := w.Run(func(c *Comm) {
		for round := 0; round < 3; round++ {
			c.Barrier()
			got := c.AllreduceInt64([]int64{1})
			if got[0] != n {
				panic("bad allreduce")
			}
			all := c.Allgatherv([]byte{byte(c.Rank())})
			for r := 0; r < n; r++ {
				if all[r][0] != byte(r) {
					panic("bad allgather")
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSendRecvPingPong(b *testing.B) {
	w := NewWorld(2, Options{})
	payload := make([]byte, 1024)
	b.ResetTimer()
	err := w.Run(func(c *Comm) {
		for i := 0; i < b.N; i++ {
			if c.Rank() == 0 {
				c.Send(1, 0, payload)
				c.Recv(1, 0)
			} else {
				c.Recv(0, 0)
				c.Send(0, 0, payload)
			}
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkAllreduce64Ranks(b *testing.B) {
	w := NewWorld(64, Options{})
	vals := make([]float64, 16)
	err := w.Run(func(c *Comm) {
		for i := 0; i < b.N; i++ {
			c.AllreduceFloat64(vals, OpSum)
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

func TestExscanInt64(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16, 3, 5, 7, 12} {
		w := NewWorld(n, Options{})
		err := w.Run(func(c *Comm) {
			// Rank r contributes [r+1, 10*(r+1)].
			got := c.ExscanInt64([]int64{int64(c.Rank() + 1), int64(10 * (c.Rank() + 1))})
			var want0, want1 int64
			for r := 0; r < c.Rank(); r++ {
				want0 += int64(r + 1)
				want1 += int64(10 * (r + 1))
			}
			if got[0] != want0 || got[1] != want1 {
				panic(fmt.Sprintf("n=%d rank %d: exscan %v, want [%d %d]", n, c.Rank(), got, want0, want1))
			}
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestRunReportsRootCausePanic(t *testing.T) {
	// Rank 1 dies with a real panic; rank 0 then deadlocks waiting for it.
	// Run must surface rank 1's panic, not the induced deadlock.
	w := NewWorld(2, Options{Deadline: 300 * time.Millisecond})
	err := w.Run(func(c *Comm) {
		if c.Rank() == 1 {
			panic("root cause")
		}
		c.Recv(1, 9)
	})
	if err == nil {
		t.Fatal("no error")
	}
	if !strings.Contains(err.Error(), "root cause") {
		t.Errorf("got %v, want the root-cause panic", err)
	}
}
