package simmpi

import "testing"

// TestTagRegistryRanges pins the registry's structural invariants: user
// tags are positive (the negative space belongs to collective internals),
// subsystem blocks are disjoint, and every registered tag sits inside its
// subsystem's block.
func TestTagRegistryRanges(t *testing.T) {
	bases := []int{TagExchangeBase, TagCheckpointBase, TagPoissonBase, TagUserBase}
	for i, b := range bases {
		if b <= 0 {
			t.Errorf("base %#x not positive; negative tags are reserved for collectives", b)
		}
		if i > 0 && b < bases[i-1]+tagBlockSize {
			t.Errorf("block at %#x overlaps previous block at %#x (span %#x)", b, bases[i-1], tagBlockSize)
		}
	}
	if TagExchangeMigrate < TagExchangeBase || TagExchangeMigrate >= TagExchangeBase+tagBlockSize {
		t.Errorf("TagExchangeMigrate %#x outside exchange block [%#x,%#x)",
			TagExchangeMigrate, TagExchangeBase, TagExchangeBase+tagBlockSize)
	}
	if TagCheckpointGather < TagCheckpointBase || TagCheckpointGather >= TagCheckpointBase+tagBlockSize {
		t.Errorf("TagCheckpointGather %#x outside checkpoint block [%#x,%#x)",
			TagCheckpointGather, TagCheckpointBase, TagCheckpointBase+tagBlockSize)
	}
	if TagPoissonHalo < TagPoissonBase || TagPoissonHalo >= TagPoissonBase+tagBlockSize {
		t.Errorf("TagPoissonHalo %#x outside poisson block [%#x,%#x)",
			TagPoissonHalo, TagPoissonBase, TagPoissonBase+tagBlockSize)
	}
	// Collective-internal tags must all be negative, out of user space.
	for _, tag := range []int{tagBarrier, tagBcast, tagGather, tagScatter, tagReduce, tagAllgather, tagAlltoall, tagScan} {
		if tag >= 0 {
			t.Errorf("collective-internal tag %d leaked into non-negative user space", tag)
		}
	}
}
