package simmpi

// Point-to-point tag registry. User-level subsystems draw their Send/Recv
// tags from the named constants below; the commvet tagdiscipline analyzer
// rejects integer literals and function-local constants at call sites, so
// every tag in the codebase is reviewable here, in one place.
//
// The (src, tag) pair is the whole matching namespace of a receive: two
// subsystems that pick the same tag can silently intercept each other's
// traffic if their calls ever interleave. The registry therefore reserves
// a disjoint block per subsystem; a new subsystem takes the next free
// block instead of inventing a literal.
//
// Negative tags are reserved for the collectives' internal rounds (see
// collectives.go) and must never be used for user point-to-point traffic.
const (
	// tagBlockSize is the span of each subsystem's reserved block.
	tagBlockSize = 0x100

	// TagExchangeBase..TagExchangeBase+0xff: particle-exchange subsystem
	// (internal/exchange).
	TagExchangeBase = 0x100
	// TagExchangeMigrate carries packed particle payloads in the
	// distributed (pairwise) exchange strategy's two ordered rounds.
	TagExchangeMigrate = TagExchangeBase + 0

	// TagCheckpointBase..TagCheckpointBase+0xff: checkpoint/restart
	// subsystem (internal/core resilient runtime).
	TagCheckpointBase = 0x200
	// TagCheckpointGather carries each rank's encoded particle payload to
	// rank 0 during a collective checkpoint capture (core's
	// CaptureCheckpoint) — checkpoint traffic matches on its own tag
	// instead of riding the generic Gatherv collective internals.
	TagCheckpointGather = TagCheckpointBase + 0

	// TagPoissonBase..TagPoissonBase+0xff: distributed Poisson solver
	// (internal/pic halo exchange).
	TagPoissonBase = 0x300
	// TagPoissonHalo carries boundary (ghost-node) entries of the CG
	// search direction between neighbouring row blocks in the halo
	// exchange's two ordered rounds.
	TagPoissonHalo = TagPoissonBase + 0
	// TagChargeBoundary carries per-neighbour partial nodal charges in the
	// owner-local solver's boundary-only charge reduction: each rank ships
	// its deposited contributions at partition-boundary nodes straight to
	// the nodes' owners (interior nodes have exactly one contributor and
	// never touch the wire).
	TagChargeBoundary = TagPoissonBase + 1
	// TagPhiConsumer carries converged potential values from node owners
	// to the ranks whose owned fine cells read them (the field-gather /
	// Boris consumer set) — the owner-local replacement for the
	// full-vector convergence allgatherv.
	TagPhiConsumer = TagPoissonBase + 2

	// TagUserBase marks the start of unreserved space: ad-hoc tools and
	// experiments should allocate a block here and register it above.
	TagUserBase = 0x400
)
