// Package simmpi is a simulated MPI runtime: a fixed-size world of ranks
// executing as goroutines, exchanging messages through mailboxes with MPI
// semantics — point-to-point send/receive matched on (source, tag) with
// per-pair FIFO ordering, plus the collectives the coupled DSMC/PIC solver
// needs (Barrier, Bcast, Gatherv, Scatterv, Allreduce, Allgather).
//
// The paper's solver runs on MPICH; Go has no mature MPI bindings, so this
// package substitutes the transport while preserving the communication
// structure exactly: who sends to whom, in what order, how many messages
// and how many bytes. Per-rank traffic counters record that structure per
// named phase, and internal/commcost converts the counts into modeled
// communication times for the paper's large-scale experiments.
package simmpi

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// message is an in-flight point-to-point message.
type message struct {
	src, tag int
	data     []byte
}

// mailbox is the unbounded receive queue of one rank.
type mailbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queue   []message
	perturb *perturber
	world   *World
}

func newMailbox(w *World, p *perturber) *mailbox {
	mb := &mailbox{world: w, perturb: p}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

func (mb *mailbox) put(m message) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if mb.perturb != nil {
		// Failure-injection mode: insert the message at a random earlier
		// position, but never ahead of an existing message with the same
		// (src, tag) — per-pair FIFO order is an MPI guarantee the solver
		// relies on, while cross-pair arrival order is not.
		pos := mb.perturb.pos(len(mb.queue) + 1)
		for pos < len(mb.queue) {
			q := mb.queue[pos]
			if q.src == m.src && q.tag == m.tag {
				pos++
				continue
			}
			break
		}
		// Walk forward past any same-(src,tag) messages between pos and end.
		for i := pos; i < len(mb.queue); i++ {
			if mb.queue[i].src == m.src && mb.queue[i].tag == m.tag {
				pos = i + 1
			}
		}
		mb.queue = append(mb.queue, message{})
		copy(mb.queue[pos+1:], mb.queue[pos:])
		mb.queue[pos] = m
	} else {
		mb.queue = append(mb.queue, m)
	}
	mb.cond.Broadcast()
}

// get blocks until a message matching (src, tag) is available and removes
// it. A deadline guards against deadlocks in tests; a peer rank failure
// aborts the wait immediately (a matched message already queued is still
// delivered first).
func (mb *mailbox) get(src, tag int, deadline time.Duration, rank int) message {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	start := mb.world.clock()
	for {
		for i, m := range mb.queue {
			if m.src == src && m.tag == tag {
				mb.queue = append(mb.queue[:i], mb.queue[i+1:]...)
				return m
			}
		}
		if rf := mb.world.peerFailure(); rf != nil {
			panic(&abortError{rank: rank, cause: rf})
		}
		if mb.world.canceled.Load() {
			panic(&CancelError{Rank: rank})
		}
		if mb.world.clock().Sub(start) > deadline {
			pending := make([]PendingMessage, len(mb.queue))
			for i, m := range mb.queue {
				pending[i] = PendingMessage{Src: m.src, Tag: m.tag, Len: len(m.data)}
			}
			panic(&DeadlockError{Rank: rank, WantSrc: src, WantTag: tag, Pending: pending})
		}
		// The world watchdog broadcasts periodically, so this wait always
		// wakes up to re-check the deadline even if no message arrives.
		mb.cond.Wait()
	}
}

// perturber supplies deterministic pseudo-random insert positions for the
// failure-injection mode.
type perturber struct {
	mu    sync.Mutex
	state uint64
}

func (p *perturber) pos(n int) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.state = p.state*6364136223846793005 + 1442695040888963407
	return int((p.state >> 33) % uint64(n))
}

// Options configures a World.
type Options struct {
	// Deadline bounds every blocking receive; exceeded deadlines panic
	// with a diagnostic (caught by Run). Default 10 minutes — generous
	// because ranks time-share host cores: a peer that is merely slow
	// under contention must not be misdiagnosed as deadlocked.
	Deadline time.Duration
	// Clock supplies the readings the deadline machinery compares (nil
	// wires time.Now). It exists so tests can drive deadline expiry
	// deterministically instead of sleeping one out, and so the package's
	// only wall-clock read is injected — the commvet nondeterminism
	// analyzer holds simmpi to the same injected-clock discipline as the
	// other deterministic packages. The clock may be called concurrently
	// from every rank goroutine; time.Now and monotonic fakes are safe.
	Clock func() time.Time
	// PerturbDelivery enables the failure-injection mode: cross-pair
	// message arrival order is shuffled deterministically. Per-(src,tag)
	// FIFO order is always preserved.
	PerturbDelivery bool
	// PerturbSeed seeds the shuffling.
	PerturbSeed uint64
	// Fault, when non-nil, injects one deterministic rank failure (or
	// message-drop fault) into the run. See FaultPlan.
	Fault *FaultPlan
}

// World is a set of ranks that can communicate. Create with NewWorld, run
// SPMD code with Run.
type World struct {
	n        int
	boxes    []*mailbox
	counters []*Counter
	opts     Options
	clock    func() time.Time // deadline clock (Options.Clock or time.Now)

	failMu  sync.Mutex
	failure *RankFailure
	report  *RunReport

	// canceled is the cooperative-cancellation flag (see cancel.go):
	// Cancel sets it, blocked receives and CheckCancel points observe it.
	canceled atomic.Bool
}

// NewWorld creates a world of n ranks.
func NewWorld(n int, opts Options) *World {
	if opts.Deadline <= 0 {
		opts.Deadline = 10 * time.Minute
	}
	if opts.Clock == nil {
		// Assigning the time.Now function value (not calling it) is the
		// sanctioned injectable-clock wiring.
		opts.Clock = time.Now
	}
	var p *perturber
	if opts.PerturbDelivery {
		p = &perturber{state: opts.PerturbSeed ^ 0x9e3779b97f4a7c15}
	}
	w := &World{n: n, opts: opts, clock: opts.Clock}
	w.boxes = make([]*mailbox, n)
	w.counters = make([]*Counter, n)
	for i := 0; i < n; i++ {
		w.boxes[i] = newMailbox(w, p)
		w.counters[i] = NewCounter()
	}
	return w
}

// peerFailure returns the first recorded rank failure, or nil.
func (w *World) peerFailure() *RankFailure {
	w.failMu.Lock()
	defer w.failMu.Unlock()
	return w.failure
}

// noteFailure records a rank failure and wakes every blocked receiver so
// surviving ranks abort promptly instead of waiting out their deadline.
func (w *World) noteFailure(rf *RankFailure) {
	w.failMu.Lock()
	if w.failure == nil {
		w.failure = rf
	}
	w.failMu.Unlock()
	for _, mb := range w.boxes {
		mb.mu.Lock()
		mb.cond.Broadcast()
		mb.mu.Unlock()
	}
}

// Report returns the per-rank outcome of the most recent Run (nil before
// the first Run completes).
func (w *World) Report() *RunReport { return w.report }

// Size returns the number of ranks.
func (w *World) Size() int { return w.n }

// Counters returns the per-rank traffic counters (valid after Run).
func (w *World) Counters() []*Counter { return w.counters }

// Run executes f once per rank, each in its own goroutine, and waits for
// all to finish. A panic in any rank is captured, classified, and returned
// as an error: an injected rank failure yields an error matching
// errors.Is(err, ErrRankFailed), a deadline-expired receive with no peer
// failure matches ErrDeadlock, and a genuine user panic is reported as the
// root cause in preference to the deadlocks it induces. Use RunWithReport
// (or Report) for the per-rank breakdown.
func (w *World) Run(f func(c *Comm)) error {
	return w.RunWithReport(f).Err
}

// RunWithReport is Run returning the full per-rank outcome: each rank's
// error, which ranks failed, and which survived. A World that experienced
// a rank failure should not be reused — build a fresh World to restart.
func (w *World) RunWithReport(f func(c *Comm)) *RunReport {
	// Watchdog: wake all blocked receivers periodically so they can check
	// their deadlines (a pure cond.Wait would sleep forever on deadlock).
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		ticker := time.NewTicker(250 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				for _, mb := range w.boxes {
					mb.mu.Lock()
					mb.cond.Broadcast()
					mb.mu.Unlock()
				}
			}
		}
	}()
	var wg sync.WaitGroup
	rep := &RunReport{PerRank: make([]error, w.n)}
	for rank := 0; rank < w.n; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					switch v := r.(type) {
					case *RankFailure:
						rep.PerRank[rank] = v
						w.noteFailure(v)
					case *DeadlockError:
						rep.PerRank[rank] = v
					case *abortError:
						rep.PerRank[rank] = v
					case *CancelError:
						rep.PerRank[rank] = v
					default:
						rep.PerRank[rank] = fmt.Errorf("simmpi: rank %d panicked: %v", rank, r)
					}
				}
			}()
			c := &Comm{world: w, rank: rank, counter: w.counters[rank]}
			if w.opts.Fault != nil && w.opts.Fault.Rank == rank {
				c.fault = w.opts.Fault
			}
			f(c)
		}(rank)
	}
	wg.Wait()
	rep.classify()
	w.report = rep
	return rep
}

// Comm is one rank's communication endpoint. It is only valid inside the
// Run callback of its own goroutine.
type Comm struct {
	world   *World
	rank    int
	counter *Counter
	phase   string

	// Fault-injection state (this rank is the victim iff fault != nil).
	fault     *FaultPlan
	sends     int
	recvs     int
	phaseHits int
	dropping  bool
}

// trip fires this rank's fault: kill mode panics with *RankFailure;
// message-drop mode switches the rank to silently discarding sends.
func (c *Comm) trip(trigger string) {
	if c.fault.DropSends {
		c.dropping = true
		return
	}
	panic(&RankFailure{Rank: c.rank, Trigger: trigger})
}

// Rank returns this rank's id in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the world.
func (c *Comm) Size() int { return c.world.n }

// SetPhase labels subsequent traffic with the given phase name (e.g.
// "DSMC_Exchange"); counters are accumulated per phase.
func (c *Comm) SetPhase(name string) {
	if c.fault != nil && name != "" && name == c.fault.AtPhase {
		c.phaseHits++
		n := c.fault.AtPhaseN
		if n <= 0 {
			n = 1
		}
		if c.phaseHits == n {
			c.trip(fmt.Sprintf("phase %s (entry %d)", name, c.phaseHits))
		}
	}
	c.phase = name
}

// Phase returns the current phase label.
func (c *Comm) Phase() string { return c.phase }

// Counter returns this rank's traffic counter.
func (c *Comm) Counter() *Counter { return c.counter }

// Send delivers data to rank dst with the given tag. It never blocks
// (mailboxes are unbounded, matching MPI_Send with sufficient buffering).
// The data slice is not copied; the sender must not modify it afterwards.
func (c *Comm) Send(dst, tag int, data []byte) {
	if c.fault != nil {
		c.sends++
		if c.fault.AtSend > 0 && c.sends == c.fault.AtSend {
			c.trip(fmt.Sprintf("send #%d", c.sends))
		}
		if c.dropping {
			// Message-drop mode: the send vanishes — nothing reaches the
			// wire, so the traffic counters don't see it either.
			return
		}
	}
	if dst < 0 || dst >= c.world.n {
		panic(fmt.Sprintf("simmpi: rank %d Send to invalid rank %d", c.rank, dst))
	}
	c.counter.record(c.phase, dst == c.rank, len(data))
	c.world.boxes[dst].put(message{src: c.rank, tag: tag, data: data})
}

// Recv blocks until a message from src with the given tag arrives and
// returns its payload.
func (c *Comm) Recv(src, tag int) []byte {
	if c.fault != nil {
		c.recvs++
		if c.fault.AtRecv > 0 && c.recvs == c.fault.AtRecv {
			c.trip(fmt.Sprintf("recv #%d", c.recvs))
		}
	}
	if src < 0 || src >= c.world.n {
		panic(fmt.Sprintf("simmpi: rank %d Recv from invalid rank %d", c.rank, src))
	}
	m := c.world.boxes[c.rank].get(src, tag, c.world.opts.Deadline, c.rank)
	return m.data
}
