package simmpi

import (
	"errors"
	"fmt"
)

// Cooperative cancellation.
//
// A one-shot CLI run either finishes or is killed with the process; a
// serving daemon multiplexing many worlds on one host needs a third
// outcome: stop this run now, release its rank goroutines, keep the
// process. Cancellation here is cooperative and race-free by construction:
// World.Cancel flips a flag and wakes every blocked receiver, blocked
// receives abort with *CancelError (classified like the other rank-level
// aborts), and compute-bound ranks observe the flag at their next
// cancellation point — a Comm.CheckCancel call at a step boundary, or the
// next blocking Recv inside any collective. No goroutine is ever killed
// mid-operation; each unwinds through its own recover in RunWithReport.

// ErrCanceled marks errors caused by a World.Cancel: the classified
// world-level error of a canceled run matches errors.Is(err, ErrCanceled).
var ErrCanceled = errors.New("simmpi: run canceled")

// CancelError is the panic value (and per-rank error) of a rank that
// observed cancellation, either at a blocking receive or at an explicit
// CheckCancel point. It classifies as ErrCanceled under errors.Is.
type CancelError struct {
	Rank int
}

func (e *CancelError) Error() string {
	return fmt.Sprintf("simmpi: rank %d canceled", e.Rank)
}

func (e *CancelError) Is(target error) bool { return target == ErrCanceled }

// Cancel requests cooperative termination of the current (or next) Run:
// blocked receives abort immediately, compute-bound ranks abort at their
// next cancellation point. Idempotent and safe from any goroutine — this
// is the one World method intended to be called from outside the rank
// goroutines. A canceled World must not be reused; build a fresh one.
func (w *World) Cancel() {
	if w.canceled.Swap(true) {
		return
	}
	// Wake every blocked receiver so it observes the flag now instead of
	// at the next watchdog tick.
	for _, mb := range w.boxes {
		mb.mu.Lock()
		mb.cond.Broadcast()
		mb.mu.Unlock()
	}
}

// Canceled reports whether Cancel has been called.
func (w *World) Canceled() bool { return w.canceled.Load() }

// CheckCancel is a cancellation point: it panics with *CancelError (caught
// and classified by Run) when the world has been canceled, and is a cheap
// atomic load otherwise. The solver calls it at step boundaries; blocking
// receives check implicitly.
func (c *Comm) CheckCancel() {
	if c.world.canceled.Load() {
		panic(&CancelError{Rank: c.rank})
	}
}
