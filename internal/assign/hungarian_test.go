package assign

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/plasma-hpc/dsmcpic/internal/rng"
)

// bruteForce enumerates all permutations to find the optimal assignment.
func bruteForce(w [][]float64) float64 {
	n := len(w)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	best := math.Inf(-1)
	var recurse func(k int)
	recurse = func(k int) {
		if k == n {
			var s float64
			for i, j := range perm {
				s += w[i][j]
			}
			if s > best {
				best = s
			}
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			recurse(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	recurse(0)
	return best
}

func TestEmpty(t *testing.T) {
	got, total, err := MaxWeight(nil)
	if err != nil || got != nil || total != 0 {
		t.Errorf("empty: %v %v %v", got, total, err)
	}
}

func TestSingle(t *testing.T) {
	got, total, err := MaxWeight([][]float64{{-5}})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 || total != -5 {
		t.Errorf("single: %v %v", got, total)
	}
}

func TestIdentityOptimal(t *testing.T) {
	// Diagonal dominant: identity assignment is optimal.
	w := [][]float64{
		{10, 1, 1},
		{1, 10, 1},
		{1, 1, 10},
	}
	rowToCol, total, err := MaxWeight(w)
	if err != nil {
		t.Fatal(err)
	}
	if total != 30 {
		t.Errorf("total = %v, want 30", total)
	}
	for i, j := range rowToCol {
		if i != j {
			t.Errorf("rowToCol[%d] = %d", i, j)
		}
	}
}

func TestAntiDiagonal(t *testing.T) {
	w := [][]float64{
		{0, 0, 9},
		{0, 9, 0},
		{9, 0, 0},
	}
	rowToCol, total, err := MaxWeight(w)
	if err != nil {
		t.Fatal(err)
	}
	if total != 27 {
		t.Errorf("total = %v", total)
	}
	want := []int{2, 1, 0}
	for i := range want {
		if rowToCol[i] != want[i] {
			t.Errorf("rowToCol = %v, want %v", rowToCol, want)
			break
		}
	}
}

func TestPaperRemappingExample(t *testing.T) {
	// Paper Fig. 6: old ranks hold cells {1,2,3,4} variously; the KM match
	// should keep most particles in place. Model: 2 ranks, weight = load
	// retained if new part j lands on old rank i.
	// New partition 0 = {1,2,4} (mostly old rank 0's cells),
	// new partition 1 = {3,5,6} (mostly old rank 1's cells).
	w := [][]float64{
		{30, 5},  // old rank 0 retains 30 if it takes part 0, 5 for part 1
		{10, 25}, // old rank 1
	}
	rowToCol, total, err := MaxWeight(w)
	if err != nil {
		t.Fatal(err)
	}
	if rowToCol[0] != 0 || rowToCol[1] != 1 {
		t.Errorf("rowToCol = %v, want identity", rowToCol)
	}
	if total != 55 {
		t.Errorf("total = %v", total)
	}
}

func TestNegativeWeights(t *testing.T) {
	w := [][]float64{
		{-1, -10},
		{-10, -2},
	}
	_, total, err := MaxWeight(w)
	if err != nil {
		t.Fatal(err)
	}
	if total != -3 {
		t.Errorf("total = %v, want -3", total)
	}
}

func TestRejectsRagged(t *testing.T) {
	if _, _, err := MaxWeight([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged matrix accepted")
	}
}

func TestRejectsNaN(t *testing.T) {
	if _, _, err := MaxWeight([][]float64{{math.NaN()}}); err == nil {
		t.Error("NaN accepted")
	}
	if _, _, err := MaxWeight([][]float64{{math.Inf(1)}}); err == nil {
		t.Error("Inf accepted")
	}
}

func TestAgainstBruteForce(t *testing.T) {
	r := rng.New(77, 0)
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(6)
		w := make([][]float64, n)
		for i := range w {
			w[i] = make([]float64, n)
			for j := range w[i] {
				w[i][j] = math.Floor(200*r.Float64()) - 100
			}
		}
		_, total, err := MaxWeight(w)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForce(w)
		if math.Abs(total-want) > 1e-9 {
			t.Fatalf("trial %d (n=%d): KM total %v != brute force %v", trial, n, total, want)
		}
	}
}

func TestIsPermutation(t *testing.T) {
	r := rng.New(123, 0)
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(20)
		w := make([][]float64, n)
		for i := range w {
			w[i] = make([]float64, n)
			for j := range w[i] {
				w[i][j] = r.Float64()
			}
		}
		rowToCol, _, err := MaxWeight(w)
		if err != nil {
			t.Fatal(err)
		}
		seen := make([]bool, n)
		for _, j := range rowToCol {
			if j < 0 || j >= n || seen[j] {
				t.Fatalf("not a permutation: %v", rowToCol)
			}
			seen[j] = true
		}
	}
}

// Property: the KM total is at least the weight of the identity assignment
// and of a random permutation (optimality lower bounds).
func TestQuickAtLeastAnyMatching(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed, 0)
		n := 2 + r.Intn(8)
		w := make([][]float64, n)
		for i := range w {
			w[i] = make([]float64, n)
			for j := range w[i] {
				w[i][j] = math.Floor(1000 * r.Float64())
			}
		}
		_, total, err := MaxWeight(w)
		if err != nil {
			return false
		}
		var ident float64
		for i := 0; i < n; i++ {
			ident += w[i][i]
		}
		// Random permutation via Fisher-Yates.
		perm := make([]int, n)
		for i := range perm {
			perm[i] = i
		}
		for i := n - 1; i > 0; i-- {
			j := r.Intn(i + 1)
			perm[i], perm[j] = perm[j], perm[i]
		}
		var randW float64
		for i, j := range perm {
			randW += w[i][j]
		}
		return total >= ident-1e-9 && total >= randW-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMaxWeightInt(t *testing.T) {
	w := [][]int64{
		{100, 0},
		{0, 100},
	}
	rowToCol, total, err := MaxWeightInt(w)
	if err != nil {
		t.Fatal(err)
	}
	if total != 200 || rowToCol[0] != 0 || rowToCol[1] != 1 {
		t.Errorf("int assign: %v %v", rowToCol, total)
	}
}

func BenchmarkMaxWeight64(b *testing.B) {
	r := rng.New(1, 0)
	n := 64
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, n)
		for j := range w[i] {
			w[i][j] = r.Float64()
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := MaxWeight(w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMaxWeight256(b *testing.B) {
	r := rng.New(1, 0)
	n := 256
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, n)
		for j := range w[i] {
			w[i][j] = r.Float64()
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := MaxWeight(w); err != nil {
			b.Fatal(err)
		}
	}
}
