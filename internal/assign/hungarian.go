// Package assign implements the Kuhn-Munkres (Hungarian) algorithm for
// maximum-weight perfect matching in a bipartite graph. The paper's load
// balancer converts grid remapping into exactly this problem (§V-C): rows
// are the old MPI ranks, columns are the newly computed partitions, and the
// weight of (rank, part) is the amount of load already resident on that
// rank that the new part would retain — maximizing the matching minimizes
// the data migrated during re-decomposition.
package assign

import (
	"fmt"
	"math"
)

// MaxWeight solves the maximum-weight assignment problem for the square
// weight matrix w (w[i][j] >= is not required; any finite weights work).
// It returns rowToCol, where rowToCol[i] is the column assigned to row i,
// and the total weight of the optimal assignment. O(n^3).
func MaxWeight(w [][]float64) (rowToCol []int, total float64, err error) {
	n := len(w)
	if n == 0 {
		return nil, 0, nil
	}
	for i, row := range w {
		if len(row) != n {
			return nil, 0, fmt.Errorf("assign: row %d has %d entries, want %d", i, len(row), n)
		}
		for j, x := range row {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return nil, 0, fmt.Errorf("assign: weight[%d][%d] = %v is not finite", i, j, x)
			}
		}
	}
	// Convert to a min-cost problem: cost = -weight.
	cost := func(i, j int) float64 { return -w[i][j] }

	// Hungarian algorithm with potentials and shortest augmenting paths
	// (Jonker/e-maxx formulation, 1-based sentinel at index 0).
	const inf = math.MaxFloat64
	u := make([]float64, n+1) // row potentials
	v := make([]float64, n+1) // column potentials
	p := make([]int, n+1)     // p[j] = row matched to column j (0 = none)
	way := make([]int, n+1)   // back-pointers along the augmenting path
	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, n+1)
		used := make([]bool, n+1)
		for j := 0; j <= n; j++ {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := 0
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := cost(i0-1, j-1) - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		// Augment along the path.
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}
	rowToCol = make([]int, n)
	for j := 1; j <= n; j++ {
		if p[j] > 0 {
			rowToCol[p[j]-1] = j - 1
		}
	}
	for i := 0; i < n; i++ {
		total += w[i][rowToCol[i]]
	}
	return rowToCol, total, nil
}

// MaxWeightInt is MaxWeight for integer weights (e.g. particle counts),
// avoiding any floating-point concerns for exact counts.
func MaxWeightInt(w [][]int64) (rowToCol []int, total int64, err error) {
	n := len(w)
	wf := make([][]float64, n)
	for i, row := range w {
		wf[i] = make([]float64, len(row))
		for j, x := range row {
			wf[i][j] = float64(x)
		}
	}
	rowToCol, _, err = MaxWeight(wf)
	if err != nil {
		return nil, 0, err
	}
	for i := range rowToCol {
		total += w[i][rowToCol[i]]
	}
	return rowToCol, total, nil
}
