// Package balance implements the paper's dynamic load balancer
// (Algorithm 1, §V): the load imbalance indicator lii (eq. 6), the weighted
// load model wlm_i = N_i + R*C_i + W_cell (eq. 7), grid re-decomposition
// through the graph partitioner, and Kuhn-Munkres grid remapping that
// minimizes migrated load (§V-C), followed by particle migration.
package balance

import (
	"math"
	"time"

	"github.com/plasma-hpc/dsmcpic/internal/assign"
	"github.com/plasma-hpc/dsmcpic/internal/exchange"
	"github.com/plasma-hpc/dsmcpic/internal/particle"
	"github.com/plasma-hpc/dsmcpic/internal/partition"
	"github.com/plasma-hpc/dsmcpic/internal/simmpi"
)

// StepTimes is one rank's measured wall time for one DSMC iteration,
// decomposed as the lii formula requires: total minus particle-migration
// (DSMC_Exchange + PIC_Exchange) minus Poisson_Solve isolates the
// load-dependent part (the paper notes migration and Poisson times are
// largely constant).
type StepTimes struct {
	Total     float64
	Migration float64
	Poisson   float64
}

// LII computes the load imbalance indicator over all ranks' step times
// (paper eq. 6). Values start at 1.0 (perfect balance); a degenerate
// denominator (an idle rank) yields +Inf, which always exceeds any
// threshold.
func LII(times []StepTimes) float64 {
	if len(times) == 0 {
		return 1
	}
	maxIdx, minIdx := 0, 0
	for i, t := range times {
		if t.Total > times[maxIdx].Total {
			maxIdx = i
		}
		if t.Total < times[minIdx].Total {
			minIdx = i
		}
	}
	num := times[maxIdx].Total - times[maxIdx].Migration - times[maxIdx].Poisson
	den := times[minIdx].Total - times[minIdx].Migration - times[minIdx].Poisson
	if den <= 0 {
		if num <= 0 {
			return 1
		}
		return math.Inf(1)
	}
	return num / den
}

// Config tunes the balancer (paper §V and §VII-D1).
type Config struct {
	// T is the check interval in DSMC iterations (paper: 20 default).
	T int
	// Threshold triggers rebalancing when lii exceeds it (paper: 2.0).
	Threshold float64
	// R is the charged:neutral particle weight ratio — the number of PIC
	// substeps per DSMC step (paper: 2).
	R float64
	// WCell is the per-cell base weight for grid-resident work such as
	// Colli_React and Poisson_Solve (paper Table VI: 1..10000).
	WCell int64
	// UseKM enables Kuhn-Munkres remapping of new parts onto old ranks;
	// disabled, parts map to ranks identically (the Table V ablation).
	UseKM bool
	// Strategy is the particle-migration scheme used after remapping.
	Strategy exchange.Strategy
	// PartitionSeed makes re-decompositions reproducible.
	PartitionSeed uint64
}

// DefaultConfig returns the paper's tuned parameters (§VII-B).
func DefaultConfig() Config {
	return Config{T: 20, Threshold: 2.0, R: 2, WCell: 1, UseKM: true, Strategy: exchange.Distributed}
}

// MigratePhase is the traffic-counter label of the rebalance's particle
// migration (distinct from the "Rebalance" control-plane label).
const MigratePhase = "Rebalance_Migrate"

// Balancer holds the replicated load-balancing state of one rank. All
// ranks construct identical balancers and call MaybeRebalance collectively
// each DSMC iteration; every rank computes the same partition and mapping
// deterministically, so no extra coordination traffic is needed beyond the
// timing allgather and the particle migration itself.
type Balancer struct {
	Cfg Config
	// CellOwner maps every coarse cell to its owning rank (replicated).
	CellOwner []int32
	// Xadj/Adjncy is the coarse dual graph (replicated, never changes).
	Xadj, Adjncy []int32
	// Clock supplies the wall-clock readings behind Result.Overhead. New
	// wires it to time.Now; tests inject a fake so the rebalance timing
	// path is deterministic. This explicit wiring is also what keeps the
	// balancer clean under commvet's nondeterminism analyzer: the package
	// never *calls* time.Now itself, it only forwards the function value.
	Clock func() time.Time

	iterator int
}

// New creates a balancer over the given initial ownership and dual graph.
func New(cfg Config, cellOwner []int32, xadj, adjncy []int32) *Balancer {
	owner := make([]int32, len(cellOwner))
	copy(owner, cellOwner)
	return &Balancer{Cfg: cfg, CellOwner: owner, Xadj: xadj, Adjncy: adjncy, Clock: time.Now}
}

// Result reports what one MaybeRebalance call did.
type Result struct {
	LII        float64
	Rebalanced bool
	// Migrated counts particles shipped between ranks by the rebalance.
	Migrated int
	// MovedCells counts cells whose owner changed.
	MovedCells int
	// Overhead is this rank's wall time spent inside the rebalance
	// machinery (partitioning + KM + migration), for Table V.
	Overhead time.Duration
}

// MaybeRebalance implements Algorithm 1. Called collectively once per DSMC
// iteration with this rank's measured times and its particle store. When
// the iteration counter reaches T and lii exceeds the threshold, the grid
// is re-decomposed with the weighted load model, remapped with KM, and
// particles migrate to their new owners.
func (b *Balancer) MaybeRebalance(comm *simmpi.Comm, st *particle.Store, times StepTimes) (Result, error) {
	comm.SetPhase("Rebalance")
	defer comm.SetPhase("")

	// Gather every rank's times (3 floats) to evaluate lii globally.
	all := comm.Allgatherv(simmpi.EncodeFloat64s([]float64{times.Total, times.Migration, times.Poisson}))
	stepTimes := make([]StepTimes, comm.Size())
	for r, blob := range all {
		v := simmpi.DecodeFloat64s(blob)
		stepTimes[r] = StepTimes{Total: v[0], Migration: v[1], Poisson: v[2]}
	}
	res := Result{LII: LII(stepTimes)}

	b.iterator++
	if b.iterator < b.Cfg.T || res.LII < b.Cfg.Threshold {
		return res, nil
	}
	b.iterator = 0
	if b.Clock == nil {
		// A zero-value Balancer (no New) still measures real time.
		b.Clock = time.Now
	}
	start := b.Clock()

	// Weighted load model: global per-cell neutral and charged counts.
	numCells := len(b.CellOwner)
	local := make([]int64, 2*numCells)
	for i := 0; i < st.Len(); i++ {
		c := st.Cell[i]
		if st.Sp[i].IsCharged() {
			local[numCells+int(c)]++
		} else {
			local[int(c)]++
		}
	}
	global := comm.AllreduceInt64(local)

	// Rank 0 computes the re-decomposition and the KM remapping (the
	// paper's serial METIS_PartGraphKway call) and broadcasts the final
	// cell-to-rank mapping; other ranks wait — the partitioning cost sits
	// on the critical path of every rank either way.
	var ownerBlob []byte
	if comm.Rank() == 0 {
		wlm := make([]int64, numCells)
		for c := 0; c < numCells; c++ {
			wlm[c] = global[c] + int64(b.Cfg.R*float64(global[numCells+c])) + b.Cfg.WCell
		}
		g := &partition.Graph{Xadj: b.Xadj, Adjncy: b.Adjncy, VWgt: wlm}
		newPart, err := partition.PartGraphKway(g, comm.Size(), partition.Options{Seed: b.Cfg.PartitionSeed})
		if err != nil {
			return res, err
		}
		// Remap parts onto ranks. With KM: maximize the load already
		// resident (weight[rank][part] = wlm of cells that rank owns now
		// and part p would keep there), minimizing migration (paper §V-C).
		// Without KM: identity mapping (the Table V ablation baseline).
		partToRank := make([]int32, comm.Size())
		if b.Cfg.UseKM {
			w := make([][]int64, comm.Size())
			for r := range w {
				w[r] = make([]int64, comm.Size())
			}
			for c := 0; c < numCells; c++ {
				w[b.CellOwner[c]][newPart[c]] += wlm[c]
			}
			rankToPart, _, err := assign.MaxWeightInt(w)
			if err != nil {
				return res, err
			}
			for r, p := range rankToPart {
				partToRank[p] = int32(r)
			}
		} else {
			for p := range partToRank {
				partToRank[p] = int32(p)
			}
		}
		newOwner := make([]int64, numCells)
		for c := 0; c < numCells; c++ {
			newOwner[c] = int64(partToRank[newPart[c]])
		}
		ownerBlob = simmpi.EncodeInt64s(newOwner)
	}
	ownerBlob = comm.Bcast(0, ownerBlob)
	for c, o := range simmpi.DecodeInt64s(ownerBlob) {
		if int32(o) != b.CellOwner[c] {
			res.MovedCells++
		}
		b.CellOwner[c] = int32(o)
	}

	// Migrate particles to their new owners. The migration is labeled as
	// its own phase: its traffic is particle payload (scaled like the
	// regular exchanges by the cost model), unlike the control-plane
	// collectives above (timing allgather, weight allreduce, owner
	// broadcast), which carry grid-sized data.
	comm.SetPhase(MigratePhase)
	stats, err := exchange.Exchange(comm, st, func(i int) int {
		return int(b.CellOwner[st.Cell[i]])
	}, b.Cfg.Strategy)
	if err != nil {
		return res, err
	}
	res.Migrated = stats.Sent
	res.Rebalanced = true
	res.Overhead = b.Clock().Sub(start)
	return res, nil
}
