package balance

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
	"time"

	"github.com/plasma-hpc/dsmcpic/internal/exchange"
	"github.com/plasma-hpc/dsmcpic/internal/mesh"
	"github.com/plasma-hpc/dsmcpic/internal/particle"
	"github.com/plasma-hpc/dsmcpic/internal/partition"
	"github.com/plasma-hpc/dsmcpic/internal/rng"
	"github.com/plasma-hpc/dsmcpic/internal/simmpi"
)

func TestLIIBalanced(t *testing.T) {
	times := []StepTimes{
		{Total: 10, Migration: 1, Poisson: 2},
		{Total: 10, Migration: 1, Poisson: 2},
	}
	if got := LII(times); got != 1 {
		t.Errorf("balanced lii = %v, want 1", got)
	}
}

func TestLIIFormula(t *testing.T) {
	// max rank: total 20, pm 2, poi 3 -> 15. min rank: total 8, pm 1, poi 2 -> 5.
	times := []StepTimes{
		{Total: 20, Migration: 2, Poisson: 3},
		{Total: 8, Migration: 1, Poisson: 2},
		{Total: 12, Migration: 1, Poisson: 2},
	}
	if got := LII(times); math.Abs(got-3) > 1e-12 {
		t.Errorf("lii = %v, want 3", got)
	}
}

func TestLIIDegenerate(t *testing.T) {
	if got := LII(nil); got != 1 {
		t.Errorf("empty lii = %v", got)
	}
	// Idle min rank: denominator <= 0 -> +Inf.
	times := []StepTimes{
		{Total: 10, Migration: 1, Poisson: 1},
		{Total: 2, Migration: 1, Poisson: 1},
	}
	if got := LII(times); !math.IsInf(got, 1) {
		t.Errorf("degenerate lii = %v, want +Inf", got)
	}
	// Everything degenerate -> 1.
	all0 := []StepTimes{{Total: 1, Migration: 1}, {Total: 1, Migration: 1}}
	if got := LII(all0); got != 1 {
		t.Errorf("all-degenerate lii = %v, want 1", got)
	}
}

// Property: lii is positive for any non-degenerate times, and equals 1 when
// all ranks report identical times. (The raw eq. 6 value can dip below 1
// when the max-total rank spends more on migration/Poisson than the
// min-total rank — the indicator compares *compute* portions.)
func TestQuickLIIPositive(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		r := rng.New(seed, 0)
		n := int(nRaw)%6 + 2
		times := make([]StepTimes, n)
		for i := range times {
			compute := 1 + 9*r.Float64()
			pm := r.Float64()
			poi := r.Float64()
			times[i] = StepTimes{Total: compute + pm + poi, Migration: pm, Poisson: poi}
		}
		lii := LII(times)
		if lii <= 0 {
			return false
		}
		// Identical times => exactly 1.
		same := make([]StepTimes, n)
		for i := range same {
			same[i] = times[0]
		}
		return LII(same) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// buildWorld prepares an n-rank test world over a box mesh where initially
// every particle sits on rank 0 (the paper's Fig. 5 pathology).
func buildWorld(t *testing.T, nRanks, particlesPerCell int) (*mesh.Mesh, []int32, func(rank int) *particle.Store) {
	t.Helper()
	m, err := mesh.Box(4, 4, 4, 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	owner := make([]int32, m.NumCells())
	for c := range owner {
		owner[c] = int32(c * nRanks / m.NumCells()) // block ownership
	}
	makeStore := func(rank int) *particle.Store {
		st := particle.NewStore(0)
		if rank != 0 {
			return st
		}
		r := rng.New(77, 0)
		id := int64(0)
		// All particles concentrated in rank 0's cells.
		for c := range owner {
			if owner[c] != 0 {
				continue
			}
			for k := 0; k < particlesPerCell; k++ {
				sp := particle.H
				if k%3 == 0 {
					sp = particle.HPlus
				}
				st.Append(particle.Particle{
					Pos: m.Centroids[c], Sp: sp, Cell: int32(c), ID: id,
				})
				id++
				_ = r
			}
		}
		return st
	}
	return m, owner, makeStore
}

func TestRebalanceFixesConcentration(t *testing.T) {
	const nRanks = 4
	m, owner, makeStore := buildWorld(t, nRanks, 50)
	xadj, adjncy := m.DualGraph()
	w := simmpi.NewWorld(nRanks, simmpi.Options{})
	counts := make([]int, nRanks)
	moved := make([]Result, nRanks)
	err := w.Run(func(comm *simmpi.Comm) {
		cfg := DefaultConfig()
		cfg.T = 1 // rebalance allowed immediately
		b := New(cfg, owner, xadj, adjncy)
		st := makeStore(comm.Rank())
		// Rank 0 is overloaded: fake its time high.
		times := StepTimes{Total: 1, Migration: 0.01, Poisson: 0.01}
		if comm.Rank() == 0 {
			times.Total = 10
		}
		res, err := b.MaybeRebalance(comm, st, times)
		if err != nil {
			panic(err)
		}
		moved[comm.Rank()] = res
		counts[comm.Rank()] = st.Len()
		// Post-condition: every local particle is on its owning rank.
		for i := 0; i < st.Len(); i++ {
			if b.CellOwner[st.Cell[i]] != int32(comm.Rank()) {
				panic(fmt.Sprintf("rank %d holds particle of rank %d", comm.Rank(), b.CellOwner[st.Cell[i]]))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !moved[0].Rebalanced {
		t.Fatal("rebalance did not trigger")
	}
	total := 0
	maxC, minC := 0, 1<<30
	for _, c := range counts {
		total += c
		if c > maxC {
			maxC = c
		}
		if c < minC {
			minC = c
		}
	}
	if total == 0 {
		t.Fatal("particles lost")
	}
	// Concentration resolved: before, rank 0 held 100%; after, the max
	// rank holds far less.
	if float64(maxC) > 0.55*float64(total) {
		t.Errorf("still concentrated: max %d of %d (counts %v)", maxC, total, counts)
	}
}

func TestRebalanceRespectsInterval(t *testing.T) {
	const nRanks = 2
	m, owner, makeStore := buildWorld(t, nRanks, 10)
	xadj, adjncy := m.DualGraph()
	w := simmpi.NewWorld(nRanks, simmpi.Options{})
	err := w.Run(func(comm *simmpi.Comm) {
		cfg := DefaultConfig()
		cfg.T = 3
		b := New(cfg, owner, xadj, adjncy)
		st := makeStore(comm.Rank())
		times := StepTimes{Total: 1}
		if comm.Rank() == 0 {
			times.Total = 100 // hugely imbalanced
		}
		// Iterations 1 and 2: below T, no rebalance even though lii >> thr.
		for it := 0; it < 2; it++ {
			res, err := b.MaybeRebalance(comm, st, times)
			if err != nil {
				panic(err)
			}
			if res.Rebalanced {
				panic("rebalanced before T iterations")
			}
		}
		// Iteration 3: triggers.
		res, err := b.MaybeRebalance(comm, st, times)
		if err != nil {
			panic(err)
		}
		if !res.Rebalanced {
			panic("did not rebalance at T")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRebalanceBelowThresholdNoop(t *testing.T) {
	const nRanks = 2
	m, owner, makeStore := buildWorld(t, nRanks, 10)
	xadj, adjncy := m.DualGraph()
	w := simmpi.NewWorld(nRanks, simmpi.Options{})
	err := w.Run(func(comm *simmpi.Comm) {
		cfg := DefaultConfig()
		cfg.T = 1
		cfg.Threshold = 2.0
		b := New(cfg, owner, xadj, adjncy)
		st := makeStore(comm.Rank())
		times := StepTimes{Total: 1.1} // lii ~ 1.1/1.0 < 2
		if comm.Rank() == 0 {
			times.Total = 1.0
		}
		res, err := b.MaybeRebalance(comm, st, times)
		if err != nil {
			panic(err)
		}
		if res.Rebalanced {
			panic("rebalanced below threshold")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// kmMigration measures migrated load with and without KM for an owner
// layout deliberately misaligned with part ids.
func kmMigration(t *testing.T, useKM bool) int {
	const nRanks = 4
	m, err := mesh.Box(4, 4, 4, 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Owner layout: the exact partition the balancer will recompute (same
	// graph, same uniform weights, same seed), but with rank ids rotated by
	// one. An identity part->rank mapping then moves nearly every cell,
	// while KM recovers the rotation and moves almost nothing.
	xadj, adjncy := m.DualGraph()
	wlm := make([]int64, m.NumCells())
	for c := range wlm {
		wlm[c] = 21 // 20 particles + WCell, matching the balancer's input below
	}
	pre, err := partition.PartGraphKway(&partition.Graph{Xadj: xadj, Adjncy: adjncy, VWgt: wlm}, nRanks, partition.Options{})
	if err != nil {
		t.Fatal(err)
	}
	owner := make([]int32, m.NumCells())
	for c := range owner {
		owner[c] = (pre[c] + 1) % int32(nRanks)
	}
	w := simmpi.NewWorld(nRanks, simmpi.Options{})
	migrated := make([]int, nRanks)
	err = w.Run(func(comm *simmpi.Comm) {
		cfg := DefaultConfig()
		cfg.T = 1
		cfg.UseKM = useKM
		b := New(cfg, owner, xadj, adjncy)
		// Uniform particles on owned cells.
		st := particle.NewStore(0)
		id := int64(comm.Rank()) << 32
		for c := range owner {
			if owner[c] != int32(comm.Rank()) {
				continue
			}
			for k := 0; k < 20; k++ {
				st.Append(particle.Particle{Pos: m.Centroids[c], Sp: particle.H, Cell: int32(c), ID: id})
				id++
			}
		}
		times := StepTimes{Total: 1}
		if comm.Rank() == 0 {
			times.Total = 10 // force trigger
		}
		res, err := b.MaybeRebalance(comm, st, times)
		if err != nil {
			panic(err)
		}
		if !res.Rebalanced {
			panic("no rebalance")
		}
		migrated[comm.Rank()] = res.Migrated
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, m := range migrated {
		total += m
	}
	return total
}

func TestKMReducesMigration(t *testing.T) {
	with := kmMigration(t, true)
	without := kmMigration(t, false)
	if with >= without {
		t.Errorf("KM migrated %d, without KM %d — KM should migrate less", with, without)
	}
}

func TestRebalancePreservesParticles(t *testing.T) {
	const nRanks = 3
	m, owner, makeStore := buildWorld(t, nRanks, 30)
	xadj, adjncy := m.DualGraph()
	for _, strat := range []exchange.Strategy{exchange.Centralized, exchange.Distributed} {
		w := simmpi.NewWorld(nRanks, simmpi.Options{})
		counts := make([]int, nRanks)
		before := make([]int, nRanks)
		err := w.Run(func(comm *simmpi.Comm) {
			cfg := DefaultConfig()
			cfg.T = 1
			cfg.Strategy = strat
			b := New(cfg, owner, xadj, adjncy)
			st := makeStore(comm.Rank())
			before[comm.Rank()] = st.Len()
			times := StepTimes{Total: 1}
			if comm.Rank() == 0 {
				times.Total = 50
			}
			if _, err := b.MaybeRebalance(comm, st, times); err != nil {
				panic(err)
			}
			counts[comm.Rank()] = st.Len()
		})
		if err != nil {
			t.Fatal(err)
		}
		sumB, sumA := 0, 0
		for r := 0; r < nRanks; r++ {
			sumB += before[r]
			sumA += counts[r]
		}
		if sumA != sumB {
			t.Errorf("%v: particle count changed %d -> %d", strat, sumB, sumA)
		}
	}
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.T != 20 || cfg.Threshold != 2.0 || cfg.R != 2 || cfg.WCell != 1 || !cfg.UseKM {
		t.Errorf("defaults diverge from paper §VII-B: %+v", cfg)
	}
}

// TestInjectedClockDeterministic pins the injectable-clock contract: with
// a fake clock the rebalance's measured Overhead is an exact, replayable
// value on every rank — the wall clock never leaks into balance decisions
// or reported timings unless explicitly wired in (commvet's nondeterminism
// analyzer enforces the "never calls time.Now directly" half statically).
func TestInjectedClockDeterministic(t *testing.T) {
	const nRanks = 4
	m, owner, makeStore := buildWorld(t, nRanks, 50)
	xadj, adjncy := m.DualGraph()
	w := simmpi.NewWorld(nRanks, simmpi.Options{})
	overheads := make([]time.Duration, nRanks)
	err := w.Run(func(comm *simmpi.Comm) {
		cfg := DefaultConfig()
		cfg.T = 1
		b := New(cfg, owner, xadj, adjncy)
		// Fake clock: each read advances exactly 5ms, starting from zero.
		var ticks int64
		b.Clock = func() time.Time {
			ticks++
			return time.Unix(0, ticks*5e6)
		}
		st := makeStore(comm.Rank())
		times := StepTimes{Total: 1, Migration: 0.01, Poisson: 0.01}
		if comm.Rank() == 0 {
			times.Total = 10
		}
		res, err := b.MaybeRebalance(comm, st, times)
		if err != nil {
			panic(err)
		}
		if !res.Rebalanced {
			panic("expected a rebalance")
		}
		overheads[comm.Rank()] = res.Overhead
	})
	if err != nil {
		t.Fatal(err)
	}
	// MaybeRebalance reads the clock exactly twice (start, end), so the
	// fake yields exactly one 5ms tick of overhead — on every rank, on
	// every run.
	for r, d := range overheads {
		if d != 5*time.Millisecond {
			t.Errorf("rank %d overhead = %v, want exactly 5ms from the fake clock", r, d)
		}
	}
}
