package parallel

import (
	"sync/atomic"
	"testing"
)

// TestBoundsPartition proves the chunk decomposition is an exact disjoint
// cover of [0, n) for a matrix of (n, workers), including n < workers and
// n = 0 — the property every kernel's disjoint-write safety rests on.
func TestBoundsPartition(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 7, 8, 100, 1001} {
		for _, w := range []int{1, 2, 3, 4, 7, 16} {
			prevHi := 0
			total := 0
			for c := 0; c < w; c++ {
				lo, hi := Bounds(n, w, c)
				if lo != prevHi {
					t.Fatalf("n=%d w=%d chunk %d: lo=%d, want %d (contiguous)", n, w, c, lo, prevHi)
				}
				if hi < lo {
					t.Fatalf("n=%d w=%d chunk %d: hi=%d < lo=%d", n, w, c, hi, lo)
				}
				total += hi - lo
				prevHi = hi
			}
			if prevHi != n || total != n {
				t.Fatalf("n=%d w=%d: chunks cover %d elements ending at %d, want %d", n, w, total, prevHi, n)
			}
		}
	}
}

// TestRunSerialInline pins the legacy contract: a 1-worker (or nil) pool
// invokes the kernel exactly once, inline, as chunk 0 over [0, n).
func TestRunSerialInline(t *testing.T) {
	for _, p := range []*Pool{nil, New(1), New(0), New(-3), {}} {
		calls := 0
		p.Run(17, func(chunk, lo, hi int) {
			calls++
			if chunk != 0 || lo != 0 || hi != 17 {
				t.Fatalf("serial pool: got (chunk=%d, lo=%d, hi=%d), want (0, 0, 17)", chunk, lo, hi)
			}
		})
		if calls != 1 {
			t.Fatalf("serial pool: %d calls, want 1", calls)
		}
	}
}

// TestRunCoversEveryIndexOnce marks each index from its owning chunk and
// verifies every index is touched exactly once and every chunk fires.
func TestRunCoversEveryIndexOnce(t *testing.T) {
	const n = 1000
	p := New(4)
	touched := make([]int32, n)
	var chunks atomic.Int32
	p.Run(n, func(chunk, lo, hi int) {
		chunks.Add(1)
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&touched[i], 1)
		}
	})
	if got := chunks.Load(); got != 4 {
		t.Fatalf("chunk callbacks: %d, want 4", got)
	}
	for i, c := range touched {
		if c != 1 {
			t.Fatalf("index %d touched %d times, want 1", i, c)
		}
	}
}

// TestRunEmptyChunksStillFire pins that every chunk index fires even when
// n < workers, so per-chunk RNG streams stay aligned with chunk indices.
func TestRunEmptyChunksStillFire(t *testing.T) {
	p := New(8)
	seen := make([]atomic.Bool, 8)
	p.Run(3, func(chunk, lo, hi int) {
		seen[chunk].Store(true)
	})
	for c := range seen {
		if !seen[c].Load() {
			t.Fatalf("chunk %d never fired for n=3, w=8", c)
		}
	}
}
