// Package parallel provides the per-rank worker pool behind the hot
// particle kernels (dsmc.Move, Collider.Collide, pic.DepositCharge,
// pic.BorisPush). Ranks are goroutines already; this pool adds *intra-rank*
// multicore parallelism without giving up the byte-identical-replay
// contract the solver's deterministic packages guarantee.
//
// Determinism comes from fixed work decomposition, not from scheduling:
// Run partitions an index range [0, n) into exactly Workers() contiguous
// chunks whose boundaries depend only on (n, workers) — never on timing,
// goroutine interleaving, or host load. Kernels keep their sweeps
// replayable on top of that by
//
//   - deriving per-chunk RNG streams from the rank RNG by chunk index
//     (rng.Rand.Reseed), so random draws are a pure function of
//     (seed, workers, chunk);
//   - accumulating floats into per-worker scratch reduced in worker-index
//     order (keyed accumulation), so sums are order-stable;
//   - emitting side effects (particle creation, surface samples) into
//     per-worker buffers merged in worker-index order after the sweep.
//
// A nil *Pool and a 1-worker pool both run the kernel inline on the
// calling goroutine with a single chunk covering [0, n) — the exact
// legacy serial path, with zero dispatch overhead and zero extra RNG
// draws. Replay is therefore byte-identical for a fixed (seed, workers)
// pair, and workers=1 is bit-for-bit the serial solver.
package parallel

import "sync"

// Pool runs kernels over deterministic contiguous chunks of an index
// range. The zero value and nil both behave as a 1-worker (serial) pool.
// A Pool is stateless between Run calls and safe for use by one rank;
// each rank owns its own pool (they must not share one, or per-chunk
// scratch keyed by chunk index would race).
type Pool struct {
	workers int
}

// New returns a pool of the given width. workers < 1 is clamped to 1.
func New(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	return &Pool{workers: workers}
}

// Workers returns the pool width; nil and zero-value pools report 1.
func (p *Pool) Workers() int {
	if p == nil || p.workers < 1 {
		return 1
	}
	return p.workers
}

// Bounds returns the half-open range [lo, hi) of chunk c when [0, n) is
// split into w fixed contiguous chunks. Boundaries are a pure function of
// (n, w, c): chunk c covers [c*n/w, (c+1)*n/w). Chunks may be empty when
// n < w.
func Bounds(n, w, c int) (lo, hi int) {
	return c * n / w, (c + 1) * n / w
}

// Run partitions [0, n) into Workers() fixed contiguous chunks and calls
// fn(chunk, lo, hi) for each, concurrently when the pool has more than
// one worker. It returns when every chunk has completed. With one worker
// (or a nil pool) fn is invoked inline as fn(0, 0, n) — no goroutines,
// no synchronization, the exact serial path.
//
// fn is called exactly once per chunk index in [0, Workers()), including
// empty chunks, so per-chunk state (RNG streams, scratch rows) stays
// aligned with chunk indices regardless of n.
func (p *Pool) Run(n int, fn func(chunk, lo, hi int)) {
	w := p.Workers()
	if w == 1 {
		fn(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(w)
	for c := 0; c < w; c++ {
		go func(c int) {
			defer wg.Done()
			lo, hi := Bounds(n, w, c)
			fn(c, lo, hi)
		}(c)
	}
	wg.Wait()
}
