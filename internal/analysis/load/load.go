// Package load resolves Go package patterns (./..., import paths) into
// parsed, type-checked packages using only the standard library plus the
// go command itself. It exists because commvet must run offline: the
// golang.org/x/go/packages loader is unavailable, so we shell out to
// `go list -json -deps -test`, which emits dependencies before
// dependents, and type-check each package from source in that order.
//
// The returned slice preserves that dependency order, and includes the
// in-module dependencies of the named patterns (Target=false) alongside
// the named packages themselves (Target=true): a facts-aware driver
// analyzes every package in order so cross-package facts exist by the
// time their importers need them, but reports diagnostics only for
// targets. Test sources ride along as the go command's test variants
// ("pkg [pkg.test]" with the package's _test.go files merged, and
// "pkg_test [pkg.test]" for external test packages); the synthesized
// ".test" main packages are dropped.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	ForTest    string
	Imports    []string
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// Package is one type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
	// Target reports whether the package was named by the patterns (as
	// opposed to pulled in as a dependency); only targets are reported.
	Target bool
}

// Packages loads and type-checks the packages matching patterns, plus the
// dependencies needed to type-check them. The go command resolves the
// patterns; type-checking is from source, in dependency order, with a
// shared package cache. Standard-library dependencies are type-checked
// for import resolution but not returned.
func Packages(dir string, patterns []string) ([]*Package, error) {
	args := append([]string{"list", "-e", "-json", "-deps", "-test"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	// Pure-Go view: with cgo enabled, stdlib packages like net list
	// cgo-dependent GoFiles (_C_* symbols) that cannot be type-checked
	// from source. The module itself is pure Go, so the views agree.
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	var listed []*listPackage
	dec := json.NewDecoder(&stdout)
	for {
		lp := new(listPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: parsing output: %v", err)
		}
		listed = append(listed, lp)
	}

	fset := token.NewFileSet()
	ld := &loader{
		fset:   fset,
		byPath: make(map[string]*listPackage, len(listed)),
		types:  make(map[string]*types.Package),
	}
	for _, lp := range listed {
		ld.byPath[lp.ImportPath] = lp
	}

	// When a package's test variant is among the roots ("pkg [pkg.test]"),
	// the base package is analyzed only as a dependency: the variant holds
	// the same production files plus the _test.go files, so treating both
	// as targets would double-report every production diagnostic.
	hasTestVariant := make(map[string]bool)
	for _, lp := range listed {
		// "pkg [pkg.test]" is the in-package variant; external "pkg_test"
		// variants are additional packages, not replacements.
		if lp.ForTest != "" && !lp.DepOnly && strings.HasPrefix(lp.ImportPath, lp.ForTest+" [") {
			hasTestVariant[lp.ForTest] = true
		}
	}

	var out []*Package
	for _, lp := range listed {
		if lp.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if strings.HasSuffix(lp.ImportPath, ".test") && lp.Name == "main" {
			// Synthesized test-binary main: generated files, nothing to
			// analyze (and nothing imports it).
			continue
		}
		pkg, err := ld.check(lp)
		if err != nil {
			return nil, err
		}
		if lp.Standard {
			continue
		}
		target := !lp.DepOnly
		if target && lp.ForTest == "" && hasTestVariant[lp.ImportPath] {
			target = false
		}
		out = append(out, &Package{
			ImportPath: lp.ImportPath,
			Fset:       fset,
			Files:      pkg.files,
			Pkg:        pkg.tpkg,
			Info:       pkg.info,
			Target:     target,
		})
	}
	return out, nil
}

// checked is one type-checked package held in the loader cache.
type checked struct {
	files []*ast.File
	tpkg  *types.Package
	info  *types.Info
}

type loader struct {
	fset    *token.FileSet
	byPath  map[string]*listPackage
	types   map[string]*types.Package
	checked map[string]*checked
}

// check parses and type-checks lp (memoized via loader.types).
func (ld *loader) check(lp *listPackage) (*checked, error) {
	if ld.checked == nil {
		ld.checked = make(map[string]*checked)
	}
	if c := ld.checked[lp.ImportPath]; c != nil {
		return c, nil
	}
	if lp.ImportPath == "unsafe" {
		ld.types["unsafe"] = types.Unsafe
		c := &checked{tpkg: types.Unsafe}
		ld.checked["unsafe"] = c
		return c, nil
	}
	var files []*ast.File
	for _, name := range lp.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(lp.Dir, name)
		}
		f, err := parser.ParseFile(ld.fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: &cacheImporter{ld: ld, from: lp},
		Error:    func(error) {}, // collect best-effort; first hard error below
	}
	tpkg, err := conf.Check(lp.ImportPath, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", lp.ImportPath, err)
	}
	ld.types[lp.ImportPath] = tpkg
	c := &checked{files: files, tpkg: tpkg, info: info}
	ld.checked[lp.ImportPath] = c
	return c, nil
}

// cacheImporter resolves imports of one package against the loader cache,
// falling back to the source importer for anything `go list -deps` did not
// enumerate (which should not happen; the fallback keeps -e tolerable).
type cacheImporter struct {
	ld   *loader
	from *listPackage
	srcI types.Importer
}

func (ci *cacheImporter) Import(path string) (*types.Package, error) {
	resolved := path
	if mapped, ok := ci.from.ImportMap[path]; ok {
		resolved = mapped
	}
	if resolved == "unsafe" {
		return types.Unsafe, nil
	}
	if p := ci.ld.types[resolved]; p != nil {
		return p, nil
	}
	if lp := ci.ld.byPath[resolved]; lp != nil {
		c, err := ci.ld.check(lp)
		if err != nil {
			return nil, err
		}
		return c.tpkg, nil
	}
	if ci.srcI == nil {
		ci.srcI = importer.ForCompiler(ci.ld.fset, "source", nil)
	}
	return ci.srcI.Import(resolved)
}
