package analysis_test

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"github.com/plasma-hpc/dsmcpic/internal/analysis"
)

// depthFact records how many call hops separate a function from Target.
type depthFact struct {
	Depth int `json:"depth"`
}

func (*depthFact) AFact() {}

// originFact is a package-level fact naming where the chain starts.
type originFact struct {
	Pkg string `json:"pkg"`
}

func (*originFact) AFact() {}

// chainAnalyzer exports a depthFact on Target, propagates it through
// single-call wrappers (depth+1, across package boundaries via imported
// facts), and reports every call whose callee carries a fact. It is the
// minimal interprocedural analyzer: any driver bug that drops, reorders,
// or fails to round-trip facts changes its diagnostics.
var chainAnalyzer = &analysis.Analyzer{
	Name:      "chain",
	Doc:       "test analyzer: propagate call-depth facts",
	FactTypes: []analysis.Fact{(*depthFact)(nil), (*originFact)(nil)},
	Run: func(pass *analysis.Pass) (interface{}, error) {
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				if fd.Name.Name == "Target" {
					pass.ExportObjectFact(obj, &depthFact{Depth: 1})
					pass.ExportPackageFact(&originFact{Pkg: pass.Pkg.Path()})
					continue
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					callee := staticCallee(pass.TypesInfo, call)
					if callee == nil {
						return true
					}
					var d depthFact
					if pass.ImportObjectFact(callee, &d) {
						pass.Reportf(call.Pos(), "call to %s reaches Target (depth %d)", callee.Name(), d.Depth)
						pass.ExportObjectFact(obj, &depthFact{Depth: d.Depth + 1})
					}
					return true
				})
			}
		}
		return nil, nil
	},
}

// staticCallee resolves call's callee when it is a plain function
// reference (local or package-qualified).
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// memImporter resolves imports from previously checked in-memory packages.
type memImporter struct {
	pkgs map[string]*types.Package
	std  types.Importer
}

func (m *memImporter) Import(path string) (*types.Package, error) {
	if p := m.pkgs[path]; p != nil {
		return p, nil
	}
	return m.std.Import(path)
}

// checkedPkg is one in-memory package ready for RunWithFacts.
type checkedPkg struct {
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
}

// checkSource parses and type-checks one single-file package whose import
// path equals its name, resolving imports from deps.
func checkSource(t *testing.T, fset *token.FileSet, imp *memImporter, path, src string) *checkedPkg {
	t.Helper()
	f, err := parser.ParseFile(fset, path+".go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	info := &types.Info{
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Types:      make(map[ast.Expr]types.TypeAndValue),
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("type-check %s: %v", path, err)
	}
	imp.pkgs[path] = pkg
	return &checkedPkg{files: []*ast.File{f}, pkg: pkg, info: info}
}

// chainSources is a three-package call chain: leaf (Target) <- mid
// (Wrap calls leaf.Target) <- top (Use calls mid.Wrap). The fact must
// cross two package boundaries for top to report.
var chainSources = []struct{ path, src string }{
	{"leaf", `package leaf
func Target() {}
`},
	{"mid", `package mid
import "leaf"
func Wrap() { leaf.Target() }
`},
	{"top", `package top
import "mid"
func Use() { mid.Wrap() }
`},
}

// runChain analyzes the three chain packages in dependency order. Facts
// cross package boundaries through transport, letting tests choose the
// in-memory path (cold, one process) or the encode/decode path (what the
// unitchecker does between separate `go vet` invocations).
func runChain(t *testing.T, transport func(*analysis.PackageFacts) *analysis.PackageFacts) (map[string][]analysis.Diagnostic, map[string]*analysis.PackageFacts) {
	t.Helper()
	fset := token.NewFileSet()
	imp := &memImporter{pkgs: make(map[string]*types.Package), std: importer.Default()}
	deps := analysis.NewFactSet()
	diags := make(map[string][]analysis.Diagnostic)
	factsByPkg := make(map[string]*analysis.PackageFacts)
	for _, s := range chainSources {
		cp := checkSource(t, fset, imp, s.path, s.src)
		ds, exported, err := analysis.RunWithFacts(
			[]*analysis.Analyzer{chainAnalyzer}, fset, cp.files, cp.pkg, cp.info, deps)
		if err != nil {
			t.Fatalf("analyzing %s: %v", s.path, err)
		}
		diags[s.path] = ds
		factsByPkg[s.path] = exported
		deps.Add(transport(exported))
	}
	return diags, factsByPkg
}

// identityTransport hands the in-memory fact object straight to the
// dependents — the standalone driver's cold path.
func identityTransport(pf *analysis.PackageFacts) *analysis.PackageFacts { return pf }

// wireTransport round-trips facts through their serialized form — the
// unitchecker's incremental path (vetx files between processes).
func wireTransport(t *testing.T) func(*analysis.PackageFacts) *analysis.PackageFacts {
	return func(pf *analysis.PackageFacts) *analysis.PackageFacts {
		blob, err := pf.Encode()
		if err != nil {
			t.Fatalf("encoding facts for %s: %v", pf.Path, err)
		}
		decoded, err := analysis.DecodePackageFacts(pf.Path, blob)
		if err != nil {
			t.Fatalf("decoding facts for %s: %v", pf.Path, err)
		}
		return decoded
	}
}

// TestFactEncodeRoundTrip pins the wire format: encoding is deterministic,
// decode(encode(x)) re-encodes to identical bytes, and the empty set
// encodes to nil (keeping fact-free vetx output byte-identical to the
// pre-facts format).
func TestFactEncodeRoundTrip(t *testing.T) {
	_, facts := runChain(t, identityTransport)

	leaf := facts["leaf"]
	if leaf.Len() == 0 {
		t.Fatal("leaf exported no facts; want a depthFact on Target and a package originFact")
	}
	blob, err := leaf.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(blob) == 0 {
		t.Fatal("non-empty fact set encoded to empty blob")
	}
	blob2, err := leaf.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Error("Encode is not deterministic across calls")
	}
	decoded, err := analysis.DecodePackageFacts("leaf", blob)
	if err != nil {
		t.Fatal(err)
	}
	if decoded.Len() != leaf.Len() {
		t.Errorf("decoded %d facts, want %d", decoded.Len(), leaf.Len())
	}
	reblob, err := decoded.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, reblob) {
		t.Errorf("round-trip changed the encoding:\n before %s\n after  %s", blob, reblob)
	}

	// Empty set: nil blob both ways.
	empty, err := analysis.DecodePackageFacts("nothing", nil)
	if err != nil {
		t.Fatal(err)
	}
	if b, err := empty.Encode(); err != nil || b != nil {
		t.Errorf("empty set Encode = (%q, %v), want (nil, nil)", b, err)
	}
}

// TestFactPropagationAcrossThreePackages proves facts flow in dependency
// order across two package boundaries: Target's fact (leaf) is seen by
// mid's Wrap, and the re-exported depth-2 fact is seen by top's Use.
func TestFactPropagationAcrossThreePackages(t *testing.T) {
	diags, facts := runChain(t, identityTransport)

	wantMsg := func(pkg, want string) {
		t.Helper()
		ds := diags[pkg]
		if len(ds) != 1 {
			t.Fatalf("%s: got %d diagnostics %v, want 1", pkg, len(ds), ds)
		}
		if ds[0].Message != want {
			t.Errorf("%s diagnostic = %q, want %q", pkg, ds[0].Message, want)
		}
	}
	if len(diags["leaf"]) != 0 {
		t.Errorf("leaf: unexpected diagnostics %v", diags["leaf"])
	}
	wantMsg("mid", "call to Target reaches Target (depth 1)")
	wantMsg("top", "call to Wrap reaches Target (depth 2)")

	// mid must have re-exported a deeper fact for top to import.
	if facts["mid"].Len() == 0 {
		t.Error("mid exported no facts; propagation would stop at one hop")
	}
}

// TestColdAndIncrementalDiagnosticsAgree is the cache-coherence
// regression: analyzing with facts handed over in memory (cold build,
// standalone driver) and with facts round-tripped through their encoded
// form (incremental build, unitchecker vetx files) must produce identical
// diagnostics in every package. A wire-format field that fails to
// serialize state would make `go vet` results depend on cache warmth.
func TestColdAndIncrementalDiagnosticsAgree(t *testing.T) {
	cold, _ := runChain(t, identityTransport)
	incr, _ := runChain(t, wireTransport(t))

	for _, s := range chainSources {
		c, i := cold[s.path], incr[s.path]
		if fmt.Sprint(c) != fmt.Sprint(i) {
			t.Errorf("%s: cold diagnostics %v != incremental diagnostics %v", s.path, c, i)
		}
	}
}
