// Facts: serializable, per-object and per-package analysis results that
// flow across package boundaries in dependency order — the mechanism that
// turns the commvet suite from per-function checks into interprocedural
// ones. The design mirrors golang.org/x/tools/go/analysis Facts closely:
//
//   - A Fact is a pointer to a JSON-serializable struct implementing the
//     marker method AFact. Each analyzer declares its fact types in
//     Analyzer.FactTypes and sees only its own facts (namespaced by
//     analyzer name), so two analyzers can attach different facts to the
//     same function without colliding.
//   - While analyzing package P, Pass.ExportObjectFact attaches a fact to
//     one of P's own objects (a package-level function, method, var, or
//     type). When a *downstream* package is analyzed, the same analyzer
//     calls Pass.ImportObjectFact on the imported object and receives the
//     fact back — the driver carried it across the package boundary.
//   - Facts serialize to a flat JSON list (one vetx-style blob per
//     package). The standalone driver keeps them in memory in dependency
//     order; the unitchecker driver writes the blob to the go command's
//     VetxOutput file and reads dependencies' blobs from PackageVetx, so
//     `go vet -vettool` caching works per package, facts included.
//
// Objects are keyed by a stable textual path ("FuncName" for package-level
// objects, "Recv.Method" for methods) rather than by pointer identity,
// because the importing package sees *different* types.Object instances
// (from export data or a separately checked source unit) than the
// exporting package did. Only objects addressable by such a key can carry
// serialized facts; that covers everything a cross-package caller can
// reference.
package analysis

import (
	"encoding/json"
	"fmt"
	"go/types"
	"reflect"
	"sort"
	"strings"
)

// Fact is an analyzer-defined result about an object or package,
// serializable as JSON. Implementations must be pointers to structs.
type Fact interface {
	// AFact is a marker method; it does nothing.
	AFact()
}

// wireFact is the serialized form of one exported fact.
type wireFact struct {
	// Analyzer namespaces the fact (analyzers never see each other's).
	Analyzer string `json:"analyzer"`
	// Object is the stable object key ("" for a package-level fact).
	Object string `json:"object,omitempty"`
	// Type is the concrete Go type of the fact (reflect.Type.String()),
	// matched at import time against the caller's fact pointer.
	Type string `json:"type"`
	// Data is the fact's JSON encoding.
	Data json.RawMessage `json:"data"`
}

// PackageFacts is the complete fact output of analyzing one package: what
// the unitchecker writes to its vetx file and what the standalone driver
// hands to dependent packages.
type PackageFacts struct {
	// Path is the package path the facts were exported under.
	Path  string
	facts []wireFact
}

// Encode serializes the fact set. An empty set encodes to an empty blob
// (zero bytes), which keeps the vetx file byte-identical to the fact-free
// v1 output for packages exporting nothing.
func (pf *PackageFacts) Encode() ([]byte, error) {
	if pf == nil || len(pf.facts) == 0 {
		return nil, nil
	}
	// Deterministic output: sort by (analyzer, object, type). Export order
	// already is deterministic (AST order), but don't rely on it.
	sorted := append([]wireFact(nil), pf.facts...)
	sort.Slice(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		if a.Object != b.Object {
			return a.Object < b.Object
		}
		return a.Type < b.Type
	})
	return json.Marshal(sorted)
}

// Len reports how many facts the set holds.
func (pf *PackageFacts) Len() int {
	if pf == nil {
		return 0
	}
	return len(pf.facts)
}

// DecodePackageFacts parses a blob produced by Encode. Empty (or nil) data
// yields an empty, valid set — the fact-free fast path.
func DecodePackageFacts(path string, data []byte) (*PackageFacts, error) {
	pf := &PackageFacts{Path: path}
	if len(data) == 0 {
		return pf, nil
	}
	if err := json.Unmarshal(data, &pf.facts); err != nil {
		return nil, fmt.Errorf("analysis: decoding facts for %s: %v", path, err)
	}
	return pf, nil
}

// FactSet is the dependency-side view: the facts of every package already
// analyzed, keyed by package path. The driver fills it in dependency order
// so that when package P is analyzed, every package P imports is present.
type FactSet struct {
	pkgs map[string]*PackageFacts
}

// NewFactSet returns an empty fact set.
func NewFactSet() *FactSet {
	return &FactSet{pkgs: make(map[string]*PackageFacts)}
}

// Add registers one package's facts (replacing any previous entry for the
// same path). A nil FactSet or nil facts are tolerated no-ops.
func (fs *FactSet) Add(pf *PackageFacts) {
	if fs == nil || pf == nil {
		return
	}
	fs.pkgs[pf.Path] = pf
}

// lookup finds the encoded fact for (pkgPath, objKey, analyzer, typeName).
func (fs *FactSet) lookup(pkgPath, objKey, analyzer, typeName string) (json.RawMessage, bool) {
	if fs == nil {
		return nil, false
	}
	pf := fs.pkgs[pkgPath]
	if pf == nil {
		return nil, false
	}
	for _, f := range pf.facts {
		if f.Analyzer == analyzer && f.Object == objKey && f.Type == typeName {
			return f.Data, true
		}
	}
	return nil, false
}

// ObjectKey returns the stable cross-package key for obj: "Name" for a
// package-level object, "Recv.Name" for a method (pointer receivers are
// keyed the same as value receivers). Objects without a stable key —
// locals, struct fields, interface method *values* on unnamed types —
// return ok=false; they cannot carry serialized facts.
func ObjectKey(obj types.Object) (string, bool) {
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	if fn, ok := obj.(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			t := sig.Recv().Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			named, ok := t.(*types.Named)
			if !ok {
				return "", false
			}
			return named.Obj().Name() + "." + fn.Name(), true
		}
	}
	if obj.Parent() != obj.Pkg().Scope() {
		return "", false
	}
	return obj.Name(), true
}

// factTypeName is the wire identifier of a fact's concrete type.
func factTypeName(fact Fact) string {
	return reflect.TypeOf(fact).String()
}

// validFactType checks that fact is a non-nil pointer declared in the
// analyzer's FactTypes (matching x/tools' contract: undeclared fact types
// are a programming error, caught loudly).
func validFactType(a *Analyzer, fact Fact) error {
	t := reflect.TypeOf(fact)
	if t == nil || t.Kind() != reflect.Ptr {
		return fmt.Errorf("analysis: %s: fact %T must be a pointer to a struct", a.Name, fact)
	}
	for _, proto := range a.FactTypes {
		if reflect.TypeOf(proto) == t {
			return nil
		}
	}
	return fmt.Errorf("analysis: %s: fact type %s not declared in FactTypes", a.Name, t)
}

// passFacts is the per-(package, analyzer) fact state behind a Pass.
type passFacts struct {
	analyzer *Analyzer
	pkg      *types.Package
	imported *FactSet
	out      *PackageFacts
	// objFacts holds this pass's own exports, by object identity, so
	// same-package imports work even for objects with no stable key.
	objFacts map[types.Object][]Fact
	pkgFacts []Fact
	err      error // first fact-protocol violation, reported by the driver
}

func (pf *passFacts) setErr(err error) {
	if pf.err == nil {
		pf.err = err
	}
}

// exportObject attaches fact to obj, which must belong to the current
// package. Facts on objects with a stable key are serialized for
// downstream packages; keyless objects (locals) stay pass-local.
func (pf *passFacts) exportObject(obj types.Object, fact Fact) {
	if err := validFactType(pf.analyzer, fact); err != nil {
		pf.setErr(err)
		return
	}
	if obj == nil || obj.Pkg() != pf.pkg {
		pf.setErr(fmt.Errorf("analysis: %s: ExportObjectFact on object of another package (%v)", pf.analyzer.Name, obj))
		return
	}
	if pf.objFacts == nil {
		pf.objFacts = make(map[types.Object][]Fact)
	}
	pf.objFacts[obj] = append(pf.objFacts[obj], fact)
	key, ok := ObjectKey(obj)
	if !ok {
		return
	}
	data, err := json.Marshal(fact)
	if err != nil {
		pf.setErr(fmt.Errorf("analysis: %s: encoding fact %T for %s: %v", pf.analyzer.Name, fact, key, err))
		return
	}
	pf.out.facts = append(pf.out.facts, wireFact{
		Analyzer: pf.analyzer.Name, Object: key, Type: factTypeName(fact), Data: data,
	})
}

// importObject copies the fact attached to obj (by this analyzer) into
// *fact and reports whether one existed. Same-package objects resolve
// from this pass's in-memory exports; imported objects resolve from the
// dependency fact set via their stable key.
func (pf *passFacts) importObject(obj types.Object, fact Fact) bool {
	if err := validFactType(pf.analyzer, fact); err != nil {
		pf.setErr(err)
		return false
	}
	if obj == nil {
		return false
	}
	want := reflect.TypeOf(fact)
	if obj.Pkg() == pf.pkg {
		for _, f := range pf.objFacts[obj] {
			if reflect.TypeOf(f) == want {
				reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(f).Elem())
				return true
			}
		}
		return false
	}
	if obj.Pkg() == nil {
		return false
	}
	key, ok := ObjectKey(obj)
	if !ok {
		return false
	}
	data, ok := pf.imported.lookup(obj.Pkg().Path(), key, pf.analyzer.Name, factTypeName(fact))
	if !ok {
		return false
	}
	if err := json.Unmarshal(data, fact); err != nil {
		pf.setErr(fmt.Errorf("analysis: %s: decoding fact %s.%s: %v", pf.analyzer.Name, obj.Pkg().Path(), key, err))
		return false
	}
	return true
}

// exportPackage attaches a package-level fact to the current package.
func (pf *passFacts) exportPackage(fact Fact) {
	if err := validFactType(pf.analyzer, fact); err != nil {
		pf.setErr(err)
		return
	}
	pf.pkgFacts = append(pf.pkgFacts, fact)
	data, err := json.Marshal(fact)
	if err != nil {
		pf.setErr(fmt.Errorf("analysis: %s: encoding package fact %T: %v", pf.analyzer.Name, fact, err))
		return
	}
	pf.out.facts = append(pf.out.facts, wireFact{
		Analyzer: pf.analyzer.Name, Type: factTypeName(fact), Data: data,
	})
}

// importPackage copies the package fact of path (or of the current
// package when path matches it) into *fact.
func (pf *passFacts) importPackage(path string, fact Fact) bool {
	if err := validFactType(pf.analyzer, fact); err != nil {
		pf.setErr(err)
		return false
	}
	if path == pf.pkg.Path() {
		want := reflect.TypeOf(fact)
		for _, f := range pf.pkgFacts {
			if reflect.TypeOf(f) == want {
				reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(f).Elem())
				return true
			}
		}
		return false
	}
	data, ok := pf.imported.lookup(path, "", pf.analyzer.Name, factTypeName(fact))
	if !ok {
		return false
	}
	if err := json.Unmarshal(data, fact); err != nil {
		pf.setErr(fmt.Errorf("analysis: %s: decoding package fact of %s: %v", pf.analyzer.Name, path, err))
		return false
	}
	return true
}

// HasFacts reports whether the analyzer declares fact types — drivers use
// it to skip fact-free analyzers on dependency-only (VetxOnly) runs.
func (a *Analyzer) HasFacts() bool { return len(a.FactTypes) > 0 }

// TrimTestVariant strips the go command's test-variant suffix from an
// import path: "pkg [pkg.test]" → "pkg". Fact sets register test variants
// under both spellings so importers resolve either view.
func TrimTestVariant(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		return path[:i]
	}
	return path
}
