// Package analysistest runs an analyzer over fixture packages and checks
// its diagnostics against expectations written in the fixtures themselves,
// mirroring golang.org/x/tools/go/analysis/analysistest: a comment
//
//	// want "regexp"
//
// on a source line asserts that the analyzer reports a diagnostic on that
// line whose message matches the (double-quoted, Go-syntax) regular
// expression. Multiple expectations may share one comment:
//
//	// want "first" "second"
//
// Lines without a want comment must produce no diagnostics. Fixture
// packages live under <dir>/src/<pkg>/ and may import only the standard
// library (resolved by the offline source importer).
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"github.com/plasma-hpc/dsmcpic/internal/analysis"
)

// expectation is one `// want` regexp at a (file, line).
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// wantRe extracts the double-quoted regexps of a want comment.
var wantRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// Run loads dir/src/pkgname, applies the analyzer, and reports mismatches
// between produced diagnostics and // want expectations through t.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgname string) {
	t.Helper()
	pkgdir := filepath.Join(dir, "src", pkgname)
	entries, err := os.ReadDir(pkgdir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	var expects []*expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(pkgdir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("analysistest: %v", err)
		}
		files = append(files, f)
		exp, err := parseExpectations(fset, f)
		if err != nil {
			t.Fatal(err)
		}
		expects = append(expects, exp...)
	}
	if len(files) == 0 {
		t.Fatalf("analysistest: no Go files in %s", pkgdir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check(pkgname, fset, files, info)
	if err != nil {
		t.Fatalf("analysistest: type-checking fixture %s: %v", pkgname, err)
	}

	diags, err := analysis.Run([]*analysis.Analyzer{a}, fset, files, pkg, info)
	if err != nil {
		t.Fatalf("analysistest: running %s: %v", a.Name, err)
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if !claim(expects, pos.Filename, pos.Line, d.Message) {
			t.Errorf("%s:%d: unexpected diagnostic: %s", filepath.Base(pos.Filename), pos.Line, d.Message)
		}
	}
	sort.Slice(expects, func(i, j int) bool {
		if expects[i].file != expects[j].file {
			return expects[i].file < expects[j].file
		}
		return expects[i].line < expects[j].line
	})
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", filepath.Base(e.file), e.line, e.raw)
		}
	}
}

// claim marks the first unmatched expectation satisfied by the diagnostic
// and reports whether one existed.
func claim(expects []*expectation, file string, line int, msg string) bool {
	for _, e := range expects {
		if e.matched || e.file != file || e.line != line {
			continue
		}
		if e.re.MatchString(msg) {
			e.matched = true
			return true
		}
	}
	return false
}

// parseExpectations collects the // want comments of one file.
func parseExpectations(fset *token.FileSet, f *ast.File) ([]*expectation, error) {
	var out []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, "want ") {
				continue
			}
			pos := fset.Position(c.Pos())
			matches := wantRe.FindAllStringSubmatch(text[len("want "):], -1)
			if len(matches) == 0 {
				return nil, fmt.Errorf("%s:%d: malformed want comment: %s", pos.Filename, pos.Line, c.Text)
			}
			for _, m := range matches {
				re, err := regexp.Compile(m[1])
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, m[1], err)
				}
				out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: m[1]})
			}
		}
	}
	return out, nil
}
