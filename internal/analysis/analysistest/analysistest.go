// Package analysistest runs an analyzer over fixture packages and checks
// its diagnostics against expectations written in the fixtures themselves,
// mirroring golang.org/x/tools/go/analysis/analysistest: a comment
//
//	// want "regexp"
//
// on a source line asserts that the analyzer reports a diagnostic on that
// line whose message matches the (double-quoted, Go-syntax) regular
// expression. Multiple expectations may share one comment:
//
//	// want "first" "second"
//
// Lines without a want comment must produce no diagnostics. Fixture
// packages live under <dir>/src/<pkg>/ and may import the standard
// library (resolved by the offline source importer) or sibling fixture
// packages by bare name — Run(t, dir, a, "helper", "caller") analyzes
// both in the order given, carrying the analyzer's facts from one to the
// next through a full encode/decode round-trip, so fixtures exercise the
// same serialization path as the go vet unitchecker.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"github.com/plasma-hpc/dsmcpic/internal/analysis"
)

// expectation is one `// want` regexp at a (file, line).
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// wantRe extracts the double-quoted regexps of a want comment.
var wantRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// fixturePkg is one parsed, type-checked fixture package.
type fixturePkg struct {
	files   []*ast.File
	pkg     *types.Package
	info    *types.Info
	expects []*expectation
}

// fixtureLoader type-checks fixture packages under dir/src/<name>,
// resolving imports of sibling fixtures recursively and everything else
// through the offline source importer.
type fixtureLoader struct {
	dir     string
	fset    *token.FileSet
	checked map[string]*fixturePkg
	std     types.Importer
}

func (ld *fixtureLoader) Import(path string) (*types.Package, error) {
	if fi, err := os.Stat(filepath.Join(ld.dir, "src", path)); err == nil && fi.IsDir() {
		fp, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return fp.pkg, nil
	}
	return ld.std.Import(path)
}

func (ld *fixtureLoader) load(pkgname string) (*fixturePkg, error) {
	if fp := ld.checked[pkgname]; fp != nil {
		return fp, nil
	}
	pkgdir := filepath.Join(ld.dir, "src", pkgname)
	entries, err := os.ReadDir(pkgdir)
	if err != nil {
		return nil, fmt.Errorf("analysistest: %v", err)
	}
	fp := &fixturePkg{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(pkgdir, e.Name())
		f, err := parser.ParseFile(ld.fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysistest: %v", err)
		}
		fp.files = append(fp.files, f)
		exp, err := parseExpectations(ld.fset, f)
		if err != nil {
			return nil, err
		}
		fp.expects = append(fp.expects, exp...)
	}
	if len(fp.files) == 0 {
		return nil, fmt.Errorf("analysistest: no Go files in %s", pkgdir)
	}
	fp.info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: ld}
	pkg, err := conf.Check(pkgname, ld.fset, fp.files, fp.info)
	if err != nil {
		return nil, fmt.Errorf("analysistest: type-checking fixture %s: %v", pkgname, err)
	}
	fp.pkg = pkg
	ld.checked[pkgname] = fp
	return fp, nil
}

// Run loads each dir/src/<pkg> in order, applies the analyzer to all of
// them with facts flowing from earlier packages to later ones, and
// reports mismatches between produced diagnostics and // want
// expectations through t. List packages in dependency order: a fixture
// that imports a sibling must come after it.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	fset := token.NewFileSet()
	ld := &fixtureLoader{
		dir:     dir,
		fset:    fset,
		checked: make(map[string]*fixturePkg),
		std:     importer.ForCompiler(fset, "source", nil),
	}

	deps := analysis.NewFactSet()
	var diags []analysis.Diagnostic
	var expects []*expectation
	for _, pkgname := range pkgs {
		fp, err := ld.load(pkgname)
		if err != nil {
			t.Fatal(err)
		}
		expects = append(expects, fp.expects...)
		ds, exported, err := analysis.RunWithFacts([]*analysis.Analyzer{a}, ld.fset, fp.files, fp.pkg, fp.info, deps)
		if err != nil {
			t.Fatalf("analysistest: running %s on %s: %v", a.Name, pkgname, err)
		}
		diags = append(diags, ds...)
		// Round-trip the facts through their wire encoding so fixtures
		// exercise exactly what the unitchecker persists between packages.
		blob, err := exported.Encode()
		if err != nil {
			t.Fatalf("analysistest: encoding facts of %s: %v", pkgname, err)
		}
		decoded, err := analysis.DecodePackageFacts(pkgname, blob)
		if err != nil {
			t.Fatalf("analysistest: %v", err)
		}
		deps.Add(decoded)
	}

	for _, d := range diags {
		pos := ld.fset.Position(d.Pos)
		if !claim(expects, pos.Filename, pos.Line, d.Message) {
			t.Errorf("%s:%d: unexpected diagnostic: %s", filepath.Base(pos.Filename), pos.Line, d.Message)
		}
	}
	sort.Slice(expects, func(i, j int) bool {
		if expects[i].file != expects[j].file {
			return expects[i].file < expects[j].file
		}
		return expects[i].line < expects[j].line
	})
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", filepath.Base(e.file), e.line, e.raw)
		}
	}
}

// claim marks the first unmatched expectation satisfied by the diagnostic
// and reports whether one existed.
func claim(expects []*expectation, file string, line int, msg string) bool {
	for _, e := range expects {
		if e.matched || e.file != file || e.line != line {
			continue
		}
		if e.re.MatchString(msg) {
			e.matched = true
			return true
		}
	}
	return false
}

// parseExpectations collects the // want comments of one file.
func parseExpectations(fset *token.FileSet, f *ast.File) ([]*expectation, error) {
	var out []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, "want ") {
				continue
			}
			pos := fset.Position(c.Pos())
			matches := wantRe.FindAllStringSubmatch(text[len("want "):], -1)
			if len(matches) == 0 {
				return nil, fmt.Errorf("%s:%d: malformed want comment: %s", pos.Filename, pos.Line, c.Text)
			}
			for _, m := range matches {
				re, err := regexp.Compile(m[1])
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, m[1], err)
				}
				out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: m[1]})
			}
		}
	}
	return out, nil
}
