// Package analysis is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis driver contract, sized for this repo's
// commvet suite. The module builds offline (no network, no module cache),
// so the real x/tools framework is unavailable; this package mirrors its
// API shape — Analyzer, Pass, Diagnostic, Reportf — closely enough that
// migrating the analyzers onto x/tools later is a mechanical import swap
// (tracked in ROADMAP.md).
//
// Analyzers are pure functions over one type-checked package. They never
// need cross-package facts: every property commvet enforces (collective
// placement, tag discipline, determinism, float comparison) is decidable
// from a single package's syntax plus type information.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// "//commvet:ignore <name>" suppression comments.
	Name string
	// Doc is a one-paragraph description: first line is a summary.
	Doc string
	// Run applies the analyzer to one package and reports diagnostics
	// through pass.Report. The returned value is unused (kept for x/tools
	// signature compatibility).
	Run func(*Pass) (interface{}, error)
}

// Pass is the interface between the driver and one analyzer run over one
// package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Diagnostic is one reported problem.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string // filled by the driver
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Run applies each analyzer to the package and returns the surviving
// diagnostics sorted by position. Diagnostics suppressed by a
// "//commvet:ignore <name> <reason>" comment on the same line or the line
// immediately above are dropped (the explicit per-line escape hatch for
// false positives; see DESIGN.md).
func Run(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Diagnostic, error) {
	// The discipline commvet enforces governs production solver code;
	// tests deliberately exercise raw tags, rank-divergent calls, and
	// wall-clock edge cases, so _test.go files are type-checked with the
	// package but excluded from analysis.
	analyzed := make([]*ast.File, 0, len(files))
	for _, f := range files {
		if strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		analyzed = append(analyzed, f)
	}
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     analyzed,
			Pkg:       pkg,
			TypesInfo: info,
		}
		name := a.Name
		pass.Report = func(d Diagnostic) {
			d.Analyzer = name
			diags = append(diags, d)
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %v", a.Name, err)
		}
	}
	diags = filterIgnored(fset, files, diags)
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Pos != diags[j].Pos {
			return diags[i].Pos < diags[j].Pos
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// ignoreDirective is the comment prefix that suppresses a diagnostic.
const ignoreDirective = "//commvet:ignore"

// filterIgnored drops diagnostics whose line (or the line above) carries a
// matching ignore directive.
func filterIgnored(fset *token.FileSet, files []*ast.File, diags []Diagnostic) []Diagnostic {
	if len(diags) == 0 {
		return diags
	}
	// ignored maps filename -> line -> set of analyzer names ("" = all).
	ignored := make(map[string]map[int]map[string]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignoreDirective) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, ignoreDirective)
				fields := strings.Fields(rest)
				name := "" // bare directive suppresses every analyzer
				if len(fields) > 0 {
					name = fields[0]
				}
				pos := fset.Position(c.Pos())
				m := ignored[pos.Filename]
				if m == nil {
					m = make(map[int]map[string]bool)
					ignored[pos.Filename] = m
				}
				// The directive covers its own line and the next line, so
				// it works both trailing a statement and on its own line
				// above one.
				for _, line := range []int{pos.Line, pos.Line + 1} {
					if m[line] == nil {
						m[line] = make(map[string]bool)
					}
					m[line][name] = true
				}
			}
		}
	}
	if len(ignored) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		names := ignored[pos.Filename][pos.Line]
		if names[d.Analyzer] || names[""] {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}
