// Package analysis is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis driver contract, sized for this repo's
// commvet suite. The module builds offline (no network, no module cache),
// so the real x/tools framework is unavailable; this package mirrors its
// API shape — Analyzer, Pass, Diagnostic, Reportf, and (since v2)
// serializable object/package Facts — closely enough that migrating the
// analyzers onto x/tools later is a mechanical import swap (tracked in
// ROADMAP.md).
//
// Analyzers are functions over one type-checked package. Cross-package
// properties (a collective hidden behind a helper in another package, a
// cancellation check threaded through a callee) travel as Facts: exported
// while analyzing the defining package, imported by downstream packages
// in dependency order. See facts.go for the model and the wire format.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// "//commvet:ignore <name>" suppression comments.
	Name string
	// Doc is a one-paragraph description: first line is a summary.
	Doc string
	// Run applies the analyzer to one package and reports diagnostics
	// through pass.Report. The returned value is unused (kept for x/tools
	// signature compatibility).
	Run func(*Pass) (interface{}, error)
	// FactTypes lists the fact types (as typed nil pointers) this
	// analyzer exports or imports. An analyzer that uses Facts without
	// declaring them here errors loudly at the first Export/Import call.
	FactTypes []Fact
	// RunOnTests includes _test.go files in the analysis. Most commvet
	// analyzers leave it false: the SPMD discipline governs production
	// solver code, and tests deliberately poke raw tags, rank-divergent
	// calls, and wall clocks. Checks that are just as valid in test code
	// (float equality, hot-path allocation) opt in.
	RunOnTests bool
}

// Pass is the interface between the driver and one analyzer run over one
// package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)

	facts *passFacts
}

// Diagnostic is one reported problem.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string // filled by the driver
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ExportObjectFact attaches fact to obj, which must belong to the package
// being analyzed. Facts on objects reachable from other packages
// (package-level functions, methods on named types, vars, types) are
// serialized and visible to downstream ImportObjectFact calls; facts on
// keyless objects (locals) remain visible within this pass only.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	p.facts.exportObject(obj, fact)
}

// ImportObjectFact copies the fact of this analyzer attached to obj into
// *fact and reports whether one existed. obj may belong to this package
// (facts exported earlier in this pass) or to a dependency (facts carried
// by the driver).
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	return p.facts.importObject(obj, fact)
}

// ExportPackageFact attaches a package-level fact to the current package.
func (p *Pass) ExportPackageFact(fact Fact) {
	p.facts.exportPackage(fact)
}

// ImportPackageFact copies the package-level fact of the package with the
// given path into *fact and reports whether one existed.
func (p *Pass) ImportPackageFact(path string, fact Fact) bool {
	return p.facts.importPackage(path, fact)
}

// Run applies each analyzer to the package with no dependency facts and
// discards exported facts — the single-package entry point, sufficient
// for analyzers whose properties are decidable within one package.
func Run(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Diagnostic, error) {
	diags, _, err := RunWithFacts(analyzers, fset, files, pkg, info, nil)
	return diags, err
}

// RunWithFacts applies each analyzer to the package, resolving imported
// facts from deps (facts of the package's dependencies, keyed by package
// path; nil means none) and returning the facts this package exports
// alongside the surviving diagnostics. Diagnostics suppressed by a
// "//commvet:ignore <name> <reason>" comment on the same line or the line
// immediately above are dropped (the explicit per-line escape hatch for
// false positives; see DESIGN.md).
//
// Drivers must call RunWithFacts in dependency order — a package before
// its importers — and feed each result's facts into the next calls' deps;
// that is what makes interprocedural analyzers (collectivesync v2,
// cancelcheck) see through cross-package helpers.
func RunWithFacts(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, deps *FactSet) ([]Diagnostic, *PackageFacts, error) {
	// Split production from test sources once; each analyzer picks its
	// view via RunOnTests. Ignore directives are honored from all files
	// either way.
	prod := make([]*ast.File, 0, len(files))
	for _, f := range files {
		if strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		prod = append(prod, f)
	}
	out := &PackageFacts{Path: pkg.Path()}
	var diags []Diagnostic
	for _, a := range analyzers {
		view := prod
		if a.RunOnTests {
			view = files
		}
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     view,
			Pkg:       pkg,
			TypesInfo: info,
			facts:     &passFacts{analyzer: a, pkg: pkg, imported: deps, out: out},
		}
		name := a.Name
		pass.Report = func(d Diagnostic) {
			d.Analyzer = name
			diags = append(diags, d)
		}
		if _, err := a.Run(pass); err != nil {
			return nil, nil, fmt.Errorf("%s: %v", a.Name, err)
		}
		if err := pass.facts.err; err != nil {
			return nil, nil, err
		}
	}
	diags = filterIgnored(fset, files, diags)
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Pos != diags[j].Pos {
			return diags[i].Pos < diags[j].Pos
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, out, nil
}

// ignoreDirective is the comment prefix that suppresses a diagnostic.
const ignoreDirective = "//commvet:ignore"

// filterIgnored drops diagnostics whose line (or the line above) carries a
// matching ignore directive.
func filterIgnored(fset *token.FileSet, files []*ast.File, diags []Diagnostic) []Diagnostic {
	if len(diags) == 0 {
		return diags
	}
	// ignored maps filename -> line -> set of analyzer names ("" = all).
	ignored := make(map[string]map[int]map[string]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignoreDirective) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, ignoreDirective)
				fields := strings.Fields(rest)
				name := "" // bare directive suppresses every analyzer
				if len(fields) > 0 {
					name = fields[0]
				}
				pos := fset.Position(c.Pos())
				m := ignored[pos.Filename]
				if m == nil {
					m = make(map[int]map[string]bool)
					ignored[pos.Filename] = m
				}
				// The directive covers its own line and the next line, so
				// it works both trailing a statement and on its own line
				// above one.
				for _, line := range []int{pos.Line, pos.Line + 1} {
					if m[line] == nil {
						m[line] = make(map[string]bool)
					}
					m[line][name] = true
				}
			}
		}
	}
	if len(ignored) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		names := ignored[pos.Filename][pos.Line]
		if names[d.Analyzer] || names[""] {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}
