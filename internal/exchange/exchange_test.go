package exchange

import (
	"fmt"
	"sort"
	"testing"

	"github.com/plasma-hpc/dsmcpic/internal/geom"
	"github.com/plasma-hpc/dsmcpic/internal/particle"
	"github.com/plasma-hpc/dsmcpic/internal/simmpi"
)

// makeParticles builds k particles on rank `me` destined for round-robin
// ranks, with identifying payloads.
func makeParticles(me, k, n int) *particle.Store {
	st := particle.NewStore(k)
	for i := 0; i < k; i++ {
		st.Append(particle.Particle{
			Pos:  geom.V(float64(me), float64(i), 0),
			Vel:  geom.V(1, 2, 3),
			Sp:   particle.Species(i % 2),
			Cell: int32((me*k + i) % n), // destination = Cell % n below
			ID:   int64(me*1000000 + i),
		})
	}
	return st
}

// runExchange executes one collective exchange on n ranks and returns the
// resulting per-rank particle ID sets and stats.
func runExchange(t *testing.T, n, perRank int, s Strategy, perturb bool) ([][]int64, []Stats) {
	t.Helper()
	w := simmpi.NewWorld(n, simmpi.Options{PerturbDelivery: perturb, PerturbSeed: 7})
	ids := make([][]int64, n)
	stats := make([]Stats, n)
	err := w.Run(func(c *simmpi.Comm) {
		st := makeParticles(c.Rank(), perRank, n)
		destOf := func(i int) int { return int(st.Cell[i]) % n }
		got, err := Exchange(c, st, destOf, s)
		if err != nil {
			panic(err)
		}
		stats[c.Rank()] = got
		out := make([]int64, st.Len())
		copy(out, st.ID)
		sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
		ids[c.Rank()] = out
		// Every particle now local: destination must be this rank.
		for i := 0; i < st.Len(); i++ {
			if int(st.Cell[i])%n != c.Rank() {
				panic(fmt.Sprintf("rank %d holds foreign particle cell=%d", c.Rank(), st.Cell[i]))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return ids, stats
}

func TestStrategiesDeliverAndConserve(t *testing.T) {
	for _, s := range []Strategy{Centralized, Distributed} {
		for _, n := range []int{1, 2, 3, 5, 8} {
			const perRank = 40
			ids, stats := runExchange(t, n, perRank, s, false)
			total := 0
			seen := map[int64]bool{}
			for r := 0; r < n; r++ {
				total += len(ids[r])
				for _, id := range ids[r] {
					if seen[id] {
						t.Fatalf("%v n=%d: particle %d duplicated", s, n, id)
					}
					seen[id] = true
				}
			}
			if total != n*perRank {
				t.Fatalf("%v n=%d: %d particles after exchange, want %d", s, n, total, n*perRank)
			}
			// Conservation per stats: global sent == global received.
			var sent, recv int
			for _, st := range stats {
				sent += st.Sent
				recv += st.Received
			}
			if sent != recv {
				t.Fatalf("%v n=%d: sent %d != received %d", s, n, sent, recv)
			}
		}
	}
}

func TestStrategiesProduceIdenticalPlacement(t *testing.T) {
	const n, perRank = 6, 50
	idsCC, _ := runExchange(t, n, perRank, Centralized, false)
	idsDC, _ := runExchange(t, n, perRank, Distributed, false)
	for r := 0; r < n; r++ {
		if len(idsCC[r]) != len(idsDC[r]) {
			t.Fatalf("rank %d: CC has %d, DC has %d", r, len(idsCC[r]), len(idsDC[r]))
		}
		for k := range idsCC[r] {
			if idsCC[r][k] != idsDC[r][k] {
				t.Fatalf("rank %d: particle sets differ", r)
			}
		}
	}
}

func TestExchangeUnderPerturbedDelivery(t *testing.T) {
	for _, s := range []Strategy{Centralized, Distributed} {
		ids, _ := runExchange(t, 5, 30, s, true)
		total := 0
		for _, l := range ids {
			total += len(l)
		}
		if total != 5*30 {
			t.Fatalf("%v: lost particles under perturbation: %d", s, total)
		}
	}
}

func TestExchangeNoMigration(t *testing.T) {
	// All particles already home: no sends at all.
	w := simmpi.NewWorld(4, simmpi.Options{})
	err := w.Run(func(c *simmpi.Comm) {
		st := particle.NewStore(10)
		for i := 0; i < 10; i++ {
			st.Append(particle.Particle{Cell: int32(c.Rank()), ID: int64(i)})
		}
		stats, err := Exchange(c, st, func(i int) int { return c.Rank() }, Distributed)
		if err != nil {
			panic(err)
		}
		if stats.Sent != 0 || stats.Received != 0 {
			panic(fmt.Sprintf("spurious migration: %+v", stats))
		}
		if st.Len() != 10 {
			panic("particles lost without migration")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExchangeInvalidDestination(t *testing.T) {
	w := simmpi.NewWorld(2, simmpi.Options{})
	errs := make([]error, 2)
	_ = w.Run(func(c *simmpi.Comm) {
		st := particle.NewStore(1)
		st.Append(particle.Particle{})
		_, errs[c.Rank()] = Exchange(c, st, func(i int) int { return 99 }, Centralized)
	})
	if errs[0] == nil || errs[1] == nil {
		t.Error("invalid destination not rejected")
	}
}

func TestTrafficShapeMatchesAnalysis(t *testing.T) {
	// Paper §IV-B3: centralized ~ 2N transactions and ~2M data volume;
	// distributed ~ N(N-1) transactions and ~M volume.
	const n, perRank = 6, 50
	wCC := simmpi.NewWorld(n, simmpi.Options{})
	err := wCC.Run(func(c *simmpi.Comm) {
		c.SetPhase("exc")
		st := makeParticles(c.Rank(), perRank, n)
		if _, err := Exchange(c, st, func(i int) int { return int(st.Cell[i]) % n }, Centralized); err != nil {
			panic(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	wDC := simmpi.NewWorld(n, simmpi.Options{})
	err = wDC.Run(func(c *simmpi.Comm) {
		c.SetPhase("exc")
		st := makeParticles(c.Rank(), perRank, n)
		if _, err := Exchange(c, st, func(i int) int { return int(st.Cell[i]) % n }, Distributed); err != nil {
			panic(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	ccTotal, _ := simmpi.AggregatePhase(wCC.Counters(), "exc")
	dcTotal, _ := simmpi.AggregatePhase(wDC.Counters(), "exc")
	// Transactions: CC ~ 2(N-1), DC = N(N-1).
	if ccTotal.Messages != int64(2*(n-1)) {
		t.Errorf("CC transactions = %d, want %d", ccTotal.Messages, 2*(n-1))
	}
	if dcTotal.Messages != int64(n*(n-1)) {
		t.Errorf("DC transactions = %d, want %d", dcTotal.Messages, n*(n-1))
	}
	// Data volume: CC carries every migrating particle twice (to root and
	// back), DC once — except root's own inbound/outbound particles, which
	// skip the network, so the observed ratio is a bit under 2x for small
	// N. Require clearly-more-than-DC (>= 1.5x) and at most 2.2x.
	ratio := float64(ccTotal.Bytes) / float64(dcTotal.Bytes)
	if ratio < 1.5 || ratio > 2.2 {
		t.Errorf("CC/DC byte ratio = %.2f (CC %d, DC %d), want ~2", ratio, ccTotal.Bytes, dcTotal.Bytes)
	}
}

func TestStrategyString(t *testing.T) {
	if Centralized.String() != "CC" || Distributed.String() != "DC" || Strategy(9).String() != "strategy(?)" {
		t.Error("Strategy.String wrong")
	}
}

func BenchmarkExchangeDistributed8(b *testing.B) {
	const n = 8
	w := simmpi.NewWorld(n, simmpi.Options{})
	err := w.Run(func(c *simmpi.Comm) {
		for i := 0; i < b.N; i++ {
			st := makeParticles(c.Rank(), 500, n)
			if _, err := Exchange(c, st, func(i int) int { return int(st.Cell[i]) % n }, Distributed); err != nil {
				panic(err)
			}
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkExchangeCentralized8(b *testing.B) {
	const n = 8
	w := simmpi.NewWorld(n, simmpi.Options{})
	err := w.Run(func(c *simmpi.Comm) {
		for i := 0; i < b.N; i++ {
			st := makeParticles(c.Rank(), 500, n)
			if _, err := Exchange(c, st, func(i int) int { return int(st.Cell[i]) % n }, Centralized); err != nil {
				panic(err)
			}
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}
