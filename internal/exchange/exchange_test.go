package exchange

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"github.com/plasma-hpc/dsmcpic/internal/geom"
	"github.com/plasma-hpc/dsmcpic/internal/particle"
	"github.com/plasma-hpc/dsmcpic/internal/simmpi"
)

// makeParticles builds k particles on rank `me` destined for round-robin
// ranks, with identifying payloads.
func makeParticles(me, k, n int) *particle.Store {
	st := particle.NewStore(k)
	for i := 0; i < k; i++ {
		st.Append(particle.Particle{
			Pos:  geom.V(float64(me), float64(i), 0),
			Vel:  geom.V(1, 2, 3),
			Sp:   particle.Species(i % 2),
			Cell: int32((me*k + i) % n), // destination = Cell % n below
			ID:   int64(me*1000000 + i),
		})
	}
	return st
}

// runExchange executes one collective exchange on n ranks and returns the
// resulting per-rank particle ID sets and stats.
func runExchange(t *testing.T, n, perRank int, s Strategy, perturb bool, seed uint64) ([][]int64, []Stats) {
	t.Helper()
	w := simmpi.NewWorld(n, simmpi.Options{PerturbDelivery: perturb, PerturbSeed: seed})
	ids := make([][]int64, n)
	stats := make([]Stats, n)
	err := w.Run(func(c *simmpi.Comm) {
		st := makeParticles(c.Rank(), perRank, n)
		destOf := func(i int) int { return int(st.Cell[i]) % n }
		got, err := Exchange(c, st, destOf, s)
		if err != nil {
			panic(err)
		}
		stats[c.Rank()] = got
		out := make([]int64, st.Len())
		copy(out, st.ID)
		sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
		ids[c.Rank()] = out
		// Every particle now local: destination must be this rank.
		for i := 0; i < st.Len(); i++ {
			if int(st.Cell[i])%n != c.Rank() {
				panic(fmt.Sprintf("rank %d holds foreign particle cell=%d", c.Rank(), st.Cell[i]))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return ids, stats
}

func TestStrategiesDeliverAndConserve(t *testing.T) {
	for _, s := range []Strategy{Centralized, Distributed} {
		for _, n := range []int{1, 2, 3, 5, 8} {
			const perRank = 40
			ids, stats := runExchange(t, n, perRank, s, false, 0)
			total := 0
			seen := map[int64]bool{}
			for r := 0; r < n; r++ {
				total += len(ids[r])
				for _, id := range ids[r] {
					if seen[id] {
						t.Fatalf("%v n=%d: particle %d duplicated", s, n, id)
					}
					seen[id] = true
				}
			}
			if total != n*perRank {
				t.Fatalf("%v n=%d: %d particles after exchange, want %d", s, n, total, n*perRank)
			}
			// Conservation per stats: global sent == global received.
			var sent, recv int
			for _, st := range stats {
				sent += st.Sent
				recv += st.Received
			}
			if sent != recv {
				t.Fatalf("%v n=%d: sent %d != received %d", s, n, sent, recv)
			}
		}
	}
}

func TestStrategiesProduceIdenticalPlacement(t *testing.T) {
	const n, perRank = 6, 50
	idsCC, _ := runExchange(t, n, perRank, Centralized, false, 0)
	idsDC, _ := runExchange(t, n, perRank, Distributed, false, 0)
	for r := 0; r < n; r++ {
		if len(idsCC[r]) != len(idsDC[r]) {
			t.Fatalf("rank %d: CC has %d, DC has %d", r, len(idsCC[r]), len(idsDC[r]))
		}
		for k := range idsCC[r] {
			if idsCC[r][k] != idsDC[r][k] {
				t.Fatalf("rank %d: particle sets differ", r)
			}
		}
	}
}

// TestPerturbDeliveryMatrix sweeps strategy × seed × world size under
// perturbed delivery, asserting particle conservation and physics
// identical to the unperturbed runs: message reordering must never change
// where particles land, only when their bytes arrive.
func TestPerturbDeliveryMatrix(t *testing.T) {
	const perRank = 30
	for _, s := range []Strategy{Centralized, Distributed} {
		for _, n := range []int{2, 3, 5, 8} {
			baseline, _ := runExchange(t, n, perRank, s, false, 0)
			for _, seed := range []uint64{1, 7, 99} {
				ids, stats := runExchange(t, n, perRank, s, true, seed)
				// Conservation: every particle accounted for exactly once.
				total := 0
				seen := map[int64]bool{}
				for r := 0; r < n; r++ {
					total += len(ids[r])
					for _, id := range ids[r] {
						if seen[id] {
							t.Fatalf("%v n=%d seed=%d: particle %d duplicated", s, n, seed, id)
						}
						seen[id] = true
					}
				}
				if total != n*perRank {
					t.Fatalf("%v n=%d seed=%d: %d particles after exchange, want %d",
						s, n, seed, total, n*perRank)
				}
				var sent, recv int
				for _, st := range stats {
					sent += st.Sent
					recv += st.Received
				}
				if sent != recv {
					t.Fatalf("%v n=%d seed=%d: sent %d != received %d", s, n, seed, sent, recv)
				}
				// Identical physics: per-rank ID sets match the unperturbed run.
				for r := 0; r < n; r++ {
					if len(ids[r]) != len(baseline[r]) {
						t.Fatalf("%v n=%d seed=%d rank %d: %d particles vs %d unperturbed",
							s, n, seed, r, len(ids[r]), len(baseline[r]))
					}
					for k := range ids[r] {
						if ids[r][k] != baseline[r][k] {
							t.Fatalf("%v n=%d seed=%d rank %d: particle set differs from unperturbed run",
								s, n, seed, r)
						}
					}
				}
			}
		}
	}
}

func TestExchangeNoMigration(t *testing.T) {
	// All particles already home: no sends at all.
	w := simmpi.NewWorld(4, simmpi.Options{})
	err := w.Run(func(c *simmpi.Comm) {
		st := particle.NewStore(10)
		for i := 0; i < 10; i++ {
			st.Append(particle.Particle{Cell: int32(c.Rank()), ID: int64(i)})
		}
		stats, err := Exchange(c, st, func(i int) int { return c.Rank() }, Distributed)
		if err != nil {
			panic(err)
		}
		if stats.Sent != 0 || stats.Received != 0 {
			panic(fmt.Sprintf("spurious migration: %+v", stats))
		}
		if st.Len() != 10 {
			panic("particles lost without migration")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExchangeInvalidDestination(t *testing.T) {
	w := simmpi.NewWorld(2, simmpi.Options{})
	errs := make([]error, 2)
	_ = w.Run(func(c *simmpi.Comm) {
		st := particle.NewStore(1)
		st.Append(particle.Particle{})
		_, errs[c.Rank()] = Exchange(c, st, func(i int) int { return 99 }, Centralized)
	})
	if errs[0] == nil || errs[1] == nil {
		t.Error("invalid destination not rejected")
	}
}

// TestCorruptRecordDoesNotDeadlock: a particle with an undefined species
// byte rides the exchange to rank 1. The decode failure must surface as an
// error on the receiving rank while every other rank completes cleanly —
// no rank may abandon the protocol with sends still pending in a mailbox
// (that shows up as a DeadlockError under a short world deadline, with the
// stranded message in its Pending diagnostics). A second, clean exchange
// on the same comm then proves no stale payload was left to cross-match.
func TestCorruptRecordDoesNotDeadlock(t *testing.T) {
	const n = 4
	for _, s := range []Strategy{Centralized, Distributed} {
		w := simmpi.NewWorld(n, simmpi.Options{Deadline: 2 * time.Second})
		errs := make([]error, n)
		err := w.Run(func(c *simmpi.Comm) {
			me := c.Rank()
			st := makeParticles(me, 8, n)
			if me == 0 {
				// Undefined species: valid to Encode, rejected by the
				// receiver's DecodeAppend. Routed to rank 1 via Cell.
				st.Append(particle.Particle{Sp: particle.Species(200), Cell: 1, ID: 42})
			}
			destOf := func(i int) int { return int(st.Cell[i]) % n }
			_, errs[me] = Exchange(c, st, destOf, s)

			// Protocol must still be usable: a clean collective exchange on
			// the same comm, which would cross-match any stranded payload.
			st2 := makeParticles(me, 8, n)
			if _, err := Exchange(c, st2, func(i int) int { return int(st2.Cell[i]) % n }, s); err != nil {
				panic(fmt.Sprintf("%v rank %d: follow-up exchange failed: %v", s, me, err))
			}
		})
		if err != nil {
			t.Fatalf("%v: world did not complete (stranded sends?): %v", s, err)
		}
		for r := 0; r < n; r++ {
			if r == 1 {
				if errs[r] == nil || !strings.Contains(errs[r].Error(), "rank 0") ||
					!strings.Contains(errs[r].Error(), "record") {
					t.Errorf("%v rank 1: error = %v, want decode error naming rank 0 and the record", s, errs[r])
				}
			} else if errs[r] != nil {
				t.Errorf("%v rank %d: unexpected error: %v", s, r, errs[r])
			}
		}
	}
}

func TestTrafficShapeMatchesAnalysis(t *testing.T) {
	// Paper §IV-B3: centralized ~ 2N transactions and ~2M data volume;
	// distributed ~ N(N-1) transactions and ~M volume.
	const n, perRank = 6, 50
	wCC := simmpi.NewWorld(n, simmpi.Options{})
	err := wCC.Run(func(c *simmpi.Comm) {
		c.SetPhase("exc")
		st := makeParticles(c.Rank(), perRank, n)
		if _, err := Exchange(c, st, func(i int) int { return int(st.Cell[i]) % n }, Centralized); err != nil {
			panic(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	wDC := simmpi.NewWorld(n, simmpi.Options{})
	err = wDC.Run(func(c *simmpi.Comm) {
		c.SetPhase("exc")
		st := makeParticles(c.Rank(), perRank, n)
		if _, err := Exchange(c, st, func(i int) int { return int(st.Cell[i]) % n }, Distributed); err != nil {
			panic(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	ccTotal, _ := simmpi.AggregatePhase(wCC.Counters(), "exc")
	dcTotal, _ := simmpi.AggregatePhase(wDC.Counters(), "exc")
	// Transactions: CC ~ 2(N-1), DC = N(N-1).
	if ccTotal.Messages != int64(2*(n-1)) {
		t.Errorf("CC transactions = %d, want %d", ccTotal.Messages, 2*(n-1))
	}
	if dcTotal.Messages != int64(n*(n-1)) {
		t.Errorf("DC transactions = %d, want %d", dcTotal.Messages, n*(n-1))
	}
	// Data volume: CC carries every migrating particle twice (to root and
	// back), DC once — except root's own inbound/outbound particles, which
	// skip the network, so the observed ratio is a bit under 2x for small
	// N. Require clearly-more-than-DC (>= 1.5x) and at most 2.2x.
	ratio := float64(ccTotal.Bytes) / float64(dcTotal.Bytes)
	if ratio < 1.5 || ratio > 2.2 {
		t.Errorf("CC/DC byte ratio = %.2f (CC %d, DC %d), want ~2", ratio, ccTotal.Bytes, dcTotal.Bytes)
	}
}

func TestStrategyString(t *testing.T) {
	if Centralized.String() != "CC" || Distributed.String() != "DC" || Strategy(9).String() != "strategy(?)" {
		t.Error("Strategy.String wrong")
	}
}

func BenchmarkExchangeDistributed8(b *testing.B) {
	const n = 8
	w := simmpi.NewWorld(n, simmpi.Options{})
	err := w.Run(func(c *simmpi.Comm) {
		for i := 0; i < b.N; i++ {
			st := makeParticles(c.Rank(), 500, n)
			if _, err := Exchange(c, st, func(i int) int { return int(st.Cell[i]) % n }, Distributed); err != nil {
				panic(err)
			}
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkExchangeCentralized8(b *testing.B) {
	const n = 8
	w := simmpi.NewWorld(n, simmpi.Options{})
	err := w.Run(func(c *simmpi.Comm) {
		for i := 0; i < b.N; i++ {
			st := makeParticles(c.Rank(), 500, n)
			if _, err := Exchange(c, st, func(i int) int { return int(st.Cell[i]) % n }, Centralized); err != nil {
				panic(err)
			}
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}
