// Package exchange implements the two parallel communication strategies of
// the paper (§IV-B) for migrating particles among arbitrary ranks after a
// movement sweep:
//
//   - Centralized: a designated root gathers every migrating particle,
//     classifies by destination, and scatters packed batches — 2N
//     transactions, ~2M particle transfers.
//   - Distributed: every pair exchanges directly in two synchronized
//     rounds ordered by rank to avoid deadlock (the paper's ordering
//     trick) — ~N(N-1) transactions, ~M particle transfers.
//
// Neither strategy assumes neighbor-only migration: a particle may hop to
// any rank, which is why the ghost-cell method of traditional CFD does not
// apply (paper §IV-B).
package exchange

import (
	"encoding/binary"
	"fmt"

	"github.com/plasma-hpc/dsmcpic/internal/particle"
	"github.com/plasma-hpc/dsmcpic/internal/simmpi"
)

// Strategy selects the communication scheme.
type Strategy int

const (
	// Centralized routes all migrations through rank 0 (gather, classify,
	// scatter — paper Fig. 3).
	Centralized Strategy = iota
	// Distributed exchanges directly between every pair in two ordered
	// rounds (paper Fig. 4).
	Distributed
)

func (s Strategy) String() string {
	switch s {
	case Centralized:
		return "CC"
	case Distributed:
		return "DC"
	default:
		return "strategy(?)"
	}
}

// Stats summarizes one exchange.
type Stats struct {
	Sent     int // particles shipped to other ranks
	Received int // particles received from other ranks
}

// root is the centralized strategy's coordinator rank.
const root = 0

// Exchange migrates particles whose destination (destOf per particle index)
// differs from this rank. Outgoing particles are removed from st; incoming
// ones are appended. All ranks must call Exchange collectively with the
// same strategy. destOf must return a valid rank for every particle.
func Exchange(comm *simmpi.Comm, st *particle.Store, destOf func(i int) int, strategy Strategy) (Stats, error) {
	n := comm.Size()
	me := comm.Rank()

	// Classify and pack outgoing particles per destination.
	outIdx := make([][]int, n)
	dest := make([]int, st.Len())
	for i := 0; i < st.Len(); i++ {
		d := destOf(i)
		if d < 0 || d >= n {
			return Stats{}, fmt.Errorf("exchange: particle %d routed to invalid rank %d", i, d)
		}
		dest[i] = d
		if d != me {
			outIdx[d] = append(outIdx[d], i)
		}
	}
	var stats Stats
	payloads := make([][]byte, n)
	for d, idx := range outIdx {
		if len(idx) > 0 {
			payloads[d] = st.Encode(idx)
			stats.Sent += len(idx)
		}
	}
	if stats.Sent > 0 {
		st.Filter(func(i int) bool { return dest[i] == me })
	}

	var err error
	switch strategy {
	case Centralized:
		stats.Received, err = centralized(comm, st, payloads)
	case Distributed:
		stats.Received, err = distributed(comm, st, payloads)
	default:
		err = fmt.Errorf("exchange: unknown strategy %d", strategy)
	}
	return stats, err
}

// centralized implements gather -> classify -> scatter through root.
//
// Error discipline: the exchange is collective, so a decode failure on one
// rank must not abandon the protocol mid-flight — peers would block in
// their matching Recv (or strand sends in the mailbox) and the step would
// die as a deadlock far from the corruption. A root classify failure
// therefore still scatters (empty payloads) so every peer completes, and
// the error is reported on root only.
func centralized(comm *simmpi.Comm, st *particle.Store, payloads [][]byte) (int, error) {
	n := comm.Size()
	// Gather stage: every rank ships all its outgoing particles (for all
	// destinations) to root as [dest:int32][len:int32][bytes]... sections.
	blob := packSections(payloads)
	gathered := comm.Gatherv(root, blob)

	// Classify stage (root only): regroup by destination.
	var outbound [][]byte
	var classifyErr error
	if comm.Rank() == root {
		perDest := make([][]byte, n)
		for src, g := range gathered {
			if err := unpackSections(g, func(dst int, data []byte) error {
				if dst < 0 || dst >= n {
					return fmt.Errorf("exchange: gathered section for invalid rank %d", dst)
				}
				perDest[dst] = append(perDest[dst], data...)
				return nil
			}); err != nil && classifyErr == nil {
				classifyErr = fmt.Errorf("exchange: classifying rank %d's gathered payload: %w", src, err)
			}
		}
		if classifyErr != nil {
			// Drop the (possibly half-classified) batches: peers get empty
			// payloads and complete cleanly; root reports the failure.
			perDest = make([][]byte, n)
		}
		outbound = perDest
	}

	// Scatter stage: packed batches go to their destinations.
	mine := comm.Scatterv(root, outbound)
	if classifyErr != nil {
		return 0, classifyErr
	}
	k, err := st.DecodeAppend(mine)
	if err != nil {
		err = fmt.Errorf("exchange: from rank %d (scatter root): %w", root, err)
	}
	return k, err
}

// distributed implements the paper's two-round ordered pairwise exchange.
// Round 1 moves the (low -> high) pairs: each rank first receives from all
// lower ranks (ascending), then sends to all higher ranks (ascending).
// Round 2 moves (high -> low): receive from higher ranks (descending), then
// send to lower ranks (descending). The paper's deadlock-avoidance ordering
// — send small-rank destinations first, receive large-rank sources first —
// is realized by this schedule.
// Error discipline: a corrupt payload from one source must not abort the
// schedule — every rank still performs all of its receives and sends, so
// peers never block on a missing message and no payload is stranded in a
// mailbox (which would cross-match the next exchange on the same comm).
// The first decode failure is reported after the protocol completes,
// wrapped with the offending source rank.
func distributed(comm *simmpi.Comm, st *particle.Store, payloads [][]byte) (int, error) {
	n := comm.Size()
	me := comm.Rank()
	received := 0
	var firstErr error
	absorb := func(src int) {
		k, err := st.DecodeAppend(comm.Recv(src, simmpi.TagExchangeMigrate))
		received += k
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("exchange: from rank %d: %w", src, err)
		}
	}
	// Round 1: low -> high.
	for src := 0; src < me; src++ {
		absorb(src)
	}
	for dst := me + 1; dst < n; dst++ {
		comm.Send(dst, simmpi.TagExchangeMigrate, payloads[dst])
	}
	// Round 2: high -> low.
	for src := n - 1; src > me; src-- {
		absorb(src)
	}
	for dst := me - 1; dst >= 0; dst-- {
		comm.Send(dst, simmpi.TagExchangeMigrate, payloads[dst])
	}
	return received, firstErr
}

// packSections serializes non-empty per-destination payloads as
// [dest:int32][len:int32][bytes] sections.
func packSections(payloads [][]byte) []byte {
	size := 0
	for _, p := range payloads {
		if len(p) > 0 {
			size += 8 + len(p)
		}
	}
	out := make([]byte, 0, size)
	var hdr [8]byte
	for d, p := range payloads {
		if len(p) == 0 {
			continue
		}
		binary.LittleEndian.PutUint32(hdr[0:], uint32(d))
		binary.LittleEndian.PutUint32(hdr[4:], uint32(len(p)))
		out = append(out, hdr[:]...)
		out = append(out, p...)
	}
	return out
}

// unpackSections walks the sections of a packed blob.
func unpackSections(blob []byte, fn func(dst int, data []byte) error) error {
	off := 0
	for off < len(blob) {
		if off+8 > len(blob) {
			return fmt.Errorf("exchange: truncated section header")
		}
		dst := int(binary.LittleEndian.Uint32(blob[off:]))
		l := int(binary.LittleEndian.Uint32(blob[off+4:]))
		off += 8
		if off+l > len(blob) {
			return fmt.Errorf("exchange: truncated section body")
		}
		if err := fn(dst, blob[off:off+l]); err != nil {
			return err
		}
		off += l
	}
	return nil
}
