// Package partition implements a multilevel graph partitioner with the same
// contract as METIS's METIS_PartGraphKway, which the paper uses for the
// initial grid decomposition and for every re-decomposition issued by the
// dynamic load balancer: split the vertices of an undirected graph into k
// parts with (weighted) balanced part sizes and a small edge cut.
//
// The algorithm is recursive multilevel bisection: heavy-edge-matching
// coarsening, greedy region-growing initial bisection, and
// Fiduccia–Mattheyses boundary refinement, projected back through the
// levels. It is deterministic for a given seed.
package partition

import (
	"fmt"

	"github.com/plasma-hpc/dsmcpic/internal/rng"
)

// Graph is an undirected graph in CSR (compressed sparse row) adjacency
// form, the format produced by mesh.DualGraph and accepted by METIS. VWgt
// and EWgt may be nil for unit weights. Adjacency must be symmetric and
// self-loop free.
type Graph struct {
	Xadj   []int32 // length n+1
	Adjncy []int32 // length Xadj[n]
	VWgt   []int64 // vertex weights, length n (nil = all 1)
	EWgt   []int64 // edge weights, aligned with Adjncy (nil = all 1)
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return len(g.Xadj) - 1 }

func (g *Graph) vwgt(v int32) int64 {
	if g.VWgt == nil {
		return 1
	}
	return g.VWgt[v]
}

func (g *Graph) ewgt(e int32) int64 {
	if g.EWgt == nil {
		return 1
	}
	return g.EWgt[e]
}

// TotalVWgt returns the sum of all vertex weights.
func (g *Graph) TotalVWgt() int64 {
	if g.VWgt == nil {
		return int64(g.NumVertices())
	}
	var s int64
	for _, w := range g.VWgt {
		s += w
	}
	return s
}

// Validate checks CSR structural invariants: monotone Xadj, in-range
// adjacency, no self loops, symmetric edges. Intended for tests and input
// validation, not hot paths.
func (g *Graph) Validate() error {
	n := g.NumVertices()
	if n < 0 {
		return fmt.Errorf("partition: missing Xadj")
	}
	if g.VWgt != nil && len(g.VWgt) != n {
		return fmt.Errorf("partition: VWgt length %d != n %d", len(g.VWgt), n)
	}
	if g.EWgt != nil && len(g.EWgt) != len(g.Adjncy) {
		return fmt.Errorf("partition: EWgt length %d != edges %d", len(g.EWgt), len(g.Adjncy))
	}
	for v := 0; v < n; v++ {
		if g.Xadj[v] > g.Xadj[v+1] {
			return fmt.Errorf("partition: Xadj not monotone at %d", v)
		}
	}
	if int(g.Xadj[n]) != len(g.Adjncy) {
		return fmt.Errorf("partition: Xadj[n]=%d != len(Adjncy)=%d", g.Xadj[n], len(g.Adjncy))
	}
	type edge struct{ u, v int32 }
	seen := make(map[edge]int64, len(g.Adjncy))
	for v := int32(0); int(v) < n; v++ {
		for e := g.Xadj[v]; e < g.Xadj[v+1]; e++ {
			u := g.Adjncy[e]
			if u < 0 || int(u) >= n {
				return fmt.Errorf("partition: adjacency out of range: %d", u)
			}
			if u == v {
				return fmt.Errorf("partition: self loop at %d", v)
			}
			seen[edge{v, u}] += g.ewgt(e)
		}
	}
	for k, w := range seen {
		if seen[edge{k.v, k.u}] != w {
			return fmt.Errorf("partition: asymmetric edge %d-%d", k.u, k.v)
		}
	}
	return nil
}

// EdgeCut returns the total weight of edges crossing between different parts
// (each undirected edge counted once).
func EdgeCut(g *Graph, parts []int32) int64 {
	var cut int64
	for v := int32(0); int(v) < g.NumVertices(); v++ {
		for e := g.Xadj[v]; e < g.Xadj[v+1]; e++ {
			u := g.Adjncy[e]
			if u > v && parts[u] != parts[v] {
				cut += g.ewgt(e)
			}
		}
	}
	return cut
}

// BoundarySizes returns, for each of the k parts, how many of its
// vertices have at least one neighbour in a different part. This is the
// quantity owner-local field exchanges are proportional to — each
// boundary vertex of part p is a ghost of some neighbouring part, so the
// per-rank once-per-solve Poisson traffic and ghost-layer memory of
// pic.ExchangeOwnerLocal scale with these counts, not with the mesh size
// (commcost.PoissonOncePerSolveBytesOwnerLocal consumes their total).
func BoundarySizes(g *Graph, parts []int32, k int) []int64 {
	out := make([]int64, k)
	for v := int32(0); int(v) < g.NumVertices(); v++ {
		for e := g.Xadj[v]; e < g.Xadj[v+1]; e++ {
			if parts[g.Adjncy[e]] != parts[v] {
				out[parts[v]]++
				break
			}
		}
	}
	return out
}

// PartWeights returns the total vertex weight of each of the k parts.
func PartWeights(g *Graph, parts []int32, k int) []int64 {
	w := make([]int64, k)
	for v := int32(0); int(v) < g.NumVertices(); v++ {
		w[parts[v]] += g.vwgt(v)
	}
	return w
}

// Imbalance returns max part weight divided by the ideal (total/k); 1.0 is
// perfect balance.
func Imbalance(g *Graph, parts []int32, k int) float64 {
	w := PartWeights(g, parts, k)
	var maxW int64
	for _, x := range w {
		if x > maxW {
			maxW = x
		}
	}
	ideal := float64(g.TotalVWgt()) / float64(k)
	if ideal == 0 {
		return 1
	}
	return float64(maxW) / ideal
}

// Options tunes the partitioner. The zero value selects sensible defaults.
type Options struct {
	// Seed makes runs reproducible; the default 0 is a valid seed.
	Seed uint64
	// CoarsenTo stops coarsening when a level has at most this many
	// vertices (default 64).
	CoarsenTo int
	// RefinePasses caps FM passes per level (default 6).
	RefinePasses int
	// Tolerance is the allowed relative deviation from perfect balance per
	// bisection (default 0.05).
	Tolerance float64
}

func (o Options) withDefaults() Options {
	if o.CoarsenTo <= 0 {
		o.CoarsenTo = 64
	}
	if o.RefinePasses <= 0 {
		o.RefinePasses = 6
	}
	if o.Tolerance <= 0 {
		o.Tolerance = 0.05
	}
	return o
}

// PartGraphKway partitions g into k parts, returning a part id in [0, k)
// for every vertex. It mirrors METIS_PartGraphKway: vertex weights steer
// balance, edge weights steer the cut.
func PartGraphKway(g *Graph, k int, opts Options) ([]int32, error) {
	n := g.NumVertices()
	if k < 1 {
		return nil, fmt.Errorf("partition: k must be >= 1, got %d", k)
	}
	parts := make([]int32, n)
	if k == 1 || n == 0 {
		return parts, nil
	}
	o := opts.withDefaults()
	// Tolerance is the end-to-end balance target; bisection imbalance
	// compounds multiplicatively across ~log2(k) levels, so tighten the
	// per-bisection window accordingly.
	levels := 0
	for kk := 1; kk < k; kk *= 2 {
		levels++
	}
	if levels > 1 {
		o.Tolerance /= float64(levels)
	}
	r := rng.New(o.Seed, 0x9a77)
	verts := make([]int32, n)
	for i := range verts {
		verts[i] = int32(i)
	}
	recurseBisect(g, verts, 0, k, parts, o, r)
	return parts, nil
}

// recurseBisect assigns part ids [base, base+k) to the given vertex subset.
func recurseBisect(g *Graph, verts []int32, base int32, k int, parts []int32, o Options, r *rng.Rand) {
	if k == 1 {
		for _, v := range verts {
			parts[v] = base
		}
		return
	}
	if len(verts) <= k {
		// Not enough vertices for every part: give each vertex its own
		// part id (the remaining parts stay empty — unavoidable).
		for i, v := range verts {
			parts[v] = base + int32(i)
		}
		return
	}
	kLeft := k / 2
	kRight := k - kLeft
	frac := float64(kLeft) / float64(k)
	sub := extractSubgraph(g, verts)
	side := bisect(sub, frac, o, r)
	// Guarantee each half has enough vertices for its part count.
	count0 := 0
	for _, s := range side {
		if s == 0 {
			count0++
		}
	}
	for i := 0; count0 < kLeft && i < len(side); i++ {
		if side[i] == 1 {
			side[i] = 0
			count0++
		}
	}
	for i := 0; len(side)-count0 < kRight && i < len(side); i++ {
		if side[i] == 0 {
			side[i] = 1
			count0--
		}
	}
	var left, right []int32
	for i, v := range verts {
		if side[i] == 0 {
			left = append(left, v)
		} else {
			right = append(right, v)
		}
	}
	recurseBisect(g, left, base, kLeft, parts, o, r)
	recurseBisect(g, right, base+int32(kLeft), kRight, parts, o, r)
}

// extractSubgraph builds the induced subgraph on the given vertices, with
// local ids 0..len(verts)-1 in the given order.
func extractSubgraph(g *Graph, verts []int32) *Graph {
	local := make(map[int32]int32, len(verts))
	for i, v := range verts {
		local[v] = int32(i)
	}
	sub := &Graph{
		Xadj: make([]int32, len(verts)+1),
		VWgt: make([]int64, len(verts)),
	}
	var adj []int32
	var ew []int64
	for i, v := range verts {
		sub.VWgt[i] = g.vwgt(v)
		for e := g.Xadj[v]; e < g.Xadj[v+1]; e++ {
			if lu, ok := local[g.Adjncy[e]]; ok {
				adj = append(adj, lu)
				ew = append(ew, g.ewgt(e))
			}
		}
		sub.Xadj[i+1] = int32(len(adj))
	}
	sub.Adjncy = adj
	sub.EWgt = ew
	return sub
}
