package partition

import "github.com/plasma-hpc/dsmcpic/internal/rng"

// bisect splits g into side 0 (target weight frac*total) and side 1 using
// the multilevel scheme. Returns a 0/1 side per vertex.
func bisect(g *Graph, frac float64, o Options, r *rng.Rand) []int8 {
	n := g.NumVertices()
	if n == 0 {
		return nil
	}
	if n <= o.CoarsenTo {
		side := growBisection(g, frac, r)
		refineFM(g, side, frac, o)
		return side
	}
	coarse, cmap := coarsen(g, r)
	// If matching failed to shrink the graph meaningfully, stop recursing.
	if coarse.NumVertices() > n*9/10 {
		side := growBisection(g, frac, r)
		refineFM(g, side, frac, o)
		return side
	}
	coarseSide := bisect(coarse, frac, o, r)
	// Project to the fine level and refine.
	side := make([]int8, n)
	for v := 0; v < n; v++ {
		side[v] = coarseSide[cmap[v]]
	}
	refineFM(g, side, frac, o)
	return side
}

// coarsen contracts a heavy-edge matching of g, returning the coarse graph
// and the fine->coarse vertex map. Matched pairs merge vertex weights and
// accumulate parallel edge weights.
func coarsen(g *Graph, r *rng.Rand) (*Graph, []int32) {
	n := g.NumVertices()
	match := make([]int32, n)
	for i := range match {
		match[i] = -1
	}
	// Visit vertices in random order; match each unmatched vertex with its
	// heaviest-edge unmatched neighbor.
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		order[i], order[j] = order[j], order[i]
	}
	cmap := make([]int32, n)
	nc := int32(0)
	for _, v := range order {
		if match[v] >= 0 {
			continue
		}
		best := int32(-1)
		var bestW int64 = -1
		for e := g.Xadj[v]; e < g.Xadj[v+1]; e++ {
			u := g.Adjncy[e]
			if match[u] < 0 && u != v && g.ewgt(e) > bestW {
				bestW = g.ewgt(e)
				best = u
			}
		}
		if best >= 0 {
			match[v] = best
			match[best] = v
			cmap[v] = nc
			cmap[best] = nc
		} else {
			match[v] = v
			cmap[v] = nc
		}
		nc++
	}
	// Build the coarse graph.
	coarse := &Graph{
		Xadj: make([]int32, nc+1),
		VWgt: make([]int64, nc),
	}
	for v := int32(0); int(v) < n; v++ {
		coarse.VWgt[cmap[v]] += g.vwgt(v)
	}
	// Accumulate coarse adjacency with a per-vertex scratch map.
	var adj []int32
	var ew []int64
	acc := make(map[int32]int64)
	members := make([][]int32, nc)
	for v := int32(0); int(v) < n; v++ {
		members[cmap[v]] = append(members[cmap[v]], v)
	}
	for cv := int32(0); cv < nc; cv++ {
		clear(acc)
		for _, v := range members[cv] {
			for e := g.Xadj[v]; e < g.Xadj[v+1]; e++ {
				cu := cmap[g.Adjncy[e]]
				if cu != cv {
					acc[cu] += g.ewgt(e)
				}
			}
		}
		// Deterministic order: ascending coarse neighbor id.
		start := len(adj)
		for cu := range acc {
			adj = append(adj, cu)
		}
		sortInt32(adj[start:])
		for _, cu := range adj[start:] {
			ew = append(ew, acc[cu])
		}
		coarse.Xadj[cv+1] = int32(len(adj))
	}
	coarse.Adjncy = adj
	coarse.EWgt = ew
	return coarse, cmap
}

func sortInt32(a []int32) {
	// Insertion sort: neighbor lists are short (mesh dual graphs have
	// degree <= 4 before coarsening, small after).
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j-1] > a[j]; j-- {
			a[j-1], a[j] = a[j], a[j-1]
		}
	}
}

// growBisection seeds side 0 with a random vertex and grows it by BFS,
// preferring high-gain frontier vertices, until side 0 reaches the target
// weight. Disconnected graphs are handled by reseeding.
func growBisection(g *Graph, frac float64, r *rng.Rand) []int8 {
	n := g.NumVertices()
	side := make([]int8, n)
	for i := range side {
		side[i] = 1
	}
	target := int64(frac * float64(g.TotalVWgt()))
	if target <= 0 {
		target = 1
	}
	var w0 int64
	inQueue := make([]bool, n)
	var queue []int32
	seed := int32(r.Intn(n))
	queue = append(queue, seed)
	inQueue[seed] = true
	for w0 < target {
		if len(queue) == 0 {
			// Disconnected: seed a new component.
			found := false
			for v := int32(0); int(v) < n; v++ {
				if side[v] == 1 && !inQueue[v] {
					queue = append(queue, v)
					inQueue[v] = true
					found = true
					break
				}
			}
			if !found {
				break
			}
		}
		v := queue[0]
		queue = queue[1:]
		if side[v] == 0 {
			continue
		}
		side[v] = 0
		w0 += g.vwgt(v)
		for e := g.Xadj[v]; e < g.Xadj[v+1]; e++ {
			u := g.Adjncy[e]
			if side[u] == 1 && !inQueue[u] {
				queue = append(queue, u)
				inQueue[u] = true
			}
		}
	}
	return side
}

// refineFM runs Fiduccia–Mattheyses-style passes: repeatedly move the
// boundary vertex with the best cut gain that keeps the bisection within
// the balance tolerance, with hill-climbing (sequences of negative-gain
// moves are rolled back unless they lead to a better state).
func refineFM(g *Graph, side []int8, frac float64, o Options) {
	n := g.NumVertices()
	total := g.TotalVWgt()
	target0 := int64(frac * float64(total))
	tol := int64(o.Tolerance * float64(total))
	if tol < 1 {
		tol = 1
	}
	var w0 int64
	for v := 0; v < n; v++ {
		if side[v] == 0 {
			w0 += g.vwgt(int32(v))
		}
	}
	// gain[v] = cut reduction if v switches sides.
	gain := make([]int64, n)
	computeGain := func(v int32) int64 {
		var same, other int64
		for e := g.Xadj[v]; e < g.Xadj[v+1]; e++ {
			if side[g.Adjncy[e]] == side[v] {
				same += g.ewgt(e)
			} else {
				other += g.ewgt(e)
			}
		}
		return other - same
	}
	locked := make([]bool, n)
	inCand := make([]bool, n)
	type move struct {
		v    int32
		gain int64
	}
	isBoundary := func(v int32) bool {
		for e := g.Xadj[v]; e < g.Xadj[v+1]; e++ {
			if side[g.Adjncy[e]] != side[v] {
				return true
			}
		}
		return false
	}
	// Forced-balance phase: if the bisection starts outside the tolerance
	// window (grow overshoot, projection drift), migrate best-gain boundary
	// vertices from the heavy side until within tolerance. Unlike the gain
	// passes below, these moves are unconditional.
	for iter := 0; iter < n; iter++ {
		dev := w0 - target0
		if dev >= -tol && dev <= tol {
			break
		}
		var fromSide int8
		if dev > 0 {
			fromSide = 0
		} else {
			fromSide = 1
		}
		best := int32(-1)
		var bestGain int64
		for v := int32(0); int(v) < n; v++ {
			if side[v] != fromSide {
				continue
			}
			gv := computeGain(v)
			if best < 0 || gv > bestGain {
				best = v
				bestGain = gv
			}
		}
		if best < 0 {
			break
		}
		if side[best] == 0 {
			side[best] = 1
			w0 -= g.vwgt(best)
		} else {
			side[best] = 0
			w0 += g.vwgt(best)
		}
	}
	for pass := 0; pass < o.RefinePasses; pass++ {
		// Candidates are boundary vertices; moving an interior vertex can
		// only worsen the cut, so restricting the scan loses nothing while
		// making each move O(boundary) instead of O(n).
		var cand []int32
		for v := int32(0); int(v) < n; v++ {
			locked[v] = false
			inCand[v] = false
			if isBoundary(v) {
				gain[v] = computeGain(v)
				cand = append(cand, v)
				inCand[v] = true
			}
		}
		var history []move
		var cum, bestCum int64
		bestIdx := -1
		// Bounded number of moves per pass.
		maxMoves := n
		if maxMoves > 4096 {
			maxMoves = 4096
		}
		for mv := 0; mv < maxMoves; mv++ {
			// Pick the best unlocked candidate whose move keeps balance.
			best := int32(-1)
			var bestGain int64
			for _, v := range cand {
				if locked[v] {
					continue
				}
				// Balance check if v switches.
				nw0 := w0
				if side[v] == 0 {
					nw0 -= g.vwgt(v)
				} else {
					nw0 += g.vwgt(v)
				}
				if nw0 < target0-tol || nw0 > target0+tol {
					continue
				}
				if best < 0 || gain[v] > bestGain {
					best = v
					bestGain = gain[v]
				}
			}
			if best < 0 {
				break
			}
			// Apply the move.
			if side[best] == 0 {
				side[best] = 1
				w0 -= g.vwgt(best)
			} else {
				side[best] = 0
				w0 += g.vwgt(best)
			}
			locked[best] = true
			cum += bestGain
			history = append(history, move{best, bestGain})
			if cum > bestCum {
				bestCum = cum
				bestIdx = len(history) - 1
			}
			// Update neighbor gains; neighbors may newly become boundary.
			gain[best] = -gain[best]
			for e := g.Xadj[best]; e < g.Xadj[best+1]; e++ {
				u := g.Adjncy[e]
				if !locked[u] {
					gain[u] = computeGain(u)
					if !inCand[u] {
						cand = append(cand, u)
						inCand[u] = true
					}
				}
			}
			// Early exit: plateau of non-improving moves.
			if len(history)-1-bestIdx > 64 {
				break
			}
		}
		// Roll back moves after the best prefix.
		for i := len(history) - 1; i > bestIdx; i-- {
			v := history[i].v
			if side[v] == 0 {
				side[v] = 1
				w0 -= g.vwgt(v)
			} else {
				side[v] = 0
				w0 += g.vwgt(v)
			}
		}
		if bestCum <= 0 {
			break // no improvement this pass
		}
	}
}
