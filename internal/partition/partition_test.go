package partition

import (
	"testing"
	"testing/quick"

	"github.com/plasma-hpc/dsmcpic/internal/mesh"
)

// pathGraph builds a path 0-1-2-...-n-1.
func pathGraph(n int) *Graph {
	g := &Graph{Xadj: make([]int32, n+1)}
	for v := 0; v < n; v++ {
		if v > 0 {
			g.Adjncy = append(g.Adjncy, int32(v-1))
		}
		if v < n-1 {
			g.Adjncy = append(g.Adjncy, int32(v+1))
		}
		g.Xadj[v+1] = int32(len(g.Adjncy))
	}
	return g
}

// gridGraph builds an nx x ny 2D lattice.
func gridGraph(nx, ny int) *Graph {
	n := nx * ny
	g := &Graph{Xadj: make([]int32, n+1)}
	id := func(i, j int) int32 { return int32(j*nx + i) }
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			if i > 0 {
				g.Adjncy = append(g.Adjncy, id(i-1, j))
			}
			if i < nx-1 {
				g.Adjncy = append(g.Adjncy, id(i+1, j))
			}
			if j > 0 {
				g.Adjncy = append(g.Adjncy, id(i, j-1))
			}
			if j < ny-1 {
				g.Adjncy = append(g.Adjncy, id(i, j+1))
			}
			g.Xadj[id(i, j)+1] = int32(len(g.Adjncy))
		}
	}
	return g
}

func meshGraph(t testing.TB, nx, ny, nz int) *Graph {
	t.Helper()
	m, err := mesh.Box(nx, ny, nz, 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	xadj, adjncy := m.DualGraph()
	return &Graph{Xadj: xadj, Adjncy: adjncy}
}

func TestValidate(t *testing.T) {
	g := pathGraph(5)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &Graph{Xadj: []int32{0, 1}, Adjncy: []int32{0}} // self loop
	if err := bad.Validate(); err == nil {
		t.Error("self loop not detected")
	}
	asym := &Graph{Xadj: []int32{0, 1, 1}, Adjncy: []int32{1}}
	if err := asym.Validate(); err == nil {
		t.Error("asymmetric edge not detected")
	}
	oob := &Graph{Xadj: []int32{0, 1}, Adjncy: []int32{7}}
	if err := oob.Validate(); err == nil {
		t.Error("out-of-range adjacency not detected")
	}
}

func TestPartKOne(t *testing.T) {
	g := pathGraph(10)
	parts, err := PartGraphKway(g, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range parts {
		if p != 0 {
			t.Fatalf("k=1 produced part %d", p)
		}
	}
}

func TestPartRejectsBadK(t *testing.T) {
	if _, err := PartGraphKway(pathGraph(4), 0, Options{}); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestPathBisection(t *testing.T) {
	g := pathGraph(100)
	parts, err := PartGraphKway(g, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	w := PartWeights(g, parts, 2)
	if w[0] < 40 || w[0] > 60 {
		t.Errorf("unbalanced: %v", w)
	}
	// The optimal cut of a path is 1; allow a little slack.
	if cut := EdgeCut(g, parts); cut > 3 {
		t.Errorf("path cut = %d, want <= 3", cut)
	}
}

func TestGridKway(t *testing.T) {
	g := gridGraph(20, 20)
	for _, k := range []int{2, 3, 4, 7, 8, 16} {
		parts, err := PartGraphKway(g, k, Options{})
		if err != nil {
			t.Fatal(err)
		}
		// All parts non-empty and ids within range.
		seen := make([]int64, k)
		for _, p := range parts {
			if p < 0 || int(p) >= k {
				t.Fatalf("k=%d: part id %d out of range", k, p)
			}
			seen[p]++
		}
		for p, c := range seen {
			if c == 0 {
				t.Errorf("k=%d: part %d empty", k, p)
			}
		}
		if im := Imbalance(g, parts, k); im > 1.3 {
			t.Errorf("k=%d: imbalance %.3f too high", k, im)
		}
		// Sanity on the cut: far better than a random partition
		// (expected random cut = edges * (1 - 1/k)).
		edges := int64(len(g.Adjncy) / 2)
		randomCut := float64(edges) * (1 - 1/float64(k))
		if cut := EdgeCut(g, parts); float64(cut) > 0.5*randomCut {
			t.Errorf("k=%d: cut %d vs random %.0f — not better than half random", k, cut, randomCut)
		}
	}
}

func TestWeightedBalance(t *testing.T) {
	// Heavily skewed vertex weights: one end of the path is 10x heavier.
	n := 200
	g := pathGraph(n)
	g.VWgt = make([]int64, n)
	for i := range g.VWgt {
		if i < n/2 {
			g.VWgt[i] = 10
		} else {
			g.VWgt[i] = 1
		}
	}
	parts, err := PartGraphKway(g, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if im := Imbalance(g, parts, 4); im > 1.35 {
		t.Errorf("weighted imbalance %.3f too high: weights %v", im, PartWeights(g, parts, 4))
	}
}

func TestMeshDualPartition(t *testing.T) {
	g := meshGraph(t, 6, 6, 6) // 1296 cells
	parts, err := PartGraphKway(g, 8, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if im := Imbalance(g, parts, 8); im > 1.25 {
		t.Errorf("mesh imbalance %.3f", im)
	}
	edges := int64(len(g.Adjncy) / 2)
	if cut := EdgeCut(g, parts); float64(cut) > 0.4*float64(edges) {
		t.Errorf("mesh cut %d of %d edges too high", cut, edges)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	g := gridGraph(15, 15)
	a, _ := PartGraphKway(g, 4, Options{Seed: 5})
	b, _ := PartGraphKway(g, 4, Options{Seed: 5})
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different partitions")
		}
	}
}

func TestDisconnectedGraph(t *testing.T) {
	// Two disjoint paths of 10; partitioner must still balance.
	g := &Graph{Xadj: make([]int32, 21)}
	for v := 0; v < 20; v++ {
		base := (v / 10) * 10
		if v > base {
			g.Adjncy = append(g.Adjncy, int32(v-1))
		}
		if v < base+9 {
			g.Adjncy = append(g.Adjncy, int32(v+1))
		}
		g.Xadj[v+1] = int32(len(g.Adjncy))
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	parts, err := PartGraphKway(g, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	w := PartWeights(g, parts, 2)
	if w[0] < 6 || w[0] > 14 {
		t.Errorf("disconnected balance: %v", w)
	}
}

// Property: every partition preserves total vertex weight and covers all
// vertices with valid part ids.
func TestQuickPartitionInvariants(t *testing.T) {
	f := func(seed uint64, kRaw uint8) bool {
		k := int(kRaw)%7 + 2
		g := gridGraph(12, 9)
		parts, err := PartGraphKway(g, k, Options{Seed: seed})
		if err != nil {
			return false
		}
		var sum int64
		for _, w := range PartWeights(g, parts, k) {
			sum += w
		}
		return sum == g.TotalVWgt()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestLargeKSmallGraph(t *testing.T) {
	// More parts than a comfortable split: k close to n.
	g := pathGraph(16)
	parts, err := PartGraphKway(g, 13, Options{})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int32]bool{}
	for _, p := range parts {
		seen[p] = true
	}
	// With n=16 and k=13 at least 10 parts must be non-empty.
	if len(seen) < 10 {
		t.Errorf("only %d of 13 parts non-empty", len(seen))
	}
}

func BenchmarkPartitionMeshK16(b *testing.B) {
	g := meshGraph(b, 8, 8, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PartGraphKway(g, 16, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPartitionGridK64(b *testing.B) {
	g := gridGraph(64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PartGraphKway(g, 64, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestEdgeWeightsSteerCut(t *testing.T) {
	// A path where one edge is enormously heavy: the bisection should cut
	// any light edge rather than the heavy one.
	n := 20
	g := pathGraph(n)
	g.EWgt = make([]int64, len(g.Adjncy))
	for i := range g.EWgt {
		g.EWgt[i] = 1
	}
	// Make the middle edge (9-10) very heavy, in both directions.
	for v := int32(0); int(v) < n; v++ {
		for e := g.Xadj[v]; e < g.Xadj[v+1]; e++ {
			u := g.Adjncy[e]
			if (v == 9 && u == 10) || (v == 10 && u == 9) {
				g.EWgt[e] = 1000
			}
		}
	}
	parts, err := PartGraphKway(g, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if parts[9] != parts[10] {
		t.Errorf("heavy edge 9-10 was cut: %v %v", parts[9], parts[10])
	}
	// Balance still holds (tolerance must allow shifting the split point).
	w := PartWeights(g, parts, 2)
	if w[0] < 5 || w[0] > 15 {
		t.Errorf("balance: %v", w)
	}
}

func TestBoundarySizes(t *testing.T) {
	// A path split down the middle exposes exactly one boundary vertex on
	// each side; one part owning everything has no boundary at all.
	g := pathGraph(10)
	parts := make([]int32, 10)
	for v := 5; v < 10; v++ {
		parts[v] = 1
	}
	if got := BoundarySizes(g, parts, 2); got[0] != 1 || got[1] != 1 {
		t.Errorf("split path boundary sizes = %v, want [1 1]", got)
	}
	if got := BoundarySizes(g, make([]int32, 10), 1); got[0] != 0 {
		t.Errorf("single-part boundary size = %d, want 0", got[0])
	}

	// On a 2D grid cut into vertical strips, each interior strip exposes
	// two columns, each edge strip one — and a vertex counts once however
	// many cut edges touch it (the boundary is a vertex set, not the edge
	// cut: total boundary must be <= 2x the number of cut edges and here
	// is exactly the column count).
	const nx, ny = 12, 7
	grid := gridGraph(nx, ny)
	strips := make([]int32, nx*ny)
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			strips[j*nx+i] = int32(i / 4) // parts 0,1,2 of 4 columns each
		}
	}
	got := BoundarySizes(grid, strips, 3)
	want := []int64{ny, 2 * ny, ny}
	for p := range want {
		if got[p] != want[p] {
			t.Errorf("strip %d boundary size = %d, want %d (all: %v)", p, got[p], want[p], got)
		}
	}
	if cut := EdgeCut(grid, strips); got[0]+got[1]+got[2] > 2*cut {
		t.Errorf("boundary vertices %v exceed 2x edge cut %d", got, cut)
	}

	// The partitioner's own output: every part of a connected multi-part
	// split must expose at least one boundary vertex.
	kway, err := PartGraphKway(grid, 4, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for p, b := range BoundarySizes(grid, kway, 4) {
		if b == 0 {
			t.Errorf("part %d of a connected 4-way split has no boundary", p)
		}
	}
}
