package sparse

import (
	"fmt"
	"sort"
)

// LocalCSR is a partition-local view of a global CSR matrix: only the rows
// a rank owns are stored, with columns renumbered into a compact local id
// space. Local ids [0, NumOwned) are the owned global nodes in ascending
// global order; ids [NumOwned, NumOwned+NumGhost) are the ghost columns —
// off-partition nodes referenced by owned rows — also in ascending global
// order. This is the PETSc-style owner/ghost row layout the distributed
// Poisson solver works in: per-rank matrix memory is O(ownedNNZ), not
// O(globalNNZ), and the ghost block identifies exactly the entries a halo
// exchange must refresh.
//
// Per-row entry order is preserved from the global matrix (ascending
// global column), so MulVecOwned accumulates each row's products in the
// same order as CSR.MulVecRows and yields bitwise-identical results for
// identical inputs. Note that the *local* column ids are therefore not
// sorted within a row (ghost ids compare above all owned ids).
type LocalCSR struct {
	nOwned int
	nGhost int

	// RowPtr/ColIdx/Val hold the owned rows in local column ids.
	RowPtr []int32 // length nOwned+1
	ColIdx []int32 // length ownedNNZ, local ids
	Val    []float64

	localToGlobal []int32         // length nOwned+nGhost
	globalToLocal map[int32]int32 // inverse, owned + ghost nodes only
}

// NewLocalCSR extracts the partition-local view of m for the given owned
// global rows. owned must be strictly ascending (the natural order of an
// ownership scan); the global matrix is only read, never retained.
func NewLocalCSR(m *CSR, owned []int32) (*LocalCSR, error) {
	for i := 1; i < len(owned); i++ {
		if owned[i] <= owned[i-1] {
			return nil, fmt.Errorf("sparse: owned rows not strictly ascending at position %d (%d after %d)",
				i, owned[i], owned[i-1])
		}
	}
	if len(owned) > 0 && (owned[0] < 0 || int(owned[len(owned)-1]) >= m.N) {
		return nil, fmt.Errorf("sparse: owned rows [%d, %d] out of range for %d-node matrix",
			owned[0], owned[len(owned)-1], m.N)
	}

	l := &LocalCSR{
		nOwned:        len(owned),
		globalToLocal: make(map[int32]int32, len(owned)*2),
	}
	for li, g := range owned {
		l.globalToLocal[g] = int32(li)
	}

	// First pass: count owned-row entries and collect the ghost column set.
	nnz := 0
	var ghosts []int32
	for _, g := range owned {
		nnz += int(m.RowPtr[g+1] - m.RowPtr[g])
		for k := m.RowPtr[g]; k < m.RowPtr[g+1]; k++ {
			j := m.ColIdx[k]
			if _, ok := l.globalToLocal[j]; !ok {
				l.globalToLocal[j] = -1 // placeholder: ghost, id assigned below
				ghosts = append(ghosts, j)
			}
		}
	}
	sort.Slice(ghosts, func(a, b int) bool { return ghosts[a] < ghosts[b] })
	l.nGhost = len(ghosts)
	for j, g := range ghosts {
		l.globalToLocal[g] = int32(l.nOwned + j)
	}
	l.localToGlobal = make([]int32, 0, l.nOwned+l.nGhost)
	l.localToGlobal = append(l.localToGlobal, owned...)
	l.localToGlobal = append(l.localToGlobal, ghosts...)

	// Second pass: copy the owned rows, renumbering columns. Entry order
	// within each row is the global matrix's order.
	l.RowPtr = make([]int32, l.nOwned+1)
	l.ColIdx = make([]int32, 0, nnz)
	l.Val = make([]float64, 0, nnz)
	for li, g := range owned {
		for k := m.RowPtr[g]; k < m.RowPtr[g+1]; k++ {
			l.ColIdx = append(l.ColIdx, l.globalToLocal[m.ColIdx[k]])
			l.Val = append(l.Val, m.Val[k])
		}
		l.RowPtr[li+1] = int32(len(l.ColIdx))
	}
	return l, nil
}

// NumOwned returns the number of owned rows (local ids [0, NumOwned)).
func (l *LocalCSR) NumOwned() int { return l.nOwned }

// NumGhost returns the number of ghost columns (local ids
// [NumOwned, NumOwned+NumGhost)).
func (l *LocalCSR) NumGhost() int { return l.nGhost }

// NNZ returns the number of stored entries across the owned rows.
func (l *LocalCSR) NNZ() int { return len(l.Val) }

// LocalToGlobal returns the global node id of a local id (owned or ghost).
func (l *LocalCSR) LocalToGlobal(li int32) int32 { return l.localToGlobal[li] }

// LocalOf returns the local id of a global node, or -1 when the node is
// neither owned nor a ghost of this partition.
func (l *LocalCSR) LocalOf(g int32) int32 {
	if li, ok := l.globalToLocal[g]; ok {
		return li
	}
	return -1
}

// MulVecOwned computes dst = M_local * x over the owned rows. dst has
// length NumOwned; x has length NumOwned+NumGhost with the ghost tail
// holding the current off-partition values. Accumulation order per row
// matches CSR.MulVecRows on the global matrix.
func (l *LocalCSR) MulVecOwned(dst, x []float64) {
	for i := 0; i < l.nOwned; i++ {
		var s float64
		for k := l.RowPtr[i]; k < l.RowPtr[i+1]; k++ {
			s += l.Val[k] * x[l.ColIdx[k]]
		}
		dst[i] = s
	}
}

// DiagOwned extracts the diagonal of the owned rows (indexed by local id).
// Missing diagonal entries are zero.
func (l *LocalCSR) DiagOwned() []float64 {
	d := make([]float64, l.nOwned)
	for i := 0; i < l.nOwned; i++ {
		for k := l.RowPtr[i]; k < l.RowPtr[i+1]; k++ {
			if int(l.ColIdx[k]) == i {
				d[i] = l.Val[k]
				break
			}
		}
	}
	return d
}

// MatrixBytes reports the resident size of the owned-row matrix storage
// (RowPtr + ColIdx + Val), the dominant term of per-rank solver memory.
func (l *LocalCSR) MatrixBytes() int64 {
	return int64(4*len(l.RowPtr) + 4*len(l.ColIdx) + 8*len(l.Val))
}

// IndexMapBytes reports the resident size of the local⇄global index maps.
// The inverse map is costed at the same 4+4 bytes per entry as its dense
// half; Go map overhead is deliberately excluded so the gauge is
// deterministic across runs.
func (l *LocalCSR) IndexMapBytes() int64 {
	return int64(4*len(l.localToGlobal) + 8*len(l.globalToLocal))
}
