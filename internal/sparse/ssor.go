package sparse

// SSORPrecond is the symmetric successive over-relaxation preconditioner
// M = (D/w + L) (D/w)^-1 (D/w + U) / (2-w), applied via forward and
// backward triangular sweeps. For SPD matrices it keeps CG's required
// symmetry and typically converges in noticeably fewer iterations than
// Jacobi at a modest per-iteration cost.
type SSORPrecond struct {
	a       *CSR
	invDiag []float64
	omega   float64
	scratch []float64
}

// NewSSOR builds an SSOR preconditioner for a with relaxation factor omega
// in (0, 2); omega <= 0 selects 1 (symmetric Gauss-Seidel). Zero diagonal
// entries fall back to 1.
func NewSSOR(a *CSR, omega float64) *SSORPrecond {
	if omega <= 0 || omega >= 2 {
		omega = 1
	}
	d := a.Diag()
	inv := make([]float64, len(d))
	for i, x := range d {
		if x != 0 {
			inv[i] = 1 / x
		} else {
			inv[i] = 1
		}
	}
	return &SSORPrecond{a: a, invDiag: inv, omega: omega, scratch: make([]float64, a.N)}
}

// Apply computes dst ~= M^-1 r via a forward sweep solving (D/w + L) y = r
// followed by a backward sweep solving (D/w + U) dst = (D/w) y, both using
// the strictly-lower/upper parts of the matrix row by row.
func (p *SSORPrecond) Apply(dst, r []float64) {
	a, w := p.a, p.omega
	y := p.scratch
	// Forward: y_i = w*invD_i * (r_i - sum_{j<i} a_ij y_j).
	for i := 0; i < a.N; i++ {
		s := r[i]
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := int(a.ColIdx[k])
			if j < i {
				s -= a.Val[k] * y[j]
			}
		}
		y[i] = w * p.invDiag[i] * s
	}
	// Backward: dst_i = y_i - w*invD_i * sum_{j>i} a_ij dst_j.
	for i := a.N - 1; i >= 0; i-- {
		var s float64
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := int(a.ColIdx[k])
			if j > i {
				s += a.Val[k] * dst[j]
			}
		}
		dst[i] = y[i] - w*p.invDiag[i]*s
	}
}
