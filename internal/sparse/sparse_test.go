package sparse

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/plasma-hpc/dsmcpic/internal/rng"
)

// laplace1D builds the N x N tridiagonal [-1, 2, -1] matrix (SPD).
func laplace1D(n int) *CSR {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.Add(i, i, 2)
		if i > 0 {
			b.Add(i, i-1, -1)
		}
		if i < n-1 {
			b.Add(i, i+1, -1)
		}
	}
	m, err := b.ToCSR()
	if err != nil {
		panic(err)
	}
	return m
}

// laplace2D builds the 5-point Laplacian on an n x n grid.
func laplace2D(n int) *CSR {
	id := func(i, j int) int { return j*n + i }
	b := NewBuilder(n * n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			v := id(i, j)
			b.Add(v, v, 4)
			if i > 0 {
				b.Add(v, id(i-1, j), -1)
			}
			if i < n-1 {
				b.Add(v, id(i+1, j), -1)
			}
			if j > 0 {
				b.Add(v, id(i, j-1), -1)
			}
			if j < n-1 {
				b.Add(v, id(i, j+1), -1)
			}
		}
	}
	m, err := b.ToCSR()
	if err != nil {
		panic(err)
	}
	return m
}

func TestBuilderDuplicatesSum(t *testing.T) {
	b := NewBuilder(2)
	b.Add(0, 0, 1)
	b.Add(0, 0, 2)
	b.Add(0, 1, -1)
	b.Add(1, 1, 5)
	m, err := b.ToCSR()
	if err != nil {
		t.Fatal(err)
	}
	if got := m.At(0, 0); got != 3 {
		t.Errorf("At(0,0) = %v, want 3", got)
	}
	if got := m.At(0, 1); got != -1 {
		t.Errorf("At(0,1) = %v", got)
	}
	if got := m.At(1, 0); got != 0 {
		t.Errorf("At(1,0) = %v, want 0 (missing)", got)
	}
	if m.NNZ() != 3 {
		t.Errorf("NNZ = %d", m.NNZ())
	}
}

func TestBuilderSetAndClearRow(t *testing.T) {
	b := NewBuilder(3)
	b.Add(0, 0, 1)
	b.Add(0, 1, 1)
	b.Set(0, 0, 7)
	m, _ := b.ToCSR()
	if m.At(0, 0) != 7 {
		t.Errorf("Set did not overwrite: %v", m.At(0, 0))
	}
	b.ClearRow(0)
	b.Set(0, 0, 1)
	m, _ = b.ToCSR()
	if m.At(0, 1) != 0 || m.At(0, 0) != 1 {
		t.Error("ClearRow left stale entries")
	}
}

func TestBuilderRejectsOutOfRange(t *testing.T) {
	b := NewBuilder(2)
	b.Add(0, 5, 1) // out of range caught at ToCSR
	if _, err := b.ToCSR(); err == nil {
		t.Error("out-of-range column accepted")
	}
}

func TestMulVec(t *testing.T) {
	m := laplace1D(4)
	x := []float64{1, 2, 3, 4}
	dst := make([]float64, 4)
	m.MulVec(dst, x)
	want := []float64{2*1 - 2, -1 + 4 - 3, -2 + 6 - 4, -3 + 8}
	for i := range want {
		if math.Abs(dst[i]-want[i]) > 1e-14 {
			t.Errorf("dst[%d] = %v, want %v", i, dst[i], want[i])
		}
	}
}

func TestMulVecRows(t *testing.T) {
	m := laplace2D(5)
	x := make([]float64, m.N)
	for i := range x {
		x[i] = float64(i%7) - 3
	}
	full := make([]float64, m.N)
	m.MulVec(full, x)
	part := make([]float64, m.N)
	m.MulVecRows(part, x, 5, 15)
	for i := 5; i < 15; i++ {
		//commvet:ignore floatcompare MulVecRows performs the identical per-row dot product as MulVec, so equality is bitwise by construction
		if part[i] != full[i] {
			t.Errorf("row %d: %v != %v", i, part[i], full[i])
		}
	}
	for i := 0; i < 5; i++ {
		if part[i] != 0 {
			t.Errorf("row %d touched outside range", i)
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	m := laplace2D(4)
	tt := m.Transpose().Transpose()
	if tt.NNZ() != m.NNZ() {
		t.Fatalf("NNZ changed: %d -> %d", m.NNZ(), tt.NNZ())
	}
	for i := range m.Val {
		//commvet:ignore floatcompare transpose is a permutation copy — double transpose must reproduce the values bitwise
		if m.Val[i] != tt.Val[i] || m.ColIdx[i] != tt.ColIdx[i] {
			t.Fatal("transpose twice != identity")
		}
	}
}

func TestIsSymmetric(t *testing.T) {
	if !laplace2D(6).IsSymmetric(0) {
		t.Error("Laplacian not detected symmetric")
	}
	b := NewBuilder(2)
	b.Add(0, 1, 1)
	b.Add(1, 0, 2)
	b.Add(0, 0, 1)
	b.Add(1, 1, 1)
	m, _ := b.ToCSR()
	if m.IsSymmetric(1e-12) {
		t.Error("asymmetric matrix detected symmetric")
	}
}

// Property (quick): transpose preserves the quadratic form x^T A y = y^T A^T x.
func TestQuickTransposeAdjoint(t *testing.T) {
	m := laplace2D(5)
	mt := m.Transpose()
	f := func(seed uint64) bool {
		r := rng.New(seed, 0)
		x := make([]float64, m.N)
		y := make([]float64, m.N)
		for i := range x {
			x[i] = r.Float64() - 0.5
			y[i] = r.Float64() - 0.5
		}
		ax := make([]float64, m.N)
		aty := make([]float64, m.N)
		m.MulVec(ax, x)
		mt.MulVec(aty, y)
		return math.Abs(dot(y, ax)-dot(x, aty)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func residual(a *CSR, b, x []float64) float64 {
	r := make([]float64, a.N)
	a.MulVec(r, x)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	return norm2(r) / (norm2(b) + 1e-300)
}

func TestCGSolvesLaplace(t *testing.T) {
	for _, n := range []int{5, 20, 100} {
		a := laplace1D(n)
		b := make([]float64, n)
		for i := range b {
			b[i] = 1
		}
		x := make([]float64, n)
		res, err := CG(a, b, x, SolveOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("n=%d: CG did not converge (res=%g)", n, res.Residual)
		}
		if r := residual(a, b, x); r > 1e-8 {
			t.Errorf("n=%d: residual %g", n, r)
		}
	}
}

func TestCGWithJacobi(t *testing.T) {
	a := laplace2D(20)
	b := make([]float64, a.N)
	r := rng.New(4, 0)
	for i := range b {
		b[i] = r.Float64() - 0.5
	}
	x := make([]float64, a.N)
	plain, err := CG(a, b, x, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	x2 := make([]float64, a.N)
	pre, err := CG(a, b, x2, SolveOptions{Precond: NewJacobi(a)})
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Converged || !pre.Converged {
		t.Fatal("CG failed to converge")
	}
	// Same solution either way.
	for i := range x {
		if math.Abs(x[i]-x2[i]) > 1e-6 {
			t.Fatalf("preconditioned solution differs at %d: %v vs %v", i, x[i], x2[i])
		}
	}
}

func TestCGZeroRHS(t *testing.T) {
	a := laplace1D(10)
	b := make([]float64, 10)
	x := make([]float64, 10)
	x[3] = 5 // nonzero initial guess
	res, err := CG(a, b, x, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("zero RHS did not converge")
	}
	for i, xi := range x {
		if xi != 0 {
			t.Errorf("x[%d] = %v, want 0", i, xi)
		}
	}
}

func TestCGDimensionMismatch(t *testing.T) {
	a := laplace1D(4)
	if _, err := CG(a, make([]float64, 3), make([]float64, 4), SolveOptions{}); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestCGNotSPD(t *testing.T) {
	// Negative definite matrix triggers the SPD breakdown guard.
	b := NewBuilder(2)
	b.Add(0, 0, -1)
	b.Add(1, 1, -1)
	a, _ := b.ToCSR()
	_, err := CG(a, []float64{1, 1}, make([]float64, 2), SolveOptions{})
	if err == nil {
		t.Error("CG on negative-definite matrix did not report breakdown")
	}
}

func TestBiCGSTABNonSymmetric(t *testing.T) {
	// Upwind convection-diffusion-like non-symmetric matrix.
	n := 50
	bu := NewBuilder(n)
	for i := 0; i < n; i++ {
		bu.Add(i, i, 3)
		if i > 0 {
			bu.Add(i, i-1, -2)
		}
		if i < n-1 {
			bu.Add(i, i+1, -0.5)
		}
	}
	a, _ := bu.ToCSR()
	if a.IsSymmetric(1e-12) {
		t.Fatal("test matrix unexpectedly symmetric")
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = float64(i%3) + 1
	}
	x := make([]float64, n)
	res, err := BiCGSTAB(a, b, x, SolveOptions{Precond: NewJacobi(a)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("BiCGSTAB did not converge: %+v", res)
	}
	if r := residual(a, b, x); r > 1e-8 {
		t.Errorf("residual %g", r)
	}
}

func TestBiCGSTABZeroRHS(t *testing.T) {
	a := laplace1D(6)
	x := []float64{1, 2, 3, 4, 5, 6}
	res, err := BiCGSTAB(a, make([]float64, 6), x, SolveOptions{})
	if err != nil || !res.Converged {
		t.Fatalf("zero RHS: %v %+v", err, res)
	}
}

// Property: CG solution matches BiCGSTAB solution on SPD systems.
func TestQuickCGvsBiCGSTAB(t *testing.T) {
	a := laplace2D(8)
	f := func(seed uint64) bool {
		r := rng.New(seed, 0)
		b := make([]float64, a.N)
		for i := range b {
			b[i] = r.Float64() - 0.5
		}
		x1 := make([]float64, a.N)
		x2 := make([]float64, a.N)
		r1, err1 := CG(a, b, x1, SolveOptions{Tol: 1e-12})
		r2, err2 := BiCGSTAB(a, b, x2, SolveOptions{Tol: 1e-12})
		if err1 != nil || err2 != nil || !r1.Converged || !r2.Converged {
			return false
		}
		for i := range x1 {
			if math.Abs(x1[i]-x2[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestJacobiZeroDiagonal(t *testing.T) {
	b := NewBuilder(2)
	b.Add(0, 1, 1)
	b.Add(1, 0, 1)
	a, _ := b.ToCSR()
	p := NewJacobi(a)
	dst := make([]float64, 2)
	p.Apply(dst, []float64{3, 4})
	if dst[0] != 3 || dst[1] != 4 {
		t.Errorf("zero-diagonal fallback: %v", dst)
	}
}

func BenchmarkMulVec(b *testing.B) {
	a := laplace2D(100)
	x := make([]float64, a.N)
	dst := make([]float64, a.N)
	for i := range x {
		x[i] = float64(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.MulVec(dst, x)
	}
}

func BenchmarkCGLaplace2D(b *testing.B) {
	a := laplace2D(50)
	rhs := make([]float64, a.N)
	for i := range rhs {
		rhs[i] = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := make([]float64, a.N)
		if _, err := CG(a, rhs, x, SolveOptions{Precond: NewJacobi(a)}); err != nil {
			b.Fatal(err)
		}
	}
}

// TestDefaultTolShared pins the one shared solver tolerance: DefaultTol is
// what every zero-Tol SolveOptions resolves to, here and in the distributed
// Poisson solver (pic.DistSolver), which calls the same WithDefaults.
func TestDefaultTolShared(t *testing.T) {
	if DefaultTol != 1e-10 {
		t.Fatalf("DefaultTol = %g, want 1e-10", DefaultTol)
	}
	o := SolveOptions{}.WithDefaults(50)
	if o.Tol != DefaultTol {
		t.Fatalf("zero Tol resolved to %g, want DefaultTol %g", o.Tol, DefaultTol)
	}
	if o.MaxIter != 500 {
		t.Fatalf("zero MaxIter resolved to %d, want 10*n = 500", o.MaxIter)
	}
	// An explicit tolerance is left alone.
	if o := (SolveOptions{Tol: 1e-6}).WithDefaults(50); o.Tol != 1e-6 {
		t.Fatalf("explicit Tol overridden to %g", o.Tol)
	}
}
