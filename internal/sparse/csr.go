// Package sparse provides compressed sparse row (CSR) matrices and Krylov
// subspace solvers (CG, BiCGSTAB) with simple preconditioners. It replaces
// the PETSc KSP dependency of the paper's solver: the PIC Poisson equation
// is discretized into K*phi = b with K in CSR format (paper §IV-C) and
// solved iteratively.
package sparse

import (
	"fmt"
	"sort"
)

// CSR is a square sparse matrix in compressed sparse row format.
type CSR struct {
	N      int
	RowPtr []int32   // length N+1
	ColIdx []int32   // length nnz, ascending within each row
	Val    []float64 // length nnz
}

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.Val) }

// MulVec computes dst = M * x. dst and x must have length N and must not
// alias.
func (m *CSR) MulVec(dst, x []float64) {
	for i := 0; i < m.N; i++ {
		var s float64
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			s += m.Val[k] * x[m.ColIdx[k]]
		}
		dst[i] = s
	}
}

// MulVecRows computes dst[i] = (M * x)[i] for i in [rowLo, rowHi) only;
// other entries of dst are untouched. This is the kernel of the
// row-distributed parallel matvec in the PIC field solver.
func (m *CSR) MulVecRows(dst, x []float64, rowLo, rowHi int) {
	for i := rowLo; i < rowHi; i++ {
		var s float64
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			s += m.Val[k] * x[m.ColIdx[k]]
		}
		dst[i] = s
	}
}

// Diag extracts the main diagonal. Missing diagonal entries are zero.
func (m *CSR) Diag() []float64 {
	d := make([]float64, m.N)
	for i := 0; i < m.N; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			if int(m.ColIdx[k]) == i {
				d[i] = m.Val[k]
				break
			}
		}
	}
	return d
}

// At returns M[i][j] (zero if not stored). O(log row nnz).
func (m *CSR) At(i, j int) float64 {
	lo, hi := int(m.RowPtr[i]), int(m.RowPtr[i+1])
	k := lo + sort.Search(hi-lo, func(k int) bool { return m.ColIdx[lo+k] >= int32(j) })
	if k < hi && int(m.ColIdx[k]) == j {
		return m.Val[k]
	}
	return 0
}

// Transpose returns M^T.
func (m *CSR) Transpose() *CSR {
	t := &CSR{
		N:      m.N,
		RowPtr: make([]int32, m.N+1),
		ColIdx: make([]int32, m.NNZ()),
		Val:    make([]float64, m.NNZ()),
	}
	for _, j := range m.ColIdx {
		t.RowPtr[j+1]++
	}
	for i := 0; i < m.N; i++ {
		t.RowPtr[i+1] += t.RowPtr[i]
	}
	pos := make([]int32, m.N)
	copy(pos, t.RowPtr[:m.N])
	for i := 0; i < m.N; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			j := m.ColIdx[k]
			t.ColIdx[pos[j]] = int32(i)
			t.Val[pos[j]] = m.Val[k]
			pos[j]++
		}
	}
	return t
}

// IsSymmetric reports whether M equals its transpose within tol.
func (m *CSR) IsSymmetric(tol float64) bool {
	t := m.Transpose()
	if t.NNZ() != m.NNZ() {
		return false
	}
	for i := range m.Val {
		if m.ColIdx[i] != t.ColIdx[i] {
			return false
		}
		d := m.Val[i] - t.Val[i]
		if d > tol || d < -tol {
			return false
		}
	}
	for i := range m.RowPtr {
		if m.RowPtr[i] != t.RowPtr[i] {
			return false
		}
	}
	return true
}

// Builder accumulates (i, j, v) triplets; duplicates sum. Use ToCSR to
// finalize. The zero Builder is not usable; construct with NewBuilder.
type Builder struct {
	n       int
	rows    []map[int32]float64
	entries int
}

// NewBuilder returns a builder for an n x n matrix.
func NewBuilder(n int) *Builder {
	return &Builder{n: n, rows: make([]map[int32]float64, n)}
}

// Add accumulates v into entry (i, j).
func (b *Builder) Add(i, j int, v float64) {
	if b.rows[i] == nil {
		b.rows[i] = make(map[int32]float64, 8)
	}
	if _, ok := b.rows[i][int32(j)]; !ok {
		b.entries++
	}
	b.rows[i][int32(j)] += v
}

// Set overwrites entry (i, j).
func (b *Builder) Set(i, j int, v float64) {
	if b.rows[i] == nil {
		b.rows[i] = make(map[int32]float64, 8)
	}
	if _, ok := b.rows[i][int32(j)]; !ok {
		b.entries++
	}
	b.rows[i][int32(j)] = v
}

// ClearRow removes all entries of row i (used to impose Dirichlet rows).
func (b *Builder) ClearRow(i int) {
	b.entries -= len(b.rows[i])
	b.rows[i] = nil
}

// ToCSR finalizes the builder into a CSR matrix with sorted columns.
func (b *Builder) ToCSR() (*CSR, error) {
	m := &CSR{
		N:      b.n,
		RowPtr: make([]int32, b.n+1),
		ColIdx: make([]int32, 0, b.entries),
		Val:    make([]float64, 0, b.entries),
	}
	var cols []int32
	for i := 0; i < b.n; i++ {
		cols = cols[:0]
		for j := range b.rows[i] {
			if j < 0 || int(j) >= b.n {
				return nil, fmt.Errorf("sparse: entry (%d,%d) out of range", i, j)
			}
			cols = append(cols, j)
		}
		sort.Slice(cols, func(a, c int) bool { return cols[a] < cols[c] })
		for _, j := range cols {
			m.ColIdx = append(m.ColIdx, j)
			m.Val = append(m.Val, b.rows[i][j])
		}
		m.RowPtr[i+1] = int32(len(m.ColIdx))
	}
	return m, nil
}
