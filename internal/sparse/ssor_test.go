package sparse

import (
	"math"
	"testing"

	"github.com/plasma-hpc/dsmcpic/internal/rng"
)

func TestSSORSolvesLaplace(t *testing.T) {
	a := laplace2D(15)
	r := rng.New(5, 0)
	b := make([]float64, a.N)
	for i := range b {
		b[i] = r.Float64() - 0.5
	}
	x := make([]float64, a.N)
	res, err := CG(a, b, x, SolveOptions{Precond: NewSSOR(a, 1.0), Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("SSOR-CG did not converge: %+v", res)
	}
	if r := residual(a, b, x); r > 1e-8 {
		t.Errorf("residual %g", r)
	}
}

func TestSSORFewerIterationsThanJacobi(t *testing.T) {
	a := laplace2D(25)
	b := make([]float64, a.N)
	for i := range b {
		b[i] = 1
	}
	x1 := make([]float64, a.N)
	jac, err := CG(a, b, x1, SolveOptions{Precond: NewJacobi(a), Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	x2 := make([]float64, a.N)
	ssor, err := CG(a, b, x2, SolveOptions{Precond: NewSSOR(a, 1.2), Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if !jac.Converged || !ssor.Converged {
		t.Fatal("solvers did not converge")
	}
	if ssor.Iterations >= jac.Iterations {
		t.Errorf("SSOR iterations %d not fewer than Jacobi %d", ssor.Iterations, jac.Iterations)
	}
	// Same solution.
	for i := range x1 {
		if math.Abs(x1[i]-x2[i]) > 1e-6 {
			t.Fatalf("solutions differ at %d", i)
		}
	}
}

func TestSSORInvalidOmegaFallsBack(t *testing.T) {
	a := laplace1D(5)
	for _, w := range []float64{-1, 0, 2, 5} {
		p := NewSSOR(a, w)
		if p.omega != 1 {
			t.Errorf("omega %v not clamped to 1, got %v", w, p.omega)
		}
	}
}

func TestSSORIdentityMatrix(t *testing.T) {
	// On the identity matrix, SSOR must act as the identity.
	b := NewBuilder(4)
	for i := 0; i < 4; i++ {
		b.Add(i, i, 1)
	}
	a, _ := b.ToCSR()
	p := NewSSOR(a, 1)
	r := []float64{1, -2, 3, -4}
	dst := make([]float64, 4)
	p.Apply(dst, r)
	for i := range r {
		if math.Abs(dst[i]-r[i]) > 1e-14 {
			t.Errorf("identity SSOR: dst[%d]=%v", i, dst[i])
		}
	}
}

func BenchmarkCGSSOR(b *testing.B) {
	a := laplace2D(50)
	rhs := make([]float64, a.N)
	for i := range rhs {
		rhs[i] = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := make([]float64, a.N)
		if _, err := CG(a, rhs, x, SolveOptions{Precond: NewSSOR(a, 1.2)}); err != nil {
			b.Fatal(err)
		}
	}
}
