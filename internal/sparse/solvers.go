package sparse

import (
	"fmt"
	"math"
)

// Preconditioner approximates the inverse of a matrix: Apply(dst, r) sets
// dst ~= M^{-1} r.
type Preconditioner interface {
	Apply(dst, r []float64)
}

// IdentityPrecond is the trivial preconditioner.
type IdentityPrecond struct{}

// Apply copies r into dst.
func (IdentityPrecond) Apply(dst, r []float64) { copy(dst, r) }

// JacobiPrecond scales by the inverse diagonal.
type JacobiPrecond struct {
	invDiag []float64
}

// NewJacobi builds a Jacobi preconditioner from the diagonal of A. Zero
// diagonal entries fall back to 1 (identity on that row).
func NewJacobi(a *CSR) *JacobiPrecond {
	d := a.Diag()
	inv := make([]float64, len(d))
	for i, x := range d {
		if x != 0 {
			inv[i] = 1 / x
		} else {
			inv[i] = 1
		}
	}
	return &JacobiPrecond{invDiag: inv}
}

// Apply sets dst = D^{-1} r.
func (p *JacobiPrecond) Apply(dst, r []float64) {
	for i := range r {
		dst[i] = p.invDiag[i] * r[i]
	}
}

// DefaultTol is the default relative-residual convergence tolerance shared
// by every Krylov solver in the repository — sparse.CG, sparse.BiCGSTAB and
// the distributed pic.DistSolver all fall back to it when SolveOptions.Tol
// is zero, so "solver default accuracy" means one number everywhere.
// (Simulation configs may still choose a looser application-level
// tolerance explicitly, e.g. core.Config.PoissonTol.)
const DefaultTol = 1e-10

// SolveOptions configures the iterative solvers. Zero values select
// defaults: MaxIter = 10*N (min 100), Tol = DefaultTol (relative residual).
type SolveOptions struct {
	MaxIter int
	Tol     float64
	Precond Preconditioner
}

// WithDefaults fills zero fields with the shared solver defaults for an
// n-dimensional system. Exported so out-of-package solvers with the same
// options surface (the distributed Poisson solver) resolve identical
// defaults from the single definition here.
func (o SolveOptions) WithDefaults(n int) SolveOptions {
	if o.MaxIter <= 0 {
		o.MaxIter = 10 * n
		if o.MaxIter < 100 {
			o.MaxIter = 100
		}
	}
	if o.Tol <= 0 {
		o.Tol = DefaultTol
	}
	if o.Precond == nil {
		o.Precond = IdentityPrecond{}
	}
	return o
}

// SolveResult reports solver statistics.
type SolveResult struct {
	Iterations int
	Residual   float64 // final relative residual |b - Ax| / |b|
	Converged  bool
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func norm2(a []float64) float64 { return math.Sqrt(dot(a, a)) }

// axpy computes y += alpha * x.
func axpy(alpha float64, x, y []float64) {
	for i := range x {
		y[i] += alpha * x[i]
	}
}

// CG solves A x = b for symmetric positive-definite A using the
// preconditioned conjugate gradient method. x is used as the initial guess
// and overwritten with the solution.
func CG(a *CSR, b, x []float64, opts SolveOptions) (SolveResult, error) {
	n := a.N
	if len(b) != n || len(x) != n {
		return SolveResult{}, fmt.Errorf("sparse: CG dimension mismatch (N=%d len(b)=%d len(x)=%d)", n, len(b), len(x))
	}
	o := opts.WithDefaults(n)
	r := make([]float64, n)
	z := make([]float64, n)
	p := make([]float64, n)
	ap := make([]float64, n)

	a.MulVec(r, x)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	bnorm := norm2(b)
	if bnorm == 0 {
		for i := range x {
			x[i] = 0
		}
		return SolveResult{Converged: true}, nil
	}
	o.Precond.Apply(z, r)
	copy(p, z)
	rz := dot(r, z)
	for it := 0; it < o.MaxIter; it++ {
		res := norm2(r) / bnorm
		if res <= o.Tol {
			return SolveResult{Iterations: it, Residual: res, Converged: true}, nil
		}
		a.MulVec(ap, p)
		pap := dot(p, ap)
		if pap <= 0 {
			return SolveResult{Iterations: it, Residual: res},
				fmt.Errorf("sparse: CG breakdown (p^T A p = %g); matrix not SPD?", pap)
		}
		alpha := rz / pap
		axpy(alpha, p, x)
		axpy(-alpha, ap, r)
		o.Precond.Apply(z, r)
		rzNew := dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	return SolveResult{Iterations: o.MaxIter, Residual: norm2(r) / bnorm}, nil
}

// BiCGSTAB solves A x = b for general (non-symmetric) A. x is used as the
// initial guess and overwritten.
func BiCGSTAB(a *CSR, b, x []float64, opts SolveOptions) (SolveResult, error) {
	n := a.N
	if len(b) != n || len(x) != n {
		return SolveResult{}, fmt.Errorf("sparse: BiCGSTAB dimension mismatch")
	}
	o := opts.WithDefaults(n)
	r := make([]float64, n)
	rhat := make([]float64, n)
	p := make([]float64, n)
	v := make([]float64, n)
	s := make([]float64, n)
	t := make([]float64, n)
	phat := make([]float64, n)
	shat := make([]float64, n)

	a.MulVec(r, x)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	bnorm := norm2(b)
	if bnorm == 0 {
		for i := range x {
			x[i] = 0
		}
		return SolveResult{Converged: true}, nil
	}
	copy(rhat, r)
	rho, alpha, omega := 1.0, 1.0, 1.0
	for it := 0; it < o.MaxIter; it++ {
		res := norm2(r) / bnorm
		if res <= o.Tol {
			return SolveResult{Iterations: it, Residual: res, Converged: true}, nil
		}
		rhoNew := dot(rhat, r)
		if rhoNew == 0 {
			return SolveResult{Iterations: it, Residual: res},
				fmt.Errorf("sparse: BiCGSTAB breakdown (rho = 0)")
		}
		if it == 0 {
			copy(p, r)
		} else {
			beta := (rhoNew / rho) * (alpha / omega)
			for i := range p {
				p[i] = r[i] + beta*(p[i]-omega*v[i])
			}
		}
		rho = rhoNew
		o.Precond.Apply(phat, p)
		a.MulVec(v, phat)
		alpha = rho / dot(rhat, v)
		for i := range s {
			s[i] = r[i] - alpha*v[i]
		}
		if norm2(s)/bnorm <= o.Tol {
			axpy(alpha, phat, x)
			return SolveResult{Iterations: it + 1, Residual: norm2(s) / bnorm, Converged: true}, nil
		}
		o.Precond.Apply(shat, s)
		a.MulVec(t, shat)
		tt := dot(t, t)
		if tt == 0 {
			return SolveResult{Iterations: it, Residual: res},
				fmt.Errorf("sparse: BiCGSTAB breakdown (t = 0)")
		}
		omega = dot(t, s) / tt
		axpy(alpha, phat, x)
		axpy(omega, shat, x)
		for i := range r {
			r[i] = s[i] - omega*t[i]
		}
		if omega == 0 {
			return SolveResult{Iterations: it, Residual: norm2(r) / bnorm},
				fmt.Errorf("sparse: BiCGSTAB breakdown (omega = 0)")
		}
	}
	return SolveResult{Iterations: o.MaxIter, Residual: norm2(r) / bnorm}, nil
}
