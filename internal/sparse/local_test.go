package sparse

import (
	"math"
	"testing"

	"github.com/plasma-hpc/dsmcpic/internal/rng"
)

// stripedOwned returns the global ids owned by rank r under a block-cyclic
// striping of n nodes over p ranks — deliberately non-contiguous so ghost
// extraction is exercised on scattered ownership, not just block splits.
func stripedOwned(n, p, r, stride int) []int32 {
	var owned []int32
	for g := 0; g < n; g++ {
		if (g/stride)%p == r {
			owned = append(owned, int32(g))
		}
	}
	return owned
}

func TestLocalCSRRoundTripAndCoverage(t *testing.T) {
	m := laplace2D(8) // 64 nodes
	const p = 4
	seen := make([]int, m.N)
	for r := 0; r < p; r++ {
		owned := stripedOwned(m.N, p, r, 5)
		l, err := NewLocalCSR(m, owned)
		if err != nil {
			t.Fatal(err)
		}
		if l.NumOwned() != len(owned) {
			t.Fatalf("rank %d: NumOwned %d, want %d", r, l.NumOwned(), len(owned))
		}
		for _, g := range owned {
			seen[g]++
		}
		// local⇄global round-trips over both owned and ghost ids, and the
		// ghost tail is strictly ascending in global ids.
		for li := 0; li < l.NumOwned()+l.NumGhost(); li++ {
			g := l.LocalToGlobal(int32(li))
			if back := l.LocalOf(g); back != int32(li) {
				t.Fatalf("rank %d: local %d -> global %d -> local %d", r, li, g, back)
			}
		}
		for j := l.NumOwned() + 1; j < l.NumOwned()+l.NumGhost(); j++ {
			if l.LocalToGlobal(int32(j)) <= l.LocalToGlobal(int32(j-1)) {
				t.Fatalf("rank %d: ghost tail not ascending at %d", r, j)
			}
		}
		// A node in no owned row is neither owned nor ghost.
		if got := l.LocalOf(int32(m.N + 7)); got != -1 {
			t.Fatalf("out-of-matrix node resolved to local %d", got)
		}
		// Every stored entry matches the global matrix.
		for li, g := range owned {
			lo, hi := l.RowPtr[li], l.RowPtr[li+1]
			if int(hi-lo) != int(m.RowPtr[g+1]-m.RowPtr[g]) {
				t.Fatalf("rank %d row %d: nnz mismatch", r, g)
			}
			for k := lo; k < hi; k++ {
				gk := m.RowPtr[g] + (k - lo)
				if l.LocalToGlobal(l.ColIdx[k]) != m.ColIdx[gk] ||
					math.Float64bits(l.Val[k]) != math.Float64bits(m.Val[gk]) {
					t.Fatalf("rank %d row %d entry %d: got (%d,%v), want (%d,%v)",
						r, g, k-lo, l.LocalToGlobal(l.ColIdx[k]), l.Val[k], m.ColIdx[gk], m.Val[gk])
				}
			}
		}
		if l.MatrixBytes() <= 0 || l.IndexMapBytes() <= 0 {
			t.Fatalf("rank %d: non-positive resident byte gauges", r)
		}
	}
	for g, c := range seen {
		if c != 1 {
			t.Fatalf("node %d owned %d times", g, c)
		}
	}
}

func TestLocalCSRMulVecOwnedBitwise(t *testing.T) {
	m := laplace2D(7)
	r := rng.New(42, 0)
	x := make([]float64, m.N)
	for i := range x {
		x[i] = r.Float64()*2 - 1
	}
	want := make([]float64, m.N)
	m.MulVec(want, x)

	const p = 3
	for rank := 0; rank < p; rank++ {
		owned := stripedOwned(m.N, p, rank, 4)
		l, err := NewLocalCSR(m, owned)
		if err != nil {
			t.Fatal(err)
		}
		xl := make([]float64, l.NumOwned()+l.NumGhost())
		for li := range xl {
			xl[li] = x[l.LocalToGlobal(int32(li))]
		}
		dst := make([]float64, l.NumOwned())
		l.MulVecOwned(dst, xl)
		for li, g := range owned {
			if math.Float64bits(dst[li]) != math.Float64bits(want[g]) { // same per-row accumulation order
				t.Fatalf("rank %d row %d: local %v != global %v", rank, g, dst[li], want[g])
			}
		}
		// DiagOwned matches the global diagonal at owned nodes.
		d := l.DiagOwned()
		gd := m.Diag()
		for li, g := range owned {
			if math.Float64bits(d[li]) != math.Float64bits(gd[g]) {
				t.Fatalf("rank %d diag %d: %v != %v", rank, g, d[li], gd[g])
			}
		}
	}
}

func TestLocalCSRRejectsBadOwnedLists(t *testing.T) {
	m := laplace1D(6)
	if _, err := NewLocalCSR(m, []int32{2, 2, 3}); err == nil {
		t.Fatal("duplicate owned row accepted")
	}
	if _, err := NewLocalCSR(m, []int32{3, 1}); err == nil {
		t.Fatal("descending owned list accepted")
	}
	if _, err := NewLocalCSR(m, []int32{4, 6}); err == nil {
		t.Fatal("out-of-range owned row accepted")
	}
	l, err := NewLocalCSR(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if l.NumOwned() != 0 || l.NumGhost() != 0 || l.NNZ() != 0 {
		t.Fatal("empty partition not empty")
	}
}
