package diag

import (
	"fmt"

	"github.com/plasma-hpc/dsmcpic/internal/geom"
	"github.com/plasma-hpc/dsmcpic/internal/mesh"
	"github.com/plasma-hpc/dsmcpic/internal/particle"
)

// TimeAverager accumulates per-cell moments over many timesteps — the
// standard DSMC practice for extracting smooth macroscopic fields from a
// noisy instantaneous particle ensemble once the flow is (quasi-)steady.
type TimeAverager struct {
	mesh    *mesh.Mesh
	samples int
	count   []int64
	density []float64
	vel     []geom.Vec3
	temp    []float64
}

// NewTimeAverager prepares accumulation buffers for the given mesh.
func NewTimeAverager(m *mesh.Mesh) *TimeAverager {
	n := m.NumCells()
	return &TimeAverager{
		mesh:    m,
		count:   make([]int64, n),
		density: make([]float64, n),
		vel:     make([]geom.Vec3, n),
		temp:    make([]float64, n),
	}
}

// Samples returns the number of accumulated snapshots.
func (a *TimeAverager) Samples() int { return a.samples }

// Accumulate adds one snapshot of the store.
func (a *TimeAverager) Accumulate(st *particle.Store, weight func(particle.Species) float64, filter func(particle.Species) bool) {
	mom := CellMoments(st, a.mesh, weight, filter)
	for c := range mom {
		a.count[c] += mom[c].Count
		a.density[c] += mom[c].Density
		a.vel[c] = a.vel[c].Add(mom[c].Velocity.Scale(float64(mom[c].Count)))
		a.temp[c] += mom[c].Temperature * float64(mom[c].Count)
	}
	a.samples++
}

// Mean returns the time-averaged moments. Velocity and temperature are
// sample-count weighted (cells empty in some snapshots average only over
// their occupied snapshots); density averages over all snapshots.
func (a *TimeAverager) Mean() []Moments {
	out := make([]Moments, len(a.count))
	if a.samples == 0 {
		return out
	}
	for c := range out {
		out[c].Count = a.count[c]
		out[c].Density = a.density[c] / float64(a.samples)
		if a.count[c] > 0 {
			out[c].Velocity = a.vel[c].Scale(1 / float64(a.count[c]))
			out[c].Temperature = a.temp[c] / float64(a.count[c])
		}
	}
	return out
}

// Reset clears the accumulation.
func (a *TimeAverager) Reset() {
	a.samples = 0
	for c := range a.count {
		a.count[c] = 0
		a.density[c] = 0
		a.vel[c] = geom.Vec3{}
		a.temp[c] = 0
	}
}

// String summarizes the averager state.
func (a *TimeAverager) String() string {
	return fmt.Sprintf("TimeAverager(%d cells, %d samples)", len(a.count), a.samples)
}
