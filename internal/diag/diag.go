// Package diag computes macroscopic diagnostics from particle ensembles:
// per-cell number density, bulk velocity and temperature (the standard
// DSMC sampling moments), axis profiles for the nozzle case study, and
// field/kinetic energy budgets. The experiment harness and the examples
// share these implementations.
package diag

import (
	"math"

	"github.com/plasma-hpc/dsmcpic/internal/geom"
	"github.com/plasma-hpc/dsmcpic/internal/mesh"
	"github.com/plasma-hpc/dsmcpic/internal/particle"
	"github.com/plasma-hpc/dsmcpic/internal/rng"
	"github.com/plasma-hpc/dsmcpic/internal/simmpi"
)

// Moments holds one cell's sampled macroscopic state.
type Moments struct {
	Count       int64     // simulation particles
	Density     float64   // real particles / m^3 (weight applied)
	Velocity    geom.Vec3 // mass-weighted mean velocity, m/s
	Temperature float64   // K, from peculiar velocity variance
}

// CellMoments samples per-cell moments for particles passing filter (nil =
// all). weight maps species to its scaling factor. Local to this rank's
// particles; use GlobalDensity (or reduce the raw accumulators yourself)
// for world-wide fields.
func CellMoments(st *particle.Store, m *mesh.Mesh, weight func(particle.Species) float64, filter func(particle.Species) bool) []Moments {
	type acc struct {
		n    int64
		w    float64 // total real particles
		mSum float64 // total mass (weighted)
		mv   geom.Vec3
		mv2  float64
	}
	accs := make([]acc, m.NumCells())
	for i := 0; i < st.Len(); i++ {
		sp := st.Sp[i]
		if filter != nil && !filter(sp) {
			continue
		}
		c := st.Cell[i]
		wgt := weight(sp)
		mass := particle.InfoOf(sp).Mass * wgt
		a := &accs[c]
		a.n++
		a.w += wgt
		a.mSum += mass
		a.mv = a.mv.Add(st.Vel[i].Scale(mass))
		a.mv2 += mass * st.Vel[i].Norm2()
	}
	out := make([]Moments, m.NumCells())
	for c := range accs {
		a := &accs[c]
		out[c].Count = a.n
		if a.n == 0 {
			continue
		}
		out[c].Density = a.w / m.Volumes[c]
		v := a.mv.Scale(1 / a.mSum)
		out[c].Velocity = v
		// Temperature from peculiar kinetic energy:
		// 3/2 N k T = 1/2 sum m (v_i - v)^2 = 1/2 (sum m v_i^2 - M v^2).
		ke := 0.5 * (a.mv2 - a.mSum*v.Norm2())
		if a.w > 0 {
			out[c].Temperature = 2 * ke / (3 * a.w * rng.KBoltzmann)
		}
	}
	return out
}

// GlobalDensity reduces per-rank particle counts into a global per-cell
// number-density field (1/m^3) on every rank. Collective.
func GlobalDensity(comm *simmpi.Comm, st *particle.Store, m *mesh.Mesh, weight func(particle.Species) float64, filter func(particle.Species) bool) []float64 {
	local := make([]float64, m.NumCells())
	for i := 0; i < st.Len(); i++ {
		sp := st.Sp[i]
		if filter != nil && !filter(sp) {
			continue
		}
		local[st.Cell[i]] += weight(sp)
	}
	global := comm.AllreduceFloat64(local, simmpi.OpSum)
	for c := range global {
		global[c] /= m.Volumes[c]
	}
	return global
}

// AxisProfile bins a per-cell field into nBins volume-weighted averages
// along z over cells within rCut of the axis, for a domain of the given
// length starting at z = 0. Returns bin centers and averages (zero where
// no cell contributes).
func AxisProfile(m *mesh.Mesh, field []float64, rCut, length float64, nBins int) (z, avg []float64) {
	sum := make([]float64, nBins)
	vol := make([]float64, nBins)
	for c, v := range field {
		ctr := m.Centroids[c]
		if ctr.X*ctr.X+ctr.Y*ctr.Y > rCut*rCut {
			continue
		}
		b := int(ctr.Z / length * float64(nBins))
		if b < 0 {
			b = 0
		}
		if b >= nBins {
			b = nBins - 1
		}
		sum[b] += v * m.Volumes[c]
		vol[b] += m.Volumes[c]
	}
	z = make([]float64, nBins)
	avg = make([]float64, nBins)
	for b := range z {
		z[b] = (float64(b) + 0.5) * length / float64(nBins)
		if vol[b] > 0 {
			avg[b] = sum[b] / vol[b]
		}
	}
	return z, avg
}

// KineticEnergy returns the total kinetic energy (J) of particles passing
// filter, weights applied.
func KineticEnergy(st *particle.Store, weight func(particle.Species) float64, filter func(particle.Species) bool) float64 {
	var e float64
	for i := 0; i < st.Len(); i++ {
		sp := st.Sp[i]
		if filter != nil && !filter(sp) {
			continue
		}
		e += 0.5 * particle.InfoOf(sp).Mass * weight(sp) * st.Vel[i].Norm2()
	}
	return e
}

// FieldEnergy returns the electrostatic field energy (J): sum over fine
// cells of eps0/2 |E|^2 V.
func FieldEnergy(fine *mesh.Mesh, e []geom.Vec3, eps0 float64) float64 {
	var u float64
	for c := range e {
		u += 0.5 * eps0 * e[c].Norm2() * fine.Volumes[c]
	}
	return u
}

// RelativeError returns mean |a-b|/|b| over entries where |b| > floor.
func RelativeError(a, b []float64, floor float64) float64 {
	var sum float64
	n := 0
	for i := range a {
		if math.Abs(b[i]) <= floor {
			continue
		}
		sum += math.Abs(a[i]-b[i]) / math.Abs(b[i])
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
