package diag

import (
	"math"
	"testing"

	"github.com/plasma-hpc/dsmcpic/internal/geom"
	"github.com/plasma-hpc/dsmcpic/internal/mesh"
	"github.com/plasma-hpc/dsmcpic/internal/particle"
	"github.com/plasma-hpc/dsmcpic/internal/pic"
	"github.com/plasma-hpc/dsmcpic/internal/rng"
	"github.com/plasma-hpc/dsmcpic/internal/simmpi"
)

func boxMesh(t testing.TB) *mesh.Mesh {
	t.Helper()
	m, err := mesh.Box(3, 3, 3, 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func unitWeight(particle.Species) float64 { return 1 }

func fillMaxwell(t testing.TB, m *mesh.Mesh, n int, temp, drift float64, seed uint64) *particle.Store {
	t.Helper()
	r := rng.New(seed, 0)
	st := particle.NewStore(n)
	for k := 0; k < n; k++ {
		p := geom.V(r.Float64(), r.Float64(), r.Float64())
		cell := m.FindCellBrute(p)
		vx, vy, vz := r.Maxwell(temp, particle.HydrogenMass, drift, 0, 0)
		st.Append(particle.Particle{Pos: p, Vel: geom.V(vx, vy, vz), Sp: particle.H, Cell: int32(cell)})
	}
	return st
}

func TestCellMomentsRecoverTemperatureAndDrift(t *testing.T) {
	m := boxMesh(t)
	const temp, drift = 450.0, 3000.0
	st := fillMaxwell(t, m, 100000, temp, drift, 3)
	mom := CellMoments(st, m, unitWeight, nil)
	// Aggregate over cells weighted by count.
	var wT, wVx, wN float64
	var total int64
	for _, mm := range mom {
		if mm.Count == 0 {
			continue
		}
		w := float64(mm.Count)
		wT += w * mm.Temperature
		wVx += w * mm.Velocity.X
		wN += w
		total += mm.Count
	}
	if total != 100000 {
		t.Fatalf("counted %d particles", total)
	}
	if got := wT / wN; math.Abs(got-temp) > 0.05*temp {
		t.Errorf("temperature = %v, want ~%v", got, temp)
	}
	if got := wVx / wN; math.Abs(got-drift) > 0.05*drift {
		t.Errorf("drift = %v, want ~%v", got, drift)
	}
}

func TestCellMomentsDensity(t *testing.T) {
	m := boxMesh(t)
	st := fillMaxwell(t, m, 50000, 300, 0, 5)
	weight := func(particle.Species) float64 { return 2e10 }
	mom := CellMoments(st, m, weight, nil)
	var totalReal float64
	for c, mm := range mom {
		totalReal += mm.Density * m.Volumes[c]
	}
	want := 50000.0 * 2e10
	if math.Abs(totalReal-want) > 1e-6*want {
		t.Errorf("total real particles = %v, want %v", totalReal, want)
	}
}

func TestCellMomentsFilter(t *testing.T) {
	m := boxMesh(t)
	st := particle.NewStore(0)
	st.Append(particle.Particle{Pos: geom.V(.5, .5, .5), Sp: particle.H, Cell: int32(m.FindCellBrute(geom.V(.5, .5, .5)))})
	st.Append(particle.Particle{Pos: geom.V(.5, .5, .5), Sp: particle.HPlus, Cell: st.Cell[0]})
	mom := CellMoments(st, m, unitWeight, func(sp particle.Species) bool { return sp == particle.HPlus })
	var n int64
	for _, mm := range mom {
		n += mm.Count
	}
	if n != 1 {
		t.Errorf("filtered count = %d", n)
	}
}

func TestGlobalDensityCollective(t *testing.T) {
	m := boxMesh(t)
	w := simmpi.NewWorld(3, simmpi.Options{})
	err := w.Run(func(c *simmpi.Comm) {
		// Each rank contributes one particle to cell 0.
		st := particle.NewStore(1)
		st.Append(particle.Particle{Pos: m.Centroids[0], Sp: particle.H, Cell: 0})
		dens := GlobalDensity(c, st, m, unitWeight, nil)
		want := 3.0 / m.Volumes[0]
		if math.Abs(dens[0]-want) > 1e-9*want {
			panic("wrong global density")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAxisProfile(t *testing.T) {
	m, err := mesh.Nozzle(3, 8, 0.05, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	// Field = z coordinate of the centroid: profile should recover ~bin z.
	field := make([]float64, m.NumCells())
	for c := range field {
		field[c] = m.Centroids[c].Z
	}
	z, avg := AxisProfile(m, field, 0.025, 0.2, 8)
	for b := range z {
		if avg[b] == 0 {
			t.Fatalf("bin %d empty", b)
		}
		if math.Abs(avg[b]-z[b]) > 0.02 {
			t.Errorf("bin %d: avg %v vs center %v", b, avg[b], z[b])
		}
	}
}

func TestKineticEnergy(t *testing.T) {
	st := particle.NewStore(0)
	st.Append(particle.Particle{Vel: geom.V(100, 0, 0), Sp: particle.H})
	got := KineticEnergy(st, func(particle.Species) float64 { return 3 }, nil)
	want := 0.5 * particle.HydrogenMass * 3 * 100 * 100
	if math.Abs(got-want) > 1e-12*want {
		t.Errorf("KE = %v, want %v", got, want)
	}
}

func TestFieldEnergyUniformField(t *testing.T) {
	m := boxMesh(t)
	e := make([]geom.Vec3, m.NumCells())
	for c := range e {
		e[c] = geom.V(0, 0, 10)
	}
	got := FieldEnergy(m, e, pic.Epsilon0)
	want := 0.5 * pic.Epsilon0 * 100 * 1.0 // |E|^2 * unit volume
	if math.Abs(got-want) > 1e-9*want {
		t.Errorf("field energy = %v, want %v", got, want)
	}
}

func TestRelativeError(t *testing.T) {
	a := []float64{1.1, 2.2, 0}
	b := []float64{1.0, 2.0, 0}
	got := RelativeError(a, b, 1e-30)
	if math.Abs(got-0.1) > 1e-12 {
		t.Errorf("rel err = %v, want 0.1", got)
	}
	if RelativeError(a, []float64{0, 0, 0}, 1e-30) != 0 {
		t.Error("all-below-floor should be 0")
	}
}

func TestTimeAveragerReducesNoise(t *testing.T) {
	m := boxMesh(t)
	avg := NewTimeAverager(m)
	const temp = 400.0
	// Accumulate many independent snapshots of the same distribution.
	for snap := 0; snap < 20; snap++ {
		st := fillMaxwell(t, m, 3000, temp, 0, uint64(100+snap))
		avg.Accumulate(st, unitWeight, nil)
	}
	if avg.Samples() != 20 {
		t.Fatalf("samples = %d", avg.Samples())
	}
	mean := avg.Mean()
	// Averaged per-cell temperature closer to truth than a single snapshot.
	single := CellMoments(fillMaxwell(t, m, 3000, temp, 0, 999), m, unitWeight, nil)
	var errAvg, errSingle float64
	cells := 0
	for c := range mean {
		if mean[c].Count == 0 || single[c].Count < 5 {
			continue
		}
		errAvg += math.Abs(mean[c].Temperature - temp)
		errSingle += math.Abs(single[c].Temperature - temp)
		cells++
	}
	if cells == 0 {
		t.Fatal("no populated cells")
	}
	if errAvg >= errSingle {
		t.Errorf("averaging did not reduce noise: avg %v vs single %v", errAvg/float64(cells), errSingle/float64(cells))
	}
	avg.Reset()
	if avg.Samples() != 0 || avg.Mean()[0].Density != 0 {
		t.Error("reset incomplete")
	}
	if avg.String() == "" {
		t.Error("empty string")
	}
}
