package experiments

import (
	"fmt"
	"sync"

	"github.com/plasma-hpc/dsmcpic/internal/balance"
	"github.com/plasma-hpc/dsmcpic/internal/commcost"
	"github.com/plasma-hpc/dsmcpic/internal/core"
	"github.com/plasma-hpc/dsmcpic/internal/dsmc"
	"github.com/plasma-hpc/dsmcpic/internal/exchange"
	"github.com/plasma-hpc/dsmcpic/internal/pic"
	"github.com/plasma-hpc/dsmcpic/internal/simmpi"
)

// Preset selects experiment scale.
type Preset struct {
	// Ranks is the process-count sweep (the paper uses 24..1536).
	Ranks []int
	// Steps is the DSMC step count per run (the paper uses 100).
	Steps int
}

// FullPreset mirrors the paper's 24..1536 process sweep. The step budget
// is 10 DSMC steps per run (the paper uses 100): modeled totals scale
// near-proportionally with steps, and the 1536-goroutine-rank runs are
// wall-clock expensive on one host. The whole sweep takes on the order of
// an hour; use QuickPreset for CI-scale runs.
func FullPreset() Preset {
	return Preset{Ranks: []int{24, 48, 96, 192, 384, 768, 1536}, Steps: 10}
}

// QuickPreset is the reduced sweep used by the benchmarks by default.
func QuickPreset() Preset {
	return Preset{Ranks: []int{24, 48, 96}, Steps: 10}
}

// RunSpec identifies one solver execution.
type RunSpec struct {
	Dataset  Dataset
	Ranks    int
	Steps    int
	Strategy exchange.Strategy
	// LB nil disables load balancing.
	LB        *balance.Config
	Platform  commcost.Platform
	Placement commcost.Placement
	Seed      uint64
}

func (rs RunSpec) key() string {
	lb := "off"
	if rs.LB != nil {
		lb = fmt.Sprintf("T%d-thr%g-R%g-W%d-km%v", rs.LB.T, rs.LB.Threshold, rs.LB.R, rs.LB.WCell, rs.LB.UseKM)
	}
	return fmt.Sprintf("%s/n%d/s%d/%v/%s/%s/%v/seed%d",
		rs.Dataset.Name, rs.Ranks, rs.Steps, rs.Strategy, lb,
		rs.Platform.Name, rs.Placement, rs.Seed)
}

var (
	runCacheMu sync.Mutex
	runCache   = map[string]*core.RunStats{}
)

// Run executes (or returns the cached result of) one simulation.
func Run(rs RunSpec) (*core.RunStats, error) {
	key := rs.key()
	runCacheMu.Lock()
	if st, ok := runCache[key]; ok {
		runCacheMu.Unlock()
		return st, nil
	}
	runCacheMu.Unlock()

	ref, err := rs.Dataset.BuildRef()
	if err != nil {
		return nil, err
	}
	cfg := core.Config{
		Ref:              ref,
		Steps:            rs.Steps,
		PICSubsteps:      2,
		DtDSMC:           rs.Dataset.DtDSMC,
		InjectHPerStep:   rs.Dataset.InjectH,
		InjectIonPerStep: rs.Dataset.InjectIon,
		WeightH:          rs.Dataset.WeightH,
		WeightIon:        rs.Dataset.WeightIon,
		Wall:             dsmc.WallModel{Kind: dsmc.DiffuseWall, Temperature: 300},
		Strategy:         rs.Strategy,
		LB:               rs.LB,
		Reactions:        dsmc.DefaultHydrogenReactions(),
		Cost:             datasetCostModel(rs.Dataset, rs.Platform, rs.Placement),
		PoissonTol:       1e-6,
		// Paper reproduction runs the paper's Poisson communication
		// structure: a full-vector re-assembly every CG iteration, whose
		// O(nodes) rank-independent traffic is the Table IV scalability
		// wall these experiments exist to exhibit. The halo solver (the
		// repo's optimization beyond the paper, and the default
		// elsewhere) is benchmarked against it by cmd/bench instead.
		PoissonExchange: pic.ExchangeReplicated,
		Seed:            rs.Seed + 1, // keep 0 a valid caller seed
	}
	world := simmpi.NewWorld(rs.Ranks, simmpi.Options{})
	stats, err := core.Run(world, cfg)
	if err != nil {
		return nil, err
	}
	runCacheMu.Lock()
	runCache[key] = stats
	runCacheMu.Unlock()
	return stats, nil
}

// datasetCostModel builds the cost model with the dataset's work
// amplification (see Dataset.ParticleScale / GridScale).
func datasetCostModel(ds Dataset, p commcost.Platform, pl commcost.Placement) core.CostModel {
	cm := core.DefaultCostModel(p, pl)
	if ds.ParticleScale > 0 {
		cm.ParticleScale = ds.ParticleScale
	}
	if ds.GridScale > 0 {
		cm.GridScale = ds.GridScale
	}
	if ds.MigrationScale > 0 {
		cm.MigrationByteScale = ds.MigrationScale
	}
	return cm
}

// defaultLB returns the paper's tuned balancer parameters for a strategy.
func defaultLB(strategy exchange.Strategy) *balance.Config {
	cfg := balance.DefaultConfig()
	cfg.Strategy = strategy
	// The runs here are 10-25 steps (vs the paper's 100), so check more
	// frequently to exercise the balancer in-budget; Fig. 12 sweeps T.
	cfg.T = 5
	return &cfg
}
