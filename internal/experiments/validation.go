package experiments

import (
	"fmt"
	"strings"

	"github.com/plasma-hpc/dsmcpic/internal/commcost"
	"github.com/plasma-hpc/dsmcpic/internal/core"
	"github.com/plasma-hpc/dsmcpic/internal/diag"
	"github.com/plasma-hpc/dsmcpic/internal/dsmc"
	"github.com/plasma-hpc/dsmcpic/internal/exchange"
	"github.com/plasma-hpc/dsmcpic/internal/particle"
	"github.com/plasma-hpc/dsmcpic/internal/simmpi"
)

// ValidationResult reproduces paper Figs. 8 and 9: H number-density fields
// from a serial and a parallel run of the same setup, their central-axis
// profiles at several checkpoints, and the relative errors between them.
type ValidationResult struct {
	Checkpoints []int // DSMC step of each checkpoint

	// AxisZ are the bin centers along the nozzle axis.
	AxisZ []float64
	// SerialDensity / ParallelDensity are H number densities (1/m^3) per
	// checkpoint per axis bin.
	SerialDensity   [][]float64
	ParallelDensity [][]float64
	// MeanRelError is the mean relative error per checkpoint over bins
	// where the serial density is nonzero (paper: < 2.97%).
	MeanRelError []float64

	// Cell densities of the final checkpoint (full 3D field, for contour
	// output as in Fig. 8).
	SerialCells   []float64
	ParallelCells []float64
}

// Validation runs DS1 serially and on nRanks ranks for the given number of
// DSMC steps, sampling nCheckpoints evenly.
func Validation(nRanks, steps, nCheckpoints int) (*ValidationResult, error) {
	ref, err := DS1.BuildRef()
	if err != nil {
		return nil, err
	}
	checkpoints := make([]int, nCheckpoints)
	for i := range checkpoints {
		checkpoints[i] = (i + 1) * steps / nCheckpoints
	}
	isCheckpoint := func(step int) int {
		for i, c := range checkpoints {
			if step == c-1 {
				return i
			}
		}
		return -1
	}

	const axisBins = 16
	run := func(n int) (fields [][]float64, err error) {
		fields = make([][]float64, nCheckpoints)
		cfg := core.Config{
			Ref:              ref,
			Steps:            steps,
			PICSubsteps:      2,
			DtDSMC:           DS1.DtDSMC,
			InjectHPerStep:   DS1.InjectH,
			InjectIonPerStep: DS1.InjectIon,
			WeightH:          DS1.WeightH,
			WeightIon:        DS1.WeightIon,
			Wall:             dsmc.WallModel{Kind: dsmc.DiffuseWall, Temperature: 300},
			Strategy:         exchange.Distributed,
			Reactions:        dsmc.DefaultHydrogenReactions(),
			Cost:             datasetCostModel(DS1, commcost.Tianhe2, commcost.InnerFrame),
			PoissonTol:       1e-6,
			Seed:             7,
			OnStep: func(step int, s *core.Solver) {
				ci := isCheckpoint(step)
				if ci < 0 {
					return
				}
				dens := diag.GlobalDensity(s.Comm, s.St, ref.Coarse,
					func(particle.Species) float64 { return DS1.WeightH },
					func(sp particle.Species) bool { return sp == particle.H })
				if s.Comm.Rank() == 0 {
					fields[ci] = dens
				}
			},
		}
		world := simmpi.NewWorld(n, simmpi.Options{})
		if _, err := core.Run(world, cfg); err != nil {
			return nil, err
		}
		return fields, nil
	}

	serial, err := run(1)
	if err != nil {
		return nil, err
	}
	parallel, err := run(nRanks)
	if err != nil {
		return nil, err
	}

	res := &ValidationResult{
		Checkpoints:   checkpoints,
		SerialCells:   serial[nCheckpoints-1],
		ParallelCells: parallel[nCheckpoints-1],
	}
	// Axis bins: average density of cells near the axis per z bin.
	for ci := 0; ci < nCheckpoints; ci++ {
		z, sp := diag.AxisProfile(ref.Coarse, serial[ci], DS1.Radius/2, DS1.Length, axisBins)
		_, pp := diag.AxisProfile(ref.Coarse, parallel[ci], DS1.Radius/2, DS1.Length, axisBins)
		if ci == 0 {
			res.AxisZ = z
		}
		res.SerialDensity = append(res.SerialDensity, sp)
		res.ParallelDensity = append(res.ParallelDensity, pp)
		res.MeanRelError = append(res.MeanRelError, diag.RelativeError(pp, sp, 0))
	}
	return res, nil
}

// Table renders the axis profiles and errors.
func (r *ValidationResult) Table() string {
	var b strings.Builder
	b.WriteString("Fig. 8/9 — serial vs parallel H number density on the central axis\n")
	for ci, step := range r.Checkpoints {
		fmt.Fprintf(&b, "checkpoint step %d (mean rel. error %.2f%%)\n", step, 100*r.MeanRelError[ci])
		fmt.Fprintf(&b, "  %8s  %12s  %12s\n", "z (m)", "serial", "parallel")
		for bin := range r.AxisZ {
			fmt.Fprintf(&b, "  %8.4f  %12.4g  %12.4g\n",
				r.AxisZ[bin], r.SerialDensity[ci][bin], r.ParallelDensity[ci][bin])
		}
	}
	return b.String()
}
