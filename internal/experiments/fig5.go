package experiments

import (
	"fmt"
	"strings"

	"github.com/plasma-hpc/dsmcpic/internal/commcost"
	"github.com/plasma-hpc/dsmcpic/internal/core"
	"github.com/plasma-hpc/dsmcpic/internal/dsmc"
	"github.com/plasma-hpc/dsmcpic/internal/exchange"
	"github.com/plasma-hpc/dsmcpic/internal/simmpi"
)

// Fig5Result reproduces paper Fig. 5: the percentage of particles per rank
// across timesteps when no load balancing runs — the concentration
// pathology motivating the balancer.
type Fig5Result struct {
	Ranks   int
	Steps   []int       // DSMC step indices sampled
	Percent [][]float64 // [sample][rank] share of all particles, 0..100
}

// Fig5 reproduces the paper's setup: the unsteady plume is injected at the
// inlet and has not yet filled the domain, and the initial (unweighted)
// decomposition assigns the inlet region to rank 0 — so rank 0 accumulates
// nearly all particles. The decomposition here is the axial block
// partition (cells are generated in z-major order), the natural unweighted
// split that puts the whole inlet on one rank as in the paper; the
// timestep is shortened so the plume front crosses only a fraction of the
// nozzle within the run, as in the paper's 200-PIC-step window.
func Fig5(steps int) (*Fig5Result, error) {
	const nRanks = 4
	ref, err := DS1.BuildRef()
	if err != nil {
		return nil, err
	}
	owner := make([]int32, ref.Coarse.NumCells())
	for c := range owner {
		owner[c] = int32(c * nRanks / len(owner))
	}
	cfg := core.Config{
		Ref:              ref,
		Steps:            steps,
		PICSubsteps:      2,
		DtDSMC:           DS1.DtDSMC / 8, // plume front advances ~1.6mm/step
		InjectHPerStep:   DS1.InjectH,
		InjectIonPerStep: DS1.InjectIon,
		WeightH:          DS1.WeightH,
		WeightIon:        DS1.WeightIon,
		Wall:             dsmc.WallModel{Kind: dsmc.DiffuseWall, Temperature: 300},
		Strategy:         exchange.Distributed,
		Reactions:        dsmc.DefaultHydrogenReactions(),
		Cost:             datasetCostModel(DS1, commcost.Tianhe2, commcost.InnerFrame),
		PoissonTol:       1e-6,
		InitialOwner:     owner,
		Seed:             11,
	}
	world := simmpi.NewWorld(nRanks, simmpi.Options{})
	stats, err := core.Run(world, cfg)
	if err != nil {
		return nil, err
	}
	res := &Fig5Result{Ranks: nRanks}
	for s := 0; s < steps; s++ {
		total := 0
		counts := make([]float64, nRanks)
		for r := 0; r < nRanks; r++ {
			c := stats.Ranks[r].ParticleHistory[s]
			counts[r] = float64(c)
			total += c
		}
		if total == 0 {
			continue
		}
		for r := range counts {
			counts[r] = 100 * counts[r] / float64(total)
		}
		res.Steps = append(res.Steps, s)
		res.Percent = append(res.Percent, counts)
	}
	return res, nil
}

// MaxShare returns the largest single-rank share seen at the final sample.
func (r *Fig5Result) MaxShare() float64 {
	if len(r.Percent) == 0 {
		return 0
	}
	last := r.Percent[len(r.Percent)-1]
	best := 0.0
	for _, p := range last {
		if p > best {
			best = p
		}
	}
	return best
}

// Table renders the distribution at a few sampled steps.
func (r *Fig5Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 5 — particle distribution %% per rank, no load balance (%d ranks)\n", r.Ranks)
	fmt.Fprintf(&b, "%6s", "step")
	for rk := 0; rk < r.Ranks; rk++ {
		fmt.Fprintf(&b, "  rank%-2d", rk)
	}
	b.WriteByte('\n')
	stride := len(r.Steps) / 10
	if stride < 1 {
		stride = 1
	}
	for i := 0; i < len(r.Steps); i += stride {
		fmt.Fprintf(&b, "%6d", r.Steps[i])
		for _, p := range r.Percent[i] {
			fmt.Fprintf(&b, "  %5.1f%%", p)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
