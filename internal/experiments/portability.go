package experiments

import (
	"fmt"
	"strings"

	"github.com/plasma-hpc/dsmcpic/internal/commcost"
	"github.com/plasma-hpc/dsmcpic/internal/exchange"
)

// Fig15Result reproduces paper Fig. 15: strong scaling of the two
// communication strategies (with LB) on Tianhe-2 and the ARM Tianhe-3
// prototype, across four datasets. Panels (a)/(b) are Tianhe-2 on
// DS2+DS4 / DS5+DS6, panels (c)/(d) the same on Tianhe-3.
type Fig15Result struct {
	Ranks []int
	// Times[platform][dataset][strategy][rankIdx] modeled seconds.
	Times map[string]map[string]map[string][]float64
}

// Fig15 sweeps platforms x datasets x strategies. The rank sweep is capped
// at 384: the panel covers 2 platforms x 4 datasets x 2 strategies = 16
// scaling curves, and the big-grid datasets (DS5/DS6) at 1536 goroutine
// ranks would dominate the whole harness's runtime for no additional
// shape information.
func Fig15(p Preset) (*Fig15Result, error) {
	for len(p.Ranks) > 0 && p.Ranks[len(p.Ranks)-1] > 384 {
		p.Ranks = p.Ranks[:len(p.Ranks)-1]
	}
	res := &Fig15Result{Ranks: p.Ranks, Times: map[string]map[string]map[string][]float64{}}
	for _, platform := range []commcost.Platform{commcost.Tianhe2, commcost.Tianhe3} {
		res.Times[platform.Name] = map[string]map[string][]float64{}
		for _, ds := range []Dataset{DS2, DS4, DS5, DS6} {
			res.Times[platform.Name][ds.Name] = map[string][]float64{}
			for _, strat := range []exchange.Strategy{exchange.Distributed, exchange.Centralized} {
				for _, n := range p.Ranks {
					stats, err := Run(RunSpec{
						Dataset: ds, Ranks: n, Steps: p.Steps, Strategy: strat,
						LB:       defaultLB(strat),
						Platform: platform, Placement: commcost.InnerFrame,
					})
					if err != nil {
						return nil, err
					}
					res.Times[platform.Name][ds.Name][strat.String()] = append(
						res.Times[platform.Name][ds.Name][strat.String()], stats.TotalTime())
				}
			}
		}
	}
	return res, nil
}

// StrategyGap returns |DC-CC|/DC averaged over rank counts for one
// platform/dataset; the paper observes smaller gaps on the larger grids
// (DS5/DS6) than on DS2/DS4.
func (r *Fig15Result) StrategyGap(platform, dataset string) float64 {
	dc := r.Times[platform][dataset]["DC"]
	cc := r.Times[platform][dataset]["CC"]
	var sum float64
	for i := range dc {
		if dc[i] > 0 {
			gap := cc[i] - dc[i]
			if gap < 0 {
				gap = -gap
			}
			sum += gap / dc[i]
		}
	}
	return sum / float64(len(dc))
}

// ScalesOnBothPlatforms reports whether total time decreases from the
// smallest to the largest rank count for every platform/dataset/strategy.
func (r *Fig15Result) ScalesOnBothPlatforms() bool {
	for _, per := range r.Times {
		for _, ds := range per {
			for _, ts := range ds {
				if len(ts) >= 2 && ts[len(ts)-1] >= ts[0] {
					return false
				}
			}
		}
	}
	return true
}

// Table renders Fig. 15.
func (r *Fig15Result) Table() string {
	var b strings.Builder
	b.WriteString("Fig. 15 — portability: total modeled time (s), LB on\n")
	for _, platform := range []string{commcost.Tianhe2.Name, commcost.Tianhe3.Name} {
		fmt.Fprintf(&b, "-- %s --\n", platform)
		fmt.Fprintf(&b, "%-12s", "")
		for _, n := range r.Ranks {
			fmt.Fprintf(&b, "%10d", n)
		}
		b.WriteByte('\n')
		for _, ds := range []string{"DS2", "DS4", "DS5", "DS6"} {
			for _, strat := range []string{"DC", "CC"} {
				fmt.Fprintf(&b, "%-12s", ds+" "+strat)
				for _, t := range r.Times[platform][ds][strat] {
					fmt.Fprintf(&b, "%10.3f", t)
				}
				b.WriteByte('\n')
			}
		}
	}
	return b.String()
}
