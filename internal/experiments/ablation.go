package experiments

import (
	"fmt"
	"strings"

	"github.com/plasma-hpc/dsmcpic/internal/commcost"
	"github.com/plasma-hpc/dsmcpic/internal/core"
	"github.com/plasma-hpc/dsmcpic/internal/dsmc"
	"github.com/plasma-hpc/dsmcpic/internal/exchange"
	"github.com/plasma-hpc/dsmcpic/internal/partition"
	"github.com/plasma-hpc/dsmcpic/internal/simmpi"
)

// PartitionAblationResult compares the multilevel graph partitioner
// (the METIS substitute behind both the initial decomposition and every
// rebalance) against a naive block decomposition of the cell array — an
// ablation of a central design choice.
type PartitionAblationResult struct {
	Ranks []int

	// Graph quality of the initial decomposition.
	CutMultilevel, CutBlock             []int64
	ImbalanceMultilevel, ImbalanceBlock []float64

	// End-to-end modeled run time with each decomposition (LB off, DC), so
	// the decomposition quality is the only variable.
	TimeMultilevel, TimeBlock []float64
}

// PartitionAblation runs DS2 with both decompositions across the preset's
// rank counts.
func PartitionAblation(p Preset) (*PartitionAblationResult, error) {
	ref, err := DS2.BuildRef()
	if err != nil {
		return nil, err
	}
	xadj, adjncy := ref.Coarse.DualGraph()
	g := &partition.Graph{Xadj: xadj, Adjncy: adjncy}
	res := &PartitionAblationResult{Ranks: p.Ranks}

	runWith := func(owner []int32, n int) (float64, error) {
		cfg := core.Config{
			Ref:              ref,
			Steps:            p.Steps,
			PICSubsteps:      2,
			DtDSMC:           DS2.DtDSMC,
			InjectHPerStep:   DS2.InjectH,
			InjectIonPerStep: DS2.InjectIon,
			WeightH:          DS2.WeightH,
			WeightIon:        DS2.WeightIon,
			Wall:             dsmc.WallModel{Kind: dsmc.DiffuseWall, Temperature: 300},
			Strategy:         exchange.Distributed,
			Reactions:        dsmc.DefaultHydrogenReactions(),
			Cost:             datasetCostModel(DS2, commcost.Tianhe2, commcost.InnerFrame),
			PoissonTol:       1e-6,
			InitialOwner:     owner,
			Seed:             31,
		}
		stats, err := core.Run(simmpi.NewWorld(n, simmpi.Options{}), cfg)
		if err != nil {
			return 0, err
		}
		return stats.TotalTime(), nil
	}

	for _, n := range p.Ranks {
		ml, err := partition.PartGraphKway(g, n, partition.Options{})
		if err != nil {
			return nil, err
		}
		block := make([]int32, ref.Coarse.NumCells())
		for c := range block {
			block[c] = int32(c * n / len(block))
		}
		res.CutMultilevel = append(res.CutMultilevel, partition.EdgeCut(g, ml))
		res.CutBlock = append(res.CutBlock, partition.EdgeCut(g, block))
		res.ImbalanceMultilevel = append(res.ImbalanceMultilevel, partition.Imbalance(g, ml, n))
		res.ImbalanceBlock = append(res.ImbalanceBlock, partition.Imbalance(g, block, n))

		tML, err := runWith(ml, n)
		if err != nil {
			return nil, err
		}
		tBlock, err := runWith(block, n)
		if err != nil {
			return nil, err
		}
		res.TimeMultilevel = append(res.TimeMultilevel, tML)
		res.TimeBlock = append(res.TimeBlock, tBlock)
	}
	return res, nil
}

// MultilevelCutBetter reports whether the multilevel partitioner produced a
// smaller edge cut at every rank count.
func (r *PartitionAblationResult) MultilevelCutBetter() bool {
	for i := range r.Ranks {
		if r.CutMultilevel[i] >= r.CutBlock[i] {
			return false
		}
	}
	return true
}

// Table renders the ablation.
func (r *PartitionAblationResult) Table() string {
	var b strings.Builder
	b.WriteString("Ablation — multilevel partitioner vs naive block decomposition, DS2, DC, LB off\n")
	fmt.Fprintf(&b, "%-22s", "")
	for _, n := range r.Ranks {
		fmt.Fprintf(&b, "%10d", n)
	}
	b.WriteByte('\n')
	rows := []struct {
		name string
		i    []int64
		f    []float64
	}{
		{"edge cut multilevel", r.CutMultilevel, nil},
		{"edge cut block", r.CutBlock, nil},
		{"imbalance multilevel", nil, r.ImbalanceMultilevel},
		{"imbalance block", nil, r.ImbalanceBlock},
		{"time (s) multilevel", nil, r.TimeMultilevel},
		{"time (s) block", nil, r.TimeBlock},
	}
	for _, row := range rows {
		fmt.Fprintf(&b, "%-22s", row.name)
		if row.i != nil {
			for _, v := range row.i {
				fmt.Fprintf(&b, "%10d", v)
			}
		} else {
			for _, v := range row.f {
				fmt.Fprintf(&b, "%10.3f", v)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
