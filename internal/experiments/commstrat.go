package experiments

import (
	"fmt"
	"strings"

	"github.com/plasma-hpc/dsmcpic/internal/commcost"
	"github.com/plasma-hpc/dsmcpic/internal/core"
	"github.com/plasma-hpc/dsmcpic/internal/exchange"
)

// Fig11Result reproduces paper Fig. 11: total times and exchange-only
// times for the distributed and centralized strategies on the BSCC
// platform with the particle-light DS3, where the centralized strategy
// overtakes at high rank counts.
type Fig11Result struct {
	Ranks      []int
	DCTotal    []float64
	CCTotal    []float64
	DCExchange []float64
	CCExchange []float64
}

// Fig11 runs DS3 with LB enabled under both strategies on the BSCC model.
func Fig11(p Preset) (*Fig11Result, error) {
	res := &Fig11Result{Ranks: p.Ranks}
	for _, strat := range []exchange.Strategy{exchange.Distributed, exchange.Centralized} {
		for _, n := range p.Ranks {
			stats, err := Run(RunSpec{
				Dataset: DS3, Ranks: n, Steps: p.Steps, Strategy: strat,
				LB:       defaultLB(strat),
				Platform: commcost.BSCC, Placement: commcost.InnerFrame,
			})
			if err != nil {
				return nil, err
			}
			exc := stats.ComponentTime(core.CompDSMCExchange) + stats.ComponentTime(core.CompPICExchange)
			if strat == exchange.Distributed {
				res.DCTotal = append(res.DCTotal, stats.TotalTime())
				res.DCExchange = append(res.DCExchange, exc)
			} else {
				res.CCTotal = append(res.CCTotal, stats.TotalTime())
				res.CCExchange = append(res.CCExchange, exc)
			}
		}
	}
	return res, nil
}

// CCWinsAtScale reports whether the centralized strategy's exchange cost
// drops below the distributed one at the largest rank count while being
// comparable or worse at the smallest (the paper's crossover).
func (r *Fig11Result) CCWinsAtScale() bool {
	last := len(r.Ranks) - 1
	return r.CCExchange[last] < r.DCExchange[last]
}

// Table renders Fig. 11 as a table.
func (r *Fig11Result) Table() string {
	var b strings.Builder
	b.WriteString("Fig. 11 — DC vs CC on BSCC, DS3 (few particles), LB enabled\n")
	fmt.Fprintf(&b, "%-14s", "")
	for _, n := range r.Ranks {
		fmt.Fprintf(&b, "%10d", n)
	}
	b.WriteByte('\n')
	rows := []struct {
		name string
		vals []float64
	}{
		{"DC total", r.DCTotal},
		{"CC total", r.CCTotal},
		{"DC_exchange", r.DCExchange},
		{"CC_exchange", r.CCExchange},
	}
	for _, row := range rows {
		fmt.Fprintf(&b, "%-14s", row.name)
		for _, t := range row.vals {
			fmt.Fprintf(&b, "%10.4f", t)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
